package tiledcfd

import (
	"fmt"
	"math"
	"math/cmplx"
	"testing"
	"time"
)

func TestSensePaperConfiguration(t *testing.T) {
	// Full paper geometry: K=256, M=64, Q=4, with a licensed BPSK user.
	const blocks = 2
	x, err := NewBPSKBand(256*blocks, 32.0/256, 8, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Sense(x, Config{Blocks: blocks, Threshold: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Detected {
		t.Fatalf("licensed user not detected: statistic %v", s.Statistic)
	}
	if s.CyclesPerBlock != 13996 {
		t.Fatalf("cycles per block %d, want 13996", s.CyclesPerBlock)
	}
	if s.Breakdown.Total != 13996 || s.Breakdown.MultiplyAccumulate != 12192 ||
		s.Breakdown.ReadData != 381 || s.Breakdown.FFT != 1040 ||
		s.Breakdown.Reshuffle != 256 || s.Breakdown.Initialisation != 127 {
		t.Fatalf("Table 1 breakdown: %+v", s.Breakdown)
	}
	if math.Abs(s.BlockTimeMicros-139.96) > 1e-9 {
		t.Fatalf("block time %v", s.BlockTimeMicros)
	}
	if s.AnalysedBandwidthkHz < 910 || s.AnalysedBandwidthkHz > 920 {
		t.Fatalf("bandwidth %v kHz", s.AnalysedBandwidthkHz)
	}
	if s.AreaMM2 != 8 || s.PowerMW != 200 {
		t.Fatalf("area/power %v/%v", s.AreaMM2, s.PowerMW)
	}
	// The doubled-carrier feature sits at a = ±carrier bin (±32).
	if s.FeatureA != 32 && s.FeatureA != -32 {
		t.Fatalf("feature at a=%d, want ±32", s.FeatureA)
	}
	if len(s.AlphaProfile) != 127 || len(s.Surface) != 127 {
		t.Fatalf("output shapes %d/%d", len(s.AlphaProfile), len(s.Surface))
	}
}

func TestSenseIdleBand(t *testing.T) {
	x, err := NewNoiseBand(64*16, 0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Sense(x, Config{K: 64, M: 16, Q: 4, Blocks: 16, Threshold: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if s.Detected {
		t.Fatalf("false alarm on idle band: statistic %v", s.Statistic)
	}
}

func TestSenseErrors(t *testing.T) {
	if _, err := Sense(make([]complex128, 5), Config{}); err == nil {
		t.Error("short input should fail")
	}
	x, _ := NewNoiseBand(256, 0.1, 3)
	if _, err := Sense(x, Config{Q: 1}); err == nil {
		t.Error("Q=1 at paper grid should fail the memory budget")
	}
}

func TestSenseBitExactAcrossCoreCounts(t *testing.T) {
	// The folding changes which tile computes which cell but not any
	// arithmetic: the DSCF surface (and hence the statistic) is
	// bit-identical for any feasible Q.
	const k, m, blocks = 64, 16, 4
	x, err := NewBPSKBand(k*blocks, 8.0/k, 8, 6, 77)
	if err != nil {
		t.Fatal(err)
	}
	var ref *Sensing
	for _, q := range []int{1, 2, 4, 8} {
		s, err := Sense(x, Config{K: k, M: m, Q: q, Blocks: blocks, Threshold: 0.3})
		if err != nil {
			t.Fatalf("Q=%d: %v", q, err)
		}
		if ref == nil {
			ref = s
			continue
		}
		if s.Statistic != ref.Statistic {
			t.Fatalf("Q=%d statistic %v != Q=1 %v", q, s.Statistic, ref.Statistic)
		}
		for ai := range s.Surface {
			for fi := range s.Surface[ai] {
				if s.Surface[ai][fi] != ref.Surface[ai][fi] {
					t.Fatalf("Q=%d surface differs at (%d,%d)", q, ai, fi)
				}
			}
		}
	}
}

func TestWatchTracksOccupancy(t *testing.T) {
	const k, blocks = 64, 16
	window := k * blocks
	idle, err := NewNoiseBand(window, 0.2, 5)
	if err != nil {
		t.Fatal(err)
	}
	busy, err := NewBPSKBand(window, 8.0/k, 8, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	stream := append(idle, busy...)
	verdicts, err := Watch(stream, Config{K: k, M: 16, Q: 2, Blocks: blocks, Threshold: 0.4, MinAbsA: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts) != 2 {
		t.Fatalf("windows %d", len(verdicts))
	}
	if verdicts[0].Detected {
		t.Fatalf("false alarm in idle window: %+v", verdicts[0])
	}
	if !verdicts[1].Detected {
		t.Fatalf("missed user: %+v", verdicts[1])
	}
	if verdicts[1].FeatureA != 8 && verdicts[1].FeatureA != -8 {
		t.Fatalf("feature at a=%d, want ±8", verdicts[1].FeatureA)
	}
}

func TestWatchErrors(t *testing.T) {
	if _, err := Watch(make([]complex128, 4), Config{K: 64, M: 16, Q: 2, Blocks: 2}); err == nil {
		t.Error("short stream should fail")
	}
	if _, err := Watch(make([]complex128, 512), Config{Q: 1}); err == nil {
		t.Error("infeasible config should fail")
	}
}

func TestDSCFFacade(t *testing.T) {
	// Real tone at bin 4: doubled-carrier features at (f=0, a=±4).
	const k, m = 64, 8
	x := make([]complex128, k)
	for i := range x {
		x[i] = complex(math.Cos(2*math.Pi*4*float64(i)/k), 0)
	}
	grid, err := DSCF(x, k, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 15 || len(grid[0]) != 15 {
		t.Fatalf("grid %dx%d", len(grid), len(grid[0]))
	}
	feature := cmplx.Abs(grid[4+m-1][0+m-1]) // a=4, f=0
	psd := cmplx.Abs(grid[m-1][4+m-1])       // a=0, f=4
	if feature < psd/2 {
		t.Fatalf("doubled-carrier feature %v vs PSD %v", feature, psd)
	}
	if _, err := DSCF(x, 60, 8, 1); err == nil {
		t.Error("non-pow2 K should fail")
	}
}

func TestDeriveMappingPaper(t *testing.T) {
	mp, err := DeriveMapping(64, 4)
	if err != nil {
		t.Fatal(err)
	}
	if mp.P != 127 || mp.T != 32 {
		t.Fatalf("P=%d T=%d", mp.P, mp.T)
	}
	if mp.ChainRegisters != 126 {
		t.Fatalf("chain registers %d", mp.ChainRegisters)
	}
	if mp.MemoryWordsPerCore != 8128 {
		t.Fatalf("memory words %d, want 8128", mp.MemoryWordsPerCore)
	}
	want := [][2]int{{0, 32}, {32, 64}, {64, 96}, {96, 127}}
	for q, r := range mp.TaskRanges {
		if r != want[q] {
			t.Fatalf("core %d range %v", q, r)
		}
	}
	if _, err := DeriveMapping(0, 4); err == nil {
		t.Error("m=0 should fail")
	}
	if _, err := DeriveMapping(8, 0); err == nil {
		t.Error("q=0 should fail")
	}
}

func TestEvaluateFacade(t *testing.T) {
	e, err := Evaluate(256, 4, 13996)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.BlockTimeMicros-139.96) > 1e-9 || e.AreaMM2 != 8 || e.PowerMW != 200 {
		t.Fatalf("evaluation %+v", e)
	}
	if _, err := Evaluate(0, 4, 1); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := Evaluate(256, 0, 1); err == nil {
		t.Error("q=0 should fail")
	}
	if _, err := Evaluate(256, 4, 0); err == nil {
		t.Error("cycles=0 should fail")
	}
}

func TestBandGenerators(t *testing.T) {
	x, err := NewBPSKBand(1000, 0.1, 8, 5, 7)
	if err != nil || len(x) != 1000 {
		t.Fatalf("NewBPSKBand: %d, %v", len(x), err)
	}
	// Deterministic in seed.
	y, _ := NewBPSKBand(1000, 0.1, 8, 5, 7)
	for i := range x {
		if x[i] != y[i] {
			t.Fatal("NewBPSKBand not deterministic")
		}
	}
	if _, err := NewBPSKBand(0, 0.1, 8, 5, 7); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := NewBPSKBand(10, 0.1, 0, 5, 7); err == nil {
		t.Error("symbolLen=0 should fail")
	}
	n, err := NewNoiseBand(500, 0.25, 8)
	if err != nil || len(n) != 500 {
		t.Fatalf("NewNoiseBand: %d, %v", len(n), err)
	}
	if _, err := NewNoiseBand(10, 0, 8); err == nil {
		t.Error("zero power should fail")
	}
	if _, err := NewNoiseBand(0, 1, 8); err == nil {
		t.Error("n=0 should fail")
	}
}

func TestSenseWithSoftwareEstimators(t *testing.T) {
	const k, m, blocks = 64, 16, 16
	band, err := NewBPSKBand(k*blocks, 8.0/k, 8, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"direct", "fam", "ssca"} {
		s, err := Sense(band, Config{
			K: k, M: m, Blocks: blocks, Threshold: 0.4, Estimator: name,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Estimator != name {
			t.Errorf("%s: Sensing.Estimator = %q", name, s.Estimator)
		}
		if !s.Detected {
			t.Errorf("%s: BPSK user not detected (statistic %.4f)", name, s.Statistic)
		}
		if s.FFTMults <= 0 || s.EstimatorMults <= 0 {
			t.Errorf("%s: missing work counts: %d/%d", name, s.FFTMults, s.EstimatorMults)
		}
		if s.CyclesPerBlock != 0 || s.Breakdown.Total != 0 {
			t.Errorf("%s: hardware cycle figures on software path", name)
		}
		if len(s.Surface) != 2*m-1 || len(s.AlphaProfile) != 2*m-1 {
			t.Errorf("%s: surface extent %dx%d", name, len(s.Surface), len(s.AlphaProfile))
		}
	}
	if _, err := Sense(band, Config{K: k, M: m, Blocks: blocks, Estimator: "nonsense"}); err == nil {
		t.Error("unknown estimator name should fail")
	}
}

func TestSensePlatformFieldsUnchanged(t *testing.T) {
	// The default (platform) path must still report hardware figures and
	// name itself.
	const k, m, blocks = 64, 16, 4
	band, err := NewBPSKBand(k*blocks, 8.0/k, 8, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Sense(band, Config{K: k, M: m, Blocks: blocks, Threshold: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if s.Estimator != "platform" {
		t.Errorf("Sensing.Estimator = %q, want platform", s.Estimator)
	}
	if s.CyclesPerBlock <= 0 || s.Breakdown.Total <= 0 {
		t.Errorf("platform path missing cycle figures: %+v", s.Breakdown)
	}
	if s.FFTMults != 0 || s.EstimatorMults != 0 {
		t.Errorf("platform path should not report estimator mults")
	}
}

func TestSpectralCorrelation(t *testing.T) {
	const k, m, blocks = 64, 16, 16
	band, err := NewBPSKBand(k*blocks, 8.0/k, 8, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := SpectralCorrelation(band, Config{K: k, M: m, Blocks: blocks})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Estimator != "direct" {
		t.Errorf("default estimator %q, want direct", ref.Estimator)
	}
	refA := ref.FeatureA
	if refA < 0 {
		refA = -refA
	}
	if refA != 8 {
		t.Errorf("direct feature |a| = %d, want 8 (doubled carrier)", refA)
	}
	// The direct default must agree with the legacy DSCF facade.
	legacy, err := DSCF(band, k, m, blocks)
	if err != nil {
		t.Fatal(err)
	}
	for i := range legacy {
		for j := range legacy[i] {
			if legacy[i][j] != ref.Surface[i][j] {
				t.Fatalf("SpectralCorrelation(direct) differs from DSCF at [%d][%d]", i, j)
			}
		}
	}
	for _, name := range []string{"fam", "ssca", "platform"} {
		res, err := SpectralCorrelation(band, Config{K: k, M: m, Blocks: blocks, Estimator: name})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		a := res.FeatureA
		if a < 0 {
			a = -a
		}
		if a != refA {
			t.Errorf("%s: feature |a| = %d, direct says %d", name, a, refA)
		}
		if name != "platform" && (res.FFTMults <= 0 || res.Blocks <= 0) {
			t.Errorf("%s: missing work stats: %+v", name, res)
		}
	}
	if _, err := SpectralCorrelation(band, Config{K: k, M: m, Estimator: "bogus"}); err == nil {
		t.Error("unknown estimator name should fail")
	}
}

func TestWatchWithEstimator(t *testing.T) {
	// A stream that is idle for 2 windows then carries a user for 2 must
	// produce the same occupancy pattern through the FAM path.
	const k, m, blocks = 64, 16, 16
	w := k * blocks
	idle, err := NewNoiseBand(2*w, 0.09, 21)
	if err != nil {
		t.Fatal(err)
	}
	busy, err := NewBPSKBand(2*w, 8.0/k, 8, 10, 22)
	if err != nil {
		t.Fatal(err)
	}
	stream := append(idle, busy...)
	verdicts, err := Watch(stream, Config{
		K: k, M: m, Blocks: blocks, Threshold: 0.4, Estimator: "fam",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts) != 4 {
		t.Fatalf("%d verdicts, want 4", len(verdicts))
	}
	for i, v := range verdicts {
		want := i >= 2
		if v.Detected != want {
			t.Errorf("window %d detected=%v, want %v (statistic %.4f)", i, v.Detected, want, v.Statistic)
		}
	}
}

func TestConfigWorkersPlumbed(t *testing.T) {
	// Workers must reach the estimators and leave results bit-identical
	// to the serial path (the parallel decompositions are exact).
	const k, m, blocks = 64, 16, 8
	band, err := NewBPSKBand(k*blocks, 8.0/k, 8, 6, 31)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"direct", "fam", "ssca"} {
		serial, err := SpectralCorrelation(band, Config{K: k, M: m, Blocks: blocks, Estimator: name, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := SpectralCorrelation(band, Config{K: k, M: m, Blocks: blocks, Estimator: name, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		for i := range serial.Surface {
			for j := range serial.Surface[i] {
				if serial.Surface[i][j] != parallel.Surface[i][j] {
					t.Fatalf("%s: Workers=4 surface differs from serial at [%d][%d]", name, i, j)
				}
			}
		}
	}
}

func TestConfigHopValidation(t *testing.T) {
	band, err := NewNoiseBand(4096, 0.25, 32)
	if err != nil {
		t.Fatal(err)
	}
	// ssca + Hop must be rejected, not silently ignored.
	if _, err := SpectralCorrelation(band, Config{K: 64, M: 16, Estimator: "ssca", Hop: 32}); err == nil {
		t.Fatal("ssca with Hop set succeeded")
	}
	// direct honours Hop: overlapping blocks need fewer samples.
	r, err := SpectralCorrelation(band[:64+7*32], Config{K: 64, M: 16, Blocks: 8, Estimator: "direct", Hop: 32})
	if err != nil {
		t.Fatal(err)
	}
	if r.Blocks != 8 {
		t.Fatalf("direct with Hop=32 averaged %d blocks, want 8", r.Blocks)
	}
}

func TestMonitorStreamsDecisions(t *testing.T) {
	// The streaming session must reproduce the Watch occupancy timeline:
	// per-channel windows of noise then BPSK then noise, decided by CFAR.
	const k, m = 64, 16
	const window = 2048
	mon, err := NewMonitor(
		Config{K: k, M: m, Estimator: "fam"},
		MonitorOptions{Channels: []string{"uhf-1", "uhf-2"}, SnapshotSamples: window, Backpressure: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	// uhf-1 goes idle, busy, idle; uhf-2 stays idle throughout.
	segs := map[string][][]complex128{}
	idle := func(seed uint64) []complex128 {
		s, err := NewNoiseBand(window, 0.09, seed)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	busy := func(seed uint64) []complex128 {
		s, err := NewBPSKBand(window, 8.0/k, 8, 10, seed)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	segs["uhf-1"] = [][]complex128{idle(41), busy(42), idle(43)}
	segs["uhf-2"] = [][]complex128{idle(44), idle(45), idle(46)}
	for id, parts := range segs {
		for _, p := range parts {
			if n, err := mon.Push(id, p); err != nil || n != len(p) {
				t.Fatalf("Push(%s): %d, %v", id, n, err)
			}
		}
	}
	if err := mon.Flush(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := mon.Stats()
	if st.Channels != 2 || st.Surfaces != 6 || st.SamplesDropped != 0 {
		t.Fatalf("stats %+v, want 2 channels / 6 surfaces / 0 dropped", st)
	}
	cs1, ok := mon.ChannelStats("uhf-1")
	if !ok || cs1.Detections != 1 || cs1.Snapshots != 3 {
		t.Fatalf("uhf-1 stats %+v, want 1 detection in 3 windows", cs1)
	}
	cs2, ok := mon.ChannelStats("uhf-2")
	if !ok || cs2.Detections != 0 {
		t.Fatalf("uhf-2 stats %+v, want 0 detections", cs2)
	}
	if err := mon.Close(); err != nil {
		t.Fatal(err)
	}
	// Decisions channel: closed after Close, verdicts ordered per channel.
	seq := map[string]int64{}
	for d := range mon.Decisions() {
		if d.Seq != seq[d.Channel] {
			t.Fatalf("%s decision out of order: Seq %d, want %d", d.Channel, d.Seq, seq[d.Channel])
		}
		seq[d.Channel]++
		if d.Window != window {
			t.Fatalf("decision window %d, want %d", d.Window, window)
		}
	}
	if seq["uhf-1"] != 3 || seq["uhf-2"] != 3 {
		t.Fatalf("decision counts %+v, want 3 each", seq)
	}
}

func TestMonitorRejectsPlatform(t *testing.T) {
	if _, err := NewMonitor(Config{Estimator: "platform"}, MonitorOptions{}); err == nil {
		t.Fatal("NewMonitor with the platform path succeeded")
	}
	if _, err := NewShardedMonitor(Config{Estimator: "platform"}, ShardedMonitorOptions{}); err == nil {
		t.Fatal("NewShardedMonitor with the platform path succeeded")
	}
}

func TestShardedMonitorRebalancesLive(t *testing.T) {
	// The sharded session must behave as one Monitor while the fleet
	// grows and shrinks beneath the channels mid-stream.
	const k, window = 64, 2048
	ids := make([]string, 8)
	for i := range ids {
		ids[i] = fmt.Sprintf("uhf-%d", i)
	}
	mon, err := NewShardedMonitor(
		Config{K: k, M: 16, Estimator: "fam"},
		ShardedMonitorOptions{
			MonitorOptions: MonitorOptions{Channels: ids, SnapshotSamples: window, Backpressure: true},
			Shards:         2,
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	push := func(windows int, seedBase uint64) {
		for i, id := range ids {
			for w := 0; w < windows; w++ {
				s, err := NewBPSKBand(window, 8.0/k, 8, 10, seedBase+uint64(16*i+w))
				if err != nil {
					t.Fatal(err)
				}
				if n, err := mon.Push(id, s); err != nil || n != window {
					t.Fatalf("Push(%s): %d, %v", id, n, err)
				}
			}
		}
	}
	push(2, 100)
	if err := mon.Flush(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	names, err := mon.AddShards(2)
	if err != nil {
		t.Fatal(err)
	}
	push(2, 400)
	if err := mon.Flush(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := mon.DrainShard(names[0]); err != nil {
		t.Fatal(err)
	}
	st := mon.Stats()
	if st.Shards != 3 || st.Channels != len(ids) {
		t.Fatalf("topology %d shards / %d channels, want 3 / %d", st.Shards, st.Channels, len(ids))
	}
	if st.Handoffs == 0 {
		t.Fatal("no handoffs across grow+drain")
	}
	// Exact accounting across the moves: nothing lost, nothing twice.
	if want := int64(4 * window * len(ids)); st.SamplesIn != want || st.SamplesDropped != 0 {
		t.Fatalf("SamplesIn %d (dropped %d), want %d / 0", st.SamplesIn, st.SamplesDropped, want)
	}
	if st.Surfaces != int64(4*len(ids)) {
		t.Fatalf("Surfaces %d, want %d", st.Surfaces, 4*len(ids))
	}
	shards := mon.Shards()
	if len(shards) != 3 {
		t.Fatalf("%d shard infos, want 3", len(shards))
	}
	total := 0
	for _, s := range shards {
		total += s.Channels
	}
	if total != len(ids) {
		t.Fatalf("shards own %d channels, want %d", total, len(ids))
	}
	cs, ok := mon.ChannelStats(ids[0])
	if !ok || cs.Snapshots != 4 || cs.SamplesIn != 4*window {
		t.Fatalf("channel stats %+v, want 4 windows / %d samples", cs, 4*window)
	}
	if cs.Detections != 4 || cs.Last == nil || !cs.Last.Detected {
		t.Fatalf("channel stats %+v, want every BPSK window detected", cs)
	}
	rm, err := mon.RemoveChannel(ids[0])
	if err != nil || rm.Snapshots != 4 {
		t.Fatalf("RemoveChannel: %+v, %v", rm, err)
	}
	if err := mon.Close(); err != nil {
		t.Fatal(err)
	}
	// Merged decision stream: per-channel order preserved within each
	// owner, every window delivered exactly once.
	count := 0
	for d := range mon.Decisions() {
		if d.Shard == "" || d.Window != window {
			t.Fatalf("decision %+v lacks shard tag or window", d)
		}
		count++
	}
	if count != 4*len(ids) {
		t.Fatalf("merged stream delivered %d decisions, want %d", count, 4*len(ids))
	}
}
