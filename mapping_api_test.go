package tiledcfd

import (
	"strings"
	"testing"
)

func TestMapEstimatePaperAcceptance(t *testing.T) {
	// The acceptance sweep: K=256/M=64 FAM on the default 4-tile fabric.
	cfg := Config{K: 256, M: 64, Estimator: "fam"}
	single, err := MapEstimate(cfg, FabricConfig{}, "single")
	if err != nil {
		t.Fatal(err)
	}
	if single.Tiles != 4 || single.NoCWords != 0 {
		t.Errorf("single: tiles=%d noc=%d, want 4 tiles and no NoC traffic", single.Tiles, single.NoCWords)
	}
	for _, strategy := range []string{"pipelined", "sharded"} {
		e, err := MapEstimate(cfg, FabricConfig{}, strategy)
		if err != nil {
			t.Fatal(err)
		}
		if e.SustainedSamplesPerSec <= single.SustainedSamplesPerSec {
			t.Errorf("%s sustained %.0f samples/s not strictly above single-tile %.0f",
				strategy, e.SustainedSamplesPerSec, single.SustainedSamplesPerSec)
		}
		if e.NoCWords == 0 || e.Transfers == 0 {
			t.Errorf("%s: multi-tile mapping charged no NoC transfers", strategy)
		}
		if !e.MemFeasible {
			t.Errorf("%s: paper fabric reported memory-infeasible", strategy)
		}
		if len(e.PerTile) != 4 {
			t.Fatalf("%s: %d per-tile rows, want 4", strategy, len(e.PerTile))
		}
		var compute int64
		for _, u := range e.PerTile {
			compute += u.ComputeCycles
			if u.Utilization < 0 || u.Utilization > 1 {
				t.Errorf("%s tile %d utilization %v outside [0,1]", strategy, u.Tile, u.Utilization)
			}
		}
		if compute != single.LatencyCycles {
			// Single-tile makespan is the serial total, which every
			// mapping's per-tile compute must conserve.
			t.Errorf("%s: per-tile compute %d != serial total %d", strategy, compute, single.LatencyCycles)
		}
	}
}

func TestMapEstimateDefaultsAndErrors(t *testing.T) {
	e, err := MapEstimate(Config{}, FabricConfig{}, "sharded")
	if err != nil {
		t.Fatal(err)
	}
	if e.Estimator != "fam" {
		t.Errorf("default estimator %q, want fam", e.Estimator)
	}
	if e.WindowSamples <= 0 {
		t.Errorf("window %d samples", e.WindowSamples)
	}
	if _, err := MapEstimate(Config{Estimator: "nope"}, FabricConfig{}, "sharded"); err == nil ||
		!strings.Contains(err.Error(), "unknown estimator") {
		t.Errorf("unknown estimator error = %v", err)
	}
	if _, err := MapEstimate(Config{}, FabricConfig{}, "zigzag"); err == nil {
		t.Error("unknown strategy accepted")
	}
	if _, err := MapEstimate(Config{}, FabricConfig{Tiles: -3}, "single"); err == nil {
		t.Error("negative tile count accepted")
	}
	for _, est := range []string{"platform", "direct", "ssca", "fam-q15", "ssca-q15"} {
		if _, err := MapEstimate(Config{Estimator: est}, FabricConfig{}, "pipelined"); err != nil {
			t.Errorf("%s: %v", est, err)
		}
	}
	if got := MappingNames(); len(got) != 3 || got[0] != "single" {
		t.Errorf("MappingNames() = %v", got)
	}
}

// TestMapEstimateHonoursHop: an explicit Hop must reach the pipeline
// model (Hop=K FAM is a different window than the default K/4), and the
// SSCA rejection matches the estimators'.
func TestMapEstimateHonoursHop(t *testing.T) {
	def, err := MapEstimate(Config{Estimator: "fam"}, FabricConfig{}, "single")
	if err != nil {
		t.Fatal(err)
	}
	wide, err := MapEstimate(Config{Estimator: "fam", Hop: 256}, FabricConfig{}, "single")
	if err != nil {
		t.Fatal(err)
	}
	if def.WindowSamples != 1216 || wide.WindowSamples != 2048 {
		t.Errorf("windows: default hop %d (want 1216), Hop=256 %d (want 2048)",
			def.WindowSamples, wide.WindowSamples)
	}
	if _, err := MapEstimate(Config{Estimator: "ssca", Hop: 4}, FabricConfig{}, "single"); err == nil {
		t.Error("ssca with Hop accepted")
	}
}
