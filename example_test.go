package tiledcfd_test

import (
	"fmt"
	"time"

	"tiledcfd"
)

// ExampleSpectralCorrelation computes a spectral-correlation surface
// with the FAM estimator and locates the BPSK carrier's cyclic feature
// at α = 2·f_c (the doubled carrier, a = ±32 for f_c = 32/256).
func ExampleSpectralCorrelation() {
	band, err := tiledcfd.NewBPSKBand(256*8, 32.0/256, 8, 10, 1)
	if err != nil {
		panic(err)
	}
	r, err := tiledcfd.SpectralCorrelation(band, tiledcfd.Config{
		K: 256, M: 64, Estimator: "fam",
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("estimator:", r.Estimator)
	fmt.Println("strongest feature offset:", abs(r.FeatureA))
	// Output:
	// estimator: fam
	// strongest feature offset: 32
}

// ExampleNewMonitor runs a streaming sensing session: samples are
// pushed as they arrive and the engine emits periodic per-channel
// decisions. Flush quiesces the session so the final accounting is
// deterministic.
func ExampleNewMonitor() {
	mon, err := tiledcfd.NewMonitor(
		tiledcfd.Config{K: 256, M: 64, Estimator: "fam", Threshold: 0.4},
		tiledcfd.MonitorOptions{Channels: []string{"uhf"}, SnapshotSamples: 4096},
	)
	if err != nil {
		panic(err)
	}
	defer mon.Close()

	band, err := tiledcfd.NewBPSKBand(4096*4, 32.0/256, 8, 10, 1)
	if err != nil {
		panic(err)
	}
	if _, err := mon.Push("uhf", band); err != nil {
		panic(err)
	}
	if err := mon.Flush(10 * time.Second); err != nil {
		panic(err)
	}
	cs, _ := mon.ChannelStats("uhf")
	fmt.Println("decisions:", cs.Snapshots)
	fmt.Println("occupied:", cs.Detections == cs.Snapshots)
	// Output:
	// decisions: 4
	// occupied: true
}

// ExampleMapEstimate predicts how the FAM pipeline performs when its
// task DAG is sharded across the paper's 4-tile fabric, versus running
// whole on one tile.
func ExampleMapEstimate() {
	cfg := tiledcfd.Config{K: 256, M: 64, Estimator: "fam"}
	single, err := tiledcfd.MapEstimate(cfg, tiledcfd.FabricConfig{}, "single")
	if err != nil {
		panic(err)
	}
	sharded, err := tiledcfd.MapEstimate(cfg, tiledcfd.FabricConfig{}, "sharded")
	if err != nil {
		panic(err)
	}
	fmt.Printf("single tile: %.3f Msamples/s\n", single.SustainedSamplesPerSec/1e6)
	fmt.Printf("sharded on %d tiles: %.3f Msamples/s (%.1fx), %d NoC words/window\n",
		sharded.Tiles, sharded.SustainedSamplesPerSec/1e6,
		sharded.SustainedSamplesPerSec/single.SustainedSamplesPerSec,
		sharded.NoCWords)
	// Output:
	// single tile: 0.656 Msamples/s
	// sharded on 4 tiles: 2.082 Msamples/s (3.2x), 36480 NoC words/window
}

// abs is a tiny test helper: the feature offset's sign depends only on
// which of the symmetric ±α peaks wins the tie-break.
func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
