// Command monitor demonstrates continuous spectrum monitoring on the
// streaming API: two bands are monitored at once through a
// tiledcfd.Monitor session, a licensed user appears in one of them
// partway through and vacates it again, and the rolling per-window
// decisions track the occupancy timeline — the operational loop of the
// paper's Cognitive-Radio application.
//
// Unlike the one-shot Watch (which recomputes a batch estimate per
// window), the session keeps incremental estimator state per channel and
// decides as samples arrive; the decisions are bit-identical to the
// batch path over the same windows.
//
// Run: go run ./examples/monitor
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"
	"time"

	"tiledcfd"
)

func main() {
	const (
		k       = 64
		m       = 16
		window  = 1024 // samples per decision
		windows = 8
	)

	mon, err := tiledcfd.NewMonitor(
		tiledcfd.Config{K: k, M: m, Estimator: "direct", Threshold: 0.35, MinAbsA: 2},
		tiledcfd.MonitorOptions{
			Channels:        []string{"band-A", "band-B"},
			SnapshotSamples: window,
			Backpressure:    true, // lose nothing in this offline demo
		},
	)
	if err != nil {
		log.Fatal(err)
	}

	// band-A timeline: windows 0-2 idle, 3-5 occupied (BPSK user at
	// 0 dB), 6-7 idle again. band-B stays idle throughout.
	push := func(ch string, seg []complex128) {
		if _, err := mon.Push(ch, seg); err != nil {
			log.Fatal(err)
		}
	}
	gen := func(busy bool, n int, seed uint64) []complex128 {
		if busy {
			s, err := tiledcfd.NewBPSKBand(n, 8.0/k, 8, 0, seed)
			if err != nil {
				log.Fatal(err)
			}
			return s
		}
		s, err := tiledcfd.NewNoiseBand(n, 0.2, seed)
		if err != nil {
			log.Fatal(err)
		}
		return s
	}
	push("band-A", gen(false, 3*window, 1))
	push("band-A", gen(true, 3*window, 2))
	push("band-A", gen(false, 2*window, 3))
	push("band-B", gen(false, windows*window, 4))

	if err := mon.Flush(10 * time.Second); err != nil {
		log.Fatal(err)
	}
	if err := mon.Close(); err != nil {
		log.Fatal(err)
	}

	verdicts := map[string][]tiledcfd.MonitorDecision{}
	for d := range mon.Decisions() {
		verdicts[d.Channel] = append(verdicts[d.Channel], d)
	}

	fmt.Println("== continuous monitoring: 2 bands x 8 sensing windows ==")
	names := make([]string, 0, len(verdicts))
	for ch := range verdicts {
		names = append(names, ch)
	}
	sort.Strings(names)
	for _, ch := range names {
		fmt.Printf("%s:\n%-8s %-10s %-10s %s\n", ch, "window", "verdict", "statistic", "timeline")
		var bar strings.Builder
		for _, v := range verdicts[ch] {
			verdict, mark := "idle", "."
			if v.Detected {
				verdict, mark = "OCCUPIED", "#"
			}
			bar.WriteString(mark)
			fmt.Printf("%-8d %-10s %-10.3f %s\n", v.Seq, verdict, v.Statistic, bar.String())
		}
		fmt.Printf("occupancy bar: [%s]\n\n", bar.String())
	}
	fmt.Println("truth: band-A ...###.. | band-B ........")
	fmt.Println("the network can transmit during '.' windows and must vacate during '#'.")

	st := mon.Stats()
	fmt.Printf("session: %d samples in, %d surfaces, %d detections\n",
		st.SamplesIn, st.Surfaces, st.Detections)
}
