// Command monitor demonstrates continuous spectrum monitoring: a licensed
// user appears in the band partway through a long capture and vacates it
// again; the per-window verdicts track the occupancy timeline — the
// operational loop of the paper's Cognitive-Radio application.
//
// Run: go run ./examples/monitor
package main

import (
	"fmt"
	"log"
	"strings"

	"tiledcfd"
)

func main() {
	const (
		k       = 64
		m       = 16
		blocks  = 16
		window  = k * blocks
		windows = 8
	)

	// Timeline: windows 0-2 idle, 3-5 occupied (BPSK user at 0 dB),
	// 6-7 idle again.
	idleA, err := tiledcfd.NewNoiseBand(3*window, 0.2, 1)
	if err != nil {
		log.Fatal(err)
	}
	busy, err := tiledcfd.NewBPSKBand(3*window, 8.0/k, 8, 0, 2)
	if err != nil {
		log.Fatal(err)
	}
	idleB, err := tiledcfd.NewNoiseBand(2*window, 0.2, 3)
	if err != nil {
		log.Fatal(err)
	}
	stream := append(append(idleA, busy...), idleB...)

	verdicts, err := tiledcfd.Watch(stream, tiledcfd.Config{
		K: k, M: m, Q: 4, Blocks: blocks, Threshold: 0.35, MinAbsA: 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== continuous monitoring: 8 sensing windows ==")
	fmt.Printf("%-8s %-10s %-10s %s\n", "window", "verdict", "statistic", "timeline")
	var bar strings.Builder
	for _, v := range verdicts {
		verdict := "idle"
		mark := "."
		if v.Detected {
			verdict = "OCCUPIED"
			mark = "#"
		}
		bar.WriteString(mark)
		fmt.Printf("%-8d %-10s %-10.3f %s\n", v.Window, verdict, v.Statistic, bar.String())
	}
	fmt.Println()
	fmt.Printf("occupancy bar: [%s]  (truth: ...###..)\n", bar.String())
	fmt.Println("the network can transmit during '.' windows and must vacate during '#'.")
	if windows != len(verdicts) {
		fmt.Printf("note: %d windows expected, %d sensed\n", windows, len(verdicts))
	}
}
