// Command mappingexplorer renders the paper's step-1 artefacts for a
// small, human-readable grid (m = 4, the size of the paper's own Figures
// 1 and 5–7): the space/time-delay diagrams of both register chains, the
// derived chain properties, and the folding table — then verifies the
// composition law and prints the same artefacts for the paper's full
// M = 64 grid numerically.
//
// Run: go run ./examples/mappingexplorer
package main

import (
	"fmt"
	"log"

	"tiledcfd"
	"tiledcfd/internal/mapping"
)

func main() {
	fmt.Println("== composition law (section 3.2) ==")
	if err := mapping.VerifyComposition(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("P2b'·P2a1' = P2' = P2b'·P2a2'  -- verified")
	fmt.Println()

	fmt.Println("== space/time-delay diagrams, m = 4 (paper Figure 5) ==")
	fmt.Println(mapping.RenderSpaceTime(4, mapping.XConjChain))
	fmt.Println(mapping.RenderSpaceTime(4, mapping.XChain))

	fmt.Println("== register chains, m = 4 (Figures 6/7) ==")
	chains, err := mapping.SynthesiseChains(4)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range chains {
		fmt.Printf("%-3s chain: %d taps, %d registers, injects at a=%+d, flow direction %+d\n",
			c.Kind, c.Taps, c.Registers, c.InjectEnd, c.Kind.Dir())
	}
	fmt.Println()

	fmt.Println("== folding onto 4 cores, m = 4 (expressions 8/9) ==")
	fold, err := mapping.NewFolding(7, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(fold)
	fmt.Println()

	fmt.Println("== the paper's full grid: M = 64 on Q = 4 ==")
	mp, err := tiledcfd.DeriveMapping(64, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P = %d logical processors, T = %d tasks per core\n", mp.P, mp.T)
	fmt.Printf("chain registers: %d per chain\n", mp.ChainRegisters)
	fmt.Printf("DSCF accumulators per core: %d words of the Montium's 8192\n", mp.MemoryWordsPerCore)
	for q, r := range mp.TaskRanges {
		fmt.Printf("  core %d executes tasks %3d..%3d  (offsets a = %+d..%+d)\n",
			q, r[0], r[1]-1, r[0]-63, r[1]-1-63)
	}
}
