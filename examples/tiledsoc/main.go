// Command tiledsoc walks through the paper's two-step methodology itself:
// derive the step-1 mapping (task distribution, chains, memory budget) for
// several core counts, then execute the paper's 4-core configuration on
// the simulated platform and compare every measured number with the
// published one — Table 1, the 139.96 µs integration step, the NoC traffic
// argument, and the section 5 scaling.
//
// Run: go run ./examples/tiledsoc
package main

import (
	"fmt"
	"log"

	"tiledcfd"
)

func main() {
	fmt.Println("== step 1: mapping derivation (M = 64, P = 127 tasks) ==")
	for _, q := range []int{1, 2, 4, 8} {
		mp, err := tiledcfd.DeriveMapping(64, q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Q=%d: T=%3d tasks/core, accumulator footprint %5d words/core",
			q, mp.T, mp.MemoryWordsPerCore)
		if mp.MemoryWordsPerCore > 8192 {
			fmt.Printf("  -> exceeds the Montium's 8K words (infeasible, as the paper implies)")
		}
		fmt.Println()
		if q == 4 {
			fmt.Println("   task table (paper section 3.3):")
			for c, r := range mp.TaskRanges {
				fmt.Printf("     core %d: tasks %3d..%3d (%d tasks)\n", c, r[0], r[1]-1, r[1]-r[0])
			}
			fmt.Printf("   register chains: %d taps, %d registers each (Figure 6/7)\n",
				mp.P, mp.ChainRegisters)
		}
	}

	fmt.Println()
	fmt.Println("== step 2: execution on the 4-tile platform ==")
	const blocks = 2
	band, err := tiledcfd.NewBPSKBand(256*blocks, 32.0/256, 8, 10, 7)
	if err != nil {
		log.Fatal(err)
	}
	s, err := tiledcfd.Sense(band, tiledcfd.Config{Blocks: blocks, Threshold: 0.3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s %10s %10s\n", "Table 1 row", "measured", "paper")
	rows := []struct {
		name     string
		got, ref int64
	}{
		{"multiply accumulate", s.Breakdown.MultiplyAccumulate, 12192},
		{"read data", s.Breakdown.ReadData, 381},
		{"FFT", s.Breakdown.FFT, 1040},
		{"reshuffling", s.Breakdown.Reshuffle, 256},
		{"initialisation", s.Breakdown.Initialisation, 127},
		{"total", s.Breakdown.Total, 13996},
	}
	for _, r := range rows {
		mark := "ok"
		if r.got != r.ref {
			mark = "MISMATCH"
		}
		fmt.Printf("%-22s %10d %10d   %s\n", r.name, r.got, r.ref, mark)
	}

	fmt.Println()
	fmt.Println("== NoC traffic (paper section 4) ==")
	perBlockMACs := s.TotalMACs / int64(blocks)
	perBlockNoC := s.NoCValues / int64(blocks)
	fmt.Printf("MACs per block:              %d\n", perBlockMACs)
	fmt.Printf("NoC boundary values/block:   %d\n", perBlockNoC)
	fmt.Printf("compute/communication ratio: %.1f (chains shift once per T=32 operations)\n",
		float64(perBlockMACs)/float64(perBlockNoC))

	fmt.Println()
	fmt.Println("== section 5 evaluation and scaling ==")
	fmt.Printf("integration step: %.2f µs, bandwidth %.1f kHz, %0.f mm², %0.f mW\n",
		s.BlockTimeMicros, s.AnalysedBandwidthkHz, s.AreaMM2, s.PowerMW)
	fmt.Println("linear scaling over platform instances (each sensing its own band):")
	fmt.Printf("%10s %8s %14s %10s %10s\n", "platforms", "cores", "bandwidth/kHz", "area/mm²", "power/mW")
	base, err := tiledcfd.Evaluate(256, 4, s.CyclesPerBlock)
	if err != nil {
		log.Fatal(err)
	}
	for _, n := range []int{1, 2, 4, 8} {
		e, err := tiledcfd.Evaluate(256, 4*n, s.CyclesPerBlock)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10d %8d %14.1f %10.1f %10.1f\n",
			n, 4*n, float64(n)*base.AnalysedBandwidthkHz, e.AreaMM2, e.PowerMW)
	}
}
