// Command quantization sweeps the word-level configuration of the Q15
// fixed-point estimator backends (fam-q15, ssca-q15) against their float
// references: input backoff (quantisation headroom), FFT stage-scaling
// policy (block-floating-point with tracked exponents vs the Montium
// kernel's unconditional 1/2 per stage) and SNR. For each point it
// prints the surface SQNR, the bias at the feature peak a detector
// thresholds, saturation counts and the modeled Montium cycle cost —
// the section 4.1 dynamic-range argument, measured.
//
// Run: go run ./examples/quantization
package main

import (
	"fmt"
	"log"

	"tiledcfd/internal/quant"
)

func main() {
	rep, err := quant.Run(quant.Config{
		K: 256, M: 64, Samples: 2048,
		Backoffs: []float64{1, 0.5, 0.25, 0.125},
		SNRsDB:   []float64{10, 0},
		Seed:     2026,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Q15 fixed-point accuracy sweep (K=256, M=64, 2048 samples) ==")
	fmt.Println()
	fmt.Printf("%-6s %-8s %8s %7s | %9s %10s %6s %5s %12s\n",
		"est", "policy", "backoff", "snr", "SQNR", "peak bias", "sat", "exp", "cycles")
	last := ""
	for _, pt := range rep.Points {
		if key := pt.Backend + pt.Policy; key != last {
			if last != "" {
				fmt.Println()
			}
			last = key
		}
		fmt.Printf("%-6s %-8s %8.3f %5.0fdB | %7.1fdB %9.2f%% %6d %5d %12d\n",
			pt.Backend, pt.Policy, pt.Backoff, pt.SNRdB,
			pt.SQNRdB, 100*pt.PeakBias, pt.SaturatedCells, pt.Exp, pt.Cycles)
	}
	fmt.Println()
	fmt.Println("Reading the table: block-floating-point scaling holds the SQNR")
	fmt.Println("roughly flat as the input backs off (the tracked exponent re-uses")
	fmt.Println("the headroom), while the uniform 1/2-per-stage policy loses about")
	fmt.Println("6 dB per halving. Peak bias stays within a few percent wherever")
	fmt.Println("SQNR clears ~40 dB, which is why the E14 detection verdicts match")
	fmt.Println("the float path exactly at calibrated thresholds.")
}
