// Command spectrumsensing plays out the Cognitive-Radio scenario of the
// paper's introduction (the AAF emergency-communications project): scan a
// set of candidate channels, decide per channel whether a licensed user is
// transmitting, and list the free channels an ad-hoc network could claim.
//
// The decision layer comes from the pluggable detector registry
// (Config.Detector / DetectorNames): the scan runs the Dandawate–
// Giannakis asymptotic test ("dg") at the licensed class's known cycle
// frequencies — a BPSK user at 8 samples per symbol has features at the
// symbol rate and around the doubled carrier — with the threshold
// derived in closed form from a target false-alarm probability. No
// calibration run, no hand-tuned threshold: the statistic is
// asymptotically chi-square under noise, so Pfa is set by construction.
// Licensed users appear at different SNRs, down to levels where plain
// energy measurement would be unreliable.
//
// Run: go run ./examples/spectrumsensing
package main

import (
	"fmt"
	"log"
	"strings"

	"tiledcfd"
)

// channel describes one candidate band of the scan.
type channel struct {
	name     string
	occupied bool
	snrDB    float64
	carrier  float64 // normalised carrier of the licensed user, if any
	seed     uint64
}

func main() {
	// Sensing geometry: 64-point spectra, 32 integration blocks of the
	// software DSCF — a fast-scan configuration (the paper's full
	// 256/127x127 platform geometry is exercised in the quickstart
	// example). The alpha candidates are the licensed class's cycle
	// bins at K=64: the symbol rate (64/8 = 8) and its first harmonic
	// sideband (8/2 = 4), both inside the 31x31 pruned grid.
	const (
		k         = 64
		m         = 16
		blocks    = 32
		n         = k * blocks
		targetPfa = 0.05
	)
	alphas := []int{8, 4}

	channels := []channel{
		{name: "ch-1 (public safety uplink)", occupied: true, snrDB: 8, carrier: 8.0 / k, seed: 11},
		{name: "ch-2", occupied: false, seed: 12},
		{name: "ch-3 (weak licensed user)", occupied: true, snrDB: 0, carrier: 12.0 / k, seed: 13},
		{name: "ch-4", occupied: false, seed: 14},
		{name: "ch-5 (very weak user)", occupied: true, snrDB: -3, carrier: 10.0 / k, seed: 15},
		{name: "ch-6", occupied: false, seed: 16},
	}

	fmt.Printf("== spectrum scan: 6 candidate channels ==\n")
	fmt.Printf("registry detectors: %s — scanning with \"dg\" at Pfa %.2f\n\n",
		strings.Join(tiledcfd.DetectorNames(), ", "), targetPfa)
	fmt.Printf("%-30s %-10s %-10s %-9s %s\n", "channel", "truth", "verdict", "statistic", "threshold")
	var free []string
	for _, ch := range channels {
		var band []complex128
		var err error
		if ch.occupied {
			band, err = tiledcfd.NewBPSKBand(n, ch.carrier, 8, ch.snrDB, ch.seed)
		} else {
			band, err = tiledcfd.NewNoiseBand(n, 0.2, ch.seed)
		}
		if err != nil {
			log.Fatal(err)
		}
		s, err := tiledcfd.Sense(band, tiledcfd.Config{
			K: k, M: m, Blocks: blocks, Estimator: "direct",
			AlphaCandidates: alphas,
			Detector:        "dg", TargetPfa: targetPfa,
		})
		if err != nil {
			log.Fatal(err)
		}
		truth := "idle"
		if ch.occupied {
			truth = fmt.Sprintf("user@%+.0fdB", ch.snrDB)
		}
		verdict := "FREE"
		if s.Detected {
			verdict = "OCCUPIED"
		} else {
			free = append(free, ch.name)
		}
		fmt.Printf("%-30s %-10s %-10s %-9.3f %.3f\n", ch.name, truth, verdict, s.Statistic, s.Threshold)
	}
	fmt.Println()
	fmt.Printf("channels available for the ad-hoc network: %d\n", len(free))
	for _, name := range free {
		fmt.Printf("  - %s\n", name)
	}
}
