// Command spectrumsensing plays out the Cognitive-Radio scenario of the
// paper's introduction (the AAF emergency-communications project): scan a
// set of candidate channels, decide per channel whether a licensed user is
// transmitting, and list the free channels an ad-hoc network could claim.
//
// Each channel is sensed independently with the full pipeline on the
// simulated 4-tile platform. Licensed users appear at different SNRs, down
// to levels where plain energy measurement would be unreliable; the
// cyclostationary statistic stays calibrated because it is normalised by
// the channel's own PSD.
//
// Run: go run ./examples/spectrumsensing
package main

import (
	"fmt"
	"log"

	"tiledcfd"
)

// channel describes one candidate band of the scan.
type channel struct {
	name     string
	occupied bool
	snrDB    float64
	carrier  float64 // normalised carrier of the licensed user, if any
	seed     uint64
}

func main() {
	// Sensing geometry: 64-point spectra, 31x31 DSCF, 32 integration
	// blocks — a fast-scan configuration (the paper's full 256/127x127
	// geometry is exercised in the quickstart example).
	const (
		k         = 64
		m         = 16
		blocks    = 32
		n         = k * blocks
		threshold = 0.30 // ~10% false-alarm rate at this geometry
	)

	channels := []channel{
		{name: "ch-1 (public safety uplink)", occupied: true, snrDB: 8, carrier: 8.0 / k, seed: 11},
		{name: "ch-2", occupied: false, seed: 12},
		{name: "ch-3 (weak licensed user)", occupied: true, snrDB: 0, carrier: 12.0 / k, seed: 13},
		{name: "ch-4", occupied: false, seed: 14},
		{name: "ch-5 (very weak user)", occupied: true, snrDB: -3, carrier: 10.0 / k, seed: 15},
		{name: "ch-6", occupied: false, seed: 16},
	}

	fmt.Println("== spectrum scan: 6 candidate channels ==")
	fmt.Printf("%-30s %-10s %-10s %-9s %s\n", "channel", "truth", "verdict", "statistic", "feature (a)")
	var free []string
	for _, ch := range channels {
		var band []complex128
		var err error
		if ch.occupied {
			band, err = tiledcfd.NewBPSKBand(n, ch.carrier, 8, ch.snrDB, ch.seed)
		} else {
			band, err = tiledcfd.NewNoiseBand(n, 0.2, ch.seed)
		}
		if err != nil {
			log.Fatal(err)
		}
		s, err := tiledcfd.Sense(band, tiledcfd.Config{
			K: k, M: m, Q: 4, Blocks: blocks, Threshold: threshold, MinAbsA: 2,
		})
		if err != nil {
			log.Fatal(err)
		}
		truth := "idle"
		if ch.occupied {
			truth = fmt.Sprintf("user@%+.0fdB", ch.snrDB)
		}
		verdict := "FREE"
		if s.Detected {
			verdict = "OCCUPIED"
		} else {
			free = append(free, ch.name)
		}
		fmt.Printf("%-30s %-10s %-10s %-9.3f a=%d\n", ch.name, truth, verdict, s.Statistic, s.FeatureA)
	}
	fmt.Println()
	fmt.Printf("channels available for the ad-hoc network: %d\n", len(free))
	for _, name := range free {
		fmt.Printf("  - %s\n", name)
	}
}
