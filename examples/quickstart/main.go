// Command quickstart is the smallest end-to-end use of the library: build
// a band containing a licensed BPSK transmitter, run the paper's full
// spectrum-sensing pipeline (4 simulated Montium tiles, 256-point spectra,
// 127x127 DSCF), and print the verdict together with the measured Table 1
// and the section 5 evaluation figures.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tiledcfd"
)

func main() {
	// A licensed user: real BPSK on carrier bin 32 (of 256), 8 samples per
	// symbol, at +6 dB SNR. Four integration blocks of 256 samples.
	const blocks = 4
	band, err := tiledcfd.NewBPSKBand(256*blocks, 32.0/256, 8, 6, 2026)
	if err != nil {
		log.Fatal(err)
	}

	sensing, err := tiledcfd.Sense(band, tiledcfd.Config{
		Blocks:    blocks,
		Threshold: 0.3, // calibrated for ~10% false alarms at this geometry
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Cyclostationary Feature Detection on a tiled-SoC ==")
	fmt.Printf("verdict:            %v (statistic %.3f vs threshold %.3f)\n",
		sensing.Detected, sensing.Statistic, sensing.Threshold)
	fmt.Printf("strongest feature:  f=%d, a=%d (cycle frequency 2a = %d bins)\n",
		sensing.FeatureF, sensing.FeatureA, 2*sensing.FeatureA)
	fmt.Println()
	fmt.Println("measured cycle breakdown per integration step (paper Table 1):")
	fmt.Printf("  multiply accumulate %6d   (paper: 12192)\n", sensing.Breakdown.MultiplyAccumulate)
	fmt.Printf("  read data           %6d   (paper:   381)\n", sensing.Breakdown.ReadData)
	fmt.Printf("  FFT                 %6d   (paper:  1040)\n", sensing.Breakdown.FFT)
	fmt.Printf("  reshuffling         %6d   (paper:   256)\n", sensing.Breakdown.Reshuffle)
	fmt.Printf("  initialisation      %6d   (paper:   127)\n", sensing.Breakdown.Initialisation)
	fmt.Printf("  total               %6d   (paper: 13996)\n", sensing.Breakdown.Total)
	fmt.Println()
	fmt.Println("evaluation (paper section 5):")
	fmt.Printf("  integration step:   %.2f µs   (paper: ~140 µs)\n", sensing.BlockTimeMicros)
	fmt.Printf("  analysed bandwidth: %.1f kHz  (paper: ~915 kHz)\n", sensing.AnalysedBandwidthkHz)
	fmt.Printf("  chip area:          %.1f mm²  (paper: ~8 mm²)\n", sensing.AreaMM2)
	fmt.Printf("  power:              %.1f mW   (paper: ~200 mW)\n", sensing.PowerMW)
}
