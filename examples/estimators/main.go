// Command estimators compares the three spectral-correlation estimators
// — the paper's direct DSCF, the FFT Accumulation Method (FAM) and the
// Strip Spectral Correlation Analyzer (SSCA) — on the same licensed-user
// band: where each locates the strongest cyclic feature, what statistic
// the blind detector reads off each surface, and what each estimate
// costs in complex multiplications.
//
// Run: go run ./examples/estimators
package main

import (
	"fmt"
	"log"

	"tiledcfd"
)

func main() {
	// A licensed user: real BPSK on carrier bin 32 (of 256), 8 samples
	// per symbol, at +10 dB SNR. Its doubled carrier puts the strongest
	// cyclic feature at offset a = ±32.
	const k, m, blocks = 256, 64, 8
	band, err := tiledcfd.NewBPSKBand(k*blocks, 32.0/float64(k), 8, 10, 2026)
	if err != nil {
		log.Fatal(err)
	}
	noise, err := tiledcfd.NewNoiseBand(k*blocks, 0.25, 2027)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Spectral-correlation estimator comparison (K=256, M=64) ==")
	fmt.Println()
	fmt.Printf("%-8s %14s %12s %12s %14s %12s\n",
		"", "feature (f,a)", "stat (H1)", "stat (H0)", "FFT mults", "other mults")
	for _, name := range []string{"direct", "fam", "ssca"} {
		cfg := tiledcfd.Config{K: k, M: m, Blocks: blocks, Threshold: 0.4, Estimator: name}
		sc, err := tiledcfd.SpectralCorrelation(band, cfg)
		if err != nil {
			log.Fatal(err)
		}
		busy, err := tiledcfd.Sense(band, cfg)
		if err != nil {
			log.Fatal(err)
		}
		idle, err := tiledcfd.Sense(noise, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %14s %12.4f %12.4f %14d %12d\n",
			name, fmt.Sprintf("(%d,%d)", sc.FeatureF, sc.FeatureA),
			busy.Statistic, idle.Statistic, sc.FFTMults, sc.EstimatorMults)
	}
	fmt.Println()
	fmt.Println("All three concentrate on the doubled carrier at |a| = 32; the")
	fmt.Println("direct method is cheapest on the fixed (2M-1)^2 grid, while FAM")
	fmt.Println("and SSCA spend their extra transforms buying cycle-frequency")
	fmt.Println("resolution (1/(P*L) and 1/N versus the direct 2/K).")
}
