package main

import "testing"

func TestSweepRuns(t *testing.T) {
	// The acceptance sweep geometry, small tile list, per-tile output.
	err := sweep("fam", 256, 64, 8, 0, "1,2,4", "single,pipelined,sharded",
		100, 4, 1, 10240, true)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSweepErrors(t *testing.T) {
	if err := sweep("fam", 256, 64, 8, 0, "0", "single", 100, 4, 1, 10240, false); err == nil {
		t.Error("tile count 0 accepted")
	}
	if err := sweep("fam", 256, 64, 8, 0, "x", "single", 100, 4, 1, 10240, false); err == nil {
		t.Error("non-integer tile count accepted")
	}
	if err := sweep("fam", 256, 64, 8, 0, "4", "zigzag", 100, 4, 1, 10240, false); err == nil {
		t.Error("unknown strategy accepted")
	}
	if err := sweep("nope", 256, 64, 8, 0, "4", "single", 100, 4, 1, 10240, false); err == nil {
		t.Error("unknown estimator accepted")
	}
}

func TestDeriveRuns(t *testing.T) {
	if err := deriveRun(8, 4, true); err != nil {
		t.Fatal(err)
	}
	if err := deriveRun(64, 4, false); err != nil {
		t.Fatal(err)
	}
}

func TestParseInts(t *testing.T) {
	got, err := parseInts(" 1, 2 ,8 ")
	if err != nil || len(got) != 3 || got[2] != 8 {
		t.Fatalf("parseInts = %v, %v", got, err)
	}
	if _, err := parseInts(""); err == nil {
		t.Error("empty list accepted")
	}
	if _, err := parseInts("-1"); err == nil {
		t.Error("negative accepted")
	}
}
