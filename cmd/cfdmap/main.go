// Command cfdmap explores the multi-tile mapping design space: it
// partitions an estimator pipeline into a task DAG, schedules it onto a
// modeled tile fabric under every requested mapping strategy and tile
// count, and prints the paper-style tiles-vs-throughput table —
// predicted end-to-end latency, sustained pipelined throughput, busiest-
// tile utilization, NoC traffic and local-memory feasibility per row.
//
// Usage:
//
//	cfdmap [-estimator fam] [-k 256] [-m 0] [-blocks 8] [-hop 0]
//	       [-tiles 1,2,4,8] [-strategies single,pipelined,sharded]
//	       [-clock 100] [-link-latency 4] [-link-bw 1] [-mem 10240]
//	       [-pertile]
//
// Every schedule is validated before it is reported (no tile runs two
// tasks at once, every cross-tile edge is charged a NoC transfer).
// -pertile appends the per-tile cycle/transfer breakdown of each row.
//
// The legacy step-1 derivation mode (the paper's verified line array,
// register chains and folding table) remains available:
//
//	cfdmap -derive [-m 64] [-q 4] [-diagrams]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"tiledcfd"
	"tiledcfd/internal/mapping"
	"tiledcfd/internal/montium"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cfdmap: ")
	var (
		estimator  = flag.String("estimator", "fam", "pipeline to map: "+strings.Join(tiledcfd.EstimatorNames(), ", "))
		k          = flag.Int("k", 256, "FFT / channelizer size K")
		m          = flag.Int("m", 0, "grid half-extent M (0 = K/4; -derive default 64)")
		blocks     = flag.Int("blocks", 8, "integration blocks of K samples per window")
		hop        = flag.Int("hop", 0, "channelizer hop in samples (0 = estimator default)")
		tiles      = flag.String("tiles", "1,2,4,8", "comma-separated tile counts to sweep")
		strategies = flag.String("strategies", strings.Join(tiledcfd.MappingNames(), ","), "comma-separated mapping strategies")
		clock      = flag.Float64("clock", 100, "tile clock in MHz")
		linkLat    = flag.Int("link-latency", 4, "NoC link latency in cycles (negative = zero-latency links)")
		linkBW     = flag.Float64("link-bw", 1, "NoC link bandwidth in 16-bit words per cycle")
		mem        = flag.Int("mem", 10*montium.MemWords, "per-tile local memory in 16-bit words")
		perTile    = flag.Bool("pertile", false, "print the per-tile breakdown of every mapping")
		derive     = flag.Bool("derive", false, "run the paper's step-1 mapping derivation instead of the sweep")
		q          = flag.Int("q", 4, "with -derive: number of cores Q")
		diagrams   = flag.Bool("diagrams", false, "with -derive: render space/time-delay diagrams (m <= 8)")
	)
	flag.Parse()

	if *linkLat == 0 {
		// The flag's default is 4, so an explicit 0 really means free
		// links — FabricConfig spells that with a negative value (its
		// zero value keeps meaning "the paper's platform").
		*linkLat = -1
	}
	if *derive {
		dm := *m
		if dm == 0 {
			dm = 64
		}
		if err := deriveRun(dm, *q, *diagrams); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := sweep(*estimator, *k, *m, *blocks, *hop, *tiles, *strategies,
		*clock, *linkLat, *linkBW, *mem, *perTile); err != nil {
		log.Fatal(err)
	}
}

// sweep prints the tiles-vs-throughput table over the requested
// strategies and tile counts, with the single-tile schedule as the
// speedup baseline.
func sweep(estimator string, k, m, blocks, hop int, tilesCSV, strategiesCSV string,
	clock float64, linkLat int, linkBW float64, mem int, perTile bool) error {
	tileCounts, err := parseInts(tilesCSV)
	if err != nil {
		return fmt.Errorf("-tiles: %w", err)
	}
	cfg := tiledcfd.Config{K: k, M: m, Blocks: blocks, Hop: hop, Estimator: estimator}
	fabFor := func(tiles int) tiledcfd.FabricConfig {
		return tiledcfd.FabricConfig{
			Tiles: tiles, ClockMHz: clock, LocalMemWords: mem,
			LinkLatency: linkLat, LinkWordsPerCycle: linkBW,
		}
	}
	base, err := tiledcfd.MapEstimate(cfg, fabFor(1), "single")
	if err != nil {
		return err
	}
	fmt.Printf("mapping sweep: estimator=%s K=%d M=%d window=%d samples, serial total %d cycles\n",
		base.Estimator, k, mOrDefault(m, k), base.WindowSamples, base.LatencyCycles)
	shownLat := linkLat
	if shownLat < 0 {
		shownLat = 0
	}
	fmt.Printf("fabric: %.0f MHz tiles, %d-word local memories, NoC links %d-cycle latency, %.2g words/cycle\n\n",
		clock, mem, shownLat, linkBW)
	fmt.Printf("%-10s %6s %12s %15s %9s %10s %10s %5s\n",
		"strategy", "tiles", "latency µs", "sustained Msps", "speedup", "busy util", "NoC words", "mem")
	for _, strategy := range splitCSV(strategiesCSV) {
		for _, tc := range tileCounts {
			e, err := tiledcfd.MapEstimate(cfg, fabFor(tc), strategy)
			if err != nil {
				return err
			}
			busiest := 0.0
			for _, u := range e.PerTile {
				if u.Utilization > busiest {
					busiest = u.Utilization
				}
			}
			memNote := "ok"
			if !e.MemFeasible {
				memNote = "OVER"
			}
			fmt.Printf("%-10s %6d %12.1f %15.3f %8.2fx %9.0f%% %10d %5s\n",
				strategy, tc, e.LatencyMicros, e.SustainedSamplesPerSec/1e6,
				e.SustainedSamplesPerSec/base.SustainedSamplesPerSec,
				100*busiest, e.NoCWords, memNote)
			if perTile {
				for _, u := range e.PerTile {
					fmt.Printf("           tile %d: %3d tasks, %9d compute cycles, %8d transfer cycles, util %3.0f%%, %6d mem words\n",
						u.Tile, u.Tasks, u.ComputeCycles, u.TransferCycles, 100*u.Utilization, u.MemWords)
				}
			}
		}
	}
	fmt.Println("\nsustained = steady-state throughput with consecutive windows pipelined;")
	fmt.Println("speedup is vs the single-tile schedule; every schedule is validated")
	fmt.Println("(no tile oversubscription, all cross-tile edges charged NoC transfers).")
	return nil
}

// parseInts parses a comma-separated list of positive integers.
func parseInts(csv string) ([]int, error) {
	var out []int
	for _, s := range splitCSV(csv) {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("%q is not a positive integer", s)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

// splitCSV splits a comma-separated list, trimming blanks.
func splitCSV(csv string) []string {
	var out []string
	for _, s := range strings.Split(csv, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}

func mOrDefault(m, k int) int {
	if m == 0 {
		return k / 4
	}
	return m
}

// deriveRun reproduces the paper's step-1 mapping artefacts: the
// verified line array, the register chains, optionally the Figure 5
// diagrams, and the folding table with its Montium memory budget.
func deriveRun(m, q int, diagrams bool) error {
	if err := mapping.VerifyComposition(); err != nil {
		return err
	}
	fmt.Println("composition law P2b'·P2a1' = P2' = P2b'·P2a2': verified")

	la, err := mapping.DeriveLineArray(m, 2)
	if err != nil {
		return err
	}
	fmt.Printf("\nstep 1 line array: P = %d PEs (a = %+d..%+d), F = %d frequencies, %d complex words of result storage\n",
		la.P(), -(m - 1), m-1, la.F(), la.TotalMemoryWords())

	chains, err := mapping.SynthesiseChains(m)
	if err != nil {
		return err
	}
	for _, c := range chains {
		fmt.Printf("%-3s chain: %d taps, %d registers, inject end a=%+d, flow %+d\n",
			c.Kind, c.Taps, c.Registers, c.InjectEnd, c.Kind.Dir())
	}

	if diagrams {
		if m > 8 {
			fmt.Fprintln(os.Stderr, "cfdmap: -diagrams skipped (m too large to render)")
		} else {
			fmt.Println()
			fmt.Print(mapping.RenderSpaceTime(m, mapping.XConjChain))
			fmt.Println()
			fmt.Print(mapping.RenderSpaceTime(m, mapping.XChain))
		}
	}

	fold, err := mapping.NewFolding(la.P(), q)
	if err != nil {
		return err
	}
	if err := fold.Validate(); err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(fold)
	fmt.Printf("inter-core exchange rate: 1/%d of the computation rate\n", fold.CommReductionFactor())

	// Montium memory feasibility for this (m, q).
	words := 2 * fold.T * la.F()
	fmt.Printf("\nMontium budget: %d accumulator words per core of %d available", words, montium.AccumCapacityWords)
	if words > montium.AccumCapacityWords {
		fmt.Printf("  -> INFEASIBLE on the Montium; increase Q")
	}
	fmt.Println()
	return nil
}
