// Command cfdmap runs the paper's step-1 mapping derivation for arbitrary
// grid sizes and core counts and prints the resulting artefacts: the
// verified line array, the space/time-delay diagrams (for small grids),
// the register chains, and the folding table with its memory budget.
//
// Usage:
//
//	cfdmap [-m 64] [-q 4] [-diagrams]
//
// -m sets the grid half-extent (f, a span ±(m-1)); -q the core count;
// -diagrams renders the Figure 5 diagrams (only sensible for m <= 8).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"tiledcfd/internal/mapping"
	"tiledcfd/internal/montium"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cfdmap: ")
	m := flag.Int("m", 64, "grid half-extent M (f, a span ±(M-1))")
	q := flag.Int("q", 4, "number of cores Q")
	diagrams := flag.Bool("diagrams", false, "render space/time-delay diagrams (m <= 8)")
	flag.Parse()

	if err := run(*m, *q, *diagrams); err != nil {
		log.Fatal(err)
	}
}

func run(m, q int, diagrams bool) error {
	if err := mapping.VerifyComposition(); err != nil {
		return err
	}
	fmt.Println("composition law P2b'·P2a1' = P2' = P2b'·P2a2': verified")

	la, err := mapping.DeriveLineArray(m, 2)
	if err != nil {
		return err
	}
	fmt.Printf("\nstep 1 line array: P = %d PEs (a = %+d..%+d), F = %d frequencies, %d complex words of result storage\n",
		la.P(), -(m - 1), m-1, la.F(), la.TotalMemoryWords())

	chains, err := mapping.SynthesiseChains(m)
	if err != nil {
		return err
	}
	for _, c := range chains {
		fmt.Printf("%-3s chain: %d taps, %d registers, inject end a=%+d, flow %+d\n",
			c.Kind, c.Taps, c.Registers, c.InjectEnd, c.Kind.Dir())
	}

	if diagrams {
		if m > 8 {
			fmt.Fprintln(os.Stderr, "cfdmap: -diagrams skipped (m too large to render)")
		} else {
			fmt.Println()
			fmt.Print(mapping.RenderSpaceTime(m, mapping.XConjChain))
			fmt.Println()
			fmt.Print(mapping.RenderSpaceTime(m, mapping.XChain))
		}
	}

	fold, err := mapping.NewFolding(la.P(), q)
	if err != nil {
		return err
	}
	if err := fold.Validate(); err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(fold)
	fmt.Printf("inter-core exchange rate: 1/%d of the computation rate\n", fold.CommReductionFactor())

	// Montium memory feasibility for this (m, q).
	words := 2 * fold.T * la.F()
	fmt.Printf("\nMontium budget: %d accumulator words per core of %d available", words, montium.AccumCapacityWords)
	if words > montium.AccumCapacityWords {
		fmt.Printf("  -> INFEASIBLE on the Montium; increase Q")
	}
	fmt.Println()
	return nil
}
