// Command cfdsim runs the full spectrum-sensing simulation on a
// synthetic band and reports the verdict, the measured cycle breakdown
// and the evaluation figures.
//
// Usage:
//
//	cfdsim [-k 256] [-m 64] [-q 4] [-blocks 4] [-snr 6] [-carrier 0.125]
//	       [-symlen 8] [-idle] [-threshold 0.3] [-seed 1]
//	       [-estimator platform|direct|fam|ssca] [-hop n] [-workers n]
//	       [-alpha 16,32] [-alpha-hz ...] [-rate hz]
//	       [-detector cfar|fixed|dg|urriza] [-pfa 0.05]
//
// With -idle the band contains only noise (the H0 hypothesis); otherwise a
// BPSK licensed user at the given SNR and normalised carrier frequency is
// present. The default estimator is the paper's bit-true tiled-SoC
// platform; -estimator swaps in a software spectral-correlation estimator
// (the direct DSCF, the FFT Accumulation Method, or the Strip Spectral
// Correlation Analyzer), which reports complex-multiplication counts
// instead of hardware cycles.
//
// -alpha restricts a software estimator to a comma-separated list of
// cycle-frequency bin offsets (alpha pruning): only the listed strips,
// their mirrors and a=0 are computed, bit-identical to the full plane,
// and cost scales with the candidate count instead of M. -alpha-hz
// lists physical cycle frequencies instead, converted with the -rate
// sample rate — a BPSK user has features at its symbol rate and twice
// its carrier.
//
// -detector selects the decision layer by registry name. The
// asymptotic detectors (dg, urriza) test the -alpha cycle set directly
// on the samples and derive their threshold in closed form from the
// -pfa target false-alarm probability — no calibration. Without
// -detector the legacy mapping applies: the -threshold fixed decision.
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"tiledcfd"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cfdsim: ")
	k := flag.Int("k", 256, "FFT size K")
	m := flag.Int("m", 0, "grid half-extent M (0 = K/4)")
	q := flag.Int("q", 4, "number of Montium tiles")
	blocks := flag.Int("blocks", 4, "integration blocks")
	snr := flag.Float64("snr", 6, "licensed user SNR in dB")
	carrier := flag.Float64("carrier", 0.125, "normalised carrier frequency (cycles/sample)")
	symlen := flag.Int("symlen", 8, "samples per BPSK symbol")
	idle := flag.Bool("idle", false, "simulate an idle band (noise only)")
	threshold := flag.Float64("threshold", 0.3, "detection threshold")
	seed := flag.Uint64("seed", 1, "random seed")
	estimator := flag.String("estimator", "platform",
		"surface estimator: "+strings.Join(tiledcfd.EstimatorNames(), ", "))
	hop := flag.Int("hop", 0,
		"block/channelizer advance in samples for -estimator=direct|fam|fam-q15 (0 = estimator default; rejected with ssca variants)")
	workers := flag.Int("workers", 0,
		"software-estimator worker goroutines (0 = one per CPU core, 1 = serial)")
	alpha := flag.String("alpha", "",
		"comma-separated alpha-candidate bin offsets (mirrors and a=0 implied); software estimators only")
	alphaHz := flag.String("alpha-hz", "",
		"comma-separated alpha candidates as physical cycle frequencies in Hz, converted with -rate")
	rate := flag.Float64("rate", 0, "sample rate in Hz for -alpha-hz conversion")
	detector := flag.String("detector", "",
		"decision layer: "+strings.Join(tiledcfd.DetectorNames(), ", ")+
			" (\"\" = legacy -threshold fixed decision)")
	pfa := flag.Float64("pfa", 0, "target false-alarm probability for -detector=dg|urriza (0 = 0.05)")
	flag.Parse()

	candidates, err := parseAlphaFlags(*alpha, *alphaHz, *rate, tiledcfd.Config{K: *k, M: *m})
	if err != nil {
		log.Fatal(err)
	}
	if len(candidates) > 0 && *estimator == "platform" {
		log.Fatalf("-alpha requires a software estimator: the platform path computes the "+
			"full surface on the modeled hardware (pick -estimator=%s)",
			strings.Join(softwareEstimators(), "|"))
	}

	if *hop != 0 {
		switch *estimator {
		case "ssca", "ssca-q15":
			log.Fatalf("-hop=%d cannot be combined with -estimator=%s: the strip "+
				"spectral correlation analyzer advances its channelizer one sample "+
				"per hop by definition (drop -hop, or pick -estimator=direct|fam|fam-q15)",
				*hop, *estimator)
		case "platform":
			log.Fatalf("-hop=%d has no effect on the platform path: the tiled SoC "+
				"advances by whole K-sample blocks (pick -estimator=direct|fam|fam-q15)", *hop)
		}
	}

	n := *k * *blocks
	if *estimator == "direct" && *hop != 0 {
		// Overlapping (or gapped) integration blocks change the samples
		// the run consumes: K + (Blocks-1)·Hop instead of K·Blocks.
		n = *k + (*blocks-1)**hop
	}
	var band []complex128
	if *idle {
		band, err = tiledcfd.NewNoiseBand(n, 0.25, *seed)
	} else {
		band, err = tiledcfd.NewBPSKBand(n, *carrier, *symlen, *snr, *seed)
	}
	if err != nil {
		log.Fatal(err)
	}

	s, err := tiledcfd.Sense(band, tiledcfd.Config{
		K: *k, M: *m, Q: *q, Blocks: *blocks, Threshold: *threshold,
		Estimator: *estimator, Hop: *hop, Workers: *workers,
		AlphaCandidates: candidates,
		Detector:        *detector, TargetPfa: *pfa,
	})
	if err != nil {
		log.Fatal(err)
	}

	scenario := fmt.Sprintf("BPSK user at %.1f dB, carrier %.4f", *snr, *carrier)
	if *idle {
		scenario = "idle band (noise only)"
	}
	fmt.Printf("scenario:     %s\n", scenario)
	fmt.Printf("platform:     K=%d, M=%d, Q=%d, %d block(s)\n", *k, mOrDefault(*m, *k), *q, *blocks)
	fmt.Printf("estimator:    %s\n", s.Estimator)
	fmt.Printf("detector:     %s\n", s.Detector)
	if len(candidates) > 0 {
		fmt.Printf("alpha:        pruned to candidates %v (%d of %d rows computed)\n",
			candidates, prunedRows(candidates), 2*mOrDefault(*m, *k)-1)
	}
	fmt.Printf("verdict:      detected=%v  statistic=%.4f  threshold=%.4f\n",
		s.Detected, s.Statistic, s.Threshold)
	fmt.Printf("top feature:  f=%d a=%d\n", s.FeatureF, s.FeatureA)
	fmt.Println()
	if s.Estimator == "platform" {
		fmt.Println("cycle breakdown per integration step:")
		fmt.Printf("  multiply accumulate  %7d\n", s.Breakdown.MultiplyAccumulate)
		fmt.Printf("  read data            %7d\n", s.Breakdown.ReadData)
		fmt.Printf("  FFT                  %7d\n", s.Breakdown.FFT)
		fmt.Printf("  reshuffling          %7d\n", s.Breakdown.Reshuffle)
		fmt.Printf("  initialisation       %7d\n", s.Breakdown.Initialisation)
		fmt.Printf("  total                %7d\n", s.Breakdown.Total)
		fmt.Println()
		fmt.Printf("integration step:   %.3f µs @100 MHz\n", s.BlockTimeMicros)
		fmt.Printf("analysed bandwidth: %.1f kHz\n", s.AnalysedBandwidthkHz)
		fmt.Printf("area / power:       %.1f mm² / %.1f mW\n", s.AreaMM2, s.PowerMW)
		fmt.Printf("NoC traffic:        %d boundary values for %d MACs (ratio %.1f)\n",
			s.NoCValues, s.TotalMACs, ratio(s.TotalMACs, s.NoCValues))
		return
	}
	fmt.Println("software estimator work (complex multiplications):")
	fmt.Printf("  FFTs                 %9d\n", s.FFTMults)
	fmt.Printf("  pointwise products   %9d\n", s.EstimatorMults)
	fmt.Printf("  total                %9d\n", s.FFTMults+s.EstimatorMults)
	if s.ModelCycles > 0 {
		fmt.Printf("modeled Montium cycles (Table-1 kernel accounting): %d\n", s.ModelCycles)
	}
}

// parseAlphaFlags assembles the alpha-candidate set from the -alpha
// (bin offsets) and -alpha-hz (physical frequencies via -rate) flags.
func parseAlphaFlags(alpha, alphaHz string, rate float64, cfg tiledcfd.Config) ([]int, error) {
	var out []int
	if alpha != "" {
		for _, f := range strings.Split(alpha, ",") {
			a, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return nil, fmt.Errorf("-alpha: bad bin offset %q: %v", f, err)
			}
			out = append(out, a)
		}
	}
	if alphaHz != "" {
		if rate <= 0 {
			return nil, fmt.Errorf("-alpha-hz requires -rate (the sample rate in Hz)")
		}
		for _, f := range strings.Split(alphaHz, ",") {
			hz, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("-alpha-hz: bad frequency %q: %v", f, err)
			}
			a, err := cfg.AlphaBinForHz(hz, rate)
			if err != nil {
				return nil, fmt.Errorf("-alpha-hz %s: %v", strings.TrimSpace(f), err)
			}
			out = append(out, a)
		}
	} else if rate != 0 {
		return nil, fmt.Errorf("-rate only has meaning with -alpha-hz")
	}
	return out, nil
}

// softwareEstimators is EstimatorNames without the hardware path.
func softwareEstimators() []string {
	var out []string
	for _, n := range tiledcfd.EstimatorNames() {
		if n != "platform" {
			out = append(out, n)
		}
	}
	return out
}

// prunedRows counts the surface rows a candidate set keeps: a=0 plus
// both mirrors of every distinct non-zero candidate.
func prunedRows(candidates []int) int {
	seen := map[int]bool{0: true}
	rows := 1
	for _, a := range candidates {
		if !seen[a] {
			seen[a] = true
			rows += 2
		}
	}
	return rows
}

func mOrDefault(m, k int) int {
	if m == 0 {
		return k / 4
	}
	return m
}

func ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
