// Command scfplot computes the Discrete Spectral Correlation Function of
// a synthetic signal and renders it as CSV (for plotting) or as an ASCII
// magnitude heat map on the terminal. It makes the doubled-carrier and
// symbol-rate features of the paper's reference signals directly visible.
//
// Usage:
//
//	scfplot [-k 64] [-m 16] [-blocks 8] [-signal bpsk|qpsk|am|tone|ofdm|noise]
//	        [-snr 10] [-carrier 0.125] [-symlen 8] [-format ascii|csv]
//	        [-seed 1]
//
// CSV rows are "a,f,magnitude", one per grid cell.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/cmplx"
	"os"

	"tiledcfd/internal/scf"
	"tiledcfd/internal/sig"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("scfplot: ")
	k := flag.Int("k", 64, "FFT size K")
	m := flag.Int("m", 16, "grid half-extent M")
	blocks := flag.Int("blocks", 8, "integration blocks")
	signal := flag.String("signal", "bpsk", "signal kind: bpsk, qpsk, am, tone, ofdm, noise")
	snr := flag.Float64("snr", 10, "SNR in dB (ignored for noise)")
	carrier := flag.Float64("carrier", 0.125, "normalised carrier frequency")
	symlen := flag.Int("symlen", 8, "samples per symbol (bpsk/qpsk)")
	format := flag.String("format", "ascii", "output format: ascii or csv")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	surface, err := run(*k, *m, *blocks, *signal, *snr, *carrier, *symlen, *seed)
	if err != nil {
		log.Fatal(err)
	}
	switch *format {
	case "csv":
		writeCSV(surface)
	case "ascii":
		writeASCII(surface)
	default:
		log.Fatalf("unknown format %q (want ascii or csv)", *format)
	}
}

func run(k, m, blocks int, kind string, snr, carrier float64, symlen int, seed uint64) (*scf.Surface, error) {
	rng := sig.NewRand(seed)
	n := k * blocks
	var src sig.Source
	switch kind {
	case "bpsk":
		src = &sig.BPSK{Amp: 1, Carrier: carrier, SymbolLen: symlen, Rng: rng}
	case "qpsk":
		src = &sig.QPSK{Amp: 1, Carrier: carrier, SymbolLen: symlen, Rng: rng}
	case "am":
		src = &sig.AM{Amp: 1, Carrier: carrier, ModFreq: carrier / 8, Depth: 0.5}
	case "tone":
		src = &sig.Tone{Amp: 1, Freq: carrier, Real: true}
	case "ofdm":
		// T_sym = k/2 so the CP features land on even grid offsets.
		nfft := 3 * k / 8
		src = &sig.OFDM{Amp: 1, NFFT: nfft, CP: k/2 - nfft, ActiveLow: 1, ActiveHigh: nfft * 3 / 4, Rng: rng}
	case "noise":
		src = &sig.WGN{Sigma: 0.5, Real: true, Rng: rng}
	default:
		return nil, fmt.Errorf("unknown signal kind %q", kind)
	}
	x := sig.Samples(src, n)
	if kind != "noise" {
		var err error
		if x, _, err = sig.AddAWGN(x, snr, true, rng); err != nil {
			return nil, err
		}
	}
	surface, _, err := scf.Compute(x, scf.Params{K: k, M: m, Blocks: blocks})
	return surface, err
}

func writeCSV(s *scf.Surface) {
	fmt.Println("a,f,magnitude")
	ext := s.M - 1
	for a := -ext; a <= ext; a++ {
		for f := -ext; f <= ext; f++ {
			fmt.Printf("%d,%d,%g\n", a, f, cmplx.Abs(s.At(f, a)))
		}
	}
}

// writeASCII renders |S| with a log-ish shade ramp, rows a (cycle offset),
// columns f.
func writeASCII(s *scf.Surface) {
	shades := []byte(" .:-=+*#%@")
	ext := s.M - 1
	// Normalise against the grid maximum.
	maxMag := 0.0
	for a := -ext; a <= ext; a++ {
		for f := -ext; f <= ext; f++ {
			if v := cmplx.Abs(s.At(f, a)); v > maxMag {
				maxMag = v
			}
		}
	}
	if maxMag == 0 {
		fmt.Fprintln(os.Stderr, "scfplot: empty surface")
		return
	}
	fmt.Printf("|DSCF| heat map: rows a=%+d..%+d (top-down), cols f=%+d..%+d; @ = max\n",
		ext, -ext, -ext, ext)
	for a := ext; a >= -ext; a-- {
		fmt.Printf("%+4d |", a)
		for f := -ext; f <= ext; f++ {
			v := cmplx.Abs(s.At(f, a)) / maxMag
			idx := int(v * float64(len(shades)-1))
			fmt.Printf("%c", shades[idx])
		}
		fmt.Println("|")
	}
	prof := s.AlphaProfile()
	fmt.Println("\ncycle-frequency profile (Σ_f |S|, a != 0 rows marked * when > 30% of a=0):")
	base := prof[ext]
	for i, v := range prof {
		a := i - ext
		if a != 0 && v > 0.3*base {
			fmt.Printf("  a=%+d: %.3g *\n", a, v)
		}
	}
}
