// Command paper regenerates every quantitative table, figure and claim of
// "Cyclostationary Feature Detection on a tiled-SoC" (DATE 2007) from the
// simulation stack and prints a paper-vs-measured record — the source of
// docs/PAPER_MAPPING.md. Experiment IDs (E1..E13) follow that map.
//
// Usage: paper [-trials 50]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"tiledcfd/internal/detect"
	"tiledcfd/internal/dg"
	"tiledcfd/internal/fixed"
	"tiledcfd/internal/mapping"
	"tiledcfd/internal/montium"
	"tiledcfd/internal/perf"
	"tiledcfd/internal/scf"
	"tiledcfd/internal/sig"
	"tiledcfd/internal/soc"
	"tiledcfd/internal/systolic"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paper: ")
	trials := flag.Int("trials", 50, "Monte-Carlo trials for E13")
	flag.Parse()
	if err := run(*trials); err != nil {
		log.Fatal(err)
	}
}

func run(trials int) error {
	fmt.Println("reproduction record: Kokkeler et al., \"Cyclostationary Feature")
	fmt.Println("Detection on a tiled-SoC\", DATE 2007 — paper vs measured")
	fmt.Println()

	x, err := testBand(256, 2)
	if err != nil {
		return err
	}

	// --- E1: section 2 complexity claim ---
	_, stats, err := scf.Compute(x, scf.Params{K: 256, M: 64})
	if err != nil {
		return err
	}
	fmt.Println("E1  section 2 complexity (256-point spectrum, per block)")
	fmt.Printf("    DSCF complex mults:   %6d   (paper: ~¼N² = 16384)\n", stats.DSCFMults)
	fmt.Printf("    FFT complex mults:    %6d   (paper: ½N·log₂N = 1024)\n", stats.FFTMults)
	fmt.Printf("    ratio:                %6.2f   (paper: \"16 times\")\n", stats.Ratio())

	// --- E2: Figures 1/2 dependence graph ---
	g3, err := dg.BuildDSCF3D(64, 2)
	if err != nil {
		return err
	}
	g2, err := dg.BuildDSCF2D(64)
	if err != nil {
		return err
	}
	fmt.Println("E2  Figures 1/2 dependence graph (M=64)")
	fmt.Printf("    nodes per plane:      %6d   (paper: 127×127 = 16129)\n", len(g3.Nodes)/2)
	fmt.Printf("    accumulation edges:   %6d   (one per node between planes)\n", len(g3.Edges))
	fmt.Printf("    2-D propagation edges:%6d   (X and X* diagonal families)\n", len(g2.Edges))

	// --- E3: expressions 4/5 projections ---
	la, err := mapping.DeriveLineArray(64, 2)
	if err != nil {
		return err
	}
	fmt.Println("E3  expressions 4/5 projections (Figures 3/4)")
	fmt.Printf("    line array PEs:       %6d   (paper: \"127 complex multipliers\")\n", la.P())
	fmt.Printf("    per-PE result cells:  %6d   (frequencies, time-multiplexed)\n", la.F())

	// --- E4: Figure 5 + composition law ---
	if err := mapping.VerifyComposition(); err != nil {
		return err
	}
	if _, _, err := mapping.SharedTrajectory(64, mapping.XConjChain); err != nil {
		return err
	}
	if _, _, err := mapping.SharedTrajectory(64, mapping.XChain); err != nil {
		return err
	}
	fmt.Println("E4  Figure 5 space/time-delay + section 3.2 composition law")
	fmt.Println("    P2b'·P2a1' = P2' = P2b'·P2a2': verified")
	fmt.Println("    all values of each family share one register trajectory: verified")

	// --- E5/E6: systolic equivalence ---
	qx := fixed.FromFloatSlice(x)
	spectra, err := scf.FixedSpectra(qx, scf.Params{K: 256, M: 64, Blocks: 2})
	if err != nil {
		return err
	}
	ref, err := scf.AccumulateFixed(spectra, scf.Params{K: 256, M: 64, Blocks: 2})
	if err != nil {
		return err
	}
	unf, err := systolic.NewFixedArray(64)
	if err != nil {
		return err
	}
	fld, err := systolic.NewFoldedArray(64, 4)
	if err != nil {
		return err
	}
	for _, spec := range spectra {
		if err := unf.ProcessBlock(spec); err != nil {
			return err
		}
		if err := fld.ProcessBlock(spec); err != nil {
			return err
		}
	}
	okU, _ := unf.Surface().Equal(ref)
	okF, _ := fld.Surface().Equal(ref)
	macs, shifts, loads := unf.Ops()
	fmt.Println("E5  Figure 7 unfolded systolic array (127 PEs)")
	fmt.Printf("    bit-exact vs reference: %v;  MACs/block %d, shifts %d, init loads %d\n",
		okU, macs/2, shifts/2, loads/2)
	fmt.Println("E6  Figures 8/9 folded array (Q=4, T=32)")
	fmt.Printf("    bit-exact vs reference: %v;  task loads:", okF)
	for _, s := range fld.Stats() {
		fmt.Printf(" %d", s.Tasks)
	}
	fmt.Printf("   (paper: 32/32/32/31)\n")

	// --- E7: memory budget ---
	cfg, err := montium.NewCFDConfig(256, 64, 4, 0)
	if err != nil {
		return err
	}
	fmt.Println("E7  section 4.1 memory budget")
	fmt.Printf("    accumulator words:    %6d of %d   (paper: <8K words)\n",
		cfg.AccumWordsUsed(), montium.AccumCapacityWords)
	fmt.Printf("    16-bit dynamic range: %6.2f dB      (paper: 96 dB)\n", fixed.DynamicRangeDB(16))

	// --- E8/E9/E12: platform run ---
	platform, err := soc.New(soc.Config{K: 256, M: 64, Q: 4, Blocks: 1})
	if err != nil {
		return err
	}
	surfHW, report, err := platform.Run(qx[:256])
	if err != nil {
		return err
	}
	refHW, err := scf.ComputeFixed(qx[:256], scf.Params{K: 256, M: 64, Blocks: 1})
	if err != nil {
		return err
	}
	okHW, _ := surfHW.Equal(refHW)
	t1 := report.Tiles[0].Table1
	paper := montium.PaperTable1()
	fmt.Println("E8  Table 1 cycle counts (measured on tile 0 of the 4-tile platform)")
	fmt.Printf("    %-22s %9s %9s\n", "row", "measured", "paper")
	rows := []struct {
		name     string
		got, ref int64
	}{
		{"multiply accumulate", t1.MultiplyAccumulate, paper.MultiplyAccumulate},
		{"read data", t1.ReadData, paper.ReadData},
		{"FFT", t1.FFT, paper.FFT},
		{"reshuffling", t1.Reshuffle, paper.Reshuffle},
		{"initialisation", t1.Initialisation, paper.Initialisation},
		{"total", t1.Total(), paper.Total()},
	}
	for _, r := range rows {
		fmt.Printf("    %-22s %9d %9d\n", r.name, r.got, r.ref)
	}
	fmt.Printf("    platform DSCF bit-exact vs reference: %v\n", okHW)

	model := perf.Paper()
	bt := model.BlockTimeMicros(report.CyclesPerBlock)
	fmt.Println("E9  section 4/5 headline")
	fmt.Printf("    integration step:     %8.2f µs   (paper: 139.96 µs)\n", bt)
	fmt.Printf("    analysed bandwidth:   %8.1f kHz  (paper: ~915 kHz)\n",
		model.AnalysedBandwidthkHz(256, bt))

	fmt.Println("E10 section 5 area & power")
	fmt.Printf("    area:                 %8.1f mm²  (paper: ~8 mm²)\n", model.AreaMM2(4))
	fmt.Printf("    power:                %8.1f mW   (paper: 200 mW)\n", model.PowerMW(4))

	scaling, err := model.ScalingTable(4, report.CyclesPerBlock, 256, []int{1, 2, 4, 8})
	if err != nil {
		return err
	}
	fmt.Println("E11 section 5 linear scaling (platform instances)")
	fmt.Printf("    %9s %7s %14s %9s %9s\n", "platforms", "cores", "bandwidth/kHz", "area/mm²", "power/mW")
	for _, r := range scaling {
		fmt.Printf("    %9d %7d %14.1f %9.1f %9.1f\n",
			r.Platforms, r.Cores, r.BandwidthkHz, r.AreaMM2, r.PowerMW)
	}
	fmt.Printf("    linear: %v\n", perf.IsLinear(scaling))

	fmt.Println("E12 section 4 inter-core traffic")
	fmt.Printf("    MACs: %d, NoC boundary values: %d, per-tile compute/comm ratio: %.1f (T=32)\n",
		report.TotalMACs, report.NoCSent,
		float64(report.TotalMACs)/float64(report.NoCSent))

	// --- E13: detector comparison ---
	pdCFD, pdE, err := detectorComparison(trials)
	if err != nil {
		return err
	}
	fmt.Println("E13 motivation: CFD vs energy detection (extension experiment)")
	fmt.Printf("    BPSK at -4 dB SNR, ±2 dB noise uncertainty, Pfa=0.1, %d trials\n", trials)
	fmt.Printf("    Pd(CFD)    = %.2f\n", pdCFD)
	fmt.Printf("    Pd(energy) = %.2f   (the SNR-wall collapse that motivates CFD)\n", pdE)

	return ablations(qx[:256])
}

// ablations prints the design-choice ablation studies.
func ablations(qx []fixed.Complex) error {
	fmt.Println()
	fmt.Println("ablations (extensions; see docs/PAPER_MAPPING.md)")

	// MAC latency sensitivity.
	fmt.Print("    MAC latency 1/2/3 cycles -> block cycles ")
	for _, mc := range []int{1, 2, 3} {
		model := mapping.PaperCycleModel()
		model.MACCycles = mc
		s, err := mapping.BuildCoreSchedule(64, 256, 4, 0, model)
		if err != nil {
			return err
		}
		fmt.Printf("%d ", s.TotalCycles())
	}
	fmt.Println()

	// Real-input FFT.
	model := mapping.PaperCycleModel()
	model.RealInputFFT = true
	s, err := mapping.BuildCoreSchedule(64, 256, 4, 0, model)
	if err != nil {
		return err
	}
	fmt.Printf("    real-input FFT: FFT row 1040 -> %d, block total -> %d\n",
		s.CyclesOf(mapping.OpFFT), s.TotalCycles())

	// Intra-platform core sweep.
	pts, err := soc.SweepCores(256, 64, []int{4, 8, 16, 32}, qx)
	if err != nil {
		return err
	}
	fmt.Print("    core sweep Q=4/8/16/32 -> cycles ")
	for _, p := range pts {
		if p.Feasible {
			fmt.Printf("%d ", p.CyclesPerBlock)
		}
	}
	fmt.Printf("(serial floor %d)\n", soc.SerialCycles(256, 64))

	// Configuration amortisation.
	plan, err := montium.CFDConfigurationPlan(256)
	if err != nil {
		return err
	}
	n, err := plan.AmortisationBlocks(13996, 0.01)
	if err != nil {
		return err
	}
	fmt.Printf("    reconfiguration: %d words, < 1%% of compute after %d block(s)\n",
		plan.TotalWords(), n)
	return nil
}

// testBand builds the deterministic licensed-user band used by the
// deterministic experiments.
func testBand(k, blocks int) ([]complex128, error) {
	rng := sig.NewRand(42)
	b := &sig.BPSK{Amp: 1, Carrier: 32.0 / float64(k), SymbolLen: 8, Rng: rng}
	x := sig.Samples(b, k*blocks)
	noisy, _, err := sig.AddAWGN(x, 10, true, rng)
	if err != nil {
		return nil, err
	}
	fixed.ScaleSliceFloat(noisy, 0.5)
	return noisy, nil
}

// detectorComparison runs the E13 Monte-Carlo at -4 dB with ±2 dB noise
// uncertainty.
func detectorComparison(trials int) (pdCFD, pdEnergy float64, err error) {
	const k, m, blocks = 64, 16, 32
	params := scf.Params{K: k, M: m, Blocks: blocks}
	nominal := 0.5 / math.Pow(10, -4.0/10)
	sc := func(rng *sig.Rand, present bool) []complex128 {
		du := 2 * (2*rng.Float64() - 1)
		actual := nominal * math.Pow(10, du/10)
		noise := sig.Samples(&sig.WGN{Sigma: math.Sqrt(actual), Real: true, Rng: rng}, k*blocks)
		if !present {
			return noise
		}
		s := sig.Samples(&sig.BPSK{Amp: 1, Carrier: 8.0 / k, SymbolLen: 8, Rng: rng}, k*blocks)
		for i := range s {
			s[i] += noise[i]
		}
		return s
	}
	cfd := detect.CFDDetector{Params: params, MinAbsA: 2}
	energy := detect.EnergyDetector{AssumedNoisePower: nominal}
	thC, err := detect.CalibrateThreshold(cfd, sc, trials, 0.1, 101)
	if err != nil {
		return 0, 0, err
	}
	if pdCFD, _, err = detect.PdAtThreshold(cfd, sc, trials, thC, 102); err != nil {
		return 0, 0, err
	}
	thE, err := detect.CalibrateThreshold(energy, sc, trials, 0.1, 103)
	if err != nil {
		return 0, 0, err
	}
	if pdEnergy, _, err = detect.PdAtThreshold(energy, sc, trials, thE, 104); err != nil {
		return 0, 0, err
	}
	return pdCFD, pdEnergy, nil
}
