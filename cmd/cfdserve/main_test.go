package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"
)

// TestServeSustainsConcurrentChannels runs the daemon loop briefly with
// more than four concurrent channels and checks that every channel keeps
// producing decisions — the acceptance scenario, and (under -race) the
// daemon's concurrency test.
func TestServeSustainsConcurrentChannels(t *testing.T) {
	var out bytes.Buffer
	o := options{
		channels:  5,
		k:         64,
		m:         16,
		estimator: "fam",
		window:    2048,
		mode:      "block",
		duration:  700 * time.Millisecond,
		report:    200 * time.Millisecond,
		seed:      1,
		cfarScale: 2,
	}
	st, err := run(context.Background(), o, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if st.Channels != 5 {
		t.Fatalf("served %d channels, want 5", st.Channels)
	}
	if st.Surfaces < 5 {
		t.Fatalf("only %d surfaces across 5 channels in %v:\n%s", st.Surfaces, o.duration, out.String())
	}
	if st.SamplesDropped != 0 {
		t.Fatalf("dropped %d samples in block mode", st.SamplesDropped)
	}
	for _, id := range []string{"ch00", "ch01", "ch02", "ch03", "ch04"} {
		if !strings.Contains(out.String(), id) {
			t.Fatalf("report never mentioned %s:\n%s", id, out.String())
		}
	}
	if !strings.Contains(out.String(), "final:") {
		t.Fatalf("missing final summary:\n%s", out.String())
	}
}

// TestServeRejectsBadOptions covers the flag-validation paths.
func TestServeRejectsBadOptions(t *testing.T) {
	if _, err := run(context.Background(), options{channels: 0, mode: "block"}, &bytes.Buffer{}); err == nil {
		t.Fatal("run with 0 channels succeeded")
	}
	if _, err := run(context.Background(), options{channels: 1, mode: "nope"}, &bytes.Buffer{}); err == nil {
		t.Fatal("run with bad mode succeeded")
	}
	o := options{channels: 1, mode: "drop", estimator: "ssca", hop: 7, k: 64, m: 16,
		window: 1024, duration: 50 * time.Millisecond, report: time.Second}
	if _, err := run(context.Background(), o, &bytes.Buffer{}); err == nil {
		t.Fatal("run with ssca+hop succeeded")
	}
}
