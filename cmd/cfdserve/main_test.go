package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestServeSustainsConcurrentChannels runs the daemon loop briefly with
// more than four concurrent channels and checks that every channel keeps
// producing decisions — the acceptance scenario, and (under -race) the
// daemon's concurrency test.
func TestServeSustainsConcurrentChannels(t *testing.T) {
	var out bytes.Buffer
	o := options{
		channels:  5,
		k:         64,
		m:         16,
		estimator: "fam",
		window:    2048,
		mode:      "block",
		duration:  700 * time.Millisecond,
		report:    200 * time.Millisecond,
		seed:      1,
		cfarScale: 2,
	}
	st, err := run(context.Background(), o, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if st.Channels != 5 {
		t.Fatalf("served %d channels, want 5", st.Channels)
	}
	if st.Surfaces < 5 {
		t.Fatalf("only %d surfaces across 5 channels in %v:\n%s", st.Surfaces, o.duration, out.String())
	}
	if st.SamplesDropped != 0 {
		t.Fatalf("dropped %d samples in block mode", st.SamplesDropped)
	}
	for _, id := range []string{"ch00", "ch01", "ch02", "ch03", "ch04"} {
		if !strings.Contains(out.String(), id) {
			t.Fatalf("report never mentioned %s:\n%s", id, out.String())
		}
	}
	if !strings.Contains(out.String(), "final:") {
		t.Fatalf("missing final summary:\n%s", out.String())
	}
}

// TestServeRejectsBadOptions covers the flag-validation paths.
func TestServeRejectsBadOptions(t *testing.T) {
	if _, err := run(context.Background(), options{channels: 0, mode: "block"}, &bytes.Buffer{}); err == nil {
		t.Fatal("run with 0 channels succeeded")
	}
	if _, err := run(context.Background(), options{channels: 1, mode: "nope"}, &bytes.Buffer{}); err == nil {
		t.Fatal("run with bad mode succeeded")
	}
	o := options{channels: 1, mode: "drop", estimator: "ssca", hop: 7, k: 64, m: 16,
		window: 1024, duration: 50 * time.Millisecond, report: time.Second}
	if _, err := run(context.Background(), o, &bytes.Buffer{}); err == nil {
		t.Fatal("run with ssca+hop succeeded")
	}
	if err := runClient(context.Background(), options{connect: "x", channels: 0}, &bytes.Buffer{}); err == nil {
		t.Fatal("runClient with 0 channels succeeded")
	}
	if err := runClient(context.Background(), options{connect: "x", channels: 1, format: "pcm"}, &bytes.Buffer{}); err == nil {
		t.Fatal("runClient with bad format succeeded")
	}
}

// TestServeWireEndToEnd is the daemon's e2e smoke path, all in-process:
// a 2-shard server listens on loopback, a -connect feeder streams the
// scenario over the wire protocol, /metrics reports decisions and shard
// depth, and cancellation (the SIGTERM path) drains gracefully with
// complete final accounting.
func TestServeWireEndToEnd(t *testing.T) {
	listenCh := make(chan net.Addr, 1)
	httpCh := make(chan net.Addr, 1)
	serverOut := &bytes.Buffer{}
	o := options{
		listen:   "127.0.0.1:0",
		httpAddr: "127.0.0.1:0",
		shards:   2,
		k:        64, m: 16,
		estimator:    "fam",
		window:       2048,
		mode:         "block",
		report:       200 * time.Millisecond,
		drainGrace:   2 * time.Second,
		seed:         1,
		cfarScale:    2,
		quiet:        true,
		notifyListen: func(a net.Addr) { listenCh <- a },
		notifyHTTP:   func(a net.Addr) { httpCh <- a },
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type result struct {
		st  *serveStats
		err error
	}
	done := make(chan result, 1)
	go func() {
		st, err := run(ctx, o, serverOut)
		done <- result{st, err}
	}()
	var wireAddr, httpAddr net.Addr
	select {
	case wireAddr = <-listenCh:
	case <-time.After(5 * time.Second):
		t.Fatalf("server never listened:\n%s", serverOut.String())
	}
	select {
	case httpAddr = <-httpCh:
	case <-time.After(5 * time.Second):
		t.Fatalf("status server never bound:\n%s", serverOut.String())
	}

	// Stream over the wire protocol from the -connect client for a
	// bounded duration.
	clientOut := &bytes.Buffer{}
	co := options{
		connect:  wireAddr.String(),
		channels: 3,
		k:        64,
		window:   2048,
		duration: 1500 * time.Millisecond,
		seed:     7,
	}
	if err := runClient(context.Background(), co, clientOut); err != nil {
		t.Fatalf("runClient: %v\nserver:\n%s", err, serverOut.String())
	}
	if !strings.Contains(clientOut.String(), "sent ") {
		t.Fatalf("client summary missing:\n%s", clientOut.String())
	}

	// /metrics must be non-empty and show decisions and per-shard depth.
	metrics := scrape(t, fmt.Sprintf("http://%s/metrics", httpAddr))
	for _, want := range []string{
		"cfd_engine_decisions_total",
		"cfd_shard_queue_depth{shard=\"shard0\"}",
		"cfd_shard_queue_depth{shard=\"shard1\"}",
		"cfd_wire_connections_total 1",
		"cfd_wire_channels_opened_total 3",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics lacks %q:\n%s", want, metrics)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for !decisionsRecorded(metrics) {
		if time.Now().After(deadline) {
			t.Fatalf("no decision recorded in /metrics:\n%s", metrics)
		}
		time.Sleep(100 * time.Millisecond)
		metrics = scrape(t, fmt.Sprintf("http://%s/metrics", httpAddr))
	}

	// Graceful shutdown: cancellation is the in-process SIGTERM path.
	cancel()
	var res result
	select {
	case res = <-done:
	case <-time.After(20 * time.Second):
		t.Fatalf("server did not drain:\n%s", serverOut.String())
	}
	if res.err != nil {
		t.Fatalf("run: %v\n%s", res.err, serverOut.String())
	}
	if res.st.Shards != 2 || res.st.Channels != 3 {
		t.Fatalf("final stats %+v, want 2 shards / 3 wire channels", res.st)
	}
	if res.st.Surfaces == 0 {
		t.Fatalf("no decision windows despite wire ingest:\n%s", serverOut.String())
	}
	if !strings.Contains(serverOut.String(), "final:") {
		t.Fatalf("missing final summary:\n%s", serverOut.String())
	}
}

// scrape GETs a URL body.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// decisionsRecorded reports whether the exposition shows a nonzero
// decision count.
func decisionsRecorded(metrics string) bool {
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, "cfd_engine_decisions_total ") &&
			!strings.HasSuffix(line, " 0") {
			return true
		}
	}
	return false
}

// TestServeQuotaShedsOverRateClient proves the daemon-level quota story:
// a client pushing far over -quota is shed (visible in /metrics) while
// the engine keeps every in-quota sample.
func TestServeQuotaShedsOverRateClient(t *testing.T) {
	listenCh := make(chan net.Addr, 1)
	httpCh := make(chan net.Addr, 1)
	serverOut := &bytes.Buffer{}
	o := options{
		listen:     "127.0.0.1:0",
		httpAddr:   "127.0.0.1:0",
		shards:     2,
		quota:      50_000, // samples/sec per connection
		quotaBurst: 100_000,
		k:          64, m: 16,
		estimator:    "fam",
		window:       2048,
		mode:         "block",
		report:       time.Second,
		drainGrace:   2 * time.Second,
		quiet:        true,
		notifyListen: func(a net.Addr) { listenCh <- a },
		notifyHTTP:   func(a net.Addr) { httpCh <- a },
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := run(ctx, o, serverOut)
		done <- err
	}()
	wireAddr := (<-listenCh).String()
	httpAddr := (<-httpCh).String()

	// The hog bursts ~800k samples back to back — far over the 100k
	// burst + 50k/s refill.
	co := options{
		connect:  wireAddr,
		channels: 4,
		k:        64,
		window:   2048,
		duration: 1200 * time.Millisecond,
		seed:     3,
	}
	var clientOut bytes.Buffer
	if err := runClient(context.Background(), co, &clientOut); err != nil {
		t.Fatalf("runClient: %v", err)
	}
	if !strings.Contains(clientOut.String(), "shed by server quota") {
		t.Fatalf("client summary lacks shed report:\n%s", clientOut.String())
	}
	metrics := scrape(t, "http://"+httpAddr+"/metrics")
	shed := metricValue(t, metrics, "cfd_wire_quota_shed_samples_total")
	in := metricValue(t, metrics, "cfd_wire_samples_in_total")
	if shed <= 0 {
		t.Fatalf("quota shed nothing:\n%s", metrics)
	}
	if in <= 0 {
		t.Fatalf("quota shed everything — in-quota samples must flow:\n%s", metrics)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("run: %v\n%s", err, serverOut.String())
	}
}

// metricValue extracts one unlabelled sample value from an exposition.
func metricValue(t *testing.T, metrics, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(metrics, "\n") {
		var v float64
		if _, err := fmt.Sscanf(line, name+" %g", &v); err == nil {
			return v
		}
	}
	t.Fatalf("metric %s absent:\n%s", name, metrics)
	return 0
}

// TestServeDrainStopsNewChannels covers the drain ordering: after the
// run context ends, in-flight decision windows are still flushed into
// the final accounting (no samples stranded in rings in block mode).
func TestServeDrainStopsNewChannels(t *testing.T) {
	listenCh := make(chan net.Addr, 1)
	serverOut := &bytes.Buffer{}
	o := options{
		listen: "127.0.0.1:0",
		shards: 2,
		k:      64, m: 16,
		estimator:    "fam",
		window:       2048,
		mode:         "block",
		report:       time.Second,
		drainGrace:   time.Second,
		quiet:        true,
		notifyListen: func(a net.Addr) { listenCh <- a },
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type result struct {
		st  *serveStats
		err error
	}
	done := make(chan result, 1)
	go func() {
		st, err := run(ctx, o, serverOut)
		done <- result{st, err}
	}()
	wireAddr := (<-listenCh).String()
	co := options{
		connect:  wireAddr,
		channels: 2,
		k:        64,
		window:   2048,
		duration: 600 * time.Millisecond,
		seed:     5,
	}
	var mu sync.Mutex
	var clientOut bytes.Buffer
	mu.Lock()
	go func() {
		defer mu.Unlock()
		runClient(context.Background(), co, &clientOut) //nolint:errcheck // best-effort load
	}()
	time.Sleep(300 * time.Millisecond)
	cancel()
	res := <-done
	if res.err != nil {
		t.Fatalf("run: %v\n%s", res.err, serverOut.String())
	}
	mu.Lock() // client finished
	// Graceful drain: whatever was accepted was decided — in block mode
	// every complete in-flight window lands before the final report.
	if res.st.SamplesDropped != 0 {
		t.Fatalf("drain dropped %d samples in block mode", res.st.SamplesDropped)
	}
	if want := res.st.SamplesIn / 2048; res.st.Surfaces < want-2 {
		t.Fatalf("flushed %d windows for %d samples in, want ~%d", res.st.Surfaces, res.st.SamplesIn, want)
	}
}

// startTestWorker runs a -shard-of worker in-process, returning its
// bound address and a stop function (the in-process SIGTERM).
func startTestWorker(t *testing.T, addr string) (string, func()) {
	t.Helper()
	listenCh := make(chan net.Addr, 1)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	wo := options{
		shardOf: addr,
		k:       64, m: 16,
		estimator:    "fam",
		window:       2048,
		mode:         "block",
		report:       200 * time.Millisecond,
		quiet:        true,
		notifyListen: func(a net.Addr) { listenCh <- a },
	}
	go func() { done <- runWorker(ctx, wo, io.Discard) }()
	var bound net.Addr
	select {
	case bound = <-listenCh:
	case <-time.After(5 * time.Second):
		cancel()
		t.Fatal("worker never listened")
	}
	var once sync.Once
	stop := func() {
		once.Do(func() {
			cancel()
			if err := <-done; err != nil {
				t.Errorf("worker: %v", err)
			}
		})
	}
	return bound.String(), stop
}

// pollStats scrapes /stats until cond holds or the deadline expires.
func pollStats(t *testing.T, httpAddr, what string, cond func(statusSnapshot) bool) statusSnapshot {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		var snap statusSnapshot
		if err := json.Unmarshal([]byte(scrape(t, "http://"+httpAddr+"/stats")), &snap); err != nil {
			t.Fatalf("decode /stats: %v", err)
		}
		if cond(snap) {
			return snap
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s; last snapshot %+v", what, snap)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// healthzStatus GETs /healthz, returning the HTTP status and body.
func healthzStatus(t *testing.T, httpAddr string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + httpAddr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestServeRemoteShardFailover is the chaos e2e: a router daemon routes
// half its fleet to a -shard-of worker process, the worker is killed
// mid-stream and restarted, and decisions keep flowing throughout —
// failover re-homes the remote channels within the health interval,
// /healthz flips to 503 degraded and back, and the robustness metrics
// land in /metrics.
func TestServeRemoteShardFailover(t *testing.T) {
	workerAddr, stopWorker := startTestWorker(t, "")
	defer stopWorker()

	httpCh := make(chan net.Addr, 1)
	serverOut := &bytes.Buffer{}
	o := options{
		selftest: true,
		channels: 8,
		shards:   1,
		httpAddr: "127.0.0.1:0",
		k:        64, m: 16,
		estimator:      "fam",
		window:         2048,
		mode:           "block",
		report:         time.Second,
		drainGrace:     time.Second,
		seed:           1,
		cfarScale:      2,
		quiet:          true,
		shardAddrs:     workerAddr,
		healthInterval: 30 * time.Millisecond,
		pushTimeout:    500 * time.Millisecond,
		notifyHTTP:     func(a net.Addr) { httpCh <- a },
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type result struct {
		st  *serveStats
		err error
	}
	done := make(chan result, 1)
	go func() {
		st, err := run(ctx, o, serverOut)
		done <- result{st, err}
	}()
	var httpAddr string
	select {
	case a := <-httpCh:
		httpAddr = a.String()
	case <-time.After(5 * time.Second):
		t.Fatalf("status server never bound:\n%s", serverOut.String())
	}

	// Healthy: both shards live, the remote owning channels, decisions
	// flowing, /healthz green.
	pollStats(t, httpAddr, "remote shard carrying traffic", func(s statusSnapshot) bool {
		if s.Stats.Surfaces == 0 {
			return false
		}
		for _, sh := range s.Shards {
			if sh.Remote && sh.Channels > 0 && sh.State == "ok" {
				return true
			}
		}
		return false
	})
	if code, body := healthzStatus(t, httpAddr); code != http.StatusOK {
		t.Fatalf("healthy /healthz = %d %q", code, body)
	}

	// Kill the worker mid-stream: the circuit opens, channels re-home
	// onto the local shard, and the daemon reports itself degraded.
	stopWorker()
	pollStats(t, httpAddr, "failover onto the local shard", func(s statusSnapshot) bool {
		if s.Stats.Failovers < 1 {
			return false
		}
		for _, cs := range s.Channels {
			if cs.Shard != "shard0" {
				return false
			}
		}
		return len(s.Channels) > 0
	})
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, body := healthzStatus(t, httpAddr)
		if code == http.StatusServiceUnavailable {
			if !strings.Contains(body, "degraded") || !strings.Contains(body, "shard1") {
				t.Fatalf("degraded /healthz body %q, want the open circuit named", body)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/healthz never reported degraded (last %d)", code)
		}
		time.Sleep(25 * time.Millisecond)
	}

	// Decisions keep flowing after the failover.
	first := pollStats(t, httpAddr, "post-failover decisions", func(s statusSnapshot) bool {
		return s.Stats.Failovers >= 1
	})
	pollStats(t, httpAddr, "decision flow after failover", func(s statusSnapshot) bool {
		return s.Stats.Surfaces > first.Stats.Surfaces
	})

	// The robustness metrics are exposed. The circuit gauge is polled for
	// the open position (2): a health probe in flight reads half-open for
	// an instant, but with the worker gone it must settle back to open.
	metrics := scrape(t, "http://"+httpAddr+"/metrics")
	for _, want := range []string{
		"cfd_shard_retries_total",
		"cfd_push_deadline_exceeded_total",
		"cfd_shard_failovers_total",
		"cfd_shard_shed_samples_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics lacks %q:\n%s", want, metrics)
		}
	}
	deadline = time.Now().Add(10 * time.Second)
	for !strings.Contains(metrics, `cfd_shard_circuit_state{shard="shard1"} 2`) {
		if time.Now().After(deadline) {
			t.Fatalf("circuit gauge never read open:\n%s", metrics)
		}
		time.Sleep(25 * time.Millisecond)
		metrics = scrape(t, "http://"+httpAddr+"/metrics")
	}

	// Restart the worker at the same address: the health loop heals the
	// circuit and /healthz goes green again.
	_, stopWorker2 := startTestWorker(t, workerAddr)
	defer stopWorker2()
	deadline = time.Now().Add(15 * time.Second)
	for {
		if code, _ := healthzStatus(t, httpAddr); code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/healthz never recovered after the worker restart")
		}
		time.Sleep(50 * time.Millisecond)
	}

	cancel()
	var res result
	select {
	case res = <-done:
	case <-time.After(20 * time.Second):
		t.Fatalf("server did not drain:\n%s", serverOut.String())
	}
	if res.err != nil {
		t.Fatalf("run: %v\n%s", res.err, serverOut.String())
	}
	if res.st.Failovers < 1 {
		t.Fatalf("final stats %+v, want at least one failover recorded", res.st)
	}
	if !strings.Contains(serverOut.String(), "robustness:") {
		t.Fatalf("final output lacks the robustness summary:\n%s", serverOut.String())
	}
}
