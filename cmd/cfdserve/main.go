// Command cfdserve is the long-running spectrum-sensing daemon: the
// paper's Cognitive-Radio loop run as a service. It multiplexes many
// concurrent channels through the streaming engine (tiledcfd.Monitor),
// each fed by a synthetic radio front end whose licensed user comes and
// goes, and reports rolling per-channel decisions plus engine throughput
// (samples/sec, surfaces/sec) at a fixed cadence.
//
// Usage:
//
//	cfdserve [-channels 4] [-estimator fam] [-k 256] [-m 0] [-hop 0]
//	         [-window 16384] [-workers 0] [-mode block|drop] [-rate 0]
//	         [-duration 0] [-report 2s] [-http addr] [-seed 1]
//	         [-threshold 0] [-cfar-scale 2] [-cumulative] [-quiet]
//
// By default it runs until interrupted (SIGINT/SIGTERM), feeding
// channels as fast as the engine processes them (-mode block applies
// backpressure, so nothing is dropped and the reported samples/sec is
// the engine's sustained throughput). With -rate the front ends pace
// themselves to the given samples/sec per channel and -mode drop shows
// the overload accounting instead. Decisions use the self-calibrating
// CFAR unless -threshold sets a fixed CFD threshold. With -http an
// embedded status server exposes /healthz and /stats (JSON).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"tiledcfd"
)

// options collects the daemon configuration (flag-parsed in main,
// constructed directly in tests).
type options struct {
	channels   int
	k, m       int
	estimator  string
	hop        int
	window     int
	ring       int
	workers    int
	mode       string
	rate       int
	duration   time.Duration
	report     time.Duration
	httpAddr   string
	seed       uint64
	threshold  float64
	cfarScale  float64
	cumulative bool
	quiet      bool
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("cfdserve: ")
	var o options
	flag.IntVar(&o.channels, "channels", 4, "concurrent monitored channels")
	flag.StringVar(&o.estimator, "estimator", "fam", "surface estimator: "+strings.Join(tiledcfd.EstimatorNames(), ", "))
	flag.IntVar(&o.k, "k", 256, "FFT / channelizer size K")
	flag.IntVar(&o.m, "m", 0, "grid half-extent M (0 = K/4)")
	flag.IntVar(&o.hop, "hop", 0, "block/channelizer advance (0 = estimator default; rejected with ssca)")
	flag.IntVar(&o.window, "window", 16384, "samples per decision window")
	flag.IntVar(&o.ring, "ring", 0, "per-channel ingestion ring capacity in samples (0 = 4×window)")
	flag.IntVar(&o.workers, "workers", 0, "engine worker pool size (0 = one per CPU core)")
	flag.StringVar(&o.mode, "mode", "block", "overload policy: block (backpressure) or drop (count overflow)")
	flag.IntVar(&o.rate, "rate", 0, "per-channel feed rate in samples/sec (0 = as fast as the engine accepts)")
	flag.DurationVar(&o.duration, "duration", 0, "run time (0 = until SIGINT/SIGTERM)")
	flag.DurationVar(&o.report, "report", 2*time.Second, "stats report interval")
	flag.StringVar(&o.httpAddr, "http", "", "status server address, e.g. :8080 (empty = disabled)")
	flag.Uint64Var(&o.seed, "seed", 1, "scenario seed")
	flag.Float64Var(&o.threshold, "threshold", 0, "fixed CFD decision threshold (0 = self-calibrating CFAR)")
	flag.Float64Var(&o.cfarScale, "cfar-scale", 2, "CFAR peak-over-floor detection ratio")
	flag.BoolVar(&o.cumulative, "cumulative", false, "integrate estimator state across windows instead of per-window reset")
	flag.BoolVar(&o.quiet, "quiet", false, "suppress per-decision transition logging")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if _, err := run(ctx, o, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// feeder is one channel's synthetic radio front end: a deterministic
// occupancy timeline (idle and busy segments a few windows long, offset
// per channel so the fleet stays heterogeneous) pushed chunk by chunk.
type feeder struct {
	id      string
	idx     int
	carrier float64
	seed    uint64
	busy    atomic.Bool // current ground truth, for the report
}

// segment returns the ground truth and length in windows of segment s.
func (f *feeder) segment(s int) (busy bool, windows int) {
	busy = s%2 == 1 // start idle, alternate
	if busy {
		return true, 1 + (f.idx+s)%3
	}
	return false, 2 + (f.idx+s)%2
}

// feed pushes the scenario until ctx is cancelled or push fails.
func (f *feeder) feed(ctx context.Context, o options, mon *tiledcfd.Monitor) {
	const chunk = 2048
	var pace *time.Ticker
	if o.rate > 0 {
		pace = time.NewTicker(time.Duration(float64(chunk) / float64(o.rate) * float64(time.Second)))
		defer pace.Stop()
	}
	for s := 0; ; s++ {
		busy, windows := f.segment(s)
		f.busy.Store(busy)
		n := windows * o.window
		var seg []complex128
		var err error
		segSeed := f.seed + uint64(f.idx)*1_000_003 + uint64(s)*7919
		if busy {
			seg, err = tiledcfd.NewBPSKBand(n, f.carrier, 8, 8, segSeed)
		} else {
			seg, err = tiledcfd.NewNoiseBand(n, 0.1, segSeed)
		}
		if err != nil {
			log.Printf("%s: scenario: %v", f.id, err)
			return
		}
		for i := 0; i < len(seg); i += chunk {
			end := i + chunk
			if end > len(seg) {
				end = len(seg)
			}
			if _, err := mon.Push(f.id, seg[i:end]); err != nil {
				return // engine closed
			}
			if pace != nil {
				select {
				case <-ctx.Done():
					return
				case <-pace.C:
				}
			} else if ctx.Err() != nil {
				return
			}
		}
	}
}

// syncWriter serialises output: the reporter and the decision logger
// write to the same stream from different goroutines.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

// Write implements io.Writer.
func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// run builds the monitor, starts the feeders, reporter, decision logger
// and optional status server, and blocks until ctx is cancelled (or
// o.duration elapses). It returns the final session stats.
func run(ctx context.Context, o options, out io.Writer) (*tiledcfd.MonitorStats, error) {
	out = &syncWriter{w: out}
	if o.channels < 1 {
		return nil, fmt.Errorf("cfdserve: -channels=%d must be >= 1", o.channels)
	}
	if o.mode != "block" && o.mode != "drop" {
		return nil, fmt.Errorf("cfdserve: -mode=%q must be block or drop", o.mode)
	}
	if o.duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.duration)
		defer cancel()
	}
	feeders := make([]*feeder, o.channels)
	ids := make([]string, o.channels)
	for i := range feeders {
		ids[i] = fmt.Sprintf("ch%02d", i)
		feeders[i] = &feeder{
			id:  ids[i],
			idx: i,
			// Spread carriers across the band so channels stay distinct.
			carrier: float64(4+3*(i%8)) / float64(o.k),
			seed:    o.seed,
		}
	}
	mon, err := tiledcfd.NewMonitor(
		tiledcfd.Config{
			K: o.k, M: o.m, Estimator: o.estimator, Hop: o.hop,
			Threshold: o.threshold,
		},
		tiledcfd.MonitorOptions{
			Channels:        ids,
			SnapshotSamples: o.window,
			RingSamples:     o.ring,
			Workers:         o.workers,
			Cumulative:      o.cumulative,
			Backpressure:    o.mode == "block",
			CFARScale:       o.cfarScale,
		},
	)
	if err != nil {
		return nil, err
	}
	defer mon.Close()

	var wg sync.WaitGroup
	for _, f := range feeders {
		wg.Add(1)
		go func(f *feeder) {
			defer wg.Done()
			f.feed(ctx, o, mon)
		}(f)
	}

	// Decision logger: drains the rolling verdicts and logs occupancy
	// transitions.
	var logWG sync.WaitGroup
	logWG.Add(1)
	go func() {
		defer logWG.Done()
		occupied := map[string]bool{}
		for d := range mon.Decisions() {
			if o.quiet || d.Detected == occupied[d.Channel] {
				continue
			}
			occupied[d.Channel] = d.Detected
			state := "VACATED"
			if d.Detected {
				state = "OCCUPIED"
			}
			fmt.Fprintf(out, "%s %s window %d: %s (stat %.2f vs %.2f, feature a=%d)\n",
				time.Now().Format("15:04:05"), d.Channel, d.Seq, state,
				d.Statistic, d.Threshold, d.FeatureA)
		}
	}()

	if o.httpAddr != "" {
		srv := statusServer(o.httpAddr, mon, feeders)
		defer srv.Shutdown(context.Background()) //nolint:errcheck // best-effort shutdown
	}

	ticker := time.NewTicker(o.report)
	defer ticker.Stop()
	var prev tiledcfd.MonitorStats
	prevAt := time.Now()
	for running := true; running; {
		select {
		case <-ctx.Done():
			running = false
		case <-ticker.C:
			prev, prevAt = report(out, mon, feeders, prev, prevAt)
		}
	}
	wg.Wait()
	// Let in-flight rings drain so the final figures are complete, then
	// stop. Flush can only time out if the engine is wedged — report it
	// rather than hanging shutdown.
	if err := mon.Flush(10 * time.Second); err != nil {
		fmt.Fprintf(out, "shutdown: %v\n", err)
	}
	report(out, mon, feeders, prev, prevAt)
	st := mon.Stats()
	if err := mon.Close(); err != nil {
		return nil, err
	}
	logWG.Wait()
	fmt.Fprintf(out, "final: %d channels, %d samples in (%d dropped), %d surfaces, %d detections\n",
		st.Channels, st.SamplesIn, st.SamplesDropped, st.Surfaces, st.Detections)
	return &st, nil
}

// report prints one rolling stats block and returns the counters for the
// next interval's rate computation.
func report(out io.Writer, mon *tiledcfd.Monitor, feeders []*feeder,
	prev tiledcfd.MonitorStats, prevAt time.Time) (tiledcfd.MonitorStats, time.Time) {
	st := mon.Stats()
	now := time.Now()
	dt := now.Sub(prevAt).Seconds()
	if dt <= 0 {
		dt = 1
	}
	sps := float64(st.SamplesIn-prev.SamplesIn) / dt
	fps := float64(st.Surfaces-prev.Surfaces) / dt
	busy := 0
	for _, f := range feeders {
		cs, ok := mon.ChannelStats(f.id)
		if ok && cs.Last != nil && cs.Last.Detected {
			busy++
		}
	}
	fmt.Fprintf(out, "%s %d ch | %.2fM samples (%.2fM/s) | %d surfaces (%.1f/s) | dropped %d | occupied %d/%d\n",
		now.Format("15:04:05"), st.Channels,
		float64(st.SamplesIn)/1e6, sps/1e6, st.Surfaces, fps,
		st.SamplesDropped, busy, len(feeders))
	for _, f := range feeders {
		cs, ok := mon.ChannelStats(f.id)
		if !ok {
			continue
		}
		verdict, stat := "-", 0.0
		if cs.Last != nil {
			stat = cs.Last.Statistic
			if cs.Last.Detected {
				verdict = "OCCUPIED"
			} else {
				verdict = "idle"
			}
		}
		truth := "idle"
		if f.busy.Load() {
			truth = "busy"
		}
		fmt.Fprintf(out, "  %-5s %-8s (truth %-4s) stat %6.2f | windows %4d | detections %4d | dropped %d\n",
			f.id, verdict, truth, stat, cs.Snapshots, cs.Detections, cs.SamplesDropped)
	}
	return st, now
}

// statusSnapshot is the /stats JSON schema.
type statusSnapshot struct {
	Stats    tiledcfd.MonitorStats          `json:"stats"`
	Channels []tiledcfd.MonitorChannelStats `json:"channels"`
}

// statusServer starts the embedded HTTP status endpoint.
func statusServer(addr string, mon *tiledcfd.Monitor, feeders []*feeder) *http.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
		snap := statusSnapshot{Stats: mon.Stats()}
		for _, f := range feeders {
			if cs, ok := mon.ChannelStats(f.id); ok {
				snap.Channels = append(snap.Channels, cs)
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(snap) //nolint:errcheck // best-effort status
	})
	srv := &http.Server{Addr: addr, Handler: mux}
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Printf("status server: %v", err)
		}
	}()
	return srv
}
