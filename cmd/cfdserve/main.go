// Command cfdserve is the long-running spectrum-sensing daemon: the
// paper's Cognitive-Radio loop run as a network service. A sharded
// streaming engine (tiledcfd.ShardedMonitor) partitions channels across
// -shards engine instances by rendezvous hashing; IQ blocks arrive over
// the wire protocol (-listen), from built-in synthetic radio front ends
// (-selftest), or both. Rolling per-channel decisions and engine
// throughput (samples/sec, surfaces/sec) are reported at a fixed
// cadence, and the embedded status server (-http) exposes /healthz,
// /stats (JSON) and /metrics (Prometheus text exposition).
//
// Usage:
//
//	cfdserve [-listen addr] [-shards 1] [-quota 0] [-quota-burst 0]
//	         [-selftest] [-channels 4] [-estimator fam] [-k 256] [-m 0]
//	         [-alpha 16,32] [-hop 0] [-window 16384] [-workers 0]
//	         [-mode block|drop] [-rate 0] [-duration 0] [-report 2s]
//	         [-http addr] [-seed 1] [-threshold 0] [-cfar-scale 2]
//	         [-cumulative] [-quiet] [-drain-grace 5s] [-shard-addrs a,b]
//	         [-health-interval 2s] [-push-timeout 5s] [-fallback-local]
//	cfdserve -shard-of addr [-estimator fam] [-k 256] [-window 16384]
//	         [-alpha 16,32] [-report 2s] [-duration 0] [-quiet]
//	cfdserve -connect addr [-channels 4] [-format cf32_le|ci16_le]
//	         [-alpha 16,32] [-rate 0] [-duration 0] [-seed 1] [-k 256]
//	         [-quiet]
//
// -alpha restricts estimation to the listed cycle-frequency bin offsets
// (alpha pruning): only those strips of the spectral-correlation
// surface, their mirrors and a=0 are computed — bit-identical to the
// full plane on the computed rows, at a cost that scales with the
// candidate count instead of the grid half-extent M. In serving mode
// the set is the default for every channel; wire clients can override
// it per channel in the open frame (as `-connect -alpha` does), and a
// parent router forwards each channel's set to its remote shard worker,
// so pruning follows the channel across handoffs and failovers. The
// `cfd_pruned_cells_skipped_total` metric counts the cells never
// computed.
//
// With neither -listen nor -selftest the daemon defaults to -selftest
// (the zero-configuration demo). -quota enforces a per-connection
// ingest quota in samples/sec: data frames beyond it are shed whole and
// counted, so one over-rate client cannot crowd out the rest. On
// SIGINT/SIGTERM the daemon drains gracefully: it stops accepting new
// connections and channels, lets in-flight frames land, flushes every
// decision window in flight, prints the final accounting and exits 0.
//
// -shard-addrs spreads the fleet across processes: each address names a
// worker started with `cfdserve -shard-of addr`, which hosts one bare
// engine behind the wire protocol's worker mode. The router wraps every
// remote in a robustness layer — per-push deadlines (-push-timeout),
// retries with jittered exponential backoff, a per-shard circuit
// breaker, and a heartbeat every -health-interval. A worker that dies
// is failed over: its channels re-home onto the surviving shards (or a
// local fallback engine with -fallback-local) with counters carried, and
// /healthz reports the degraded set until the circuit closes again.
//
// -connect turns cfdserve into a wire-protocol feeder instead: it dials
// a serving instance, opens -channels channels and streams the synthetic
// scenario at it — the loopback load generator the CI smoke test uses.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"tiledcfd"
	"tiledcfd/internal/wire"
)

// options collects the daemon configuration (flag-parsed in main,
// constructed directly in tests).
type options struct {
	// Serving side.
	listen     string
	shards     int
	quota      float64
	quotaBurst float64
	drainGrace time.Duration
	selftest   bool

	// Remote-shard topology.
	shardOf        string
	shardAddrs     string
	healthInterval time.Duration
	pushTimeout    time.Duration
	fallbackLocal  bool

	// Client (feeder) side.
	connect string
	format  string

	channels   int
	k, m       int
	estimator  string
	alpha      string
	hop        int
	window     int
	ring       int
	workers    int
	mode       string
	rate       int
	duration   time.Duration
	report     time.Duration
	httpAddr   string
	seed       uint64
	threshold  float64
	cfarScale  float64
	detector   string
	targetPfa  float64
	cumulative bool
	quiet      bool

	// notifyListen, when set, receives the bound wire listener address
	// (tests bind port 0 and need the assignment).
	notifyListen func(net.Addr)
	// notifyHTTP likewise receives the bound status-server address.
	notifyHTTP func(net.Addr)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("cfdserve: ")
	var o options
	flag.StringVar(&o.listen, "listen", "", "wire-protocol ingest listener, e.g. :7373 (empty = disabled)")
	flag.IntVar(&o.shards, "shards", 1, "engine instances to partition channels across")
	flag.Float64Var(&o.quota, "quota", 0, "per-connection ingest quota in samples/sec (0 = unlimited)")
	flag.Float64Var(&o.quotaBurst, "quota-burst", 0, "quota bucket depth in samples (0 = one second of quota)")
	flag.DurationVar(&o.drainGrace, "drain-grace", 5*time.Second, "graceful-shutdown wait for in-flight connections")
	flag.BoolVar(&o.selftest, "selftest", false, "run synthetic radio front ends (implied when -listen is unset)")
	flag.StringVar(&o.shardOf, "shard-of", "", "run as a remote shard worker serving one engine on this address (dial it from a parent's -shard-addrs)")
	flag.StringVar(&o.shardAddrs, "shard-addrs", "", "comma-separated worker addresses to route shards to (each a cfdserve -shard-of)")
	flag.DurationVar(&o.healthInterval, "health-interval", 2*time.Second, "remote-shard heartbeat cadence")
	flag.DurationVar(&o.pushTimeout, "push-timeout", 5*time.Second, "per-push deadline to a remote shard")
	flag.BoolVar(&o.fallbackLocal, "fallback-local", false, "spill channels of a failed remote shard to a local fallback engine instead of shedding")
	flag.StringVar(&o.connect, "connect", "", "run as a wire-protocol feeder against this server address")
	flag.StringVar(&o.format, "format", "cf32_le", "wire sample format in -connect mode: cf32_le or ci16_le")
	flag.IntVar(&o.channels, "channels", 4, "concurrent channels (selftest front ends or -connect streams)")
	flag.StringVar(&o.estimator, "estimator", "fam", "surface estimator: "+strings.Join(tiledcfd.EstimatorNames(), ", "))
	flag.StringVar(&o.alpha, "alpha", "", "comma-separated alpha-candidate bin offsets: restrict estimation to these cycle-frequency strips (mirrors and a=0 implied)")
	flag.IntVar(&o.k, "k", 256, "FFT / channelizer size K")
	flag.IntVar(&o.m, "m", 0, "grid half-extent M (0 = K/4)")
	flag.IntVar(&o.hop, "hop", 0, "block/channelizer advance (0 = estimator default; rejected with ssca)")
	flag.IntVar(&o.window, "window", 16384, "samples per decision window")
	flag.IntVar(&o.ring, "ring", 0, "per-channel ingestion ring capacity in samples (0 = 4×window)")
	flag.IntVar(&o.workers, "workers", 0, "worker pool size per shard (0 = one per CPU core)")
	flag.StringVar(&o.mode, "mode", "block", "overload policy: block (backpressure) or drop (count overflow)")
	flag.IntVar(&o.rate, "rate", 0, "per-channel feed rate in samples/sec (0 = as fast as the engine accepts)")
	flag.DurationVar(&o.duration, "duration", 0, "run time (0 = until SIGINT/SIGTERM)")
	flag.DurationVar(&o.report, "report", 2*time.Second, "stats report interval")
	flag.StringVar(&o.httpAddr, "http", "", "status server address, e.g. :8080 (empty = disabled)")
	flag.Uint64Var(&o.seed, "seed", 1, "scenario seed")
	flag.Float64Var(&o.threshold, "threshold", 0, "fixed CFD decision threshold (0 = self-calibrating CFAR)")
	flag.Float64Var(&o.cfarScale, "cfar-scale", 2, "CFAR peak-over-floor detection ratio")
	flag.StringVar(&o.detector, "detector", "", "decision layer: "+strings.Join(tiledcfd.DetectorNames(), ", ")+" (empty = legacy -threshold/-cfar-scale mapping)")
	flag.Float64Var(&o.targetPfa, "pfa", 0, "target false-alarm probability for -detector=dg|urriza (0 = 0.05)")
	flag.BoolVar(&o.cumulative, "cumulative", false, "integrate estimator state across windows instead of per-window reset")
	flag.BoolVar(&o.quiet, "quiet", false, "suppress per-decision transition logging")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if o.connect != "" {
		if err := runClient(ctx, o, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	if o.shardOf != "" {
		if err := runWorker(ctx, o, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	if _, err := run(ctx, o, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// feeder is one channel's synthetic radio front end: a deterministic
// occupancy timeline (idle and busy segments a few windows long, offset
// per channel so the fleet stays heterogeneous) pushed chunk by chunk.
type feeder struct {
	id      string
	idx     int
	carrier float64
	seed    uint64
	busy    atomic.Bool // current ground truth, for the report
}

// pusher is the ingest surface a feeder needs — satisfied by
// tiledcfd.ShardedMonitor locally and by wireSender over the protocol.
type pusher interface {
	Push(id string, samples []complex128) (int, error)
}

// segment returns the ground truth and length in windows of segment s.
func (f *feeder) segment(s int) (busy bool, windows int) {
	busy = s%2 == 1 // start idle, alternate
	if busy {
		return true, 1 + (f.idx+s)%3
	}
	return false, 2 + (f.idx+s)%2
}

// feed pushes the scenario until ctx is cancelled or push fails.
func (f *feeder) feed(ctx context.Context, o options, mon pusher) {
	const chunk = 2048
	var pace *time.Ticker
	if o.rate > 0 {
		pace = time.NewTicker(time.Duration(float64(chunk) / float64(o.rate) * float64(time.Second)))
		defer pace.Stop()
	}
	for s := 0; ; s++ {
		busy, windows := f.segment(s)
		f.busy.Store(busy)
		n := windows * o.window
		var seg []complex128
		var err error
		segSeed := f.seed + uint64(f.idx)*1_000_003 + uint64(s)*7919
		if busy {
			seg, err = tiledcfd.NewBPSKBand(n, f.carrier, 8, 8, segSeed)
		} else {
			seg, err = tiledcfd.NewNoiseBand(n, 0.1, segSeed)
		}
		if err != nil {
			log.Printf("%s: scenario: %v", f.id, err)
			return
		}
		for i := 0; i < len(seg); i += chunk {
			end := i + chunk
			if end > len(seg) {
				end = len(seg)
			}
			if _, err := mon.Push(f.id, seg[i:end]); err != nil {
				return // engine closed
			}
			if pace != nil {
				select {
				case <-ctx.Done():
					return
				case <-pace.C:
				}
			} else if ctx.Err() != nil {
				return
			}
		}
	}
}

// syncWriter serialises output: the reporter and the decision logger
// write to the same stream from different goroutines.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

// Write implements io.Writer.
func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// monitorSink adapts the sharded monitor to the wire server's Sink.
type monitorSink struct {
	mon *tiledcfd.ShardedMonitor
}

// OpenChannel registers the stream's channel id on its shard, honouring
// the alpha-candidate set the client put in the open frame (nil falls
// back to the daemon's -alpha default).
func (s monitorSink) OpenChannel(meta wire.Meta) error {
	return s.mon.AddChannelCandidates(meta.ID, meta.AlphaCandidates)
}

// Push forwards decoded samples to the owning shard.
func (s monitorSink) Push(id string, samples []complex128) (int, error) {
	return s.mon.Push(id, samples)
}

// serveStats is the daemon's final accounting record.
type serveStats = tiledcfd.ShardedMonitorStats

// run builds the sharded monitor, starts the wire listener and/or the
// synthetic feeders, reporter, decision logger and optional status
// server, and blocks until ctx is cancelled (or o.duration elapses),
// then drains gracefully. It returns the final session stats.
func run(ctx context.Context, o options, out io.Writer) (*serveStats, error) {
	out = &syncWriter{w: out}
	if o.listen == "" {
		o.selftest = true // zero-configuration demo mode
	}
	if o.selftest && o.channels < 1 {
		return nil, fmt.Errorf("cfdserve: -channels=%d must be >= 1", o.channels)
	}
	if o.mode != "block" && o.mode != "drop" {
		return nil, fmt.Errorf("cfdserve: -mode=%q must be block or drop", o.mode)
	}
	candidates, err := parseAlpha(o.alpha)
	if err != nil {
		return nil, err
	}
	remotes := parseRemotes(o.shardAddrs)
	if o.shards == 0 && len(remotes) == 0 {
		o.shards = 1
	}
	if o.drainGrace == 0 {
		o.drainGrace = 5 * time.Second
	}
	if o.duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.duration)
		defer cancel()
	}
	var feeders []*feeder
	var ids []string
	if o.selftest {
		feeders = make([]*feeder, o.channels)
		ids = make([]string, o.channels)
		for i := range feeders {
			ids[i] = fmt.Sprintf("ch%02d", i)
			feeders[i] = &feeder{
				id:  ids[i],
				idx: i,
				// Spread carriers across the band so channels stay distinct.
				carrier: float64(4+3*(i%8)) / float64(o.k),
				seed:    o.seed,
			}
		}
	}
	mon, err := tiledcfd.NewShardedMonitor(
		tiledcfd.Config{
			K: o.k, M: o.m, Estimator: o.estimator, Hop: o.hop,
			Threshold: o.threshold, AlphaCandidates: candidates,
			Detector: o.detector, TargetPfa: o.targetPfa,
		},
		tiledcfd.ShardedMonitorOptions{
			MonitorOptions: tiledcfd.MonitorOptions{
				Channels:        ids,
				SnapshotSamples: o.window,
				RingSamples:     o.ring,
				Workers:         o.workers,
				Cumulative:      o.cumulative,
				Backpressure:    o.mode == "block",
				CFARScale:       o.cfarScale,
			},
			Shards:  o.shards,
			Remotes: remotes,
			Health: tiledcfd.RemoteHealthOptions{
				Interval:    o.healthInterval,
				PushTimeout: o.pushTimeout,
			},
			FallbackLocal: o.fallbackLocal,
		},
	)
	if err != nil {
		return nil, err
	}
	defer mon.Close()
	if len(remotes) > 0 {
		fmt.Fprintf(out, "routing to %d remote shard(s): %s\n", len(remotes), o.shardAddrs)
	}

	// Wire-protocol ingest listener.
	var srv *wire.Server
	if o.listen != "" {
		srv, err = wire.NewServer(wire.ServerConfig{
			Sink:               monitorSink{mon},
			QuotaSamplesPerSec: o.quota,
			QuotaBurst:         o.quotaBurst,
			Logf:               log.Printf,
		})
		if err != nil {
			return nil, err
		}
		addr, err := srv.Listen(o.listen)
		if err != nil {
			return nil, err
		}
		defer srv.Close()
		fmt.Fprintf(out, "listening on %s (%d shards)\n", addr, o.shards)
		if o.notifyListen != nil {
			o.notifyListen(addr)
		}
	}

	var wg sync.WaitGroup
	for _, f := range feeders {
		wg.Add(1)
		go func(f *feeder) {
			defer wg.Done()
			f.feed(ctx, o, mon)
		}(f)
	}

	// Decision logger: drains the rolling verdicts and logs occupancy
	// transitions.
	var logWG sync.WaitGroup
	logWG.Add(1)
	go func() {
		defer logWG.Done()
		occupied := map[string]bool{}
		for d := range mon.Decisions() {
			if o.quiet || d.Detected == occupied[d.Channel] {
				continue
			}
			occupied[d.Channel] = d.Detected
			state := "VACATED"
			if d.Detected {
				state = "OCCUPIED"
			}
			fmt.Fprintf(out, "%s %s window %d [%s]: %s (stat %.2f vs %.2f, feature a=%d)\n",
				time.Now().Format("15:04:05"), d.Channel, d.Seq, d.Shard, state,
				d.Statistic, d.Threshold, d.FeatureA)
		}
	}()

	if o.httpAddr != "" {
		hs, err := statusServer(o.httpAddr, mon, srv)
		if err != nil {
			return nil, err
		}
		if o.notifyHTTP != nil {
			o.notifyHTTP(hs.addr)
		}
		defer hs.srv.Shutdown(context.Background()) //nolint:errcheck // best-effort shutdown
	}

	ticker := time.NewTicker(o.report)
	defer ticker.Stop()
	var prev tiledcfd.ShardedMonitorStats
	prevAt := time.Now()
	for running := true; running; {
		select {
		case <-ctx.Done():
			running = false
		case <-ticker.C:
			prev, prevAt = report(out, mon, feeders, prev, prevAt)
		}
	}
	// Graceful drain: stop admitting new connections and channels first,
	// give in-flight frames a grace period to land, then stop the
	// listener hard.
	if srv != nil {
		srv.Drain()
		if !srv.WaitIdle(o.drainGrace) {
			fmt.Fprintf(out, "drain: %d connections still active after %v, closing\n",
				srv.ActiveConns(), o.drainGrace)
		}
		srv.Close()
	}
	wg.Wait()
	// Let in-flight rings drain so every decision window in flight is
	// decided and the final figures are complete, then stop. Flush can
	// only time out if the engine is wedged — report it rather than
	// hanging shutdown.
	if err := mon.Flush(10 * time.Second); err != nil {
		fmt.Fprintf(out, "shutdown: %v\n", err)
	}
	report(out, mon, feeders, prev, prevAt)
	st := mon.Stats()
	if err := mon.Close(); err != nil {
		return nil, err
	}
	logWG.Wait()
	fmt.Fprintf(out, "final: %d channels on %d shards, %d samples in (%d dropped), %d surfaces, %d detections\n",
		st.Channels, st.Shards, st.SamplesIn, st.SamplesDropped, st.Surfaces, st.Detections)
	if st.Retries > 0 || st.Failovers > 0 || st.ShedSamples > 0 {
		fmt.Fprintf(out, "robustness: %d retries, %d deadline overruns, %d failovers, %d samples shed\n",
			st.Retries, st.DeadlineExceeded, st.Failovers, st.ShedSamples)
	}
	return &st, nil
}

// parseAlpha turns the -alpha CSV into the candidate bin-offset set
// (nil when the flag is unset, meaning full-plane estimation).
func parseAlpha(csv string) ([]int, error) {
	if csv == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(csv, ",") {
		a, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("cfdserve: -alpha: bad bin offset %q: %v", f, err)
		}
		out = append(out, a)
	}
	return out, nil
}

// parseRemotes turns the -shard-addrs CSV into the remote topology.
func parseRemotes(csv string) []tiledcfd.RemoteShardOptions {
	var remotes []tiledcfd.RemoteShardOptions
	for _, addr := range strings.Split(csv, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		remotes = append(remotes, tiledcfd.RemoteShardOptions{Addr: addr})
	}
	return remotes
}

// runWorker is -shard-of mode: host one bare engine behind the wire
// protocol's worker mode and let a parent cfdserve route channels at
// it. The worker holds no routing state of its own — channels appear
// when the parent opens them and are swept out when its connection
// drops (the parent carries the counters across such restarts).
func runWorker(ctx context.Context, o options, out io.Writer) error {
	out = &syncWriter{w: out}
	if o.duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.duration)
		defer cancel()
	}
	logf := log.Printf
	if o.quiet {
		logf = func(string, ...any) {}
	}
	candidates, err := parseAlpha(o.alpha)
	if err != nil {
		return err
	}
	w, err := tiledcfd.NewShardWorker(
		tiledcfd.Config{
			K: o.k, M: o.m, Estimator: o.estimator, Hop: o.hop,
			Threshold: o.threshold, AlphaCandidates: candidates,
			Detector: o.detector, TargetPfa: o.targetPfa,
		},
		tiledcfd.ShardWorkerOptions{
			MonitorOptions: tiledcfd.MonitorOptions{
				SnapshotSamples: o.window,
				RingSamples:     o.ring,
				Workers:         o.workers,
				Cumulative:      o.cumulative,
				Backpressure:    o.mode == "block",
				CFARScale:       o.cfarScale,
			},
			Listen: o.shardOf,
			Logf:   logf,
		},
	)
	if err != nil {
		return err
	}
	defer w.Close()
	fmt.Fprintf(out, "shard worker listening on %s\n", w.Addr())
	if o.notifyListen != nil {
		o.notifyListen(w.Addr())
	}
	ticker := time.NewTicker(o.report)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			// Let in-flight rings drain so the parent's final flush sees
			// every due decision, then stop.
			if err := w.Flush(10 * time.Second); err != nil {
				fmt.Fprintf(out, "shutdown: %v\n", err)
			}
			st := w.Stats()
			fmt.Fprintf(out, "final: %d channels, %d samples in, %d surfaces, %d detections\n",
				st.Channels, st.SamplesIn, st.Surfaces, st.Detections)
			return w.Close()
		case <-ticker.C:
			st := w.Stats()
			fmt.Fprintf(out, "%s worker %d ch / %d conns | %.2fM samples (%.2fM/s avg) | %d surfaces | queued %d\n",
				time.Now().Format("15:04:05"), st.Channels, w.ActiveConns(),
				float64(st.SamplesIn)/1e6, st.SamplesPerSec/1e6, st.Surfaces, st.QueuedSamples)
		}
	}
}

// report prints one rolling stats block and returns the counters for the
// next interval's rate computation.
func report(out io.Writer, mon *tiledcfd.ShardedMonitor, feeders []*feeder,
	prev tiledcfd.ShardedMonitorStats, prevAt time.Time) (tiledcfd.ShardedMonitorStats, time.Time) {
	st := mon.Stats()
	now := time.Now()
	dt := now.Sub(prevAt).Seconds()
	if dt <= 0 {
		dt = 1
	}
	sps := float64(st.SamplesIn-prev.SamplesIn) / dt
	fps := float64(st.Surfaces-prev.Surfaces) / dt
	fmt.Fprintf(out, "%s %d ch / %d shards | %.2fM samples (%.2fM/s) | %d surfaces (%.1f/s) | dropped %d | queued %d\n",
		now.Format("15:04:05"), st.Channels, st.Shards,
		float64(st.SamplesIn)/1e6, sps/1e6, st.Surfaces, fps,
		st.SamplesDropped, st.QueuedSamples)
	for _, f := range feeders {
		cs, ok := mon.ChannelStats(f.id)
		if !ok {
			continue
		}
		verdict, stat := "-", 0.0
		if cs.Last != nil {
			stat = cs.Last.Statistic
			if cs.Last.Detected {
				verdict = "OCCUPIED"
			} else {
				verdict = "idle"
			}
		}
		truth := "idle"
		if f.busy.Load() {
			truth = "busy"
		}
		fmt.Fprintf(out, "  %-5s %-8s (truth %-4s) [%s] stat %6.2f | windows %4d | detections %4d | dropped %d\n",
			f.id, verdict, truth, cs.Shard, stat, cs.Snapshots, cs.Detections, cs.SamplesDropped)
	}
	return st, now
}

// statusSnapshot is the /stats JSON schema.
type statusSnapshot struct {
	Stats    tiledcfd.ShardedMonitorStats          `json:"stats"`
	Shards   []tiledcfd.ShardInfo                  `json:"shards"`
	Channels []tiledcfd.ShardedMonitorChannelStats `json:"channels"`
}

// collectMetrics fills one Prometheus exposition scrape: engine-level
// counters, per-shard gauges, and (when serving the wire protocol) the
// ingest listener's counters.
func collectMetrics(e *wire.Exposition, mon *tiledcfd.ShardedMonitor, srv *wire.Server) {
	st := mon.Stats()
	e.Metric("cfd_engine_samples_in_total", "counter",
		"IQ samples accepted by the sensing engines.", float64(st.SamplesIn))
	e.Metric("cfd_engine_samples_dropped_total", "counter",
		"IQ samples discarded by full ingestion rings (drop mode).", float64(st.SamplesDropped))
	e.Metric("cfd_engine_samples_per_sec", "gauge",
		"Lifetime-average ingest rate in samples/sec.", st.SamplesPerSec)
	e.Metric("cfd_engine_decisions_total", "counter",
		"Decision windows produced across all shards.", float64(st.Surfaces))
	e.Metric("cfd_engine_detections_total", "counter",
		"Decision windows declaring the band occupied.", float64(st.Detections))
	e.Metric("cfd_engine_decisions_dropped_total", "counter",
		"Decisions lost to a full or unread decision stream.", float64(st.DecisionsDropped))
	e.Metric("cfd_engine_channels", "gauge",
		"Registered channels.", float64(st.Channels))
	e.Metric("cfd_pruned_cells_skipped_total", "counter",
		"Surface cells never computed thanks to alpha-candidate pruning.",
		float64(st.PrunedCellsSkipped))
	e.Metric("cfd_engine_shards", "gauge",
		"Live shard engines.", float64(st.Shards))
	e.Metric("cfd_engine_handoffs_total", "counter",
		"Channel ownership moves across rebalances.", float64(st.Handoffs))
	for _, s := range mon.Shards() {
		e.Metric("cfd_shard_queue_depth", "gauge",
			"Momentary ingestion backlog per shard in samples.",
			float64(s.QueuedSamples), "shard", s.Name)
	}
	for _, s := range mon.Shards() {
		e.Metric("cfd_shard_samples_in_total", "counter",
			"IQ samples accepted per shard.", float64(s.SamplesIn), "shard", s.Name)
	}
	for _, s := range mon.Shards() {
		e.Metric("cfd_shard_decisions_total", "counter",
			"Decision windows produced per shard.", float64(s.Surfaces), "shard", s.Name)
	}
	for _, s := range mon.Shards() {
		e.Metric("cfd_shard_channels", "gauge",
			"Channels owned per shard.", float64(s.Channels), "shard", s.Name)
	}
	e.Metric("cfd_shard_retries_total", "counter",
		"Push retries against remote shards.", float64(st.Retries))
	e.Metric("cfd_push_deadline_exceeded_total", "counter",
		"Remote pushes that overran their deadline.", float64(st.DeadlineExceeded))
	e.Metric("cfd_shard_failovers_total", "counter",
		"Remote shards failed over after their circuit opened.", float64(st.Failovers))
	e.Metric("cfd_shard_shed_samples_total", "counter",
		"Samples shed because no healthy shard could take them.", float64(st.ShedSamples))
	for _, s := range mon.Shards() {
		if !s.Remote {
			continue
		}
		e.Metric("cfd_shard_circuit_state", "gauge",
			"Remote shard breaker position: 0 closed, 1 half-open, 2 open.",
			float64(circuitStateValue(s.State)), "shard", s.Name)
	}
	if srv != nil {
		srv.Collect(e)
	}
}

// circuitStateValue maps a shard's breaker name onto the gauge encoding.
func circuitStateValue(state string) int {
	switch state {
	case "half-open":
		return 1
	case "open":
		return 2
	}
	return 0
}

// statusHTTP is a started status server and its bound address.
type statusHTTP struct {
	srv  *http.Server
	addr net.Addr
}

// statusServer starts the embedded HTTP endpoint: /healthz, /stats
// (JSON) and /metrics (Prometheus text exposition).
func statusServer(addr string, mon *tiledcfd.ShardedMonitor, wsrv *wire.Server) (*statusHTTP, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		// Degraded = at least one remote shard's circuit is not closed:
		// traffic still flows (re-homed or shed with accounting) but the
		// fleet is short, so load balancers should prefer a healthy peer.
		if open := mon.OpenCircuits(); len(open) > 0 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]any{ //nolint:errcheck // best-effort status
				"status":        "degraded",
				"open_circuits": open,
			})
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
		snap := statusSnapshot{Stats: mon.Stats(), Shards: mon.Shards()}
		for _, id := range mon.Channels() {
			if cs, ok := mon.ChannelStats(id); ok {
				snap.Channels = append(snap.Channels, cs)
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(snap) //nolint:errcheck // best-effort status
	})
	mux.Handle("/metrics", wire.Handler(func(e *wire.Exposition) {
		collectMetrics(e, mon, wsrv)
	}))
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: mux}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Printf("status server: %v", err)
		}
	}()
	return &statusHTTP{srv: srv, addr: ln.Addr()}, nil
}

// runClient is -connect mode: a wire-protocol load generator streaming
// the synthetic scenario at a serving cfdserve instance.
func runClient(ctx context.Context, o options, out io.Writer) error {
	out = &syncWriter{w: out}
	if o.channels < 1 {
		return fmt.Errorf("cfdserve: -channels=%d must be >= 1", o.channels)
	}
	var format wire.Format
	switch o.format {
	case "", "cf32_le":
		format = wire.FormatCF32
	case "ci16_le":
		format = wire.FormatCI16
	default:
		return fmt.Errorf("cfdserve: -format=%q must be cf32_le or ci16_le", o.format)
	}
	candidates, err := parseAlpha(o.alpha)
	if err != nil {
		return err
	}
	if o.duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.duration)
		defer cancel()
	}
	c, err := wire.Dial(o.connect)
	if err != nil {
		return err
	}
	defer c.Close()
	rate := float64(o.rate)
	if rate == 0 {
		rate = 1e6 // nominal front-end rate for the metadata
	}
	var sent atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, o.channels)
	for i := 0; i < o.channels; i++ {
		cs, err := c.Open(wire.Meta{
			ID:              fmt.Sprintf("wire%02d", i),
			Format:          format,
			SampleRateHz:    rate,
			AlphaCandidates: candidates,
		})
		if err != nil {
			return err
		}
		f := &feeder{id: cs.ID(), idx: i, carrier: float64(4+3*(i%8)) / float64(o.k), seed: o.seed}
		wg.Add(1)
		go func(cs *wire.ChannelStream, f *feeder) {
			defer wg.Done()
			f.feed(ctx, o, sendCounter{cs, &sent})
			if err := cs.Close(); err != nil && ctx.Err() == nil {
				errs <- err
			}
		}(cs, f)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return fmt.Errorf("cfdserve: stream: %w", err)
	}
	if err := c.Err(); err != nil && ctx.Err() == nil {
		return err
	}
	fmt.Fprintf(out, "sent %d samples on %d channels (%d shed by server quota)\n",
		sent.Load(), o.channels, c.ShedSamples())
	return nil
}

// sendCounter adapts a wire channel stream to the feeder's pusher
// surface, counting samples as they go out.
type sendCounter struct {
	cs   *wire.ChannelStream
	sent *atomic.Int64
}

// Push streams one block, blocking under server backpressure.
func (s sendCounter) Push(_ string, samples []complex128) (int, error) {
	if err := s.cs.Send(samples); err != nil {
		return 0, err
	}
	s.sent.Add(int64(len(samples)))
	return len(samples), nil
}
