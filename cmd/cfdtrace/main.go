// Command cfdtrace runs one platform simulation with span tracing enabled
// and emits the per-tile execution timeline as CSV
// (source,section,start,cycles) — the raw material for Gantt-style
// visualisation of the Table 1 phases across tiles.
//
// Usage:
//
//	cfdtrace [-k 256] [-m 64] [-q 4] [-blocks 1] [-seed 1] > timeline.csv
package main

import (
	"flag"
	"log"
	"os"

	"tiledcfd/internal/fixed"
	"tiledcfd/internal/sig"
	"tiledcfd/internal/soc"
	"tiledcfd/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cfdtrace: ")
	k := flag.Int("k", 256, "FFT size K")
	m := flag.Int("m", 0, "grid half-extent M (0 = K/4)")
	q := flag.Int("q", 4, "number of tiles")
	blocks := flag.Int("blocks", 1, "integration blocks")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	if *m == 0 {
		*m = *k / 4
	}
	platform, err := soc.New(soc.Config{K: *k, M: *m, Q: *q, Blocks: *blocks})
	if err != nil {
		log.Fatal(err)
	}
	var rec trace.Recorder
	platform.EnableTrace(&rec)

	rng := sig.NewRand(*seed)
	b := &sig.BPSK{Amp: 1, Carrier: 0.125, SymbolLen: 8, Rng: rng}
	x := sig.Samples(b, *k**blocks)
	noisy, _, err := sig.AddAWGN(x, 10, true, rng)
	if err != nil {
		log.Fatal(err)
	}
	fixed.ScaleSliceFloat(noisy, 0.5)

	if _, _, err := platform.Run(fixed.FromFloatSlice(noisy)); err != nil {
		log.Fatal(err)
	}
	if err := rec.WriteCSV(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
