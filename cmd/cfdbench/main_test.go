package main

import (
	"math"
	"testing"

	"tiledcfd"
	"tiledcfd/internal/scf"
)

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := median(append([]float64(nil), c.in...)); got != c.want {
			t.Errorf("median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestBandPeak(t *testing.T) {
	band := []complex128{complex(0.25, -0.5), complex(-1.75, 0.125), complex(0, 1.5)}
	if got := bandPeak(band); got != 1.75 {
		t.Errorf("bandPeak = %v, want 1.75", got)
	}
	if got := bandPeak(nil); got != 0 {
		t.Errorf("bandPeak(nil) = %v, want 0", got)
	}
}

func TestParseCounts(t *testing.T) {
	got, err := parseCounts("1, 0,8", "-test")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 0 || got[2] != 8 {
		t.Fatalf("parseCounts = %v", got)
	}
	if _, err := parseCounts("1,x", "-test"); err == nil {
		t.Fatal("parseCounts accepted a non-integer")
	}
}

// TestBenchQ15KernelSmoke runs the schema-9 scenario end to end at a
// tiny geometry: the scenario must extend the band to its steady-state
// workload, verify scalar/SWAR bit-exactness, and emit one finite,
// positive row per fixed-point estimator and GOMAXPROCS setting.
func TestBenchQ15KernelSmoke(t *testing.T) {
	const k, seed = 16, 7
	band, err := tiledcfd.NewBPSKBand(4*k, 0.125, 8, 10, seed)
	if err != nil {
		t.Fatal(err)
	}
	all := estimatorSet(scf.Params{K: k, M: 4}, 4, bandPeak(band))
	rows, err := benchQ15Kernel(q15Opts{rounds: 1, procsCSV: "1"}, all, band, k, seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(fixedRefs) {
		t.Fatalf("got %d rows, want %d", len(rows), len(fixedRefs))
	}
	for _, r := range rows {
		if !r.BitExact {
			t.Errorf("%s: BitExact false", r.Name)
		}
		if r.Samples != q15KernelBlocks*k {
			t.Errorf("%s: Samples = %d, want steady-state %d", r.Name, r.Samples, q15KernelBlocks*k)
		}
		if r.GOMAXPROCS != 1 || r.Rounds != 1 {
			t.Errorf("%s: GOMAXPROCS/Rounds = %d/%d", r.Name, r.GOMAXPROCS, r.Rounds)
		}
		for label, v := range map[string]float64{
			"scalar":           r.ScalarNsPerOp,
			"swar":             r.SWARNsPerOp,
			"float":            r.FloatNsPerOp,
			"kernel_speedup":   r.KernelSpeedup,
			"fixed_over_float": r.FixedOverFloat,
		} {
			if !(v > 0) || math.IsInf(v, 0) || math.IsNaN(v) {
				t.Errorf("%s: %s = %v, want finite positive", r.Name, label, v)
			}
		}
		if r.Reference != fixedRefs[r.Name] {
			t.Errorf("%s: reference %q, want %q", r.Name, r.Reference, fixedRefs[r.Name])
		}
	}
}
