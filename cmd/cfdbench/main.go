// Command cfdbench runs the spectral-correlation estimator benchmarks on
// the paper geometry (K=256, M=64 by default) and writes the results as a
// JSON artifact (BENCH_<n>.json), so the performance trajectory of the
// estimators is tracked alongside the code from PR 2 onward.
//
// Reported per estimator: wall-clock ns/op, bytes/op and allocs/op, plus
// the modeled complex-multiplication counts from scf.Stats. The mult
// counts are the paper's canonical operation model (e.g. FAM is charged a
// full P-point second FFT per cell even though the implementation
// evaluates only its bin 0); wall-clock is what the machine actually did —
// keeping both visible is the point of the artifact.
//
// Since PR 3 the artifact also carries a streaming-throughput scenario:
// the multi-channel engine (internal/stream) is fed -stream-channels
// concurrent channels in backpressure mode and the sustained samples/sec
// and surfaces/sec per estimator are recorded (schema 2). -stream-samples
// sets the per-channel feed; -stream-channels 0 skips the scenario.
//
// With -baseline, a previously written report is embedded and per-
// estimator speedups (baseline ns / current ns) are computed, turning one
// file into a before/after comparison:
//
//	go run ./cmd/cfdbench -baseline BENCH_1.json -out BENCH_2.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"tiledcfd"
	"tiledcfd/internal/fam"
	"tiledcfd/internal/scf"
	"tiledcfd/internal/stream"
)

// Measurement is one estimator's benchmark row.
type Measurement struct {
	Name           string  `json:"name"`
	NsPerOp        float64 `json:"ns_per_op"`
	BytesPerOp     int64   `json:"bytes_per_op"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
	Iterations     int     `json:"iterations"`
	FFTMults       int     `json:"fft_mults"`
	PointwiseMults int     `json:"pointwise_mults"`
	TotalMults     int     `json:"total_mults"`
	SmoothingLen   int     `json:"smoothing_len"`
}

// StreamingMeasurement is one estimator's multi-channel streaming
// throughput row: the engine fed in backpressure mode (nothing dropped),
// so the rates are what the worker pool sustains end to end —
// ring drain, incremental estimator state, snapshot, CFAR decision.
type StreamingMeasurement struct {
	Name              string  `json:"name"`
	Channels          int     `json:"channels"`
	SamplesPerChannel int     `json:"samples_per_channel"`
	SnapshotSamples   int     `json:"snapshot_samples"`
	Workers           int     `json:"workers"`
	WallSeconds       float64 `json:"wall_seconds"`
	SamplesPerSec     float64 `json:"samples_per_sec"`
	SurfacesPerSec    float64 `json:"surfaces_per_sec"`
	Surfaces          int64   `json:"surfaces"`
}

// Report is the BENCH_<n>.json schema.
type Report struct {
	Schema     int                    `json:"schema"`
	Timestamp  string                 `json:"timestamp"`
	GoVersion  string                 `json:"go_version"`
	GOOS       string                 `json:"goos"`
	GOARCH     string                 `json:"goarch"`
	GOMAXPROCS int                    `json:"gomaxprocs"`
	Geometry   Geometry               `json:"geometry"`
	Note       string                 `json:"note"`
	Results    []Measurement          `json:"results"`
	Streaming  []StreamingMeasurement `json:"streaming,omitempty"`
	Baseline   *Report                `json:"baseline,omitempty"`
	Speedup    map[string]float64     `json:"speedup_vs_baseline,omitempty"`
}

// Geometry records the benchmark's estimator configuration.
type Geometry struct {
	K       int    `json:"k"`
	M       int    `json:"m"`
	Blocks  int    `json:"blocks"`
	Samples int    `json:"samples"`
	Signal  string `json:"signal"`
	Seed    uint64 `json:"seed"`
}

func main() {
	var (
		out      = flag.String("out", "BENCH.json", "output JSON path")
		k        = flag.Int("k", 256, "FFT / channelizer size (power of two)")
		m        = flag.Int("m", 64, "surface half-extent")
		blocks   = flag.Int("blocks", 8, "integration blocks of K samples")
		seed     = flag.Uint64("seed", 42, "BPSK band seed")
		names    = flag.String("estimators", "direct,fam,ssca", "comma-separated estimator subset")
		baseline = flag.String("baseline", "", "previous BENCH json to embed for before/after speedups")
		streamCh = flag.Int("stream-channels", 4, "streaming scenario: concurrent channels (0 = skip)")
		streamN  = flag.Int("stream-samples", 1<<17, "streaming scenario: samples per channel")
	)
	flag.Parse()
	if err := run(*out, *k, *m, *blocks, *seed, *names, *baseline, *streamCh, *streamN); err != nil {
		fmt.Fprintln(os.Stderr, "cfdbench:", err)
		os.Exit(1)
	}
}

func run(out string, k, m, blocks int, seed uint64, names, baseline string, streamCh, streamN int) error {
	band, err := tiledcfd.NewBPSKBand(k*blocks, 0.125, 8, 10, seed)
	if err != nil {
		return err
	}
	p := scf.Params{K: k, M: m}
	direct := p
	direct.Blocks = blocks
	all := map[string]scf.Estimator{
		"direct": scf.Direct{Params: direct},
		"fam":    fam.FAM{Params: p},
		"ssca":   fam.SSCA{Params: p},
	}
	rep := Report{
		Schema:     2, // 2: adds the streaming throughput section
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Geometry: Geometry{
			K: k, M: m, Blocks: blocks, Samples: k * blocks,
			Signal: "bpsk carrier=0.125 symlen=8 snr=10dB", Seed: seed,
		},
		Note: "mult counts are the paper's canonical operation model " +
			"(FAM charged a full P-point second FFT per cell); ns/op is measured wall-clock",
	}
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		e, ok := all[name]
		if !ok {
			return fmt.Errorf("unknown estimator %q (want direct, fam or ssca)", name)
		}
		var stats *scf.Stats
		var estErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, st, err := e.Estimate(band)
				if err != nil {
					estErr = err
					b.FailNow()
				}
				stats = st
			}
		})
		if estErr != nil {
			return fmt.Errorf("%s: %w", name, estErr)
		}
		rep.Results = append(rep.Results, Measurement{
			Name:           name,
			NsPerOp:        float64(r.NsPerOp()),
			BytesPerOp:     r.AllocedBytesPerOp(),
			AllocsPerOp:    r.AllocsPerOp(),
			Iterations:     r.N,
			FFTMults:       stats.FFTMults,
			PointwiseMults: stats.DSCFMults,
			TotalMults:     stats.TotalMults(),
			SmoothingLen:   stats.Blocks,
		})
		fmt.Printf("%-8s %12.0f ns/op %10d B/op %6d allocs/op %10d total_mults\n",
			name, float64(r.NsPerOp()), r.AllocedBytesPerOp(), r.AllocsPerOp(), stats.TotalMults())
	}
	if streamCh > 0 {
		for _, name := range strings.Split(names, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			sest, ok := all[name].(scf.StreamingEstimator)
			if !ok {
				return fmt.Errorf("estimator %q cannot stream", name)
			}
			sm, err := benchStreaming(name, sest, streamCh, streamN, band)
			if err != nil {
				return fmt.Errorf("streaming %s: %w", name, err)
			}
			rep.Streaming = append(rep.Streaming, *sm)
			fmt.Printf("%-8s streaming %d ch: %8.2fM samples/s %8.1f surfaces/s\n",
				name, sm.Channels, sm.SamplesPerSec/1e6, sm.SurfacesPerSec)
		}
	}
	if baseline != "" {
		raw, err := os.ReadFile(baseline)
		if err != nil {
			return err
		}
		var base Report
		if err := json.Unmarshal(raw, &base); err != nil {
			return fmt.Errorf("parse baseline %s: %w", baseline, err)
		}
		base.Baseline = nil // keep the artifact one level deep
		rep.Baseline = &base
		rep.Speedup = map[string]float64{}
		for _, b := range base.Results {
			for _, c := range rep.Results {
				if b.Name == c.Name && c.NsPerOp > 0 {
					rep.Speedup[b.Name] = b.NsPerOp / c.NsPerOp
				}
			}
		}
		for name, s := range rep.Speedup {
			fmt.Printf("%-8s %.2fx vs baseline\n", name, s)
		}
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", out)
	return nil
}

// benchStreaming measures the sustained multi-channel streaming
// throughput of one estimator: channels concurrent feeders push total
// samples each (the test band tiled as needed) through a backpressured
// engine with the default window, and the wall clock over the fully
// drained run yields samples/sec and surfaces/sec.
func benchStreaming(name string, est scf.StreamingEstimator, channels, total int, band []complex128) (*StreamingMeasurement, error) {
	const window = 8192
	eng, err := stream.New(stream.Config{
		Estimator:       est,
		SnapshotSamples: window,
		Block:           true,
	})
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	ids := make([]string, channels)
	for i := range ids {
		ids[i] = fmt.Sprintf("ch%d", i)
		if err := eng.AddChannel(ids[i]); err != nil {
			return nil, err
		}
	}
	startAt := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, channels)
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			for fed := 0; fed < total; {
				n := len(band)
				if fed+n > total {
					n = total - fed
				}
				if _, err := eng.Push(id, band[:n]); err != nil {
					errs[i] = err
					return
				}
				fed += n
			}
		}(i, id)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := eng.Flush(5 * time.Minute); err != nil {
		return nil, err
	}
	wall := time.Since(startAt).Seconds()
	st := eng.Stats()
	if st.SamplesDropped != 0 {
		return nil, fmt.Errorf("dropped %d samples in backpressure mode", st.SamplesDropped)
	}
	sm := &StreamingMeasurement{
		Name:              name,
		Channels:          channels,
		SamplesPerChannel: total,
		SnapshotSamples:   window,
		Workers:           runtime.GOMAXPROCS(0),
		WallSeconds:       wall,
		Surfaces:          st.Surfaces,
	}
	if wall > 0 {
		sm.SamplesPerSec = float64(st.SamplesIn) / wall
		sm.SurfacesPerSec = float64(st.Surfaces) / wall
	}
	return sm, nil
}
