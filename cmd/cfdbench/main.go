// Command cfdbench runs the spectral-correlation estimator benchmarks on
// the paper geometry (K=256, M=64 by default) and writes the results as a
// JSON artifact (BENCH_<n>.json), so the performance trajectory of the
// estimators is tracked alongside the code from PR 2 onward.
//
// Reported per estimator: wall-clock ns/op, bytes/op and allocs/op, plus
// the modeled complex-multiplication counts from scf.Stats. The mult
// counts are the paper's canonical operation model (e.g. FAM is charged a
// full P-point second FFT per cell even though the implementation
// evaluates only its bin 0); wall-clock is what the machine actually did —
// keeping both visible is the point of the artifact.
//
// Since PR 3 the artifact also carries a streaming-throughput scenario:
// the multi-channel engine (internal/stream) is fed -stream-channels
// concurrent channels in backpressure mode and the sustained samples/sec
// and surfaces/sec per estimator are recorded (schema 2). -stream-samples
// sets the per-channel feed; -stream-channels 0 skips the scenario.
// Estimators without an incremental form (the Q15 backends) are skipped
// there.
//
// Since PR 4 (schema 3) the estimator set includes the Q15 fixed-point
// backends (fam-q15, ssca-q15), batch rows carry their modeled Montium
// cycle costs, and a fixed-point scenario compares each Q15 backend
// against its float reference on the same band: surface SQNR, feature-
// peak bias, saturation and block exponent (internal/quant).
//
// Since PR 5 (schema 4) the artifact carries a multi-tile mapping
// scenario: the -map-estimator pipeline is scheduled onto modeled tile
// fabrics (tiledcfd.MapEstimate) for every -map-strategies ×
// -map-tiles combination, recording predicted latency, sustained
// throughput, speedup vs the single-tile baseline, NoC traffic and
// memory feasibility — and, per tile count, the streaming engine is fed
// that many concurrent channels in backpressure mode so the modeled
// fabric figures sit next to a measured host sustained rate.
// -map-tiles "" skips the scenario.
//
// Since PR 6 (schema 5) the artifact carries a wire-protocol ingestion
// scenario: a multi-shard server (internal/shard behind internal/wire)
// listens on loopback and -wire-channels client connections stream the
// band at it with TCP backpressure as the only pacing, so the recorded
// aggregate samples/sec is the sharded service's saturation throughput
// end to end (framing, decode, routing, estimator, decision). Rows are
// the cross product of -wire-shards and -wire-procs (GOMAXPROCS is
// switched in-process per row, so one artifact carries the 1-vs-N core
// scaling pair), and every streaming row now records GOMAXPROCS and the
// engine worker count explicitly. -wire-channels 0 skips the scenario.
//
// Since PR 7 (schema 6) the artifact carries a degraded-mode scenario:
// the router drives -degraded-shards remote shard workers (in-process,
// wire protocol over loopback) with the robustness layer around each —
// per-push deadlines, retries, circuit breakers, heartbeat failover —
// and halfway through the feed one worker is blackholed (internal/chaos:
// its connections stop moving bytes but stay open, the worst failure
// mode). Recorded: the sustained aggregate samples/sec across the fault,
// failovers, retries, shed samples and open circuits, so the cost of a
// dead tile-fabric link is a tracked number. -degraded-channels 0 skips
// the scenario.
//
// Since PR 8 (schema 7) the batch scenario additionally runs a
// GOMAXPROCS sweep (-batch-procs, rows "name@pN" with the setting
// recorded on every row), and the artifact carries an alpha-pruning
// scenario: each -pruned-estimators estimator runs the same band
// full-plane and pruned to the -pruned-alpha candidate set, first
// checking every pruned strip bit-identical against the full plane,
// then timing (a) one batch op — Estimate of the whole band — and (b)
// one serving op — Reset + Push + Snapshot + CFAR decision + feature
// scan through the streaming accumulator, the engine's per-window
// decision loop — for every -pruned-windows window length. Serve
// speedup grows as windows shrink (the decision side is pruned at the
// full cell ratio while the shared per-block FFT floor stays), so each
// row records its window_samples and the sweep shows the trend.
// -pruned-fail-below gates the run on the best serve speedup across
// rows, the pruning counterpart of -fail-below (and needs no baseline
// file: full vs pruned run in the same process).
//
// Since PR 9 (schema 8) the artifact carries a detection scenario: the
// ROC sweep of the asymptotic statistical detectors (internal/quant
// RunROC) — estimator × detector × modulation × SNR, each curve traced
// across target-Pfa operating points with measured Pd and Pfa per
// point. The headline check is Pfa accuracy: the asymptotic tests
// (Dandawate–Giannakis "dg", multi-sequence "urriza") derive their
// thresholds in closed form from the target false-alarm probability
// with no Monte-Carlo calibration, so every point's measured Pfa must
// sit inside the binomial confidence interval around its target
// (-roc-conf, default 0.99 for flake headroom). -roc-gate makes a
// failed check exit non-zero; -roc-out additionally writes the ROC
// report as its own artifact for plotting; -roc-trials 0 skips the
// scenario.
//
// Since PR 10 (schema 9) the artifact carries a Q15-kernel scenario:
// the fixed-point estimators run under the scalar reference kernels and
// under the SWAR kernels (internal/fixed), interleaved round-robin in
// one process with per-variant medians (absolute ns/op on a shared
// runner is noisy; medians of interleaved rounds are stable), after a
// bit-exactness check that both kernel implementations produce the
// identical QSurface. Each row records the scalar-vs-SWAR kernel
// speedup and the fixed-vs-float wall-clock ratio against the float
// reference estimator, per -q15-procs GOMAXPROCS setting.
// -q15-fail-below gates the run on fam-q15's float/fixed ratio (e.g.
// 0.5 = fail when fam-q15 costs more than 2x float fam); -q15-rounds 0
// skips the scenario.
//
// With -baseline, a previously written report is embedded and per-
// estimator speedups (baseline ns / current ns) are computed, turning one
// file into a before/after comparison:
//
//	go run ./cmd/cfdbench -baseline BENCH_1.json -out BENCH_2.json
//
// -fail-below makes the run exit non-zero when any batch estimator's
// speedup vs the baseline falls below the given ratio — the CI bench-
// regression gate (baseline = HEAD~1 on the same runner, 0.8 = fail on
// >25% slowdown).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"math/cmplx"
	"net"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tiledcfd"
	"tiledcfd/internal/chaos"
	"tiledcfd/internal/detect"
	"tiledcfd/internal/fam"
	"tiledcfd/internal/fixed"
	"tiledcfd/internal/quant"
	"tiledcfd/internal/scf"
	"tiledcfd/internal/shard"
	"tiledcfd/internal/stream"
	"tiledcfd/internal/wire"
)

// Measurement is one estimator's benchmark row. Since schema 7 the
// batch scenario also runs a GOMAXPROCS sweep: the plain row keeps the
// process default (so same-runner baseline ratios stay comparable), and
// "name@pN" rows pin GOMAXPROCS to N — every row records the setting.
type Measurement struct {
	Name           string  `json:"name"`
	GOMAXPROCS     int     `json:"gomaxprocs"`
	NsPerOp        float64 `json:"ns_per_op"`
	BytesPerOp     int64   `json:"bytes_per_op"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
	Iterations     int     `json:"iterations"`
	FFTMults       int     `json:"fft_mults"`
	PointwiseMults int     `json:"pointwise_mults"`
	TotalMults     int     `json:"total_mults"`
	SmoothingLen   int     `json:"smoothing_len"`
	// ModelCycles is the modeled Montium cycle cost (fixed backends only).
	ModelCycles int64 `json:"model_cycles,omitempty"`
}

// PrunedMeasurement is one estimator's row of the schema-7 alpha-pruning
// scenario: the same band estimated full-plane and pruned to a small
// candidate set, with the pruned cells checked bit-identical against the
// full plane. Two ops are timed end to end:
//
//   - batch: Estimate + CFAR decision + feature extraction, the one-shot
//     directed-sensing path (cfdsim -alpha).
//   - serve: one serving window exactly as stream.Engine runs it per
//     decision — accumulator Push of the window, surface Snapshot, CFAR
//     decision, feature extraction, Reset. This is where the sparse
//     snapshot pays alongside the pruned estimation, so it is the
//     headline (and gated) number.
type PrunedMeasurement struct {
	Name string `json:"name"`
	// Candidates is the non-negative bin-offset set (mirrors and a=0
	// implied).
	Candidates []int `json:"candidates"`
	// RowsComputed / RowsFull are the surface alpha rows held after
	// pruning vs the full grid extent.
	RowsComputed int `json:"rows_computed"`
	RowsFull     int `json:"rows_full"`
	// FullNsPerOp and PrunedNsPerOp time one batch op (Estimate + CFAR
	// + feature extraction).
	FullNsPerOp   float64 `json:"full_ns_per_op"`
	PrunedNsPerOp float64 `json:"pruned_ns_per_op"`
	// Speedup is FullNsPerOp / PrunedNsPerOp — the batch-latency
	// reduction directed sensing buys.
	Speedup float64 `json:"speedup"`
	// WindowSamples is the serving-window size of this row's serve
	// numbers (the -pruned-windows sweep; batch numbers are identical
	// across an estimator's rows). The speedup grows as windows shrink,
	// because the decision-side costs — snapshot, CFAR profile, feature
	// scan, all pruned at the full cell ratio — dominate the shared
	// per-block FFT floor.
	WindowSamples int `json:"window_samples,omitempty"`
	// ServeFullNsPerOp and ServePrunedNsPerOp time one serving window
	// (Push + Snapshot + CFAR + feature extraction + Reset). Zero when
	// the window is too short for this estimator's first snapshot.
	ServeFullNsPerOp   float64 `json:"serve_full_ns_per_op,omitempty"`
	ServePrunedNsPerOp float64 `json:"serve_pruned_ns_per_op,omitempty"`
	// ServeSpeedup is the serving-window latency reduction — the
	// -pruned-fail-below gate takes the best across rows.
	ServeSpeedup float64 `json:"serve_speedup,omitempty"`
	// MaxAbsDiff is the largest |full - pruned| over the candidate
	// strips; bit-identity means exactly 0.
	MaxAbsDiff float64 `json:"max_abs_diff"`
	// PrunedCellsSkipped counts grid cells one pruned Estimate never
	// computed.
	PrunedCellsSkipped int64 `json:"pruned_cells_skipped"`
	GOMAXPROCS         int   `json:"gomaxprocs"`
}

// Q15KernelMeasurement is one fixed-point estimator's row of the
// schema-9 Q15-kernel scenario: the same full estimate timed under the
// scalar reference kernels and under the SWAR kernels, plus the float
// reference estimator, all interleaved round-robin in one process and
// reduced to per-variant medians. KernelSpeedup is what the SWAR
// datapath buys over the scalar one; FixedOverFloat is the headline
// cost of running the estimate in 16-bit words at all (the
// -q15-fail-below gate reads its inverse).
type Q15KernelMeasurement struct {
	Name       string `json:"name"`
	Reference  string `json:"reference"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Rounds     int    `json:"rounds"`
	// Samples is the scenario's own steady-state workload length; the
	// Q15 pipelines carry per-snapshot setup (quantisation, plan and
	// root-table lookup) that the kernel ratio should amortise, so the
	// scenario measures q15KernelBlocks blocks of K rather than the
	// top-level -blocks band.
	Samples int `json:"samples"`
	// BitExact records the scenario's precondition check: the scalar and
	// SWAR kernels produced the identical QSurface (words, exponent,
	// gain) on the benchmark band. The run fails outright when false.
	BitExact bool `json:"bit_exact"`
	// Medians of the interleaved rounds, ns per full Estimate.
	ScalarNsPerOp float64 `json:"scalar_ns_per_op"`
	SWARNsPerOp   float64 `json:"swar_ns_per_op"`
	FloatNsPerOp  float64 `json:"float_ns_per_op"`
	// KernelSpeedup = scalar / SWAR (>1 means SWAR is faster).
	KernelSpeedup float64 `json:"kernel_speedup"`
	// FixedOverFloat = SWAR Q15 / float reference (1.0 = parity).
	FixedOverFloat float64 `json:"fixed_over_float"`
}

// FixedPointMeasurement is one Q15 backend's accuracy row against its
// float reference on the benchmark band (the schema-3 fixed-point
// scenario).
type FixedPointMeasurement struct {
	Name           string  `json:"name"`
	Reference      string  `json:"reference"`
	SQNRdB         float64 `json:"sqnr_db"`
	PeakBias       float64 `json:"peak_bias"`
	SaturatedCells int     `json:"saturated_cells"`
	Exp            int     `json:"exp"`
	ModelCycles    int64   `json:"model_cycles"`
}

// StreamingMeasurement is one estimator's multi-channel streaming
// throughput row: the engine fed in backpressure mode (nothing dropped),
// so the rates are what the worker pool sustains end to end —
// ring drain, incremental estimator state, snapshot, CFAR decision.
type StreamingMeasurement struct {
	Name              string  `json:"name"`
	Channels          int     `json:"channels"`
	SamplesPerChannel int     `json:"samples_per_channel"`
	SnapshotSamples   int     `json:"snapshot_samples"`
	Workers           int     `json:"workers"`
	GOMAXPROCS        int     `json:"gomaxprocs"`
	WallSeconds       float64 `json:"wall_seconds"`
	SamplesPerSec     float64 `json:"samples_per_sec"`
	SurfacesPerSec    float64 `json:"surfaces_per_sec"`
	Surfaces          int64   `json:"surfaces"`
}

// WireMeasurement is one row of the schema-5 wire-protocol ingestion
// scenario: the sharded service saturated over loopback TCP, so the
// aggregate samples/sec covers framing, decode, shard routing, the
// estimators and the decisions end to end.
type WireMeasurement struct {
	Name              string  `json:"name"`
	Shards            int     `json:"shards"`
	Channels          int     `json:"channels"`
	Connections       int     `json:"connections"`
	SamplesPerChannel int     `json:"samples_per_channel"`
	SnapshotSamples   int     `json:"snapshot_samples"`
	WorkersPerShard   int     `json:"workers_per_shard"`
	GOMAXPROCS        int     `json:"gomaxprocs"`
	WallSeconds       float64 `json:"wall_seconds"`
	SamplesPerSec     float64 `json:"samples_per_sec"`
	Surfaces          int64   `json:"surfaces"`
}

// DegradedMeasurement is the schema-6 degraded-mode scenario: the
// robustness layer exercised under a mid-run blackhole of one remote
// shard worker, recording what the service sustains across the fault
// and what the fault cost (failovers, retries, shed samples).
type DegradedMeasurement struct {
	Name              string  `json:"name"`
	Shards            int     `json:"shards"`
	Channels          int     `json:"channels"`
	SamplesPerChannel int     `json:"samples_per_channel"`
	SnapshotSamples   int     `json:"snapshot_samples"`
	HealthIntervalMs  float64 `json:"health_interval_ms"`
	WallSeconds       float64 `json:"wall_seconds"`
	SamplesPerSec     float64 `json:"samples_per_sec"`
	// SamplesAttempted is the full feed; SamplesAccepted what the shard
	// engines processed. The difference beyond SamplesShed is data the
	// blackholed worker's socket acknowledged but never processed —
	// carried per channel by the router's counter-carry, and the
	// honest cost of the worst failure mode.
	SamplesAttempted int64 `json:"samples_attempted"`
	SamplesAccepted  int64 `json:"samples_accepted"`
	SamplesShed      int64 `json:"samples_shed"`
	Retries          int64 `json:"retries"`
	DeadlineExceeded int64 `json:"deadline_exceeded"`
	Failovers        int64 `json:"failovers"`
	Surfaces         int64 `json:"surfaces"`
	OpenCircuits     int   `json:"open_circuits"`
}

// MappingMeasurement is one (strategy, tiles) row of the schema-4
// multi-tile mapping scenario: the modeled fabric schedule's predicted
// figures for one estimator window.
type MappingMeasurement struct {
	Strategy           string  `json:"strategy"`
	Tiles              int     `json:"tiles"`
	WindowSamples      int     `json:"window_samples"`
	LatencyMicros      float64 `json:"latency_us"`
	ModelSamplesPerSec float64 `json:"model_samples_per_sec"`
	SpeedupVsSingle    float64 `json:"speedup_vs_single"`
	NoCWords           int64   `json:"noc_words"`
	MemFeasible        bool    `json:"mem_feasible"`
}

// MappingScenario bundles the schema-4 mapping rows with the measured
// host streaming runs that accompany them (channels = tiles through the
// backpressured engine).
type MappingScenario struct {
	Estimator string                 `json:"estimator"`
	Rows      []MappingMeasurement   `json:"rows"`
	Host      []StreamingMeasurement `json:"host,omitempty"`
}

// Report is the BENCH_<n>.json schema.
type Report struct {
	Schema     int                     `json:"schema"`
	Timestamp  string                  `json:"timestamp"`
	GoVersion  string                  `json:"go_version"`
	GOOS       string                  `json:"goos"`
	GOARCH     string                  `json:"goarch"`
	GOMAXPROCS int                     `json:"gomaxprocs"`
	Geometry   Geometry                `json:"geometry"`
	Note       string                  `json:"note"`
	Results    []Measurement           `json:"results"`
	Detection  *DetectionScenario      `json:"detection,omitempty"`
	Pruned     []PrunedMeasurement     `json:"pruned,omitempty"`
	Q15Kernel  []Q15KernelMeasurement  `json:"q15_kernel,omitempty"`
	FixedPoint []FixedPointMeasurement `json:"fixed_point,omitempty"`
	Streaming  []StreamingMeasurement  `json:"streaming,omitempty"`
	Wire       []WireMeasurement       `json:"wire,omitempty"`
	Degraded   *DegradedMeasurement    `json:"degraded,omitempty"`
	Mapping    *MappingScenario        `json:"mapping,omitempty"`
	Baseline   *Report                 `json:"baseline,omitempty"`
	Speedup    map[string]float64      `json:"speedup_vs_baseline,omitempty"`
}

// DetectionScenario is the schema-8 detector ROC sweep: the full
// quant.RunROC report plus the Pfa-accuracy summary the gate reads —
// the worst |measured − target| Pfa error across asymptotic operating
// points and the list of points outside their confidence interval.
type DetectionScenario struct {
	quant.ROCReport
	WorstPfaErr float64  `json:"worst_pfa_err"`
	PfaFailures []string `json:"pfa_failures,omitempty"`
}

// Geometry records the benchmark's estimator configuration.
type Geometry struct {
	K       int    `json:"k"`
	M       int    `json:"m"`
	Blocks  int    `json:"blocks"`
	Samples int    `json:"samples"`
	Signal  string `json:"signal"`
	Seed    uint64 `json:"seed"`
}

func main() {
	var (
		out        = flag.String("out", "BENCH.json", "output JSON path")
		k          = flag.Int("k", 256, "FFT / channelizer size (power of two)")
		m          = flag.Int("m", 64, "surface half-extent")
		blocks     = flag.Int("blocks", 8, "integration blocks of K samples")
		seed       = flag.Uint64("seed", 42, "BPSK band seed")
		names      = flag.String("estimators", "direct,fam,ssca,fam-q15,ssca-q15", "comma-separated estimator subset")
		baseline   = flag.String("baseline", "", "previous BENCH json to embed for before/after speedups")
		failBelow  = flag.Float64("fail-below", 0, "with -baseline: exit non-zero if any batch speedup falls below this ratio (0 = never fail)")
		streamCh   = flag.Int("stream-channels", 4, "streaming scenario: concurrent channels (0 = skip)")
		streamN    = flag.Int("stream-samples", 1<<17, "streaming scenario: samples per channel")
		mapEst     = flag.String("map-estimator", "fam", "mapping scenario: pipeline to schedule")
		mapTiles   = flag.String("map-tiles", "1,2,4,8", "mapping scenario: comma-separated tile counts (empty = skip)")
		mapStrats  = flag.String("map-strategies", strings.Join(tiledcfd.MappingNames(), ","), "mapping scenario: comma-separated strategies")
		wireEst    = flag.String("wire-estimator", "fam", "wire scenario: streaming estimator to serve")
		wireSh     = flag.String("wire-shards", "1,2", "wire scenario: comma-separated shard counts")
		wireCh     = flag.Int("wire-channels", 8, "wire scenario: client connections/channels (0 = skip)")
		wireN      = flag.Int("wire-samples", 1<<16, "wire scenario: samples per channel")
		wireProcs  = flag.String("wire-procs", "1,0", "wire scenario: comma-separated GOMAXPROCS per run (0 = all cores)")
		degSh      = flag.Int("degraded-shards", 2, "degraded scenario: remote shard workers (one gets blackholed)")
		degCh      = flag.Int("degraded-channels", 8, "degraded scenario: concurrent channels (0 = skip)")
		degN       = flag.Int("degraded-samples", 1<<16, "degraded scenario: samples per channel")
		batchProcs = flag.String("batch-procs", "1,4,8",
			"batch scenario: extra GOMAXPROCS settings to sweep, one name@pN row each (empty = skip)")
		prunedAlpha = flag.String("pruned-alpha", "16,32,11,40",
			"pruned scenario: alpha-candidate bin offsets — features plus CFAR reference strips (empty = skip)")
		prunedEst = flag.String("pruned-estimators", "direct,fam,ssca",
			"pruned scenario: comma-separated estimator subset")
		prunedFailBelow = flag.Float64("pruned-fail-below", 0,
			"exit non-zero if the best pruned serving-window speedup falls below this ratio (0 = never fail)")
		prunedWindows = flag.String("pruned-windows", "1024,2048,8192",
			"pruned scenario: serving-window sizes in samples to sweep (one row each)")
		q15Rounds = flag.Int("q15-rounds", 11,
			"q15-kernel scenario: interleaved timing rounds per variant, odd for a clean median (0 = skip)")
		q15Procs = flag.String("q15-procs", "1,0",
			"q15-kernel scenario: comma-separated GOMAXPROCS per sweep row (0 = all cores)")
		q15FailBelow = flag.Float64("q15-fail-below", 0,
			"exit non-zero if fam-q15's float/fixed throughput ratio falls below this on every -q15-procs row (0.5 = fail when fam-q15 costs more than 2x float fam; 0 = never fail)")
		rocTrials = flag.Int("roc-trials", 200,
			"detection scenario: Monte-Carlo trials per hypothesis per curve (0 = skip)")
		rocConf = flag.Float64("roc-conf", 0.99,
			"detection scenario: binomial confidence of the Pfa-accuracy check")
		rocGate = flag.Bool("roc-gate", false,
			"exit non-zero when any asymptotic operating point's measured Pfa falls outside its confidence interval")
		rocOut = flag.String("roc-out", "",
			"also write the detection scenario's ROC report to this standalone JSON path")
	)
	flag.Parse()
	w := wireOpts{estimator: *wireEst, shardsCSV: *wireSh, channels: *wireCh,
		samples: *wireN, procsCSV: *wireProcs}
	d := degradedOpts{estimator: *wireEst, shards: *degSh, channels: *degCh, samples: *degN}
	p := prunedOpts{alphaCSV: *prunedAlpha, estimators: *prunedEst, failBelow: *prunedFailBelow,
		windowsCSV: *prunedWindows}
	r := rocOpts{trials: *rocTrials, confidence: *rocConf, gate: *rocGate, out: *rocOut}
	q := q15Opts{rounds: *q15Rounds, procsCSV: *q15Procs, failBelow: *q15FailBelow}
	if err := run(*out, *k, *m, *blocks, *seed, *names, *baseline, *failBelow, *batchProcs,
		*streamCh, *streamN, *mapEst, *mapTiles, *mapStrats, w, d, p, r, q); err != nil {
		fmt.Fprintln(os.Stderr, "cfdbench:", err)
		os.Exit(1)
	}
}

// prunedOpts bundles the schema-7 alpha-pruning scenario parameters.
type prunedOpts struct {
	alphaCSV   string
	estimators string
	failBelow  float64
	windowsCSV string
}

// q15KernelBlocks is the minimum workload of the Q15-kernel scenario
// in blocks of K samples: long enough that the Q15 pipelines' fixed
// per-snapshot setup stops dominating and the measured ratio tracks
// kernel throughput.
const q15KernelBlocks = 32

// q15Opts bundles the schema-9 Q15-kernel scenario parameters.
type q15Opts struct {
	rounds    int
	procsCSV  string
	failBelow float64
}

// rocOpts bundles the schema-8 detection scenario parameters.
type rocOpts struct {
	trials     int
	confidence float64
	gate       bool
	out        string
}

// wireOpts bundles the schema-5 wire-protocol scenario parameters.
type wireOpts struct {
	estimator string
	shardsCSV string
	channels  int
	samples   int
	procsCSV  string
}

// degradedOpts bundles the schema-6 degraded-mode scenario parameters.
type degradedOpts struct {
	estimator string
	shards    int
	channels  int
	samples   int
}

// fixedRefs pairs each Q15 backend with the float estimator the
// fixed-point scenario compares it against.
var fixedRefs = map[string]string{"fam-q15": "fam", "ssca-q15": "ssca"}

// estimatorSet builds the named batch estimators over one parameter
// set (Blocks applies to the direct DSCF only). peak is the benchmark
// band's largest component magnitude; fixing it as the Q15 estimators'
// InputPeak keeps their batch conditioning identical to the default
// measured-peak path on that band while enabling their streaming
// accumulators, which cannot measure a peak incrementally.
func estimatorSet(p scf.Params, blocks int, peak float64) map[string]scf.Estimator {
	direct := p
	direct.Blocks = blocks
	return map[string]scf.Estimator{
		"direct":   scf.Direct{Params: direct},
		"fam":      fam.FAM{Params: p},
		"ssca":     fam.SSCA{Params: p},
		"fam-q15":  fam.FAMQ15{Params: p, InputPeak: peak},
		"ssca-q15": fam.SSCAQ15{Params: p, InputPeak: peak},
	}
}

// bandPeak returns the largest real/imaginary component magnitude in
// band — the quantity the Q15 estimators condition against.
func bandPeak(band []complex128) float64 {
	var peak float64
	for _, s := range band {
		if v := math.Abs(real(s)); v > peak {
			peak = v
		}
		if v := math.Abs(imag(s)); v > peak {
			peak = v
		}
	}
	return peak
}

func run(out string, k, m, blocks int, seed uint64, names, baseline string, failBelow float64,
	batchProcs string, streamCh, streamN int, mapEst, mapTiles, mapStrats string,
	wopts wireOpts, dopts degradedOpts, popts prunedOpts, ropts rocOpts, qopts q15Opts) error {
	band, err := tiledcfd.NewBPSKBand(k*blocks, 0.125, 8, 10, seed)
	if err != nil {
		return err
	}
	p := scf.Params{K: k, M: m}
	all := estimatorSet(p, blocks, bandPeak(band))
	rep := Report{
		Schema:     9, // 2: streaming; 3: fixed-point; 4: mapping; 5: wire; 6: degraded; 7: alpha pruning + GOMAXPROCS sweep; 8: detector ROC; 9: Q15 kernel datapath
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Geometry: Geometry{
			K: k, M: m, Blocks: blocks, Samples: k * blocks,
			Signal: "bpsk carrier=0.125 symlen=8 snr=10dB", Seed: seed,
		},
		Note: "mult counts are the paper's canonical operation model " +
			"(FAM charged a full P-point second FFT per cell); ns/op is measured wall-clock",
	}
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		e, ok := all[name]
		if !ok {
			known := make([]string, 0, len(all))
			for n := range all {
				known = append(known, n)
			}
			sort.Strings(known)
			return fmt.Errorf("unknown estimator %q (want %s)", name, strings.Join(known, ", "))
		}
		row, err := benchBatch(name, e, band)
		if err != nil {
			return err
		}
		rep.Results = append(rep.Results, *row)
		fmt.Printf("%-12s %12.0f ns/op %10d B/op %6d allocs/op %10d total_mults\n",
			name, row.NsPerOp, row.BytesPerOp, row.AllocsPerOp, row.TotalMults)
	}
	// GOMAXPROCS sweep: the same batch measurements with the scheduler
	// pinned, so the parallel estimator paths' core scaling enters the
	// trajectory. The plain rows above keep the process default and the
	// baseline-comparable names.
	if batchProcs != "" {
		procsList, err := parseCounts(batchProcs, "-batch-procs")
		if err != nil {
			return err
		}
		for _, procs := range procsList {
			if procs < 1 {
				return fmt.Errorf("-batch-procs entry %d must be >= 1", procs)
			}
			for _, name := range strings.Split(names, ",") {
				name = strings.TrimSpace(name)
				if name == "" {
					continue
				}
				prev := runtime.GOMAXPROCS(procs)
				row, err := benchBatch(fmt.Sprintf("%s@p%d", name, procs), all[name], band)
				runtime.GOMAXPROCS(prev)
				if err != nil {
					return err
				}
				rep.Results = append(rep.Results, *row)
				fmt.Printf("%-12s %12.0f ns/op %10d B/op %6d allocs/op %10d total_mults\n",
					row.Name, row.NsPerOp, row.BytesPerOp, row.AllocsPerOp, row.TotalMults)
			}
		}
	}
	var prunedGateErr error
	if popts.alphaCSV != "" {
		rows, err := benchPruned(popts, p, blocks, band, seed)
		if err != nil {
			return fmt.Errorf("pruned scenario: %w", err)
		}
		rep.Pruned = rows
		if popts.failBelow > 0 {
			// The gate holds the headline number: the best serving-window
			// speedup across the measured estimators (directed sensing
			// deploys the estimator that benefits — the serving default,
			// direct — while SSCA's per-sample channelizer is inherently
			// unprunable and would pin an every-row gate near 1x).
			best, bestName := 0.0, ""
			for _, r := range rows {
				if r.ServeSpeedup > best {
					best, bestName = r.ServeSpeedup, r.Name
				}
			}
			if best < popts.failBelow {
				prunedGateErr = fmt.Errorf(
					"pruned-scenario regression: best serving-window speedup %.2fx (%s) below %.2fx",
					best, bestName, popts.failBelow)
			}
		}
	}
	var q15GateErr error
	if qopts.rounds > 0 {
		rows, err := benchQ15Kernel(qopts, all, band, k, seed)
		if err != nil {
			return fmt.Errorf("q15-kernel scenario: %w", err)
		}
		rep.Q15Kernel = rows
		if qopts.failBelow > 0 {
			// The gate holds the headline acceptance number on every
			// GOMAXPROCS row: fam-q15 must stay within 1/failBelow of the
			// float fam it shadows (0.5 = within 2x).
			for _, r := range rows {
				if r.Name != "fam-q15" || r.SWARNsPerOp <= 0 {
					continue
				}
				if ratio := r.FloatNsPerOp / r.SWARNsPerOp; ratio < qopts.failBelow {
					q15GateErr = errors.Join(q15GateErr, fmt.Errorf(
						"q15-kernel regression: fam-q15@p%d float/fixed ratio %.2f below %.2f (fam-q15 costs %.2fx float fam)",
						r.GOMAXPROCS, ratio, qopts.failBelow, r.FixedOverFloat))
				}
			}
		}
	}
	// Fixed-point scenario: every requested Q15 backend against its float
	// reference on the same band.
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		refName, ok := fixedRefs[name]
		if !ok {
			continue
		}
		fe := all[name].(quant.FixedEstimator)
		cmp, err := quant.Compare(band, fe, all[refName])
		if err != nil {
			return fmt.Errorf("fixed-point %s: %w", name, err)
		}
		rep.FixedPoint = append(rep.FixedPoint, FixedPointMeasurement{
			Name:           name,
			Reference:      refName,
			SQNRdB:         cmp.SQNRdB,
			PeakBias:       cmp.PeakBias,
			SaturatedCells: cmp.SaturatedCells,
			Exp:            cmp.Exp,
			ModelCycles:    cmp.Cycles,
		})
		fmt.Printf("%-8s fixed-point vs %-6s %7.1f dB SQNR %+7.3f%% peak bias %8d cycles\n",
			name, refName, cmp.SQNRdB, 100*cmp.PeakBias, cmp.Cycles)
	}
	if streamCh > 0 {
		for _, name := range strings.Split(names, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			sest, ok := all[name].(scf.StreamingEstimator)
			if !ok {
				continue
			}
			sm, err := benchStreaming(name, sest, streamCh, streamN, band)
			if err != nil {
				return fmt.Errorf("streaming %s: %w", name, err)
			}
			rep.Streaming = append(rep.Streaming, *sm)
			fmt.Printf("%-8s streaming %d ch: %8.2fM samples/s %8.1f surfaces/s\n",
				name, sm.Channels, sm.SamplesPerSec/1e6, sm.SurfacesPerSec)
		}
	}
	if wopts.channels > 0 {
		rows, err := benchWire(wopts, all, band)
		if err != nil {
			return fmt.Errorf("wire scenario: %w", err)
		}
		rep.Wire = rows
	}
	if dopts.channels > 0 {
		row, err := benchDegraded(dopts, all, band)
		if err != nil {
			return fmt.Errorf("degraded scenario: %w", err)
		}
		rep.Degraded = row
		fmt.Printf("%-8s degraded %d shards (1 blackholed) %d ch: %8.2fM samples/s %d failovers %d retries %d shed\n",
			row.Name, row.Shards, row.Channels, row.SamplesPerSec/1e6,
			row.Failovers, row.Retries, row.SamplesShed)
	}
	if mapTiles != "" {
		sc, err := benchMapping(mapEst, k, m, blocks, mapTiles, mapStrats, all, band)
		if err != nil {
			return fmt.Errorf("mapping scenario: %w", err)
		}
		rep.Mapping = sc
	}
	var rocGateErr error
	if ropts.trials > 0 {
		roc, err := quant.RunROC(quant.ROCConfig{
			Trials: ropts.trials, Confidence: ropts.confidence, Seed: seed,
		})
		if err != nil {
			return fmt.Errorf("detection scenario: %w", err)
		}
		worst, failures := roc.PfaAccuracy()
		rep.Detection = &DetectionScenario{
			ROCReport: *roc, WorstPfaErr: worst, PfaFailures: failures,
		}
		fmt.Printf("detection ROC: %d curves, worst Pfa error %.4f, %d point(s) outside %.0f%% CI\n",
			len(roc.Curves), worst, len(failures), 100*roc.Confidence)
		if ropts.out != "" {
			buf, err := json.MarshalIndent(roc, "", "  ")
			if err != nil {
				return err
			}
			buf = append(buf, '\n')
			if err := os.WriteFile(ropts.out, buf, 0o644); err != nil {
				return err
			}
			fmt.Println("wrote", ropts.out)
		}
		if ropts.gate && len(failures) > 0 {
			// Deferred like the other gates so the artifact that trips
			// the check is the one written for inspection.
			rocGateErr = fmt.Errorf("detector Pfa-accuracy gate: %d operating point(s) outside the %.0f%% CI: %s",
				len(failures), 100*roc.Confidence, strings.Join(failures, "; "))
		}
	}
	var gateErr error
	if baseline != "" {
		raw, err := os.ReadFile(baseline)
		if err != nil {
			return err
		}
		var base Report
		if err := json.Unmarshal(raw, &base); err != nil {
			return fmt.Errorf("parse baseline %s: %w", baseline, err)
		}
		base.Baseline = nil // keep the artifact one level deep
		rep.Baseline = &base
		rep.Speedup = map[string]float64{}
		for _, b := range base.Results {
			for _, c := range rep.Results {
				if b.Name == c.Name && c.NsPerOp > 0 {
					rep.Speedup[b.Name] = b.NsPerOp / c.NsPerOp
				}
			}
		}
		for name, s := range rep.Speedup {
			fmt.Printf("%-8s %.2fx vs baseline\n", name, s)
		}
		if failBelow > 0 {
			var slow []string
			for name, s := range rep.Speedup {
				if s < failBelow {
					slow = append(slow, fmt.Sprintf("%s %.2fx", name, s))
				}
			}
			if len(slow) > 0 {
				sort.Strings(slow)
				// Deferred until after the report is written: the run
				// that trips the gate is exactly the one whose artifact
				// must survive for inspection.
				gateErr = fmt.Errorf("batch-estimator regression: speedup below %.2fx for %s",
					failBelow, strings.Join(slow, ", "))
			}
		}
	} else if failBelow > 0 {
		return fmt.Errorf("-fail-below needs -baseline")
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", out)
	return errors.Join(gateErr, prunedGateErr, q15GateErr, rocGateErr)
}

// benchQ15Kernel runs the schema-9 Q15-kernel scenario. For each
// -q15-procs setting and each fixed-point estimator, three variants of
// the same full-band estimate — Q15 under the scalar kernels, Q15 under
// the SWAR kernels, and the float reference — are first checked (the
// two kernel implementations must produce the identical QSurface) and
// then timed INTERLEAVED: each round times all variants back to back,
// and the row keeps per-variant medians. Interleaving plus medians is
// deliberate: on a shared runner, absolute ns/op between separate
// benchmark invocations wanders by tens of percent, but the ratio of
// medians over interleaved rounds holds steady — and ratios are what
// the scenario exists to track. The band is the scenario's own: when
// the top-level band is shorter than q15KernelBlocks blocks of K, a
// longer one is synthesised from the same seed so the per-snapshot
// fixed-point setup cost amortises the way a steady-state deployment
// would see it.
func benchQ15Kernel(qopts q15Opts, all map[string]scf.Estimator, band []complex128, k int, seed uint64) ([]Q15KernelMeasurement, error) {
	procsList, err := parseCounts(qopts.procsCSV, "-q15-procs")
	if err != nil {
		return nil, err
	}
	if len(band) < q15KernelBlocks*k {
		band, err = tiledcfd.NewBPSKBand(q15KernelBlocks*k, 0.125, 8, 10, seed)
		if err != nil {
			return nil, err
		}
	}
	// Earlier scenarios leave the GC pacer tuned for their own heap
	// shapes, which penalises the allocation-heavier Q15 variants far
	// more than the float reference and skews the very ratio this
	// scenario gates on. Settle the heap before timing anything.
	runtime.GC()
	debug.FreeOSMemory()
	names := make([]string, 0, len(fixedRefs))
	for name := range fixedRefs {
		names = append(names, name)
	}
	sort.Strings(names)
	var rows []Q15KernelMeasurement
	for _, procs := range procsList {
		if procs <= 0 {
			procs = runtime.NumCPU()
		}
		prev := runtime.GOMAXPROCS(procs)
		for _, name := range names {
			fe := all[name].(quant.FixedEstimator)
			ref := all[fixedRefs[name]]
			row, err := benchQ15KernelOnce(name, fixedRefs[name], fe, ref, qopts.rounds, band)
			if err != nil {
				runtime.GOMAXPROCS(prev)
				return nil, err
			}
			rows = append(rows, *row)
			fmt.Printf("%-8s q15-kernel p=%d: swar %9.0f ns scalar %9.0f ns (%.2fx) · float %9.0f ns (fixed %.2fx float)\n",
				name, row.GOMAXPROCS, row.SWARNsPerOp, row.ScalarNsPerOp, row.KernelSpeedup,
				row.FloatNsPerOp, row.FixedOverFloat)
		}
		runtime.GOMAXPROCS(prev)
	}
	return rows, nil
}

// benchQ15KernelOnce measures one estimator at the current GOMAXPROCS:
// bit-exactness first, then the interleaved timing rounds.
func benchQ15KernelOnce(name, refName string, fe quant.FixedEstimator, ref scf.Estimator,
	rounds int, band []complex128) (*Q15KernelMeasurement, error) {
	restore := fixed.Use(fixed.ScalarKernels{})
	defer fixed.Use(restore)
	qScalar, _, err := fe.EstimateQ15(band)
	if err != nil {
		return nil, fmt.Errorf("%s scalar: %w", name, err)
	}
	fixed.Use(fixed.SWARKernels{})
	qSWAR, _, err := fe.EstimateQ15(band)
	if err != nil {
		return nil, fmt.Errorf("%s swar: %w", name, err)
	}
	if ok, diff := qScalar.Equal(qSWAR); !ok {
		return nil, fmt.Errorf("%s: scalar and SWAR kernels disagree: %s", name, diff)
	}
	timeOne := func(kern fixed.Kernels, e scf.Estimator) (float64, error) {
		if kern != nil {
			fixed.Use(kern)
		}
		startAt := time.Now()
		_, _, err := e.Estimate(band)
		return float64(time.Since(startAt).Nanoseconds()), err
	}
	scalarNs := make([]float64, 0, rounds)
	swarNs := make([]float64, 0, rounds)
	floatNs := make([]float64, 0, rounds)
	for r := 0; r < rounds; r++ {
		ns, err := timeOne(fixed.ScalarKernels{}, fe)
		if err != nil {
			return nil, fmt.Errorf("%s scalar: %w", name, err)
		}
		scalarNs = append(scalarNs, ns)
		if ns, err = timeOne(fixed.SWARKernels{}, fe); err != nil {
			return nil, fmt.Errorf("%s swar: %w", name, err)
		}
		swarNs = append(swarNs, ns)
		if ns, err = timeOne(nil, ref); err != nil {
			return nil, fmt.Errorf("%s float ref %s: %w", name, refName, err)
		}
		floatNs = append(floatNs, ns)
	}
	row := &Q15KernelMeasurement{
		Name:          name,
		Reference:     refName,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Rounds:        rounds,
		Samples:       len(band),
		BitExact:      true,
		ScalarNsPerOp: median(scalarNs),
		SWARNsPerOp:   median(swarNs),
		FloatNsPerOp:  median(floatNs),
	}
	if row.SWARNsPerOp > 0 {
		row.KernelSpeedup = row.ScalarNsPerOp / row.SWARNsPerOp
		row.FixedOverFloat = row.SWARNsPerOp / row.FloatNsPerOp
	}
	return row, nil
}

// median returns the middle value of v (mean of the middle two for even
// lengths); v is sorted in place.
func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	sort.Float64s(v)
	if len(v)%2 == 1 {
		return v[len(v)/2]
	}
	return (v[len(v)/2-1] + v[len(v)/2]) / 2
}

// benchBatch times one estimator's full Estimate on the band and
// returns its batch row at the current GOMAXPROCS.
func benchBatch(rowName string, e scf.Estimator, band []complex128) (*Measurement, error) {
	var stats *scf.Stats
	var estErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, st, err := e.Estimate(band)
			if err != nil {
				estErr = err
				b.FailNow()
			}
			stats = st
		}
	})
	if estErr != nil {
		return nil, fmt.Errorf("%s: %w", rowName, estErr)
	}
	return &Measurement{
		Name:           rowName,
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		NsPerOp:        float64(r.NsPerOp()),
		BytesPerOp:     r.AllocedBytesPerOp(),
		AllocsPerOp:    r.AllocsPerOp(),
		Iterations:     r.N,
		FFTMults:       stats.FFTMults,
		PointwiseMults: stats.DSCFMults,
		TotalMults:     stats.TotalMults(),
		SmoothingLen:   stats.Blocks,
		ModelCycles:    stats.Cycles,
	}, nil
}

// benchPruned runs the schema-7 alpha-pruning scenario: each estimator
// does the same job twice — full plane, and pruned to the candidate set
// — timing the batch op (Estimate + CFAR + feature extraction) and,
// for streaming estimators, the serving-window op (Push + Snapshot +
// CFAR + feature extraction + Reset: the exact per-decision cycle of
// stream.Engine). The pruned strips are checked against the full plane
// cell by cell; bit-identity means MaxAbsDiff exactly 0.
func benchPruned(popts prunedOpts, p scf.Params, blocks int, band []complex128, seed uint64) ([]PrunedMeasurement, error) {
	candidates, err := parseCounts(popts.alphaCSV, "-pruned-alpha")
	if err != nil {
		return nil, err
	}
	windows, err := parseCounts(popts.windowsCSV, "-pruned-windows")
	if err != nil {
		return nil, err
	}
	if windows == nil {
		windows = []int{len(band)}
	}
	// The serve sweep may ask for windows longer than the batch band;
	// extend the same signal to the largest requested window.
	serveBand := band
	for _, w := range windows {
		if w > len(serveBand) {
			if serveBand, err = tiledcfd.NewBPSKBand(w, 0.125, 8, 10, seed); err != nil {
				return nil, err
			}
		}
	}
	pruned := p
	pruned.AlphaCandidates = candidates
	peak := bandPeak(band)
	full := estimatorSet(p, blocks, peak)
	prunedSet := estimatorSet(pruned, blocks, peak)
	cfar := detect.CFAR{}
	var rows []PrunedMeasurement
	for _, name := range strings.Split(popts.estimators, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		fe, ok := full[name]
		if !ok {
			return nil, fmt.Errorf("unknown estimator %q", name)
		}
		pe := prunedSet[name]
		// Bit-identity first: the speedup only counts if the pruned
		// strips are exactly the full-plane values.
		fs, _, err := fe.Estimate(band)
		if err != nil {
			return nil, fmt.Errorf("%s full: %w", name, err)
		}
		ps, _, err := pe.Estimate(band)
		if err != nil {
			return nil, fmt.Errorf("%s pruned: %w", name, err)
		}
		diff := stripMaxAbsDiff(fs, ps)
		fullNs, err := benchDecide(fe, cfar, band)
		if err != nil {
			return nil, fmt.Errorf("%s full: %w", name, err)
		}
		prunedNs, err := benchDecide(pe, cfar, band)
		if err != nil {
			return nil, fmt.Errorf("%s pruned: %w", name, err)
		}
		sf, fok := fe.(scf.StreamingEstimator)
		sp, pok := pe.(scf.StreamingEstimator)
		for _, w := range windows {
			var serveFullNs, servePrunedNs float64
			if fok && pok {
				if serveFullNs, err = benchServeWindow(sf, cfar, serveBand[:w]); err != nil {
					return nil, fmt.Errorf("%s full serve w=%d: %w", name, w, err)
				}
				if servePrunedNs, err = benchServeWindow(sp, cfar, serveBand[:w]); err != nil {
					return nil, fmt.Errorf("%s pruned serve w=%d: %w", name, w, err)
				}
			}
			row := PrunedMeasurement{
				Name:               name,
				Candidates:         candidates,
				RowsComputed:       len(ps.Data),
				RowsFull:           len(fs.Data),
				FullNsPerOp:        fullNs,
				PrunedNsPerOp:      prunedNs,
				WindowSamples:      w,
				MaxAbsDiff:         diff,
				PrunedCellsSkipped: pruned.PrunedCellsSkipped(),
				GOMAXPROCS:         runtime.GOMAXPROCS(0),
			}
			if prunedNs > 0 {
				row.Speedup = fullNs / prunedNs
			}
			row.ServeFullNsPerOp, row.ServePrunedNsPerOp = serveFullNs, servePrunedNs
			if servePrunedNs > 0 {
				row.ServeSpeedup = serveFullNs / servePrunedNs
			}
			rows = append(rows, row)
			fmt.Printf("%-8s pruned %d candidates w=%-5d: batch %10.0f -> %9.0f ns/op %5.1fx · serve %10.0f -> %9.0f ns/op %5.1fx (max |diff| %g)\n",
				name, len(candidates), w, fullNs, prunedNs, row.Speedup,
				serveFullNs, servePrunedNs, row.ServeSpeedup, diff)
		}
	}
	return rows, nil
}

// benchDecide times one batch decision on the band: Estimate, the CFAR
// verdict, and the feature-peak extraction the serving layer reports
// with every decision (stream.Engine.decide does the same pair of passes
// over the surface).
func benchDecide(e scf.Estimator, cfar detect.CFAR, band []complex128) (float64, error) {
	var opErr error
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, _, err := e.Estimate(band)
			if err == nil {
				_, err = cfar.Examine(s)
				featurePeak(s)
			}
			if err != nil {
				opErr = err
				b.FailNow()
			}
		}
	})
	if opErr != nil {
		return 0, opErr
	}
	return float64(r.NsPerOp()), nil
}

// featurePeak replicates the squared-magnitude feature scan of
// stream.Engine.decide (its maxFeatureMinA with the CFAR default
// MinAbsA), so the timed op spends exactly what the serving layer
// spends per decision. On a pruned surface only the held rows are
// searched.
func featurePeak(s *scf.Surface) (f, a int) {
	const minAbsA = 2 // detect.CFAR default
	best := -1.0
	m := s.M - 1
	alphas := s.AlphaValues()
	for i, row := range s.Data {
		av := alphas[i]
		if av > -minAbsA && av < minAbsA {
			continue
		}
		for fi, v := range row {
			if mag := real(v)*real(v) + imag(v)*imag(v); mag > best {
				best, f, a = mag, fi-m, av
			}
		}
	}
	return f, a
}

// benchServeWindow times one serving window exactly as stream.Engine
// spends it per decision: push the window's samples through the
// estimator's accumulator, snapshot the surface, run the CFAR verdict
// and the feature-peak extraction, and reset for the next window (the
// non-cumulative serving mode). On a pruned channel every stage scales
// with the candidate count — estimation touches only the held rows and
// the snapshot/decision cost follows the sparse surface — which is the
// end-to-end latency directed sensing buys in production.
func benchServeWindow(e scf.StreamingEstimator, cfar detect.CFAR, band []complex128) (float64, error) {
	acc, err := e.NewAccumulator()
	if err != nil {
		return 0, err
	}
	// Pre-flight outside the timer: a window too short for this
	// estimator's first snapshot is reported as zero, not an error (the
	// sweep may include windows below an estimator's smoothing needs).
	if err := acc.Push(band); err != nil {
		return 0, err
	}
	if !acc.Ready() {
		return 0, nil
	}
	acc.Reset()
	var opErr error
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			acc.Reset()
			if err := acc.Push(band); err != nil {
				opErr = err
				b.FailNow()
			}
			s, _, err := acc.Snapshot()
			if err == nil {
				_, err = cfar.Examine(s)
				featurePeak(s)
			}
			if err != nil {
				opErr = err
				b.FailNow()
			}
		}
	})
	if opErr != nil {
		return 0, opErr
	}
	return float64(r.NsPerOp()), nil
}

// stripMaxAbsDiff returns the largest cellwise magnitude difference
// between a full surface and a pruned one over the rows the pruned
// surface holds.
func stripMaxAbsDiff(full, pruned *scf.Surface) float64 {
	worst := 0.0
	alphas := pruned.AlphaValues()
	for i, row := range pruned.Data {
		fullRow := full.Row(alphas[i])
		for j := range row {
			if d := cmplx.Abs(row[j] - fullRow[j]); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// benchMapping runs the schema-4 multi-tile mapping scenario: the
// estimator's pipeline scheduled onto the paper-default fabric at every
// requested strategy × tile count, each schedule validated by
// construction, with the single-tile schedule as the speedup baseline —
// and, per tile count, a measured host streaming run with that many
// concurrent channels (the engine in backpressure mode), so the modeled
// fabric prediction and the host's sustained rate sit side by side.
func benchMapping(estimator string, k, m, blocks int, tilesCSV, strategiesCSV string,
	all map[string]scf.Estimator, band []complex128) (*MappingScenario, error) {
	cfg := tiledcfd.Config{K: k, M: m, Blocks: blocks, Estimator: estimator}
	var tileCounts []int
	for _, s := range strings.Split(tilesCSV, ",") {
		if s = strings.TrimSpace(s); s == "" {
			continue
		}
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("-map-tiles entry %q is not a positive integer", s)
		}
		tileCounts = append(tileCounts, v)
	}
	if len(tileCounts) == 0 {
		return nil, fmt.Errorf("-map-tiles %q names no tile counts", tilesCSV)
	}
	base, err := tiledcfd.MapEstimate(cfg, tiledcfd.FabricConfig{Tiles: 1}, "single")
	if err != nil {
		return nil, err
	}
	sc := &MappingScenario{Estimator: base.Estimator}
	for _, strategy := range strings.Split(strategiesCSV, ",") {
		if strategy = strings.TrimSpace(strategy); strategy == "" {
			continue
		}
		for i, tc := range tileCounts {
			if strategy == "single" && i > 0 {
				// The single-tile mapping is tile-count-invariant; one
				// row says everything.
				continue
			}
			e, err := tiledcfd.MapEstimate(cfg, tiledcfd.FabricConfig{Tiles: tc}, strategy)
			if err != nil {
				return nil, err
			}
			sc.Rows = append(sc.Rows, MappingMeasurement{
				Strategy:           strategy,
				Tiles:              tc,
				WindowSamples:      e.WindowSamples,
				LatencyMicros:      e.LatencyMicros,
				ModelSamplesPerSec: e.SustainedSamplesPerSec,
				SpeedupVsSingle:    e.SustainedSamplesPerSec / base.SustainedSamplesPerSec,
				NoCWords:           e.NoCWords,
				MemFeasible:        e.MemFeasible,
			})
			fmt.Printf("%-8s mapping %-9s %d tiles: %8.3fM model samples/s %6.2fx vs single %8d NoC words\n",
				sc.Estimator, strategy, tc, e.SustainedSamplesPerSec/1e6,
				e.SustainedSamplesPerSec/base.SustainedSamplesPerSec, e.NoCWords)
		}
	}
	// Host counterpart: the streaming engine fed tiles concurrent
	// channels, reusing the PR 3 scenario at the mapping's channel
	// counts (estimators without an incremental form skip this half).
	if sest, ok := all[sc.Estimator].(scf.StreamingEstimator); ok {
		const perChannel = 1 << 16
		for _, tc := range tileCounts {
			sm, err := benchStreaming(sc.Estimator, sest, tc, perChannel, band)
			if err != nil {
				return nil, err
			}
			sc.Host = append(sc.Host, *sm)
			fmt.Printf("%-8s mapping host      %d ch:    %8.2fM samples/s measured\n",
				sc.Estimator, tc, sm.SamplesPerSec/1e6)
		}
	}
	return sc, nil
}

// parseCounts parses a comma-separated list of non-negative integers.
func parseCounts(csv, flagName string) ([]int, error) {
	var out []int
	for _, s := range strings.Split(csv, ",") {
		if s = strings.TrimSpace(s); s == "" {
			continue
		}
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("%s entry %q is not a non-negative integer", flagName, s)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s %q names no counts", flagName, csv)
	}
	return out, nil
}

// routerSink adapts the shard router to the wire server's Sink.
type routerSink struct{ r *shard.Router }

// OpenChannel registers the stream's channel on its shard.
func (s routerSink) OpenChannel(meta wire.Meta) error { return s.r.AddChannel(meta.ID) }

// Push routes decoded samples to the owning shard.
func (s routerSink) Push(id string, samples []complex128) (int, error) {
	return s.r.Push(id, samples)
}

// benchWire runs the schema-5 wire-protocol ingestion scenario: one row
// per -wire-procs × -wire-shards combination.
func benchWire(wopts wireOpts, all map[string]scf.Estimator, band []complex128) ([]WireMeasurement, error) {
	est, ok := all[wopts.estimator]
	if !ok {
		return nil, fmt.Errorf("unknown -wire-estimator %q", wopts.estimator)
	}
	sest, ok := est.(scf.StreamingEstimator)
	if !ok {
		return nil, fmt.Errorf("-wire-estimator %q has no incremental form", wopts.estimator)
	}
	shardCounts, err := parseCounts(wopts.shardsCSV, "-wire-shards")
	if err != nil {
		return nil, err
	}
	procsList, err := parseCounts(wopts.procsCSV, "-wire-procs")
	if err != nil {
		return nil, err
	}
	var rows []WireMeasurement
	for _, procs := range procsList {
		for _, shards := range shardCounts {
			if shards < 1 {
				return nil, fmt.Errorf("-wire-shards entry %d must be >= 1", shards)
			}
			row, err := benchWireOnce(wopts, sest, shards, procs, band)
			if err != nil {
				return nil, err
			}
			rows = append(rows, *row)
			fmt.Printf("%-8s wire %d shards %d conns p=%d: %8.2fM samples/s aggregate\n",
				wopts.estimator, shards, wopts.channels, row.GOMAXPROCS, row.SamplesPerSec/1e6)
		}
	}
	return rows, nil
}

// benchWireOnce saturates one sharded wire server over loopback: every
// channel gets its own connection (so server read loops parallelise)
// and Block-mode engines make TCP backpressure the only pacing — the
// clients run at exactly the service rate, and the wall clock over the
// fully drained run is the saturation throughput.
func benchWireOnce(wopts wireOpts, est scf.StreamingEstimator, shards, procs int, band []complex128) (*WireMeasurement, error) {
	if procs <= 0 {
		procs = runtime.NumCPU()
	}
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	const window = 8192
	r, err := shard.New(shard.Config{
		Shards: shards,
		Engine: stream.Config{
			Estimator:       est,
			SnapshotSamples: window,
			Workers:         procs,
			Block:           true,
		},
	})
	if err != nil {
		return nil, err
	}
	defer r.Close()
	// Keep the merged decision stream drained so nothing is dropped at
	// the buffer; Close ends the channel and the goroutine.
	go func() {
		for range r.Decisions() {
		}
	}()
	srv, err := wire.NewServer(wire.ServerConfig{Sink: routerSink{r}})
	if err != nil {
		return nil, err
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, wopts.channels)
	for i := 0; i < wopts.channels; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = streamWireChannel(addr.String(), fmt.Sprintf("wirech%d", i), wopts.samples, band)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// The clients have written everything, but some of it may still sit
	// in loopback socket buffers: wait until the server has delivered
	// the full feed to the router before draining the engines.
	want := int64(wopts.channels) * int64(wopts.samples)
	deadline := time.Now().Add(5 * time.Minute)
	for srv.Metrics.SamplesIn.Load() < want {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("server ingested %d of %d samples within 5m",
				srv.Metrics.SamplesIn.Load(), want)
		}
		time.Sleep(time.Millisecond)
	}
	if err := r.Flush(5 * time.Minute); err != nil {
		return nil, err
	}
	wall := time.Since(start).Seconds()
	st := r.Stats()
	if st.SamplesIn != want {
		return nil, fmt.Errorf("router ingested %d of %d samples", st.SamplesIn, want)
	}
	if st.SamplesDropped != 0 {
		return nil, fmt.Errorf("dropped %d samples in backpressure mode", st.SamplesDropped)
	}
	row := &WireMeasurement{
		Name:              wopts.estimator,
		Shards:            shards,
		Channels:          wopts.channels,
		Connections:       wopts.channels,
		SamplesPerChannel: wopts.samples,
		SnapshotSamples:   window,
		WorkersPerShard:   procs,
		GOMAXPROCS:        procs,
		WallSeconds:       wall,
		Surfaces:          st.Surfaces,
	}
	if wall > 0 {
		row.SamplesPerSec = float64(st.SamplesIn) / wall
	}
	return row, nil
}

// streamWireChannel is one client connection streaming total samples
// (the band tiled as needed) into its own channel.
func streamWireChannel(addr, id string, total int, band []complex128) error {
	c, err := wire.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	cs, err := c.Open(wire.Meta{ID: id, Format: wire.FormatCF32, SampleRateHz: 1e6})
	if err != nil {
		return err
	}
	for fed := 0; fed < total; {
		n := len(band)
		if fed+n > total {
			n = total - fed
		}
		if err := cs.Send(band[:n]); err != nil {
			return err
		}
		fed += n
	}
	return cs.Close()
}

// benchStreaming measures the sustained multi-channel streaming
// throughput of one estimator: channels concurrent feeders push total
// samples each (the test band tiled as needed) through a backpressured
// engine with the default window, and the wall clock over the fully
// drained run yields samples/sec and surfaces/sec.
func benchStreaming(name string, est scf.StreamingEstimator, channels, total int, band []complex128) (*StreamingMeasurement, error) {
	const window = 8192
	eng, err := stream.New(stream.Config{
		Estimator:       est,
		SnapshotSamples: window,
		Block:           true,
	})
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	ids := make([]string, channels)
	for i := range ids {
		ids[i] = fmt.Sprintf("ch%d", i)
		if err := eng.AddChannel(ids[i]); err != nil {
			return nil, err
		}
	}
	startAt := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, channels)
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			for fed := 0; fed < total; {
				n := len(band)
				if fed+n > total {
					n = total - fed
				}
				if _, err := eng.Push(id, band[:n]); err != nil {
					errs[i] = err
					return
				}
				fed += n
			}
		}(i, id)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := eng.Flush(5 * time.Minute); err != nil {
		return nil, err
	}
	wall := time.Since(startAt).Seconds()
	st := eng.Stats()
	if st.SamplesDropped != 0 {
		return nil, fmt.Errorf("dropped %d samples in backpressure mode", st.SamplesDropped)
	}
	sm := &StreamingMeasurement{
		Name:              name,
		Channels:          channels,
		SamplesPerChannel: total,
		SnapshotSamples:   window,
		Workers:           runtime.GOMAXPROCS(0), // engine default: one per schedulable core
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		WallSeconds:       wall,
		Surfaces:          st.Surfaces,
	}
	if wall > 0 {
		sm.SamplesPerSec = float64(st.SamplesIn) / wall
		sm.SurfacesPerSec = float64(st.Surfaces) / wall
	}
	return sm, nil
}

// workerSink adapts a stream engine to a worker-mode wire server's data
// plane (the degraded scenario's in-process shard workers).
type workerSink struct{ eng *stream.Engine }

// OpenChannel registers the stream's channel on the worker engine.
func (s workerSink) OpenChannel(meta wire.Meta) error { return s.eng.AddChannel(meta.ID) }

// Push feeds decoded samples to the worker engine.
func (s workerSink) Push(id string, samples []complex128) (int, error) {
	return s.eng.Push(id, samples)
}

// benchDegraded runs the schema-6 degraded-mode scenario: a router
// drives dopts.shards in-process remote shard workers over loopback,
// every remote wrapped in the robustness layer, and once half the feed
// is in, worker 0 is blackholed — its connections stay open but stop
// moving bytes, so only the per-push deadline can unstick the router.
// The feeders keep pushing through the fault; the circuit opens, the
// dead worker's channels re-home onto the survivors, and the run's
// aggregate rate plus the fault's cost (failovers, retries, shed
// samples) become the artifact row.
func benchDegraded(dopts degradedOpts, all map[string]scf.Estimator, band []complex128) (*DegradedMeasurement, error) {
	est, ok := all[dopts.estimator]
	if !ok {
		return nil, fmt.Errorf("unknown estimator %q", dopts.estimator)
	}
	sest, ok := est.(scf.StreamingEstimator)
	if !ok {
		return nil, fmt.Errorf("estimator %q has no incremental form", dopts.estimator)
	}
	if dopts.shards < 2 {
		return nil, fmt.Errorf("-degraded-shards %d: need at least 2 so failover has a survivor", dopts.shards)
	}
	const window = 8192
	engCfg := stream.Config{Estimator: sest, SnapshotSamples: window, Block: true}

	// In-process shard workers; worker 0's listener goes through the
	// fault controller so it can be blackholed mid-run.
	ctl := chaos.NewController(42)
	remotes := make([]shard.RemoteShard, dopts.shards)
	for i := 0; i < dopts.shards; i++ {
		eng, err := stream.New(engCfg)
		if err != nil {
			return nil, err
		}
		defer eng.Close()
		srv, err := wire.NewServer(wire.ServerConfig{
			Sink: workerSink{eng}, Engine: eng, RemoveOnClose: true,
		})
		if err != nil {
			return nil, err
		}
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		if i == 0 {
			srv.Serve(chaos.NewListener(ln, ctl))
		} else {
			srv.Serve(ln)
		}
		remotes[i] = shard.RemoteShard{Name: fmt.Sprintf("r%d", i), Addr: ln.Addr().String()}
	}
	guard := shard.GuardConfig{
		PushTimeout:    250 * time.Millisecond,
		MaxRetries:     1,
		RetryBackoff:   5 * time.Millisecond,
		MaxBackoff:     50 * time.Millisecond,
		FailThreshold:  1,
		Cooldown:       time.Second,
		HealthInterval: 50 * time.Millisecond,
		Seed:           42,
	}
	r, err := shard.New(shard.Config{
		Engine:        engCfg,
		Remotes:       remotes,
		Guard:         guard,
		FallbackLocal: true,
	})
	if err != nil {
		return nil, err
	}
	defer r.Close()
	go func() {
		for range r.Decisions() {
		}
	}()
	ids := make([]string, dopts.channels)
	for i := range ids {
		ids[i] = fmt.Sprintf("degch%d", i)
		if err := r.AddChannel(ids[i]); err != nil {
			return nil, err
		}
	}
	var (
		attempted atomic.Int64
		faultOnce sync.Once
	)
	// Trip the fault a quarter of the way in, so most of the feed runs
	// through detection, failover and the degraded steady state.
	trip := int64(dopts.channels) * int64(dopts.samples) / 4
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, dopts.channels)
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			for fed := 0; fed < dopts.samples; {
				n := len(band)
				if fed+n > dopts.samples {
					n = dopts.samples - fed
				}
				// A shed push returns (0, nil): the robustness layer already
				// accounted the loss, so the feeder moves on — a live source
				// cannot rewind its antenna either.
				if _, err := r.Push(id, band[:n]); err != nil {
					errs[i] = err
					return
				}
				fed += n
				if attempted.Add(int64(n)) >= trip {
					faultOnce.Do(func() { ctl.Blackhole(true) })
				}
			}
		}(i, id)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Wait for the health loop to declare the blackholed shard dead
	// before flushing: a wedged worker absorbs small feeds into socket
	// buffers without ever failing a push, and the live-only Flush must
	// not commit a long round-trip to a shard the breaker is about to
	// disown.
	deadline := time.Now().Add(30 * time.Second)
	for r.Stats().Failovers == 0 {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("blackhole never tripped a failover (stats %+v)", r.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := r.Flush(5 * time.Minute); err != nil {
		return nil, err
	}
	wall := time.Since(start).Seconds()
	st := r.Stats()
	row := &DegradedMeasurement{
		Name:              dopts.estimator,
		Shards:            dopts.shards,
		Channels:          dopts.channels,
		SamplesPerChannel: dopts.samples,
		SnapshotSamples:   window,
		HealthIntervalMs:  float64(guard.HealthInterval) / float64(time.Millisecond),
		WallSeconds:       wall,
		SamplesAttempted:  int64(dopts.channels) * int64(dopts.samples),
		SamplesAccepted:   st.SamplesIn,
		SamplesShed:       st.ShedSamples,
		Retries:           st.Retries,
		DeadlineExceeded:  st.DeadlineExceeded,
		Failovers:         st.Failovers,
		Surfaces:          st.Surfaces,
		OpenCircuits:      st.OpenCircuits,
	}
	if wall > 0 {
		row.SamplesPerSec = float64(st.SamplesIn) / wall
	}
	return row, nil
}
