package tiledcfd

import (
	"math"
	"strings"
	"testing"

	"tiledcfd/internal/detect"
	"tiledcfd/internal/fam"
	"tiledcfd/internal/quant"
	"tiledcfd/internal/scf"
	"tiledcfd/internal/sig"
)

// TestEstimatorRegistryNames: the registry drives both EstimatorNames and
// the "unknown estimator" error, so new backends can never leave the
// message stale.
func TestEstimatorRegistryNames(t *testing.T) {
	names := EstimatorNames()
	want := []string{"platform", "direct", "fam", "ssca", "fam-q15", "ssca-q15"}
	if len(names) != len(want) {
		t.Fatalf("EstimatorNames() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("EstimatorNames() = %v, want %v", names, want)
		}
	}
	_, err := Sense(make([]complex128, 4096), Config{Estimator: "nope"})
	if err == nil {
		t.Fatal("unknown estimator accepted")
	}
	for _, name := range names {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("unknown-estimator error %q does not list %q", err, name)
		}
	}
}

// TestQ15BackendsSelectable: fam-q15/ssca-q15 via Config.Estimator run
// the full sensing pipeline and report modeled cycles.
func TestQ15BackendsSelectable(t *testing.T) {
	band, err := NewBPSKBand(2048, 0.125, 8, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fam-q15", "ssca-q15"} {
		s, err := Sense(band, Config{Threshold: 0.3, Estimator: name})
		if err != nil {
			t.Fatalf("Sense(%s): %v", name, err)
		}
		if s.Estimator != name {
			t.Errorf("Sense(%s).Estimator = %q", name, s.Estimator)
		}
		if !s.Detected {
			t.Errorf("%s missed the 10 dB licensed user (statistic %v)", name, s.Statistic)
		}
		if s.ModelCycles <= 0 {
			t.Errorf("%s reported no modeled cycles", name)
		}
		if s.FFTMults == 0 {
			t.Errorf("%s reported no FFT mults", name)
		}
		sc, err := SpectralCorrelation(band, Config{Estimator: name})
		if err != nil {
			t.Fatalf("SpectralCorrelation(%s): %v", name, err)
		}
		if sc.ModelCycles <= 0 {
			t.Errorf("SpectralCorrelation(%s) reported no modeled cycles", name)
		}
	}
	// Hop is threaded to fam-q15 and rejected by ssca-q15.
	if _, err := Sense(band, Config{Estimator: "fam-q15", Hop: 128, Threshold: 0.3}); err != nil {
		t.Errorf("fam-q15 with Hop=128: %v", err)
	}
	if _, err := Sense(band, Config{Estimator: "ssca-q15", Hop: 64}); err == nil {
		t.Error("ssca-q15 accepted Hop")
	}
}

// e14Band synthesises the E14 comparison band: the paper geometry's
// licensed user (BPSK, carrier 0.125, 8 samples/symbol) at the given SNR.
func e14Band(t testing.TB, n int, snrDB float64, seed uint64) []complex128 {
	t.Helper()
	band, err := NewBPSKBand(n, 0.125, 8, snrDB, seed)
	if err != nil {
		t.Fatal(err)
	}
	return band
}

// TestE14Q15CrossCheck is the acceptance cross-check: on the E14 BPSK
// geometry (K=256, M=64) the Q15 backends must track their float
// references within bounded SQNR (>= 40 dB) and return identical
// detection verdicts at a threshold calibrated on the float path.
func TestE14Q15CrossCheck(t *testing.T) {
	const k, m, blocks = 256, 64, 8
	p := scf.Params{K: k, M: m}
	pairs := []struct {
		name  string
		fixed quant.FixedEstimator
		ref   scf.Estimator
	}{
		{"fam-q15", fam.FAMQ15{Params: p}, fam.FAM{Params: p}},
		{"ssca-q15", fam.SSCAQ15{Params: p}, fam.SSCA{Params: p}},
	}
	// Calibrate a shared threshold on the float path at 10% false-alarm
	// over noise-only trials, then demand verdict-identical decisions
	// from the fixed path on held-out busy and idle bands across SNRs.
	scenario := func(rng *sig.Rand, present bool) []complex128 {
		noise := sig.Samples(&sig.WGN{Sigma: 0.5, Real: true, Rng: rng}, k*blocks)
		if !present {
			return noise
		}
		s := sig.Samples(&sig.BPSK{Amp: 1, Carrier: 0.125, SymbolLen: 8, Rng: rng}, k*blocks)
		for i := range s {
			s[i] += noise[i]
		}
		return s
	}
	for _, pair := range pairs {
		cmp, err := quant.Compare(e14Band(t, k*blocks, 10, 42), pair.fixed, pair.ref)
		if err != nil {
			t.Fatal(err)
		}
		if cmp.SQNRdB < 40 {
			t.Errorf("%s: E14 surface SQNR = %.1f dB, want >= 40", pair.name, cmp.SQNRdB)
		}
		if math.Abs(cmp.PeakBias) > 0.02 {
			t.Errorf("%s: feature-peak bias %.4f, want within 2%%", pair.name, cmp.PeakBias)
		}
		refDet := detect.CFDDetector{MinAbsA: 2, Estimator: pair.ref}
		fixDet := detect.CFDDetector{MinAbsA: 2, Estimator: pair.fixed}
		th, err := detect.CalibrateThreshold(refDet, scenario, 20, 0.1, 77)
		if err != nil {
			t.Fatal(err)
		}
		rng := sig.NewRand(123)
		for trial := 0; trial < 8; trial++ {
			present := trial%2 == 0
			x := scenario(rng, present)
			rs, err := refDet.Statistic(x)
			if err != nil {
				t.Fatal(err)
			}
			fs, err := fixDet.Statistic(x)
			if err != nil {
				t.Fatal(err)
			}
			if (rs > th) != (fs > th) {
				t.Errorf("%s trial %d (present=%v): verdict split — float %.4f vs fixed %.4f at threshold %.4f",
					pair.name, trial, present, rs, fs, th)
			}
		}
	}
}

// TestQ15SenseBitExactAcrossWorkers: the full pipeline verdict and
// surface are identical for any Workers setting.
func TestQ15SenseBitExactAcrossWorkers(t *testing.T) {
	band := e14Band(t, 2048, 6, 9)
	for _, name := range []string{"fam-q15", "ssca-q15"} {
		ref, err := Sense(band, Config{Threshold: 0.3, Estimator: name, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{0, 2, 5} {
			got, err := Sense(band, Config{Threshold: 0.3, Estimator: name, Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			if got.Statistic != ref.Statistic || got.Detected != ref.Detected {
				t.Errorf("%s Workers=%d: statistic %v/%v vs serial %v/%v",
					name, w, got.Statistic, got.Detected, ref.Statistic, ref.Detected)
			}
			for i := range ref.Surface {
				for j := range ref.Surface[i] {
					if ref.Surface[i][j] != got.Surface[i][j] {
						t.Fatalf("%s Workers=%d: surface differs at [%d][%d]", name, w, i, j)
					}
				}
			}
		}
	}
}

// TestMonitorRejectsQ15: the Q15 backends have no incremental form; the
// streaming API must say so instead of misbehaving.
func TestMonitorRejectsQ15(t *testing.T) {
	for _, name := range []string{"fam-q15", "ssca-q15"} {
		_, err := NewMonitor(Config{Estimator: name}, MonitorOptions{Channels: []string{"a"}})
		if err == nil {
			t.Errorf("NewMonitor accepted %s", name)
		}
	}
}
