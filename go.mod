module tiledcfd

go 1.24
