module tiledcfd

go 1.23
