package tiledcfd

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestDetectorNames(t *testing.T) {
	want := []string{"cfar", "fixed", "dg", "urriza"}
	if got := DetectorNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("DetectorNames() = %v, want %v", got, want)
	}
}

// An empty Config.Detector with a positive Threshold is the legacy
// fixed-threshold path; naming "fixed" explicitly must make the same
// decision on the same samples, differing only in the label (legacy
// paths stamp "cfd-<estimator>", the registry stamps the registry name).
func TestSenseLegacyThresholdEquivalence(t *testing.T) {
	const k, m, blocks = 64, 16, 8
	x, err := NewBPSKBand(k*blocks, 8.0/k, 8, 10, 21)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := Sense(x, Config{K: k, M: m, Blocks: blocks, Estimator: "direct", Threshold: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	named, err := Sense(x, Config{K: k, M: m, Blocks: blocks, Estimator: "direct",
		Threshold: 0.3, Detector: "fixed"})
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Detector != "cfd-direct" {
		t.Errorf("legacy label = %q, want cfd-direct", legacy.Detector)
	}
	if named.Detector != "fixed" {
		t.Errorf("registry label = %q, want fixed", named.Detector)
	}
	if legacy.Detected != named.Detected || legacy.Statistic != named.Statistic ||
		legacy.Threshold != named.Threshold {
		t.Errorf("decisions diverge: legacy %v/%v/%v, fixed %v/%v/%v",
			legacy.Detected, legacy.Statistic, legacy.Threshold,
			named.Detected, named.Statistic, named.Threshold)
	}
}

// Sense with the dg detector: closed-form thresholding on the sample
// window, no Threshold knob involved.
func TestSenseDGDetector(t *testing.T) {
	const k, m, blocks = 64, 16, 32
	cfg := Config{K: k, M: m, Blocks: blocks, Estimator: "direct",
		AlphaCandidates: []int{8, 4}, Detector: "dg"}
	busy, err := NewBPSKBand(k*blocks, 8.0/k, 8, 6, 23)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Sense(busy, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Detector != "dg" {
		t.Errorf("Detector = %q, want dg", s.Detector)
	}
	if !s.Detected {
		t.Errorf("BPSK at 6 dB not detected: statistic %v threshold %v", s.Statistic, s.Threshold)
	}
	if s.Threshold <= 0 {
		t.Errorf("closed-form threshold %v not positive", s.Threshold)
	}
	idle, err := NewNoiseBand(k*blocks, 1, 24)
	if err != nil {
		t.Fatal(err)
	}
	s, err = Sense(idle, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Detected {
		t.Errorf("idle band flagged: statistic %v threshold %v", s.Statistic, s.Threshold)
	}
}

func TestSenseDetectorErrors(t *testing.T) {
	x, err := NewNoiseBand(64*8, 1, 25)
	if err != nil {
		t.Fatal(err)
	}
	// The asymptotic detectors need a cycle set under test.
	_, err = Sense(x, Config{K: 64, M: 16, Blocks: 8, Estimator: "direct", Detector: "dg"})
	if err == nil {
		t.Error("dg accepted without AlphaCandidates")
	} else if !strings.Contains(err.Error(), "alpha candidates") {
		t.Errorf("dg error %q does not explain the missing cycle set", err)
	}
	// Unknown names fail with the registry enumerated, tiledcfd-prefixed.
	_, err = Sense(x, Config{K: 64, M: 16, Blocks: 8, Estimator: "direct", Detector: "bayes"})
	if err == nil {
		t.Fatal("unknown detector accepted")
	}
	msg := err.Error()
	if !strings.HasPrefix(msg, "tiledcfd:") || !strings.Contains(msg, `unknown detector "bayes"`) {
		t.Errorf("error %q lacks the tiledcfd prefix or the bad name", msg)
	}
	for _, name := range DetectorNames() {
		if !strings.Contains(msg, name) {
			t.Errorf("error %q does not list registered detector %q", msg, name)
		}
	}
}

// A Monitor built with an asymptotic detector must stamp its decisions
// with the detector name and the configured target Pfa — the fields a
// downstream consumer needs to interpret the verdict.
func TestMonitorDecisionCarriesDetector(t *testing.T) {
	const k, m = 64, 16
	mon, err := NewMonitor(
		Config{K: k, M: m, Blocks: 8, Estimator: "direct",
			AlphaCandidates: []int{8, 4}, Detector: "dg", TargetPfa: 0.1},
		MonitorOptions{Channels: []string{"ch"}, SnapshotSamples: 2048},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	x, err := NewBPSKBand(2048, 8.0/k, 8, 6, 29)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mon.Push("ch", x); err != nil {
		t.Fatal(err)
	}
	if err := mon.Flush(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-mon.Decisions():
		if d.Detector != "dg" {
			t.Errorf("decision detector = %q, want dg", d.Detector)
		}
		if d.TargetPfa != 0.1 {
			t.Errorf("decision target Pfa = %v, want 0.1", d.TargetPfa)
		}
		if !d.Detected {
			t.Errorf("BPSK at 6 dB not detected: statistic %v threshold %v", d.Statistic, d.Threshold)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no decision after flush")
	}
}
