package tiledcfd

import (
	"fmt"
	"math"

	"tiledcfd/internal/core"
	"tiledcfd/internal/mapping"
	"tiledcfd/internal/perf"
	"tiledcfd/internal/scf"
	"tiledcfd/internal/sig"
	"tiledcfd/internal/soc"
)

// Config selects the platform geometry and detection settings for Sense.
// Zero values take the paper's configuration (K=256, M=64, Q=4 cores at
// 100 MHz, one integration block).
type Config struct {
	// K is the FFT size.
	K int
	// M is the DSCF grid half-extent: f and a span [-(M-1), M-1].
	M int
	// Q is the number of Montium tiles.
	Q int
	// Blocks is the number of K-sample integration steps.
	Blocks int
	// ClockMHz is the tile clock for the evaluation figures.
	ClockMHz float64
	// MinAbsA is the smallest |a| the blind detector searches (default 2).
	MinAbsA int
	// Threshold is the decision threshold on the CFD statistic.
	Threshold float64
}

// Sensing is the outcome of a spectrum-sensing run.
type Sensing struct {
	// Detected reports whether the cyclostationary statistic exceeded the
	// threshold.
	Detected bool
	// Statistic and Threshold echo the decision inputs.
	Statistic, Threshold float64
	// FeatureF/FeatureA locate the strongest cyclic feature (a != 0).
	FeatureF, FeatureA int
	// Surface is the DSCF magnitude grid [a+M-1][f+M-1] from the platform.
	Surface [][]complex128
	// AlphaProfile is the cycle-frequency profile Σ_f |S_f^a| per offset.
	AlphaProfile []float64
	// CyclesPerBlock is the measured per-integration-step critical path.
	CyclesPerBlock int64
	// Breakdown is the measured Table 1 of the busiest tile.
	Breakdown CycleBreakdown
	// TotalMACs counts complex multiply-accumulates over all tiles/blocks.
	TotalMACs int64
	// NoCValues counts chain boundary values that crossed the inter-tile
	// network (the paper's factor-T-slower data exchange).
	NoCValues int64
	// Evaluation figures (paper section 5).
	BlockTimeMicros      float64
	AnalysedBandwidthkHz float64
	AreaMM2              float64
	PowerMW              float64
}

// CycleBreakdown mirrors the rows of the paper's Table 1.
type CycleBreakdown struct {
	MultiplyAccumulate int64
	ReadData           int64
	FFT                int64
	Reshuffle          int64
	Initialisation     int64
	Total              int64
}

// Sense runs the full spectrum-sensing pipeline of the paper on the
// sampled band x (complex samples; real signals carry zero imaginary
// parts). It needs K·Blocks samples.
func Sense(x []complex128, cfg Config) (*Sensing, error) {
	res, err := core.Run(x, core.Config{
		SoC: soc.Config{
			K: cfg.K, M: cfg.M, Q: cfg.Q,
			Blocks: cfg.Blocks, ClockMHz: cfg.ClockMHz,
		},
		MinAbsA:   cfg.MinAbsA,
		Threshold: cfg.Threshold,
	})
	if err != nil {
		return nil, err
	}
	f, a, _ := res.Surface.MaxFeature(true)
	busiest := res.Report.Tiles[0].Table1
	for _, tr := range res.Report.Tiles[1:] {
		if tr.Table1.Total() > busiest.Total() {
			busiest = tr.Table1
		}
	}
	out := &Sensing{
		Detected:       res.Decision.Detected,
		Statistic:      res.Decision.Statistic,
		Threshold:      res.Decision.Threshold,
		FeatureF:       f,
		FeatureA:       a,
		Surface:        res.Surface.Data,
		AlphaProfile:   res.Surface.AlphaProfile(),
		CyclesPerBlock: res.Report.CyclesPerBlock,
		TotalMACs:      res.Report.TotalMACs,
		NoCValues:      res.Report.NoCSent,
		Breakdown: CycleBreakdown{
			MultiplyAccumulate: busiest.MultiplyAccumulate,
			ReadData:           busiest.ReadData,
			FFT:                busiest.FFT,
			Reshuffle:          busiest.Reshuffle,
			Initialisation:     busiest.Initialisation,
			Total:              busiest.Total(),
		},
		BlockTimeMicros:      res.BlockTimeMicros,
		AnalysedBandwidthkHz: res.AnalysedBandwidthkHz,
		AreaMM2:              res.AreaMM2,
		PowerMW:              res.PowerMW,
	}
	return out, nil
}

// WindowVerdict is one window's outcome of a monitored stream.
type WindowVerdict struct {
	// Window is the 0-based window index.
	Window int
	// Detected reports whether the window's statistic exceeded the
	// threshold; Statistic carries the value.
	Detected  bool
	Statistic float64
	// FeatureA is the strongest cyclic feature's offset in the window.
	FeatureA int
}

// Watch senses a continuous stream window by window (window = K·Blocks
// samples; a trailing partial window is ignored) and returns the
// per-window verdicts — the operational Cognitive-Radio mode: track when
// a licensed user appears in or vacates the band.
func Watch(stream []complex128, cfg Config) ([]WindowVerdict, error) {
	mon, err := core.NewMonitor(core.Config{
		SoC: soc.Config{
			K: cfg.K, M: cfg.M, Q: cfg.Q,
			Blocks: cfg.Blocks, ClockMHz: cfg.ClockMHz,
		},
		MinAbsA:   cfg.MinAbsA,
		Threshold: cfg.Threshold,
	})
	if err != nil {
		return nil, err
	}
	decisions, err := mon.Process(stream)
	if err != nil {
		return nil, err
	}
	out := make([]WindowVerdict, len(decisions))
	for i, d := range decisions {
		out[i] = WindowVerdict{
			Window:    d.Window,
			Detected:  d.Decision.Detected,
			Statistic: d.Decision.Statistic,
			FeatureA:  d.FeatureA,
		}
	}
	return out, nil
}

// DSCF computes the reference (float64) Discrete Spectral Correlation
// Function of x: a (2m-1)×(2m-1) grid indexed [a+m-1][f+m-1], accumulated
// over blocks non-overlapping k-sample FFT blocks and normalised by the
// block count.
func DSCF(x []complex128, k, m, blocks int) ([][]complex128, error) {
	s, _, err := scf.Compute(x, scf.Params{K: k, M: m, Blocks: blocks})
	if err != nil {
		return nil, err
	}
	return s.Data, nil
}

// Mapping summarises a step-1 derivation for half-extent m on q cores.
type Mapping struct {
	// P is the logical processor count 2m-1; T the tasks-per-core bound.
	P, Q, T int
	// TaskRanges lists each core's half-open task interval [lo, hi).
	TaskRanges [][2]int
	// ChainRegisters is the per-chain register count of the minimal
	// structure (one per inter-PE hop).
	ChainRegisters int
	// MemoryWordsPerCore is the per-core DSCF accumulator footprint in
	// 16-bit words (2·T·F).
	MemoryWordsPerCore int
}

// DeriveMapping runs the paper's verified step-1 derivation (projections,
// space-time transform, register synthesis, folding) for half-extent m
// and q cores.
func DeriveMapping(m, q int) (*Mapping, error) {
	la, err := mapping.DeriveLineArray(m, 2)
	if err != nil {
		return nil, err
	}
	chains, err := mapping.SynthesiseChains(m)
	if err != nil {
		return nil, err
	}
	fold, err := mapping.NewFolding(la.P(), q)
	if err != nil {
		return nil, err
	}
	if err := fold.Validate(); err != nil {
		return nil, err
	}
	out := &Mapping{
		P: la.P(), Q: q, T: fold.T,
		ChainRegisters:     chains[0].Registers,
		MemoryWordsPerCore: 2 * fold.T * la.F(),
	}
	for c := 0; c < q; c++ {
		lo, hi := fold.TasksOf(c)
		out.TaskRanges = append(out.TaskRanges, [2]int{lo, hi})
	}
	return out, nil
}

// Evaluation bundles the section 5 figures for a platform of q cores
// whose integration step takes the given cycle count.
type Evaluation struct {
	BlockTimeMicros      float64
	AnalysedBandwidthkHz float64
	AreaMM2              float64
	PowerMW              float64
}

// Evaluate applies the paper's technology constants (100 MHz, 2 mm²/core,
// 500 µW/MHz) to a measured cycle count.
func Evaluate(k, q int, cyclesPerBlock int64) (*Evaluation, error) {
	if k < 1 || q < 1 || cyclesPerBlock < 1 {
		return nil, fmt.Errorf("tiledcfd: Evaluate(k=%d, q=%d, cycles=%d) needs positive arguments",
			k, q, cyclesPerBlock)
	}
	m := perf.Paper()
	bt := m.BlockTimeMicros(cyclesPerBlock)
	return &Evaluation{
		BlockTimeMicros:      bt,
		AnalysedBandwidthkHz: m.AnalysedBandwidthkHz(k, bt),
		AreaMM2:              m.AreaMM2(q),
		PowerMW:              m.PowerMW(q),
	}, nil
}

// NewBPSKBand synthesises a test band: a real BPSK carrier (normalised
// carrier frequency, samples per symbol) in real white Gaussian noise at
// the given SNR, n samples long, deterministic in seed. It is the
// licensed-user scenario used throughout the examples.
func NewBPSKBand(n int, carrierFreq float64, symbolLen int, snrDB float64, seed uint64) ([]complex128, error) {
	if n < 1 || symbolLen < 1 {
		return nil, fmt.Errorf("tiledcfd: NewBPSKBand(n=%d, symbolLen=%d) needs positive sizes", n, symbolLen)
	}
	rng := sig.NewRand(seed)
	b := &sig.BPSK{Amp: 1, Carrier: carrierFreq, SymbolLen: symbolLen, Rng: rng}
	x := sig.Samples(b, n)
	noisy, _, err := sig.AddAWGN(x, snrDB, true, rng)
	if err != nil {
		return nil, err
	}
	return noisy, nil
}

// NewNoiseBand synthesises an idle band: real white Gaussian noise of the
// given power, n samples, deterministic in seed.
func NewNoiseBand(n int, power float64, seed uint64) ([]complex128, error) {
	if n < 1 || power <= 0 {
		return nil, fmt.Errorf("tiledcfd: NewNoiseBand(n=%d, power=%v) invalid", n, power)
	}
	rng := sig.NewRand(seed)
	return sig.Samples(&sig.WGN{Sigma: math.Sqrt(power), Real: true, Rng: rng}, n), nil
}
