package tiledcfd

import (
	"fmt"
	"math"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tiledcfd/internal/core"
	"tiledcfd/internal/detect"
	"tiledcfd/internal/fam"
	"tiledcfd/internal/mapping"
	"tiledcfd/internal/perf"
	"tiledcfd/internal/scf"
	"tiledcfd/internal/shard"
	"tiledcfd/internal/sig"
	"tiledcfd/internal/soc"
	"tiledcfd/internal/stream"
	"tiledcfd/internal/wire"
)

// Config selects the platform geometry and detection settings for Sense.
// Zero values take the paper's configuration (K=256, M=64, Q=4 cores at
// 100 MHz, one integration block).
type Config struct {
	// K is the FFT size.
	K int
	// M is the DSCF grid half-extent: f and a span [-(M-1), M-1].
	M int
	// Q is the number of Montium tiles.
	Q int
	// Blocks is the number of K-sample integration steps.
	Blocks int
	// ClockMHz is the tile clock for the evaluation figures.
	ClockMHz float64
	// MinAbsA is the smallest |a| the blind detector searches (default 2).
	MinAbsA int
	// Threshold is the decision threshold on the CFD statistic — the
	// legacy way to select fixed-threshold decisions. When Detector is
	// empty, a positive Threshold behaves exactly as before (the "fixed"
	// detector); see Detector for the registry-based selection.
	Threshold float64
	// Detector selects the decision layer by registry name
	// (DetectorNames lists the registry):
	//
	//   - "cfar": the self-calibrating peak-over-floor detector on the
	//     estimated surface (scale from MonitorOptions.CFARScale);
	//   - "fixed": the externally calibrated threshold on the CFD
	//     statistic (Threshold must be positive);
	//   - "dg": the Dandawate–Giannakis asymptotic cyclostationarity
	//     test — chi-square statistic on the cyclic-autocorrelation
	//     vector at the AlphaCandidates cycles, thresholded in closed
	//     form for TargetPfa with no calibration;
	//   - "urriza": the multi-sequence cyclic-correlation significance
	//     test (polyphase branches), also closed-form for TargetPfa.
	//
	// The asymptotic detectors (dg, urriza) require non-empty
	// AlphaCandidates — the cycle set under test. An empty Detector
	// keeps the legacy scalar-knob behaviour: Threshold > 0 means
	// "fixed", otherwise "cfar".
	Detector string
	// TargetPfa is the false-alarm probability the asymptotic detectors
	// (dg, urriza) hit by construction (default 0.05). Ignored by cfar
	// and fixed.
	TargetPfa float64
	// Estimator selects how the spectral-correlation surface is
	// computed (EstimatorNames lists the registry):
	//
	//   - "" or "platform": the paper's path — Q15 quantisation and the
	//     bit-true tiled-SoC simulation (cycle counts, Table 1,
	//     evaluation figures);
	//   - "direct": the float64 direct DSCF (K-point FFT plus one
	//     product per grid cell per block);
	//   - "fam": the FFT Accumulation Method (overlapping windowed
	//     channelizer, second FFT across hops);
	//   - "ssca": the Strip Spectral Correlation Analyzer (sliding
	//     channelizer, one long strip FFT per channel);
	//   - "fam-q15", "ssca-q15": the Q15 fixed-point FAM/SSCA backends —
	//     saturating 16-bit arithmetic with block-floating-point FFT
	//     scaling and tracked exponents, bit-exact deterministic, their
	//     surfaces converted exactly into float units. They report
	//     modeled Montium cycles (ModelCycles) on top of mult counts.
	//
	// The software estimators skip the hardware model, so hardware
	// figures (cycle breakdown, area, power) are zero; FFTMults and
	// EstimatorMults report their work instead.
	Estimator string
	// AlphaCandidates, when non-empty, restricts estimation to the listed
	// non-negative cycle-frequency bin offsets (their mirrors and a=0 are
	// implied) — alpha pruning, where only the strips of the surface a
	// detector will actually threshold are computed, and cost scales with
	// the candidate count instead of M. Use AlphaBinForHz to convert a
	// physical cycle frequency into a bin offset. Candidate cells are
	// bit-identical to a full-plane run. Supported by the software
	// estimators (direct, fam, ssca, fam-q15, ssca-q15); the platform
	// path rejects it.
	AlphaCandidates []int
	// Hop is the block/channelizer advance in samples: for "fam" the
	// channelizer hop (0 = K/4), for "direct" the integration-block
	// advance (0 = K, the paper's non-overlapping blocks). Setting it
	// with "ssca" is an error — the SSCA channelizer advances one sample
	// per hop by definition. The platform path ignores it.
	Hop int
	// Workers bounds the goroutines a software estimator uses internally
	// (concurrent integration blocks for "direct", surface rows for
	// "fam", strips for "ssca" — all bit-identical to serial). 1 forces
	// the serial path; 0 takes the estimator's default: one worker per
	// CPU core for "fam"/"ssca", serial for "direct" (whose per-block
	// decomposition allocates a partial surface per block and only pays
	// off for large Blocks counts, so it stays opt-in with Workers > 1).
	// Ignored by the platform path and by streaming accumulators
	// (Monitor parallelises across channels instead).
	Workers int
}

// estimatorRegistry is the single source of truth for Config.Estimator
// names: every selectable backend registers its name and builder here,
// in the order reports and error messages list them. The "unknown
// estimator" error is generated from this slice, so adding a backend can
// never leave the message stale again.
var estimatorRegistry = []struct {
	name  string
	build func(Config) (scf.Estimator, error)
}{
	{"platform", func(Config) (scf.Estimator, error) { return nil, nil }},
	{"direct", func(c Config) (scf.Estimator, error) {
		return scf.Direct{Params: c.params(c.Hop), Workers: c.Workers}, nil
	}},
	{"fam", func(c Config) (scf.Estimator, error) {
		return fam.FAM{Params: c.params(c.Hop), Workers: c.Workers}, nil
	}},
	{"ssca", func(c Config) (scf.Estimator, error) {
		if err := c.rejectHop("ssca"); err != nil {
			return nil, err
		}
		return fam.SSCA{Params: c.params(0), Workers: c.Workers}, nil
	}},
	{"fam-q15", func(c Config) (scf.Estimator, error) {
		return fam.FAMQ15{Params: c.params(c.Hop), Workers: c.Workers}, nil
	}},
	{"ssca-q15", func(c Config) (scf.Estimator, error) {
		if err := c.rejectHop("ssca-q15"); err != nil {
			return nil, err
		}
		return fam.SSCAQ15{Params: c.params(0), Workers: c.Workers}, nil
	}},
}

// EstimatorNames returns the selectable Config.Estimator values in
// registry order — the list CLIs print in their -estimator help and the
// "unknown estimator" error embeds.
func EstimatorNames() []string {
	names := make([]string, len(estimatorRegistry))
	for i, e := range estimatorRegistry {
		names[i] = e.name
	}
	return names
}

// DetectorNames returns the selectable Config.Detector values in
// registry order — the list CLIs print in their -detector help and the
// "unknown detector" error embeds. The registry lives in
// internal/detect beside the implementations, so the list can never
// drift from what NewMonitor actually accepts.
func DetectorNames() []string { return detect.DeciderNames() }

// decider resolves Config.Detector through the detect registry,
// applying the legacy scalar-knob mapping when the name is empty
// (Threshold > 0 selects "fixed", otherwise "cfar" — the pre-registry
// behaviour, preserved exactly). The opts CFAR scale rides along so the
// Monitor and batch paths build identical deciders.
func (c Config) decider(cfarScale float64) (detect.Decider, error) {
	name := c.Detector
	if name == "" {
		if c.Threshold > 0 {
			name = "fixed"
		} else {
			name = "cfar"
		}
	}
	dec, err := detect.NewDecider(name, detect.DeciderParams{
		Scf:       c.params(0).WithDefaults(),
		MinAbsA:   c.minAbsAOrDefault(),
		Threshold: c.Threshold,
		CFARScale: cfarScale,
		TargetPfa: c.TargetPfa,
	})
	if err != nil {
		return nil, fmt.Errorf("tiledcfd: %w", err)
	}
	return dec, nil
}

// batchDecider resolves the Decider for the one-shot paths (Sense,
// Watch): nil when Detector is empty, keeping the legacy inline
// fixed-threshold decision (and its path-specific detector labels)
// untouched; a registry decider otherwise. Batch paths have no
// MonitorOptions, so the CFAR scale takes the detector's default.
func (c Config) batchDecider() (detect.Decider, error) {
	if c.Detector == "" {
		return nil, nil
	}
	return c.decider(0)
}

// minAbsAOrDefault mirrors the decision layers' historical default.
func (c Config) minAbsAOrDefault() int {
	if c.MinAbsA == 0 {
		return 2
	}
	return c.MinAbsA
}

// streamingEstimatorNames returns the registry entries whose estimators
// have an incremental form — the suggestions NewMonitor's errors offer.
// Derived from the registry so the list tracks new backends by itself.
func streamingEstimatorNames() []string {
	var names []string
	for _, e := range estimatorRegistry {
		est, err := e.build(Config{})
		if err != nil || est == nil {
			continue
		}
		if _, ok := est.(scf.StreamingEstimator); ok {
			names = append(names, e.name)
		}
	}
	return names
}

// params assembles the estimator parameter set from the configured
// geometry and the given hop.
func (c Config) params(hop int) scf.Params {
	return scf.Params{K: c.K, M: c.M, Blocks: c.Blocks, Hop: hop, AlphaCandidates: c.AlphaCandidates}
}

// AlphaBinForHz converts a physical cycle frequency (Hz) at the given
// sample rate into the candidate bin offset for the configured geometry
// — the value to list in AlphaCandidates. A BPSK signal at symbol rate
// R_sym and carrier f_c, for example, has features at α = R_sym and
// α = 2·f_c.
func (c Config) AlphaBinForHz(alphaHz, sampleRateHz float64) (int, error) {
	return c.params(0).AlphaBinForHz(alphaHz, sampleRateHz)
}

// rejectHop is the shared guard of the strip analyzers, whose
// channelizer advances one sample per hop by definition.
func (c Config) rejectHop(name string) error {
	if c.Hop != 0 {
		return fmt.Errorf("tiledcfd: Hop=%d is meaningless for the %s estimator "+
			"(the SSCA channelizer advances one sample per hop); leave Hop zero", c.Hop, name)
	}
	return nil
}

// estimator resolves the Config.Estimator name through the registry;
// nil means the platform path.
func (c Config) estimator() (scf.Estimator, error) {
	name := c.Estimator
	if name == "" {
		name = "platform"
	}
	if name == "platform" && len(c.AlphaCandidates) > 0 {
		return nil, fmt.Errorf("tiledcfd: the platform path computes the full surface on the modeled " +
			"hardware and does not support AlphaCandidates; pick a software estimator")
	}
	for _, e := range estimatorRegistry {
		if e.name == name {
			return e.build(c)
		}
	}
	return nil, fmt.Errorf("tiledcfd: unknown estimator %q (want %s)",
		c.Estimator, strings.Join(EstimatorNames(), ", "))
}

// Sensing is the outcome of a spectrum-sensing run.
type Sensing struct {
	// Estimator names the surface path that produced the verdict (one of
	// EstimatorNames).
	Estimator string
	// Detector names the decision layer that produced the verdict: a
	// registry name (DetectorNames) when Config.Detector was set,
	// otherwise the legacy label of the path ("cfd" on the platform,
	// "cfd-<estimator>" on the software paths).
	Detector string
	// Detected reports whether the cyclostationary statistic exceeded the
	// threshold.
	Detected bool
	// Statistic and Threshold echo the decision inputs.
	Statistic, Threshold float64
	// FeatureF/FeatureA locate the strongest cyclic feature (a != 0).
	FeatureF, FeatureA int
	// Surface is the DSCF magnitude grid [a+M-1][f+M-1] from the platform.
	Surface [][]complex128
	// AlphaProfile is the cycle-frequency profile Σ_f |S_f^a| per offset.
	AlphaProfile []float64
	// CyclesPerBlock is the measured per-integration-step critical path.
	CyclesPerBlock int64
	// Breakdown is the measured Table 1 of the busiest tile.
	Breakdown CycleBreakdown
	// TotalMACs counts complex multiply-accumulates over all tiles/blocks.
	TotalMACs int64
	// NoCValues counts chain boundary values that crossed the inter-tile
	// network (the paper's factor-T-slower data exchange).
	NoCValues int64
	// BlockTimeMicros is one integration step's duration at the platform
	// clock (paper section 5).
	BlockTimeMicros float64
	// AnalysedBandwidthkHz is the band the platform keeps up with in
	// real time (paper section 5).
	AnalysedBandwidthkHz float64
	// AreaMM2 is the platform's silicon area estimate (paper section 5).
	AreaMM2 float64
	// PowerMW is the platform's power estimate (paper section 5).
	PowerMW float64
	// FFTMults and EstimatorMults count the complex multiplications a
	// software estimator spent in FFTs and in pointwise products
	// (downconversion plus cell products). Zero on the platform path,
	// which reports cycles instead.
	FFTMults, EstimatorMults int
	// ModelCycles is the modeled Montium cycle cost of a fixed-point
	// software backend (fam-q15/ssca-q15), charged via the Table-1-style
	// kernel accounting. Zero for float estimators and on the platform
	// path (which reports measured cycles in CyclesPerBlock/Breakdown).
	ModelCycles int64
}

// CycleBreakdown mirrors the rows of the paper's Table 1.
type CycleBreakdown struct {
	// MultiplyAccumulate counts the folded DSCF loop's cycles.
	MultiplyAccumulate int64
	// ReadData counts the sample-streaming cycles.
	ReadData int64
	// FFT counts the FFT kernel cycles.
	FFT int64
	// Reshuffle counts the memory reshuffling cycles.
	Reshuffle int64
	// Initialisation counts the per-step setup cycles.
	Initialisation int64
	// Total sums the rows (the paper: 13996).
	Total int64
}

// Sense runs the full spectrum-sensing pipeline on the sampled band x
// (complex samples; real signals carry zero imaginary parts). It needs
// K·Blocks samples. The default configuration follows the paper's
// hardware path; Config.Estimator swaps in a software estimator
// (direct/fam/ssca) for the surface while keeping the decision layer
// identical.
func Sense(x []complex128, cfg Config) (*Sensing, error) {
	est, err := cfg.estimator()
	if err != nil {
		return nil, err
	}
	dec, err := cfg.batchDecider()
	if err != nil {
		return nil, err
	}
	res, err := core.Run(x, core.Config{
		SoC: soc.Config{
			K: cfg.K, M: cfg.M, Q: cfg.Q,
			Blocks: cfg.Blocks, ClockMHz: cfg.ClockMHz,
		},
		MinAbsA:   cfg.MinAbsA,
		Threshold: cfg.Threshold,
		Decider:   dec,
		Estimator: est,
	})
	if err != nil {
		return nil, err
	}
	f, a, _ := res.Surface.MaxFeature(true)
	name := "platform"
	if est != nil {
		name = est.Name()
	}
	out := &Sensing{
		Estimator:    name,
		Detector:     res.Decision.Detector,
		Detected:     res.Decision.Detected,
		Statistic:    res.Decision.Statistic,
		Threshold:    res.Decision.Threshold,
		FeatureF:     f,
		FeatureA:     a,
		Surface:      res.Surface.Data,
		AlphaProfile: res.Surface.AlphaProfile(),
	}
	if res.Stats != nil {
		out.FFTMults = res.Stats.FFTMults
		out.EstimatorMults = res.Stats.DSCFMults
		out.ModelCycles = res.Stats.Cycles
	}
	if res.Report != nil {
		busiest := res.Report.Tiles[0].Table1
		for _, tr := range res.Report.Tiles[1:] {
			if tr.Table1.Total() > busiest.Total() {
				busiest = tr.Table1
			}
		}
		out.CyclesPerBlock = res.Report.CyclesPerBlock
		out.TotalMACs = res.Report.TotalMACs
		out.NoCValues = res.Report.NoCSent
		out.Breakdown = CycleBreakdown{
			MultiplyAccumulate: busiest.MultiplyAccumulate,
			ReadData:           busiest.ReadData,
			FFT:                busiest.FFT,
			Reshuffle:          busiest.Reshuffle,
			Initialisation:     busiest.Initialisation,
			Total:              busiest.Total(),
		}
		out.BlockTimeMicros = res.BlockTimeMicros
		out.AnalysedBandwidthkHz = res.AnalysedBandwidthkHz
		out.AreaMM2 = res.AreaMM2
		out.PowerMW = res.PowerMW
	}
	return out, nil
}

// WindowVerdict is one window's outcome of a monitored stream.
type WindowVerdict struct {
	// Window is the 0-based window index.
	Window int
	// Detected reports whether the window's statistic exceeded the
	// threshold.
	Detected bool
	// Statistic carries the window's CFD statistic value.
	Statistic float64
	// FeatureA is the strongest cyclic feature's offset in the window.
	FeatureA int
}

// Watch senses a continuous stream window by window (window = K·Blocks
// samples; a trailing partial window is ignored) and returns the
// per-window verdicts — the operational Cognitive-Radio mode: track when
// a licensed user appears in or vacates the band.
func Watch(stream []complex128, cfg Config) ([]WindowVerdict, error) {
	est, err := cfg.estimator()
	if err != nil {
		return nil, err
	}
	dec, err := cfg.batchDecider()
	if err != nil {
		return nil, err
	}
	mon, err := core.NewMonitor(core.Config{
		SoC: soc.Config{
			K: cfg.K, M: cfg.M, Q: cfg.Q,
			Blocks: cfg.Blocks, ClockMHz: cfg.ClockMHz,
		},
		MinAbsA:   cfg.MinAbsA,
		Threshold: cfg.Threshold,
		Decider:   dec,
		Estimator: est,
	})
	if err != nil {
		return nil, err
	}
	decisions, err := mon.Process(stream)
	if err != nil {
		return nil, err
	}
	out := make([]WindowVerdict, len(decisions))
	for i, d := range decisions {
		out[i] = WindowVerdict{
			Window:    d.Window,
			Detected:  d.Decision.Detected,
			Statistic: d.Decision.Statistic,
			FeatureA:  d.FeatureA,
		}
	}
	return out, nil
}

// MonitorOptions configures the streaming side of a Monitor: how the
// engine ingests, schedules and decides. Estimator selection and
// geometry come from Config (Config.Estimator must name a software
// estimator — the bit-true platform simulation has no incremental form;
// "" defaults to "direct").
type MonitorOptions struct {
	// Channels are ids registered at creation; more can be added later
	// with AddChannel.
	Channels []string
	// SnapshotSamples is the per-channel decision cadence in samples
	// (default 8192).
	SnapshotSamples int
	// RingSamples is the per-channel ingestion buffer capacity (default
	// 4×SnapshotSamples).
	RingSamples int
	// Workers bounds the engine's drain/decision worker pool (default
	// one per CPU core). Distinct from Config.Workers, which controls
	// intra-estimator parallelism on the batch paths.
	Workers int
	// Cumulative keeps estimator state integrating across decisions
	// instead of resetting per window. Not supported with the "ssca"
	// estimator, whose un-reset state grows without bound (one product
	// entry per addressed channel per sample).
	Cumulative bool
	// Backpressure makes Push block when a ring fills instead of
	// dropping the overflow.
	Backpressure bool
	// CFARScale is the self-calibrating "cfar" detector's
	// peak-over-floor ratio (default 2). With an empty Config.Detector
	// this is the legacy selection pair: a positive Config.Threshold
	// means fixed-threshold decisions, otherwise CFAR at this scale.
	// Ignored by the asymptotic detectors (dg, urriza).
	CFARScale float64
}

// MonitorDecision is one periodic per-channel verdict of a Monitor.
type MonitorDecision struct {
	// Channel names the monitored channel.
	Channel string
	// Seq is the 0-based decision index within the channel.
	Seq int64
	// Window is the number of samples the decision's surface integrates.
	Window int
	// Detected reports whether the statistic exceeded the threshold.
	Detected bool
	// Statistic and Threshold carry the decision inputs.
	Statistic, Threshold float64
	// Detector names the decision layer that produced the verdict (one
	// of DetectorNames).
	Detector string
	// TargetPfa is the false-alarm probability the detector was
	// configured for; zero for the detectors that are not calibrated to
	// one (cfar, fixed).
	TargetPfa float64
	// FeatureF/FeatureA locate the strongest cyclic feature (a != 0).
	FeatureF, FeatureA int
}

// MonitorStats is a Monitor-wide accounting snapshot.
type MonitorStats struct {
	// Channels is the number of registered channels.
	Channels int
	// SamplesIn counts samples accepted; SamplesDropped counts samples
	// discarded because an ingestion ring was full.
	SamplesIn, SamplesDropped int64
	// Surfaces counts estimator snapshots (= decisions made); Detections
	// the subset declaring the band occupied; DecisionsDropped the
	// decisions lost to a full or unread Decisions channel (the latest
	// per channel always remains available via ChannelStats).
	Surfaces, Detections, DecisionsDropped int64
	// QueuedSamples is the momentary ingestion backlog: samples pushed
	// but not yet integrated into estimator state.
	QueuedSamples int64
	// PrunedCellsSkipped counts surface cells never computed because of
	// alpha-candidate pruning, summed over all snapshots. Zero when no
	// channel prunes.
	PrunedCellsSkipped int64
	// SamplesPerSec and SurfacesPerSec are lifetime-average throughput
	// rates.
	SamplesPerSec, SurfacesPerSec float64
}

// MonitorChannelStats is per-channel Monitor accounting.
type MonitorChannelStats struct {
	// ID names the channel.
	ID string
	// SamplesIn counts samples accepted; SamplesDropped those discarded
	// because the channel's ingestion ring was full.
	SamplesIn, SamplesDropped int64
	// Snapshots counts the channel's decisions; Detections the subset
	// declaring the band occupied.
	Snapshots, Detections int64
	// Last is the most recent decision, nil before the first.
	Last *MonitorDecision
}

// Monitor is a long-running streaming sensing session: the incremental
// counterpart of Sense and Watch. Samples are pushed per channel as they
// arrive; a bounded worker pool advances incremental estimator state and
// emits a decision every SnapshotSamples samples. Streaming surfaces are
// bit-identical to the batch estimators over the same samples, so
// decisions agree exactly with the one-shot API.
//
// A Monitor must be Closed when done; Decisions delivers the rolling
// verdicts until then.
type Monitor struct {
	eng     *stream.Engine
	out     chan MonitorDecision
	dropped atomic.Int64 // decisions lost at the forwarding layer
	once    sync.Once
}

// toMonitorDecision converts the internal decision record; the single
// conversion point shared by the forwarder and ChannelStats.
func toMonitorDecision(d stream.Decision) MonitorDecision {
	return MonitorDecision{
		Channel:   d.Channel,
		Seq:       d.Seq,
		Window:    d.WindowSamples,
		Detected:  d.Detected,
		Statistic: d.Statistic,
		Threshold: d.Threshold,
		Detector:  d.Detector,
		TargetPfa: d.TargetPfa,
		FeatureF:  d.FeatureF,
		FeatureA:  d.FeatureA,
	}
}

// monitorStreamConfig validates the estimator selection and builds the
// per-engine streaming configuration — the single translation point
// shared by NewMonitor and NewShardedMonitor.
func monitorStreamConfig(cfg Config, opts MonitorOptions) (stream.Config, error) {
	if cfg.Estimator == "" {
		cfg.Estimator = "direct"
	}
	est, err := cfg.estimator()
	if err != nil {
		return stream.Config{}, err
	}
	if est == nil {
		return stream.Config{}, fmt.Errorf("tiledcfd: the %q path has no incremental form; "+
			"pick a streaming estimator (%s) or use Watch",
			cfg.Estimator, strings.Join(streamingEstimatorNames(), ", "))
	}
	sest, ok := est.(scf.StreamingEstimator)
	if !ok {
		return stream.Config{}, fmt.Errorf("tiledcfd: estimator %q cannot stream; pick one of %s",
			cfg.Estimator, strings.Join(streamingEstimatorNames(), ", "))
	}
	if opts.Cumulative && cfg.Estimator == "ssca" {
		return stream.Config{}, fmt.Errorf("tiledcfd: cumulative monitoring is unsupported with the ssca " +
			"estimator: its un-reset accumulator grows without bound (one strip entry per " +
			"addressed channel per sample); use windowed mode or another estimator")
	}
	dec, err := cfg.decider(opts.CFARScale)
	if err != nil {
		return stream.Config{}, err
	}
	return stream.Config{
		Estimator:       sest,
		SnapshotSamples: opts.SnapshotSamples,
		RingSamples:     opts.RingSamples,
		Workers:         opts.Workers,
		Cumulative:      opts.Cumulative,
		Block:           opts.Backpressure,
		AlphaCandidates: cfg.AlphaCandidates,
		MinAbsA:         cfg.MinAbsA,
		Threshold:       cfg.Threshold,
		CFARScale:       opts.CFARScale,
		Decider:         dec,
	}, nil
}

// NewMonitor creates a streaming sensing session. cfg selects the
// estimator and geometry exactly as for Sense (software estimators only;
// cfg.Threshold > 0 selects fixed-threshold decisions, otherwise the
// self-calibrating CFAR is used); opts configures ingestion and
// scheduling.
func NewMonitor(cfg Config, opts MonitorOptions) (*Monitor, error) {
	scfg, err := monitorStreamConfig(cfg, opts)
	if err != nil {
		return nil, err
	}
	eng, err := stream.New(scfg)
	if err != nil {
		return nil, err
	}
	for _, id := range opts.Channels {
		if err := eng.AddChannel(id); err != nil {
			eng.Close()
			return nil, err
		}
	}
	m := &Monitor{eng: eng, out: make(chan MonitorDecision, 64)}
	go func() {
		defer close(m.out)
		for d := range eng.Decisions() {
			md := toMonitorDecision(d)
			// Never stall on an unread Decisions channel: drop the
			// oldest unconsumed verdict (ChannelStats always has the
			// latest), mirroring the engine's own overflow policy and
			// counting the loss in Stats.DecisionsDropped.
			select {
			case m.out <- md:
			default:
				select {
				case <-m.out:
					m.dropped.Add(1)
				default:
				}
				select {
				case m.out <- md:
				default:
					m.dropped.Add(1)
				}
			}
		}
	}()
	return m, nil
}

// AddChannel registers a new monitored channel, pruned to the session's
// Config.AlphaCandidates when that is set.
func (m *Monitor) AddChannel(id string) error { return m.eng.AddChannel(id) }

// AddChannelCandidates registers a new monitored channel whose
// estimation is restricted to the given alpha-candidate bin offsets
// (overriding the session default; nil falls back to it).
func (m *Monitor) AddChannelCandidates(id string, alphas []int) error {
	return m.eng.AddChannelCandidates(id, alphas)
}

// Push appends samples to a channel's stream in arrival order, returning
// how many were accepted (fewer than len(samples) only in drop mode
// under overload).
func (m *Monitor) Push(id string, samples []complex128) (int, error) {
	return m.eng.Push(id, samples)
}

// Decisions returns the rolling per-channel verdicts. The channel is
// closed by Close. A slow consumer never stalls sensing; the latest
// decision per channel is always available via ChannelStats.
func (m *Monitor) Decisions() <-chan MonitorDecision { return m.out }

// Stats returns session-wide throughput and accounting figures.
func (m *Monitor) Stats() MonitorStats {
	s := m.eng.Stats()
	return MonitorStats{
		Channels:           s.Channels,
		SamplesIn:          s.SamplesIn,
		SamplesDropped:     s.SamplesDropped,
		Surfaces:           s.Surfaces,
		Detections:         s.Detections,
		DecisionsDropped:   s.DecisionsDropped + m.dropped.Load(),
		QueuedSamples:      s.QueuedSamples,
		PrunedCellsSkipped: s.PrunedCellsSkipped,
		SamplesPerSec:      s.SamplesPerSec,
		SurfacesPerSec:     s.SurfacesPerSec,
	}
}

// ChannelStats returns one channel's accounting; ok is false for an
// unknown id.
func (m *Monitor) ChannelStats(id string) (MonitorChannelStats, bool) {
	cs, ok := m.eng.ChannelStats(id)
	if !ok {
		return MonitorChannelStats{}, false
	}
	out := MonitorChannelStats{
		ID:             cs.ID,
		SamplesIn:      cs.SamplesIn,
		SamplesDropped: cs.SamplesDropped,
		Snapshots:      cs.Snapshots,
		Detections:     cs.Detections,
	}
	if cs.Last != nil {
		last := toMonitorDecision(*cs.Last)
		out.Last = &last
	}
	return out, true
}

// Flush blocks until all pushed samples are processed and due decisions
// made, or the timeout elapses — the quiesce point before reading final
// stats or closing after a batch feed.
func (m *Monitor) Flush(timeout time.Duration) error { return m.eng.Flush(timeout) }

// Close stops the session and closes Decisions. Unprocessed buffered
// samples are discarded (Flush first to avoid that). Close is
// idempotent.
func (m *Monitor) Close() error {
	var err error
	m.once.Do(func() { err = m.eng.Close() })
	return err
}

// ShardedMonitorOptions configures a NewShardedMonitor session. The
// embedded MonitorOptions apply per shard (so Workers is the worker
// count of each shard engine, and the service total is Shards×Workers).
type ShardedMonitorOptions struct {
	MonitorOptions
	// Shards is the initial local engine count (default 1 when no
	// Remotes are configured). More can be added at runtime with
	// AddShards.
	Shards int
	// Remotes are worker-process shards (cfdserve -shard-of) reached
	// over the wire protocol. Each is wrapped in a robustness layer:
	// per-push deadlines, retries with backoff and jitter, a circuit
	// breaker, heartbeat health checks, and failover that re-homes a
	// dead worker's channels onto healthy shards with counters carried.
	Remotes []RemoteShardOptions
	// Health tunes the remote robustness layer; zero fields take
	// defaults.
	Health RemoteHealthOptions
	// FallbackLocal spills channels onto a lazily created local engine
	// when every shard is down, instead of shedding their samples.
	FallbackLocal bool
	// DecisionBuffer is the capacity of the merged Decisions channel
	// (default 1024). Decisions overflowing it are dropped and counted;
	// the latest per channel stays available via ChannelStats.
	DecisionBuffer int
	// HandoffTimeout bounds one channel's quiesce during rebalancing
	// (default 30s).
	HandoffTimeout time.Duration
}

// RemoteShardOptions names one worker-process shard.
type RemoteShardOptions struct {
	// Name identifies the shard in stats and health reports (defaults to
	// the next shardN name).
	Name string
	// Addr is the worker's listen address. Required.
	Addr string
}

// RemoteHealthOptions tunes the robustness layer wrapped around every
// remote shard.
type RemoteHealthOptions struct {
	// Interval is the heartbeat cadence per remote shard (default 2s).
	Interval time.Duration
	// PushTimeout bounds one frame write to a worker (default 5s).
	PushTimeout time.Duration
	// MaxRetries is how many times a failed push is retried after a
	// reconnect (default 2).
	MaxRetries int
	// FailThreshold is the consecutive-failure count that opens a
	// worker's circuit breaker (default 3).
	FailThreshold int
	// Cooldown is how long an open circuit waits before its half-open
	// probe (default 5s).
	Cooldown time.Duration
}

// ShardDecision is one per-channel verdict of a ShardedMonitor, tagged
// with the shard that produced it.
type ShardDecision struct {
	MonitorDecision
	// Shard names the engine instance that owned the channel at decision
	// time.
	Shard string
}

// ShardInfo is one shard's public accounting within a ShardedMonitor.
type ShardInfo struct {
	// Name identifies the shard (stable across the session).
	Name string
	// Remote reports whether the shard lives in another process; Addr is
	// its dial address when it does.
	Remote bool
	// Addr is the remote worker's address ("" for local shards).
	Addr string
	// State is "ok" for a healthy shard, or the remote circuit-breaker
	// position ("half-open", "open") while degraded.
	State string
	// Channels is the number of channels the shard currently owns.
	Channels int
	// SamplesIn, Surfaces and Detections are the shard engine's lifetime
	// counters; QueuedSamples its momentary ingestion backlog.
	SamplesIn, Surfaces, Detections, QueuedSamples int64
}

// ShardedMonitorStats is session-wide ShardedMonitor accounting: live
// shards plus the banked counters of every drained shard, so totals
// never move backwards on rebalancing.
type ShardedMonitorStats struct {
	MonitorStats
	// Shards counts the live engine instances (down remotes excluded;
	// see OpenCircuits).
	Shards int
	// Handoffs counts channel ownership moves across the session.
	Handoffs int64
	// Retries counts remote push retry attempts; DeadlineExceeded the
	// pushes that overran their per-push deadline.
	Retries, DeadlineExceeded int64
	// Failovers counts dead-shard events that re-homed channels;
	// ShedSamples the samples dropped because no healthy owner could
	// take them.
	Failovers, ShedSamples int64
	// OpenCircuits counts remote shards currently failed (circuit open
	// or half-open).
	OpenCircuits int
}

// ShardedMonitorChannelStats aggregates one channel's accounting across
// every shard that ever owned it.
type ShardedMonitorChannelStats struct {
	MonitorChannelStats
	// Shard names the channel's current owner.
	Shard string
	// Handoffs counts the ownership moves this channel has been through.
	Handoffs int64
}

// ShardedMonitor is a Monitor partitioned across N engine instances:
// every channel is owned by exactly one shard, chosen by rendezvous
// hashing, so per-channel sample order and decision cadence are
// preserved while unrelated channels scale across shards. The fleet can
// be grown (AddShards) and shrunk (DrainShard) live: ownership moves by
// explicit handoff — the old shard quiesces the channel and flushes any
// partially integrated window into one final decision — so windows are
// never lost to a rebalance and never counted twice.
//
// A ShardedMonitor must be Closed when done.
type ShardedMonitor struct {
	r    *shard.Router
	out  chan ShardDecision
	once sync.Once
}

// NewShardedMonitor creates a sharded streaming sensing session. cfg
// selects the estimator and geometry exactly as for NewMonitor; opts
// adds the shard topology.
func NewShardedMonitor(cfg Config, opts ShardedMonitorOptions) (*ShardedMonitor, error) {
	scfg, err := monitorStreamConfig(cfg, opts.MonitorOptions)
	if err != nil {
		return nil, err
	}
	remotes := make([]shard.RemoteShard, len(opts.Remotes))
	for i, rc := range opts.Remotes {
		remotes[i] = shard.RemoteShard{Name: rc.Name, Addr: rc.Addr}
	}
	r, err := shard.New(shard.Config{
		Shards:  opts.Shards,
		Engine:  scfg,
		Remotes: remotes,
		Guard: shard.GuardConfig{
			HealthInterval: opts.Health.Interval,
			PushTimeout:    opts.Health.PushTimeout,
			MaxRetries:     opts.Health.MaxRetries,
			FailThreshold:  opts.Health.FailThreshold,
			Cooldown:       opts.Health.Cooldown,
		},
		FallbackLocal:  opts.FallbackLocal,
		DecisionBuffer: opts.DecisionBuffer,
		HandoffTimeout: opts.HandoffTimeout,
	})
	if err != nil {
		return nil, err
	}
	for _, id := range opts.Channels {
		if err := r.AddChannel(id); err != nil {
			r.Close()
			return nil, err
		}
	}
	m := &ShardedMonitor{r: r, out: make(chan ShardDecision, cap(r.Decisions()))}
	go func() {
		defer close(m.out)
		for d := range r.Decisions() {
			m.out <- ShardDecision{MonitorDecision: toMonitorDecision(d.Decision), Shard: d.Shard}
		}
	}()
	return m, nil
}

// AddChannel registers a channel on its rendezvous-chosen shard, pruned
// to the session's Config.AlphaCandidates when that is set.
func (m *ShardedMonitor) AddChannel(id string) error { return m.r.AddChannel(id) }

// AddChannelCandidates registers a channel on its rendezvous-chosen
// shard with an alpha-candidate set that follows the channel across
// handoffs and failovers — for remote shards the set travels in the
// wire open frame, so the worker process prunes identically.
func (m *ShardedMonitor) AddChannelCandidates(id string, alphas []int) error {
	return m.r.AddChannelCandidates(id, alphas)
}

// RemoveChannel unregisters a channel, flushing any partially integrated
// window into one final decision, and returns its aggregate accounting
// across every shard that owned it.
func (m *ShardedMonitor) RemoveChannel(id string) (ShardedMonitorChannelStats, error) {
	cs, err := m.r.RemoveChannel(id)
	if err != nil {
		return ShardedMonitorChannelStats{}, err
	}
	return toShardedChannelStats(cs), nil
}

// Push appends samples to a channel's stream on its current owner.
// Pushes to one channel serialise with each other and with rebalancing,
// so a handoff never interleaves with a half-delivered block.
func (m *ShardedMonitor) Push(id string, samples []complex128) (int, error) {
	return m.r.Push(id, samples)
}

// Decisions returns the merged rolling verdicts across all shards,
// closed by Close. A slow consumer never stalls sensing; overflowing
// decisions are dropped and counted in Stats.DecisionsDropped.
func (m *ShardedMonitor) Decisions() <-chan ShardDecision { return m.out }

// toShardedChannelStats converts the router's channel record.
func toShardedChannelStats(cs shard.ChannelStats) ShardedMonitorChannelStats {
	out := ShardedMonitorChannelStats{
		MonitorChannelStats: MonitorChannelStats{
			ID:             cs.ID,
			SamplesIn:      cs.SamplesIn,
			SamplesDropped: cs.SamplesDropped,
			Snapshots:      cs.Snapshots,
			Detections:     cs.Detections,
		},
		Shard:    cs.Shard,
		Handoffs: cs.Handoffs,
	}
	if cs.Last != nil {
		last := toMonitorDecision(*cs.Last)
		out.Last = &last
	}
	return out
}

// Stats returns session-wide accounting summed over live shards and the
// banked counters of drained ones.
func (m *ShardedMonitor) Stats() ShardedMonitorStats {
	s := m.r.Stats()
	out := ShardedMonitorStats{
		MonitorStats: MonitorStats{
			Channels:           s.Channels,
			SamplesIn:          s.SamplesIn,
			SamplesDropped:     s.SamplesDropped,
			Surfaces:           s.Surfaces,
			Detections:         s.Detections,
			DecisionsDropped:   s.DecisionsDropped,
			QueuedSamples:      s.QueuedSamples,
			PrunedCellsSkipped: s.PrunedCellsSkipped,
			SamplesPerSec:      s.SamplesPerSec,
		},
		Shards:           s.Shards,
		Handoffs:         s.Handoffs,
		Retries:          s.Retries,
		DeadlineExceeded: s.DeadlineExceeded,
		Failovers:        s.Failovers,
		ShedSamples:      s.ShedSamples,
		OpenCircuits:     s.OpenCircuits,
	}
	if sec := s.Elapsed.Seconds(); sec > 0 {
		out.SurfacesPerSec = float64(s.Surfaces) / sec
	}
	return out
}

// OpenCircuits returns the names of remote shards whose circuit breaker
// is not closed — the degraded set a health endpoint should report.
func (m *ShardedMonitor) OpenCircuits() []string { return m.r.OpenCircuits() }

// ChannelStats returns one channel's aggregate accounting across every
// owner it has had; ok is false for an unknown id.
func (m *ShardedMonitor) ChannelStats(id string) (ShardedMonitorChannelStats, bool) {
	cs, ok := m.r.ChannelStats(id)
	if !ok {
		return ShardedMonitorChannelStats{}, false
	}
	return toShardedChannelStats(cs), true
}

// Channels returns the registered channel ids (unordered).
func (m *ShardedMonitor) Channels() []string { return m.r.Channels() }

// Shards returns per-shard accounting in registration order.
func (m *ShardedMonitor) Shards() []ShardInfo {
	ss := m.r.ShardStats()
	out := make([]ShardInfo, len(ss))
	for i, s := range ss {
		out[i] = ShardInfo{
			Name:          s.Name,
			Remote:        s.Remote,
			Addr:          s.Addr,
			State:         s.State,
			Channels:      s.Channels,
			SamplesIn:     s.Stats.SamplesIn,
			Surfaces:      s.Stats.Surfaces,
			Detections:    s.Stats.Detections,
			QueuedSamples: s.Stats.QueuedSamples,
		}
	}
	return out
}

// AddShards grows the fleet by n engines and rebalances; only channels
// whose rendezvous maximum is a newcomer move. Returns the new shard
// names.
func (m *ShardedMonitor) AddShards(n int) ([]string, error) { return m.r.AddShards(n) }

// DrainShard hands every channel off the named shard to the survivors
// (flushing partial windows, preserving counters) and retires it. The
// last shard cannot be drained.
func (m *ShardedMonitor) DrainShard(name string) error { return m.r.DrainShard(name) }

// Flush blocks until every shard has processed its pushed samples and
// made its due decisions, or the timeout elapses.
func (m *ShardedMonitor) Flush(timeout time.Duration) error { return m.r.Flush(timeout) }

// Close stops every shard engine and closes Decisions. Idempotent.
func (m *ShardedMonitor) Close() error {
	var err error
	m.once.Do(func() { err = m.r.Close() })
	return err
}

// ShardWorkerOptions configures a NewShardWorker process.
type ShardWorkerOptions struct {
	// MonitorOptions configures the hosted engine's ingestion and
	// scheduling exactly as for NewMonitor.
	MonitorOptions
	// Listen is the TCP address the worker serves the wire protocol on
	// (":port" or "host:port"; a ":0" port picks a free one).
	Listen string
	// Logf, when set, receives per-connection diagnostics.
	Logf func(format string, args ...any)
}

// ShardWorker hosts one streaming engine as a remote shard for another
// process's ShardedMonitor (cfdserve worker mode, `-shard-of`). The
// parent router dials Addr, opens channels, streams samples in lossless
// cf64_le, drives the engine surface over control frames, and
// subscribes to the decision stream. When the parent's connection
// drops, the worker sweeps that connection's channels out of the engine
// so a reconnect re-opens fresh estimator state — the accepted window
// restart; the router carries the counters across incarnations.
type ShardWorker struct {
	eng  *stream.Engine
	srv  *wire.Server
	addr net.Addr
	once sync.Once
}

// shardWorkerSink adapts the hosted engine to the wire data plane. It
// keeps the worker's Config and CFAR scale so an open frame naming a
// detector can build the per-channel decider with the worker's own
// geometry and knobs.
type shardWorkerSink struct {
	eng       *stream.Engine
	cfg       Config
	cfarScale float64
}

func (s shardWorkerSink) OpenChannel(meta wire.Meta) error {
	if meta.Detector == "" {
		return s.eng.AddChannelCandidates(meta.ID, meta.AlphaCandidates)
	}
	// The parent router pinned the channel's decision layer: rebuild it
	// here from the shipped name, target Pfa and cycle set, over the
	// worker's geometry — so a remote shard decides exactly as a local
	// engine would.
	c := s.cfg
	c.Detector = meta.Detector
	if meta.TargetPfa > 0 {
		c.TargetPfa = meta.TargetPfa
	}
	if len(meta.AlphaCandidates) > 0 {
		c.AlphaCandidates = meta.AlphaCandidates
	}
	dec, err := c.decider(s.cfarScale)
	if err != nil {
		return err
	}
	return s.eng.AddChannelDecider(meta.ID, meta.AlphaCandidates, dec)
}
func (s shardWorkerSink) Push(id string, samples []complex128) (int, error) {
	return s.eng.Push(id, samples)
}

// NewShardWorker builds a bare engine from cfg/opts and serves it over
// the wire protocol's worker mode on opts.Listen.
func NewShardWorker(cfg Config, opts ShardWorkerOptions) (*ShardWorker, error) {
	scfg, err := monitorStreamConfig(cfg, opts.MonitorOptions)
	if err != nil {
		return nil, err
	}
	eng, err := stream.New(scfg)
	if err != nil {
		return nil, err
	}
	srv, err := wire.NewServer(wire.ServerConfig{
		Sink:          shardWorkerSink{eng: eng, cfg: cfg, cfarScale: opts.CFARScale},
		Engine:        eng,
		RemoveOnClose: true,
		Logf:          opts.Logf,
	})
	if err != nil {
		eng.Close()
		return nil, err
	}
	addr, err := srv.Listen(opts.Listen)
	if err != nil {
		srv.Close()
		eng.Close()
		return nil, err
	}
	return &ShardWorker{eng: eng, srv: srv, addr: addr}, nil
}

// Addr is the bound listen address the parent router should dial.
func (w *ShardWorker) Addr() net.Addr { return w.addr }

// Stats returns the hosted engine's accounting.
func (w *ShardWorker) Stats() MonitorStats {
	s := w.eng.Stats()
	return MonitorStats{
		Channels:           s.Channels,
		SamplesIn:          s.SamplesIn,
		SamplesDropped:     s.SamplesDropped,
		Surfaces:           s.Surfaces,
		Detections:         s.Detections,
		DecisionsDropped:   s.DecisionsDropped,
		QueuedSamples:      s.QueuedSamples,
		PrunedCellsSkipped: s.PrunedCellsSkipped,
		SamplesPerSec:      s.SamplesPerSec,
		SurfacesPerSec:     s.SurfacesPerSec,
	}
}

// ActiveConns reports how many parent connections are live.
func (w *ShardWorker) ActiveConns() int { return w.srv.ActiveConns() }

// Flush blocks until the engine has processed its pushed samples and
// made its due decisions, or the timeout elapses.
func (w *ShardWorker) Flush(timeout time.Duration) error { return w.eng.Flush(timeout) }

// Close stops serving and shuts the engine down. Idempotent.
func (w *ShardWorker) Close() error {
	var err error
	w.once.Do(func() {
		err = w.srv.Close()
		if cerr := w.eng.Close(); err == nil {
			err = cerr
		}
	})
	return err
}

// DSCF computes the reference (float64) Discrete Spectral Correlation
// Function of x: a (2m-1)×(2m-1) grid indexed [a+m-1][f+m-1], accumulated
// over blocks non-overlapping k-sample FFT blocks and normalised by the
// block count.
//
// DSCF is the direct-only entry point; SpectralCorrelation supersedes it
// with estimator selection (direct, FAM, SSCA) and work statistics.
func DSCF(x []complex128, k, m, blocks int) ([][]complex128, error) {
	s, _, err := scf.Compute(x, scf.Params{K: k, M: m, Blocks: blocks})
	if err != nil {
		return nil, err
	}
	return s.Data, nil
}

// SCResult is a computed spectral-correlation surface with its strongest
// cyclic feature and the work spent computing it.
type SCResult struct {
	// Estimator names the estimator that produced the surface.
	Estimator string
	// Surface is the (2M-1)×(2M-1) grid indexed [a+M-1][f+M-1].
	Surface [][]complex128
	// AlphaProfile is the cycle-frequency profile Σ_f |S_f^a| per offset.
	AlphaProfile []float64
	// FeatureF/FeatureA locate the strongest cyclic feature (a != 0).
	FeatureF, FeatureA int
	// FeatureMagnitude is that feature's magnitude.
	FeatureMagnitude float64
	// Blocks is the number of smoothing steps the estimator averaged
	// (integration blocks, channelizer hops, or strip samples).
	Blocks int
	// FFTMults and EstimatorMults count complex multiplications spent in
	// FFTs and in pointwise products respectively — the complexity
	// figures the estimator benchmarks compare.
	FFTMults, EstimatorMults int
	// ModelCycles is the modeled Montium cycle cost of a fixed-point
	// backend (zero for float estimators).
	ModelCycles int64
}

// SpectralCorrelation computes the spectral-correlation surface of x
// with the estimator selected by cfg.Estimator ("" defaults to
// "direct"; "platform" runs the full fixed-point tiled-SoC simulation).
// It supersedes DSCF, which only exposes the direct method.
func SpectralCorrelation(x []complex128, cfg Config) (*SCResult, error) {
	if cfg.Estimator == "" {
		cfg.Estimator = "direct"
	}
	est, err := cfg.estimator()
	if err != nil {
		return nil, err
	}
	var (
		s     *scf.Surface
		stats *scf.Stats
	)
	if est == nil {
		// Platform path: read the surface out of the simulated tiles.
		res, err := core.Run(x, core.Config{SoC: soc.Config{
			K: cfg.K, M: cfg.M, Q: cfg.Q,
			Blocks: cfg.Blocks, ClockMHz: cfg.ClockMHz,
		}})
		if err != nil {
			return nil, err
		}
		s = res.Surface
	} else {
		if s, stats, err = est.Estimate(x); err != nil {
			return nil, err
		}
	}
	f, a, mag := s.MaxFeature(true)
	out := &SCResult{
		Estimator:        cfg.Estimator,
		Surface:          s.Data,
		AlphaProfile:     s.AlphaProfile(),
		FeatureF:         f,
		FeatureA:         a,
		FeatureMagnitude: mag,
	}
	if stats != nil {
		out.Blocks = stats.Blocks
		out.FFTMults = stats.FFTMults
		out.EstimatorMults = stats.DSCFMults
		out.ModelCycles = stats.Cycles
	}
	return out, nil
}

// Mapping summarises a step-1 derivation for half-extent m on q cores.
type Mapping struct {
	// P is the logical processor count 2m-1; T the tasks-per-core bound.
	P, Q, T int
	// TaskRanges lists each core's half-open task interval [lo, hi).
	TaskRanges [][2]int
	// ChainRegisters is the per-chain register count of the minimal
	// structure (one per inter-PE hop).
	ChainRegisters int
	// MemoryWordsPerCore is the per-core DSCF accumulator footprint in
	// 16-bit words (2·T·F).
	MemoryWordsPerCore int
}

// DeriveMapping runs the paper's verified step-1 derivation (projections,
// space-time transform, register synthesis, folding) for half-extent m
// and q cores.
func DeriveMapping(m, q int) (*Mapping, error) {
	la, err := mapping.DeriveLineArray(m, 2)
	if err != nil {
		return nil, err
	}
	chains, err := mapping.SynthesiseChains(m)
	if err != nil {
		return nil, err
	}
	fold, err := mapping.NewFolding(la.P(), q)
	if err != nil {
		return nil, err
	}
	if err := fold.Validate(); err != nil {
		return nil, err
	}
	out := &Mapping{
		P: la.P(), Q: q, T: fold.T,
		ChainRegisters:     chains[0].Registers,
		MemoryWordsPerCore: 2 * fold.T * la.F(),
	}
	for c := 0; c < q; c++ {
		lo, hi := fold.TasksOf(c)
		out.TaskRanges = append(out.TaskRanges, [2]int{lo, hi})
	}
	return out, nil
}

// Evaluation bundles the section 5 figures for a platform of q cores
// whose integration step takes the given cycle count.
type Evaluation struct {
	// BlockTimeMicros is one integration step's duration.
	BlockTimeMicros float64
	// AnalysedBandwidthkHz is the real-time analysable band.
	AnalysedBandwidthkHz float64
	// AreaMM2 is the silicon area estimate.
	AreaMM2 float64
	// PowerMW is the power estimate.
	PowerMW float64
}

// Evaluate applies the paper's technology constants (100 MHz, 2 mm²/core,
// 500 µW/MHz) to a measured cycle count.
func Evaluate(k, q int, cyclesPerBlock int64) (*Evaluation, error) {
	if k < 1 || q < 1 || cyclesPerBlock < 1 {
		return nil, fmt.Errorf("tiledcfd: Evaluate(k=%d, q=%d, cycles=%d) needs positive arguments",
			k, q, cyclesPerBlock)
	}
	m := perf.Paper()
	bt := m.BlockTimeMicros(cyclesPerBlock)
	return &Evaluation{
		BlockTimeMicros:      bt,
		AnalysedBandwidthkHz: m.AnalysedBandwidthkHz(k, bt),
		AreaMM2:              m.AreaMM2(q),
		PowerMW:              m.PowerMW(q),
	}, nil
}

// NewBPSKBand synthesises a test band: a real BPSK carrier (normalised
// carrier frequency, samples per symbol) in real white Gaussian noise at
// the given SNR, n samples long, deterministic in seed. It is the
// licensed-user scenario used throughout the examples.
func NewBPSKBand(n int, carrierFreq float64, symbolLen int, snrDB float64, seed uint64) ([]complex128, error) {
	if n < 1 || symbolLen < 1 {
		return nil, fmt.Errorf("tiledcfd: NewBPSKBand(n=%d, symbolLen=%d) needs positive sizes", n, symbolLen)
	}
	rng := sig.NewRand(seed)
	b := &sig.BPSK{Amp: 1, Carrier: carrierFreq, SymbolLen: symbolLen, Rng: rng}
	x := sig.Samples(b, n)
	noisy, _, err := sig.AddAWGN(x, snrDB, true, rng)
	if err != nil {
		return nil, err
	}
	return noisy, nil
}

// NewNoiseBand synthesises an idle band: real white Gaussian noise of the
// given power, n samples, deterministic in seed.
func NewNoiseBand(n int, power float64, seed uint64) ([]complex128, error) {
	if n < 1 || power <= 0 {
		return nil, fmt.Errorf("tiledcfd: NewNoiseBand(n=%d, power=%v) invalid", n, power)
	}
	rng := sig.NewRand(seed)
	return sig.Samples(&sig.WGN{Sigma: math.Sqrt(power), Real: true, Rng: rng}, n), nil
}
