package tiledcfd

import (
	"fmt"
	"math"

	"tiledcfd/internal/core"
	"tiledcfd/internal/fam"
	"tiledcfd/internal/mapping"
	"tiledcfd/internal/perf"
	"tiledcfd/internal/scf"
	"tiledcfd/internal/sig"
	"tiledcfd/internal/soc"
)

// Config selects the platform geometry and detection settings for Sense.
// Zero values take the paper's configuration (K=256, M=64, Q=4 cores at
// 100 MHz, one integration block).
type Config struct {
	// K is the FFT size.
	K int
	// M is the DSCF grid half-extent: f and a span [-(M-1), M-1].
	M int
	// Q is the number of Montium tiles.
	Q int
	// Blocks is the number of K-sample integration steps.
	Blocks int
	// ClockMHz is the tile clock for the evaluation figures.
	ClockMHz float64
	// MinAbsA is the smallest |a| the blind detector searches (default 2).
	MinAbsA int
	// Threshold is the decision threshold on the CFD statistic.
	Threshold float64
	// Estimator selects how the spectral-correlation surface is
	// computed:
	//
	//   - "" or "platform": the paper's path — Q15 quantisation and the
	//     bit-true tiled-SoC simulation (cycle counts, Table 1,
	//     evaluation figures);
	//   - "direct": the float64 direct DSCF (K-point FFT plus one
	//     product per grid cell per block);
	//   - "fam": the FFT Accumulation Method (overlapping windowed
	//     channelizer, second FFT across hops);
	//   - "ssca": the Strip Spectral Correlation Analyzer (sliding
	//     channelizer, one long strip FFT per channel).
	//
	// The software estimators skip the hardware model, so hardware
	// figures (cycle breakdown, area, power) are zero; FFTMults and
	// EstimatorMults report their work instead.
	Estimator string
	// Hop is the channelizer advance in samples for the "fam" estimator
	// (0 = K/4); ignored elsewhere.
	Hop int
}

// estimator resolves the Config.Estimator name; nil means the platform
// path.
func (c Config) estimator() (scf.Estimator, error) {
	p := scf.Params{K: c.K, M: c.M, Blocks: c.Blocks}
	switch c.Estimator {
	case "", "platform":
		return nil, nil
	case "direct":
		return scf.Direct{Params: p}, nil
	case "fam":
		p.Hop = c.Hop
		return fam.FAM{Params: p}, nil
	case "ssca":
		return fam.SSCA{Params: p}, nil
	default:
		return nil, fmt.Errorf("tiledcfd: unknown estimator %q (want platform, direct, fam or ssca)", c.Estimator)
	}
}

// Sensing is the outcome of a spectrum-sensing run.
type Sensing struct {
	// Estimator names the surface path that produced the verdict
	// ("platform", "direct", "fam", "ssca").
	Estimator string
	// Detected reports whether the cyclostationary statistic exceeded the
	// threshold.
	Detected bool
	// Statistic and Threshold echo the decision inputs.
	Statistic, Threshold float64
	// FeatureF/FeatureA locate the strongest cyclic feature (a != 0).
	FeatureF, FeatureA int
	// Surface is the DSCF magnitude grid [a+M-1][f+M-1] from the platform.
	Surface [][]complex128
	// AlphaProfile is the cycle-frequency profile Σ_f |S_f^a| per offset.
	AlphaProfile []float64
	// CyclesPerBlock is the measured per-integration-step critical path.
	CyclesPerBlock int64
	// Breakdown is the measured Table 1 of the busiest tile.
	Breakdown CycleBreakdown
	// TotalMACs counts complex multiply-accumulates over all tiles/blocks.
	TotalMACs int64
	// NoCValues counts chain boundary values that crossed the inter-tile
	// network (the paper's factor-T-slower data exchange).
	NoCValues int64
	// Evaluation figures (paper section 5).
	BlockTimeMicros      float64
	AnalysedBandwidthkHz float64
	AreaMM2              float64
	PowerMW              float64
	// FFTMults and EstimatorMults count the complex multiplications a
	// software estimator spent in FFTs and in pointwise products
	// (downconversion plus cell products). Zero on the platform path,
	// which reports cycles instead.
	FFTMults, EstimatorMults int
}

// CycleBreakdown mirrors the rows of the paper's Table 1.
type CycleBreakdown struct {
	MultiplyAccumulate int64
	ReadData           int64
	FFT                int64
	Reshuffle          int64
	Initialisation     int64
	Total              int64
}

// Sense runs the full spectrum-sensing pipeline on the sampled band x
// (complex samples; real signals carry zero imaginary parts). It needs
// K·Blocks samples. The default configuration follows the paper's
// hardware path; Config.Estimator swaps in a software estimator
// (direct/fam/ssca) for the surface while keeping the decision layer
// identical.
func Sense(x []complex128, cfg Config) (*Sensing, error) {
	est, err := cfg.estimator()
	if err != nil {
		return nil, err
	}
	res, err := core.Run(x, core.Config{
		SoC: soc.Config{
			K: cfg.K, M: cfg.M, Q: cfg.Q,
			Blocks: cfg.Blocks, ClockMHz: cfg.ClockMHz,
		},
		MinAbsA:   cfg.MinAbsA,
		Threshold: cfg.Threshold,
		Estimator: est,
	})
	if err != nil {
		return nil, err
	}
	f, a, _ := res.Surface.MaxFeature(true)
	name := "platform"
	if est != nil {
		name = est.Name()
	}
	out := &Sensing{
		Estimator:    name,
		Detected:     res.Decision.Detected,
		Statistic:    res.Decision.Statistic,
		Threshold:    res.Decision.Threshold,
		FeatureF:     f,
		FeatureA:     a,
		Surface:      res.Surface.Data,
		AlphaProfile: res.Surface.AlphaProfile(),
	}
	if res.Stats != nil {
		out.FFTMults = res.Stats.FFTMults
		out.EstimatorMults = res.Stats.DSCFMults
	}
	if res.Report != nil {
		busiest := res.Report.Tiles[0].Table1
		for _, tr := range res.Report.Tiles[1:] {
			if tr.Table1.Total() > busiest.Total() {
				busiest = tr.Table1
			}
		}
		out.CyclesPerBlock = res.Report.CyclesPerBlock
		out.TotalMACs = res.Report.TotalMACs
		out.NoCValues = res.Report.NoCSent
		out.Breakdown = CycleBreakdown{
			MultiplyAccumulate: busiest.MultiplyAccumulate,
			ReadData:           busiest.ReadData,
			FFT:                busiest.FFT,
			Reshuffle:          busiest.Reshuffle,
			Initialisation:     busiest.Initialisation,
			Total:              busiest.Total(),
		}
		out.BlockTimeMicros = res.BlockTimeMicros
		out.AnalysedBandwidthkHz = res.AnalysedBandwidthkHz
		out.AreaMM2 = res.AreaMM2
		out.PowerMW = res.PowerMW
	}
	return out, nil
}

// WindowVerdict is one window's outcome of a monitored stream.
type WindowVerdict struct {
	// Window is the 0-based window index.
	Window int
	// Detected reports whether the window's statistic exceeded the
	// threshold; Statistic carries the value.
	Detected  bool
	Statistic float64
	// FeatureA is the strongest cyclic feature's offset in the window.
	FeatureA int
}

// Watch senses a continuous stream window by window (window = K·Blocks
// samples; a trailing partial window is ignored) and returns the
// per-window verdicts — the operational Cognitive-Radio mode: track when
// a licensed user appears in or vacates the band.
func Watch(stream []complex128, cfg Config) ([]WindowVerdict, error) {
	est, err := cfg.estimator()
	if err != nil {
		return nil, err
	}
	mon, err := core.NewMonitor(core.Config{
		SoC: soc.Config{
			K: cfg.K, M: cfg.M, Q: cfg.Q,
			Blocks: cfg.Blocks, ClockMHz: cfg.ClockMHz,
		},
		MinAbsA:   cfg.MinAbsA,
		Threshold: cfg.Threshold,
		Estimator: est,
	})
	if err != nil {
		return nil, err
	}
	decisions, err := mon.Process(stream)
	if err != nil {
		return nil, err
	}
	out := make([]WindowVerdict, len(decisions))
	for i, d := range decisions {
		out[i] = WindowVerdict{
			Window:    d.Window,
			Detected:  d.Decision.Detected,
			Statistic: d.Decision.Statistic,
			FeatureA:  d.FeatureA,
		}
	}
	return out, nil
}

// DSCF computes the reference (float64) Discrete Spectral Correlation
// Function of x: a (2m-1)×(2m-1) grid indexed [a+m-1][f+m-1], accumulated
// over blocks non-overlapping k-sample FFT blocks and normalised by the
// block count.
//
// DSCF is the direct-only entry point; SpectralCorrelation supersedes it
// with estimator selection (direct, FAM, SSCA) and work statistics.
func DSCF(x []complex128, k, m, blocks int) ([][]complex128, error) {
	s, _, err := scf.Compute(x, scf.Params{K: k, M: m, Blocks: blocks})
	if err != nil {
		return nil, err
	}
	return s.Data, nil
}

// SCResult is a computed spectral-correlation surface with its strongest
// cyclic feature and the work spent computing it.
type SCResult struct {
	// Estimator names the estimator that produced the surface.
	Estimator string
	// Surface is the (2M-1)×(2M-1) grid indexed [a+M-1][f+M-1].
	Surface [][]complex128
	// AlphaProfile is the cycle-frequency profile Σ_f |S_f^a| per offset.
	AlphaProfile []float64
	// FeatureF/FeatureA locate the strongest cyclic feature (a != 0) and
	// FeatureMagnitude its magnitude.
	FeatureF, FeatureA int
	FeatureMagnitude   float64
	// Blocks is the number of smoothing steps the estimator averaged
	// (integration blocks, channelizer hops, or strip samples).
	Blocks int
	// FFTMults and EstimatorMults count complex multiplications spent in
	// FFTs and in pointwise products respectively — the complexity
	// figures the estimator benchmarks compare.
	FFTMults, EstimatorMults int
}

// SpectralCorrelation computes the spectral-correlation surface of x
// with the estimator selected by cfg.Estimator ("" defaults to
// "direct"; "platform" runs the full fixed-point tiled-SoC simulation).
// It supersedes DSCF, which only exposes the direct method.
func SpectralCorrelation(x []complex128, cfg Config) (*SCResult, error) {
	if cfg.Estimator == "" {
		cfg.Estimator = "direct"
	}
	est, err := cfg.estimator()
	if err != nil {
		return nil, err
	}
	var (
		s     *scf.Surface
		stats *scf.Stats
	)
	if est == nil {
		// Platform path: read the surface out of the simulated tiles.
		res, err := core.Run(x, core.Config{SoC: soc.Config{
			K: cfg.K, M: cfg.M, Q: cfg.Q,
			Blocks: cfg.Blocks, ClockMHz: cfg.ClockMHz,
		}})
		if err != nil {
			return nil, err
		}
		s = res.Surface
	} else {
		if s, stats, err = est.Estimate(x); err != nil {
			return nil, err
		}
	}
	f, a, mag := s.MaxFeature(true)
	out := &SCResult{
		Estimator:        cfg.Estimator,
		Surface:          s.Data,
		AlphaProfile:     s.AlphaProfile(),
		FeatureF:         f,
		FeatureA:         a,
		FeatureMagnitude: mag,
	}
	if stats != nil {
		out.Blocks = stats.Blocks
		out.FFTMults = stats.FFTMults
		out.EstimatorMults = stats.DSCFMults
	}
	return out, nil
}

// Mapping summarises a step-1 derivation for half-extent m on q cores.
type Mapping struct {
	// P is the logical processor count 2m-1; T the tasks-per-core bound.
	P, Q, T int
	// TaskRanges lists each core's half-open task interval [lo, hi).
	TaskRanges [][2]int
	// ChainRegisters is the per-chain register count of the minimal
	// structure (one per inter-PE hop).
	ChainRegisters int
	// MemoryWordsPerCore is the per-core DSCF accumulator footprint in
	// 16-bit words (2·T·F).
	MemoryWordsPerCore int
}

// DeriveMapping runs the paper's verified step-1 derivation (projections,
// space-time transform, register synthesis, folding) for half-extent m
// and q cores.
func DeriveMapping(m, q int) (*Mapping, error) {
	la, err := mapping.DeriveLineArray(m, 2)
	if err != nil {
		return nil, err
	}
	chains, err := mapping.SynthesiseChains(m)
	if err != nil {
		return nil, err
	}
	fold, err := mapping.NewFolding(la.P(), q)
	if err != nil {
		return nil, err
	}
	if err := fold.Validate(); err != nil {
		return nil, err
	}
	out := &Mapping{
		P: la.P(), Q: q, T: fold.T,
		ChainRegisters:     chains[0].Registers,
		MemoryWordsPerCore: 2 * fold.T * la.F(),
	}
	for c := 0; c < q; c++ {
		lo, hi := fold.TasksOf(c)
		out.TaskRanges = append(out.TaskRanges, [2]int{lo, hi})
	}
	return out, nil
}

// Evaluation bundles the section 5 figures for a platform of q cores
// whose integration step takes the given cycle count.
type Evaluation struct {
	BlockTimeMicros      float64
	AnalysedBandwidthkHz float64
	AreaMM2              float64
	PowerMW              float64
}

// Evaluate applies the paper's technology constants (100 MHz, 2 mm²/core,
// 500 µW/MHz) to a measured cycle count.
func Evaluate(k, q int, cyclesPerBlock int64) (*Evaluation, error) {
	if k < 1 || q < 1 || cyclesPerBlock < 1 {
		return nil, fmt.Errorf("tiledcfd: Evaluate(k=%d, q=%d, cycles=%d) needs positive arguments",
			k, q, cyclesPerBlock)
	}
	m := perf.Paper()
	bt := m.BlockTimeMicros(cyclesPerBlock)
	return &Evaluation{
		BlockTimeMicros:      bt,
		AnalysedBandwidthkHz: m.AnalysedBandwidthkHz(k, bt),
		AreaMM2:              m.AreaMM2(q),
		PowerMW:              m.PowerMW(q),
	}, nil
}

// NewBPSKBand synthesises a test band: a real BPSK carrier (normalised
// carrier frequency, samples per symbol) in real white Gaussian noise at
// the given SNR, n samples long, deterministic in seed. It is the
// licensed-user scenario used throughout the examples.
func NewBPSKBand(n int, carrierFreq float64, symbolLen int, snrDB float64, seed uint64) ([]complex128, error) {
	if n < 1 || symbolLen < 1 {
		return nil, fmt.Errorf("tiledcfd: NewBPSKBand(n=%d, symbolLen=%d) needs positive sizes", n, symbolLen)
	}
	rng := sig.NewRand(seed)
	b := &sig.BPSK{Amp: 1, Carrier: carrierFreq, SymbolLen: symbolLen, Rng: rng}
	x := sig.Samples(b, n)
	noisy, _, err := sig.AddAWGN(x, snrDB, true, rng)
	if err != nil {
		return nil, err
	}
	return noisy, nil
}

// NewNoiseBand synthesises an idle band: real white Gaussian noise of the
// given power, n samples, deterministic in seed.
func NewNoiseBand(n int, power float64, seed uint64) ([]complex128, error) {
	if n < 1 || power <= 0 {
		return nil, fmt.Errorf("tiledcfd: NewNoiseBand(n=%d, power=%v) invalid", n, power)
	}
	rng := sig.NewRand(seed)
	return sig.Samples(&sig.WGN{Sigma: math.Sqrt(power), Real: true, Rng: rng}, n), nil
}
