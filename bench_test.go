package tiledcfd

// This file is the benchmark harness of the reproduction: one benchmark
// per experiment of the docs/PAPER_MAPPING.md index (E1–E13), each regenerating the
// corresponding table, figure or claim of the paper and reporting the
// measured values as benchmark metrics. Paper targets appear as
// "paper_*" metrics next to the measured ones so bench output reads as a
// reproduction record.
//
// Run: go test -bench=. -benchmem .

import (
	"math"
	"testing"

	"tiledcfd/internal/detect"
	"tiledcfd/internal/dg"
	"tiledcfd/internal/fam"
	"tiledcfd/internal/fixed"
	"tiledcfd/internal/mapping"
	"tiledcfd/internal/montium"
	"tiledcfd/internal/perf"
	"tiledcfd/internal/scf"
	"tiledcfd/internal/sig"
	"tiledcfd/internal/soc"
	"tiledcfd/internal/systolic"
)

// paperSignal builds a deterministic licensed-user band at the paper's
// block size.
func paperSignal(b *testing.B, blocks int) []complex128 {
	b.Helper()
	x, err := NewBPSKBand(256*blocks, 32.0/256, 8, 10, 42)
	if err != nil {
		b.Fatal(err)
	}
	return x
}

// BenchmarkE1_ComplexityRatio reproduces the section 2 claim: computing
// the DSCF of a 256-point spectrum takes ~16x the complex multiplications
// of the FFT itself (measured: 16129 vs 1024 per block, ratio 15.75).
func BenchmarkE1_ComplexityRatio(b *testing.B) {
	x := paperSignal(b, 1)
	var stats *scf.Stats
	for i := 0; i < b.N; i++ {
		var err error
		_, stats, err = scf.Compute(x, scf.Params{K: 256, M: 64})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(stats.DSCFMults), "dscf_mults")
	b.ReportMetric(float64(stats.FFTMults), "fft_mults")
	b.ReportMetric(stats.Ratio(), "ratio")
	b.ReportMetric(16, "paper_ratio")
}

// BenchmarkE2_DGBuild reproduces the Figure 1/2 dependence-graph
// structure: 127x127 multiply-accumulate nodes per integration plane,
// accumulation edges (0,0,1) between planes.
func BenchmarkE2_DGBuild(b *testing.B) {
	var g *dg.Graph
	for i := 0; i < b.N; i++ {
		var err error
		g, err = dg.BuildDSCF3D(64, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(g.Nodes)), "nodes")
	b.ReportMetric(float64(len(g.Edges)), "accum_edges")
	b.ReportMetric(127*127*2, "paper_nodes")
}

// BenchmarkE3_Step1Projections reproduces the expression 4/5 projections:
// the verified derivation of the 127-PE line array (Figures 3/4).
func BenchmarkE3_Step1Projections(b *testing.B) {
	var la *mapping.LineArray
	for i := 0; i < b.N; i++ {
		var err error
		la, err = mapping.DeriveLineArray(64, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(la.P()), "processors")
	b.ReportMetric(127, "paper_processors")
}

// BenchmarkE4_SpaceTimeMapping reproduces Figure 5 and the section 3.2
// composition law: the space-time transform collapses each diagonal
// family onto one shared register trajectory.
func BenchmarkE4_SpaceTimeMapping(b *testing.B) {
	var usages int
	for i := 0; i < b.N; i++ {
		if err := mapping.VerifyComposition(); err != nil {
			b.Fatal(err)
		}
		if _, _, err := mapping.SharedTrajectory(64, mapping.XConjChain); err != nil {
			b.Fatal(err)
		}
		if _, _, err := mapping.SharedTrajectory(64, mapping.XChain); err != nil {
			b.Fatal(err)
		}
		usages = len(mapping.SpaceTimeDiagram(64, mapping.XConjChain))
	}
	b.ReportMetric(float64(usages), "usage_points")
}

// BenchmarkE5_SystolicFull runs one integration step on the unfolded
// Figure 7 array (127 PEs, two counter-flowing chains) and verifies the
// operation counts (16129 MACs, 126 shifts, 127 initial loads).
func BenchmarkE5_SystolicFull(b *testing.B) {
	x := fixed.FromFloatSlice(paperSignal(b, 1))
	spectra, err := scf.FixedSpectra(x, scf.Params{K: 256, M: 64})
	if err != nil {
		b.Fatal(err)
	}
	var macs, shifts, loads int64
	for i := 0; i < b.N; i++ {
		ar, err := systolic.NewFixedArray(64)
		if err != nil {
			b.Fatal(err)
		}
		if err := ar.ProcessBlock(spectra[0]); err != nil {
			b.Fatal(err)
		}
		macs, shifts, loads = ar.Ops()
	}
	b.ReportMetric(float64(macs), "macs")
	b.ReportMetric(float64(shifts), "shifts")
	b.ReportMetric(float64(loads), "init_loads")
	b.ReportMetric(127, "paper_init_loads")
}

// BenchmarkE6_SystolicFolded runs one integration step on the folded
// Figure 9 architecture (Q=4, T=32) and reports the per-core task loads
// of expression 8/9.
func BenchmarkE6_SystolicFolded(b *testing.B) {
	x := fixed.FromFloatSlice(paperSignal(b, 1))
	spectra, err := scf.FixedSpectra(x, scf.Params{K: 256, M: 64})
	if err != nil {
		b.Fatal(err)
	}
	var stats []systolic.CoreStats
	for i := 0; i < b.N; i++ {
		fa, err := systolic.NewFoldedArray(64, 4)
		if err != nil {
			b.Fatal(err)
		}
		if err := fa.ProcessBlock(spectra[0]); err != nil {
			b.Fatal(err)
		}
		stats = fa.Stats()
	}
	b.ReportMetric(float64(stats[0].Tasks), "tasks_core0")
	b.ReportMetric(float64(stats[3].Tasks), "tasks_core3")
	b.ReportMetric(32, "paper_T")
}

// BenchmarkE7_MemoryFootprint reproduces the section 4.1 memory argument:
// T·F = 4064 complex accumulators = 8128 words fit the 8K-word M01..M08.
func BenchmarkE7_MemoryFootprint(b *testing.B) {
	var cfg *montium.CFDConfig
	for i := 0; i < b.N; i++ {
		var err error
		cfg, err = montium.NewCFDConfig(256, 64, 4, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cfg.AccumWordsUsed()), "accum_words")
	b.ReportMetric(float64(montium.AccumCapacityWords), "capacity_words")
	b.ReportMetric(float64(fixed.DynamicRangeDB(16)), "dynamic_range_db")
	b.ReportMetric(96, "paper_dynamic_range_db")
}

// BenchmarkE8_Table1 measures the paper's Table 1 by executing one full
// integration step on the 4-tile platform and reading the busiest tile's
// cycle ledger.
func BenchmarkE8_Table1(b *testing.B) {
	x := fixed.FromFloatSlice(paperSignal(b, 1))
	var t1 montium.Table1
	for i := 0; i < b.N; i++ {
		p, err := soc.New(soc.Config{K: 256, M: 64, Q: 4, Blocks: 1})
		if err != nil {
			b.Fatal(err)
		}
		_, report, err := p.Run(x)
		if err != nil {
			b.Fatal(err)
		}
		t1 = report.Tiles[0].Table1
	}
	b.ReportMetric(float64(t1.MultiplyAccumulate), "mac_cycles")
	b.ReportMetric(float64(t1.ReadData), "read_data_cycles")
	b.ReportMetric(float64(t1.FFT), "fft_cycles")
	b.ReportMetric(float64(t1.Reshuffle), "reshuffle_cycles")
	b.ReportMetric(float64(t1.Initialisation), "init_cycles")
	b.ReportMetric(float64(t1.Total()), "total_cycles")
	b.ReportMetric(13996, "paper_total_cycles")
}

// BenchmarkE9_IntegrationStep reproduces the headline: one 256-point
// spectrum + 127x127 DSCF integration step in 139.96 µs at 100 MHz,
// analysing ~915 kHz of bandwidth.
func BenchmarkE9_IntegrationStep(b *testing.B) {
	x := paperSignal(b, 1)
	var s *Sensing
	for i := 0; i < b.N; i++ {
		var err error
		s, err = Sense(x, Config{Blocks: 1, Threshold: 0.3})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(s.BlockTimeMicros, "block_time_us")
	b.ReportMetric(139.96, "paper_block_time_us")
	b.ReportMetric(s.AnalysedBandwidthkHz, "bandwidth_khz")
	b.ReportMetric(915, "paper_bandwidth_khz")
}

// BenchmarkE10_CostModel reproduces the section 5 area and power figures:
// 8 mm² and 200 mW for the 4-Montium platform.
func BenchmarkE10_CostModel(b *testing.B) {
	var e *Evaluation
	for i := 0; i < b.N; i++ {
		var err error
		e, err = Evaluate(256, 4, 13996)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(e.AreaMM2, "area_mm2")
	b.ReportMetric(8, "paper_area_mm2")
	b.ReportMetric(e.PowerMW, "power_mw")
	b.ReportMetric(200, "paper_power_mw")
}

// BenchmarkE11_ScalingSweep reproduces the section 5 linear-scaling claim
// across 1, 2, 4 and 8 platform instances.
func BenchmarkE11_ScalingSweep(b *testing.B) {
	var rows []perf.ScalingRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = perf.Paper().ScalingTable(4, 13996, 256, []int{1, 2, 4, 8})
		if err != nil {
			b.Fatal(err)
		}
		if !perf.IsLinear(rows) {
			b.Fatal("scaling not linear")
		}
	}
	b.ReportMetric(rows[3].BandwidthkHz, "bandwidth_khz_8x")
	b.ReportMetric(rows[3].AreaMM2, "area_mm2_8x")
	b.ReportMetric(rows[3].PowerMW, "power_mw_8x")
}

// BenchmarkE12_NoCTraffic reproduces the section 4 claim that inter-core
// data exchange runs a factor ~T lower than the computation rate,
// measured from the NoC counters of a full platform run.
func BenchmarkE12_NoCTraffic(b *testing.B) {
	x := fixed.FromFloatSlice(paperSignal(b, 1))
	var macs, sent int64
	for i := 0; i < b.N; i++ {
		p, err := soc.New(soc.Config{K: 256, M: 64, Q: 4, Blocks: 1})
		if err != nil {
			b.Fatal(err)
		}
		_, report, err := p.Run(x)
		if err != nil {
			b.Fatal(err)
		}
		macs, sent = report.TotalMACs, report.NoCSent
	}
	b.ReportMetric(float64(macs), "macs")
	b.ReportMetric(float64(sent), "noc_values")
	b.ReportMetric(float64(macs)/float64(sent), "compute_comm_ratio")
	b.ReportMetric(32, "paper_T")
}

// BenchmarkE13_DetectorSweep reproduces the motivation experiment: blind
// CFD vs the energy-detector baseline on a -4 dB BPSK user under ±2 dB
// noise-level uncertainty, both calibrated to a 10% false-alarm rate.
func BenchmarkE13_DetectorSweep(b *testing.B) {
	const k, m, blocks, trials = 64, 16, 32, 50
	params := scf.Params{K: k, M: m, Blocks: blocks}
	nominal := 0.5 / math.Pow(10, -4.0/10) // BPSK power 0.5 at -4 dB SNR
	sc := func(rng *sig.Rand, present bool) []complex128 {
		du := 2 * (2*rng.Float64() - 1)
		actual := nominal * math.Pow(10, du/10)
		noise := sig.Samples(&sig.WGN{Sigma: math.Sqrt(actual), Real: true, Rng: rng}, k*blocks)
		if !present {
			return noise
		}
		s := sig.Samples(&sig.BPSK{Amp: 1, Carrier: 8.0 / k, SymbolLen: 8, Rng: rng}, k*blocks)
		for i := range s {
			s[i] += noise[i]
		}
		return s
	}
	var pdCFD, pdEnergy float64
	for i := 0; i < b.N; i++ {
		cfd := detect.CFDDetector{Params: params, MinAbsA: 2}
		energy := detect.EnergyDetector{AssumedNoisePower: nominal}
		thC, err := detect.CalibrateThreshold(cfd, sc, trials, 0.1, 101)
		if err != nil {
			b.Fatal(err)
		}
		pdCFD, _, err = detect.PdAtThreshold(cfd, sc, trials, thC, 102)
		if err != nil {
			b.Fatal(err)
		}
		thE, err := detect.CalibrateThreshold(energy, sc, trials, 0.1, 103)
		if err != nil {
			b.Fatal(err)
		}
		pdEnergy, _, err = detect.PdAtThreshold(energy, sc, trials, thE, 104)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pdCFD, "pd_cfd")
	b.ReportMetric(pdEnergy, "pd_energy")
}

// BenchmarkE14_EstimatorComparison extends the section 2 complexity
// comparison beyond the paper: the direct DSCF against the FAM and SSCA
// time-smoothing estimators on the same licensed-user band at the
// paper's geometry (K=256, M=64). Each sub-benchmark reports wall-clock
// per estimate and the complex multiplications spent in FFTs and in
// pointwise products. The direct method is cheapest on the paper's
// fixed (2M-1)² grid; FAM and SSCA buy cycle-frequency resolution
// (1/(P·L) and 1/N versus the direct 2/K) with their extra transforms.
func BenchmarkE14_EstimatorComparison(b *testing.B) {
	const blocks = 8
	band := paperSignal(b, blocks)
	p := scf.Params{K: 256, M: 64}
	direct := p
	direct.Blocks = blocks
	for _, e := range []scf.Estimator{
		scf.Direct{Params: direct},
		fam.FAM{Params: p},
		fam.SSCA{Params: p},
	} {
		b.Run(e.Name(), func(b *testing.B) {
			var stats *scf.Stats
			for i := 0; i < b.N; i++ {
				_, st, err := e.Estimate(band)
				if err != nil {
					b.Fatal(err)
				}
				stats = st
			}
			b.ReportMetric(float64(stats.FFTMults), "fft_mults")
			b.ReportMetric(float64(stats.DSCFMults), "pointwise_mults")
			b.ReportMetric(float64(stats.TotalMults()), "total_mults")
		})
	}
}
