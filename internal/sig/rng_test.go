package sig

import (
	"math"
	"testing"
)

func TestRandDeterministic(t *testing.T) {
	a := NewRand(42)
	b := NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRandDifferentSeedsDiffer(t *testing.T) {
	a := NewRand(1)
	b := NewRand(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestRandZeroSeedWorks(t *testing.T) {
	r := NewRand(0)
	// splitmix expansion must not leave the all-zero state (which would
	// make xoshiro emit only zeros).
	nonzero := false
	for i := 0; i < 10; i++ {
		if r.Uint64() != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("zero seed produced all-zero stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRand(99)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean %v, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRand(1234)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v, want ~1", variance)
	}
}

func TestNormComplexPower(t *testing.T) {
	r := NewRand(5)
	const n = 100000
	var p float64
	for i := 0; i < n; i++ {
		v := r.NormComplex(1 / math.Sqrt2) // E|x|^2 = 1
		p += real(v)*real(v) + imag(v)*imag(v)
	}
	p /= n
	if math.Abs(p-1) > 0.03 {
		t.Fatalf("complex noise power %v, want ~1", p)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRand(3)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) visited only %d values", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestBitIsPlusMinusOne(t *testing.T) {
	r := NewRand(11)
	plus, minus := 0, 0
	for i := 0; i < 10000; i++ {
		switch r.Bit() {
		case 1:
			plus++
		case -1:
			minus++
		default:
			t.Fatal("Bit returned non ±1")
		}
	}
	if plus < 4700 || minus < 4700 {
		t.Fatalf("biased bits: +%d -%d", plus, minus)
	}
}
