package sig

import (
	"fmt"
	"math"
)

// Channel wraps any Source with composable channel effects, applied in
// physical order: a static multipath FIR channel, then a carrier
// frequency offset rotation, after an initial timing offset that
// discards the first samples of the underlying stream. A zero-value
// field disables its effect, so the wrapper is safe to apply
// unconditionally and sweeps can toggle impairments independently.
// (The batch-mode Impairments in pulse.go predates this wrapper and
// remains for slice-at-a-time use; Channel is the streaming form that
// composes with any Source.)
type Channel struct {
	Src Source // underlying clean-signal generator; required
	// Multipath are the complex FIR channel taps h[0..L-1]; y(t) =
	// Σ h[l]·x(t−l). Empty or a single unit tap means no multipath.
	Multipath []complex128
	// CFO is the carrier frequency offset in cycles per sample; the
	// output is rotated by e^{j2π·CFO·t}.
	CFO float64
	// TimingOffset discards that many samples from the source before the
	// first output sample, modelling an unknown symbol-timing phase.
	TimingOffset int

	k       int          // post-offset sample index, drives the CFO rotation
	hist    []complex128 // last len(Multipath)-1 raw samples, FIR state
	skipped bool
}

// Generate appends n impaired samples.
func (im *Channel) Generate(dst []complex128, n int) []complex128 {
	if im.Src == nil {
		panic("sig: Channel needs a Src")
	}
	if im.TimingOffset < 0 {
		panic(fmt.Sprintf("sig: Channel timing offset %d negative", im.TimingOffset))
	}
	if !im.skipped {
		if im.TimingOffset > 0 {
			im.Src.Generate(make([]complex128, 0, im.TimingOffset), im.TimingOffset)
		}
		im.skipped = true
	}
	raw := im.Src.Generate(make([]complex128, 0, n), n)
	taps := im.Multipath
	if len(taps) > 1 {
		raw = im.fir(raw, taps)
	} else if len(taps) == 1 {
		for i := range raw {
			raw[i] *= taps[0]
		}
	}
	if im.CFO != 0 {
		for i := range raw {
			sn, cs := math.Sincos(2 * math.Pi * im.CFO * float64(im.k+i))
			raw[i] *= complex(cs, sn)
		}
	}
	im.k += n
	return append(dst, raw...)
}

// fir convolves the block with the channel taps, carrying the tail of
// the previous block as history so the channel is continuous across
// Generate calls.
func (im *Channel) fir(raw, taps []complex128) []complex128 {
	order := len(taps) - 1
	if im.hist == nil {
		im.hist = make([]complex128, order)
	}
	ext := make([]complex128, 0, order+len(raw))
	ext = append(ext, im.hist...)
	ext = append(ext, raw...)
	out := make([]complex128, len(raw))
	for i := range out {
		var sum complex128
		for l, h := range taps {
			sum += h * ext[order+i-l]
		}
		out[i] = sum
	}
	copy(im.hist, ext[len(ext)-order:])
	return out
}
