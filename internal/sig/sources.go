package sig

import (
	"fmt"
	"math"
)

// Source produces sampled complex signals. Generate appends n samples to
// dst and returns the extended slice; successive calls continue the signal
// (generators carry phase/symbol state).
type Source interface {
	// Generate appends n samples and returns the extended slice.
	Generate(dst []complex128, n int) []complex128
}

// Samples is a convenience helper collecting n samples from a source into
// a fresh slice.
func Samples(s Source, n int) []complex128 {
	return s.Generate(make([]complex128, 0, n), n)
}

// Tone is a complex exponential carrier: amp·e^{j(2πf·k + φ)}. With
// Real=true it produces the real cosine amp·cos(2πf·k + φ) instead, which
// is the passband form whose spectrum is conjugate-symmetric.
type Tone struct {
	Amp   float64 // carrier amplitude
	Freq  float64 // cycles per sample
	Phase float64 // radians
	Real  bool    // emit the real cosine instead of the complex exponential
	k     int
}

// Generate appends n samples of the tone.
func (t *Tone) Generate(dst []complex128, n int) []complex128 {
	for i := 0; i < n; i++ {
		arg := 2*math.Pi*t.Freq*float64(t.k) + t.Phase
		if t.Real {
			dst = append(dst, complex(t.Amp*math.Cos(arg), 0))
		} else {
			dst = append(dst, complex(t.Amp*math.Cos(arg), t.Amp*math.Sin(arg)))
		}
		t.k++
	}
	return dst
}

// AM is an amplitude-modulated real carrier:
// amp·(1 + depth·cos(2πf_mod·k))·cos(2πf_c·k + φ). AM exhibits strong
// cyclostationarity at cycle frequencies 2·f_c and 2·f_c ± f_mod.
type AM struct {
	Amp     float64 // carrier amplitude
	Carrier float64 // cycles per sample
	ModFreq float64 // cycles per sample
	Depth   float64 // modulation index in [0,1]
	Phase   float64 // carrier phase in radians
	k       int
}

// Generate appends n samples of the AM signal.
func (a *AM) Generate(dst []complex128, n int) []complex128 {
	for i := 0; i < n; i++ {
		env := 1 + a.Depth*math.Cos(2*math.Pi*a.ModFreq*float64(a.k))
		dst = append(dst, complex(a.Amp*env*math.Cos(2*math.Pi*a.Carrier*float64(a.k)+a.Phase), 0))
		a.k++
	}
	return dst
}

// BPSK is a binary phase-shift keyed carrier with rectangular pulses:
// amp·b_m·cos(2πf_c·k + φ) with b_m ∈ {±1} and m = ⌊k/SymbolLen⌋.
// Real BPSK has cyclic features at α = k/T_sym and at α = 2f_c ± k/T_sym;
// the doubled-carrier line at 2f_c is the feature classic CFD detectors
// key on (Enserink & Cochran, ref [2] of the paper).
type BPSK struct {
	Amp       float64 // carrier amplitude
	Carrier   float64 // cycles per sample
	SymbolLen int     // samples per symbol
	Phase     float64 // carrier phase in radians
	Rng       *Rand   // symbol source; required
	k         int
	sym       float64
}

// Generate appends n samples of the BPSK signal. It panics if Rng is nil
// or SymbolLen is not positive, which are programming errors.
func (b *BPSK) Generate(dst []complex128, n int) []complex128 {
	if b.Rng == nil {
		panic("sig: BPSK needs a Rng")
	}
	if b.SymbolLen <= 0 {
		panic(fmt.Sprintf("sig: BPSK SymbolLen %d must be positive", b.SymbolLen))
	}
	for i := 0; i < n; i++ {
		if b.k%b.SymbolLen == 0 {
			b.sym = b.Rng.Bit()
		}
		arg := 2*math.Pi*b.Carrier*float64(b.k) + b.Phase
		dst = append(dst, complex(b.Amp*b.sym*math.Cos(arg), 0))
		b.k++
	}
	return dst
}

// QPSK is a quadrature phase-shift keyed carrier with rectangular pulses:
// amp·(i_m·cos(2πf_c·k+φ) − q_m·sin(2πf_c·k+φ)). QPSK suppresses the
// doubled-carrier feature of BPSK but keeps symbol-rate features — the
// textbook pair for showing that CFD can also discriminate modulations.
type QPSK struct {
	Amp       float64 // carrier amplitude
	Carrier   float64 // cycles per sample
	SymbolLen int     // samples per symbol
	Phase     float64 // carrier phase in radians
	Rng       *Rand   // symbol source; required
	k         int
	i, q      float64
}

// Generate appends n samples of the QPSK signal. It panics if Rng is nil
// or SymbolLen is not positive.
func (b *QPSK) Generate(dst []complex128, n int) []complex128 {
	if b.Rng == nil {
		panic("sig: QPSK needs a Rng")
	}
	if b.SymbolLen <= 0 {
		panic(fmt.Sprintf("sig: QPSK SymbolLen %d must be positive", b.SymbolLen))
	}
	inv := 1 / math.Sqrt2
	for i := 0; i < n; i++ {
		if b.k%b.SymbolLen == 0 {
			b.i = b.Rng.Bit() * inv
			b.q = b.Rng.Bit() * inv
		}
		arg := 2*math.Pi*b.Carrier*float64(b.k) + b.Phase
		dst = append(dst, complex(b.Amp*(b.i*math.Cos(arg)-b.q*math.Sin(arg)), 0))
		b.k++
	}
	return dst
}

// WGN is white Gaussian noise. With Real=true the imaginary part is zero
// and Sigma is the real-sample standard deviation; otherwise the noise is
// circularly symmetric complex with per-component deviation Sigma/√2 so
// that E|x|² = Sigma².
type WGN struct {
	Sigma float64 // total standard deviation: E|x|² = Sigma²
	Real  bool    // real-valued noise instead of circular complex
	Rng   *Rand   // sample source; required
}

// Generate appends n noise samples. It panics if Rng is nil.
func (w *WGN) Generate(dst []complex128, n int) []complex128 {
	if w.Rng == nil {
		panic("sig: WGN needs a Rng")
	}
	for i := 0; i < n; i++ {
		if w.Real {
			dst = append(dst, complex(w.Sigma*w.Rng.NormFloat64(), 0))
		} else {
			dst = append(dst, w.Rng.NormComplex(w.Sigma/math.Sqrt2))
		}
	}
	return dst
}

// Mix sums several sources sample by sample.
type Mix struct {
	Sources []Source // summed generators; all advance in lockstep
}

// Generate appends n summed samples.
func (m *Mix) Generate(dst []complex128, n int) []complex128 {
	parts := make([][]complex128, len(m.Sources))
	for i, s := range m.Sources {
		parts[i] = s.Generate(nil, n)
	}
	for k := 0; k < n; k++ {
		var sum complex128
		for i := range parts {
			sum += parts[i][k]
		}
		dst = append(dst, sum)
	}
	return dst
}

// Silence produces all-zero samples (an idle band).
type Silence struct{}

// Generate appends n zero samples.
func (Silence) Generate(dst []complex128, n int) []complex128 {
	for i := 0; i < n; i++ {
		dst = append(dst, 0)
	}
	return dst
}
