package sig

import (
	"fmt"
	"math"
	"math/cmplx"
)

// OFDM generates a cyclic-prefixed OFDM signal: per symbol, random QPSK
// values on the active subcarriers are transformed to time domain (an
// inverse DFT; NFFT need not be a power of two) and a cyclic prefix is
// prepended. The cyclic prefix correlates the symbol tail with its head,
// producing cyclostationarity at cycle frequencies k/T_sym
// (T_sym = NFFT+CP samples) — the feature a blind CFD detector keys on
// for modern licensed users (DVB-T, Wi-Fi, LTE), complementing the
// paper's BPSK/AM scenarios. For the spectral-correlation detectors,
// choose T_sym so that the analysis FFT size K is a multiple of it; the
// cyclic features then land exactly on DSCF grid offsets a = k·K/(2·T_sym).
//
// The signal is complex baseband; mix with a real carrier via Impairments
// or use directly. Generation is symbol-quantised: Generate always emits
// whole symbols, padding the request up to the next boundary internally
// and carrying the remainder over to the next call.
type OFDM struct {
	Amp        float64 // time-domain amplitude scale
	NFFT       int     // subcarriers (power of two >= 4)
	CP         int     // cyclic prefix length in samples (>= 1)
	ActiveLow  int     // first active subcarrier index (>= 1 to skip DC)
	ActiveHigh int     // last active subcarrier index (inclusive)
	Rng        *Rand   // QPSK data source; required

	buf []complex128 // leftover samples of the last generated symbol
}

// SymbolLen returns the full symbol length NFFT+CP.
func (o *OFDM) SymbolLen() int { return o.NFFT + o.CP }

// validate panics on structural misuse, like the other sources.
func (o *OFDM) validate() {
	if o.Rng == nil {
		panic("sig: OFDM needs a Rng")
	}
	if o.NFFT < 4 {
		panic(fmt.Sprintf("sig: OFDM NFFT %d must be >= 4", o.NFFT))
	}
	if o.CP < 1 || o.CP >= o.NFFT {
		panic(fmt.Sprintf("sig: OFDM CP %d must be in [1, NFFT)", o.CP))
	}
	if o.ActiveLow < 0 || o.ActiveHigh < o.ActiveLow || o.ActiveHigh >= o.NFFT {
		panic(fmt.Sprintf("sig: OFDM active range [%d,%d] invalid", o.ActiveLow, o.ActiveHigh))
	}
}

// Generate appends n samples of the OFDM stream.
func (o *OFDM) Generate(dst []complex128, n int) []complex128 {
	o.validate()
	for n > 0 {
		if len(o.buf) == 0 {
			o.buf = o.nextSymbol()
		}
		take := n
		if take > len(o.buf) {
			take = len(o.buf)
		}
		dst = append(dst, o.buf[:take]...)
		o.buf = o.buf[take:]
		n -= take
	}
	return dst
}

// nextSymbol builds one CP-prefixed OFDM symbol by direct inverse DFT of
// the QPSK-loaded subcarriers (NFFT is small; O(N²) keeps this package
// free of an fft dependency cycle).
func (o *OFDM) nextSymbol() []complex128 {
	spec := make([]complex128, o.NFFT)
	inv := 1 / math.Sqrt2
	for sc := o.ActiveLow; sc <= o.ActiveHigh; sc++ {
		spec[sc] = complex(o.Rng.Bit()*inv, o.Rng.Bit()*inv)
	}
	body := make([]complex128, o.NFFT)
	scale := o.Amp / math.Sqrt(float64(o.ActiveHigh-o.ActiveLow+1))
	for t := 0; t < o.NFFT; t++ {
		var sum complex128
		for sc := o.ActiveLow; sc <= o.ActiveHigh; sc++ {
			sum += spec[sc] * cmplx.Exp(complex(0, 2*math.Pi*float64(sc)*float64(t)/float64(o.NFFT)))
		}
		body[t] = sum * complex(scale, 0)
	}
	sym := make([]complex128, 0, o.SymbolLen())
	sym = append(sym, body[o.NFFT-o.CP:]...) // cyclic prefix
	return append(sym, body...)
}

// CPAutocorrelation measures the normalised cyclic-prefix correlation of
// x: the magnitude of the lag-NFFT autocorrelation restricted to CP
// positions, divided by the signal power. OFDM with a cyclic prefix
// scores near CP/(NFFT+CP)·1; noise scores near 0. It is the classic
// time-domain OFDM feature statistic, provided as a cross-check on the
// spectral-correlation detectors.
func CPAutocorrelation(x []complex128, nfft, cp int) (float64, error) {
	symLen := nfft + cp
	if nfft < 1 || cp < 1 {
		return 0, fmt.Errorf("sig: CPAutocorrelation nfft=%d cp=%d invalid", nfft, cp)
	}
	if len(x) < symLen+nfft {
		return 0, fmt.Errorf("sig: need at least %d samples, have %d", symLen+nfft, len(x))
	}
	var corr complex128
	var power float64
	count := 0
	for start := 0; start+symLen+nfft <= len(x); start += symLen {
		for i := 0; i < cp; i++ {
			a := x[start+i]
			b := x[start+i+nfft]
			corr += a * cmplx.Conj(b)
			power += (cmplx.Abs(a)*cmplx.Abs(a) + cmplx.Abs(b)*cmplx.Abs(b)) / 2
			count++
		}
	}
	if power == 0 {
		return 0, fmt.Errorf("sig: zero power in CP correlation window")
	}
	return cmplx.Abs(corr) / power, nil
}
