package sig

import "math"

// Rand is a deterministic pseudo-random generator (xoshiro256**) with
// convenience methods for the distributions the signal generators need.
// It is not safe for concurrent use; create one per goroutine.
type Rand struct {
	s     [4]uint64
	spare float64
	has   bool
}

// NewRand returns a generator seeded from a single 64-bit seed via the
// splitmix64 expansion, as recommended by the xoshiro authors. Any seed,
// including zero, produces a well-distributed state.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform sample in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sig: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Bit returns a uniform random bit as ±1, the BPSK symbol alphabet.
func (r *Rand) Bit() float64 {
	if r.Uint64()&1 == 0 {
		return -1
	}
	return 1
}

// NormFloat64 returns a standard normal sample using the Marsaglia polar
// method, caching the spare deviate.
func (r *Rand) NormFloat64() float64 {
	if r.has {
		r.has = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		m := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * m
		r.has = true
		return u * m
	}
}

// NormComplex returns a circularly symmetric complex Gaussian sample with
// the given per-component standard deviation.
func (r *Rand) NormComplex(sigma float64) complex128 {
	return complex(sigma*r.NormFloat64(), sigma*r.NormFloat64())
}
