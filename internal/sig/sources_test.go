package sig

import (
	"math"
	"math/cmplx"
	"testing"

	"tiledcfd/internal/fft"
)

func TestToneComplexSpectrum(t *testing.T) {
	// A complex tone at bin 8 of a 64-point FFT must land in exactly that bin.
	const n, bin = 64, 8
	tone := &Tone{Amp: 1, Freq: float64(bin) / n}
	x := Samples(tone, n)
	X, err := fft.FFT(x)
	if err != nil {
		t.Fatal(err)
	}
	for v := range X {
		mag := cmplx.Abs(X[v])
		if v == bin && math.Abs(mag-n) > 1e-9 {
			t.Fatalf("tone bin magnitude %v, want %d", mag, n)
		}
		if v != bin && mag > 1e-9 {
			t.Fatalf("leakage at bin %d: %v", v, mag)
		}
	}
}

func TestToneRealHasTwoLines(t *testing.T) {
	const n, bin = 64, 8
	tone := &Tone{Amp: 1, Freq: float64(bin) / n, Real: true}
	x := Samples(tone, n)
	X, err := fft.FFT(x)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(X[bin]) < n/2-1e-6 || cmplx.Abs(X[n-bin]) < n/2-1e-6 {
		t.Fatalf("real tone should have lines at ±bin: %v / %v", X[bin], X[n-bin])
	}
}

func TestToneStateContinues(t *testing.T) {
	// Two calls of 32 samples must equal one call of 64.
	a := &Tone{Amp: 1, Freq: 0.1}
	b := &Tone{Amp: 1, Freq: 0.1}
	one := Samples(a, 64)
	two := b.Generate(nil, 32)
	two = b.Generate(two, 32)
	for i := range one {
		if cmplx.Abs(one[i]-two[i]) > 1e-12 {
			t.Fatalf("phase discontinuity at %d", i)
		}
	}
}

func TestAMEnvelope(t *testing.T) {
	am := &AM{Amp: 1, Carrier: 0.25, ModFreq: 1.0 / 32, Depth: 0.5}
	x := Samples(am, 256)
	// Peak must reach ~(1+depth), never exceed it.
	peak := 0.0
	for _, v := range x {
		if a := math.Abs(real(v)); a > peak {
			peak = a
		}
		if imag(v) != 0 {
			t.Fatal("AM must be real")
		}
	}
	if peak > 1.5+1e-9 || peak < 1.3 {
		t.Fatalf("AM peak %v, want ~1.5", peak)
	}
}

func TestBPSKSymbolStructure(t *testing.T) {
	const symLen = 8
	b := &BPSK{Amp: 1, Carrier: 0, SymbolLen: symLen, Rng: NewRand(1)}
	x := Samples(b, 20*symLen)
	// With zero carrier, each symbol period is a constant ±1.
	for s := 0; s < 20; s++ {
		first := real(x[s*symLen])
		if math.Abs(math.Abs(first)-1) > 1e-12 {
			t.Fatalf("symbol %d amplitude %v", s, first)
		}
		for k := 1; k < symLen; k++ {
			if real(x[s*symLen+k]) != first {
				t.Fatalf("symbol %d not constant", s)
			}
		}
	}
}

func TestBPSKBothSymbolsAppear(t *testing.T) {
	b := &BPSK{Amp: 1, Carrier: 0, SymbolLen: 4, Rng: NewRand(3)}
	x := Samples(b, 400)
	plus, minus := false, false
	for _, v := range x {
		if real(v) > 0.5 {
			plus = true
		}
		if real(v) < -0.5 {
			minus = true
		}
	}
	if !plus || !minus {
		t.Fatal("BPSK produced only one symbol value")
	}
}

func TestBPSKPanicsWithoutRng(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("BPSK without Rng should panic")
		}
	}()
	(&BPSK{Amp: 1, SymbolLen: 4}).Generate(nil, 4)
}

func TestBPSKPanicsOnBadSymbolLen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("BPSK with SymbolLen 0 should panic")
		}
	}()
	(&BPSK{Amp: 1, Rng: NewRand(1)}).Generate(nil, 4)
}

func TestQPSKPower(t *testing.T) {
	q := &QPSK{Amp: 1, Carrier: 0.2, SymbolLen: 8, Rng: NewRand(9)}
	x := Samples(q, 8192)
	p := Power(x)
	// Real passband QPSK with unit symbol energy: average power = 1/2.
	if math.Abs(p-0.5) > 0.05 {
		t.Fatalf("QPSK power %v, want ~0.5", p)
	}
}

func TestQPSKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("QPSK without Rng should panic")
		}
	}()
	(&QPSK{Amp: 1, SymbolLen: 4}).Generate(nil, 4)
}

func TestWGNPower(t *testing.T) {
	w := &WGN{Sigma: 0.5, Rng: NewRand(17)}
	x := Samples(w, 100000)
	p := Power(x)
	if math.Abs(p-0.25) > 0.01 {
		t.Fatalf("complex WGN power %v, want 0.25", p)
	}
	wr := &WGN{Sigma: 0.5, Real: true, Rng: NewRand(18)}
	xr := Samples(wr, 100000)
	pr := Power(xr)
	if math.Abs(pr-0.25) > 0.01 {
		t.Fatalf("real WGN power %v, want 0.25", pr)
	}
	for _, v := range xr[:100] {
		if imag(v) != 0 {
			t.Fatal("real WGN has imaginary component")
		}
	}
}

func TestWGNPanicsWithoutRng(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("WGN without Rng should panic")
		}
	}()
	(&WGN{Sigma: 1}).Generate(nil, 4)
}

func TestMixSumsSources(t *testing.T) {
	m := &Mix{Sources: []Source{
		&Tone{Amp: 1, Freq: 0.125},
		&Tone{Amp: 0.5, Freq: 0.25},
	}}
	x := Samples(m, 32)
	a := Samples(&Tone{Amp: 1, Freq: 0.125}, 32)
	b := Samples(&Tone{Amp: 0.5, Freq: 0.25}, 32)
	for i := range x {
		if cmplx.Abs(x[i]-(a[i]+b[i])) > 1e-12 {
			t.Fatalf("mix mismatch at %d", i)
		}
	}
}

func TestSilence(t *testing.T) {
	x := Samples(Silence{}, 16)
	for _, v := range x {
		if v != 0 {
			t.Fatal("silence not silent")
		}
	}
}
