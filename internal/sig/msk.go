package sig

import (
	"fmt"
	"math"
)

// MSK is minimum-shift keying on a real carrier: continuous-phase FSK
// with modulation index h = 1/2, the minimum spacing that keeps the two
// tones orthogonal. Each data bit advances the excess phase linearly by
// ±π/2 over one symbol, so the instantaneous frequency toggles between
// f_c ± 1/(4·SymbolLen) with no phase discontinuities — the
// constant-envelope waveform of GSM's ancestor. Like the package's
// BPSK, the signal is real passband: its cyclostationarity lives at
// cycle frequencies around the doubled carrier, α = 2f_c ± m/(2T_sym),
// which is what gives the detectors a feature distinct from the
// rectangular-pulse BPSK spectrum.
type MSK struct {
	Amp       float64 // carrier amplitude
	Carrier   float64 // cycles per sample
	SymbolLen int     // samples per bit
	Phase     float64 // initial carrier phase, radians
	Rng       *Rand   // bit source; required

	k      int     // sample index
	excess float64 // accumulated excess phase, radians
	bit    float64 // current bit, ±1
}

// Generate appends n samples of the MSK signal.
func (m *MSK) Generate(dst []complex128, n int) []complex128 {
	if m.Rng == nil {
		panic("sig: MSK needs a Rng")
	}
	if m.SymbolLen < 1 {
		panic(fmt.Sprintf("sig: MSK symbol length %d must be >= 1", m.SymbolLen))
	}
	step := math.Pi / (2 * float64(m.SymbolLen))
	for i := 0; i < n; i++ {
		if m.k%m.SymbolLen == 0 {
			m.bit = m.Rng.Bit()
		}
		arg := 2*math.Pi*m.Carrier*float64(m.k) + m.excess + m.Phase
		dst = append(dst, complex(m.Amp*math.Cos(arg), 0))
		m.excess += m.bit * step
		m.k++
	}
	return dst
}
