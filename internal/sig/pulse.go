package sig

import (
	"fmt"
	"math"
)

// RaisedCosineTaps returns the impulse response of a raised-cosine pulse
// filter with the given rolloff beta in [0,1], spanning `span` symbols of
// `symbolLen` samples each (span must be even). The filter is normalised
// to unit DC gain. Rectangular pulses (the paper's implicit choice) keep
// strong cyclic features; pulse shaping narrows the spectrum and weakens
// the symbol-rate features — the trade-off the shaping ablation measures.
func RaisedCosineTaps(symbolLen, span int, beta float64) ([]float64, error) {
	if symbolLen < 1 || span < 2 || span%2 != 0 {
		return nil, fmt.Errorf("sig: raised cosine needs symbolLen >= 1 and even span >= 2, got %d/%d", symbolLen, span)
	}
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("sig: rolloff %v outside [0,1]", beta)
	}
	n := span * symbolLen
	taps := make([]float64, n+1)
	ts := float64(symbolLen)
	sum := 0.0
	for i := range taps {
		t := float64(i-n/2) / ts
		var h float64
		switch {
		case t == 0:
			h = 1
		case beta > 0 && math.Abs(math.Abs(2*beta*t)-1) < 1e-12:
			h = math.Pi / 4 * sinc(1/(2*beta))
		default:
			h = sinc(t) * math.Cos(math.Pi*beta*t) / (1 - 4*beta*beta*t*t)
		}
		taps[i] = h
		sum += h
	}
	for i := range taps {
		taps[i] /= sum
	}
	return taps, nil
}

func sinc(x float64) float64 {
	if x == 0 {
		return 1
	}
	return math.Sin(math.Pi*x) / (math.Pi * x)
}

// FIRFilter convolves x with taps (linear convolution truncated to
// len(x), zero initial state), returning a new slice. It implements both
// pulse shaping and multipath channels.
func FIRFilter(x []complex128, taps []float64) ([]complex128, error) {
	if len(taps) == 0 {
		return nil, fmt.Errorf("sig: empty filter")
	}
	out := make([]complex128, len(x))
	for i := range x {
		var acc complex128
		for j, h := range taps {
			if k := i - j; k >= 0 {
				acc += x[k] * complex(h, 0)
			}
		}
		out[i] = acc
	}
	return out, nil
}

// ShapedBPSK is a BPSK source with raised-cosine pulse shaping: the
// baseband ±1 impulse train is filtered before carrier mixing. It
// generates in one shot (stateless between calls is impractical for a
// filtered stream), so Generate must be called with the full length.
type ShapedBPSK struct {
	Amp       float64 // carrier amplitude
	Carrier   float64 // cycles per sample
	SymbolLen int     // samples per symbol
	Beta      float64 // raised-cosine rolloff
	Span      int     // filter span in symbols (even; default 6)
	Rng       *Rand   // symbol source; required
}

// Generate appends n samples of the shaped BPSK signal. It panics on a
// missing Rng or invalid geometry, like the other sources.
func (b *ShapedBPSK) Generate(dst []complex128, n int) []complex128 {
	if b.Rng == nil {
		panic("sig: ShapedBPSK needs a Rng")
	}
	if b.SymbolLen <= 0 {
		panic(fmt.Sprintf("sig: ShapedBPSK SymbolLen %d must be positive", b.SymbolLen))
	}
	span := b.Span
	if span == 0 {
		span = 6
	}
	taps, err := RaisedCosineTaps(b.SymbolLen, span, b.Beta)
	if err != nil {
		panic(err)
	}
	// Impulse train of symbols.
	base := make([]complex128, n)
	for k := 0; k < n; k += b.SymbolLen {
		base[k] = complex(b.Rng.Bit()*float64(b.SymbolLen), 0)
	}
	shaped, err := FIRFilter(base, taps)
	if err != nil {
		panic(err)
	}
	for k := 0; k < n; k++ {
		arg := 2 * math.Pi * b.Carrier * float64(k)
		dst = append(dst, complex(b.Amp*real(shaped[k])*math.Cos(arg), 0))
	}
	return dst
}

// Impairments models front-end distortions applied to a clean signal:
// carrier frequency offset (CFO), static phase offset, and a real
// multipath FIR channel. Zero values are no-ops.
type Impairments struct {
	CFO       float64   // cycles/sample frequency offset
	Phase     float64   // radians
	Multipath []float64 // FIR channel taps (nil = flat channel)
}

// Apply returns the impaired copy of x.
func (im Impairments) Apply(x []complex128) ([]complex128, error) {
	out := make([]complex128, len(x))
	copy(out, x)
	if im.Multipath != nil {
		var err error
		if out, err = FIRFilter(out, im.Multipath); err != nil {
			return nil, err
		}
	}
	if im.CFO != 0 || im.Phase != 0 {
		for k := range out {
			rot := 2*math.Pi*im.CFO*float64(k) + im.Phase
			out[k] *= complex(math.Cos(rot), math.Sin(rot))
		}
	}
	return out, nil
}
