package sig

import (
	"fmt"
	"math"
)

// Power returns the mean squared magnitude of x, or 0 for an empty slice.
func Power(x []complex128) float64 {
	if len(x) == 0 {
		return 0
	}
	var sum float64
	for _, v := range x {
		sum += real(v)*real(v) + imag(v)*imag(v)
	}
	return sum / float64(len(x))
}

// SNRdB returns the signal-to-noise ratio of the given powers in decibel.
func SNRdB(signalPower, noisePower float64) float64 {
	return 10 * math.Log10(signalPower/noisePower)
}

// AddAWGN returns x plus white Gaussian noise calibrated so that the
// resulting SNR (signal power over noise power) equals snrDB. With
// realNoise true the noise is real-valued (for real passband signals);
// otherwise circularly symmetric complex. The returned noise power is the
// calibrated value actually used.
func AddAWGN(x []complex128, snrDB float64, realNoise bool, rng *Rand) ([]complex128, float64, error) {
	if rng == nil {
		return nil, 0, fmt.Errorf("sig: AddAWGN needs a Rng")
	}
	ps := Power(x)
	if ps == 0 {
		return nil, 0, fmt.Errorf("sig: AddAWGN on zero-power signal")
	}
	pn := ps / math.Pow(10, snrDB/10)
	out := make([]complex128, len(x))
	if realNoise {
		sd := math.Sqrt(pn)
		for i, v := range x {
			out[i] = v + complex(sd*rng.NormFloat64(), 0)
		}
	} else {
		sd := math.Sqrt(pn / 2)
		for i, v := range x {
			out[i] = v + complex(sd*rng.NormFloat64(), sd*rng.NormFloat64())
		}
	}
	return out, pn, nil
}

// Scale multiplies every sample by the real gain g, in place, and returns x.
func Scale(x []complex128, g float64) []complex128 {
	for i := range x {
		x[i] *= complex(g, 0)
	}
	return x
}

// Frames splits x into blocks of length k advancing by hop samples and
// returns the list of full blocks (a trailing partial block is dropped).
// hop == k gives the non-overlapping blocking of the paper's section 4.1.
func Frames(x []complex128, k, hop int) ([][]complex128, error) {
	if k <= 0 || hop <= 0 {
		return nil, fmt.Errorf("sig: Frames with k=%d hop=%d (must be positive)", k, hop)
	}
	var out [][]complex128
	for start := 0; start+k <= len(x); start += hop {
		out = append(out, x[start:start+k])
	}
	return out, nil
}

// NumFrames returns how many full k-blocks with the given hop fit in n
// samples.
func NumFrames(n, k, hop int) int {
	if k <= 0 || hop <= 0 || n < k {
		return 0
	}
	return (n-k)/hop + 1
}

// SamplesNeeded returns the number of samples required for blocks frames
// of length k advancing by hop.
func SamplesNeeded(blocks, k, hop int) int {
	if blocks <= 0 {
		return 0
	}
	return k + (blocks-1)*hop
}
