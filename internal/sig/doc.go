// Package sig generates the sampled test signals for the reproduction.
//
// The paper's application is spectrum sensing for Cognitive Radio: decide
// whether a licensed transmission is present in a band from its sampled
// signal x_k = x(k/fs) (expression 1). The original AAF front-end hardware
// is not available, so this package provides synthetic sampled signals
// with precisely known cyclostationary structure:
//
//   - Tone: a complex exponential or real cosine carrier,
//   - AM: amplitude modulation (strongly cyclostationary at 2·f_mod),
//   - BPSK/QPSK: digitally modulated carriers with rectangular pulses —
//     the licensed-user signals whose periodicity CFD exploits (cyclic
//     features at the doubled carrier 2·fc for real BPSK and at symbol-rate
//     harmonics k/T_sym),
//   - WGN: white Gaussian noise, the null hypothesis,
//
// plus channel utilities (power measurement, SNR-calibrated noise
// addition) and framing into K-sample analysis blocks.
//
// All randomness flows through the deterministic Rand generator
// (xoshiro256** seeded by splitmix64), so every experiment in the
// repository is exactly reproducible from its seed. Frequencies are
// normalised to cycles/sample throughout; multiply by fs for Hz.
package sig
