package sig

import (
	"math"
	"math/cmplx"
	"testing"
)

// MSK is constant-envelope by construction on the complex baseband
// phase; on the real passband samples the envelope shows through the
// carrier, so instead assert the defining continuous-phase property:
// no sample-to-sample jump can exceed what the carrier plus a ±π/2
// symbol ramp allows.
func TestMSKContinuousPhase(t *testing.T) {
	m := &MSK{Amp: 1, Carrier: 0.125, SymbolLen: 8, Rng: NewRand(5)}
	x := Samples(m, 4096)
	maxStep := 2*math.Pi*0.125 + math.Pi/(2*8) + 1e-9
	for i := 1; i < len(x); i++ {
		// Real passband: reconstruct the phase step bound via the
		// amplitude bound instead — |x[k]−x[k−1]| <= Amp·maxStep for a
		// unit-amplitude phase modulation (small-angle chord bound is
		// 2·sin(maxStep/2), but the loose bound suffices to catch phase
		// discontinuities, which jump by O(1)).
		if d := cmplx.Abs(x[i] - x[i-1]); d > 2*math.Sin(maxStep/2)+1e-9 {
			t.Fatalf("sample %d jumps by %v, max continuous-phase step %v",
				i, d, 2*math.Sin(maxStep/2))
		}
	}
}

func TestMSKDeterministicAndStateful(t *testing.T) {
	a := Samples(&MSK{Amp: 1, Carrier: 0.125, SymbolLen: 8, Rng: NewRand(9)}, 1024)
	b := Samples(&MSK{Amp: 1, Carrier: 0.125, SymbolLen: 8, Rng: NewRand(9)}, 1024)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at sample %d", i)
		}
	}
	// Chunked generation must continue the signal, not restart it.
	m := &MSK{Amp: 1, Carrier: 0.125, SymbolLen: 8, Rng: NewRand(9)}
	c := m.Generate(nil, 400)
	c = m.Generate(c, 624)
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("chunked generation diverged at sample %d", i)
		}
	}
}

func TestSCFDMASymbolQuantisedAndPowered(t *testing.T) {
	s := &SCFDMA{Amp: 1, NFFT: 12, CP: 4, Spread: 8, Start: 1, Rng: NewRand(7)}
	if got := s.SymbolLen(); got != 16 {
		t.Fatalf("SymbolLen = %d, want 16", got)
	}
	// A request not aligned to the symbol length must still return
	// exactly n samples, carrying the remainder internally.
	x := s.Generate(nil, 100)
	if len(x) != 100 {
		t.Fatalf("got %d samples, want 100", len(x))
	}
	x = s.Generate(x, 4096-100)
	if len(x) != 4096 {
		t.Fatalf("got %d samples after top-up, want 4096", len(x))
	}
	var p float64
	for _, v := range x {
		p += real(v)*real(v) + imag(v)*imag(v)
	}
	p /= float64(len(x))
	if p <= 0 {
		t.Fatal("zero power")
	}
	// Chunked == one-shot (the accumulator-style continuity contract).
	y := Samples(&SCFDMA{Amp: 1, NFFT: 12, CP: 4, Spread: 8, Start: 1, Rng: NewRand(7)}, 4096)
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("chunked generation diverged at sample %d", i)
		}
	}
}

// The cyclic prefix must actually be cyclic: the first CP samples of
// each emitted symbol equal its last CP samples.
func TestSCFDMACyclicPrefix(t *testing.T) {
	s := &SCFDMA{Amp: 1, NFFT: 12, CP: 4, Spread: 8, Start: 1, Rng: NewRand(3)}
	x := Samples(s, 8*16)
	for sym := 0; sym < 8; sym++ {
		b := x[sym*16 : (sym+1)*16]
		for i := 0; i < 4; i++ {
			if b[i] != b[12+i] {
				t.Fatalf("symbol %d: CP sample %d (%v) != tail sample (%v)", sym, i, b[i], b[12+i])
			}
		}
	}
}

func TestChannelCFORotatesExactly(t *testing.T) {
	const cfo = 0.01
	base := Samples(&Tone{Amp: 1, Freq: 0.1}, 256)
	ch := &Channel{Src: &Tone{Amp: 1, Freq: 0.1}, CFO: cfo}
	got := Samples(ch, 256)
	for i := range got {
		want := base[i] * cmplx.Exp(complex(0, 2*math.Pi*cfo*float64(i)))
		if cmplx.Abs(got[i]-want) > 1e-12 {
			t.Fatalf("sample %d: got %v want %v", i, got[i], want)
		}
	}
}

func TestChannelMultipathMatchesManualFIR(t *testing.T) {
	taps := []complex128{1, 0.5i, -0.25}
	base := Samples(&WGN{Sigma: 1, Rng: NewRand(11)}, 300)
	ch := &Channel{Src: &WGN{Sigma: 1, Rng: NewRand(11)}, Multipath: taps}
	// Generate in uneven chunks to exercise the FIR history carry.
	got := ch.Generate(nil, 7)
	got = ch.Generate(got, 150)
	got = ch.Generate(got, 143)
	for i := range got {
		var want complex128
		for l, h := range taps {
			if i-l >= 0 {
				want += h * base[i-l]
			}
		}
		if cmplx.Abs(got[i]-want) > 1e-12 {
			t.Fatalf("sample %d: got %v want %v", i, got[i], want)
		}
	}
}

func TestChannelTimingOffsetSkips(t *testing.T) {
	const off = 37
	base := Samples(&BPSK{Amp: 1, Carrier: 0.125, SymbolLen: 8, Rng: NewRand(13)}, 200+off)
	ch := &Channel{Src: &BPSK{Amp: 1, Carrier: 0.125, SymbolLen: 8, Rng: NewRand(13)}, TimingOffset: off}
	got := Samples(ch, 200)
	for i := range got {
		if got[i] != base[i+off] {
			t.Fatalf("sample %d: got %v want %v (offset not applied)", i, got[i], base[i+off])
		}
	}
}

// A zero-valued Channel is the identity: effects compose only when
// configured, so sweeps can wrap unconditionally.
func TestChannelZeroValueIsIdentity(t *testing.T) {
	base := Samples(&MSK{Amp: 1, Carrier: 0.125, SymbolLen: 8, Rng: NewRand(17)}, 512)
	ch := &Channel{Src: &MSK{Amp: 1, Carrier: 0.125, SymbolLen: 8, Rng: NewRand(17)}}
	got := Samples(ch, 512)
	for i := range got {
		if got[i] != base[i] {
			t.Fatalf("sample %d altered by identity channel", i)
		}
	}
}
