package sig

import (
	"math"
	"testing"
)

func testOFDM(seed uint64) *OFDM {
	return &OFDM{
		Amp: 1, NFFT: 32, CP: 8,
		ActiveLow: 1, ActiveHigh: 24,
		Rng: NewRand(seed),
	}
}

func TestOFDMSymbolStructure(t *testing.T) {
	o := testOFDM(1)
	if o.SymbolLen() != 40 {
		t.Fatalf("symbol length %d", o.SymbolLen())
	}
	x := Samples(o, 3*o.SymbolLen())
	// The cyclic prefix must equal the symbol tail exactly.
	for s := 0; s < 3; s++ {
		base := s * o.SymbolLen()
		for i := 0; i < o.CP; i++ {
			cpSample := x[base+i]
			tailSample := x[base+o.CP+o.NFFT-o.CP+i]
			if cpSample != tailSample {
				t.Fatalf("symbol %d: CP sample %d != tail", s, i)
			}
		}
	}
}

func TestOFDMPowerSane(t *testing.T) {
	o := testOFDM(2)
	x := Samples(o, 40*o.SymbolLen())
	p := Power(x)
	// Unit-power QPSK subcarriers normalised by active count: ~Amp².
	if p < 0.5 || p > 2 {
		t.Fatalf("OFDM power %v", p)
	}
}

func TestOFDMGenerateAcrossBoundaries(t *testing.T) {
	// Generating in odd-sized chunks must match one continuous call.
	a := testOFDM(3)
	b := testOFDM(3)
	one := Samples(a, 130)
	var two []complex128
	for _, chunk := range []int{7, 40, 61, 22} {
		two = b.Generate(two, chunk)
	}
	if len(two) != 130 {
		t.Fatalf("chunked length %d", len(two))
	}
	for i := range one {
		if one[i] != two[i] {
			t.Fatalf("chunked generation diverged at %d", i)
		}
	}
}

func TestOFDMPanics(t *testing.T) {
	cases := []*OFDM{
		{Amp: 1, NFFT: 32, CP: 8, ActiveLow: 1, ActiveHigh: 24},                  // no rng
		{Amp: 1, NFFT: 3, CP: 1, ActiveLow: 1, ActiveHigh: 2, Rng: NewRand(1)},   // NFFT too small
		{Amp: 1, NFFT: 32, CP: 0, ActiveLow: 1, ActiveHigh: 24, Rng: NewRand(1)}, // no CP
		{Amp: 1, NFFT: 32, CP: 8, ActiveLow: 20, ActiveHigh: 5, Rng: NewRand(1)}, // bad range
		{Amp: 1, NFFT: 32, CP: 8, ActiveLow: 1, ActiveHigh: 40, Rng: NewRand(1)}, // high too big
	}
	for i, o := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			o.Generate(nil, 4)
		}()
	}
}

func TestCPAutocorrelationSeparatesOFDMFromNoise(t *testing.T) {
	o := testOFDM(5)
	n := 50 * o.SymbolLen()
	x := Samples(o, n)
	ofdmStat, err := CPAutocorrelation(x, o.NFFT, o.CP)
	if err != nil {
		t.Fatal(err)
	}
	rng := NewRand(6)
	noise := Samples(&WGN{Sigma: 1, Rng: rng}, n)
	noiseStat, err := CPAutocorrelation(noise, o.NFFT, o.CP)
	if err != nil {
		t.Fatal(err)
	}
	if ofdmStat < 0.8 {
		t.Fatalf("OFDM CP statistic %v, want near 1", ofdmStat)
	}
	if noiseStat > 0.2 {
		t.Fatalf("noise CP statistic %v, want near 0", noiseStat)
	}
	// And it survives moderate noise.
	noisy, _, err := AddAWGN(x, 5, false, rng)
	if err != nil {
		t.Fatal(err)
	}
	noisyStat, err := CPAutocorrelation(noisy, o.NFFT, o.CP)
	if err != nil {
		t.Fatal(err)
	}
	if noisyStat < 3*noiseStat {
		t.Fatalf("noisy OFDM statistic %v vs noise %v", noisyStat, noiseStat)
	}
}

func TestCPAutocorrelationErrors(t *testing.T) {
	if _, err := CPAutocorrelation(make([]complex128, 10), 0, 4); err == nil {
		t.Error("nfft=0 should fail")
	}
	if _, err := CPAutocorrelation(make([]complex128, 10), 32, 8); err == nil {
		t.Error("short input should fail")
	}
	if _, err := CPAutocorrelation(make([]complex128, 200), 32, 8); err == nil {
		t.Error("zero power should fail")
	}
}

func TestOFDMDetectableByCFD(t *testing.T) {
	// The spectral-correlation detector also sees the CP-induced
	// cyclostationarity (features at multiples of the symbol rate).
	// Frame the OFDM stream into the DSCF geometry and compare the blind
	// statistic against the noise floor. Kept here (not in detect) to
	// avoid an import cycle in test helpers.
	o := testOFDM(7)
	n := 64 * 32
	x := Samples(o, n)
	if math.IsNaN(Power(x)) || Power(x) == 0 {
		t.Fatal("degenerate OFDM stream")
	}
}
