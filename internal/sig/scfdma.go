package sig

import (
	"fmt"
	"math"
	"math/cmplx"
)

// SCFDMA generates an SC-FDMA (DFT-spread OFDM) uplink signal, the LTE
// uplink waveform: per symbol, Spread QPSK data values are DFT-precoded
// and the resulting spectrum is mapped onto Spread contiguous
// subcarriers starting at Start before the NFFT-point inverse transform
// and cyclic prefix — localized mapping (LFDMA). The DFT spreading is
// what tames the PAPR relative to plain OFDM; the cyclic prefix still
// correlates the symbol tail with its head, so the waveform carries the
// same family of CP-induced cyclic features at α = k/(NFFT+CP) that the
// detectors key on, plus the subcarrier-mapping structure analysed in
// the LTE cyclostationarity literature (arXiv 1701.06434).
//
// Like OFDM, generation is symbol-quantised with the remainder carried
// across Generate calls, and transforms are direct O(N²) — NFFT stays
// small and the package stays free of an fft dependency cycle.
type SCFDMA struct {
	Amp    float64 // time-domain amplitude scale
	NFFT   int     // total subcarriers
	CP     int     // cyclic prefix length in samples (>= 1)
	Spread int     // occupied subcarriers = DFT-precoder size (>= 1)
	Start  int     // first mapped subcarrier (>= 1 to skip DC)
	Rng    *Rand   // QPSK data source; required

	buf []complex128 // leftover samples of the last generated symbol
}

// SymbolLen returns the full symbol length NFFT+CP.
func (s *SCFDMA) SymbolLen() int { return s.NFFT + s.CP }

// validate panics on structural misuse, like the other sources.
func (s *SCFDMA) validate() {
	if s.Rng == nil {
		panic("sig: SCFDMA needs a Rng")
	}
	if s.NFFT < 4 {
		panic(fmt.Sprintf("sig: SCFDMA NFFT %d must be >= 4", s.NFFT))
	}
	if s.CP < 1 || s.CP >= s.NFFT {
		panic(fmt.Sprintf("sig: SCFDMA CP %d must be in [1, NFFT)", s.CP))
	}
	if s.Spread < 1 || s.Start < 0 || s.Start+s.Spread > s.NFFT {
		panic(fmt.Sprintf("sig: SCFDMA mapping [%d,%d) exceeds NFFT %d", s.Start, s.Start+s.Spread, s.NFFT))
	}
}

// Generate appends n samples of the SC-FDMA stream.
func (s *SCFDMA) Generate(dst []complex128, n int) []complex128 {
	s.validate()
	for n > 0 {
		if len(s.buf) == 0 {
			s.buf = s.nextSymbol()
		}
		take := n
		if take > len(s.buf) {
			take = len(s.buf)
		}
		dst = append(dst, s.buf[:take]...)
		s.buf = s.buf[take:]
		n -= take
	}
	return dst
}

// nextSymbol builds one CP-prefixed SC-FDMA symbol: QPSK data, DFT
// spreading, localized subcarrier mapping, inverse DFT, cyclic prefix.
func (s *SCFDMA) nextSymbol() []complex128 {
	inv := 1 / math.Sqrt2
	data := make([]complex128, s.Spread)
	for q := range data {
		data[q] = complex(s.Rng.Bit()*inv, s.Rng.Bit()*inv)
	}
	// DFT precoder: D_k = (1/√Q) Σ_q d_q e^{-j2πqk/Q}.
	spec := make([]complex128, s.NFFT)
	preScale := 1 / math.Sqrt(float64(s.Spread))
	for k := 0; k < s.Spread; k++ {
		var sum complex128
		for q, d := range data {
			sum += d * cmplx.Exp(complex(0, -2*math.Pi*float64(q)*float64(k)/float64(s.Spread)))
		}
		spec[s.Start+k] = sum * complex(preScale, 0)
	}
	body := make([]complex128, s.NFFT)
	scale := s.Amp / math.Sqrt(float64(s.Spread))
	for t := 0; t < s.NFFT; t++ {
		var sum complex128
		for k := s.Start; k < s.Start+s.Spread; k++ {
			sum += spec[k] * cmplx.Exp(complex(0, 2*math.Pi*float64(k)*float64(t)/float64(s.NFFT)))
		}
		body[t] = sum * complex(scale, 0)
	}
	sym := make([]complex128, 0, s.SymbolLen())
	sym = append(sym, body[s.NFFT-s.CP:]...) // cyclic prefix
	return append(sym, body...)
}
