package sig

import (
	"math"
	"testing"
)

func TestRaisedCosineTapsProperties(t *testing.T) {
	for _, beta := range []float64{0, 0.25, 0.5, 1} {
		taps, err := RaisedCosineTaps(8, 6, beta)
		if err != nil {
			t.Fatalf("beta %v: %v", beta, err)
		}
		if len(taps) != 49 {
			t.Fatalf("beta %v: %d taps, want 49", beta, len(taps))
		}
		// Unit DC gain.
		sum := 0.0
		for _, h := range taps {
			sum += h
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("beta %v: DC gain %v", beta, sum)
		}
		// Symmetric.
		for i := 0; i < len(taps)/2; i++ {
			if math.Abs(taps[i]-taps[len(taps)-1-i]) > 1e-12 {
				t.Fatalf("beta %v: asymmetric at %d", beta, i)
			}
		}
		// Peak at centre.
		mid := len(taps) / 2
		for i, h := range taps {
			if i != mid && math.Abs(h) > taps[mid] {
				t.Fatalf("beta %v: tap %d exceeds centre", beta, i)
			}
		}
	}
}

func TestRaisedCosineZeroCrossings(t *testing.T) {
	// A raised-cosine pulse is Nyquist: it crosses zero at all non-zero
	// integer symbol offsets.
	const symLen = 8
	taps, err := RaisedCosineTaps(symLen, 6, 0.35)
	if err != nil {
		t.Fatal(err)
	}
	mid := len(taps) / 2
	peak := taps[mid]
	for s := 1; s <= 2; s++ {
		if math.Abs(taps[mid+s*symLen]/peak) > 1e-9 {
			t.Fatalf("no zero crossing at symbol offset %d", s)
		}
	}
}

func TestRaisedCosineErrors(t *testing.T) {
	if _, err := RaisedCosineTaps(0, 6, 0.5); err == nil {
		t.Error("symbolLen=0 should fail")
	}
	if _, err := RaisedCosineTaps(8, 3, 0.5); err == nil {
		t.Error("odd span should fail")
	}
	if _, err := RaisedCosineTaps(8, 6, -0.1); err == nil {
		t.Error("negative beta should fail")
	}
	if _, err := RaisedCosineTaps(8, 6, 1.1); err == nil {
		t.Error("beta > 1 should fail")
	}
}

func TestFIRFilterIdentityAndDelay(t *testing.T) {
	x := []complex128{1, 2, 3, 4}
	y, err := FIRFilter(x, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if y[i] != x[i] {
			t.Fatal("identity filter changed the signal")
		}
	}
	// One-sample delay.
	d, err := FIRFilter(x, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if d[0] != 0 || d[1] != 1 || d[3] != 3 {
		t.Fatalf("delay filter: %v", d)
	}
	if _, err := FIRFilter(x, nil); err == nil {
		t.Error("empty filter should fail")
	}
}

func TestShapedBPSKKeepsCarrierFeature(t *testing.T) {
	// Pulse shaping must not destroy the doubled-carrier cyclic feature;
	// it narrows the spectrum. Check power is finite and samples real.
	b := &ShapedBPSK{Amp: 1, Carrier: 0.125, SymbolLen: 8, Beta: 0.35, Rng: NewRand(5)}
	x := Samples(b, 1024)
	p := Power(x)
	if p < 0.05 || p > 2 {
		t.Fatalf("shaped BPSK power %v", p)
	}
	for _, v := range x[:64] {
		if imag(v) != 0 {
			t.Fatal("shaped BPSK must be real")
		}
	}
}

func TestShapedBPSKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ShapedBPSK without Rng should panic")
		}
	}()
	(&ShapedBPSK{Amp: 1, SymbolLen: 8}).Generate(nil, 16)
}

func TestShapedBPSKBadSymbolLenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ShapedBPSK with SymbolLen 0 should panic")
		}
	}()
	(&ShapedBPSK{Amp: 1, Rng: NewRand(1)}).Generate(nil, 16)
}

func TestImpairmentsCFORotation(t *testing.T) {
	x := make([]complex128, 16)
	for i := range x {
		x[i] = 1
	}
	out, err := Impairments{CFO: 0.25}.Apply(x)
	if err != nil {
		t.Fatal(err)
	}
	// At CFO 0.25, sample 1 is rotated by pi/2.
	if math.Abs(real(out[1])) > 1e-12 || math.Abs(imag(out[1])-1) > 1e-12 {
		t.Fatalf("CFO rotation wrong: %v", out[1])
	}
	// Zero impairments are the identity.
	id, err := Impairments{}.Apply(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if id[i] != x[i] {
			t.Fatal("identity impairments changed signal")
		}
	}
}

func TestImpairmentsPhaseAndMultipath(t *testing.T) {
	x := []complex128{1, 0, 0, 0}
	out, err := Impairments{Phase: math.Pi, Multipath: []float64{1, 0.5}}.Apply(x)
	if err != nil {
		t.Fatal(err)
	}
	// Multipath spreads the impulse; phase flips the sign.
	if math.Abs(real(out[0])+1) > 1e-12 {
		t.Fatalf("out[0] = %v, want -1", out[0])
	}
	if math.Abs(real(out[1])+0.5) > 1e-12 {
		t.Fatalf("out[1] = %v, want -0.5", out[1])
	}
	if _, err := (Impairments{Multipath: []float64{}}).Apply(x); err == nil {
		t.Error("empty multipath should fail")
	}
}

func TestImpairedBPSKStillDetectable(t *testing.T) {
	// The doubled-carrier feature survives a small CFO and mild multipath
	// (it shifts in a by the CFO, but stays off the a=0 row).
	rng := NewRand(9)
	b := &BPSK{Amp: 1, Carrier: 8.0 / 64, SymbolLen: 8, Rng: rng}
	clean := Samples(b, 64*8)
	imp, err := Impairments{CFO: 0.002, Multipath: []float64{1, 0.2}}.Apply(clean)
	if err != nil {
		t.Fatal(err)
	}
	if Power(imp) < 0.1 {
		t.Fatal("impaired signal vanished")
	}
}
