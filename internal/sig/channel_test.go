package sig

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPowerBasics(t *testing.T) {
	if Power(nil) != 0 {
		t.Error("Power(nil) != 0")
	}
	x := []complex128{complex(3, 4)} // |x|^2 = 25
	if got := Power(x); got != 25 {
		t.Errorf("Power = %v, want 25", got)
	}
	y := []complex128{1, complex(0, 1), -1, complex(0, -1)}
	if got := Power(y); got != 1 {
		t.Errorf("Power = %v, want 1", got)
	}
}

func TestSNRdB(t *testing.T) {
	if got := SNRdB(10, 1); math.Abs(got-10) > 1e-12 {
		t.Errorf("SNRdB(10,1) = %v", got)
	}
	if got := SNRdB(1, 10); math.Abs(got+10) > 1e-12 {
		t.Errorf("SNRdB(1,10) = %v", got)
	}
	if got := SNRdB(4, 4); math.Abs(got) > 1e-12 {
		t.Errorf("SNRdB(4,4) = %v", got)
	}
}

func TestAddAWGNCalibration(t *testing.T) {
	tone := &Tone{Amp: 1, Freq: 0.1}
	x := Samples(tone, 50000)
	for _, snr := range []float64{20, 0, -10} {
		noisy, pn, err := AddAWGN(x, snr, false, NewRand(5))
		if err != nil {
			t.Fatal(err)
		}
		// Measure the actual noise power that was added.
		var measured float64
		for i := range x {
			d := noisy[i] - x[i]
			measured += real(d)*real(d) + imag(d)*imag(d)
		}
		measured /= float64(len(x))
		if math.Abs(measured-pn)/pn > 0.05 {
			t.Fatalf("snr %v: measured noise %v, calibrated %v", snr, measured, pn)
		}
		wantPn := Power(x) / math.Pow(10, snr/10)
		if math.Abs(pn-wantPn)/wantPn > 1e-9 {
			t.Fatalf("snr %v: pn %v, want %v", snr, pn, wantPn)
		}
	}
}

func TestAddAWGNRealNoise(t *testing.T) {
	x := Samples(&Tone{Amp: 1, Freq: 0.1, Real: true}, 20000)
	noisy, _, err := AddAWGN(x, 10, true, NewRand(6))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range noisy[:100] {
		if imag(v) != 0 {
			t.Fatal("real noise produced imaginary parts")
		}
	}
}

func TestAddAWGNErrors(t *testing.T) {
	if _, _, err := AddAWGN([]complex128{1}, 10, false, nil); err == nil {
		t.Error("nil rng should fail")
	}
	if _, _, err := AddAWGN([]complex128{0, 0}, 10, false, NewRand(1)); err == nil {
		t.Error("zero-power signal should fail")
	}
}

func TestScale(t *testing.T) {
	x := []complex128{1, complex(0, 2)}
	Scale(x, 0.5)
	if x[0] != 0.5 || x[1] != complex(0, 1) {
		t.Fatalf("Scale: %v", x)
	}
}

func TestFramesNonOverlapping(t *testing.T) {
	x := make([]complex128, 10)
	for i := range x {
		x[i] = complex(float64(i), 0)
	}
	fr, err := Frames(x, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(fr) != 2 {
		t.Fatalf("frames: %d, want 2 (trailing partial dropped)", len(fr))
	}
	if real(fr[1][0]) != 4 {
		t.Fatalf("second frame starts at %v", fr[1][0])
	}
}

func TestFramesOverlapping(t *testing.T) {
	x := make([]complex128, 10)
	fr, err := Frames(x, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(fr) != 4 {
		t.Fatalf("hop-2 frames: %d, want 4", len(fr))
	}
}

func TestFramesErrors(t *testing.T) {
	if _, err := Frames(nil, 0, 1); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := Frames(nil, 4, 0); err == nil {
		t.Error("hop=0 should fail")
	}
}

func TestFrameCountHelpers(t *testing.T) {
	if got := NumFrames(10, 4, 4); got != 2 {
		t.Errorf("NumFrames(10,4,4) = %d", got)
	}
	if got := NumFrames(10, 4, 2); got != 4 {
		t.Errorf("NumFrames(10,4,2) = %d", got)
	}
	if got := NumFrames(3, 4, 4); got != 0 {
		t.Errorf("NumFrames(3,4,4) = %d", got)
	}
	if got := SamplesNeeded(2, 4, 4); got != 8 {
		t.Errorf("SamplesNeeded(2,4,4) = %d", got)
	}
	if got := SamplesNeeded(4, 4, 2); got != 10 {
		t.Errorf("SamplesNeeded(4,4,2) = %d", got)
	}
	if got := SamplesNeeded(0, 4, 2); got != 0 {
		t.Errorf("SamplesNeeded(0,4,2) = %d", got)
	}
}

// Property: NumFrames and SamplesNeeded are consistent:
// NumFrames(SamplesNeeded(b,k,h), k, h) == b for positive inputs.
func TestQuickFrameAccounting(t *testing.T) {
	f := func(b8, k8, h8 uint8) bool {
		b := int(b8%32) + 1
		k := int(k8%64) + 1
		h := int(h8%64) + 1
		n := SamplesNeeded(b, k, h)
		return NumFrames(n, k, h) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Frames never returns a frame extending past the input and
// returns exactly NumFrames frames.
func TestQuickFramesMatchCount(t *testing.T) {
	f := func(n8, k8, h8 uint8) bool {
		n := int(n8 % 200)
		k := int(k8%32) + 1
		h := int(h8%32) + 1
		x := make([]complex128, n)
		fr, err := Frames(x, k, h)
		if err != nil {
			return false
		}
		return len(fr) == NumFrames(n, k, h)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
