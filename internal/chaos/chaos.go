// Package chaos is the fault-injection harness for the service's
// network robustness tests: net.Conn and net.Listener wrappers that
// inject latency, jitter, byte truncation, mid-stream resets,
// blackholes (accepted but silent), and one-way partitions, all driven
// deterministically from a seed. The shard-router failover tests and
// the cfdserve chaos e2e use it to prove the retry/circuit/failover
// machinery against every failure mode a remote shard link can show.
package chaos

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// pollInterval paces the wait loop of a blocked (blackholed or
// partitioned) direction: short enough that lifting a fault is
// near-immediate at test scale, long enough not to spin.
const pollInterval = 2 * time.Millisecond

// Controller owns one set of fault switches shared by every connection
// it wraps. All switches flip atomically and apply to in-flight
// connections immediately; randomness (jitter) comes from the seed, so
// a failing test replays byte-identically.
type Controller struct {
	mu  sync.Mutex
	rng *rand.Rand

	latency int64 // atomic nanoseconds added to every read and write
	jitter  int64 // atomic nanoseconds of uniform extra delay

	blackhole  atomic.Bool // accepted-but-silent: writes swallowed, reads block
	dropWrites atomic.Bool // one-way partition: this side's writes vanish
	dropReads  atomic.Bool // one-way partition: peer's writes never arrive

	truncateNext atomic.Int64 // >=0: truncate the next write to N bytes, then reset
	resetNext    atomic.Bool  // reset the connection on the next read or write

	conns   map[*Conn]struct{}
	wrapped atomic.Int64
}

// NewController returns a controller whose injected randomness is fully
// determined by seed.
func NewController(seed int64) *Controller {
	c := &Controller{
		rng:   rand.New(rand.NewSource(seed)),
		conns: make(map[*Conn]struct{}),
	}
	c.truncateNext.Store(-1)
	return c
}

// SetLatency adds latency (plus a uniform random extra up to jitter,
// drawn from the controller's seed) to every subsequent read and write.
func (c *Controller) SetLatency(latency, jitter time.Duration) {
	atomic.StoreInt64(&c.latency, int64(latency))
	atomic.StoreInt64(&c.jitter, int64(jitter))
}

// Blackhole turns the link into an accepted-but-silent peer: writes
// report success and vanish, reads block until the fault lifts or the
// connection closes. The TCP layer stays up, so only deadline or
// heartbeat machinery can notice.
func (c *Controller) Blackhole(on bool) { c.blackhole.Store(on) }

// DropWrites installs a one-way partition: this side's writes report
// success and vanish while the peer's traffic still arrives.
func (c *Controller) DropWrites(on bool) { c.dropWrites.Store(on) }

// DropReads installs the opposite one-way partition: reads block as if
// the peer went quiet, while this side's writes still go through.
func (c *Controller) DropReads(on bool) { c.dropReads.Store(on) }

// TruncateNextWrite arms a byte-truncation fault: the next write sends
// only its first n bytes to the peer and then resets the connection —
// a mid-frame cut that exercises partial-frame handling.
func (c *Controller) TruncateNextWrite(n int) { c.truncateNext.Store(int64(n)) }

// ResetNext arms a mid-stream reset: the next read or write on any
// wrapped connection fails and tears the connection down.
func (c *Controller) ResetNext() { c.resetNext.Store(true) }

// Cut closes every live wrapped connection immediately — the abrupt
// peer death (process kill, cable pull) failure mode.
func (c *Controller) Cut() {
	c.mu.Lock()
	conns := make([]*Conn, 0, len(c.conns))
	for cn := range c.conns {
		conns = append(conns, cn)
	}
	c.mu.Unlock()
	for _, cn := range conns {
		cn.Close()
	}
}

// Wrapped returns how many connections the controller has wrapped over
// its lifetime (live or not) — lets a test wait for a redial.
func (c *Controller) Wrapped() int64 { return c.wrapped.Load() }

// delay sleeps the configured latency plus seeded jitter.
func (c *Controller) delay() {
	lat := time.Duration(atomic.LoadInt64(&c.latency))
	jit := time.Duration(atomic.LoadInt64(&c.jitter))
	if jit > 0 {
		c.mu.Lock()
		lat += time.Duration(c.rng.Int63n(int64(jit)))
		c.mu.Unlock()
	}
	if lat > 0 {
		time.Sleep(lat)
	}
}

// Wrap returns conn with the controller's faults injected on both
// directions.
func (c *Controller) Wrap(conn net.Conn) *Conn {
	cn := &Conn{Conn: conn, ctl: c, closed: make(chan struct{})}
	c.mu.Lock()
	c.conns[cn] = struct{}{}
	c.mu.Unlock()
	c.wrapped.Add(1)
	return cn
}

// forget drops a closed connection from the live set.
func (c *Controller) forget(cn *Conn) {
	c.mu.Lock()
	delete(c.conns, cn)
	c.mu.Unlock()
}

// Conn is one fault-injected connection. It passes deadlines and
// addresses through to the wrapped conn.
type Conn struct {
	net.Conn
	ctl       *Controller
	closed    chan struct{}
	closeOnce sync.Once
}

// errReset is the injected mid-stream reset failure.
var errReset = fmt.Errorf("chaos: connection reset")

// reset tears the connection down and reports the injected failure.
func (cn *Conn) reset() (int, error) {
	cn.Close()
	return 0, errReset
}

// Read applies latency and the read-direction faults, then reads from
// the wrapped conn.
func (cn *Conn) Read(p []byte) (int, error) {
	cn.ctl.delay()
	if cn.ctl.resetNext.CompareAndSwap(true, false) {
		return cn.reset()
	}
	// While blackholed or read-partitioned the peer has gone silent:
	// block until the fault lifts or the connection dies. The underlying
	// Read is not issued, so bytes sent during the fault are delivered
	// (late) once it lifts — exactly a stalled link, not a lossy one.
	for cn.ctl.blackhole.Load() || cn.ctl.dropReads.Load() {
		select {
		case <-cn.closed:
			return 0, net.ErrClosed
		case <-time.After(pollInterval):
		}
	}
	return cn.Conn.Read(p)
}

// Write applies latency and the write-direction faults, then writes to
// the wrapped conn.
func (cn *Conn) Write(p []byte) (int, error) {
	cn.ctl.delay()
	if cn.ctl.resetNext.CompareAndSwap(true, false) {
		return cn.reset()
	}
	if n := cn.ctl.truncateNext.Swap(-1); n >= 0 {
		if int(n) > len(p) {
			n = int64(len(p))
		}
		cn.Conn.Write(p[:n]) //nolint:errcheck // the truncation itself is the injected failure
		_, err := cn.reset()
		return int(n), err
	}
	if cn.ctl.blackhole.Load() || cn.ctl.dropWrites.Load() {
		// Swallowed: report success so the sender believes the peer got it.
		return len(p), nil
	}
	return cn.Conn.Write(p)
}

// Close closes the wrapped connection and releases any blocked reads.
func (cn *Conn) Close() error {
	var err error
	cn.closeOnce.Do(func() {
		close(cn.closed)
		err = cn.Conn.Close()
		cn.ctl.forget(cn)
	})
	return err
}

// Listener wraps a net.Listener so every accepted connection carries
// the controller's faults — the server-side harness for
// accepted-but-silent and mid-stream failure tests.
type Listener struct {
	net.Listener
	ctl *Controller
}

// NewListener wraps l with the controller's fault injection.
func NewListener(l net.Listener, ctl *Controller) *Listener {
	return &Listener{Listener: l, ctl: ctl}
}

// Accept accepts from the wrapped listener and injects faults into the
// returned connection.
func (l *Listener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.ctl.Wrap(conn), nil
}
