package chaos

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// pipe returns a wrapped client end and the raw peer end.
func pipe(ctl *Controller) (*Conn, net.Conn) {
	a, b := net.Pipe()
	return ctl.Wrap(a), b
}

func TestBlackholeSwallowsWritesAndBlocksReads(t *testing.T) {
	ctl := NewController(1)
	cn, peer := pipe(ctl)
	defer cn.Close()
	defer peer.Close()

	ctl.Blackhole(true)

	// Writes report success without the peer ever reading.
	done := make(chan error, 1)
	go func() {
		n, err := cn.Write([]byte("swallowed"))
		if err == nil && n != len("swallowed") {
			err = io.ErrShortWrite
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("blackholed write: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("blackholed write blocked; want swallowed success")
	}

	// Reads block while the fault holds...
	got := make(chan struct{})
	go func() {
		buf := make([]byte, 8)
		if n, err := cn.Read(buf); err == nil {
			_ = n
			close(got)
		}
	}()
	select {
	case <-got:
		t.Fatal("read completed during blackhole")
	case <-time.After(30 * time.Millisecond):
	}

	// ...and complete once it lifts and the peer speaks.
	ctl.Blackhole(false)
	go peer.Write([]byte("hello")) //nolint:errcheck
	select {
	case <-got:
	case <-time.After(time.Second):
		t.Fatal("read did not resume after blackhole lifted")
	}
}

func TestOneWayPartitionDropsWritesOnly(t *testing.T) {
	ctl := NewController(2)
	cn, peer := pipe(ctl)
	defer cn.Close()
	defer peer.Close()

	ctl.DropWrites(true)
	if _, err := cn.Write([]byte("lost")); err != nil {
		t.Fatalf("partitioned write: %v", err)
	}
	peer.SetReadDeadline(time.Now().Add(30 * time.Millisecond)) //nolint:errcheck
	buf := make([]byte, 8)
	if n, err := peer.Read(buf); err == nil {
		t.Fatalf("peer received %d bytes through a write partition", n)
	}

	// The reverse direction still works.
	peer.SetReadDeadline(time.Time{}) //nolint:errcheck
	go peer.Write([]byte("back"))     //nolint:errcheck
	if _, err := cn.Read(buf); err != nil {
		t.Fatalf("reverse direction: %v", err)
	}
}

func TestTruncateNextWriteCutsMidFrame(t *testing.T) {
	ctl := NewController(3)
	cn, peer := pipe(ctl)
	defer cn.Close()
	defer peer.Close()

	ctl.TruncateNextWrite(4)
	var rcvd []byte
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 16)
		for {
			n, err := peer.Read(buf)
			rcvd = append(rcvd, buf[:n]...)
			if err != nil {
				return
			}
		}
	}()
	if _, err := cn.Write([]byte("full-frame")); err == nil {
		t.Fatal("truncated write reported success; want injected reset")
	}
	<-done
	if !bytes.Equal(rcvd, []byte("full")) {
		t.Fatalf("peer received %q, want the 4 truncated bytes %q", rcvd, "full")
	}
}

func TestResetNextFailsNextOp(t *testing.T) {
	ctl := NewController(4)
	cn, peer := pipe(ctl)
	defer peer.Close()

	ctl.ResetNext()
	if _, err := cn.Write([]byte("x")); err == nil {
		t.Fatal("write after ResetNext succeeded")
	}
	if _, err := cn.Write([]byte("x")); !errors.Is(err, net.ErrClosed) && err == nil {
		t.Fatal("connection still usable after injected reset")
	}
}

func TestCutClosesLiveConns(t *testing.T) {
	ctl := NewController(5)
	cn, peer := pipe(ctl)
	defer peer.Close()
	cn2, peer2 := pipe(ctl)
	defer peer2.Close()

	if got := ctl.Wrapped(); got != 2 {
		t.Fatalf("Wrapped() = %d, want 2", got)
	}
	ctl.Cut()
	buf := make([]byte, 1)
	if _, err := cn.Read(buf); err == nil {
		t.Fatal("read on first conn succeeded after Cut")
	}
	if _, err := cn2.Read(buf); err == nil {
		t.Fatal("read on second conn succeeded after Cut")
	}
}

func TestLatencyDelaysTraffic(t *testing.T) {
	ctl := NewController(6)
	cn, peer := pipe(ctl)
	defer cn.Close()
	defer peer.Close()

	const lat = 20 * time.Millisecond
	ctl.SetLatency(lat, 5*time.Millisecond)
	go func() {
		buf := make([]byte, 8)
		peer.Read(buf) //nolint:errcheck
	}()
	start := time.Now()
	if _, err := cn.Write([]byte("slow")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if e := time.Since(start); e < lat {
		t.Fatalf("write completed in %v, want at least the %v injected latency", e, lat)
	}
}

func TestListenerWrapsAcceptedConns(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ctl := NewController(7)
	l := NewListener(inner, ctl)
	defer l.Close()

	go func() {
		c, err := net.Dial("tcp", l.Addr().String())
		if err == nil {
			c.Write([]byte("ping")) //nolint:errcheck
			c.Close()
		}
	}()
	conn, err := l.Accept()
	if err != nil {
		t.Fatalf("accept: %v", err)
	}
	defer conn.Close()
	if _, ok := conn.(*Conn); !ok {
		t.Fatalf("accepted conn is %T, want *chaos.Conn", conn)
	}
	if got := ctl.Wrapped(); got != 1 {
		t.Fatalf("Wrapped() = %d, want 1", got)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatalf("read through wrapped conn: %v", err)
	}
	if string(buf) != "ping" {
		t.Fatalf("read %q, want %q", buf, "ping")
	}
}
