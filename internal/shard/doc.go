// Package shard partitions the sensing service's channels across N
// engine instances. It is the routing/ownership layer between the wire
// ingestion protocol and internal/stream: every channel id is owned by
// exactly one shard (an internal/stream.Engine today, one engine per
// node later — the router only touches the Engine surface), chosen by
// rendezvous (highest-random-weight) hashing over the live shard set.
//
// Rendezvous hashing gives the two properties resizing needs with no
// token tables: every key has a total order over shards, so adding a
// shard moves only the ~1/(N+1) of channels whose new maximum is the
// newcomer, and draining a shard moves only that shard's channels —
// nothing else shuffles.
//
// Ownership moves are explicit handoffs, not racy re-routing: the
// router serialises pushes per channel, quiesces the old owner
// (Engine.RemoveChannel drains the ring and flushes a partially
// integrated window into one final decision), carries the channel's
// counters over, and re-registers it on the new owner with fresh
// accumulator state. Every sample pushed before the handoff lands in
// exactly one decision window on the old shard; every sample after
// lands on the new one — windows are never lost to a move and never
// double-counted.
//
// AddShards grows the fleet, DrainShard empties and retires one shard,
// and Stats/ShardStats expose the aggregate and per-shard accounting
// (including momentary queue depth) the /metrics endpoint serves.
package shard
