package shard

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"tiledcfd/internal/stream"
)

// ErrCircuitOpen is returned by pushes to a remote shard whose circuit
// breaker is open: the shard is failing fast instead of burning a
// timeout per block.
var ErrCircuitOpen = fmt.Errorf("shard: circuit open")

// CircuitState is one remote shard's breaker position.
type CircuitState int32

// Breaker positions: a closed circuit passes traffic, an open one fails
// fast, and half-open admits a single probe to test recovery. The
// integer values are the `cfd_shard_circuit_state` gauge encoding.
const (
	// CircuitClosed passes traffic normally.
	CircuitClosed CircuitState = 0
	// CircuitHalfOpen admits probe traffic after the cooldown.
	CircuitHalfOpen CircuitState = 1
	// CircuitOpen fails fast; pushes shed until the cooldown elapses.
	CircuitOpen CircuitState = 2
)

// String names the state for health reports.
func (s CircuitState) String() string {
	switch s {
	case CircuitClosed:
		return "closed"
	case CircuitHalfOpen:
		return "half-open"
	case CircuitOpen:
		return "open"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// GuardConfig tunes the robustness layer wrapped around every remote
// sink: per-push deadlines, bounded retries with exponential backoff
// and jitter, the circuit breaker, and the heartbeat cadence.
type GuardConfig struct {
	// PushTimeout bounds one frame write to the worker (default 5s);
	// an overrun surfaces os.ErrDeadlineExceeded and counts toward
	// cfd_push_deadline_exceeded_total.
	PushTimeout time.Duration
	// MaxRetries is how many times a failed push is retried after a
	// redial (default 2, so 3 attempts total).
	MaxRetries int
	// RetryBackoff is the first retry's delay, doubled per attempt
	// (default 50ms).
	RetryBackoff time.Duration
	// MaxBackoff caps the doubling (default 2s).
	MaxBackoff time.Duration
	// FailThreshold is the consecutive-failure count that opens the
	// circuit (default 3).
	FailThreshold int
	// Cooldown is how long an open circuit waits before the half-open
	// probe (default 5s).
	Cooldown time.Duration
	// HealthInterval is the router's heartbeat cadence per remote shard
	// (default 2s).
	HealthInterval time.Duration
	// Seed drives the retry jitter deterministically (tests replay
	// byte-identically); 0 means seed 1.
	Seed int64
}

// withDefaults fills the zero fields.
func (c GuardConfig) withDefaults() GuardConfig {
	if c.PushTimeout == 0 {
		c.PushTimeout = 5 * time.Second
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.MaxBackoff == 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.FailThreshold == 0 {
		c.FailThreshold = 3
	}
	if c.Cooldown == 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.HealthInterval == 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// guard wraps a RemoteSink in the robustness layer. It implements Sink,
// so the router treats a guarded remote exactly like a local engine;
// the extra surface (State, check, Forget, counters) drives failover
// and observability.
type guard struct {
	rs  *RemoteSink
	cfg GuardConfig

	mu       sync.Mutex
	rng      *rand.Rand
	state    CircuitState
	fails    int
	openedAt time.Time

	retries          atomic.Int64
	deadlineExceeded atomic.Int64
}

var _ Sink = (*guard)(nil)

// newGuard wraps rs with cfg's robustness policy.
func newGuard(rs *RemoteSink, cfg GuardConfig) *guard {
	cfg = cfg.withDefaults()
	return &guard{rs: rs, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// State returns the breaker position.
func (g *guard) State() CircuitState {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.state
}

// allow reports whether traffic may pass, transitioning open→half-open
// when the cooldown has elapsed.
func (g *guard) allow() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	switch g.state {
	case CircuitClosed, CircuitHalfOpen:
		return true
	case CircuitOpen:
		if time.Since(g.openedAt) >= g.cfg.Cooldown {
			g.state = CircuitHalfOpen
			return true
		}
		return false
	}
	return false
}

// success resets the failure streak and closes the circuit.
func (g *guard) success() {
	g.mu.Lock()
	g.fails = 0
	g.state = CircuitClosed
	g.mu.Unlock()
}

// failure records one failed operation; a streak reaching the threshold
// — or any failure while half-open — opens the circuit.
func (g *guard) failure() {
	g.mu.Lock()
	g.fails++
	if g.fails >= g.cfg.FailThreshold || g.state == CircuitHalfOpen {
		g.state = CircuitOpen
		g.openedAt = time.Now()
	}
	g.mu.Unlock()
}

// backoff returns the delay before retry attempt (0-based): exponential
// from RetryBackoff, capped, plus up to 50% seeded jitter so a fleet of
// retrying channels does not synchronise.
func (g *guard) backoff(attempt int) time.Duration {
	d := g.cfg.RetryBackoff << attempt
	if d > g.cfg.MaxBackoff || d <= 0 {
		d = g.cfg.MaxBackoff
	}
	g.mu.Lock()
	jitter := time.Duration(g.rng.Int63n(int64(d)/2 + 1))
	g.mu.Unlock()
	return d + jitter
}

// note classifies one failed attempt into the robustness counters.
func (g *guard) note(err error) {
	if errors.Is(err, os.ErrDeadlineExceeded) {
		g.deadlineExceeded.Add(1)
	}
}

// check is the heartbeat: probe the worker (redialing a dead link) and
// settle the breaker. Called by the router's health loop every
// HealthInterval; the returned state drives failover and recovery.
func (g *guard) check() CircuitState {
	g.mu.Lock()
	if g.state == CircuitOpen && time.Since(g.openedAt) < g.cfg.Cooldown {
		g.mu.Unlock()
		return CircuitOpen
	}
	g.mu.Unlock()
	if err := g.probe(); err != nil {
		g.failure()
	} else {
		g.success()
	}
	return g.State()
}

// probe verifies liveness end to end: redial if the link is down, then
// a ping round-trip through the worker's frame loop.
func (g *guard) probe() error {
	if !g.rs.Connected() {
		if err := g.rs.Redial(); err != nil {
			return err
		}
	}
	return g.rs.Ping(g.cfg.PushTimeout)
}

// AddChannel registers a channel, allowing one redial retry so a fresh
// registration survives a just-dropped link.
func (g *guard) AddChannel(id string) error {
	return g.AddChannelCandidates(id, nil)
}

// AddChannelCandidates registers a channel with an alpha-candidate set,
// with the same one-redial retry policy as AddChannel.
func (g *guard) AddChannelCandidates(id string, alphas []int) error {
	if !g.allow() {
		return ErrCircuitOpen
	}
	err := g.rs.AddChannelCandidates(id, alphas)
	if err == nil {
		g.success()
		return nil
	}
	g.note(err)
	if rerr := g.rs.Redial(); rerr == nil {
		if err = g.rs.AddChannelCandidates(id, alphas); err == nil {
			g.success()
			return nil
		}
	}
	g.failure()
	return err
}

// Push delivers one block with the full robustness policy: fail fast on
// an open circuit, otherwise up to 1+MaxRetries attempts with a redial
// and jittered exponential backoff between them.
func (g *guard) Push(id string, samples []complex128) (int, error) {
	if !g.allow() {
		return 0, ErrCircuitOpen
	}
	var err error
	for attempt := 0; ; attempt++ {
		var n int
		n, err = g.rs.Push(id, samples)
		if err == nil {
			g.success()
			return n, nil
		}
		g.note(err)
		g.failure()
		if attempt >= g.cfg.MaxRetries {
			break
		}
		g.retries.Add(1)
		time.Sleep(g.backoff(attempt))
		if !g.allow() {
			break
		}
		// The failed write poisoned the connection; retry on a fresh one.
		if rerr := g.rs.Redial(); rerr != nil {
			g.note(rerr)
			g.failure()
			err = rerr
			break
		}
	}
	return 0, err
}

// RemoveChannel delegates to the remote sink.
func (g *guard) RemoveChannel(id string, timeout time.Duration) (stream.ChannelStats, error) {
	return g.rs.RemoveChannel(id, timeout)
}

// ChannelStats delegates to the remote sink.
func (g *guard) ChannelStats(id string) (stream.ChannelStats, bool) { return g.rs.ChannelStats(id) }

// Stats delegates to the remote sink (cached while the link is down).
func (g *guard) Stats() stream.Stats { return g.rs.Stats() }

// Flush delegates to the remote sink.
func (g *guard) Flush(timeout time.Duration) error { return g.rs.Flush(timeout) }

// Decisions is the remote sink's persistent decision stream.
func (g *guard) Decisions() <-chan stream.Decision { return g.rs.Decisions() }

// Forget drops a channel's local registration (forced failover).
func (g *guard) Forget(id string) { g.rs.Forget(id) }

// Close closes the remote sink.
func (g *guard) Close() error { return g.rs.Close() }
