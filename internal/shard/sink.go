package shard

import (
	"time"

	"tiledcfd/internal/stream"
)

// Sink is one shard's processing backend as the router sees it: the
// stream.Engine surface the routing layer actually uses, extracted so a
// shard can be an in-process engine or a remote worker reached over the
// wire protocol. A local shard is a *stream.Engine directly; a remote
// shard is a RemoteSink wrapped in the robustness layer (guard).
type Sink interface {
	// AddChannel registers a new channel on the shard.
	AddChannel(id string) error
	// AddChannelCandidates registers a new channel whose estimation is
	// restricted to the given alpha-candidate offsets (plus mirrors and
	// a=0). A nil set means the shard's configured default. Remote shards
	// carry the set in the wire open frame, so the worker prunes exactly
	// as a local engine would.
	AddChannelCandidates(id string, alphas []int) error
	// Push appends samples to a channel's stream in arrival order.
	Push(id string, samples []complex128) (int, error)
	// RemoveChannel quiesces and unregisters a channel, flushing a
	// partial window into one final decision, and returns its final
	// accounting.
	RemoveChannel(id string, timeout time.Duration) (stream.ChannelStats, error)
	// ChannelStats returns one channel's accounting; ok is false for an
	// unknown id.
	ChannelStats(id string) (stream.ChannelStats, bool)
	// Stats returns shard-wide accounting.
	Stats() stream.Stats
	// Flush blocks until pushed samples are processed and due decisions
	// made, or the timeout elapses.
	Flush(timeout time.Duration) error
	// Decisions is the shard's decision stream; closed by Close.
	Decisions() <-chan stream.Decision
	// Close stops the shard.
	Close() error
}

// A local shard is the engine itself.
var _ Sink = (*stream.Engine)(nil)

// forgetter is the extra surface a sink may offer for forced failover:
// dropping a channel's local registration without a remote round-trip,
// because the peer holding the state is already dead.
type forgetter interface {
	Forget(id string)
}
