package shard

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"tiledcfd/internal/chaos"
	"tiledcfd/internal/stream"
	"tiledcfd/internal/wire"
)

// fastGuard is a test-speed robustness policy: first failure opens the
// circuit, probes run every 20ms, and every round-trip is bounded by
// half a second so a dead worker is detected within a few ticks.
func fastGuard() GuardConfig {
	return GuardConfig{
		PushTimeout:    500 * time.Millisecond,
		MaxRetries:     1,
		RetryBackoff:   2 * time.Millisecond,
		MaxBackoff:     10 * time.Millisecond,
		FailThreshold:  1,
		Cooldown:       20 * time.Millisecond,
		HealthInterval: 20 * time.Millisecond,
	}
}

// testWorker hosts one engine behind a wire worker-mode server — an
// in-process stand-in for `cfdserve -shard-of`.
type testWorker struct {
	eng  *stream.Engine
	srv  *wire.Server
	addr string
}

// engineSink adapts the worker's engine to the wire data plane.
type engineSink struct{ eng *stream.Engine }

func (s engineSink) OpenChannel(meta wire.Meta) error { return s.eng.AddChannel(meta.ID) }
func (s engineSink) Push(id string, samples []complex128) (int, error) {
	return s.eng.Push(id, samples)
}

// startWorker serves a fresh engine on addr ("" picks a port; a dead
// worker's address restarts it at the same endpoint). A non-nil ctl
// wraps the listener for fault injection.
func startWorker(t *testing.T, addr string, ctl *chaos.Controller) *testWorker {
	t.Helper()
	eng, err := stream.New(testConfig(1).Engine)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := wire.NewServer(wire.ServerConfig{
		Sink:          engineSink{eng},
		Engine:        eng,
		RemoveOnClose: true,
	})
	if err != nil {
		eng.Close()
		t.Fatal(err)
	}
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		srv.Close()
		eng.Close()
		t.Fatal(err)
	}
	var served net.Listener = ln
	if ctl != nil {
		served = chaos.NewListener(ln, ctl)
	}
	srv.Serve(served)
	return &testWorker{eng: eng, srv: srv, addr: ln.Addr().String()}
}

// kill simulates a worker crash: connections die, engine state is gone.
func (w *testWorker) kill() {
	w.srv.Close()
	w.eng.Close()
}

// remoteConfig routes everything to the given workers (no local shards
// unless fallback spills one in).
func remoteConfig(workers []*testWorker, fallback bool) Config {
	cfg := testConfig(0)
	cfg.Shards = 0
	for i, w := range workers {
		cfg.Remotes = append(cfg.Remotes, RemoteShard{Name: fmt.Sprintf("r%d", i), Addr: w.addr})
	}
	cfg.Guard = fastGuard()
	cfg.FallbackLocal = fallback
	return cfg
}

// tally counts decisions off the merged stream, per channel.
type tally struct {
	mu    sync.Mutex
	perCh map[string]int64
	total int64
	done  chan struct{}
}

func tallyDecisions(r *Router) *tally {
	dt := &tally{perCh: map[string]int64{}, done: make(chan struct{})}
	go func() {
		defer close(dt.done)
		for d := range r.Decisions() {
			dt.mu.Lock()
			dt.perCh[d.Channel]++
			dt.total++
			dt.mu.Unlock()
		}
	}()
	return dt
}

func (dt *tally) get(ch string) int64 {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	return dt.perCh[ch]
}

func (dt *tally) sum() int64 {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	return dt.total
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRemoteShardEndToEnd drives a router whose only shard is a worker
// process reached over the wire: registration, lossless cf64 pushes,
// decisions streaming back, per-channel and aggregate accounting, and
// channel removal with final stats.
func TestRemoteShardEndToEnd(t *testing.T) {
	w := startWorker(t, "", nil)
	defer w.kill()
	r, err := New(remoteConfig([]*testWorker{w}, false))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	dt := tallyDecisions(r)
	ids := addChannels(t, r, 4)
	const windows = 2
	for i, id := range ids {
		for k := 0; k < windows; k++ {
			if n, err := r.Push(id, band(t, testWindow, uint64(i*10+k))); err != nil || n != testWindow {
				t.Fatalf("push %s window %d: n=%d err=%v", id, k, n, err)
			}
		}
	}
	if err := r.Flush(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	want := int64(len(ids) * windows)
	waitFor(t, 5*time.Second, "all decisions", func() bool { return dt.sum() == want })

	st := r.Stats()
	if st.SamplesIn != int64(len(ids)*windows*testWindow) || st.Surfaces != want {
		t.Fatalf("aggregate %d samples / %d surfaces, want %d / %d",
			st.SamplesIn, st.Surfaces, len(ids)*windows*testWindow, want)
	}
	if st.Shards != 1 || st.OpenCircuits != 0 || st.ShedSamples != 0 {
		t.Fatalf("healthy remote stats: %+v", st)
	}
	ss := r.ShardStats()
	if len(ss) != 1 || !ss[0].Remote || ss[0].Addr != w.addr || ss[0].State != "ok" || ss[0].Channels != len(ids) {
		t.Fatalf("shard stats %+v", ss[0])
	}
	for _, id := range ids {
		cs, ok := r.ChannelStats(id)
		if !ok || cs.SamplesIn != windows*testWindow || cs.Snapshots != windows {
			t.Fatalf("%s: stats %+v ok=%v, want %d samples / %d windows",
				id, cs, ok, windows*testWindow, windows)
		}
	}
	cs, err := r.RemoveChannel(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if cs.SamplesIn != windows*testWindow || cs.Snapshots != windows {
		t.Fatalf("removed channel final stats %+v", cs)
	}
}

// TestFailoverCarriesCounters is the tentpole acceptance test: kill a
// remote worker mid-session, watch the router open its circuit and
// re-home its channels onto the survivor within the health interval,
// keep decisions flowing, then restart the worker and watch it rejoin —
// with per-channel accounting exact throughout (every accepted window
// decided exactly once, no decision double-counted).
func TestFailoverCarriesCounters(t *testing.T) {
	wa := startWorker(t, "", nil)
	defer wa.kill()
	wb := startWorker(t, "", nil)
	defer wb.kill()
	r, err := New(remoteConfig([]*testWorker{wa, wb}, false))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	dt := tallyDecisions(r)
	ids := addChannels(t, r, 12)

	accepted := make(map[string]int64)
	pushAll := func(round int) {
		t.Helper()
		for i, id := range ids {
			n, err := r.Push(id, band(t, testWindow, uint64(round*100+i)))
			if err != nil {
				t.Fatalf("push %s round %d: %v", id, round, err)
			}
			accepted[id] += int64(n)
		}
	}
	// expect asserts every channel has exactly one decision per accepted
	// window — the no-loss, no-double-count invariant.
	expect := func(phase string) {
		t.Helper()
		if err := r.Flush(10 * time.Second); err != nil {
			t.Fatalf("%s: flush: %v", phase, err)
		}
		for _, id := range ids {
			want := accepted[id] / testWindow
			waitFor(t, 5*time.Second, fmt.Sprintf("%s: %s decisions", phase, id),
				func() bool { return dt.get(id) == want })
			cs, ok := r.ChannelStats(id)
			if !ok || cs.Snapshots != want || cs.SamplesIn != accepted[id] {
				t.Fatalf("%s: %s stats %+v ok=%v, want %d windows / %d samples",
					phase, id, cs, ok, want, accepted[id])
			}
		}
	}

	pushAll(0)
	expect("before failover")
	onA := 0
	for _, id := range ids {
		if cs, _ := r.ChannelStats(id); cs.Shard == "r0" {
			onA++
		}
	}
	if onA == 0 || onA == len(ids) {
		t.Fatalf("rendezvous put %d/%d channels on r0 — test needs both shards owning some", onA, len(ids))
	}
	// Snapshot the aggregate before the crash: totals must never move
	// backwards through failover and restart.
	preCrash := r.Stats()

	wa.kill()
	waitFor(t, 10*time.Second, "failover off r0", func() bool {
		if r.Stats().Failovers < 1 {
			return false
		}
		for _, id := range ids {
			if cs, _ := r.ChannelStats(id); cs.Shard != "r1" {
				return false
			}
		}
		return true
	})
	if open := r.OpenCircuits(); len(open) != 1 || open[0] != "r0" {
		t.Fatalf("OpenCircuits() = %v, want [r0]", open)
	}
	if st := r.Stats(); st.OpenCircuits != 1 || st.Shards != 1 {
		t.Fatalf("degraded stats %+v, want 1 open circuit over 1 live shard", st)
	}

	// Decisions keep flowing through the outage, all on the survivor.
	pushAll(1)
	expect("during outage")
	if st := r.Stats(); st.SamplesIn < preCrash.SamplesIn || st.Surfaces < preCrash.Surfaces {
		t.Fatalf("aggregate moved backwards across failover: %+v -> %+v", preCrash, st)
	}

	// Restart the worker at the same address: the health loop closes the
	// circuit and rebalances channels back (a lossless handoff now).
	wa2 := startWorker(t, wa.addr, nil)
	defer wa2.kill()
	waitFor(t, 10*time.Second, "r0 reinstated", func() bool {
		return len(r.OpenCircuits()) == 0 && r.Stats().Shards == 2
	})
	waitFor(t, 10*time.Second, "channels rebalanced back", func() bool {
		back := 0
		for _, id := range ids {
			if cs, _ := r.ChannelStats(id); cs.Shard == "r0" {
				back++
			}
		}
		return back == onA
	})
	pushAll(2)
	expect("after recovery")
	st := r.Stats()
	if st.SamplesIn < preCrash.SamplesIn || st.Surfaces < preCrash.Surfaces {
		t.Fatalf("aggregate moved backwards across restart: %+v -> %+v", preCrash, st)
	}
	if st.Failovers < 1 {
		t.Fatalf("Failovers = %d, want >= 1", st.Failovers)
	}
}

// TestFallbackLocalSpillsWhenAllRemotesDown: with FallbackLocal, losing
// the only remote spills its channels onto a lazily created local
// engine and sensing continues; without one they would shed.
func TestFallbackLocalSpillsWhenAllRemotesDown(t *testing.T) {
	w := startWorker(t, "", nil)
	defer w.kill()
	r, err := New(remoteConfig([]*testWorker{w}, true))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	dt := tallyDecisions(r)
	ids := addChannels(t, r, 4)
	for i, id := range ids {
		if _, err := r.Push(id, band(t, testWindow, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Flush(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "pre-crash decisions", func() bool { return dt.sum() == int64(len(ids)) })

	w.kill()
	waitFor(t, 10*time.Second, "spill to fallback", func() bool {
		for _, id := range ids {
			if cs, _ := r.ChannelStats(id); cs.Shard != "fallback" {
				return false
			}
		}
		return true
	})
	for i, id := range ids {
		if n, err := r.Push(id, band(t, testWindow, uint64(100+i))); err != nil || n != testWindow {
			t.Fatalf("push %s onto fallback: n=%d err=%v", id, n, err)
		}
	}
	if err := r.Flush(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "fallback decisions", func() bool { return dt.sum() == int64(2*len(ids)) })
	found := false
	for _, s := range r.ShardStats() {
		if s.Name == "fallback" && !s.Remote && s.Channels == len(ids) {
			found = true
		}
	}
	if !found {
		t.Fatalf("fallback shard missing from %+v", r.ShardStats())
	}
	if st := r.Stats(); st.Failovers < 1 || st.OpenCircuits != 1 {
		t.Fatalf("stats %+v, want a failover and one open circuit", st)
	}
}

// TestBlackholedRemoteShedsAndRecovers wedges (rather than kills) the
// worker with a chaos blackhole: pushes overrun the per-push deadline,
// retries burn out, the circuit opens and — with nowhere to re-home —
// samples shed with accounting. Lifting the fault heals the link.
func TestBlackholedRemoteShedsAndRecovers(t *testing.T) {
	ctl := chaos.NewController(42)
	w := startWorker(t, "", ctl)
	defer w.kill()
	cfg := remoteConfig([]*testWorker{w}, false)
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	dt := tallyDecisions(r)
	ids := addChannels(t, r, 2)
	for i, id := range ids {
		if _, err := r.Push(id, band(t, testWindow, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Flush(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "healthy decisions", func() bool { return dt.sum() == int64(len(ids)) })

	ctl.Blackhole(true)
	// Keep pushing into the void until the breaker trips; the writes
	// first absorb into TCP buffers, then overrun the push deadline.
	waitFor(t, 30*time.Second, "circuit to open under blackhole", func() bool {
		for i, id := range ids {
			r.Push(id, band(t, testWindow, uint64(200+i))) //nolint:errcheck // shedding is the point
		}
		return len(r.OpenCircuits()) == 1
	})
	// With the circuit open and no healthy shard to take the channels,
	// further pushes shed with accounting instead of erroring.
	for i, id := range ids {
		n, err := r.Push(id, band(t, testWindow, uint64(300+i)))
		if err != nil || n != 0 {
			t.Fatalf("push on open circuit: n=%d err=%v, want shed (0, nil)", n, err)
		}
	}
	st := r.Stats()
	if st.ShedSamples < int64(len(ids)*testWindow) {
		t.Fatalf("ShedSamples = %d, want at least the %d shed on the open circuit",
			st.ShedSamples, len(ids)*testWindow)
	}
	// Retries are NOT asserted here: whether a push ever enters the
	// retry path before the health probe opens the circuit is a race
	// the blackhole deliberately does not control —
	// TestPushRetriesAfterConnectionReset covers the retry path
	// deterministically.
	shed := st.ShedSamples
	for _, id := range ids {
		cs, ok := r.ChannelStats(id)
		if !ok || cs.SamplesDropped == 0 {
			t.Fatalf("%s: SamplesDropped = %d ok=%v, want shed samples accounted per channel",
				id, cs.SamplesDropped, ok)
		}
	}

	ctl.Blackhole(false)
	ctl.Cut() // old wedged connections die; the next probe redials clean
	waitFor(t, 10*time.Second, "circuit to close after the fault lifts", func() bool {
		return len(r.OpenCircuits()) == 0
	})
	before := dt.sum()
	for i, id := range ids {
		if n, err := r.Push(id, band(t, testWindow, uint64(400+i))); err != nil || n != testWindow {
			t.Fatalf("push after recovery: n=%d err=%v", n, err)
		}
	}
	if err := r.Flush(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "decisions after recovery", func() bool {
		return dt.sum() >= before+int64(len(ids))
	})
	if post := r.Stats(); post.ShedSamples != shed {
		t.Fatalf("ShedSamples moved %d -> %d after recovery, want stable", shed, post.ShedSamples)
	}
}

// TestPushRetriesAfterConnectionReset covers the retry path
// deterministically: a mid-stream connection reset fails one push
// attempt fast, the guard redials and the retry lands, so the caller
// never sees the fault. The heartbeat is parked and the breaker
// threshold raised so the push path — not the health loop — must do
// the redial, guaranteeing Stats().Retries advances.
func TestPushRetriesAfterConnectionReset(t *testing.T) {
	ctl := chaos.NewController(7)
	w := startWorker(t, "", ctl)
	defer w.kill()
	cfg := remoteConfig([]*testWorker{w}, false)
	cfg.Guard.FailThreshold = 3
	cfg.Guard.HealthInterval = time.Hour
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	dt := tallyDecisions(r)
	ids := addChannels(t, r, 1)
	id := ids[0]
	if n, err := r.Push(id, band(t, testWindow, 1)); err != nil || n != testWindow {
		t.Fatalf("healthy push: n=%d err=%v", n, err)
	}
	if err := r.Flush(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "healthy decision", func() bool { return dt.sum() == 1 })

	ctl.ResetNext()
	// The reset tears the worker-side connection on its next read; which
	// push trips over it depends on kernel buffering, so push until the
	// guard has recorded a retry. Every push must still succeed — the
	// redial-and-retry inside the guard absorbs the fault.
	seed := uint64(2)
	waitFor(t, 10*time.Second, "a push to retry through the reset", func() bool {
		n, err := r.Push(id, band(t, testWindow, seed))
		seed++
		if err != nil || n != testWindow {
			t.Fatalf("push through reset: n=%d err=%v, want transparent retry", n, err)
		}
		return r.Stats().Retries >= 1
	})
	if open := r.OpenCircuits(); len(open) != 0 {
		t.Fatalf("open circuits %v after a single reset, want none (threshold is 3)", open)
	}
	if err := r.Flush(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Retries < 1 || st.Failovers != 0 || st.ShedSamples != 0 {
		t.Fatalf("stats %+v, want retries with no failover or shedding", st)
	}
}

// TestRouterFlushRacingClose: Flush racing Close must neither hang nor
// panic — it returns an error or succeeds, and Close always wins.
func TestRouterFlushRacingClose(t *testing.T) {
	for i := 0; i < 3; i++ {
		r, err := New(testConfig(2))
		if err != nil {
			t.Fatal(err)
		}
		ids := addChannels(t, r, 4)
		for j, id := range ids {
			if _, err := r.Push(id, band(t, testWindow/2, uint64(j))); err != nil {
				t.Fatal(err)
			}
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			r.Flush(250 * time.Millisecond) //nolint:errcheck // racing Close; either outcome is fine
		}()
		go func() {
			defer wg.Done()
			if err := r.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		}()
		wg.Wait()
		for range r.Decisions() {
		}
	}
}

// TestRouterHandoffDuringPushes drains a shard while every channel is
// being pushed concurrently: handoffs serialise with pushes, so nothing
// is lost or double-counted.
func TestRouterHandoffDuringPushes(t *testing.T) {
	r, err := New(testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ids := addChannels(t, r, 9)
	const windows = 6
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			for k := 0; k < windows; k++ {
				if _, err := r.Push(id, band(t, testWindow, uint64(i*100+k))); err != nil {
					t.Errorf("push %s: %v", id, err)
					return
				}
			}
		}(i, id)
	}
	// Retire a shard mid-stream; its channels hand off under load.
	if err := r.DrainShard(r.ShardStats()[0].Name); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if err := r.Flush(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		cs, ok := r.ChannelStats(id)
		if !ok || cs.SamplesIn != int64(windows*testWindow) || cs.Snapshots != windows {
			t.Fatalf("%s: %+v ok=%v, want %d windows intact through the drain",
				id, cs, ok, windows)
		}
	}
	st := r.Stats()
	if st.SamplesIn != int64(len(ids)*windows*testWindow) || st.Surfaces != int64(len(ids)*windows) {
		t.Fatalf("aggregate %+v, want full accounting across the drain", st)
	}
}
