package shard

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"tiledcfd/internal/stream"
)

// ErrClosed is returned by router operations after Close.
var ErrClosed = fmt.Errorf("shard: router closed")

// DefaultHandoffTimeout bounds one channel's quiesce during an
// ownership move.
const DefaultHandoffTimeout = 30 * time.Second

// Config configures a Router.
type Config struct {
	// Shards is the initial shard count (default 1). Each shard is its
	// own stream.Engine built from the Engine template.
	Shards int
	// Engine is the per-shard engine template; Engine.Estimator is
	// required. Engine.Workers applies per shard, so the service's
	// total worker count is Shards × Workers.
	Engine stream.Config
	// DecisionBuffer is the capacity of the merged Decisions channel
	// (default 1024). Overflowing decisions are dropped and counted;
	// the latest per channel stays available via ChannelStats.
	DecisionBuffer int
	// HandoffTimeout bounds one channel's quiesce during rebalancing
	// (default 30s).
	HandoffTimeout time.Duration
}

// Decision is one engine decision tagged with the shard that made it.
type Decision struct {
	stream.Decision
	// Shard names the owning shard at decision time.
	Shard string
}

// ShardStats is one shard's public accounting.
type ShardStats struct {
	// Name identifies the shard.
	Name string
	// Channels is the number of channels the shard currently owns.
	Channels int
	// Stats is the shard engine's accounting (lifetime counters plus
	// the momentary QueuedSamples ingestion depth).
	Stats stream.Stats
}

// ChannelStats aggregates one channel's accounting across every shard
// that ever owned it.
type ChannelStats struct {
	// ID names the channel; Shard its current owner.
	ID, Shard string
	// SamplesIn, SamplesDropped, Snapshots and Detections sum the
	// channel's counters across all owners.
	SamplesIn, SamplesDropped, Snapshots, Detections int64
	// Handoffs counts ownership moves the channel has been through.
	Handoffs int64
	// Last is the most recent decision on the current owner (nil before
	// the first since the last handoff).
	Last *stream.Decision
	// Err is the failure message of a dead channel.
	Err string
}

// Stats is router-wide accounting: live shards summed with every
// drained shard's final counters, so totals never move backwards on
// rebalancing.
type Stats struct {
	// Shards and Channels count the live topology.
	Shards, Channels int
	// SamplesIn, SamplesDropped, Surfaces, Detections and
	// DecisionsDropped aggregate the engine counters.
	SamplesIn, SamplesDropped, Surfaces, Detections, DecisionsDropped int64
	// QueuedSamples is the momentary ingestion depth summed over live
	// shards.
	QueuedSamples int64
	// Handoffs counts channel ownership moves.
	Handoffs int64
	// Elapsed is the time since the router started.
	Elapsed time.Duration
	// SamplesPerSec is the lifetime-average ingest rate.
	SamplesPerSec float64
}

// shardState is one engine instance plus its identity.
type shardState struct {
	name string
	eng  *stream.Engine
}

// entry is one channel's routing record. Pushes and handoffs serialise
// on mu; owner is additionally atomic so stats readers never block on a
// backpressured push.
type entry struct {
	id string

	mu       sync.Mutex
	owner    atomic.Pointer[shardState]
	removed  bool
	handoffs atomic.Int64
	// Carryover accumulates the counters of previous owners, added at
	// each handoff so aggregate channel stats never move backwards.
	carryIn, carryDropped, carrySnapshots, carryDetections int64
	// carryLast preserves the most recent decision across a handoff
	// (including a partial window flushed by the quiesce) until the new
	// owner produces one.
	carryLast *stream.Decision
}

// Router owns the channel→shard mapping and the shard engines.
type Router struct {
	cfg Config

	// topo serialises topology changes (AddShards, DrainShard, Close).
	topo sync.Mutex
	// mu guards the lookup maps.
	mu      sync.RWMutex
	shards  map[string]*shardState
	live    []string // names eligible for ownership, registration order
	entries map[string]*entry
	nextID  int
	closed  bool
	// retired accumulates final counters of drained shards.
	retiredIn, retiredDropped, retiredSurfaces, retiredDetections, retiredDecDropped int64

	out              chan Decision
	fwdWG            sync.WaitGroup
	decisionsDropped atomic.Int64
	handoffs         atomic.Int64
	start            time.Time
}

// New builds the initial shard fleet and starts its engines.
func New(cfg Config) (*Router, error) {
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("shard: Shards=%d must be >= 1", cfg.Shards)
	}
	if cfg.DecisionBuffer == 0 {
		cfg.DecisionBuffer = 1024
	}
	if cfg.HandoffTimeout == 0 {
		cfg.HandoffTimeout = DefaultHandoffTimeout
	}
	r := &Router{
		cfg:     cfg,
		shards:  make(map[string]*shardState),
		entries: make(map[string]*entry),
		out:     make(chan Decision, cfg.DecisionBuffer),
		start:   time.Now(),
	}
	for i := 0; i < cfg.Shards; i++ {
		if _, err := r.addShardLocked(); err != nil {
			for _, s := range r.shards {
				s.eng.Close()
			}
			return nil, err
		}
	}
	return r, nil
}

// addShardLocked creates one engine and its decision forwarder. Caller
// holds no locks during New, or r.mu during growth — the maps are only
// touched here.
func (r *Router) addShardLocked() (*shardState, error) {
	eng, err := stream.New(r.cfg.Engine)
	if err != nil {
		return nil, err
	}
	s := &shardState{name: fmt.Sprintf("shard%d", r.nextID), eng: eng}
	r.nextID++
	r.shards[s.name] = s
	r.live = append(r.live, s.name)
	r.fwdWG.Add(1)
	go func() {
		defer r.fwdWG.Done()
		for d := range eng.Decisions() {
			select {
			case r.out <- Decision{Decision: d, Shard: s.name}:
			default:
				r.decisionsDropped.Add(1)
			}
		}
	}()
	return s, nil
}

// fmix64 is the murmur3 64-bit finalizer. FNV-1a alone is too linear
// for rendezvous scoring — names differing in one trailing digit keep a
// near-constant score offset across ids, so one shard wins every key.
// The finalizer's full avalanche breaks that structure.
func fmix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// owner picks the rendezvous (highest-random-weight) shard for id over
// the live set: the shard maximising hash(shard‖id). Deterministic,
// and minimally disruptive under resizing — a key moves only when its
// maximum enters or leaves the set.
func (r *Router) ownerLocked(id string) *shardState {
	var best *shardState
	var bestScore uint64
	for _, name := range r.live {
		h := fnv.New64a()
		h.Write([]byte(name))
		h.Write([]byte{0})
		h.Write([]byte(id))
		score := fmix64(h.Sum64())
		if best == nil || score > bestScore || (score == bestScore && name > best.name) {
			best, bestScore = r.shards[name], score
		}
	}
	return best
}

// AddChannel registers a channel on its rendezvous owner.
func (r *Router) AddChannel(id string) error {
	if id == "" {
		return fmt.Errorf("shard: empty channel id")
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	if _, dup := r.entries[id]; dup {
		r.mu.Unlock()
		return fmt.Errorf("shard: channel %q already exists", id)
	}
	own := r.ownerLocked(id)
	e := &entry{id: id}
	e.owner.Store(own)
	r.entries[id] = e
	r.mu.Unlock()
	if err := own.eng.AddChannel(id); err != nil {
		r.mu.Lock()
		delete(r.entries, id)
		r.mu.Unlock()
		return err
	}
	return nil
}

// Push appends samples to a channel's stream on its current owner.
// Pushes to one channel serialise with each other and with handoffs, so
// a rebalance never interleaves with a half-delivered block.
func (r *Router) Push(id string, samples []complex128) (int, error) {
	r.mu.RLock()
	e := r.entries[id]
	closed := r.closed
	r.mu.RUnlock()
	if closed {
		return 0, ErrClosed
	}
	if e == nil {
		return 0, fmt.Errorf("shard: unknown channel %q", id)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.removed {
		return 0, fmt.Errorf("shard: channel %q removed", id)
	}
	return e.owner.Load().eng.Push(id, samples)
}

// handoff moves one channel to a new owner: quiesce and unregister on
// the old engine (flushing a partial window into one final decision),
// carry the counters over, register fresh state on the new engine.
func (r *Router) handoff(e *entry, to *shardState) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.removed {
		return nil
	}
	from := e.owner.Load()
	if from == to {
		return nil
	}
	cs, err := from.eng.RemoveChannel(e.id, r.cfg.HandoffTimeout)
	if err != nil {
		return fmt.Errorf("shard: handoff %q off %s: %w", e.id, from.name, err)
	}
	e.carryIn += cs.SamplesIn
	e.carryDropped += cs.SamplesDropped
	e.carrySnapshots += cs.Snapshots
	e.carryDetections += cs.Detections
	if cs.Last != nil {
		e.carryLast = cs.Last
	}
	if err := to.eng.AddChannel(e.id); err != nil {
		return fmt.Errorf("shard: handoff %q onto %s: %w", e.id, to.name, err)
	}
	e.owner.Store(to)
	e.handoffs.Add(1)
	r.handoffs.Add(1)
	return nil
}

// rebalanceLocked computes the moves a topology change requires.
// r.mu must be held; the returned moves are executed after release.
func (r *Router) rebalanceLocked() (moves []*entry, targets []*shardState) {
	for _, e := range r.entries {
		want := r.ownerLocked(e.id)
		if e.owner.Load() != want {
			moves = append(moves, e)
			targets = append(targets, want)
		}
	}
	return moves, targets
}

// AddShards grows the fleet by n shards and rebalances: only channels
// whose rendezvous maximum is a newcomer move. Returns the new shard
// names.
func (r *Router) AddShards(n int) ([]string, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: AddShards(%d) must add at least one", n)
	}
	r.topo.Lock()
	defer r.topo.Unlock()
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	names := make([]string, 0, n)
	for i := 0; i < n; i++ {
		s, err := r.addShardLocked()
		if err != nil {
			r.mu.Unlock()
			return names, err
		}
		names = append(names, s.name)
	}
	moves, targets := r.rebalanceLocked()
	r.mu.Unlock()
	for i, e := range moves {
		if err := r.handoff(e, targets[i]); err != nil {
			return names, err
		}
	}
	return names, nil
}

// DrainShard hands every channel off a shard to the survivors, retires
// the shard's final counters into the aggregate, and closes its
// engine. The last shard cannot be drained.
func (r *Router) DrainShard(name string) error {
	r.topo.Lock()
	defer r.topo.Unlock()
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	s := r.shards[name]
	if s == nil {
		r.mu.Unlock()
		return fmt.Errorf("shard: unknown shard %q", name)
	}
	if len(r.live) == 1 {
		r.mu.Unlock()
		return fmt.Errorf("shard: cannot drain the last shard %q", name)
	}
	// Remove from the ownership set first: rendezvous owners for its
	// channels are recomputed over the survivors.
	for i, n := range r.live {
		if n == name {
			r.live = append(r.live[:i], r.live[i+1:]...)
			break
		}
	}
	moves, targets := r.rebalanceLocked()
	r.mu.Unlock()
	for i, e := range moves {
		if err := r.handoff(e, targets[i]); err != nil {
			return err
		}
	}
	// The shard is empty now; bank its lifetime counters and retire it.
	final := s.eng.Stats()
	r.mu.Lock()
	r.retiredIn += final.SamplesIn
	r.retiredDropped += final.SamplesDropped
	r.retiredSurfaces += final.Surfaces
	r.retiredDetections += final.Detections
	r.retiredDecDropped += final.DecisionsDropped
	delete(r.shards, name)
	r.mu.Unlock()
	return s.eng.Close()
}

// RemoveChannel unregisters a channel entirely (quiescing it and
// flushing a partial window, as stream.Engine.RemoveChannel), returning
// its aggregate final stats.
func (r *Router) RemoveChannel(id string) (ChannelStats, error) {
	r.mu.RLock()
	e := r.entries[id]
	r.mu.RUnlock()
	if e == nil {
		return ChannelStats{}, fmt.Errorf("shard: unknown channel %q", id)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.removed {
		return ChannelStats{}, fmt.Errorf("shard: channel %q removed", id)
	}
	own := e.owner.Load()
	cs, err := own.eng.RemoveChannel(id, r.cfg.HandoffTimeout)
	if err != nil {
		return ChannelStats{}, err
	}
	e.removed = true
	r.mu.Lock()
	delete(r.entries, id)
	r.mu.Unlock()
	return e.statsLocked(own, cs), nil
}

// statsLocked merges the current owner's channel stats with the entry's
// carryover. Caller holds e.mu.
func (e *entry) statsLocked(own *shardState, cs stream.ChannelStats) ChannelStats {
	last := cs.Last
	if last == nil {
		last = e.carryLast
	}
	return ChannelStats{
		ID:             e.id,
		Shard:          own.name,
		SamplesIn:      e.carryIn + cs.SamplesIn,
		SamplesDropped: e.carryDropped + cs.SamplesDropped,
		Snapshots:      e.carrySnapshots + cs.Snapshots,
		Detections:     e.carryDetections + cs.Detections,
		Handoffs:       e.handoffs.Load(),
		Last:           last,
		Err:            cs.Err,
	}
}

// Decisions returns the merged decision stream across all shards,
// tagged with the emitting shard. Closed by Close.
func (r *Router) Decisions() <-chan Decision { return r.out }

// Channels returns the registered channel ids (unordered).
func (r *Router) Channels() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.entries))
	for id := range r.entries {
		out = append(out, id)
	}
	return out
}

// ChannelStats returns one channel's aggregate accounting across every
// owner it has had; ok is false for an unknown id. It serialises with
// pushes and handoffs on that channel, so the sums are exact (never
// read mid-move).
func (r *Router) ChannelStats(id string) (ChannelStats, bool) {
	r.mu.RLock()
	e := r.entries[id]
	r.mu.RUnlock()
	if e == nil {
		return ChannelStats{}, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.removed {
		return ChannelStats{}, false
	}
	own := e.owner.Load()
	cs, _ := own.eng.ChannelStats(id)
	return e.statsLocked(own, cs), true
}

// ShardStats returns per-shard accounting in registration order.
func (r *Router) ShardStats() []ShardStats {
	r.mu.RLock()
	names := append([]string(nil), r.live...)
	shards := make([]*shardState, len(names))
	for i, n := range names {
		shards[i] = r.shards[n]
	}
	counts := make(map[string]int)
	for _, e := range r.entries {
		if own := e.owner.Load(); own != nil {
			counts[own.name]++
		}
	}
	r.mu.RUnlock()
	out := make([]ShardStats, len(shards))
	for i, s := range shards {
		out[i] = ShardStats{Name: s.name, Channels: counts[s.name], Stats: s.eng.Stats()}
	}
	return out
}

// Stats returns router-wide accounting: live engines plus retired
// shards' banked counters.
func (r *Router) Stats() Stats {
	r.mu.RLock()
	shards := make([]*shardState, 0, len(r.live))
	for _, n := range r.live {
		shards = append(shards, r.shards[n])
	}
	st := Stats{
		Shards:           len(r.live),
		Channels:         len(r.entries),
		SamplesIn:        r.retiredIn,
		SamplesDropped:   r.retiredDropped,
		Surfaces:         r.retiredSurfaces,
		Detections:       r.retiredDetections,
		DecisionsDropped: r.retiredDecDropped + r.decisionsDropped.Load(),
	}
	r.mu.RUnlock()
	for _, s := range shards {
		es := s.eng.Stats()
		st.SamplesIn += es.SamplesIn
		st.SamplesDropped += es.SamplesDropped
		st.Surfaces += es.Surfaces
		st.Detections += es.Detections
		st.DecisionsDropped += es.DecisionsDropped
		st.QueuedSamples += es.QueuedSamples
	}
	st.Handoffs = r.handoffs.Load()
	st.Elapsed = time.Since(r.start)
	if sec := st.Elapsed.Seconds(); sec > 0 {
		st.SamplesPerSec = float64(st.SamplesIn) / sec
	}
	return st
}

// Flush drains every shard's rings and due decisions, or times out.
func (r *Router) Flush(timeout time.Duration) error {
	r.mu.RLock()
	shards := make([]*shardState, 0, len(r.live))
	for _, n := range r.live {
		shards = append(shards, r.shards[n])
	}
	r.mu.RUnlock()
	deadline := time.Now().Add(timeout)
	for _, s := range shards {
		left := time.Until(deadline)
		if left <= 0 {
			return fmt.Errorf("shard: flush timed out after %v", timeout)
		}
		if err := s.eng.Flush(left); err != nil {
			return err
		}
	}
	return nil
}

// Close stops every shard engine and closes the merged Decisions
// channel. Idempotent.
func (r *Router) Close() error {
	r.topo.Lock()
	defer r.topo.Unlock()
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	shards := make([]*shardState, 0, len(r.shards))
	for _, s := range r.shards {
		shards = append(shards, s)
	}
	r.mu.Unlock()
	var first error
	for _, s := range shards {
		if err := s.eng.Close(); err != nil && first == nil {
			first = err
		}
	}
	r.fwdWG.Wait()
	close(r.out)
	return first
}
