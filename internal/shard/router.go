package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tiledcfd/internal/stream"
)

// ErrClosed is returned by router operations after Close.
var ErrClosed = fmt.Errorf("shard: router closed")

// DefaultHandoffTimeout bounds one channel's quiesce during an
// ownership move.
const DefaultHandoffTimeout = 30 * time.Second

// RemoteShard names one worker-process shard reached over the wire
// protocol (a cfdserve started with -shard-of).
type RemoteShard struct {
	// Name identifies the shard in stats and health reports; defaults to
	// the next shardN name.
	Name string
	// Addr is the worker's listen address. Required.
	Addr string
}

// Config configures a Router.
type Config struct {
	// Shards is the initial local shard count. Each local shard is its
	// own stream.Engine built from the Engine template. Defaults to 1
	// when no Remotes are configured, 0 otherwise.
	Shards int
	// Engine is the per-shard engine template; Engine.Estimator is
	// required. Engine.Workers applies per shard, so the service's
	// total worker count is Shards × Workers.
	Engine stream.Config
	// Remotes are worker-process shards driven over the wire protocol.
	// Each is wrapped in the robustness layer (Guard): per-push
	// deadlines, retries with backoff, a circuit breaker, heartbeat
	// health checks, and failover re-homing onto healthy shards.
	Remotes []RemoteShard
	// Guard tunes the robustness layer around every remote sink.
	Guard GuardConfig
	// FallbackLocal spills channels onto a lazily created local engine
	// (named "fallback") when every shard is down, instead of shedding
	// their samples.
	FallbackLocal bool
	// DecisionBuffer is the capacity of the merged Decisions channel
	// (default 1024). Overflowing decisions are dropped and counted;
	// the latest per channel stays available via ChannelStats.
	DecisionBuffer int
	// HandoffTimeout bounds one channel's quiesce during rebalancing
	// (default 30s).
	HandoffTimeout time.Duration
}

// Decision is one engine decision tagged with the shard that made it.
type Decision struct {
	stream.Decision
	// Shard names the owning shard at decision time.
	Shard string
}

// ShardStats is one shard's public accounting.
type ShardStats struct {
	// Name identifies the shard.
	Name string
	// Remote reports whether the shard lives in another process; Addr is
	// its dial address when it does.
	Remote bool
	// Addr is the remote worker's address ("" for local shards).
	Addr string
	// State is "ok" for a healthy shard, or the remote circuit-breaker
	// position ("half-open", "open") while the robustness layer is
	// degraded.
	State string
	// Channels is the number of channels the shard currently owns.
	Channels int
	// Stats is the shard engine's accounting (lifetime counters plus
	// the momentary QueuedSamples ingestion depth). For a down remote it
	// is the last snapshot fetched before the outage.
	Stats stream.Stats
}

// ChannelStats aggregates one channel's accounting across every shard
// that ever owned it.
type ChannelStats struct {
	// ID names the channel; Shard its current owner.
	ID, Shard string
	// SamplesIn, SamplesDropped, Snapshots and Detections sum the
	// channel's counters across all owners. SamplesDropped includes
	// samples shed because the owner was unreachable.
	SamplesIn, SamplesDropped, Snapshots, Detections int64
	// Handoffs counts ownership moves the channel has been through.
	Handoffs int64
	// Last is the most recent decision on the current owner (nil before
	// the first since the last handoff).
	Last *stream.Decision
	// Err is the failure message of a dead channel.
	Err string
}

// Stats is router-wide accounting: live shards summed with every
// drained shard's final counters, so totals never move backwards on
// rebalancing.
type Stats struct {
	// Shards and Channels count the live topology (down remotes are not
	// in Shards; see OpenCircuits).
	Shards, Channels int
	// SamplesIn, SamplesDropped, Surfaces, Detections and
	// DecisionsDropped aggregate the engine counters.
	SamplesIn, SamplesDropped, Surfaces, Detections, DecisionsDropped int64
	// QueuedSamples is the momentary ingestion depth summed over live
	// shards.
	QueuedSamples int64
	// PrunedCellsSkipped aggregates the surface cells never computed
	// because of alpha-candidate pruning, across all shards (local and
	// remote).
	PrunedCellsSkipped int64
	// Handoffs counts channel ownership moves.
	Handoffs int64
	// Retries counts remote push retry attempts; DeadlineExceeded the
	// pushes that overran their per-push deadline.
	Retries, DeadlineExceeded int64
	// Failovers counts dead-shard events that re-homed channels;
	// ShedSamples the samples dropped because no healthy owner could
	// take them.
	Failovers, ShedSamples int64
	// OpenCircuits is the number of remote shards currently failed
	// (breaker open or half-open).
	OpenCircuits int
	// Elapsed is the time since the router started.
	Elapsed time.Duration
	// SamplesPerSec is the lifetime-average ingest rate.
	SamplesPerSec float64
}

// shardState is one sink (local engine or guarded remote) plus its
// identity and health.
type shardState struct {
	name   string
	sink   Sink
	remote bool
	addr   string
	g      *guard      // nil for local shards
	down   atomic.Bool // true while failed over; not in the live set
}

// epoch identifies the sink's state incarnation: a remote worker's
// engine state restarts with each connection, so the dial count is the
// incarnation number. Local engines never restart under the router.
func (s *shardState) epoch() int64 {
	if s.g != nil {
		return s.g.rs.Dials()
	}
	return 0
}

// entry is one channel's routing record. Pushes and handoffs serialise
// on mu; owner is additionally atomic so stats readers never block on a
// backpressured push.
type entry struct {
	id string
	// alphas is the channel's alpha-candidate set (nil = the shard
	// engines' configured default), re-applied at every handoff so the
	// channel keeps pruning identically wherever it lands.
	alphas []int

	mu       sync.Mutex
	owner    atomic.Pointer[shardState]
	removed  bool
	handoffs atomic.Int64
	// epoch is the owner's state incarnation the trackers cover; when
	// the owner's epoch moves past it (a remote reconnect restarted the
	// engine state) the trackers are banked into the carry.
	epoch int64
	// Carryover accumulates the counters of previous incarnations
	// (former owners, and former connections of the same remote owner),
	// added at each handoff or restart so aggregate channel stats never
	// move backwards.
	carryIn, carryDropped, carrySnapshots, carryDetections int64
	// carryLast preserves the most recent decision across a handoff
	// (including a partial window flushed by the quiesce) until the new
	// owner produces one.
	carryLast *stream.Decision
	// track* shadow the current incarnation's counters router-side
	// (pushes accepted, decisions observed): the carry source when the
	// incarnation dies unreachably and its engine-side counters cannot
	// be read — the counter-carry that keeps a forced failover from
	// double-counting or silently losing windows.
	trackIn, trackSnapshots, trackDetections atomic.Int64
	// shed counts samples dropped because the owner was unreachable and
	// no healthy shard could take the channel.
	shed atomic.Int64
}

// bankTrackersLocked folds the router-side shadow counters into the
// carry — the forced-failover path where the dying incarnation's
// engine-side counters are unreachable. Caller holds e.mu.
func (e *entry) bankTrackersLocked() {
	e.carryIn += e.trackIn.Swap(0)
	e.carrySnapshots += e.trackSnapshots.Swap(0)
	e.carryDetections += e.trackDetections.Swap(0)
}

// syncEpochLocked banks the trackers if the owner's state incarnation
// moved past the one they cover (a remote reconnect restarted the
// engine under us). Caller holds e.mu.
func (e *entry) syncEpochLocked(own *shardState) {
	if cur := own.epoch(); cur != e.epoch {
		e.bankTrackersLocked()
		e.epoch = cur
	}
}

// resetTrackersLocked discards the shadow counters after a clean
// handoff banked the engine-reported ones. Caller holds e.mu.
func (e *entry) resetTrackersLocked() {
	e.trackIn.Store(0)
	e.trackSnapshots.Store(0)
	e.trackDetections.Store(0)
}

// Router owns the channel→shard mapping and the shard sinks.
type Router struct {
	cfg Config

	// topo serialises topology changes (AddShards, DrainShard, failover,
	// Close).
	topo sync.Mutex
	// mu guards the lookup maps.
	mu      sync.RWMutex
	shards  map[string]*shardState
	live    []string // names eligible for ownership, registration order
	entries map[string]*entry
	nextID  int
	closed  bool
	// retired accumulates final counters of drained shards.
	retiredIn, retiredDropped, retiredSurfaces, retiredDetections, retiredDecDropped int64
	retiredRetries, retiredDeadline, retiredPruned                                   int64

	out              chan Decision
	fwdWG            sync.WaitGroup
	decisionsDropped atomic.Int64
	handoffs         atomic.Int64
	failovers        atomic.Int64
	shedSamples      atomic.Int64
	healthDone       chan struct{}
	healthStop       sync.Once
	healthWG         sync.WaitGroup
	start            time.Time
}

// New builds the initial shard fleet — local engines plus guarded
// remote workers — and starts its engines and, when remotes are
// configured, the health-check loop that drives failover and recovery.
// A remote that cannot be reached at startup begins down and joins the
// fleet when its first health probe succeeds.
func New(cfg Config) (*Router, error) {
	if cfg.Shards == 0 && len(cfg.Remotes) == 0 {
		cfg.Shards = 1
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("shard: Shards=%d must be >= 0", cfg.Shards)
	}
	if cfg.Shards+len(cfg.Remotes) < 1 {
		return nil, fmt.Errorf("shard: no shards configured")
	}
	if cfg.DecisionBuffer == 0 {
		cfg.DecisionBuffer = 1024
	}
	if cfg.HandoffTimeout == 0 {
		cfg.HandoffTimeout = DefaultHandoffTimeout
	}
	cfg.Guard = cfg.Guard.withDefaults()
	r := &Router{
		cfg:        cfg,
		shards:     make(map[string]*shardState),
		entries:    make(map[string]*entry),
		out:        make(chan Decision, cfg.DecisionBuffer),
		healthDone: make(chan struct{}),
		start:      time.Now(),
	}
	for i := 0; i < cfg.Shards; i++ {
		if _, err := r.addShardLocked(""); err != nil {
			r.closeShards()
			return nil, err
		}
	}
	for i, rc := range cfg.Remotes {
		if err := r.addRemoteShardLocked(rc, cfg.Guard.Seed+int64(i)); err != nil {
			r.closeShards()
			return nil, err
		}
	}
	if len(r.live) == 0 && cfg.FallbackLocal {
		if err := r.ensureFallbackLocked(); err != nil {
			r.closeShards()
			return nil, err
		}
	}
	if len(cfg.Remotes) > 0 {
		r.healthWG.Add(1)
		go r.healthLoop()
	}
	return r, nil
}

// closeShards tears down a partially built fleet on a New failure.
func (r *Router) closeShards() {
	for _, s := range r.shards {
		s.sink.Close()
	}
}

// addShardLocked creates one local engine shard and its decision
// forwarder. Caller holds no locks during New, or r.mu during growth —
// the maps are only touched here.
func (r *Router) addShardLocked(name string) (*shardState, error) {
	eng, err := stream.New(r.cfg.Engine)
	if err != nil {
		return nil, err
	}
	if name == "" {
		name = fmt.Sprintf("shard%d", r.nextID)
		r.nextID++
	}
	if _, dup := r.shards[name]; dup {
		eng.Close()
		return nil, fmt.Errorf("shard: duplicate shard name %q", name)
	}
	s := &shardState{name: name, sink: eng}
	r.shards[s.name] = s
	r.live = append(r.live, s.name)
	r.startForwarder(s)
	return s, nil
}

// addRemoteShardLocked registers one guarded remote worker. The initial
// connection is attempted once; on failure the shard starts down and
// the health loop keeps probing it.
func (r *Router) addRemoteShardLocked(rc RemoteShard, seed int64) error {
	if rc.Addr == "" {
		return fmt.Errorf("shard: remote shard needs an address")
	}
	name := rc.Name
	if name == "" {
		name = fmt.Sprintf("shard%d", r.nextID)
		r.nextID++
	}
	if _, dup := r.shards[name]; dup {
		return fmt.Errorf("shard: duplicate shard name %q", name)
	}
	gcfg := r.cfg.Guard
	gcfg.Seed = seed
	rs := NewRemoteSink(rc.Addr, gcfg.PushTimeout)
	if dec := r.cfg.Engine.Decider; dec != nil && dec.TargetPfa() > 0 {
		// Ship the asymptotic decision layer with every channel open so
		// the worker decides identically — name, target Pfa and the
		// cycle set (per-channel, or the session default) fully specify
		// it. The legacy detectors (cfar, fixed) stay the worker's own
		// configuration, as their scalar knobs do not travel on the wire
		// (like geometry, they come from matching worker flags).
		rs.SetDetector(dec.Name(), dec.TargetPfa(), r.cfg.Engine.AlphaCandidates)
	}
	g := newGuard(rs, gcfg)
	s := &shardState{name: name, sink: g, remote: true, addr: rc.Addr, g: g}
	r.shards[name] = s
	if g.probe() == nil {
		r.live = append(r.live, name)
	} else {
		s.down.Store(true)
	}
	r.startForwarder(s)
	return nil
}

// ensureFallbackLocked lazily creates the local fallback shard when the
// live set is empty and the config allows spilling. Caller holds r.mu
// (or no locks during New).
func (r *Router) ensureFallbackLocked() error {
	if len(r.live) > 0 || !r.cfg.FallbackLocal {
		return nil
	}
	if s, ok := r.shards["fallback"]; ok {
		// Already built by an earlier outage; just re-admit it.
		r.live = append(r.live, s.name)
		return nil
	}
	_, err := r.addShardLocked("fallback")
	return err
}

// startForwarder pumps one shard's decision stream onto the merged
// output, shadow-counting each decision for the failover carry.
func (r *Router) startForwarder(s *shardState) {
	r.fwdWG.Add(1)
	go func() {
		defer r.fwdWG.Done()
		for d := range s.sink.Decisions() {
			r.noteDecision(s, d)
		}
	}()
}

// noteDecision tags and forwards one decision, updating the owning
// entry's shadow counters (the carry source for forced failover).
func (r *Router) noteDecision(s *shardState, d stream.Decision) {
	r.mu.RLock()
	e := r.entries[d.Channel]
	r.mu.RUnlock()
	if e != nil && e.owner.Load() == s {
		e.trackSnapshots.Add(1)
		if d.Detected {
			e.trackDetections.Add(1)
		}
	}
	select {
	case r.out <- Decision{Decision: d, Shard: s.name}:
	default:
		r.decisionsDropped.Add(1)
	}
}

// healthLoop heartbeats every remote shard on the configured cadence,
// failing over the channels of a shard whose circuit opens and
// re-homing them back when it recovers.
func (r *Router) healthLoop() {
	defer r.healthWG.Done()
	t := time.NewTicker(r.cfg.Guard.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-r.healthDone:
			return
		case <-t.C:
		}
		r.checkRemotes()
	}
}

// checkRemotes runs one health pass: probe each remote, react to state
// transitions, and retry any channels stranded on a down shard.
func (r *Router) checkRemotes() {
	r.mu.RLock()
	remotes := make([]*shardState, 0, len(r.shards))
	for _, s := range r.shards {
		if s.remote {
			remotes = append(remotes, s)
		}
	}
	r.mu.RUnlock()
	for _, s := range remotes {
		wasDown := s.down.Load()
		switch s.g.check() {
		case CircuitOpen:
			if !wasDown {
				r.failShard(s)
			}
		case CircuitClosed:
			if wasDown {
				r.reinstateShard(s)
			}
		}
	}
	if r.orphaned() {
		r.rebalanceAll()
	}
}

// orphaned reports whether any channel is stranded on a down shard
// while healthy shards exist to take it.
func (r *Router) orphaned() bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.live) == 0 {
		return false
	}
	for _, e := range r.entries {
		if own := e.owner.Load(); own != nil && own.down.Load() {
			return true
		}
	}
	return false
}

// failShard takes a dead shard out of the ownership set and re-homes
// its channels onto the survivors (or the local fallback), carrying the
// router-side shadow counters since the dead engine cannot be asked.
func (r *Router) failShard(s *shardState) {
	r.topo.Lock()
	defer r.topo.Unlock()
	r.mu.Lock()
	if r.closed || s.down.Load() {
		r.mu.Unlock()
		return
	}
	s.down.Store(true)
	for i, n := range r.live {
		if n == s.name {
			r.live = append(r.live[:i], r.live[i+1:]...)
			break
		}
	}
	r.failovers.Add(1)
	r.ensureFallbackLocked() //nolint:errcheck // on failure channels shed with accounting instead
	moves, targets := r.rebalanceLocked()
	r.mu.Unlock()
	for i, e := range moves {
		r.handoff(e, targets[i]) //nolint:errcheck // stranded channels retry on the next health pass
	}
}

// reinstateShard re-admits a recovered shard and rebalances channels
// back onto it. Channels that stayed on the shard through the outage
// were re-opened by the reconnect (fresh windows); their counter carry
// settles lazily through the epoch check on the next push or stats
// read.
func (r *Router) reinstateShard(s *shardState) {
	r.topo.Lock()
	defer r.topo.Unlock()
	r.mu.Lock()
	if r.closed || !s.down.Load() {
		r.mu.Unlock()
		return
	}
	s.down.Store(false)
	r.live = append(r.live, s.name)
	moves, targets := r.rebalanceLocked()
	r.mu.Unlock()
	for i, e := range moves {
		r.handoff(e, targets[i]) //nolint:errcheck // retried on the next health pass
	}
}

// rebalanceAll recomputes ownership over the current live set and
// executes the required moves — the health loop's retry path for
// channels a previous failover could not place.
func (r *Router) rebalanceAll() {
	r.topo.Lock()
	defer r.topo.Unlock()
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	moves, targets := r.rebalanceLocked()
	r.mu.Unlock()
	for i, e := range moves {
		r.handoff(e, targets[i]) //nolint:errcheck // retried on the next health pass
	}
}

// fmix64 is the murmur3 64-bit finalizer. FNV-1a alone is too linear
// for rendezvous scoring — names differing in one trailing digit keep a
// near-constant score offset across ids, so one shard wins every key.
// The finalizer's full avalanche breaks that structure.
func fmix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// owner picks the rendezvous (highest-random-weight) shard for id over
// the live set: the shard maximising hash(shard‖id). Deterministic,
// and minimally disruptive under resizing — a key moves only when its
// maximum enters or leaves the set.
func (r *Router) ownerLocked(id string) *shardState {
	var best *shardState
	var bestScore uint64
	for _, name := range r.live {
		h := fnv.New64a()
		h.Write([]byte(name))
		h.Write([]byte{0})
		h.Write([]byte(id))
		score := fmix64(h.Sum64())
		if best == nil || score > bestScore || (score == bestScore && name > best.name) {
			best, bestScore = r.shards[name], score
		}
	}
	return best
}

// AddChannel registers a channel on its rendezvous owner.
func (r *Router) AddChannel(id string) error {
	return r.AddChannelCandidates(id, nil)
}

// AddChannelCandidates registers a channel on its rendezvous owner with
// an alpha-candidate set that follows the channel across handoffs and
// failovers. A nil set means the shard engines' configured default.
func (r *Router) AddChannelCandidates(id string, alphas []int) error {
	if id == "" {
		return fmt.Errorf("shard: empty channel id")
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	if _, dup := r.entries[id]; dup {
		r.mu.Unlock()
		return fmt.Errorf("shard: channel %q already exists", id)
	}
	own := r.ownerLocked(id)
	if own == nil {
		r.mu.Unlock()
		return fmt.Errorf("shard: no healthy shard to own %q", id)
	}
	e := &entry{id: id, alphas: append([]int(nil), alphas...), epoch: own.epoch()}
	e.owner.Store(own)
	r.entries[id] = e
	r.mu.Unlock()
	if err := own.sink.AddChannelCandidates(id, e.alphas); err != nil {
		r.mu.Lock()
		delete(r.entries, id)
		r.mu.Unlock()
		return err
	}
	return nil
}

// Push appends samples to a channel's stream on its current owner.
// Pushes to one channel serialise with each other and with handoffs, so
// a rebalance never interleaves with a half-delivered block. A push
// that fails against a remote owner — after the guard's deadline,
// retries, and circuit breaker have had their say — is shed with
// accounting rather than surfaced, so one dead shard degrades its own
// channels without killing upstream feeder connections.
func (r *Router) Push(id string, samples []complex128) (int, error) {
	r.mu.RLock()
	e := r.entries[id]
	closed := r.closed
	r.mu.RUnlock()
	if closed {
		return 0, ErrClosed
	}
	if e == nil {
		return 0, fmt.Errorf("shard: unknown channel %q", id)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.removed {
		return 0, fmt.Errorf("shard: channel %q removed", id)
	}
	own := e.owner.Load()
	e.syncEpochLocked(own)
	n, err := own.sink.Push(id, samples)
	if err != nil {
		if own.g != nil {
			// Remote failure: the block is lost to this shard. Account it
			// as shed and keep the caller's ingest path alive; failover
			// re-homes the channel on the next health pass.
			e.syncEpochLocked(own)
			e.shed.Add(int64(len(samples)))
			r.shedSamples.Add(int64(len(samples)))
			return 0, nil
		}
		return n, err
	}
	// A mid-push reconnect restarts the remote engine state; settle the
	// carry before crediting this block to the new incarnation.
	e.syncEpochLocked(own)
	e.trackIn.Add(int64(n))
	return n, nil
}

// handoff moves one channel to a new owner. From a healthy owner it is
// lossless: quiesce and unregister on the old engine (flushing a
// partial window into one final decision) and carry the engine-reported
// counters. From a down owner it is forced: the engine cannot be asked,
// so the router's shadow counters are carried instead (the in-flight
// window restarts — accepted, and accounted, never double-counted) and
// the dead sink just forgets the channel locally.
func (r *Router) handoff(e *entry, to *shardState) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.removed {
		return nil
	}
	from := e.owner.Load()
	if from == to {
		return nil
	}
	if from.down.Load() {
		e.syncEpochLocked(from)
		e.bankTrackersLocked()
		if f, ok := from.sink.(forgetter); ok {
			f.Forget(e.id)
		}
	} else {
		cs, err := from.sink.RemoveChannel(e.id, r.cfg.HandoffTimeout)
		if err != nil {
			return fmt.Errorf("shard: handoff %q off %s: %w", e.id, from.name, err)
		}
		e.carryIn += cs.SamplesIn
		e.carryDropped += cs.SamplesDropped
		e.carrySnapshots += cs.Snapshots
		e.carryDetections += cs.Detections
		if cs.Last != nil {
			e.carryLast = cs.Last
		}
		e.resetTrackersLocked()
	}
	if err := to.sink.AddChannelCandidates(e.id, e.alphas); err != nil {
		return fmt.Errorf("shard: handoff %q onto %s: %w", e.id, to.name, err)
	}
	e.epoch = to.epoch()
	e.owner.Store(to)
	e.handoffs.Add(1)
	r.handoffs.Add(1)
	return nil
}

// rebalanceLocked computes the moves a topology change requires.
// r.mu must be held; the returned moves are executed after release.
func (r *Router) rebalanceLocked() (moves []*entry, targets []*shardState) {
	for _, e := range r.entries {
		want := r.ownerLocked(e.id)
		if want != nil && e.owner.Load() != want {
			moves = append(moves, e)
			targets = append(targets, want)
		}
	}
	return moves, targets
}

// AddShards grows the fleet by n local shards and rebalances: only
// channels whose rendezvous maximum is a newcomer move. Returns the new
// shard names.
func (r *Router) AddShards(n int) ([]string, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: AddShards(%d) must add at least one", n)
	}
	r.topo.Lock()
	defer r.topo.Unlock()
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	names := make([]string, 0, n)
	for i := 0; i < n; i++ {
		s, err := r.addShardLocked("")
		if err != nil {
			r.mu.Unlock()
			return names, err
		}
		names = append(names, s.name)
	}
	moves, targets := r.rebalanceLocked()
	r.mu.Unlock()
	for i, e := range moves {
		if err := r.handoff(e, targets[i]); err != nil {
			return names, err
		}
	}
	return names, nil
}

// DrainShard hands every channel off a shard to the survivors, retires
// the shard's final counters into the aggregate, and closes its sink.
// The last healthy shard cannot be drained; a down remote can (its
// stranded channels are force-rehomed, carrying the shadow counters).
func (r *Router) DrainShard(name string) error {
	r.topo.Lock()
	defer r.topo.Unlock()
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	s := r.shards[name]
	if s == nil {
		r.mu.Unlock()
		return fmt.Errorf("shard: unknown shard %q", name)
	}
	inLive := false
	for _, n := range r.live {
		if n == name {
			inLive = true
			break
		}
	}
	if inLive && len(r.live) == 1 {
		r.mu.Unlock()
		return fmt.Errorf("shard: cannot drain the last shard %q", name)
	}
	// Remove from the ownership set first: rendezvous owners for its
	// channels are recomputed over the survivors.
	if inLive {
		for i, n := range r.live {
			if n == name {
				r.live = append(r.live[:i], r.live[i+1:]...)
				break
			}
		}
	}
	moves, targets := r.rebalanceLocked()
	r.mu.Unlock()
	for i, e := range moves {
		if err := r.handoff(e, targets[i]); err != nil {
			return err
		}
	}
	// The shard is empty now; bank its lifetime counters and retire it.
	final := s.sink.Stats()
	r.mu.Lock()
	r.retiredIn += final.SamplesIn
	r.retiredDropped += final.SamplesDropped
	r.retiredSurfaces += final.Surfaces
	r.retiredDetections += final.Detections
	r.retiredDecDropped += final.DecisionsDropped
	r.retiredPruned += final.PrunedCellsSkipped
	if s.g != nil {
		r.retiredRetries += s.g.retries.Load()
		r.retiredDeadline += s.g.deadlineExceeded.Load()
	}
	delete(r.shards, name)
	r.mu.Unlock()
	return s.sink.Close()
}

// RemoveChannel unregisters a channel entirely (quiescing it and
// flushing a partial window, as stream.Engine.RemoveChannel), returning
// its aggregate final stats. Removing a channel stranded on a down
// shard succeeds locally, carrying the shadow counters.
func (r *Router) RemoveChannel(id string) (ChannelStats, error) {
	r.mu.RLock()
	e := r.entries[id]
	r.mu.RUnlock()
	if e == nil {
		return ChannelStats{}, fmt.Errorf("shard: unknown channel %q", id)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.removed {
		return ChannelStats{}, fmt.Errorf("shard: channel %q removed", id)
	}
	own := e.owner.Load()
	var cs stream.ChannelStats
	if own.down.Load() {
		e.syncEpochLocked(own)
		e.bankTrackersLocked()
		if f, ok := own.sink.(forgetter); ok {
			f.Forget(id)
		}
	} else {
		var err error
		cs, err = own.sink.RemoveChannel(id, r.cfg.HandoffTimeout)
		if err != nil {
			return ChannelStats{}, err
		}
	}
	e.removed = true
	r.mu.Lock()
	delete(r.entries, id)
	r.mu.Unlock()
	return e.statsLocked(own, cs), nil
}

// statsLocked merges the current owner's channel stats with the entry's
// carryover. Caller holds e.mu.
func (e *entry) statsLocked(own *shardState, cs stream.ChannelStats) ChannelStats {
	last := cs.Last
	if last == nil {
		last = e.carryLast
	}
	return ChannelStats{
		ID:             e.id,
		Shard:          own.name,
		SamplesIn:      e.carryIn + cs.SamplesIn,
		SamplesDropped: e.carryDropped + cs.SamplesDropped + e.shed.Load(),
		Snapshots:      e.carrySnapshots + cs.Snapshots,
		Detections:     e.carryDetections + cs.Detections,
		Handoffs:       e.handoffs.Load(),
		Last:           last,
		Err:            cs.Err,
	}
}

// Decisions returns the merged decision stream across all shards,
// tagged with the emitting shard. Closed by Close.
func (r *Router) Decisions() <-chan Decision { return r.out }

// Channels returns the registered channel ids (unordered).
func (r *Router) Channels() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.entries))
	for id := range r.entries {
		out = append(out, id)
	}
	return out
}

// ChannelStats returns one channel's aggregate accounting across every
// owner it has had; ok is false for an unknown id. It serialises with
// pushes and handoffs on that channel, so the sums are exact (never
// read mid-move).
func (r *Router) ChannelStats(id string) (ChannelStats, bool) {
	r.mu.RLock()
	e := r.entries[id]
	r.mu.RUnlock()
	if e == nil {
		return ChannelStats{}, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.removed {
		return ChannelStats{}, false
	}
	own := e.owner.Load()
	e.syncEpochLocked(own)
	cs, _ := own.sink.ChannelStats(id)
	return e.statsLocked(own, cs), true
}

// ShardStats returns per-shard accounting: the live fleet in ownership
// order, then any down remotes (sorted by name) so a failed shard stays
// visible while degraded.
func (r *Router) ShardStats() []ShardStats {
	r.mu.RLock()
	names := append([]string(nil), r.live...)
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		seen[n] = true
	}
	var downNames []string
	for n := range r.shards {
		if !seen[n] {
			downNames = append(downNames, n)
		}
	}
	sort.Strings(downNames)
	names = append(names, downNames...)
	shards := make([]*shardState, len(names))
	for i, n := range names {
		shards[i] = r.shards[n]
	}
	counts := make(map[string]int)
	for _, e := range r.entries {
		if own := e.owner.Load(); own != nil {
			counts[own.name]++
		}
	}
	r.mu.RUnlock()
	out := make([]ShardStats, len(shards))
	for i, s := range shards {
		st := ShardStats{
			Name:     s.name,
			Remote:   s.remote,
			Addr:     s.addr,
			State:    "ok",
			Channels: counts[s.name],
			Stats:    s.sink.Stats(),
		}
		if s.g != nil {
			if cs := s.g.State(); cs != CircuitClosed {
				st.State = cs.String()
			}
		}
		out[i] = st
	}
	return out
}

// Stats returns router-wide accounting: live engines plus retired
// shards' banked counters, plus the robustness layer's counters.
func (r *Router) Stats() Stats {
	r.mu.RLock()
	shards := make([]*shardState, 0, len(r.shards))
	for _, s := range r.shards {
		shards = append(shards, s)
	}
	st := Stats{
		Shards:             len(r.live),
		Channels:           len(r.entries),
		SamplesIn:          r.retiredIn,
		SamplesDropped:     r.retiredDropped,
		Surfaces:           r.retiredSurfaces,
		Detections:         r.retiredDetections,
		DecisionsDropped:   r.retiredDecDropped + r.decisionsDropped.Load(),
		Retries:            r.retiredRetries,
		DeadlineExceeded:   r.retiredDeadline,
		PrunedCellsSkipped: r.retiredPruned,
	}
	r.mu.RUnlock()
	for _, s := range shards {
		es := s.sink.Stats()
		st.SamplesIn += es.SamplesIn
		st.SamplesDropped += es.SamplesDropped
		st.Surfaces += es.Surfaces
		st.Detections += es.Detections
		st.DecisionsDropped += es.DecisionsDropped
		st.PrunedCellsSkipped += es.PrunedCellsSkipped
		if !s.down.Load() {
			st.QueuedSamples += es.QueuedSamples
		}
		if s.g != nil {
			st.Retries += s.g.retries.Load()
			st.DeadlineExceeded += s.g.deadlineExceeded.Load()
			if s.g.State() != CircuitClosed {
				st.OpenCircuits++
			}
		}
	}
	st.Handoffs = r.handoffs.Load()
	st.Failovers = r.failovers.Load()
	st.ShedSamples = r.shedSamples.Load()
	st.Elapsed = time.Since(r.start)
	if sec := st.Elapsed.Seconds(); sec > 0 {
		st.SamplesPerSec = float64(st.SamplesIn) / sec
	}
	return st
}

// OpenCircuits returns the names of remote shards whose circuit is not
// closed — the /healthz degraded report.
func (r *Router) OpenCircuits() []string {
	r.mu.RLock()
	shards := make([]*shardState, 0, len(r.shards))
	for _, s := range r.shards {
		shards = append(shards, s)
	}
	r.mu.RUnlock()
	var open []string
	for _, s := range shards {
		if s.g != nil && s.g.State() != CircuitClosed {
			open = append(open, s.name)
		}
	}
	sort.Strings(open)
	return open
}

// Flush drains every live shard's rings and due decisions, or times
// out. Down shards are skipped — their channels have either been
// re-homed or are shedding.
func (r *Router) Flush(timeout time.Duration) error {
	r.mu.RLock()
	shards := make([]*shardState, 0, len(r.live))
	for _, n := range r.live {
		shards = append(shards, r.shards[n])
	}
	r.mu.RUnlock()
	deadline := time.Now().Add(timeout)
	for _, s := range shards {
		left := time.Until(deadline)
		if left <= 0 {
			return fmt.Errorf("shard: flush timed out after %v", timeout)
		}
		if err := s.sink.Flush(left); err != nil {
			return err
		}
	}
	return nil
}

// Close stops the health loop and every shard sink, then closes the
// merged Decisions channel. Idempotent.
func (r *Router) Close() error {
	r.healthStop.Do(func() { close(r.healthDone) })
	r.healthWG.Wait()
	r.topo.Lock()
	defer r.topo.Unlock()
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	shards := make([]*shardState, 0, len(r.shards))
	for _, s := range r.shards {
		shards = append(shards, s)
	}
	r.mu.Unlock()
	var first error
	for _, s := range shards {
		if err := s.sink.Close(); err != nil && first == nil {
			first = err
		}
	}
	r.fwdWG.Wait()
	close(r.out)
	return first
}
