package shard

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tiledcfd/internal/stream"
	"tiledcfd/internal/wire"
)

// ErrNotConnected is returned by remote-sink operations while the sink
// has no live connection to its worker.
var ErrNotConnected = fmt.Errorf("shard: remote sink not connected")

// DefaultDialTimeout bounds one connection attempt to a remote worker.
const DefaultDialTimeout = 5 * time.Second

// remoteDecisionBuffer is the capacity of a remote sink's persistent
// decision stream, which must absorb the burst a reconnect replays.
const remoteDecisionBuffer = 1024

// RemoteSink drives a shard living in another cfdserve process (worker
// mode, `-shard-of`) over the wire protocol: channel opens and sample
// pushes travel as data-plane frames in lossless cf64_le, the remaining
// engine surface as worker-mode control frames, and the worker's
// decisions stream back over a subscription. The sink survives
// reconnects — Redial replaces the connection and re-opens every wanted
// channel, and Decisions stays the same channel across connections —
// so the router's robustness layer (guard) can heal a link failure
// without disturbing the routing state above it.
type RemoteSink struct {
	addr        string
	dialTimeout time.Duration
	pushTimeout time.Duration

	// detector and targetPfa, when set via SetDetector, ride in every
	// channel-open frame so the remote worker runs the same decision
	// layer the local engines do ("" leaves the worker's default).
	// defaultAlphas is the session-wide candidate set that rides along
	// for channels without a per-channel override — the asymptotic
	// detectors are built from the cycle set, so it must travel with
	// them.
	detector      string
	targetPfa     float64
	defaultAlphas []int

	mu      sync.Mutex
	cli     *wire.Client
	streams map[string]*wire.ChannelStream
	// want maps each registered channel to its alpha-candidate set (nil =
	// unpruned), so reconnects re-open channels with the same pruning.
	want   map[string][]int
	closed bool
	// lastStats is the latest raw engine reading of the current worker
	// incarnation, served while the link is down so aggregate accounting
	// does not dip during an outage. base accumulates the counters of
	// previous incarnations: a worker process restart resets its engine
	// to zero, detected as a counter regression between fetches, and the
	// dead incarnation's last reading is banked so shard-level aggregates
	// never move backwards either.
	lastStats stream.Stats
	base      stream.Stats

	out        chan stream.Decision
	outDropped atomic.Int64
	pumps      sync.WaitGroup
	dials      atomic.Int64
}

// NewRemoteSink returns a sink for the worker at addr without dialing;
// the first Redial (the guard's initial health probe, or an explicit
// call) establishes the connection. pushTimeout bounds each frame write
// (0 = none).
func NewRemoteSink(addr string, pushTimeout time.Duration) *RemoteSink {
	return &RemoteSink{
		addr:        addr,
		dialTimeout: DefaultDialTimeout,
		pushTimeout: pushTimeout,
		streams:     make(map[string]*wire.ChannelStream),
		want:        make(map[string][]int),
		out:         make(chan stream.Decision, remoteDecisionBuffer),
	}
}

// SetDetector selects the decision layer every subsequently opened
// channel asks the remote worker to run (a detect registry name plus
// the target false-alarm probability for the asymptotic detectors).
// defaultAlphas is the session candidate set shipped with channels that
// have no per-channel override, so the worker builds its decider from
// the same cycle set the local engines default to. Call before
// registering channels; "" keeps the worker's default.
func (rs *RemoteSink) SetDetector(name string, targetPfa float64, defaultAlphas []int) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.detector = name
	rs.targetPfa = targetPfa
	rs.defaultAlphas = append([]int(nil), defaultAlphas...)
}

// openMeta assembles the open-frame metadata for one channel under
// rs.mu.
func (rs *RemoteSink) openMeta(id string, alphas []int) wire.Meta {
	if alphas == nil {
		alphas = rs.defaultAlphas
	}
	return wire.Meta{
		ID:              id,
		Format:          wire.FormatCF64,
		AlphaCandidates: alphas,
		Detector:        rs.detector,
		TargetPfa:       rs.targetPfa,
	}
}

// Addr returns the worker's dial address.
func (rs *RemoteSink) Addr() string { return rs.addr }

// Connected reports whether the sink currently holds a live connection.
func (rs *RemoteSink) Connected() bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.cli != nil && rs.cli.Err() == nil
}

// Dials counts connection attempts that completed the preamble —
// lets a test wait for a reconnect.
func (rs *RemoteSink) Dials() int64 { return rs.dials.Load() }

// Redial replaces the sink's connection: tears down the old one, dials
// the worker, subscribes to its decision stream, and re-opens every
// wanted channel into fresh remote state (the worker's remove-on-close
// hygiene cleared the old registrations when the previous connection
// died — an accepted window restart, with counters carried by the
// router).
func (rs *RemoteSink) Redial() error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.closed {
		return fmt.Errorf("shard: remote sink closed")
	}
	if rs.cli != nil {
		rs.cli.Close()
		rs.cli = nil
	}
	rs.streams = make(map[string]*wire.ChannelStream)
	conn, err := net.DialTimeout("tcp", rs.addr, rs.dialTimeout)
	if err != nil {
		return fmt.Errorf("shard: dial %s: %w", rs.addr, err)
	}
	cli, err := wire.NewClient(conn)
	if err != nil {
		return fmt.Errorf("shard: connect %s: %w", rs.addr, err)
	}
	// Bound every reconnect round-trip by the push deadline: a wedged
	// (rather than dead) worker must fail a redial quickly so the guard
	// can open the circuit instead of stalling the health loop.
	cli.SetWriteTimeout(rs.pushTimeout)
	cli.SetAckTimeout(rs.pushTimeout)
	if err := cli.Subscribe(rs.pushTimeout); err != nil {
		cli.Close()
		return fmt.Errorf("shard: subscribe %s: %w", rs.addr, err)
	}
	for id, alphas := range rs.want {
		cs, err := cli.Open(rs.openMeta(id, alphas))
		if err != nil {
			cli.Close()
			return fmt.Errorf("shard: reopen %q on %s: %w", id, rs.addr, err)
		}
		rs.streams[id] = cs
	}
	rs.cli = cli
	rs.dials.Add(1)
	rs.pumps.Add(1)
	go rs.pump(cli)
	return nil
}

// pump forwards one connection's subscribed decisions onto the sink's
// persistent stream; it exits when that connection dies.
func (rs *RemoteSink) pump(cli *wire.Client) {
	defer rs.pumps.Done()
	for d := range cli.Decisions() {
		select {
		case rs.out <- d:
		default:
			rs.outDropped.Add(1)
		}
	}
}

// client returns the live connection or ErrNotConnected.
func (rs *RemoteSink) client() (*wire.Client, error) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.cli == nil {
		return nil, ErrNotConnected
	}
	return rs.cli, nil
}

// Ping probes the worker's liveness over the current connection.
func (rs *RemoteSink) Ping(timeout time.Duration) error {
	cli, err := rs.client()
	if err != nil {
		return err
	}
	return cli.Ping(timeout)
}

// AddChannel registers a channel on the worker and records it as
// wanted, so reconnects re-open it.
func (rs *RemoteSink) AddChannel(id string) error {
	return rs.AddChannelCandidates(id, nil)
}

// AddChannelCandidates registers a channel restricted to the given
// alpha-candidate set. The set travels in the wire open frame — the
// worker's engine prunes server-side — and is remembered so reconnects
// re-open the channel with the same pruning.
func (rs *RemoteSink) AddChannelCandidates(id string, alphas []int) error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.cli == nil {
		return ErrNotConnected
	}
	if _, dup := rs.want[id]; dup {
		return fmt.Errorf("shard: channel %q already exists on %s", id, rs.addr)
	}
	cs, err := rs.cli.Open(rs.openMeta(id, alphas))
	if err != nil {
		return err
	}
	rs.want[id] = alphas
	rs.streams[id] = cs
	return nil
}

// Push streams one block to the worker, lossless cf64_le on the wire.
func (rs *RemoteSink) Push(id string, samples []complex128) (int, error) {
	rs.mu.Lock()
	cs := rs.streams[id]
	rs.mu.Unlock()
	if cs == nil {
		if !rs.wanted(id) {
			return 0, fmt.Errorf("shard: unknown channel %q on %s", id, rs.addr)
		}
		return 0, ErrNotConnected
	}
	if err := cs.Send(samples); err != nil {
		return 0, err
	}
	return len(samples), nil
}

// wanted reports whether id is registered on the sink.
func (rs *RemoteSink) wanted(id string) bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	_, ok := rs.want[id]
	return ok
}

// RemoveChannel quiesces and unregisters a channel on the worker,
// returning its final accounting, and drops it from the wanted set.
func (rs *RemoteSink) RemoveChannel(id string, timeout time.Duration) (stream.ChannelStats, error) {
	cli, err := rs.client()
	if err != nil {
		return stream.ChannelStats{}, err
	}
	cs, err := cli.RemoveChannel(id, timeout)
	if err != nil {
		return stream.ChannelStats{}, err
	}
	rs.Forget(id)
	return cs, nil
}

// Forget drops a channel's local registration without a remote
// round-trip — the forced-failover path, where the peer holding the
// state is already dead and a reconnect must not re-open the channel.
func (rs *RemoteSink) Forget(id string) {
	rs.mu.Lock()
	delete(rs.want, id)
	delete(rs.streams, id)
	rs.mu.Unlock()
}

// ChannelStats returns one channel's accounting on the worker; ok is
// false for an unknown id or a dead link.
func (rs *RemoteSink) ChannelStats(id string) (stream.ChannelStats, bool) {
	cli, err := rs.client()
	if err != nil {
		return stream.ChannelStats{}, false
	}
	cs, ok, err := cli.EngineChannelStats(id, 0)
	if err != nil {
		return stream.ChannelStats{}, false
	}
	return cs, ok
}

// Stats returns the worker's engine accounting, summed across worker
// incarnations; while the link is down it serves the last snapshot
// fetched, so aggregates do not dip during an outage.
func (rs *RemoteSink) Stats() stream.Stats {
	cli, err := rs.client()
	if err == nil {
		if st, serr := cli.EngineStats(rs.pushTimeout); serr == nil {
			rs.mu.Lock()
			if st.SamplesIn < rs.lastStats.SamplesIn || st.Surfaces < rs.lastStats.Surfaces {
				// Counter regression: the worker process restarted and its
				// engine began from zero. Bank the dead incarnation's last
				// reading. (A restart that outruns the old counters before
				// the first fetch is indistinguishable and not banked.)
				rs.base = sumStats(rs.base, rs.lastStats)
			}
			rs.lastStats = st
			out := sumStats(rs.base, st)
			rs.mu.Unlock()
			return out
		}
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return sumStats(rs.base, rs.lastStats)
}

// sumStats adds base's lifetime counters onto cur, keeping cur's
// momentary fields (Channels, QueuedSamples, rates) as they are.
func sumStats(base, cur stream.Stats) stream.Stats {
	cur.SamplesIn += base.SamplesIn
	cur.SamplesDropped += base.SamplesDropped
	cur.Surfaces += base.Surfaces
	cur.Detections += base.Detections
	cur.DecisionsDropped += base.DecisionsDropped
	cur.PrunedCellsSkipped += base.PrunedCellsSkipped
	return cur
}

// Flush asks the worker to drain its rings and make due decisions.
func (rs *RemoteSink) Flush(timeout time.Duration) error {
	cli, err := rs.client()
	if err != nil {
		return err
	}
	return cli.Flush(timeout)
}

// Decisions is the sink's persistent decision stream: the same channel
// across reconnects, closed only by Close. Decisions overflowing its
// buffer are dropped and counted.
func (rs *RemoteSink) Decisions() <-chan stream.Decision { return rs.out }

// DecisionsDropped counts decisions dropped off the persistent stream's
// buffer.
func (rs *RemoteSink) DecisionsDropped() int64 { return rs.outDropped.Load() }

// Close tears the connection down and closes the decision stream.
// Idempotent.
func (rs *RemoteSink) Close() error {
	rs.mu.Lock()
	if rs.closed {
		rs.mu.Unlock()
		return nil
	}
	rs.closed = true
	cli := rs.cli
	rs.cli = nil
	rs.mu.Unlock()
	if cli != nil {
		cli.Close()
	}
	rs.pumps.Wait()
	close(rs.out)
	return nil
}
