package shard

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"tiledcfd/internal/scf"
	"tiledcfd/internal/sig"
	"tiledcfd/internal/stream"
)

const testWindow = 2048

// testConfig is a small-geometry router config with backpressure (so
// accounting tests lose nothing).
func testConfig(shards int) Config {
	return Config{
		Shards: shards,
		Engine: stream.Config{
			Estimator:       scf.Direct{Params: scf.Params{K: 64, M: 16}},
			SnapshotSamples: testWindow,
			Block:           true,
		},
		DecisionBuffer: 1 << 14,
	}
}

// band synthesises a deterministic noise band.
func band(t testing.TB, n int, seed uint64) []complex128 {
	t.Helper()
	return sig.Samples(&sig.WGN{Sigma: 0.3, Real: true, Rng: sig.NewRand(seed)}, n)
}

// addChannels registers n channels and returns their ids.
func addChannels(t *testing.T, r *Router, n int) []string {
	t.Helper()
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("ch%02d", i)
		if err := r.AddChannel(ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	return ids
}

// TestRouterPartitionsAcrossShards: channels spread over every shard,
// per-shard and aggregate stats agree, ownership is deterministic.
func TestRouterPartitionsAcrossShards(t *testing.T) {
	r, err := New(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ids := addChannels(t, r, 32)
	for i, id := range ids {
		if _, err := r.Push(id, band(t, testWindow, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Flush(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	ss := r.ShardStats()
	if len(ss) != 4 {
		t.Fatalf("%d shards, want 4", len(ss))
	}
	totalCh, totalIn, totalSurf := 0, int64(0), int64(0)
	for _, s := range ss {
		if s.Channels == 0 {
			t.Fatalf("shard %s owns no channels — rendezvous spread failed", s.Name)
		}
		totalCh += s.Channels
		totalIn += s.Stats.SamplesIn
		totalSurf += s.Stats.Surfaces
	}
	if totalCh != len(ids) {
		t.Fatalf("shards own %d channels, want %d", totalCh, len(ids))
	}
	st := r.Stats()
	if st.SamplesIn != totalIn || st.SamplesIn != int64(len(ids))*testWindow {
		t.Fatalf("aggregate SamplesIn %d (shards sum %d), want %d",
			st.SamplesIn, totalIn, len(ids)*testWindow)
	}
	if st.Surfaces != totalSurf || st.Surfaces != int64(len(ids)) {
		t.Fatalf("aggregate Surfaces %d (shards sum %d), want %d", st.Surfaces, totalSurf, len(ids))
	}
	// Ownership is a pure function of (shard set, id): a second router
	// with the same config maps identically.
	r2, err := New(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	for _, id := range ids {
		if err := r2.AddChannel(id); err != nil {
			t.Fatal(err)
		}
		a, _ := r.ChannelStats(id)
		b, _ := r2.ChannelStats(id)
		if a.Shard != b.Shard {
			t.Fatalf("%s owned by %s and %s across identical routers", id, a.Shard, b.Shard)
		}
	}
}

// TestRouterRebalanceLosesNoWindows is the rebalancing acceptance test:
// growing the fleet mid-stream moves ownership without losing or
// double-counting a single decision window — every channel ends with
// exactly pushed/window decisions and exact sample accounting, and the
// merged decision stream carries each window once.
func TestRouterRebalanceLosesNoWindows(t *testing.T) {
	r, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ids := addChannels(t, r, 16)
	before := map[string]string{}
	for i, id := range ids {
		// Phase 1: two full windows per channel on the initial fleet.
		for w := 0; w < 2; w++ {
			if _, err := r.Push(id, band(t, testWindow, uint64(10*i+w))); err != nil {
				t.Fatal(err)
			}
		}
		cs, _ := r.ChannelStats(id)
		before[id] = cs.Shard
	}
	if err := r.Flush(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	names, err := r.AddShards(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("AddShards returned %v", names)
	}
	st := r.Stats()
	if st.Shards != 4 {
		t.Fatalf("%d shards after growth, want 4", st.Shards)
	}
	if st.Handoffs == 0 {
		t.Fatal("no handoffs on growth from 2 to 4 shards across 16 channels")
	}
	moved := 0
	for _, id := range ids {
		cs, ok := r.ChannelStats(id)
		if !ok {
			t.Fatalf("channel %s lost in rebalance", id)
		}
		if cs.Shard != before[id] {
			moved++
			if cs.Handoffs == 0 {
				t.Fatalf("%s changed shard without a recorded handoff", id)
			}
		}
	}
	if moved == 0 {
		t.Fatal("no channel moved")
	}

	// Phase 2: two more windows per channel on the grown fleet.
	for i, id := range ids {
		for w := 0; w < 2; w++ {
			if _, err := r.Push(id, band(t, testWindow, uint64(1000+10*i+w))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := r.Flush(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Exact per-channel accounting across the move: 4 windows in, 4
	// decisions out, nothing lost, nothing twice.
	for _, id := range ids {
		cs, _ := r.ChannelStats(id)
		if cs.SamplesIn != 4*testWindow {
			t.Fatalf("%s: SamplesIn %d, want %d", id, cs.SamplesIn, 4*testWindow)
		}
		if cs.Snapshots != 4 {
			t.Fatalf("%s: %d decision windows across the move, want exactly 4", id, cs.Snapshots)
		}
		if cs.SamplesDropped != 0 {
			t.Fatalf("%s: dropped %d in backpressure mode", id, cs.SamplesDropped)
		}
	}
	st = r.Stats()
	if st.Surfaces != int64(4*len(ids)) {
		t.Fatalf("aggregate Surfaces %d, want %d", st.Surfaces, 4*len(ids))
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// The merged stream delivered each window exactly once (the buffer
	// is sized to drop nothing here).
	perChannel := map[string]int{}
	seqSeen := map[string]map[int64]bool{}
	for d := range r.Decisions() {
		perChannel[d.Channel]++
		if seqSeen[d.Channel] == nil {
			seqSeen[d.Channel] = map[int64]bool{}
		}
		key := d.Seq
		if d.Shard == before[d.Channel] {
			key = -1 - d.Seq // pre-move decisions count separately
		}
		if seqSeen[d.Channel][key] {
			t.Fatalf("%s: decision (shard %s, seq %d) delivered twice", d.Channel, d.Shard, d.Seq)
		}
		seqSeen[d.Channel][key] = true
	}
	if st.DecisionsDropped != 0 {
		t.Fatalf("merged stream dropped %d decisions despite the large buffer", st.DecisionsDropped)
	}
	for _, id := range ids {
		if perChannel[id] != 4 {
			t.Fatalf("%s: %d decisions in the merged stream, want 4", id, perChannel[id])
		}
	}
}

// TestRouterDrainShardFlushesPartialWindow: draining a shard forces its
// channels off with a quiesce; a partially integrated window becomes
// one final shorter decision, so the samples survive the move.
func TestRouterDrainShardFlushesPartialWindow(t *testing.T) {
	r, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ids := addChannels(t, r, 8)
	// 1.5 windows per channel: the half window is in-flight state.
	for i, id := range ids {
		if _, err := r.Push(id, band(t, testWindow+testWindow/2, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Flush(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	preStats := r.Stats()
	victim := r.ShardStats()[0]
	if err := r.DrainShard(victim.Name); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Shards != 1 {
		t.Fatalf("%d shards after drain, want 1", st.Shards)
	}
	// Banked counters: totals never move backwards when a shard
	// retires.
	if st.SamplesIn != preStats.SamplesIn {
		t.Fatalf("SamplesIn moved %d -> %d across drain", preStats.SamplesIn, st.SamplesIn)
	}
	for _, id := range ids {
		cs, ok := r.ChannelStats(id)
		if !ok {
			t.Fatalf("%s lost in drain", id)
		}
		if cs.Shard == victim.Name {
			t.Fatalf("%s still owned by drained shard", id)
		}
		if cs.SamplesIn != testWindow+testWindow/2 {
			t.Fatalf("%s: SamplesIn %d, want %d", id, cs.SamplesIn, testWindow+testWindow/2)
		}
		// Both full and (for ex-victim channels) flushed partial
		// windows: 2 decisions for moved channels, 1 full + residue
		// still pending for stayers.
		if moved := cs.Handoffs > 0; moved {
			if cs.Snapshots != 2 {
				t.Fatalf("%s (moved): %d decisions, want 2 (full + flushed partial)", id, cs.Snapshots)
			}
			if cs.Last == nil || cs.Last.WindowSamples != testWindow/2 {
				t.Fatalf("%s (moved): last decision %+v, want flushed half window", id, cs.Last)
			}
		} else if cs.Snapshots != 1 {
			t.Fatalf("%s (stayed): %d decisions, want 1", id, cs.Snapshots)
		}
	}
	if err := r.DrainShard(r.ShardStats()[0].Name); err == nil {
		t.Fatal("draining the last shard succeeded")
	}
}

// TestRouterConcurrentPushesDuringRebalance hammers the router with
// window-aligned concurrent pushes while the fleet grows and shrinks
// under it; afterwards the accounting must be exact. Run under -race
// this is the router's central concurrency test.
func TestRouterConcurrentPushesDuringRebalance(t *testing.T) {
	r, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	const nch, windows = 12, 24
	ids := addChannels(t, r, nch)
	blk := band(t, testWindow, 99)
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for w := 0; w < windows; w++ {
				if _, err := r.Push(id, blk); err != nil {
					t.Error(err)
					return
				}
			}
		}(id)
	}
	// Topology churn mid-stream: grow twice, drain one.
	added, err := r.AddShards(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddShards(1); err != nil {
		t.Fatal(err)
	}
	if err := r.DrainShard(added[0]); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if err := r.Flush(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.SamplesIn != int64(nch*windows*testWindow) {
		t.Fatalf("SamplesIn %d, want %d", st.SamplesIn, nch*windows*testWindow)
	}
	if st.Surfaces != int64(nch*windows) {
		t.Fatalf("Surfaces %d, want %d (windows neither lost nor duplicated)", st.Surfaces, nch*windows)
	}
	if st.SamplesDropped != 0 {
		t.Fatalf("dropped %d in backpressure mode", st.SamplesDropped)
	}
	for _, id := range ids {
		cs, _ := r.ChannelStats(id)
		if cs.Snapshots != windows || cs.SamplesIn != int64(windows*testWindow) {
			t.Fatalf("%s: %d decisions / %d samples, want %d / %d",
				id, cs.Snapshots, cs.SamplesIn, windows, windows*testWindow)
		}
	}
}

// TestRouterLifecycleErrors covers the administrative error paths.
func TestRouterLifecycleErrors(t *testing.T) {
	if _, err := New(Config{Shards: -1, Engine: stream.Config{
		Estimator: scf.Direct{Params: scf.Params{K: 64, M: 16}}}}); err == nil {
		t.Fatal("New with negative shards succeeded")
	}
	if _, err := New(Config{Shards: 1}); err == nil {
		t.Fatal("New without estimator succeeded")
	}
	r, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.AddChannel(""); err == nil {
		t.Fatal("empty channel id accepted")
	}
	if err := r.AddChannel("a"); err != nil {
		t.Fatal(err)
	}
	if err := r.AddChannel("a"); err == nil {
		t.Fatal("duplicate channel accepted")
	}
	if _, err := r.Push("missing", make([]complex128, 4)); err == nil {
		t.Fatal("push to unknown channel succeeded")
	}
	if _, err := r.AddShards(0); err == nil {
		t.Fatal("AddShards(0) succeeded")
	}
	if err := r.DrainShard("nope"); err == nil {
		t.Fatal("draining unknown shard succeeded")
	}
	if _, err := r.RemoveChannel("missing"); err == nil {
		t.Fatal("removing unknown channel succeeded")
	}
	if _, err := r.Push("a", band(t, testWindow, 1)); err != nil {
		t.Fatal(err)
	}
	cs, err := r.RemoveChannel("a")
	if err != nil {
		t.Fatal(err)
	}
	if cs.SamplesIn != testWindow || cs.Snapshots != 1 {
		t.Fatalf("removed channel stats %+v, want 1 window accounted", cs)
	}
	if _, err := r.Push("a", make([]complex128, 4)); err == nil {
		t.Fatal("push to removed channel succeeded")
	}
	if len(r.Channels()) != 0 {
		t.Fatalf("channels %v after removal, want none", r.Channels())
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := r.AddChannel("b"); err != ErrClosed {
		t.Fatalf("AddChannel after Close = %v, want ErrClosed", err)
	}
	if _, err := r.Push("a", nil); err != ErrClosed {
		t.Fatalf("Push after Close = %v, want ErrClosed", err)
	}
	if _, err := r.AddShards(1); err != ErrClosed {
		t.Fatalf("AddShards after Close = %v, want ErrClosed", err)
	}
	// Buffered decisions remain readable; the loop terminating proves
	// the merged channel is closed.
	for range r.Decisions() {
	}
}
