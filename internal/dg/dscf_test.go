package dg

import (
	"testing"
	"testing/quick"
)

func TestBuildDSCF3DStructure(t *testing.T) {
	// m=3, blocks=2: grid 5x5, nodes 5*5*2 = 50, accumulation edges 25
	// (plane 0 -> plane 1 only).
	g, err := BuildDSCF3D(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) != 50 {
		t.Fatalf("nodes = %d, want 50", len(g.Nodes))
	}
	if len(g.Edges) != 25 {
		t.Fatalf("edges = %d, want 25", len(g.Edges))
	}
	for _, e := range g.Edges {
		if e.Kind != AccumEdge || !VecEqual(e.Delta, Vec{0, 0, 1}) {
			t.Fatalf("bad accumulation edge: %+v", e)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("graph invalid: %v", err)
	}
}

func TestBuildDSCF3DPaperSize(t *testing.T) {
	// E2: the paper's full grid (M=64) has 127x127 operations per plane.
	g, err := BuildDSCF3D(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) != 127*127 {
		t.Fatalf("nodes = %d, want 16129", len(g.Nodes))
	}
	if len(g.Edges) != 0 {
		t.Fatalf("single plane has no accumulation edges, got %d", len(g.Edges))
	}
}

func TestBuildDSCF3DErrors(t *testing.T) {
	if _, err := BuildDSCF3D(0, 1); err == nil {
		t.Error("m=0 should fail")
	}
	if _, err := BuildDSCF3D(2, 0); err == nil {
		t.Error("blocks=0 should fail")
	}
}

func TestBuildDSCF2DStructure(t *testing.T) {
	// m=3: 5x5 nodes; each interior step produces one X and one X* edge.
	g, err := BuildDSCF2D(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) != 25 {
		t.Fatalf("nodes = %d, want 25", len(g.Nodes))
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("graph invalid: %v", err)
	}
	var x, xc int
	for _, e := range g.Edges {
		switch e.Kind {
		case XPropEdge:
			if !VecEqual(e.Delta, Vec{1, -1}) {
				t.Fatalf("X edge delta %v", e.Delta)
			}
			x++
		case XConjPropEdge:
			if !VecEqual(e.Delta, Vec{1, 1}) {
				t.Fatalf("X* edge delta %v", e.Delta)
			}
			xc++
		default:
			t.Fatalf("unexpected edge kind %v", e.Kind)
		}
	}
	// Each (f,a) with f+1 and a∓1 in range: 4x4 = 16 of each family.
	if x != 16 || xc != 16 {
		t.Fatalf("edge families %d/%d, want 16/16", x, xc)
	}
}

func TestConsumedBins(t *testing.T) {
	// Figure 1 semantics: node (f,a) multiplies X_{f+a} by conj(X_{f-a}).
	xb, cb := ConsumedBins(2, -3)
	if xb != -1 || cb != 5 {
		t.Fatalf("ConsumedBins(2,-3) = %d,%d", xb, cb)
	}
	xb, cb = ConsumedBins(0, 0)
	if xb != 0 || cb != 0 {
		t.Fatalf("ConsumedBins(0,0) = %d,%d", xb, cb)
	}
}

func TestConsumedBinsConstantAlongDiagonals(t *testing.T) {
	// Walking an X edge (1,-1) keeps f+a constant; walking an X* edge
	// (1,1) keeps f-a constant. That is what lets the lines share wires.
	f, a := -2, 1
	xb0, _ := ConsumedBins(f, a)
	xb1, _ := ConsumedBins(f+1, a-1)
	if xb0 != xb1 {
		t.Fatal("X diagonal does not preserve f+a")
	}
	_, cb0 := ConsumedBins(f, a)
	_, cb1 := ConsumedBins(f+1, a+1)
	if cb0 != cb1 {
		t.Fatal("X* diagonal does not preserve f-a")
	}
}

func TestCountDiagonals(t *testing.T) {
	if got := CountDiagonals(64); got != 253 {
		t.Fatalf("CountDiagonals(64) = %d, want 253", got)
	}
	if got := CountDiagonals(2); got != 5 {
		t.Fatalf("CountDiagonals(2) = %d, want 5", got)
	}
}

func TestGraphValidateCatchesBadEdges(t *testing.T) {
	g := &Graph{
		Dim:   2,
		Nodes: []Vec{{0, 0}, {1, 1}},
		Edges: []Edge{{From: Vec{0, 0}, Delta: Vec{1, 1}, Kind: XPropEdge}},
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
	g.Edges = append(g.Edges, Edge{From: Vec{5, 5}, Delta: Vec{0, 0}})
	if err := g.Validate(); err == nil {
		t.Error("edge from non-node should fail")
	}
	g.Edges = []Edge{{From: Vec{0, 0}, Delta: Vec{7, 7}}}
	if err := g.Validate(); err == nil {
		t.Error("edge to non-node should fail")
	}
	g.Edges = []Edge{{From: Vec{0}, Delta: Vec{0}}}
	if err := g.Validate(); err == nil {
		t.Error("wrong-dim edge should fail")
	}
	g2 := &Graph{Dim: 2, Nodes: []Vec{{0}}}
	if err := g2.Validate(); err == nil {
		t.Error("wrong-dim node should fail")
	}
}

// Property: node and edge counts of the 3-D builder follow closed forms.
func TestQuickDSCF3DCounts(t *testing.T) {
	f := func(m8, b8 uint8) bool {
		m := int(m8%5) + 1
		b := int(b8%4) + 1
		g, err := BuildDSCF3D(m, b)
		if err != nil {
			return false
		}
		side := 2*m - 1
		return len(g.Nodes) == side*side*b && len(g.Edges) == side*side*(b-1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
