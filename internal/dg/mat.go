package dg

import (
	"fmt"
	"strings"
)

// Vec is an integer column vector.
type Vec []int

// Mat is an integer matrix stored as rows: Mat[i][j] is row i, column j.
type Mat [][]int

// NewMat builds a matrix from rows, validating that all rows have equal
// length.
func NewMat(rows ...[]int) (Mat, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("dg: empty matrix")
	}
	w := len(rows[0])
	for i, r := range rows {
		if len(r) != w {
			return nil, fmt.Errorf("dg: row %d has %d columns, want %d", i, len(r), w)
		}
	}
	return Mat(rows), nil
}

// MustMat is NewMat that panics on error; for package-level constants.
func MustMat(rows ...[]int) Mat {
	m, err := NewMat(rows...)
	if err != nil {
		panic(err)
	}
	return m
}

// Rows returns the number of rows.
func (m Mat) Rows() int { return len(m) }

// Cols returns the number of columns (0 for an empty matrix).
func (m Mat) Cols() int {
	if len(m) == 0 {
		return 0
	}
	return len(m[0])
}

// Transpose returns mᵀ.
func (m Mat) Transpose() Mat {
	t := make(Mat, m.Cols())
	for j := range t {
		t[j] = make([]int, m.Rows())
		for i := range m {
			t[j][i] = m[i][j]
		}
	}
	return t
}

// MulVec returns m·v. It returns an error on dimension mismatch.
func (m Mat) MulVec(v Vec) (Vec, error) {
	if m.Cols() != len(v) {
		return nil, fmt.Errorf("dg: %dx%d matrix times %d-vector", m.Rows(), m.Cols(), len(v))
	}
	out := make(Vec, m.Rows())
	for i, row := range m {
		s := 0
		for j, c := range row {
			s += c * v[j]
		}
		out[i] = s
	}
	return out, nil
}

// Mul returns m·o. It returns an error on dimension mismatch.
func (m Mat) Mul(o Mat) (Mat, error) {
	if m.Cols() != o.Rows() {
		return nil, fmt.Errorf("dg: %dx%d times %dx%d", m.Rows(), m.Cols(), o.Rows(), o.Cols())
	}
	out := make(Mat, m.Rows())
	for i := range out {
		out[i] = make([]int, o.Cols())
		for j := 0; j < o.Cols(); j++ {
			s := 0
			for k := 0; k < m.Cols(); k++ {
				s += m[i][k] * o[k][j]
			}
			out[i][j] = s
		}
	}
	return out, nil
}

// Equal reports elementwise equality.
func (m Mat) Equal(o Mat) bool {
	if m.Rows() != o.Rows() || m.Cols() != o.Cols() {
		return false
	}
	for i := range m {
		for j := range m[i] {
			if m[i][j] != o[i][j] {
				return false
			}
		}
	}
	return true
}

// String renders the matrix in a compact bracket form.
func (m Mat) String() string {
	var b strings.Builder
	b.WriteString("[")
	for i, row := range m {
		if i > 0 {
			b.WriteString("; ")
		}
		for j, c := range row {
			if j > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%d", c)
		}
	}
	b.WriteString("]")
	return b.String()
}

// Dot returns the inner product of two vectors of equal length.
func Dot(a, b Vec) (int, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("dg: dot of %d- and %d-vectors", len(a), len(b))
	}
	s := 0
	for i := range a {
		s += a[i] * b[i]
	}
	return s, nil
}

// VecEqual reports elementwise vector equality.
func VecEqual(a, b Vec) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// VecString renders a vector as (a, b, ...).
func VecString(v Vec) string {
	parts := make([]string, len(v))
	for i, c := range v {
		parts[i] = fmt.Sprintf("%d", c)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
