package dg

import "testing"

func TestApplyDimensionChecks(t *testing.T) {
	g, err := BuildDSCF2D(2)
	if err != nil {
		t.Fatal(err)
	}
	// P with wrong row count.
	badP := MustMat([]int{1}, []int{0}, []int{0})
	if _, err := Apply(g, badP, Vec{1, 0}); err == nil {
		t.Error("wrong P rows should fail")
	}
	// s with wrong length.
	goodP := MustMat([]int{0}, []int{1})
	if _, err := Apply(g, goodP, Vec{1, 0, 0}); err == nil {
		t.Error("wrong s length should fail")
	}
}

func TestCheckCausalDetectsViolation(t *testing.T) {
	g, err := BuildDSCF3D(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := MustMat([]int{1, 0}, []int{0, 1}, []int{0, 0})
	// Schedule t = -n: accumulation edges travel backwards in time.
	m, err := Apply(g, p, Vec{0, 0, -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CheckCausal(g, AccumEdge); err == nil {
		t.Error("anti-causal schedule should fail")
	}
	// The paper's schedule passes.
	m2, err := Apply(g, p, Vec{0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.CheckCausal(g, AccumEdge); err != nil {
		t.Errorf("causal schedule rejected: %v", err)
	}
	// Kind filtering: checking a kind with no edges passes trivially.
	if err := m.CheckCausal(g, XPropEdge); err != nil {
		t.Errorf("no-edge kind should pass: %v", err)
	}
}

func TestCheckCollisionFreeDetectsCollision(t *testing.T) {
	g, err := BuildDSCF3D(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Project everything to processor (0) with time 0: total collision.
	p := MustMat([]int{0}, []int{0}, []int{0})
	m, err := Apply(g, p, Vec{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CheckCollisionFree(); err == nil {
		t.Error("total collision should fail")
	}
}

func TestProcessorSet(t *testing.T) {
	g, err := BuildDSCF2D(2)
	if err != nil {
		t.Fatal(err)
	}
	// P2 projection: processors are the distinct a values: -1, 0, 1.
	p := MustMat([]int{0}, []int{1})
	m, err := Apply(g, p, Vec{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	procs := m.ProcessorSet()
	if len(procs) != 3 {
		t.Fatalf("processors %d, want 3", len(procs))
	}
	seen := map[string]bool{}
	for _, pr := range procs {
		seen[VecString(pr)] = true
	}
	for _, want := range []string{"(-1)", "(0)", "(1)"} {
		if !seen[want] {
			t.Fatalf("missing processor %s in %v", want, procs)
		}
	}
}

func TestEdgeKindString(t *testing.T) {
	if AccumEdge.String() != "accum" || XPropEdge.String() != "X" || XConjPropEdge.String() != "X*" {
		t.Error("edge kind names wrong")
	}
	if EdgeKind(9).String() == "" {
		t.Error("unknown kind renders empty")
	}
}
