package dg

import (
	"testing"
	"testing/quick"
)

func TestNewMatValidation(t *testing.T) {
	if _, err := NewMat(); err == nil {
		t.Error("empty matrix should fail")
	}
	if _, err := NewMat([]int{1, 2}, []int{3}); err == nil {
		t.Error("ragged matrix should fail")
	}
	m, err := NewMat([]int{1, 2}, []int{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 2 || m.Cols() != 2 {
		t.Fatalf("dims %dx%d", m.Rows(), m.Cols())
	}
}

func TestMustMatPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustMat on ragged input should panic")
		}
	}()
	MustMat([]int{1}, []int{2, 3})
}

func TestTranspose(t *testing.T) {
	m := MustMat([]int{1, 2, 3}, []int{4, 5, 6}) // 2x3
	tr := m.Transpose()                          // 3x2
	want := MustMat([]int{1, 4}, []int{2, 5}, []int{3, 6})
	if !tr.Equal(want) {
		t.Fatalf("transpose = %v", tr)
	}
	// Involution.
	if !tr.Transpose().Equal(m) {
		t.Fatal("double transpose != original")
	}
}

func TestMulVec(t *testing.T) {
	m := MustMat([]int{1, 0, 2}, []int{0, -1, 1})
	v, err := m.MulVec(Vec{3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !VecEqual(v, Vec{13, 1}) {
		t.Fatalf("MulVec = %v", v)
	}
	if _, err := m.MulVec(Vec{1, 2}); err == nil {
		t.Error("dim mismatch should fail")
	}
}

func TestMatMul(t *testing.T) {
	a := MustMat([]int{1, 2}, []int{3, 4})
	b := MustMat([]int{0, 1}, []int{1, 0})
	got, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := MustMat([]int{2, 1}, []int{4, 3})
	if !got.Equal(want) {
		t.Fatalf("Mul = %v", got)
	}
	if _, err := a.Mul(MustMat([]int{1, 2, 3})); err == nil {
		t.Error("dim mismatch should fail")
	}
}

func TestMatString(t *testing.T) {
	m := MustMat([]int{1, 0}, []int{0, 1})
	if m.String() != "[1 0; 0 1]" {
		t.Fatalf("String = %q", m.String())
	}
}

func TestDot(t *testing.T) {
	got, err := Dot(Vec{1, 2, 3}, Vec{4, 5, 6})
	if err != nil || got != 32 {
		t.Fatalf("Dot = %d, %v", got, err)
	}
	if _, err := Dot(Vec{1}, Vec{1, 2}); err == nil {
		t.Error("dim mismatch should fail")
	}
}

func TestVecHelpers(t *testing.T) {
	if !VecEqual(Vec{1, 2}, Vec{1, 2}) || VecEqual(Vec{1}, Vec{1, 2}) || VecEqual(Vec{1, 2}, Vec{2, 1}) {
		t.Error("VecEqual wrong")
	}
	if VecString(Vec{1, -2}) != "(1, -2)" {
		t.Errorf("VecString = %q", VecString(Vec{1, -2}))
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ for random small matrices.
func TestQuickTransposeOfProduct(t *testing.T) {
	f := func(vals [12]int8) bool {
		a := MustMat(
			[]int{int(vals[0]), int(vals[1]), int(vals[2])},
			[]int{int(vals[3]), int(vals[4]), int(vals[5])},
		) // 2x3
		b := MustMat(
			[]int{int(vals[6]), int(vals[7])},
			[]int{int(vals[8]), int(vals[9])},
			[]int{int(vals[10]), int(vals[11])},
		) // 3x2
		ab, err := a.Mul(b)
		if err != nil {
			return false
		}
		btat, err := b.Transpose().Mul(a.Transpose())
		if err != nil {
			return false
		}
		return ab.Transpose().Equal(btat)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: matrix-vector product distributes over vector addition.
func TestQuickMulVecLinear(t *testing.T) {
	f := func(vals [6]int8, x, y [3]int8) bool {
		m := MustMat(
			[]int{int(vals[0]), int(vals[1]), int(vals[2])},
			[]int{int(vals[3]), int(vals[4]), int(vals[5])},
		)
		vx := Vec{int(x[0]), int(x[1]), int(x[2])}
		vy := Vec{int(y[0]), int(y[1]), int(y[2])}
		sum := Vec{vx[0] + vy[0], vx[1] + vy[1], vx[2] + vy[2]}
		mx, _ := m.MulVec(vx)
		my, _ := m.MulVec(vy)
		ms, _ := m.MulVec(sum)
		return VecEqual(ms, Vec{mx[0] + my[0], mx[1] + my[1]})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
