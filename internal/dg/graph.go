package dg

import "fmt"

// EdgeKind labels what an edge of the DSCF dependence graph carries.
type EdgeKind int

// Edge kinds of the DSCF dependence graphs.
const (
	// AccumEdge carries the running DSCF sum between integration planes
	// (the (0,0,1) edges of the paper's Figure 2).
	AccumEdge EdgeKind = iota
	// XPropEdge propagates a spectral value X_{n,j} along a solid diagonal
	// of the paper's Figure 1.
	XPropEdge
	// XConjPropEdge propagates a conjugated value conj(X_{n,j}) along a
	// dotted diagonal of Figure 1.
	XConjPropEdge
)

// String returns a short label for the edge kind.
func (k EdgeKind) String() string {
	switch k {
	case AccumEdge:
		return "accum"
	case XPropEdge:
		return "X"
	case XConjPropEdge:
		return "X*"
	default:
		return fmt.Sprintf("EdgeKind(%d)", int(k))
	}
}

// Edge is a displacement edge of a dependence graph: it leaves node From
// towards From+Delta and carries Kind.
type Edge struct {
	From  Vec
	Delta Vec
	Kind  EdgeKind
}

// Graph is a dependence graph over integer lattice points.
type Graph struct {
	// Dim is the dimensionality of the node coordinates.
	Dim int
	// Nodes lists every operation point.
	Nodes []Vec
	// Edges lists every displacement edge.
	Edges []Edge
}

// Validate checks that all nodes and edges have the graph's dimension and
// that every edge endpoint (From and From+Delta) is a node of the graph.
func (g *Graph) Validate() error {
	idx := make(map[string]bool, len(g.Nodes))
	for i, n := range g.Nodes {
		if len(n) != g.Dim {
			return fmt.Errorf("dg: node %d has dim %d, want %d", i, len(n), g.Dim)
		}
		idx[VecString(n)] = true
	}
	for i, e := range g.Edges {
		if len(e.From) != g.Dim || len(e.Delta) != g.Dim {
			return fmt.Errorf("dg: edge %d has wrong dim", i)
		}
		if !idx[VecString(e.From)] {
			return fmt.Errorf("dg: edge %d leaves non-node %s", i, VecString(e.From))
		}
		to := make(Vec, g.Dim)
		for d := range to {
			to[d] = e.From[d] + e.Delta[d]
		}
		if !idx[VecString(to)] {
			return fmt.Errorf("dg: edge %d enters non-node %s", i, VecString(to))
		}
	}
	return nil
}

// Mapped is the image of a graph under a processor assignment matrix P and
// scheduling vector s.
type Mapped struct {
	// Procs[i] = Pᵀ·Nodes[i]: the processor coordinates of each node.
	Procs []Vec
	// Times[i] = sᵀ·Nodes[i]: the execution time of each node.
	Times []int
	// EdgeProcDeltas[i] = Pᵀ·Edges[i].Delta.
	EdgeProcDeltas []Vec
	// EdgeTimeDeltas[i] = sᵀ·Edges[i].Delta.
	EdgeTimeDeltas []int
}

// Apply maps graph g with assignment matrix p (Dim×k) and scheduling
// vector s (length Dim), returning processor coordinates of dimension k.
func Apply(g *Graph, p Mat, s Vec) (*Mapped, error) {
	if p.Rows() != g.Dim {
		return nil, fmt.Errorf("dg: P has %d rows, graph dim %d", p.Rows(), g.Dim)
	}
	if len(s) != g.Dim {
		return nil, fmt.Errorf("dg: s has length %d, graph dim %d", len(s), g.Dim)
	}
	pt := p.Transpose()
	m := &Mapped{
		Procs:          make([]Vec, len(g.Nodes)),
		Times:          make([]int, len(g.Nodes)),
		EdgeProcDeltas: make([]Vec, len(g.Edges)),
		EdgeTimeDeltas: make([]int, len(g.Edges)),
	}
	for i, n := range g.Nodes {
		proc, err := pt.MulVec(n)
		if err != nil {
			return nil, err
		}
		t, err := Dot(s, n)
		if err != nil {
			return nil, err
		}
		m.Procs[i] = proc
		m.Times[i] = t
	}
	for i, e := range g.Edges {
		d, err := pt.MulVec(e.Delta)
		if err != nil {
			return nil, err
		}
		dt, err := Dot(s, e.Delta)
		if err != nil {
			return nil, err
		}
		m.EdgeProcDeltas[i] = d
		m.EdgeTimeDeltas[i] = dt
	}
	return m, nil
}

// CheckCausal verifies that every edge of the given kind has a strictly
// positive time displacement under the mapping — the fundamental
// admissibility condition for a scheduling vector (a dependence cannot
// travel backwards in time).
func (m *Mapped) CheckCausal(g *Graph, kind EdgeKind) error {
	for i, e := range g.Edges {
		if e.Kind != kind {
			continue
		}
		if m.EdgeTimeDeltas[i] <= 0 {
			return fmt.Errorf("dg: %s edge %d from %s has time delta %d (must be > 0)",
				kind, i, VecString(e.From), m.EdgeTimeDeltas[i])
		}
	}
	return nil
}

// CheckCollisionFree verifies that no two nodes share both processor and
// time — two operations cannot execute on the same processor in the same
// cycle.
func (m *Mapped) CheckCollisionFree() error {
	seen := make(map[string]int, len(m.Procs))
	for i := range m.Procs {
		key := fmt.Sprintf("%s@%d", VecString(m.Procs[i]), m.Times[i])
		if j, dup := seen[key]; dup {
			return fmt.Errorf("dg: nodes %d and %d collide at %s", j, i, key)
		}
		seen[key] = i
	}
	return nil
}

// ProcessorSet returns the distinct processor coordinates of the mapping,
// in first-appearance order.
func (m *Mapped) ProcessorSet() []Vec {
	var out []Vec
	seen := make(map[string]bool)
	for _, p := range m.Procs {
		k := VecString(p)
		if !seen[k] {
			seen[k] = true
			out = append(out, p)
		}
	}
	return out
}
