// Package dg provides the dependence-graph (DG) machinery of the paper's
// first mapping step — the array-processor design techniques of Kung's
// "VLSI Array Processors" (the paper's reference [4]) applied to the DSCF.
//
// A DG is a set of integer lattice points (one per elementary operation)
// with displacement edges between them. The DSCF of expression 3 is a
// three-dimensional DG: each point v = (f, a, n)ᵀ is one complex
// multiplication X_{n,f+a}·conj(X_{n,f-a}), and each edge
// (v, Δv) = ((f,a,n)ᵀ, (0,0,1)ᵀ) carries the running sum from integration
// plane n-1 to plane n (the paper's Figure 2).
//
// Mapping a DG onto fewer processors uses a processor-assignment matrix P
// and a scheduling vector s:
//
//	processor(v) = Pᵀ·v      time(v) = sᵀ·v      Δprocessor = Pᵀ·Δv
//
// This package supplies exact integer vectors/matrices (Vec, Mat), DG
// construction for the DSCF in both its 3-D form and the 2-D form that
// remains after projecting out n (the paper's Figure 1, with localised
// propagation edges along the spectral-value diagonals), and the Apply
// transform with the admissibility checks (causality sᵀΔv > 0 on
// accumulation edges, processor/time collision freedom) that array
// processor theory requires of a valid mapping.
//
// The concrete matrices of the paper (P1, s1, P2, s2, P2a1, P2a2, P2b)
// live in internal/mapping, which drives this package.
package dg
