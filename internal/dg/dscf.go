package dg

import "fmt"

// BuildDSCF3D constructs the paper's Figure 2 dependence graph for a DSCF
// with f, a in [-(m-1), +(m-1)] and n in [0, blocks): one node per complex
// multiplication, with accumulation edges (0,0,1) linking each node to its
// successor in the next integration plane. Node coordinates are (f, a, n).
func BuildDSCF3D(m, blocks int) (*Graph, error) {
	if m < 1 || blocks < 1 {
		return nil, fmt.Errorf("dg: BuildDSCF3D(m=%d, blocks=%d) needs m, blocks >= 1", m, blocks)
	}
	g := &Graph{Dim: 3}
	ext := m - 1
	for n := 0; n < blocks; n++ {
		for a := -ext; a <= ext; a++ {
			for f := -ext; f <= ext; f++ {
				g.Nodes = append(g.Nodes, Vec{f, a, n})
				if n+1 < blocks {
					g.Edges = append(g.Edges, Edge{
						From:  Vec{f, a, n},
						Delta: Vec{0, 0, 1},
						Kind:  AccumEdge,
					})
				}
			}
		}
	}
	return g, nil
}

// BuildDSCF2D constructs the two-dimensional DG that remains after the
// paper's P1/s1 projection (Figure 1 with localised propagation edges).
// Node coordinates are (f, a). Spectral values travel along diagonals:
//
//   - X_{n,j} is consumed by every node with f+a = j; localised as edges
//     (f, a) → (f+1, a-1) of kind XPropEdge (towards lower a),
//   - conj(X_{n,j}) is consumed by every node with f-a = j; localised as
//     edges (f, a) → (f+1, a+1) of kind XConjPropEdge (towards higher a),
//
// exactly the solid and dotted line families of Figure 1.
func BuildDSCF2D(m int) (*Graph, error) {
	if m < 1 {
		return nil, fmt.Errorf("dg: BuildDSCF2D(m=%d) needs m >= 1", m)
	}
	g := &Graph{Dim: 2}
	ext := m - 1
	for a := -ext; a <= ext; a++ {
		for f := -ext; f <= ext; f++ {
			g.Nodes = append(g.Nodes, Vec{f, a})
		}
	}
	for a := -ext; a <= ext; a++ {
		for f := -ext; f <= ext; f++ {
			if f+1 <= ext && a-1 >= -ext {
				g.Edges = append(g.Edges, Edge{From: Vec{f, a}, Delta: Vec{1, -1}, Kind: XPropEdge})
			}
			if f+1 <= ext && a+1 <= ext {
				g.Edges = append(g.Edges, Edge{From: Vec{f, a}, Delta: Vec{1, 1}, Kind: XConjPropEdge})
			}
		}
	}
	return g, nil
}

// ConsumedBins returns, for DSCF node (f, a), the spectrum bin indices of
// the two operands: the normal value at f+a and the conjugated value at
// f-a. It is the semantic payload behind the Figure 1 interconnection
// pattern ("every multiplication connects to a 'normal' value and to a
// conjugated value").
func ConsumedBins(f, a int) (xBin, xConjBin int) { return f + a, f - a }

// CountDiagonals returns how many distinct spectral values feed a 2M-1
// grid: bins f±a span [-2(m-1), +2(m-1)], i.e. 4(m-1)+1 distinct values
// per family.
func CountDiagonals(m int) int { return 4*(m-1) + 1 }
