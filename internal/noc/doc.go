// Package noc models the inter-tile interconnect of the AAF Digital
// Reconfigurable Baseband Processing Fabric: the point-to-point links that
// carry chain boundary values between neighbouring Montium tiles.
//
// The folded systolic mapping needs exactly two unidirectional links per
// adjacent tile pair: one carrying X-chain values towards lower core
// indices and one carrying conjugate-operand values towards higher core
// indices. Each link transports one complex value per chain shift, i.e.
// once per T basic operations — the paper's argument for why the NoC
// cannot become the bottleneck (section 4), which experiment E12 verifies
// from this package's traffic counters.
//
// Links are buffered Go channels, so a platform of goroutine-per-tile
// simulations self-synchronises exactly like a flow-controlled
// circuit-switched network: a tile that runs ahead blocks on its
// neighbour's unconsumed value. Links support failure injection (Break)
// for the error-propagation tests; a broken link makes every subsequent
// Send/Recv fail, and an aborted fabric releases any blocked tile.
package noc
