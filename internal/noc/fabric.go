package noc

import (
	"fmt"
	"sync"
)

// Fabric is the line-topology interconnect of a Q-tile platform: for each
// adjacent pair (q, q+1) it provides one link carrying X-chain values from
// q+1 down to q and one carrying conjugate-operand values from q up to
// q+1.
type Fabric struct {
	q         int
	xDown     []*Link // xDown[i]: tile i+1 -> tile i
	cUp       []*Link // cUp[i]:   tile i   -> tile i+1
	abortCh   chan struct{}
	abortOnce sync.Once
}

// NewFabric builds the interconnect for q tiles with the given per-link
// buffer depth.
func NewFabric(q, depth int) (*Fabric, error) {
	if q < 1 {
		return nil, fmt.Errorf("noc: fabric needs at least 1 tile, got %d", q)
	}
	f := &Fabric{q: q, abortCh: make(chan struct{})}
	for i := 0; i < q-1; i++ {
		f.xDown = append(f.xDown, newLink(fmt.Sprintf("x[%d<-%d]", i, i+1), depth, f.abortCh))
		f.cUp = append(f.cUp, newLink(fmt.Sprintf("c[%d->%d]", i, i+1), depth, f.abortCh))
	}
	return f, nil
}

// Tiles returns the tile count.
func (f *Fabric) Tiles() int { return f.q }

// XDown returns the link delivering X-chain values from tile i+1 to tile
// i, or nil if i is the last tile (which injects from its own spectrum).
func (f *Fabric) XDown(i int) *Link {
	if i < 0 || i >= f.q-1 {
		return nil
	}
	return f.xDown[i]
}

// CUp returns the link delivering conjugate-operand values from tile i-1
// to tile i, or nil for tile 0 (which injects from its own spectrum).
func (f *Fabric) CUp(i int) *Link {
	if i < 1 || i >= f.q {
		return nil
	}
	return f.cUp[i-1]
}

// Abort releases every blocked Send/Recv with an error; used to unwind the
// platform when any tile fails.
func (f *Fabric) Abort() { f.abortOnce.Do(func() { close(f.abortCh) }) }

// Totals sums the traffic over all links.
func (f *Fabric) Totals() (sent, received int64) {
	for _, l := range f.xDown {
		s, r := l.Traffic()
		sent += s
		received += r
	}
	for _, l := range f.cUp {
		s, r := l.Traffic()
		sent += s
		received += r
	}
	return sent, received
}

// Links returns all links (for fault-injection tests and reporting).
func (f *Fabric) Links() []*Link {
	out := make([]*Link, 0, 2*(f.q-1))
	out = append(out, f.xDown...)
	out = append(out, f.cUp...)
	return out
}
