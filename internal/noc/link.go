package noc

import (
	"fmt"
	"sync/atomic"

	"tiledcfd/internal/fixed"
)

// Link is a unidirectional, flow-controlled connection carrying complex
// chain values between two tiles. It is safe for one sender and one
// receiver goroutine.
type Link struct {
	name   string
	ch     chan fixed.Complex
	abort  <-chan struct{}
	broken atomic.Bool
	sent   atomic.Int64
	recvd  atomic.Int64
}

// newLink creates a link with the given buffer depth (>= 1 so one value
// per shift never blocks a healthy lockstep schedule).
func newLink(name string, depth int, abort <-chan struct{}) *Link {
	if depth < 1 {
		depth = 1
	}
	return &Link{name: name, ch: make(chan fixed.Complex, depth), abort: abort}
}

// Name returns the link's identifier.
func (l *Link) Name() string { return l.name }

// Send transmits one value. It fails if the link is broken or the fabric
// aborted.
func (l *Link) Send(v fixed.Complex) error {
	if l.broken.Load() {
		return fmt.Errorf("noc: link %s is broken", l.name)
	}
	select {
	case l.ch <- v:
		l.sent.Add(1)
		return nil
	case <-l.abort:
		return fmt.Errorf("noc: link %s aborted during send", l.name)
	}
}

// Recv receives one value. It fails if the link is broken or the fabric
// aborted.
func (l *Link) Recv() (fixed.Complex, error) {
	if l.broken.Load() {
		return fixed.Complex{}, fmt.Errorf("noc: link %s is broken", l.name)
	}
	select {
	case v := <-l.ch:
		l.recvd.Add(1)
		return v, nil
	case <-l.abort:
		return fixed.Complex{}, fmt.Errorf("noc: link %s aborted during receive", l.name)
	}
}

// Break injects a permanent link fault: all future Send/Recv calls fail.
func (l *Link) Break() { l.broken.Store(true) }

// Traffic returns how many values have crossed the link (sent, received).
func (l *Link) Traffic() (sent, received int64) {
	return l.sent.Load(), l.recvd.Load()
}
