package noc

import (
	"sync"
	"testing"

	"tiledcfd/internal/fixed"
)

func TestLinkSendRecv(t *testing.T) {
	f, err := NewFabric(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	l := f.XDown(0)
	v := fixed.Complex{Re: 5, Im: -5}
	if err := l.Send(v); err != nil {
		t.Fatal(err)
	}
	got, err := l.Recv()
	if err != nil || got != v {
		t.Fatalf("Recv = %+v, %v", got, err)
	}
	s, r := l.Traffic()
	if s != 1 || r != 1 {
		t.Fatalf("traffic %d/%d", s, r)
	}
}

func TestLinkConcurrentPingPong(t *testing.T) {
	f, err := NewFabric(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	l := f.XDown(0)
	const n = 1000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := l.Send(fixed.Complex{Re: fixed.Q15(i)}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			v, err := l.Recv()
			if err != nil {
				t.Error(err)
				return
			}
			if v.Re != fixed.Q15(i) {
				t.Errorf("out of order: got %d want %d", v.Re, i)
				return
			}
		}
	}()
	wg.Wait()
	s, r := l.Traffic()
	if s != n || r != n {
		t.Fatalf("traffic %d/%d", s, r)
	}
}

func TestBrokenLink(t *testing.T) {
	f, _ := NewFabric(2, 1)
	l := f.CUp(1)
	l.Break()
	if err := l.Send(fixed.Complex{}); err == nil {
		t.Error("send on broken link should fail")
	}
	if _, err := l.Recv(); err == nil {
		t.Error("recv on broken link should fail")
	}
}

func TestAbortReleasesBlockedReceiver(t *testing.T) {
	f, _ := NewFabric(2, 1)
	l := f.XDown(0)
	done := make(chan error, 1)
	go func() {
		_, err := l.Recv() // blocks: nothing was sent
		done <- err
	}()
	f.Abort()
	if err := <-done; err == nil {
		t.Fatal("aborted recv should fail")
	}
	// Abort is idempotent.
	f.Abort()
}

func TestAbortReleasesBlockedSender(t *testing.T) {
	f, _ := NewFabric(2, 1)
	l := f.CUp(1)
	if err := l.Send(fixed.Complex{}); err != nil { // fills depth-1 buffer
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- l.Send(fixed.Complex{}) // blocks: buffer full
	}()
	f.Abort()
	if err := <-done; err == nil {
		t.Fatal("aborted send should fail")
	}
}

func TestFabricTopology(t *testing.T) {
	f, err := NewFabric(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if f.Tiles() != 4 {
		t.Fatalf("tiles %d", f.Tiles())
	}
	if len(f.Links()) != 6 {
		t.Fatalf("links %d, want 6 (3 boundaries x 2 chains)", len(f.Links()))
	}
	// End conditions: last tile has no XDown source; tile 0 no CUp source.
	if f.XDown(3) != nil {
		t.Error("last tile should have no incoming X link")
	}
	if f.CUp(0) != nil {
		t.Error("tile 0 should have no incoming conjugate link")
	}
	if f.XDown(0) == nil || f.CUp(3) == nil {
		t.Error("interior links missing")
	}
	if f.XDown(-1) != nil || f.CUp(7) != nil {
		t.Error("out-of-range links must be nil")
	}
}

func TestFabricErrors(t *testing.T) {
	if _, err := NewFabric(0, 1); err == nil {
		t.Error("zero tiles should fail")
	}
}

func TestSingleTileFabric(t *testing.T) {
	f, err := NewFabric(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Links()) != 0 {
		t.Fatalf("single tile has %d links", len(f.Links()))
	}
	s, r := f.Totals()
	if s != 0 || r != 0 {
		t.Fatal("phantom traffic")
	}
}

func TestFabricTotals(t *testing.T) {
	f, _ := NewFabric(3, 2)
	_ = f.XDown(0).Send(fixed.Complex{Re: 1})
	_ = f.CUp(1).Send(fixed.Complex{Re: 2})
	_, _ = f.XDown(0).Recv()
	s, r := f.Totals()
	if s != 2 || r != 1 {
		t.Fatalf("totals %d/%d, want 2/1", s, r)
	}
}
