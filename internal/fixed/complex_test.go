package fixed

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func TestCFromFloatAndBack(t *testing.T) {
	c := CFromFloat(complex(0.5, -0.25))
	if c.Re != HalfQ15 || c.Im != -8192 {
		t.Fatalf("CFromFloat(0.5,-0.25) = %+v", c)
	}
	got := c.Complex128()
	if real(got) != 0.5 || imag(got) != -0.25 {
		t.Fatalf("Complex128 = %v", got)
	}
}

func TestConj(t *testing.T) {
	c := Complex{Re: 100, Im: 200}
	g := Conj(c)
	if g.Re != 100 || g.Im != -200 {
		t.Fatalf("Conj = %+v", g)
	}
	// Saturating edge: conj of Im = MinQ15 is MaxQ15.
	e := Conj(Complex{Re: 0, Im: MinQ15})
	if e.Im != MaxQ15 {
		t.Fatalf("Conj(min imag) = %+v, want saturated Im", e)
	}
}

func TestCAddCSub(t *testing.T) {
	a := Complex{Re: 30000, Im: -30000}
	b := Complex{Re: 10000, Im: -10000}
	s := CAdd(a, b)
	if s.Re != MaxQ15 || s.Im != MinQ15 {
		t.Fatalf("CAdd saturation: %+v", s)
	}
	d := CSub(a, b)
	if d.Re != 20000 || d.Im != -20000 {
		t.Fatalf("CSub: %+v", d)
	}
}

func TestCMulAgainstFloat(t *testing.T) {
	vals := []complex128{
		0, complex(0.5, 0), complex(0, 0.5), complex(-0.5, 0.25),
		complex(0.9, -0.9), complex(-0.99, -0.99), complex(0.1, 0.2),
	}
	cl := func(f float64) float64 {
		return math.Max(-1, math.Min(f, MaxQ15.Float()))
	}
	for _, a := range vals {
		for _, b := range vals {
			fa, fb := CFromFloat(a), CFromFloat(b)
			got := CMul(fa, fb).Complex128()
			want := a * b
			// Components beyond Q15 full scale saturate by design.
			want = complex(cl(real(want)), cl(imag(want)))
			if cmplx.Abs(got-want) > 3.0/scale {
				t.Errorf("CMul(%v,%v) = %v, want ~%v", a, b, got, want)
			}
		}
	}
}

func TestCMulConjAgainstFloat(t *testing.T) {
	a := complex(0.25, 0.5)
	b := complex(-0.125, 0.75)
	got := CMulConj(CFromFloat(a), CFromFloat(b)).Complex128()
	want := a * cmplx.Conj(b)
	if cmplx.Abs(got-want) > 3.0/scale {
		t.Fatalf("CMulConj = %v, want ~%v", got, want)
	}
}

func TestCMulConjIdentity(t *testing.T) {
	// x*conj(x) must be real, non-negative, equal to |x|^2.
	x := CFromFloat(complex(0.6, -0.3))
	p := CMulConj(x, x)
	if p.Im != 0 {
		t.Fatalf("x*conj(x) has Im = %d, want 0", p.Im)
	}
	want := 0.6*0.6 + 0.3*0.3
	if math.Abs(p.Re.Float()-want) > 2.0/scale {
		t.Fatalf("x*conj(x).Re = %v, want ~%v", p.Re.Float(), want)
	}
}

func TestCScaleAndCHalf(t *testing.T) {
	c := Complex{Re: 8000, Im: -8000}
	h := CHalf(c)
	if h.Re != 4000 || h.Im != -4000 {
		t.Fatalf("CHalf = %+v", h)
	}
	s := CScale(c, HalfQ15)
	if s.Re != 4000 || s.Im != -4000 {
		t.Fatalf("CScale(half) = %+v", s)
	}
}

func TestBFlyMatchesFloatButterfly(t *testing.T) {
	a := complex(0.5, 0.25)
	b := complex(-0.25, 0.125)
	w := cmplx.Exp(complex(0, -2*math.Pi*3/16))
	lo, hi := BFly(CFromFloat(a), CFromFloat(b), CFromFloat(w))
	wantLo := (a + w*b) / 2
	wantHi := (a - w*b) / 2
	if cmplx.Abs(lo.Complex128()-wantLo) > 3.0/scale {
		t.Errorf("BFly lo = %v, want ~%v", lo.Complex128(), wantLo)
	}
	if cmplx.Abs(hi.Complex128()-wantHi) > 3.0/scale {
		t.Errorf("BFly hi = %v, want ~%v", hi.Complex128(), wantHi)
	}
}

func TestBFlyNeverOverflows(t *testing.T) {
	// With the /2 scaling, any inputs (including full-scale corners) stay
	// within Q15 before saturation would trigger: |(a±wb)/2| <= (|a|+|b|)/2 <= 1.
	corners := []Complex{
		{MaxQ15, MaxQ15}, {MinQ15, MinQ15}, {MaxQ15, MinQ15}, {MinQ15, MaxQ15},
	}
	ws := []Complex{
		{MaxQ15, 0}, {0, MinQ15}, {23170, -23170}, // ~e^{-jpi/4}
	}
	clamp := func(v complex128) complex128 {
		cl := func(f float64) float64 {
			if f > MaxQ15.Float() {
				return MaxQ15.Float()
			}
			if f < -1 {
				return -1
			}
			return f
		}
		return complex(cl(real(v)), cl(imag(v)))
	}
	for _, a := range corners {
		for _, b := range corners {
			for _, w := range ws {
				lo, hi := BFly(a, b, w)
				fa, fb, fw := a.Complex128(), b.Complex128(), w.Complex128()
				// Components beyond full scale saturate; compare against the
				// clamped float butterfly.
				wantLo := clamp((fa + fw*fb) / 2)
				wantHi := clamp((fa - fw*fb) / 2)
				if cmplx.Abs(lo.Complex128()-wantLo) > 2e-3 {
					t.Errorf("BFly lo corner mismatch: %v vs %v", lo.Complex128(), wantLo)
				}
				if cmplx.Abs(hi.Complex128()-wantHi) > 2e-3 {
					t.Errorf("BFly hi corner mismatch: %v vs %v", hi.Complex128(), wantHi)
				}
			}
		}
	}
}

func TestCMeanExact(t *testing.T) {
	// No intermediate saturation: mean of two near-rail values is exact.
	a := Complex{Re: 30000, Im: -30000}
	b := Complex{Re: 30000, Im: -30000}
	m := CMean(a, b)
	if m.Re != 30000 || m.Im != -30000 {
		t.Fatalf("CMean = %+v", m)
	}
	// Floor semantics on odd sums.
	o := CMean(Complex{Re: 1}, Complex{Re: 2})
	if o.Re != 1 {
		t.Fatalf("CMean(1,2).Re = %d, want 1 (floor)", o.Re)
	}
	n := CMean(Complex{Re: -1}, Complex{Re: -2})
	if n.Re != -2 {
		t.Fatalf("CMean(-1,-2).Re = %d, want -2 (floor)", n.Re)
	}
}

func TestCDiffMeanExact(t *testing.T) {
	d := CDiffMean(Complex{Re: 30000, Im: 10}, Complex{Re: -30000, Im: 4})
	if d.Re != 30000 || d.Im != 3 {
		t.Fatalf("CDiffMean = %+v", d)
	}
}

func TestMulNegJ(t *testing.T) {
	// -j·(a+bj) = b - aj.
	c := MulNegJ(Complex{Re: 100, Im: 200})
	if c.Re != 200 || c.Im != -100 {
		t.Fatalf("MulNegJ = %+v", c)
	}
	// Saturating edge at Re = MinQ15.
	e := MulNegJ(Complex{Re: MinQ15, Im: 0})
	if e.Im != MaxQ15 {
		t.Fatalf("MulNegJ(min) = %+v", e)
	}
}

// Property: CMean and CDiffMean reconstruct their inputs:
// CMean + CDiffMean == a (within the floor-rounding LSB).
func TestQuickMeanDiffReconstruct(t *testing.T) {
	f := func(ar, ai, br, bi int16) bool {
		a := Complex{Q15(ar), Q15(ai)}
		b := Complex{Q15(br), Q15(bi)}
		m := CMean(a, b)
		d := CDiffMean(a, b)
		// m + d == a up to 1 LSB (two independent floors).
		reDiff := int(a.Re) - (int(m.Re) + int(d.Re))
		imDiff := int(a.Im) - (int(m.Im) + int(d.Im))
		return reDiff >= 0 && reDiff <= 1 && imDiff >= 0 && imDiff <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: CMul is commutative.
func TestQuickCMulCommutative(t *testing.T) {
	f := func(ar, ai, br, bi int16) bool {
		a := Complex{Q15(ar), Q15(ai)}
		b := Complex{Q15(br), Q15(bi)}
		return CMul(a, b) == CMul(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: conj(conj(x)) == x except at the saturating Im = MinQ15 edge.
func TestQuickConjInvolution(t *testing.T) {
	f := func(re, im int16) bool {
		if Q15(im) == MinQ15 {
			return true // saturation breaks the involution by design
		}
		c := Complex{Q15(re), Q15(im)}
		return Conj(Conj(c)) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: CMulConj(x, y) == Conj(CMulConj(y, x)) within one LSB per
// component (rounding of the two directions can differ by one).
func TestQuickCMulConjHermitian(t *testing.T) {
	f := func(ar, ai, br, bi int16) bool {
		a := Complex{Q15(ar), Q15(ai)}
		b := Complex{Q15(br), Q15(bi)}
		p := CMulConj(a, b)
		q := Conj(CMulConj(b, a))
		dr := int(p.Re) - int(q.Re)
		di := int(p.Im) - int(q.Im)
		return dr >= -1 && dr <= 1 && di >= -1 && di <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: |CMul(a,b)| <= |a|*|b| + rounding slack.
func TestQuickCMulMagnitudeBound(t *testing.T) {
	f := func(ar, ai, br, bi int16) bool {
		a := Complex{Q15(ar), Q15(ai)}
		b := Complex{Q15(br), Q15(bi)}
		p := CMul(a, b)
		return p.Abs() <= a.Abs()*b.Abs()+4.0/scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
