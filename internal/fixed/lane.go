package fixed

// SWAR (SIMD-within-a-register) lane arithmetic: four Q15 values packed
// into one uint64 word, processed with plain integer operations and no
// unsafe. Each lane operation is bit-identical to applying the scalar
// kernel of the same name to every lane independently — the differential
// fuzz targets in lane_fuzz_test.go enforce that contract over the full
// int16 range, including the saturation and rounding-tie edges.
//
// The lane kernels exist for throughput, not for different numerics: the
// Montium cycle model keeps charging the scalar Table-1 costs (see
// PAPER_MAPPING.md), and the scalar kernels remain selectable as the
// reference path through the Kernels seam in kernels.go.

// Lane packs four Q15 values into a single uint64. Lane index i occupies
// bits [16i, 16i+15], so lane 0 is the least-significant halfword.
type Lane uint64

// Replicated bit masks used by the SWAR formulas.
const (
	laneSign  Lane = 0x8000800080008000 // the sign bit of every lane
	laneLow15 Lane = 0x7fff7fff7fff7fff // the magnitude bits of every lane
	laneOnes  Lane = 0x0001000100010001 // +1 in every lane
)

// laneRep replicates a sub-2^16 pattern into all four lanes.
func laneRep(v uint64) Lane { return Lane(v * 0x0001000100010001) }

// PackLane packs four Q15 values into a Lane, a at lane 0 through d at
// lane 3.
func PackLane(a, b, c, d Q15) Lane {
	return Lane(uint16(a)) | Lane(uint16(b))<<16 | Lane(uint16(c))<<32 | Lane(uint16(d))<<48
}

// At returns lane i (0..3) as a Q15 value.
func (l Lane) At(i int) Q15 { return Q15(uint16(l >> (16 * uint(i)))) }

// Unpack splits the Lane back into its four Q15 values, lane 0 first.
func (l Lane) Unpack() (a, b, c, d Q15) {
	return l.At(0), l.At(1), l.At(2), l.At(3)
}

// laneWrapAdd adds a and b lane-wise with ordinary two's-complement
// wrapping in every lane (no saturation, no carry across lanes). The sign
// bits are added through XOR so a carry out of bit 14 never propagates
// into the neighbouring lane.
func laneWrapAdd(a, b Lane) Lane {
	return ((a & laneLow15) + (b & laneLow15)) ^ ((a ^ b) & laneSign)
}

// laneBlend selects sat in the lanes flagged by the sign-bit mask ovf and
// keeps v elsewhere. ovf must only have sign bits set.
func laneBlend(v, sat, ovf Lane) Lane {
	m := (ovf >> 15) * 0xffff // widen each flagged sign bit to a full-lane mask
	return (v &^ m) | (sat & m)
}

// laneSatTowards returns, per lane, the saturation value matching the
// sign of a: MaxQ15 where a is non-negative, MinQ15 where a is negative.
func laneSatTowards(a Lane) Lane {
	return laneLow15 + ((a >> 15) & laneOnes)
}

// LaneAdd returns the lane-wise saturating sum a+b. Each lane saturates
// independently to [MinQ15, MaxQ15], exactly like the scalar Add kernel.
func LaneAdd(a, b Lane) Lane {
	sum := laneWrapAdd(a, b)
	// A lane overflowed iff the operands agree in sign and the wrapped
	// sum disagrees with them.
	ovf := ^(a ^ b) & (a ^ sum) & laneSign
	if ovf == 0 {
		return sum
	}
	return laneBlend(sum, laneSatTowards(a), ovf)
}

// LaneSub returns the lane-wise saturating difference a-b. Each lane
// saturates independently to [MinQ15, MaxQ15], exactly like the scalar
// Sub kernel.
func LaneSub(a, b Lane) Lane {
	// Borrow-isolated subtraction: bias the minuend sign bits high so a
	// borrow out of bit 14 never crosses into the next lane, then patch
	// the sign bits back via XOR.
	diff := ((a | laneSign) - (b &^ laneSign)) ^ ((a ^ ^b) & laneSign)
	// A lane overflowed iff the operands disagree in sign and the result
	// disagrees with the minuend.
	ovf := (a ^ b) & (a ^ diff) & laneSign
	if ovf == 0 {
		return diff
	}
	return laneBlend(diff, laneSatTowards(a), ovf)
}

// laneASR arithmetically shifts every lane right by sh bits
// (1 <= sh <= 15), replicating each lane's sign bit into the vacated
// positions.
func laneASR(l Lane, sh uint) Lane {
	topMask := laneRep(((1 << sh) - 1) << (16 - sh))
	ext := (((l & laneSign) >> 15) * Lane((1<<sh)-1)) << (16 - sh)
	return ((l >> sh) &^ topMask) | ext
}

// LaneRShiftRound arithmetically shifts every lane right by sh bits with
// round-half-up (ties toward +infinity), bit-identical per lane to the
// scalar RShiftRound kernel. Like RShiftRound, the result cannot
// overflow for sh >= 1, so no saturation step is needed; sh = 0 returns
// l unchanged.
func LaneRShiftRound(l Lane, sh uint) Lane {
	if sh == 0 {
		return l
	}
	if sh > 15 {
		// Degenerate shifts collapse every lane to 0 or the rounded sign;
		// delegate to the scalar kernel lane by lane.
		a, b, c, d := l.Unpack()
		return PackLane(RShiftRound(a, sh), RShiftRound(b, sh), RShiftRound(c, sh), RShiftRound(d, sh))
	}
	// Exact identity in two's complement:
	//   (q + 2^(sh-1)) >> sh  ==  (q >> sh) + ((q >> (sh-1)) & 1)
	// i.e. round-half-up equals truncation plus the bit shifted past the
	// point. The carry add is wrapping (a lane holding 0x7fff plus 1 must
	// not bleed into its neighbour), which laneWrapAdd guarantees.
	carry := laneASR(l, sh-1) & laneOnes
	return laneWrapAdd(laneASR(l, sh), carry)
}

// CLane packs four Complex values lane-wise: lane i of Re and lane i of
// Im together form element i.
type CLane struct {
	// Re holds the four real parts.
	Re Lane
	// Im holds the four imaginary parts.
	Im Lane
}

// PackCLane packs src[0..3] into a CLane. src must hold at least four
// elements.
func PackCLane(src []Complex) CLane {
	_ = src[3]
	return CLane{
		Re: PackLane(src[0].Re, src[1].Re, src[2].Re, src[3].Re),
		Im: PackLane(src[0].Im, src[1].Im, src[2].Im, src[3].Im),
	}
}

// Unpack writes the four elements of c into dst[0..3]. dst must hold at
// least four elements.
func (c CLane) Unpack(dst []Complex) {
	_ = dst[3]
	dst[0] = Complex{Re: c.Re.At(0), Im: c.Im.At(0)}
	dst[1] = Complex{Re: c.Re.At(1), Im: c.Im.At(1)}
	dst[2] = Complex{Re: c.Re.At(2), Im: c.Im.At(2)}
	dst[3] = Complex{Re: c.Re.At(3), Im: c.Im.At(3)}
}

// At returns element i (0..3) of the packed vector.
func (c CLane) At(i int) Complex { return Complex{Re: c.Re.At(i), Im: c.Im.At(i)} }

// CLaneMul returns the lane-wise complex product a*b, each lane
// bit-identical to the scalar CMul kernel: partial products at Q30, one
// round-half-up and saturation per output component.
func CLaneMul(a, b CLane) CLane {
	var out CLane
	for i := 0; i < 4; i++ {
		ar, ai := int64(a.Re.At(i)), int64(a.Im.At(i))
		br, bi := int64(b.Re.At(i)), int64(b.Im.At(i))
		re := roundQ30(ar*br - ai*bi)
		im := roundQ30(ar*bi + ai*br)
		out.Re |= Lane(uint16(re)) << (16 * uint(i))
		out.Im |= Lane(uint16(im)) << (16 * uint(i))
	}
	return out
}

// CLaneBFly computes four radix-2 butterflies lane-wise with the
// per-stage 1/2 scaling, each lane bit-identical to the scalar BFly
// kernel (lo = (a+w*b)/2, hi = (a-w*b)/2, single rounding and saturation
// per component).
func CLaneBFly(a, b, w CLane) (lo, hi CLane) {
	for i := 0; i < 4; i++ {
		l, h := BFly(a.At(i), b.At(i), w.At(i))
		sh := 16 * uint(i)
		lo.Re |= Lane(uint16(l.Re)) << sh
		lo.Im |= Lane(uint16(l.Im)) << sh
		hi.Re |= Lane(uint16(h.Re)) << sh
		hi.Im |= Lane(uint16(h.Im)) << sh
	}
	return lo, hi
}

// CLaneBFlyNoScale computes four radix-2 butterflies lane-wise WITHOUT
// the per-stage 1/2 scaling, each lane bit-identical to the scalar
// BFlyNoScale kernel (lo = a+w*b, hi = a-w*b, saturating).
func CLaneBFlyNoScale(a, b, w CLane) (lo, hi CLane) {
	for i := 0; i < 4; i++ {
		l, h := BFlyNoScale(a.At(i), b.At(i), w.At(i))
		sh := 16 * uint(i)
		lo.Re |= Lane(uint16(l.Re)) << sh
		lo.Im |= Lane(uint16(l.Im)) << sh
		hi.Re |= Lane(uint16(h.Re)) << sh
		hi.Im |= Lane(uint16(h.Im)) << sh
	}
	return lo, hi
}

// CLaneRShiftRound applies LaneRShiftRound to both component vectors,
// the lane-wise form of the scalar CRShiftRound exponent-alignment
// kernel: round-half-up per lane, bit-identical to the scalar path
// (no overflow possible for sh >= 1).
func CLaneRShiftRound(c CLane, sh uint) CLane {
	return CLane{Re: LaneRShiftRound(c.Re, sh), Im: LaneRShiftRound(c.Im, sh)}
}
