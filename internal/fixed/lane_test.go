package fixed

import (
	"math/rand"
	"testing"
)

// edgeQ15 are the values where saturating and rounding arithmetic is
// most likely to diverge between implementations: the rails, the
// half-scale points, and the neighbourhood of zero.
var edgeQ15 = []Q15{
	MinQ15, MinQ15 + 1, -16385, -16384, -16383, -1, 0, 1,
	16383, 16384, 16385, MaxQ15 - 1, MaxQ15,
}

// randQ15 draws a Q15 biased toward the edge cases.
func randQ15(rng *rand.Rand) Q15 {
	if rng.Intn(4) == 0 {
		return edgeQ15[rng.Intn(len(edgeQ15))]
	}
	return Q15(rng.Intn(65536) - 32768)
}

// randLane fills all four lanes independently.
func randLane(rng *rand.Rand) Lane {
	return PackLane(randQ15(rng), randQ15(rng), randQ15(rng), randQ15(rng))
}

func TestPackLaneRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for it := 0; it < 1000; it++ {
		a, b, c, d := randQ15(rng), randQ15(rng), randQ15(rng), randQ15(rng)
		l := PackLane(a, b, c, d)
		ga, gb, gc, gd := l.Unpack()
		if ga != a || gb != b || gc != c || gd != d {
			t.Fatalf("round trip (%d,%d,%d,%d) -> (%d,%d,%d,%d)", a, b, c, d, ga, gb, gc, gd)
		}
	}
}

// TestLaneAddSubDifferential checks every lane of LaneAdd/LaneSub
// against the scalar saturating kernels, with independent random
// neighbours in the other lanes to catch cross-lane carry or borrow
// bleed.
func TestLaneAddSubDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	check := func(a, b Lane) {
		t.Helper()
		sum, diff := LaneAdd(a, b), LaneSub(a, b)
		for i := 0; i < 4; i++ {
			if want := Add(a.At(i), b.At(i)); sum.At(i) != want {
				t.Fatalf("LaneAdd lane %d: %d+%d = %d, want %d", i, a.At(i), b.At(i), sum.At(i), want)
			}
			if want := Sub(a.At(i), b.At(i)); diff.At(i) != want {
				t.Fatalf("LaneSub lane %d: %d-%d = %d, want %d", i, a.At(i), b.At(i), diff.At(i), want)
			}
		}
	}
	// Exhaustive over the edge grid in one lane position at a time.
	for _, x := range edgeQ15 {
		for _, y := range edgeQ15 {
			for pos := 0; pos < 4; pos++ {
				a, b := randLane(rng), randLane(rng)
				a = a&^(Lane(0xffff)<<(16*uint(pos))) | Lane(uint16(x))<<(16*uint(pos))
				b = b&^(Lane(0xffff)<<(16*uint(pos))) | Lane(uint16(y))<<(16*uint(pos))
				check(a, b)
			}
		}
	}
	for it := 0; it < 20000; it++ {
		check(randLane(rng), randLane(rng))
	}
}

// TestLaneRShiftRoundDifferential checks every lane and every shift
// amount (including the degenerate > 15 shifts) against the scalar
// RShiftRound, whose rounding ties go toward +infinity.
func TestLaneRShiftRoundDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for sh := uint(0); sh <= 17; sh++ {
		for it := 0; it < 4000; it++ {
			l := randLane(rng)
			got := LaneRShiftRound(l, sh)
			for i := 0; i < 4; i++ {
				if want := RShiftRound(l.At(i), sh); got.At(i) != want {
					t.Fatalf("sh=%d lane %d: RShiftRound(%d) = %d, want %d", sh, i, l.At(i), got.At(i), want)
				}
			}
		}
	}
}

// randCLane packs four random complex values.
func randCLane(rng *rand.Rand) CLane {
	return CLane{Re: randLane(rng), Im: randLane(rng)}
}

// TestCLaneKernelsDifferential checks CLaneMul, CLaneBFly,
// CLaneBFlyNoScale and CLaneRShiftRound lane-by-lane against the scalar
// complex kernels.
func TestCLaneKernelsDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for it := 0; it < 20000; it++ {
		a, b, w := randCLane(rng), randCLane(rng), randCLane(rng)
		mul := CLaneMul(a, b)
		lo, hi := CLaneBFly(a, b, w)
		lon, hin := CLaneBFlyNoScale(a, b, w)
		sh := uint(rng.Intn(16))
		shr := CLaneRShiftRound(a, sh)
		for i := 0; i < 4; i++ {
			ai, bi, wi := a.At(i), b.At(i), w.At(i)
			if want := CMul(ai, bi); mul.At(i) != want {
				t.Fatalf("CLaneMul lane %d: %v*%v = %v, want %v", i, ai, bi, mul.At(i), want)
			}
			wlo, whi := BFly(ai, bi, wi)
			if lo.At(i) != wlo || hi.At(i) != whi {
				t.Fatalf("CLaneBFly lane %d: got (%v,%v), want (%v,%v)", i, lo.At(i), hi.At(i), wlo, whi)
			}
			wlon, whin := BFlyNoScale(ai, bi, wi)
			if lon.At(i) != wlon || hin.At(i) != whin {
				t.Fatalf("CLaneBFlyNoScale lane %d: got (%v,%v), want (%v,%v)", i, lon.At(i), hin.At(i), wlon, whin)
			}
			if want := CRShiftRound(ai, sh); shr.At(i) != want {
				t.Fatalf("CLaneRShiftRound lane %d sh=%d: got %v, want %v", i, sh, shr.At(i), want)
			}
		}
	}
}

func TestPackCLaneRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src := make([]Complex, 4)
	dst := make([]Complex, 4)
	for it := 0; it < 1000; it++ {
		for i := range src {
			src[i] = Complex{Re: randQ15(rng), Im: randQ15(rng)}
		}
		c := PackCLane(src)
		c.Unpack(dst)
		for i := range src {
			if dst[i] != src[i] {
				t.Fatalf("PackCLane round trip element %d: %v != %v", i, dst[i], src[i])
			}
			if c.At(i) != src[i] {
				t.Fatalf("CLane.At(%d) = %v, want %v", i, c.At(i), src[i])
			}
		}
	}
}
