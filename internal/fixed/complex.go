package fixed

import "math/cmplx"

// Complex is a complex number with Q15 real and imaginary parts, the
// natural datum of the Montium complex ALU.
type Complex struct {
	// Re and Im are the Q15 real and imaginary components.
	Re, Im Q15
}

// CFromFloat converts a complex128 to Complex with rounding and saturation
// applied independently to the real and imaginary parts.
func CFromFloat(c complex128) Complex {
	return Complex{Re: FromFloat(real(c)), Im: FromFloat(imag(c))}
}

// Complex128 converts c to its exact complex128 value.
func (c Complex) Complex128() complex128 {
	return complex(c.Re.Float(), c.Im.Float())
}

// Abs returns |c| as a float64 (used by detectors and reports, not by the
// 16-bit datapath itself).
func (c Complex) Abs() float64 { return cmplx.Abs(c.Complex128()) }

// IsZero reports whether both parts are exactly zero.
func (c Complex) IsZero() bool { return c.Re == 0 && c.Im == 0 }

// Conj returns the complex conjugate with saturation on the imaginary part.
func Conj(c Complex) Complex { return Complex{Re: c.Re, Im: Neg(c.Im)} }

// CAdd returns a+b with per-component saturation.
func CAdd(a, b Complex) Complex {
	return Complex{Re: Add(a.Re, b.Re), Im: Add(a.Im, b.Im)}
}

// CSub returns a-b with per-component saturation.
func CSub(a, b Complex) Complex {
	return Complex{Re: Sub(a.Re, b.Re), Im: Sub(a.Im, b.Im)}
}

// CNeg returns -a with per-component saturation.
func CNeg(a Complex) Complex { return Complex{Re: Neg(a.Re), Im: Neg(a.Im)} }

// CMul returns the complex product a*b.
//
// The four partial products are computed at full Q30 precision and the
// cross sums are formed before a single rounding and saturation per
// component, which models a datapath with a wide multiplier array feeding
// one saturating output stage (one complex multiplication per clock cycle,
// as the Montium ALU provides).
func CMul(a, b Complex) Complex {
	re := int64(a.Re)*int64(b.Re) - int64(a.Im)*int64(b.Im) // Q30
	im := int64(a.Re)*int64(b.Im) + int64(a.Im)*int64(b.Re) // Q30
	return Complex{Re: roundQ30(re), Im: roundQ30(im)}
}

// CMulConj returns a*conj(b), the product form used by the DSCF
// (expression 3 of the paper): S_f^a accumulates X_{n,f+a}*conj(X_{n,f-a}).
// Like CMul, each component is rounded half-up from the exact Q30
// products and saturated to [MinQ15, MaxQ15].
func CMulConj(a, b Complex) Complex {
	re := int64(a.Re)*int64(b.Re) + int64(a.Im)*int64(b.Im) // Q30
	im := int64(a.Im)*int64(b.Re) - int64(a.Re)*int64(b.Im) // Q30
	return Complex{Re: roundQ30(re), Im: roundQ30(im)}
}

// CScale returns c * s for a real Q15 scale factor s, each component
// rounded half-up and saturated to [MinQ15, MaxQ15].
func CScale(c Complex, s Q15) Complex {
	return Complex{Re: Mul(c.Re, s), Im: Mul(c.Im, s)}
}

// CHalf returns c/2 (truncating arithmetic shift on both parts, no
// rounding and no saturation — halving cannot overflow), the per-stage
// FFT scaling step.
func CHalf(c Complex) Complex { return Complex{Re: Half(c.Re), Im: Half(c.Im)} }

// roundQ30 converts a Q30 intermediate to Q15 with round-half-up and
// saturation.
func roundQ30(v int64) Q15 {
	return SaturateInt((v + (1 << 14)) >> 15)
}

// CMean returns (a+b)/2 computed at full precision (no intermediate
// saturation; the result always fits). Used by the real-input FFT
// untangling stage, where e = (z1 + conj(z2))/2 must be exact.
func CMean(a, b Complex) Complex {
	return Complex{
		Re: Q15((int32(a.Re) + int32(b.Re)) >> 1),
		Im: Q15((int32(a.Im) + int32(b.Im)) >> 1),
	}
}

// CDiffMean returns (a-b)/2 at full precision: the difference is
// formed in 32-bit before halving, so it cannot overflow and needs no
// saturation.
func CDiffMean(a, b Complex) Complex {
	return Complex{
		Re: Q15((int32(a.Re) - int32(b.Re)) >> 1),
		Im: Q15((int32(a.Im) - int32(b.Im)) >> 1),
	}
}

// MulNegJ returns -j·c = (Im, -Re): a free rotation in hardware (wire
// swap plus negate). The negation saturates at the Re = MinQ15 edge.
func MulNegJ(c Complex) Complex {
	return Complex{Re: c.Im, Im: Neg(c.Re)}
}

// BFly computes one radix-2 decimation-in-time FFT butterfly with the
// per-stage 1/2 scaling used by the Montium FFT kernel:
//
//	lo = (a + w*b) / 2
//	hi = (a - w*b) / 2
//
// The twiddle product is formed at Q30, the sum/difference with a at Q30
// as well, then a single scale-round-saturate step produces the outputs.
// Scaling by 1/2 at every stage guarantees no overflow for any input and
// yields an overall FFT scaling of 1/N, i.e. the output is DFT(x)/N.
//
// This function is the single source of truth for fixed-point butterflies:
// internal/fft's fixed plan and internal/montium's FFT kernel both call it,
// so the two paths are bit-identical by construction.
func BFly(a, b, w Complex) (lo, hi Complex) {
	// w*b at Q30 without intermediate rounding.
	pre := int64(w.Re)*int64(b.Re) - int64(w.Im)*int64(b.Im)
	pim := int64(w.Re)*int64(b.Im) + int64(w.Im)*int64(b.Re)
	are := int64(a.Re) << 15 // a at Q30
	aim := int64(a.Im) << 15
	// (a ± w*b)/2, rounded once from Q30 to Q15 including the 1/2.
	lo = Complex{Re: roundQ30half(are + pre), Im: roundQ30half(aim + pim)}
	hi = Complex{Re: roundQ30half(are - pre), Im: roundQ30half(aim - pim)}
	return lo, hi
}

// roundQ30half converts a Q30 intermediate to Q15 while also dividing by
// two (shift by 16 instead of 15), with round-half-up and saturation.
func roundQ30half(v int64) Q15 {
	return SaturateInt((v + (1 << 15)) >> 16)
}

// BFlyNoScale computes one radix-2 decimation-in-time butterfly WITHOUT
// the per-stage 1/2 scaling of BFly:
//
//	lo = a + w*b
//	hi = a - w*b
//
// The twiddle product and the sum/difference are formed at Q30 and one
// round-saturate step produces each output component. It is the stage
// primitive of the block-floating-point FFT (fft.FixedPlan.ForwardScaled
// with fft.ScaleBFP), which pre-shifts the whole block only when its
// magnitude demands it and tracks the shifts in an exponent instead of
// unconditionally halving every stage.
func BFlyNoScale(a, b, w Complex) (lo, hi Complex) {
	pre := int64(w.Re)*int64(b.Re) - int64(w.Im)*int64(b.Im)
	pim := int64(w.Re)*int64(b.Im) + int64(w.Im)*int64(b.Re)
	are := int64(a.Re) << 15 // a at Q30
	aim := int64(a.Im) << 15
	lo = Complex{Re: roundQ30(are + pre), Im: roundQ30(aim + pim)}
	hi = Complex{Re: roundQ30(are - pre), Im: roundQ30(aim - pim)}
	return lo, hi
}

// RShiftRound returns q arithmetically shifted right by sh bits with
// round-half-up (ties toward +infinity), the deterministic renormalisation
// step of block-floating-point exponent alignment. sh = 0 returns q
// unchanged; the result cannot overflow for sh >= 1.
func RShiftRound(q Q15, sh uint) Q15 {
	if sh == 0 {
		return q
	}
	return saturate32((int32(q) + 1<<(sh-1)) >> sh)
}

// CRShiftRound applies RShiftRound to both components (round-half-up,
// no overflow possible for sh >= 1; sh == 0 is the identity).
func CRShiftRound(c Complex, sh uint) Complex {
	return Complex{Re: RShiftRound(c.Re, sh), Im: RShiftRound(c.Im, sh)}
}
