package fixed

import "testing"

// The fuzz targets below differentially test every SWAR lane kernel
// against its scalar reference over the full int16 range. The seed
// corpora under testdata/fuzz pin the historically dangerous inputs:
// the MinQ15*MinQ15 product (the only overflowing Q15 product), the
// saturating rails, and the round-half-up ties. CI runs each target
// for a short budget (see .github/workflows/ci.yml, fuzz-smoke job);
// `go test -fuzz FuzzName ./internal/fixed` explores further.

// splitmix64 expands a salt into deterministic filler lanes so each
// fuzz input also exercises arbitrary neighbour-lane contents.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// saltComplex derives a filler complex value from a salt stream.
func saltComplex(s *uint64) Complex {
	*s = splitmix64(*s)
	return Complex{Re: Q15(int16(*s)), Im: Q15(int16(*s >> 16))}
}

// laneProbe builds CLane operands that carry the fuzzed values in lane
// `pos` and salt-derived values elsewhere, returning the packed lanes.
func laneProbe(pos int, a, b, w Complex, salt uint64) (la, lb, lw CLane, used [3][4]Complex) {
	s := salt
	for i := 0; i < 4; i++ {
		ai, bi, wi := saltComplex(&s), saltComplex(&s), saltComplex(&s)
		if i == pos {
			ai, bi, wi = a, b, w
		}
		used[0][i], used[1][i], used[2][i] = ai, bi, wi
		sh := 16 * uint(i)
		la.Re |= Lane(uint16(ai.Re)) << sh
		la.Im |= Lane(uint16(ai.Im)) << sh
		lb.Re |= Lane(uint16(bi.Re)) << sh
		lb.Im |= Lane(uint16(bi.Im)) << sh
		lw.Re |= Lane(uint16(wi.Re)) << sh
		lw.Im |= Lane(uint16(wi.Im)) << sh
	}
	return la, lb, lw, used
}

func FuzzLaneAddSub(f *testing.F) {
	f.Add(int16(-32768), int16(-32768), int16(-32768), int16(-32768),
		int16(-32768), int16(-32768), int16(-32768), int16(-32768))
	f.Add(int16(32767), int16(1), int16(-32768), int16(-1),
		int16(16384), int16(16384), int16(-16384), int16(-16385))
	f.Add(int16(0), int16(0), int16(1), int16(-1),
		int16(32767), int16(-32768), int16(-32768), int16(32767))
	f.Fuzz(func(t *testing.T, a0, a1, a2, a3, b0, b1, b2, b3 int16) {
		a := PackLane(Q15(a0), Q15(a1), Q15(a2), Q15(a3))
		b := PackLane(Q15(b0), Q15(b1), Q15(b2), Q15(b3))
		sum, diff := LaneAdd(a, b), LaneSub(a, b)
		for i := 0; i < 4; i++ {
			if want := Add(a.At(i), b.At(i)); sum.At(i) != want {
				t.Fatalf("LaneAdd lane %d: %d+%d = %d, want %d", i, a.At(i), b.At(i), sum.At(i), want)
			}
			if want := Sub(a.At(i), b.At(i)); diff.At(i) != want {
				t.Fatalf("LaneSub lane %d: %d-%d = %d, want %d", i, a.At(i), b.At(i), diff.At(i), want)
			}
		}
	})
}

func FuzzLaneRShiftRound(f *testing.F) {
	f.Add(int16(-32768), int16(32767), int16(-1), int16(1), uint8(1))
	f.Add(int16(-32768), int16(-32768), int16(-32768), int16(-32768), uint8(15))
	f.Add(int16(3), int16(-3), int16(5), int16(-5), uint8(2)) // round-half ties
	f.Add(int16(0x7fff), int16(0x7ffe), int16(1), int16(2), uint8(16))
	f.Fuzz(func(t *testing.T, v0, v1, v2, v3 int16, shRaw uint8) {
		sh := uint(shRaw % 20)
		l := PackLane(Q15(v0), Q15(v1), Q15(v2), Q15(v3))
		got := LaneRShiftRound(l, sh)
		for i := 0; i < 4; i++ {
			if want := RShiftRound(l.At(i), sh); got.At(i) != want {
				t.Fatalf("sh=%d lane %d: RShiftRound(%d) = %d, want %d", sh, i, l.At(i), got.At(i), want)
			}
		}
	})
}

func FuzzCLaneMul(f *testing.F) {
	f.Add(int16(-32768), int16(-32768), int16(-32768), int16(-32768), uint8(0), uint64(0))
	f.Add(int16(-32768), int16(0), int16(-32768), int16(0), uint8(3), uint64(1))
	f.Add(int16(181), int16(181), int16(181), int16(-181), uint8(1), uint64(2)) // near the Q30 rounding tie
	f.Fuzz(func(t *testing.T, ar, ai, br, bi int16, posRaw uint8, salt uint64) {
		pos := int(posRaw % 4)
		a := Complex{Re: Q15(ar), Im: Q15(ai)}
		b := Complex{Re: Q15(br), Im: Q15(bi)}
		la, lb, _, used := laneProbe(pos, a, b, Complex{}, salt)
		got := CLaneMul(la, lb)
		for i := 0; i < 4; i++ {
			if want := CMul(used[0][i], used[1][i]); got.At(i) != want {
				t.Fatalf("lane %d: CLaneMul(%v,%v) = %v, want %v", i, used[0][i], used[1][i], got.At(i), want)
			}
		}
	})
}

func FuzzCLaneBFly(f *testing.F) {
	f.Add(int16(-32768), int16(-32768), int16(-32768), int16(-32768), int16(-32768), int16(-32768), uint8(0), uint64(0))
	f.Add(int16(32767), int16(32767), int16(32767), int16(32767), int16(32767), int16(0), uint8(2), uint64(7))
	f.Add(int16(1), int16(-1), int16(1), int16(-1), int16(23170), int16(-23170), uint8(1), uint64(3))
	f.Fuzz(func(t *testing.T, ar, ai, br, bi, wr, wi int16, posRaw uint8, salt uint64) {
		pos := int(posRaw % 4)
		a := Complex{Re: Q15(ar), Im: Q15(ai)}
		b := Complex{Re: Q15(br), Im: Q15(bi)}
		w := Complex{Re: Q15(wr), Im: Q15(wi)}
		la, lb, lw, used := laneProbe(pos, a, b, w, salt)
		lo, hi := CLaneBFly(la, lb, lw)
		lon, hin := CLaneBFlyNoScale(la, lb, lw)
		for i := 0; i < 4; i++ {
			wlo, whi := BFly(used[0][i], used[1][i], used[2][i])
			if lo.At(i) != wlo || hi.At(i) != whi {
				t.Fatalf("lane %d: CLaneBFly got (%v,%v), want (%v,%v)", i, lo.At(i), hi.At(i), wlo, whi)
			}
			wlon, whin := BFlyNoScale(used[0][i], used[1][i], used[2][i])
			if lon.At(i) != wlon || hin.At(i) != whin {
				t.Fatalf("lane %d: CLaneBFlyNoScale got (%v,%v), want (%v,%v)", i, lon.At(i), hin.At(i), wlon, whin)
			}
		}
	})
}

func FuzzCLaneRShiftRound(f *testing.F) {
	f.Add(int16(-32768), int16(32767), uint8(1), uint8(0), uint64(0))
	f.Add(int16(-1), int16(1), uint8(15), uint8(3), uint64(9))
	f.Fuzz(func(t *testing.T, re, im int16, shRaw, posRaw uint8, salt uint64) {
		sh := uint(shRaw % 18)
		pos := int(posRaw % 4)
		c := Complex{Re: Q15(re), Im: Q15(im)}
		la, _, _, used := laneProbe(pos, c, Complex{}, Complex{}, salt)
		got := CLaneRShiftRound(la, sh)
		for i := 0; i < 4; i++ {
			if want := CRShiftRound(used[0][i], sh); got.At(i) != want {
				t.Fatalf("lane %d sh=%d: got %v, want %v", i, sh, got.At(i), want)
			}
		}
	})
}

func FuzzSaturateInt(f *testing.F) {
	f.Add(int64(1) << 62)
	f.Add(int64(-1) << 62)
	f.Add(int64(32767))
	f.Add(int64(32768))
	f.Add(int64(-32768))
	f.Add(int64(-32769))
	f.Fuzz(func(t *testing.T, v int64) {
		got := SaturateInt(v)
		want := v
		if want > int64(MaxQ15) {
			want = int64(MaxQ15)
		}
		if want < int64(MinQ15) {
			want = int64(MinQ15)
		}
		if int64(got) != want {
			t.Fatalf("SaturateInt(%d) = %d, want %d", v, got, want)
		}
		if SaturateInt(int64(got)) != got {
			t.Fatalf("SaturateInt not idempotent at %d", v)
		}
	})
}

// FuzzKernelsSlices interprets raw bytes as a complex block and runs
// the slice-level Kernels methods (Stage under both scalings, AbsMax,
// ShiftRound, MulElems, DotConjQ30) through the scalar reference and
// the SWAR implementation, requiring bit-identical state after every
// step.
func FuzzKernelsSlices(f *testing.F) {
	f.Add([]byte{0x00, 0x80, 0x00, 0x80, 0x00, 0x80, 0x00, 0x80}, uint8(1), uint8(1))
	f.Add([]byte{0xff, 0x7f, 0xff, 0x7f, 0x01, 0x00, 0x00, 0x80, 0xff, 0x7f, 0xff, 0x7f, 0x01, 0x00, 0x00, 0x80}, uint8(2), uint8(3))
	f.Fuzz(func(t *testing.T, raw []byte, spanRaw, shRaw uint8) {
		// Decode pairs of little-endian int16 into complex values; keep
		// the block a power of two in [2, 64] so Stage spans divide it.
		n := 2
		for n*2 <= len(raw)/4 && n < 64 {
			n *= 2
		}
		if len(raw) < 4*n {
			return
		}
		v := make([]Complex, n)
		for i := range v {
			v[i] = Complex{
				Re: Q15(int16(uint16(raw[4*i]) | uint16(raw[4*i+1])<<8)),
				Im: Q15(int16(uint16(raw[4*i+2]) | uint16(raw[4*i+3])<<8)),
			}
		}
		span := 2 << (int(spanRaw) % (bitsLen(n) - 1))
		sh := uint(shRaw % 17)
		sk, vk := ScalarKernels{}, SWARKernels{}

		a := append([]Complex(nil), v...)
		b := append([]Complex(nil), v...)
		w := fuzzTwiddleTable(span / 2)
		for _, scale := range []bool{false, true} {
			ma := sk.Stage(a, w, span, scale)
			mb := vk.Stage(b, w, span, scale)
			if ma != mb {
				t.Fatalf("Stage span=%d scale=%v: max %d != %d", span, scale, ma, mb)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("Stage span=%d scale=%v element %d: %v != %v", span, scale, i, a[i], b[i])
				}
			}
		}
		if ma, mb := sk.AbsMax(a), vk.AbsMax(b); ma != mb {
			t.Fatalf("AbsMax %d != %d", ma, mb)
		}
		sk.ShiftRound(a, sh)
		vk.ShiftRound(b, sh)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("ShiftRound sh=%d element %d: %v != %v", sh, i, a[i], b[i])
			}
		}
		da := make([]Complex, n)
		db := make([]Complex, n)
		sk.MulElems(da, a, v)
		vk.MulElems(db, b, v)
		for i := range da {
			if da[i] != db[i] {
				t.Fatalf("MulElems element %d: %v != %v", i, da[i], db[i])
			}
		}
		aw, bw, vw := widenRow(a), widenRow(b), widenRow(v)
		re0, im0 := sk.DotConjQ30(aw, vw)
		re1, im1 := vk.DotConjQ30(bw, vw)
		if re0 != re1 || im0 != im1 {
			t.Fatalf("DotConjQ30 (%d,%d) != (%d,%d)", re0, im0, re1, im1)
		}
	})
}

// bitsLen returns the bit length of a positive int.
func bitsLen(n int) int {
	l := 0
	for ; n > 0; n >>= 1 {
		l++
	}
	return l
}

// fuzzTwiddleTable builds a deterministic twiddle-like table (unit-ish
// magnitudes plus rails) for the Stage fuzz target.
func fuzzTwiddleTable(half int) []Complex {
	w := make([]Complex, half)
	s := uint64(half)
	for i := range w {
		w[i] = saltComplex(&s)
	}
	if half > 0 {
		w[0] = Complex{Re: MaxQ15, Im: 0}
	}
	if half > 1 {
		w[1] = Complex{Re: MinQ15, Im: MinQ15}
	}
	return w
}
