package fixed

import "testing"

// TestShiftRoundNeverDropsBitsSilently is the scaling-shift property the
// block-floating-point exponent bookkeeping relies on: for every 16-bit
// value and every shift, both kernel implementations produce exactly the
// round-half-up reference, and the reconstruction out·2^sh differs from
// the input by at most the half-ulp the rounding is allowed to discard.
// Any set bit a pre-shift drops is therefore accounted for by the
// exponent plus bounded rounding — never lost silently. The sweep is
// exhaustive over the value range.
func TestShiftRoundNeverDropsBitsSilently(t *testing.T) {
	// All 65536 values as Re, the bitwise complement as Im, so both
	// packed SWAR component positions see the full range.
	all := make([]Complex, 1<<16)
	for i := range all {
		v := Q15(int16(i - 1<<15))
		all[i] = Complex{Re: v, Im: ^v}
	}
	ref := func(v Q15, sh uint) Q15 {
		r := (int64(v) + 1<<(sh-1)) >> sh
		return SaturateInt(r)
	}
	for _, k := range []Kernels{ScalarKernels{}, SWARKernels{}} {
		for sh := uint(1); sh <= 16; sh++ {
			got := append([]Complex(nil), all...)
			k.ShiftRound(got, sh)
			for i, c := range got {
				for comp, pair := range [][2]Q15{{all[i].Re, c.Re}, {all[i].Im, c.Im}} {
					in, out := pair[0], pair[1]
					if want := ref(in, sh); out != want {
						t.Fatalf("%s: ShiftRound(%d, %d) [comp %d] = %d, want %d",
							k.Name(), in, sh, comp, out, want)
					}
					// Reconstruction: the only discarded information is
					// the rounding half-ulp at scale 2^sh.
					diff := int64(in) - int64(out)<<sh
					if diff < 0 {
						diff = -diff
					}
					if diff > 1<<(sh-1) {
						t.Fatalf("%s: ShiftRound(%d, %d) reconstructs to %d, error %d > %d",
							k.Name(), in, sh, int64(out)<<sh, diff, 1<<(sh-1))
					}
				}
			}
		}
	}
}
