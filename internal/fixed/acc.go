package fixed

// CAcc is a wide complex accumulator with guard bits. Partial products
// enter at Q30 and accumulate in int64, so up to 2^33 products can be
// summed without any possibility of overflow. It models an ALU-side
// accumulator register; the Montium application instead accumulates in
// 16-bit memory words (see CAccQ15 in this package and the discussion of
// dynamic range in section 4.1 of the paper), and the two policies are
// compared in the E7 experiments.
type CAcc struct {
	Re, Im int64 // Q30 accumulations
}

// AddProdConj accumulates x*conj(y) at full Q30 precision — exact
// int64 arithmetic, no rounding and no saturation until the caller
// narrows the sum.
func (a *CAcc) AddProdConj(x, y Complex) {
	a.Re += int64(x.Re)*int64(y.Re) + int64(x.Im)*int64(y.Im)
	a.Im += int64(x.Im)*int64(y.Re) - int64(x.Re)*int64(y.Im)
}

// AddProd accumulates x*y at full Q30 precision — exact int64
// arithmetic, no rounding and no saturation until the caller narrows
// the sum.
func (a *CAcc) AddProd(x, y Complex) {
	a.Re += int64(x.Re)*int64(y.Re) - int64(x.Im)*int64(y.Im)
	a.Im += int64(x.Re)*int64(y.Im) + int64(x.Im)*int64(y.Re)
}

// Complex returns the accumulator contents rounded to Q15 after an
// arithmetic right shift by sh additional bits (sh = 0 converts straight
// from Q30). The shift implements the 1/N normalisation of expression 3
// when N is a power of two.
func (a *CAcc) Complex(sh uint) Complex {
	return Complex{
		Re: SaturateInt((a.Re + (1 << (14 + sh))) >> (15 + sh)),
		Im: SaturateInt((a.Im + (1 << (14 + sh))) >> (15 + sh)),
	}
}

// Float returns the accumulator value as a complex128 scaled out of Q30.
func (a *CAcc) Float() complex128 {
	const q30 = 1 << 30
	return complex(float64(a.Re)/q30, float64(a.Im)/q30)
}

// CAccQ15 accumulates in saturating Q15, exactly as the Montium
// application does when it keeps running DSCF sums in the 16-bit memories
// M01..M08. Each step rounds the product to Q15 and saturates the running
// sum; this is the bit-true model against which the systolic and Montium
// simulations are verified.
type CAccQ15 struct {
	// V is the running saturating Q15 sum.
	V Complex
}

// MAC performs V += x*conj(y) in saturating Q15 arithmetic (one rounding
// of the product, one saturating add), matching a read-modify-write of a
// 16-bit memory accumulator through the complex ALU.
func (a *CAccQ15) MAC(x, y Complex) {
	a.V = CAdd(a.V, CMulConj(x, y))
}

// GuardBitsNeeded returns the number of extra integer bits required to
// accumulate n full-scale Q15 products without overflow: ceil(log2(n)).
// It quantifies the dynamic-range headroom discussion of section 4.1.
func GuardBitsNeeded(n int) int {
	if n <= 1 {
		return 0
	}
	bits := 0
	for v := n - 1; v > 0; v >>= 1 {
		bits++
	}
	return bits
}

// DynamicRangeDB returns the dynamic range, in decibel, of a signed
// fixed-point word with the given total bit width (6.02 dB per bit). The
// paper's section 4.1 invokes the 16-bit ≈ 96 dB rule.
func DynamicRangeDB(bits int) float64 {
	return 6.0205999132796239 * float64(bits)
}
