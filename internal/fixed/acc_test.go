package fixed

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func TestCAccMatchesFloatAccumulation(t *testing.T) {
	xs := []complex128{
		complex(0.5, 0.25), complex(-0.3, 0.7), complex(0.1, -0.9), complex(0.8, 0.1),
	}
	ys := []complex128{
		complex(0.2, -0.4), complex(0.6, 0.6), complex(-0.5, 0.5), complex(-0.1, -0.2),
	}
	var acc CAcc
	want := complex(0, 0)
	for i := range xs {
		acc.AddProdConj(CFromFloat(xs[i]), CFromFloat(ys[i]))
		want += xs[i] * cmplx.Conj(ys[i])
	}
	if cmplx.Abs(acc.Float()-want) > 1e-3 {
		t.Fatalf("CAcc = %v, want ~%v", acc.Float(), want)
	}
}

func TestCAccComplexShiftNormalises(t *testing.T) {
	// Accumulate 4 identical products, then shift by 2 == divide by 4.
	x := CFromFloat(complex(0.5, 0))
	var acc CAcc
	for i := 0; i < 4; i++ {
		acc.AddProdConj(x, x)
	}
	got := acc.Complex(2) // /4
	want := 0.25          // |0.5|^2
	if math.Abs(got.Re.Float()-want) > 2.0/scale || got.Im != 0 {
		t.Fatalf("normalised acc = %+v, want Re ~%v, Im 0", got, want)
	}
}

func TestCAccQ15Saturates(t *testing.T) {
	// Accumulating +~1.0 products must pin at MaxQ15, not wrap.
	big := Complex{Re: MaxQ15, Im: 0}
	var acc CAccQ15
	for i := 0; i < 5; i++ {
		acc.MAC(big, big) // += ~ +1.0
	}
	if acc.V.Re != MaxQ15 {
		t.Fatalf("saturating accumulator Re = %d, want %d", acc.V.Re, MaxQ15)
	}
	if acc.V.Im != 0 {
		t.Fatalf("saturating accumulator Im = %d, want 0", acc.V.Im)
	}
}

func TestGuardBitsNeeded(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {127, 7}, {128, 7}, {129, 8}, {4064, 12},
	}
	for _, c := range cases {
		if got := GuardBitsNeeded(c.n); got != c.want {
			t.Errorf("GuardBitsNeeded(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestDynamicRangeDB16(t *testing.T) {
	// 16 bits ~ 96.33 dB; the paper rounds to "dynamic ranges smaller than 96 dB".
	got := DynamicRangeDB(16)
	if got < 96 || got > 97 {
		t.Fatalf("DynamicRangeDB(16) = %v, want ~96.3", got)
	}
}

// Property: wide accumulation over k <= 64 terms equals the float sum
// within k LSB-scale slack.
func TestQuickCAccCloseToFloat(t *testing.T) {
	f := func(seeds []int16) bool {
		if len(seeds) == 0 {
			return true
		}
		if len(seeds) > 64 {
			seeds = seeds[:64]
		}
		var acc CAcc
		want := complex(0, 0)
		for i := 0; i+1 < len(seeds); i += 2 {
			x := Complex{Q15(seeds[i]), Q15(seeds[i+1])}
			y := Complex{Q15(seeds[i+1]), Q15(seeds[i])}
			acc.AddProdConj(x, y)
			want += x.Complex128() * cmplx.Conj(y.Complex128())
		}
		return cmplx.Abs(acc.Float()-want) < float64(len(seeds))*1e-4+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the Q15 accumulator never escapes the representable range.
func TestQuickCAccQ15Bounded(t *testing.T) {
	f := func(seeds []int16) bool {
		var acc CAccQ15
		for i := 0; i+3 < len(seeds); i += 4 {
			x := Complex{Q15(seeds[i]), Q15(seeds[i+1])}
			y := Complex{Q15(seeds[i+2]), Q15(seeds[i+3])}
			acc.MAC(x, y)
			if acc.V.Re > MaxQ15 || acc.V.Re < MinQ15 || acc.V.Im > MaxQ15 || acc.V.Im < MinQ15 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSliceHelpers(t *testing.T) {
	x := []complex128{complex(0.5, -0.25), complex(-0.125, 1.5)}
	fx := FromFloatSlice(x)
	if fx[0].Re != HalfQ15 || fx[1].Im != MaxQ15 {
		t.Fatalf("FromFloatSlice: %+v", fx)
	}
	back := ToFloatSlice(fx)
	if real(back[0]) != 0.5 {
		t.Fatalf("ToFloatSlice: %v", back)
	}
	if got := MaxAbsComponent(fx); got != int(MaxQ15) {
		t.Fatalf("MaxAbsComponent = %d", got)
	}
	if got := MaxAbsComponent(nil); got != 0 {
		t.Fatalf("MaxAbsComponent(nil) = %d", got)
	}
}

func TestScaleSliceFloat(t *testing.T) {
	x := []complex128{complex(2, 0), complex(0, -4)}
	s := ScaleSliceFloat(x, 0.5)
	if math.Abs(s-0.125) > 1e-12 {
		t.Fatalf("scale = %v, want 0.125", s)
	}
	if imag(x[1]) != -0.5 {
		t.Fatalf("scaled slice: %v", x)
	}
	// Zero slice: unchanged, scale 1.
	z := []complex128{0, 0}
	if s := ScaleSliceFloat(z, 0.5); s != 1 {
		t.Fatalf("zero-slice scale = %v", s)
	}
}
