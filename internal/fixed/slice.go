package fixed

// FromFloatSlice converts a float64 complex slice to Q15 complex values
// with rounding and saturation.
func FromFloatSlice(x []complex128) []Complex {
	out := make([]Complex, len(x))
	for i, v := range x {
		out[i] = CFromFloat(v)
	}
	return out
}

// ToFloatSlice converts a Q15 complex slice to complex128.
func ToFloatSlice(x []Complex) []complex128 {
	out := make([]complex128, len(x))
	for i, v := range x {
		out[i] = v.Complex128()
	}
	return out
}

// MaxAbsComponent returns the largest absolute value, in Q15 counts, of
// any real or imaginary component in x. It is the measurement used by
// block-scaling policies.
func MaxAbsComponent(x []Complex) int {
	m := 0
	for _, v := range x {
		if a := absInt(int(v.Re)); a > m {
			m = a
		}
		if a := absInt(int(v.Im)); a > m {
			m = a
		}
	}
	return m
}

// ScaleSliceFloat scales a float64 complex slice so that the largest
// component magnitude equals target (0 < target <= 1), returning the scale
// factor applied. A zero slice is returned unchanged with scale 1. Used to
// condition generator output before Q15 quantisation.
func ScaleSliceFloat(x []complex128, target float64) float64 {
	m := 0.0
	for _, v := range x {
		if a := absFloat(real(v)); a > m {
			m = a
		}
		if a := absFloat(imag(v)); a > m {
			m = a
		}
	}
	if m == 0 {
		return 1
	}
	s := target / m
	for i := range x {
		x[i] *= complex(s, 0)
	}
	return s
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func absFloat(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
