package fixed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFromFloatExactValues(t *testing.T) {
	cases := []struct {
		in   float64
		want Q15
	}{
		{0, 0},
		{0.5, HalfQ15},
		{-0.5, -16384},
		{1.0, MaxQ15},            // saturates: +1.0 is not representable
		{-1.0, MinQ15},           // exactly representable
		{2.0, MaxQ15},            // saturates high
		{-2.0, MinQ15},           // saturates low
		{1.0 / scale, 1},         // one LSB
		{-1.0 / scale, -1},       // minus one LSB
		{0.25, 8192},             // exact
		{0.75, 24576},            // exact
		{32766.4 / scale, 32766}, // rounds down
		{32766.6 / scale, 32767}, // rounds up
	}
	for _, c := range cases {
		if got := FromFloat(c.in); got != c.want {
			t.Errorf("FromFloat(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestFloatRoundTrip(t *testing.T) {
	for i := int(MinQ15); i <= int(MaxQ15); i += 37 {
		q := Q15(i)
		if got := FromFloat(q.Float()); got != q {
			t.Fatalf("round trip failed for %d: got %d", q, got)
		}
	}
	// And the extremes exactly.
	for _, q := range []Q15{MinQ15, MaxQ15, 0, 1, -1} {
		if got := FromFloat(q.Float()); got != q {
			t.Errorf("round trip failed for %d: got %d", q, got)
		}
	}
}

func TestAddSaturates(t *testing.T) {
	if got := Add(MaxQ15, 1); got != MaxQ15 {
		t.Errorf("Add(max,1) = %d, want saturation at %d", got, MaxQ15)
	}
	if got := Add(MinQ15, -1); got != MinQ15 {
		t.Errorf("Add(min,-1) = %d, want saturation at %d", got, MinQ15)
	}
	if got := Add(20000, 20000); got != MaxQ15 {
		t.Errorf("Add(20000,20000) = %d, want %d", got, MaxQ15)
	}
	if got := Add(-20000, -20000); got != MinQ15 {
		t.Errorf("Add(-20000,-20000) = %d, want %d", got, MinQ15)
	}
	if got := Add(1000, -2000); got != -1000 {
		t.Errorf("Add(1000,-2000) = %d, want -1000", got)
	}
}

func TestSubSaturates(t *testing.T) {
	if got := Sub(MaxQ15, MinQ15); got != MaxQ15 {
		t.Errorf("Sub(max,min) = %d, want %d", got, MaxQ15)
	}
	if got := Sub(MinQ15, MaxQ15); got != MinQ15 {
		t.Errorf("Sub(min,max) = %d, want %d", got, MinQ15)
	}
	if got := Sub(5, 3); got != 2 {
		t.Errorf("Sub(5,3) = %d, want 2", got)
	}
}

func TestNegAbsEdge(t *testing.T) {
	if got := Neg(MinQ15); got != MaxQ15 {
		t.Errorf("Neg(MinQ15) = %d, want %d (saturated)", got, MaxQ15)
	}
	if got := Abs(MinQ15); got != MaxQ15 {
		t.Errorf("Abs(MinQ15) = %d, want %d (saturated)", got, MaxQ15)
	}
	if got := Abs(-5); got != 5 {
		t.Errorf("Abs(-5) = %d, want 5", got)
	}
	if got := Abs(5); got != 5 {
		t.Errorf("Abs(5) = %d, want 5", got)
	}
}

func TestMulKnownProducts(t *testing.T) {
	cases := []struct {
		a, b, want Q15
	}{
		{HalfQ15, HalfQ15, 8192}, // 0.5*0.5 = 0.25
		{MinQ15, MinQ15, MaxQ15}, // -1*-1 saturates to +1
		{MinQ15, MaxQ15, -32767}, // -1*(1-eps): exactly -32767 LSB
		{MaxQ15, MaxQ15, 32766},  // (1-eps)^2
		{0, MaxQ15, 0},
		{OneQ15, 1234, 1234},          // *~1.0 keeps value (within rounding)
		{MinQ15, HalfQ15, MinQ15 / 2}, // -1 * 0.5 = -0.5
	}
	for _, c := range cases {
		if got := Mul(c.a, c.b); got != c.want {
			t.Errorf("Mul(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestMulMatchesFloatWithinLSB(t *testing.T) {
	vals := []Q15{MinQ15, -12345, -1, 0, 1, 777, HalfQ15, MaxQ15}
	for _, a := range vals {
		for _, b := range vals {
			got := Mul(a, b).Float()
			want := a.Float() * b.Float()
			if want > MaxQ15.Float() {
				want = MaxQ15.Float()
			}
			if math.Abs(got-want) > 1.0/scale {
				t.Errorf("Mul(%d,%d): got %v, float %v, |diff| > 1 LSB", a, b, got, want)
			}
		}
	}
}

func TestMulNoRoundTruncates(t *testing.T) {
	// 3/32768 * 16384/32768 = 1.5/32768: rounding gives 2, truncation gives 1.
	if got := Mul(3, HalfQ15); got != 2 {
		t.Errorf("Mul(3,half) = %d, want 2 (rounded)", got)
	}
	if got := MulNoRound(3, HalfQ15); got != 1 {
		t.Errorf("MulNoRound(3,half) = %d, want 1 (truncated)", got)
	}
}

func TestHalf(t *testing.T) {
	if got := Half(10); got != 5 {
		t.Errorf("Half(10) = %d, want 5", got)
	}
	// Arithmetic shift: floor division for negatives.
	if got := Half(-3); got != -2 {
		t.Errorf("Half(-3) = %d, want -2 (floor)", got)
	}
	if got := Half(MinQ15); got != -16384 {
		t.Errorf("Half(min) = %d, want -16384", got)
	}
}

func TestSaturateInt(t *testing.T) {
	if got := SaturateInt(1 << 40); got != MaxQ15 {
		t.Errorf("SaturateInt(huge) = %d, want %d", got, MaxQ15)
	}
	if got := SaturateInt(-(1 << 40)); got != MinQ15 {
		t.Errorf("SaturateInt(-huge) = %d, want %d", got, MinQ15)
	}
	if got := SaturateInt(-7); got != -7 {
		t.Errorf("SaturateInt(-7) = %d, want -7", got)
	}
}

// Property: Add never leaves the Q15 range and equals clamped integer sum.
func TestQuickAddIsClampedSum(t *testing.T) {
	f := func(a, b int16) bool {
		got := Add(Q15(a), Q15(b))
		want := SaturateInt(int64(a) + int64(b))
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Mul is commutative.
func TestQuickMulCommutative(t *testing.T) {
	f := func(a, b int16) bool {
		return Mul(Q15(a), Q15(b)) == Mul(Q15(b), Q15(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: multiplying by +0.5 then doubling via add returns within 1 LSB
// of the original for values that cannot saturate.
func TestQuickMulHalfDoubles(t *testing.T) {
	f := func(a int16) bool {
		q := Q15(a)
		h := Mul(q, HalfQ15)
		d := Add(h, h)
		diff := int(q) - int(d)
		return diff >= -2 && diff <= 2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: FromFloat is monotonic.
func TestQuickFromFloatMonotonic(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		// Confine to a sane range to keep the test meaningful.
		a = math.Mod(a, 4)
		b = math.Mod(b, 4)
		if a > b {
			a, b = b, a
		}
		return FromFloat(a) <= FromFloat(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
