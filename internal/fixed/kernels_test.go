package fixed

import (
	"math/rand"
	"testing"
)

// randComplexSlice fills a slice with edge-biased random values.
func randComplexSlice(rng *rand.Rand, n int) []Complex {
	v := make([]Complex, n)
	for i := range v {
		v[i] = Complex{Re: randQ15(rng), Im: randQ15(rng)}
	}
	return v
}

// TestUseRestoresPrevious covers the process-wide kernel selection.
func TestUseRestoresPrevious(t *testing.T) {
	orig := Active()
	prev := Use(ScalarKernels{})
	if prev.Name() != orig.Name() {
		t.Fatalf("Use returned %q, want previous %q", prev.Name(), orig.Name())
	}
	if Active().Name() != "scalar" {
		t.Fatalf("Active() = %q after Use(scalar)", Active().Name())
	}
	Use(prev)
	if Active().Name() != orig.Name() {
		t.Fatalf("Active() = %q after restore, want %q", Active().Name(), orig.Name())
	}
}

// TestKernelsDifferential drives every Kernels method with identical
// inputs through the scalar reference and the SWAR implementation and
// requires bit-identical results, across sizes, spans, shifts and
// stride patterns.
func TestKernelsDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	sk, vk := ScalarKernels{}, SWARKernels{}
	if sk.Name() == vk.Name() {
		t.Fatal("kernel names must differ")
	}
	for _, n := range []int{2, 4, 8, 16, 64, 256} {
		for it := 0; it < 50; it++ {
			base := randComplexSlice(rng, n)

			// Stage across every span dividing n, both scalings.
			for span := 2; span <= n; span <<= 1 {
				w := randComplexSlice(rng, span/2)
				for _, scale := range []bool{false, true} {
					a := append([]Complex(nil), base...)
					b := append([]Complex(nil), base...)
					ma := sk.Stage(a, w, span, scale)
					mb := vk.Stage(b, w, span, scale)
					if ma != mb {
						t.Fatalf("n=%d span=%d scale=%v: Stage max %d != %d", n, span, scale, ma, mb)
					}
					for i := range a {
						if a[i] != b[i] {
							t.Fatalf("n=%d span=%d scale=%v: Stage element %d: %v != %v", n, span, scale, i, a[i], b[i])
						}
					}
				}
			}

			if ma, mb := sk.AbsMax(base), vk.AbsMax(base); ma != mb {
				t.Fatalf("n=%d: AbsMax %d != %d", n, ma, mb)
			}

			for _, sh := range []uint{0, 1, 2, 5, 14, 15, 16} {
				a := append([]Complex(nil), base...)
				b := append([]Complex(nil), base...)
				sk.ShiftRound(a, sh)
				vk.ShiftRound(b, sh)
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("n=%d sh=%d: ShiftRound element %d: %v != %v", n, sh, i, a[i], b[i])
					}
				}
			}

			wq := make([]Q15, n)
			for i := range wq {
				wq[i] = randQ15(rng)
			}
			sa := make([]Complex, n)
			sb := make([]Complex, n)
			sk.ScaleReal(sa, base, wq)
			vk.ScaleReal(sb, base, wq)
			for i := range sa {
				if sa[i] != sb[i] {
					t.Fatalf("n=%d: ScaleReal element %d: %v != %v", n, i, sa[i], sb[i])
				}
			}

			other := randComplexSlice(rng, n)
			sk.MulElems(sa, base, other)
			vk.MulElems(sb, base, other)
			for i := range sa {
				if sa[i] != sb[i] {
					t.Fatalf("n=%d: MulElems element %d: %v != %v", n, i, sa[i], sb[i])
				}
			}

			roots := randComplexSlice(rng, 64)
			off, step := rng.Intn(1024), rng.Intn(1024)
			sk.MulRoots(sa, base, roots, off, step, 63)
			vk.MulRoots(sb, base, roots, off, step, 63)
			for i := range sa {
				if sa[i] != sb[i] {
					t.Fatalf("n=%d: MulRoots element %d: %v != %v", n, i, sa[i], sb[i])
				}
			}

			bw, ow := widenRow(base), widenRow(other)
			re0, im0 := sk.DotConjQ30(bw, ow)
			re1, im1 := vk.DotConjQ30(bw, ow)
			if re0 != re1 || im0 != im1 {
				t.Fatalf("n=%d: DotConjQ30 (%d,%d) != (%d,%d)", n, re0, im0, re1, im1)
			}
		}
	}
}

// TestKernelsOddLengths exercises the unrolled SWAR loops on lengths
// that leave remainders (the estimators only pass power-of-two slices
// to Stage, but scans, shifts and dots see arbitrary lengths).
func TestKernelsOddLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sk, vk := ScalarKernels{}, SWARKernels{}
	for _, n := range []int{1, 3, 5, 7, 9, 31, 33} {
		v := randComplexSlice(rng, n)
		o := randComplexSlice(rng, n)
		if ma, mb := sk.AbsMax(v), vk.AbsMax(v); ma != mb {
			t.Fatalf("n=%d: AbsMax %d != %d", n, ma, mb)
		}
		a := append([]Complex(nil), v...)
		b := append([]Complex(nil), v...)
		sk.ShiftRound(a, 3)
		vk.ShiftRound(b, 3)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("n=%d: ShiftRound element %d: %v != %v", n, i, a[i], b[i])
			}
		}
		re0, im0 := sk.DotConjQ30(widenRow(v), widenRow(o))
		re1, im1 := vk.DotConjQ30(widenRow(v), widenRow(o))
		if re0 != re1 || im0 != im1 {
			t.Fatalf("n=%d: DotConjQ30 (%d,%d) != (%d,%d)", n, re0, im0, re1, im1)
		}
	}
}

// widenRow is a test convenience wrapper over WidenRow.
func widenRow(v []Complex) []float64 {
	out := make([]float64, 2*len(v))
	WidenRow(out, v)
	return out
}

// TestDotConjQ30ChunkSpill crosses the SWAR floating-accumulation chunk
// boundary with worst-case rail products, so the int64 spill path is
// exercised at the magnitudes the exactness argument is tightest for.
func TestDotConjQ30ChunkSpill(t *testing.T) {
	terms := dotChunk/2 + 1000
	x := make([]Complex, terms)
	y := make([]Complex, terms)
	for i := range x {
		x[i] = Complex{Re: MinQ15, Im: MinQ15}
		y[i] = Complex{Re: MinQ15, Im: MaxQ15}
	}
	xw, yw := widenRow(x), widenRow(y)
	re0, im0 := ScalarKernels{}.DotConjQ30(xw, yw)
	re1, im1 := SWARKernels{}.DotConjQ30(xw, yw)
	if re0 != re1 || im0 != im1 {
		t.Fatalf("chunked DotConjQ30 (%d,%d) != reference (%d,%d)", re1, im1, re0, im0)
	}
}

// TestAbsMaxExactAtRail pins the scan edge a 16-bit abs would get
// wrong: |MinQ15| must report 32768, not wrap to 0.
func TestAbsMaxExactAtRail(t *testing.T) {
	v := []Complex{{Re: MinQ15, Im: 0}}
	for _, k := range []Kernels{ScalarKernels{}, SWARKernels{}} {
		if got := k.AbsMax(v); got != 32768 {
			t.Fatalf("%s: AbsMax(MinQ15) = %d, want 32768", k.Name(), got)
		}
	}
}
