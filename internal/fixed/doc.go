// Package fixed implements the 16-bit saturating fixed-point arithmetic of
// the Montium datapath.
//
// The Montium is a word-level reconfigurable core with a 16-bit datapath
// (Heysters, 2004). All signal values in this reproduction are represented
// in Q15 format: a signed 16-bit integer whose value is interpreted as
// i/2^15, covering the range [-1.0, +1.0). Arithmetic saturates instead of
// wrapping, which is what DSP datapaths of this class do, and what the
// dynamic-range argument of the paper's section 4.1 (96 dB in 16-bit
// memories) relies on.
//
// The package provides:
//
//   - scalar Q15 values with saturating add/sub/mul and rounding conversion,
//   - complex Q15 values (Complex) with the complex multiply and
//     multiply-by-conjugate used by the Discrete Spectral Correlation
//     Function (DSCF),
//   - the radix-2 FFT butterfly with the per-stage 1/2 scaling used by the
//     Montium FFT kernel (BFly), shared between internal/fft and
//     internal/montium so that all fixed-point paths are bit-identical,
//   - a wide complex accumulator (CAcc) with guard bits, used to analyse
//     accumulation headroom against the 16-bit in-memory accumulation the
//     paper uses.
//
// All operations are pure functions of their inputs; there is no global
// rounding state. The rounding used in multiplications is round-half-up on
// the Q30 intermediate product, matching the common DSP convention.
package fixed
