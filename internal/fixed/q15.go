package fixed

// Q15 is a signed 16-bit fixed-point number with 15 fractional bits.
// The represented value is int16(q) / 32768, i.e. the range [-1, 1-2^-15].
type Q15 int16

// Extremes and useful constants of the Q15 range.
const (
	// MaxQ15 is the largest representable value, 1 - 2^-15.
	MaxQ15 Q15 = 32767
	// MinQ15 is the smallest representable value, -1.
	MinQ15 Q15 = -32768
	// OneQ15 is the closest representation of +1.0 (saturated).
	OneQ15 = MaxQ15
	// HalfQ15 is exactly 0.5.
	HalfQ15 Q15 = 16384
	// scale is the Q15 scaling factor 2^15.
	scale = 1 << 15
)

// FromFloat converts f to Q15 with round-to-nearest and saturation.
// Values outside [-1, 1-2^-15] saturate to the nearest representable value.
func FromFloat(f float64) Q15 {
	v := f * scale
	// Round half away from zero, as DSP converters conventionally do.
	if v >= 0 {
		v += 0.5
	} else {
		v -= 0.5
	}
	i := int64(v)
	return saturate32(int32(clampInt64(i, -1<<31, 1<<31-1)))
}

// Float converts q to its exact float64 value.
func (q Q15) Float() float64 { return float64(q) / scale }

// Add returns a+b with saturation.
func Add(a, b Q15) Q15 { return saturate32(int32(a) + int32(b)) }

// Sub returns a-b with saturation.
func Sub(a, b Q15) Q15 { return saturate32(int32(a) - int32(b)) }

// Neg returns -a with saturation (Neg(MinQ15) == MaxQ15).
func Neg(a Q15) Q15 { return saturate32(-int32(a)) }

// Abs returns |a| with saturation (Abs(MinQ15) == MaxQ15).
func Abs(a Q15) Q15 {
	if a < 0 {
		return Neg(a)
	}
	return a
}

// Mul returns the Q15 product a*b, rounded half-up at bit 14 and saturated.
// The only product that can overflow is MinQ15*MinQ15 (== +1.0), which
// saturates to MaxQ15.
func Mul(a, b Q15) Q15 {
	p := int32(a) * int32(b) // Q30, fits in 31 bits
	return saturate32((p + (1 << 14)) >> 15)
}

// MulNoRound returns the Q15 product a*b truncated (floor) at bit 15
// and saturated to [MinQ15, MaxQ15]. It models datapaths without a
// rounding adder; kept for ablation studies.
func MulNoRound(a, b Q15) Q15 {
	p := int32(a) * int32(b)
	return saturate32(p >> 15)
}

// Half returns a/2 rounded toward negative infinity (arithmetic shift,
// no saturation — halving cannot overflow), the scaling step applied
// per FFT stage by the Montium FFT kernel.
func Half(a Q15) Q15 { return a >> 1 }

// saturate32 clamps a 32-bit intermediate result into the Q15 range.
func saturate32(v int32) Q15 {
	if v > int32(MaxQ15) {
		return MaxQ15
	}
	if v < int32(MinQ15) {
		return MinQ15
	}
	return Q15(v)
}

// clampInt64 clamps v into [lo, hi].
func clampInt64(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// SaturateInt returns v clamped into the Q15 integer range. It is the
// saturation function applied by memory write-back paths.
func SaturateInt(v int64) Q15 {
	return Q15(clampInt64(v, int64(MinQ15), int64(MaxQ15)))
}
