package fixed

import "sync/atomic"

// Kernels is the pluggable implementation seam for the hot Q15 vector
// kernels of the fixed-point datapath: FFT butterfly stages, block
// scans, exponent-alignment shifts, element-wise complex products and
// the wide conjugate dot product of the DSCF second stage.
//
// Every implementation MUST be bit-identical, element for element, to
// the scalar reference kernels built from Add/Sub/CMul/BFly/
// BFlyNoScale/CRShiftRound — same rounding (half-up), same saturation
// to [MinQ15, MaxQ15], same tie behaviour. The differential fuzz
// targets in this package and the FFT/estimator bit-exactness tests
// enforce that contract; implementations are free to reorder work only
// where the arithmetic is exact (integer accumulation, scans).
type Kernels interface {
	// Name identifies the implementation ("scalar", "swar") in stats
	// and benchmark reports.
	Name() string
	// Stage runs one radix-2 DIT FFT stage of the given span in place
	// over dst, using the stage twiddle table w (len(w) == span/2).
	// scale selects the BFly per-stage 1/2 scaling; scale == false uses
	// BFlyNoScale. Both saturate each output component independently.
	// It returns the exact peak |component| of dst after the stage as
	// an int32 (so |MinQ15| is representable), which the BFP driver
	// uses as the next stage's overflow scan.
	Stage(dst, w []Complex, span int, scale bool) int32
	// AbsMax returns the exact peak |component| over v as an int32.
	AbsMax(v []Complex) int32
	// ShiftRound applies CRShiftRound(v[i], sh) in place to every
	// element: arithmetic right shift with round-half-up, no overflow
	// possible for sh >= 1.
	ShiftRound(v []Complex, sh uint)
	// ScaleReal sets dst[i] = CScale(src[i], w[i]): per-component Q15
	// multiply, rounded half-up and saturated.
	ScaleReal(dst, src []Complex, w []Q15)
	// MulElems sets dst[i] = CMul(a[i], b[i]): full Q30 partial
	// products, one round-half-up and saturation per component.
	MulElems(dst, a, b []Complex)
	// MulRoots sets dst[i] = CMul(src[i], roots[(off+i*step) & mask]),
	// the strided root-of-unity rotation used by channelizer
	// downconversion and strip derotation, with CMul's round-half-up
	// and per-component saturation. len(roots) must be mask+1 (a power
	// of two).
	MulRoots(dst, src, roots []Complex, off, step, mask int)
	// DotConjQ30 returns sum_i x_i*conj(y_i) accumulated at Q30 in int64
	// (exact — no rounding or saturation), where x and y hold WidenRow
	// layouts: x[2i] and x[2i+1] are the integer-valued Q15 re/im
	// components of element i as float64. The widened operands let an
	// implementation pick integer or floating accumulation — every Q15
	// product is exact in float64 and bounded partial sums stay integral
	// below 2^53 — without changing the required bit-exact int64 result.
	// Entries of y beyond len(x) are ignored; len(y) must be >= len(x).
	DotConjQ30(x, y []float64) (re, im int64)
}

// WidenRow widens a Q15 complex row into the interleaved float64 layout
// DotConjQ30 consumes: dst[2i] = re_i, dst[2i+1] = im_i. The conversion
// is exact — every Q15 value is a small integer, exactly representable
// in float64. len(dst) must be at least 2*len(src).
func WidenRow(dst []float64, src []Complex) {
	for i, c := range src {
		dst[2*i] = float64(c.Re)
		dst[2*i+1] = float64(c.Im)
	}
}

// active holds the process-wide kernel selection (a kernelsHolder).
var active atomic.Value

// kernelsHolder wraps a Kernels so differing concrete types can be
// stored in one atomic.Value.
type kernelsHolder struct{ k Kernels }

func init() { active.Store(kernelsHolder{k: SWARKernels{}}) }

// Active returns the process-wide kernel implementation used by the
// fixed-point estimators and FFT plans. The default is SWARKernels.
func Active() Kernels { return active.Load().(kernelsHolder).k }

// Use installs k as the process-wide kernel implementation and returns
// the previous one, so callers (tests, benchmarks) can restore it:
//
//	defer fixed.Use(fixed.Use(fixed.ScalarKernels{}))
func Use(k Kernels) Kernels {
	prev := Active()
	active.Store(kernelsHolder{k: k})
	return prev
}

// ScalarKernels is the reference Kernels implementation: plain loops
// over the scalar saturating kernels (BFly, BFlyNoScale, CMul, CScale,
// CRShiftRound, CAcc.AddProdConj), in exactly the order the estimators
// used before the SWAR path existed. It is the oracle the differential
// fuzz targets and bit-exactness tests compare against.
type ScalarKernels struct{}

// Name identifies the reference implementation.
func (ScalarKernels) Name() string { return "scalar" }

// Stage implements Kernels.Stage with per-butterfly BFly/BFlyNoScale
// calls followed by a separate full-block scan.
func (ScalarKernels) Stage(dst, w []Complex, span int, scale bool) int32 {
	half := span / 2
	for base := 0; base+span <= len(dst); base += span {
		lo := dst[base : base+half]
		hi := dst[base+half : base+span]
		if scale {
			for i := range lo {
				lo[i], hi[i] = BFly(lo[i], hi[i], w[i])
			}
		} else {
			for i := range lo {
				lo[i], hi[i] = BFlyNoScale(lo[i], hi[i], w[i])
			}
		}
	}
	return absMaxRef(dst)
}

// AbsMax implements Kernels.AbsMax with a plain scan.
func (ScalarKernels) AbsMax(v []Complex) int32 { return absMaxRef(v) }

// ShiftRound implements Kernels.ShiftRound with per-element
// CRShiftRound calls.
func (ScalarKernels) ShiftRound(v []Complex, sh uint) {
	for i := range v {
		v[i] = CRShiftRound(v[i], sh)
	}
}

// ScaleReal implements Kernels.ScaleReal with per-element CScale calls.
func (ScalarKernels) ScaleReal(dst, src []Complex, w []Q15) {
	for i := range dst {
		dst[i] = CScale(src[i], w[i])
	}
}

// MulElems implements Kernels.MulElems with per-element CMul calls.
func (ScalarKernels) MulElems(dst, a, b []Complex) {
	for i := range dst {
		dst[i] = CMul(a[i], b[i])
	}
}

// MulRoots implements Kernels.MulRoots with per-element CMul calls and
// a masked index walk.
func (ScalarKernels) MulRoots(dst, src, roots []Complex, off, step, mask int) {
	idx := off & mask
	for i := range dst {
		dst[i] = CMul(src[i], roots[idx])
		idx = (idx + step) & mask
	}
}

// DotConjQ30 implements Kernels.DotConjQ30 by narrowing the widened
// operands back to Q15 (exact — they are integer-valued by contract)
// and accumulating with the reference CAcc integer arithmetic.
func (ScalarKernels) DotConjQ30(x, y []float64) (re, im int64) {
	var acc CAcc
	for i := 0; i+1 < len(x); i += 2 {
		acc.AddProdConj(
			Complex{Re: Q15(x[i]), Im: Q15(x[i+1])},
			Complex{Re: Q15(y[i]), Im: Q15(y[i+1])},
		)
	}
	return acc.Re, acc.Im
}

// absMaxRef is the shared exact peak-magnitude scan. Magnitudes are
// taken in int32 so |MinQ15| == 32768 is exact (a 16-bit abs would wrap
// it to 0 and silently under-report the peak).
func absMaxRef(v []Complex) int32 {
	var mx int32
	for i := range v {
		mx = absMax2(mx, int32(v[i].Re))
		mx = absMax2(mx, int32(v[i].Im))
	}
	return mx
}

// absMax2 returns max(mx, |v|) branchlessly on the abs.
func absMax2(mx, v int32) int32 {
	m := v >> 31
	v = (v ^ m) - m
	if v > mx {
		return v
	}
	return mx
}

// satShift rounds a widened intermediate to Q15 range: (v + bias) >> sh
// followed by saturation to [MinQ15, MaxQ15]. With bias = 1<<14 and
// sh = 15 it is roundQ30; with bias = 1<<15 and sh = 16 it is
// roundQ30half.
func satShift(v, bias int64, sh uint) int32 {
	v = (v + bias) >> sh
	if v > int64(MaxQ15) {
		v = int64(MaxQ15)
	} else if v < int64(MinQ15) {
		v = int64(MinQ15)
	}
	return int32(v)
}

// SWARKernels is the vectorized Kernels implementation: four butterflies
// per loop iteration with the rounding arithmetic fully inlined, packed
// uint64-lane shifts for exponent alignment (LaneRShiftRound), and
// unrolled wide accumulation for the DSCF dot products. Every output is
// bit-identical to ScalarKernels; only the schedule differs.
type SWARKernels struct{}

// Name identifies the vectorized implementation.
func (SWARKernels) Name() string { return "swar" }

// Stage implements Kernels.Stage. The butterfly arithmetic is the BFly/
// BFlyNoScale sequence (Q30 twiddle products, one round-saturate per
// component) inlined and unrolled four butterflies per iteration, with
// the post-stage peak scan fused into the write-back so the BFP driver
// needs no separate AbsMax pass per stage. The twiddle product uses the
// three-multiply (Karatsuba) form — exact in int64, so the pre-rounding
// Q30 intermediates are the same integers the four-multiply reference
// produces.
func (SWARKernels) Stage(dst, w []Complex, span int, scale bool) int32 {
	bias, sh := int64(1)<<14, uint(15)
	if scale {
		bias, sh = int64(1)<<15, uint(16)
	}
	var mx int32
	switch span {
	case 2:
		w0 := w[0]
		wr := int64(w0.Re)
		ws := int64(w0.Im) + wr
		wd := int64(w0.Im) - wr
		j := 0
		for ; j+7 < len(dst); j += 8 {
			blk := dst[j : j+8 : j+8]
			for q := 0; q < 8; q += 2 {
				a, b := blk[q], blk[q+1]
				br, bi := int64(b.Re), int64(b.Im)
				k1 := wr * (br + bi)
				pre := k1 - bi*ws
				pim := k1 + br*wd
				are := int64(a.Re) << 15
				aim := int64(a.Im) << 15
				lr := satShift(are+pre, bias, sh)
				li := satShift(aim+pim, bias, sh)
				hr := satShift(are-pre, bias, sh)
				hm := satShift(aim-pim, bias, sh)
				blk[q] = Complex{Re: Q15(lr), Im: Q15(li)}
				blk[q+1] = Complex{Re: Q15(hr), Im: Q15(hm)}
				mx = absMax2(absMax2(absMax2(absMax2(mx, lr), li), hr), hm)
			}
		}
		for ; j+1 < len(dst); j += 2 {
			a, b := dst[j], dst[j+1]
			br, bi := int64(b.Re), int64(b.Im)
			k1 := wr * (br + bi)
			pre := k1 - bi*ws
			pim := k1 + br*wd
			are := int64(a.Re) << 15
			aim := int64(a.Im) << 15
			lr := satShift(are+pre, bias, sh)
			li := satShift(aim+pim, bias, sh)
			hr := satShift(are-pre, bias, sh)
			hm := satShift(aim-pim, bias, sh)
			dst[j] = Complex{Re: Q15(lr), Im: Q15(li)}
			dst[j+1] = Complex{Re: Q15(hr), Im: Q15(hm)}
			mx = absMax2(absMax2(absMax2(absMax2(mx, lr), li), hr), hm)
		}
	case 4:
		w0, w1 := w[0], w[1]
		for base := 0; base+3 < len(dst); base += 4 {
			blk := dst[base : base+4 : base+4]
			for q := 0; q < 2; q++ {
				tw := w0
				if q == 1 {
					tw = w1
				}
				wr := int64(tw.Re)
				a, b := blk[q], blk[q+2]
				br, bi := int64(b.Re), int64(b.Im)
				k1 := wr * (br + bi)
				pre := k1 - bi*(int64(tw.Im)+wr)
				pim := k1 + br*(int64(tw.Im)-wr)
				are := int64(a.Re) << 15
				aim := int64(a.Im) << 15
				lr := satShift(are+pre, bias, sh)
				li := satShift(aim+pim, bias, sh)
				hr := satShift(are-pre, bias, sh)
				hm := satShift(aim-pim, bias, sh)
				blk[q] = Complex{Re: Q15(lr), Im: Q15(li)}
				blk[q+2] = Complex{Re: Q15(hr), Im: Q15(hm)}
				mx = absMax2(absMax2(absMax2(absMax2(mx, lr), li), hr), hm)
			}
		}
	default:
		half := span / 2
		for base := 0; base+span <= len(dst); base += span {
			lo := dst[base : base+half : base+half]
			hi := dst[base+half : base+span : base+span]
			tw := w[:half:half]
			// half is a power of two >= 4, so the 4-wide unroll has no
			// remainder.
			for i := 0; i+3 < half; i += 4 {
				for q := i; q < i+4; q++ {
					wq := tw[q]
					wr := int64(wq.Re)
					a, b := lo[q], hi[q]
					br, bi := int64(b.Re), int64(b.Im)
					k1 := wr * (br + bi)
					pre := k1 - bi*(int64(wq.Im)+wr)
					pim := k1 + br*(int64(wq.Im)-wr)
					are := int64(a.Re) << 15
					aim := int64(a.Im) << 15
					lr := satShift(are+pre, bias, sh)
					li := satShift(aim+pim, bias, sh)
					hr := satShift(are-pre, bias, sh)
					hm := satShift(aim-pim, bias, sh)
					lo[q] = Complex{Re: Q15(lr), Im: Q15(li)}
					hi[q] = Complex{Re: Q15(hr), Im: Q15(hm)}
					mx = absMax2(absMax2(absMax2(absMax2(mx, lr), li), hr), hm)
				}
			}
		}
	}
	return mx
}

// AbsMax implements Kernels.AbsMax with a two-wide unrolled branchless
// scan; the result is the same exact maximum the reference scan finds.
func (SWARKernels) AbsMax(v []Complex) int32 {
	var mx0, mx1 int32
	i := 0
	for ; i+1 < len(v); i += 2 {
		a, b := v[i], v[i+1]
		mx0 = absMax2(absMax2(mx0, int32(a.Re)), int32(a.Im))
		mx1 = absMax2(absMax2(mx1, int32(b.Re)), int32(b.Im))
	}
	if i < len(v) {
		mx0 = absMax2(absMax2(mx0, int32(v[i].Re)), int32(v[i].Im))
	}
	if mx1 > mx0 {
		return mx1
	}
	return mx0
}

// ShiftRound implements Kernels.ShiftRound by packing two complex
// elements (four Q15 components) per uint64 lane word and applying the
// LaneRShiftRound round-half-up identity with the shift-dependent masks
// hoisted out of the loop.
func (SWARKernels) ShiftRound(v []Complex, sh uint) {
	if sh == 0 {
		return
	}
	if sh > 15 {
		for i := range v {
			v[i] = CRShiftRound(v[i], sh)
		}
		return
	}
	mult := Lane((1 << sh) - 1)
	top := laneRep(uint64(mult) << (16 - sh))
	i := 0
	for ; i+1 < len(v); i += 2 {
		l := Lane(uint16(v[i].Re)) | Lane(uint16(v[i].Im))<<16 |
			Lane(uint16(v[i+1].Re))<<32 | Lane(uint16(v[i+1].Im))<<48
		// Arithmetic shift per lane with hoisted masks, then the exact
		// round-half-up identity: (q+2^(sh-1))>>sh == (q>>sh) + bit
		// sh-1 of q. The carry add wraps within lanes (laneWrapAdd).
		asr := ((l >> sh) &^ top) | ((((l & laneSign) >> 15) * mult) << (16 - sh))
		carry := (l >> (sh - 1)) & laneOnes
		r := ((asr & laneLow15) + carry) ^ (asr & laneSign)
		v[i] = Complex{Re: Q15(uint16(r)), Im: Q15(uint16(r >> 16))}
		v[i+1] = Complex{Re: Q15(uint16(r >> 32)), Im: Q15(uint16(r >> 48))}
	}
	if i < len(v) {
		v[i] = CRShiftRound(v[i], sh)
	}
}

// ScaleReal implements Kernels.ScaleReal with the Q15 multiply inlined
// (int32 product, round-half-up at bit 14, saturate).
func (SWARKernels) ScaleReal(dst, src []Complex, w []Q15) {
	n := len(dst)
	src = src[:n:n]
	w = w[:n:n]
	for i := 0; i < n; i++ {
		s := int64(w[i])
		dst[i] = Complex{
			Re: Q15(satShift(int64(src[i].Re)*s, 1<<14, 15)),
			Im: Q15(satShift(int64(src[i].Im)*s, 1<<14, 15)),
		}
	}
}

// MulElems implements Kernels.MulElems with the CMul arithmetic inlined
// (Q30 partial products, one round-saturate per component).
func (SWARKernels) MulElems(dst, a, b []Complex) {
	n := len(dst)
	a = a[:n:n]
	b = b[:n:n]
	for i := 0; i < n; i++ {
		ar, ai := int64(a[i].Re), int64(a[i].Im)
		br, bi := int64(b[i].Re), int64(b[i].Im)
		k1 := br * (ar + ai)
		dst[i] = Complex{
			Re: Q15(satShift(k1-ai*(bi+br), 1<<14, 15)),
			Im: Q15(satShift(k1+ar*(bi-br), 1<<14, 15)),
		}
	}
}

// MulRoots implements Kernels.MulRoots with the CMul arithmetic inlined
// and the masked root-index walk kept in a register.
func (SWARKernels) MulRoots(dst, src, roots []Complex, off, step, mask int) {
	n := len(dst)
	src = src[:n:n]
	idx := off & mask
	for i := 0; i < n; i++ {
		r := roots[idx]
		idx = (idx + step) & mask
		ar, ai := int64(src[i].Re), int64(src[i].Im)
		br, bi := int64(r.Re), int64(r.Im)
		k1 := br * (ar + ai)
		dst[i] = Complex{
			Re: Q15(satShift(k1-ai*(bi+br), 1<<14, 15)),
			Im: Q15(satShift(k1+ar*(bi-br), 1<<14, 15)),
		}
	}
}

// dotChunk is the number of widened float64 entries the SWAR dot
// accumulates per floating chunk before spilling into int64. A chunk
// holds dotChunk/2 = 2^15 terms; each term contributes two products of
// magnitude <= 2^31 per component, so a partial sum stays below
// 2^15 · 2^31 = 2^46 — integral and far inside float64's 2^53 exact
// range, which is what keeps the floating accumulation bit-exact.
const dotChunk = 1 << 16

// DotConjQ30 implements Kernels.DotConjQ30 with float64 multiply-add
// pipelines on the pre-widened operands, two interleaved accumulator
// pairs per chunk, spilled exactly into int64 every dotChunk entries.
// All intermediates are integers below 2^53 (see dotChunk), so every
// float64 operation is exact and the result matches the reference
// integer accumulation bit for bit; the win is multiplier throughput
// (the FPU retires two mul/add pairs per cycle where the 64-bit integer
// multiplier sustains about one).
func (SWARKernels) DotConjQ30(x, y []float64) (re, im int64) {
	n := len(x)
	y = y[:n]
	for base := 0; base < n; base += dotChunk {
		end := base + dotChunk
		if end > n {
			end = n
		}
		var re0, im0, re1, im1 float64
		i := base
		for ; i+3 < end; i += 4 {
			xr0, xi0, yr0, yi0 := x[i], x[i+1], y[i], y[i+1]
			xr1, xi1, yr1, yi1 := x[i+2], x[i+3], y[i+2], y[i+3]
			re0 += xr0*yr0 + xi0*yi0
			im0 += xi0*yr0 - xr0*yi0
			re1 += xr1*yr1 + xi1*yi1
			im1 += xi1*yr1 - xr1*yi1
		}
		for ; i+1 < end; i += 2 {
			xr0, xi0, yr0, yi0 := x[i], x[i+1], y[i], y[i+1]
			re0 += xr0*yr0 + xi0*yi0
			im0 += xi0*yr0 - xr0*yi0
		}
		re += int64(re0 + re1)
		im += int64(im0 + im1)
	}
	return re, im
}
