package systolic

import (
	"testing"
	"testing/quick"

	"tiledcfd/internal/fixed"
	"tiledcfd/internal/scf"
)

func TestFoldedMatchesReferencePaperConfig(t *testing.T) {
	// E6: the Figure 9 folded architecture (Q=4, T=32) computes exactly
	// the reference DSCF.
	p := scf.Params{K: 256, M: 64, Blocks: 2}
	spectra := makeSpectra(t, 99, p)
	want, err := scf.AccumulateFixed(spectra, p)
	if err != nil {
		t.Fatal(err)
	}
	fa, err := NewFoldedArray(p.M, 4)
	if err != nil {
		t.Fatal(err)
	}
	if fa.Folding().T != 32 {
		t.Fatalf("T = %d, want 32", fa.Folding().T)
	}
	for _, spec := range spectra {
		if err := fa.ProcessBlock(spec); err != nil {
			t.Fatal(err)
		}
	}
	if ok, diag := fa.Surface().Equal(want); !ok {
		t.Fatalf("folded array deviates from reference: %s", diag)
	}
}

func TestFoldedMatchesUnfolded(t *testing.T) {
	p := scf.Params{K: 64, M: 16, Blocks: 2}
	spectra := makeSpectra(t, 5, p)
	unf, err := NewFixedArray(p.M)
	if err != nil {
		t.Fatal(err)
	}
	fld, err := NewFoldedArray(p.M, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range spectra {
		if err := unf.ProcessBlock(spec); err != nil {
			t.Fatal(err)
		}
		if err := fld.ProcessBlock(spec); err != nil {
			t.Fatal(err)
		}
	}
	if ok, diag := fld.Surface().Equal(unf.Surface()); !ok {
		t.Fatalf("folded != unfolded: %s", diag)
	}
}

func TestFoldedLoadDistribution(t *testing.T) {
	fa, err := NewFoldedArray(64, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := scf.Params{K: 256, M: 64, Blocks: 1}
	spectra := makeSpectra(t, 3, p)
	if err := fa.ProcessBlock(spectra[0]); err != nil {
		t.Fatal(err)
	}
	stats := fa.Stats()
	if len(stats) != 4 {
		t.Fatalf("stats for %d cores", len(stats))
	}
	// Loads 32/32/32/31, MACs = load·F.
	wantTasks := []int{32, 32, 32, 31}
	for q, s := range stats {
		if s.Tasks != wantTasks[q] {
			t.Fatalf("core %d tasks %d, want %d", q, s.Tasks, wantTasks[q])
		}
		if s.MACs != int64(wantTasks[q]*127) {
			t.Fatalf("core %d MACs %d, want %d", q, s.MACs, wantTasks[q]*127)
		}
	}
}

func TestFoldedCommComputeRatio(t *testing.T) {
	// E12: each chain shift moves 2 boundary values per interior core
	// boundary; with Q=4 that is 3 boundaries x 2 chains = 6 transfers per
	// shift against 127 MACs per step — a factor ≥ T lower per core.
	fa, err := NewFoldedArray(64, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := scf.Params{K: 256, M: 64, Blocks: 1}
	spectra := makeSpectra(t, 11, p)
	if err := fa.ProcessBlock(spectra[0]); err != nil {
		t.Fatal(err)
	}
	macs, transfers := fa.CommComputeRatio()
	if macs != 127*127 {
		t.Fatalf("MACs %d", macs)
	}
	if transfers != 126*6 {
		t.Fatalf("transfers %d, want 756 (126 shifts x 6 boundary values)", transfers)
	}
	// Per-core ratio: ~32 MACs per step vs ≤2 sends per step.
	ratio := float64(macs) / float64(transfers)
	if ratio < float64(fa.Folding().T)/2 {
		t.Fatalf("comm/compute ratio %.1f too low vs T=%d", ratio, fa.Folding().T)
	}
}

func TestFoldedSingleCore(t *testing.T) {
	// Q=1: no boundaries at all, still exact.
	p := scf.Params{K: 64, M: 8, Blocks: 1}
	spectra := makeSpectra(t, 13, p)
	want, err := scf.AccumulateFixed(spectra, p)
	if err != nil {
		t.Fatal(err)
	}
	fa, err := NewFoldedArray(p.M, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := fa.ProcessBlock(spectra[0]); err != nil {
		t.Fatal(err)
	}
	if ok, diag := fa.Surface().Equal(want); !ok {
		t.Fatalf("single-core folded wrong: %s", diag)
	}
	_, transfers := fa.CommComputeRatio()
	if transfers != 0 {
		t.Fatalf("single core sent %d boundary values, want 0", transfers)
	}
}

func TestFoldedMoreCoresThanTasks(t *testing.T) {
	// Q > P leaves idle cores; result must still be exact.
	p := scf.Params{K: 64, M: 3, Blocks: 1} // P = 5
	spectra := makeSpectra(t, 17, p)
	want, err := scf.AccumulateFixed(spectra, p)
	if err != nil {
		t.Fatal(err)
	}
	fa, err := NewFoldedArray(p.M, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := fa.ProcessBlock(spectra[0]); err != nil {
		t.Fatal(err)
	}
	if ok, diag := fa.Surface().Equal(want); !ok {
		t.Fatalf("idle-core folded wrong: %s", diag)
	}
	idle := 0
	for _, s := range fa.Stats() {
		if s.Tasks == 0 {
			idle++
			if s.MACs != 0 || s.Sent != 0 || s.Received != 0 {
				t.Fatalf("idle core did work: %+v", s)
			}
		}
	}
	if idle != 3 {
		t.Fatalf("idle cores %d, want 3", idle)
	}
}

func TestFoldedErrors(t *testing.T) {
	if _, err := NewFoldedArray(0, 4); err == nil {
		t.Error("m=0 should fail")
	}
	if _, err := NewFoldedArray(8, 0); err == nil {
		t.Error("q=0 should fail")
	}
	fa, _ := NewFoldedArray(8, 2)
	if err := fa.ProcessBlock(make([]fixed.Complex, 20)); err == nil {
		t.Error("non-pow2 spectrum should fail")
	}
	if err := fa.ProcessBlock(make([]fixed.Complex, 16)); err == nil {
		t.Error("short spectrum should fail")
	}
}

// Property: folded equals unfolded for random Q and m.
func TestQuickFoldedEquivalence(t *testing.T) {
	f := func(seed uint64, m8, q8 uint8) bool {
		m := int(m8%7) + 2 // 2..8
		q := int(q8%6) + 1 // 1..6
		p := scf.Params{K: 64, M: m, Blocks: 2}
		spectra := makeSpectra(t, seed, p)
		unf, err := NewFixedArray(m)
		if err != nil {
			return false
		}
		fld, err := NewFoldedArray(m, q)
		if err != nil {
			return false
		}
		for _, spec := range spectra {
			if unf.ProcessBlock(spec) != nil || fld.ProcessBlock(spec) != nil {
				return false
			}
		}
		ok, _ := fld.Surface().Equal(unf.Surface())
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
