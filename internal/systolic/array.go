package systolic

import (
	"fmt"

	"tiledcfd/internal/fft"
	"tiledcfd/internal/fixed"
	"tiledcfd/internal/scf"
)

// FixedArray is the unfolded systolic line array of Figure 7 in Q15
// arithmetic: one PE per frequency offset a, each with a register+adder
// accumulator bank addressed by frequency (Figure 4), fed by two shift
// chains with one tap per PE.
type FixedArray struct {
	m     int
	surf  *scf.FixedSurface
	xTaps []fixed.Complex // chain of X[f+a], flows towards -a
	cTaps []fixed.Complex // chain of X[f-a] operands, flows towards +a
	macs  int64
	shift int64
	loads int64
}

// NewFixedArray builds an array for half-extent m (P = 2m-1 PEs).
func NewFixedArray(m int) (*FixedArray, error) {
	if m < 1 {
		return nil, fmt.Errorf("systolic: NewFixedArray m=%d must be >= 1", m)
	}
	p := 2*m - 1
	return &FixedArray{
		m:     m,
		surf:  scf.NewFixedSurface(m),
		xTaps: make([]fixed.Complex, p),
		cTaps: make([]fixed.Complex, p),
	}, nil
}

// P returns the PE count.
func (ar *FixedArray) P() int { return 2*ar.m - 1 }

// tapIndex converts offset a to a tap slice index.
func (ar *FixedArray) tapIndex(a int) int { return a + ar.m - 1 }

// ProcessBlock runs one full integration step (one block spectrum) through
// the array: chain initialisation, then F time steps of parallel MACs with
// a chain shift and end injections between steps. The spectrum length must
// be a power of two at least 4(m-1)+1 so every addressed bin exists.
func (ar *FixedArray) ProcessBlock(spec []fixed.Complex) error {
	k := len(spec)
	if !fft.IsPow2(k) {
		return fmt.Errorf("systolic: spectrum length %d not a power of two", k)
	}
	if 4*(ar.m-1)+1 > k {
		return fmt.Errorf("systolic: spectrum length %d too short for m=%d", k, ar.m)
	}
	ext := ar.m - 1
	t0 := -ext
	// Initialisation: preload both chains with the first window
	// (the paper's "initialisation" phase; P parallel loads).
	for a := -ext; a <= ext; a++ {
		ar.xTaps[ar.tapIndex(a)] = spec[fft.BinIndex(k, t0+a)]
		ar.cTaps[ar.tapIndex(a)] = spec[fft.BinIndex(k, t0-a)]
		ar.loads++
	}
	// F time steps: t plays the role of the frequency f.
	for t := -ext; t <= ext; t++ {
		for a := -ext; a <= ext; a++ {
			// PE a: S_f^a += X[f+a]·conj(X[f-a]) from its two taps only.
			ar.surf.MAC(t, a, ar.xTaps[ar.tapIndex(a)], ar.cTaps[ar.tapIndex(a)])
			ar.macs++
		}
		if t < ext {
			ar.shiftChains(spec, k, t)
		}
	}
	return nil
}

// shiftChains advances both chains one position and injects the fresh
// spectral value (bin t+m) at each entry end, per the derived register
// structure: X flows towards -a (inject at +ext), the conjugate-operand
// chain towards +a (inject at -ext).
func (ar *FixedArray) shiftChains(spec []fixed.Complex, k, t int) {
	ext := ar.m - 1
	for a := -ext; a < ext; a++ {
		ar.xTaps[ar.tapIndex(a)] = ar.xTaps[ar.tapIndex(a+1)]
	}
	ar.xTaps[ar.tapIndex(ext)] = spec[fft.BinIndex(k, t+ar.m)]
	for a := ext; a > -ext; a-- {
		ar.cTaps[ar.tapIndex(a)] = ar.cTaps[ar.tapIndex(a-1)]
	}
	ar.cTaps[ar.tapIndex(-ext)] = spec[fft.BinIndex(k, t+ar.m)]
	ar.shift++
}

// Surface returns the accumulated DSCF (shared, not copied).
func (ar *FixedArray) Surface() *scf.FixedSurface { return ar.surf }

// Ops returns operation counters: multiply-accumulates, chain shifts and
// initial loads performed so far.
func (ar *FixedArray) Ops() (macs, shifts, loads int64) {
	return ar.macs, ar.shift, ar.loads
}
