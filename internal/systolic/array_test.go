package systolic

import (
	"testing"
	"testing/quick"

	"tiledcfd/internal/fixed"
	"tiledcfd/internal/scf"
	"tiledcfd/internal/sig"
)

// makeSpectra produces Q15 block spectra via the shared fixed FFT, so the
// simulators and the reference consume identical inputs.
func makeSpectra(t testing.TB, seed uint64, p scf.Params) [][]fixed.Complex {
	t.Helper()
	p = p.WithDefaults()
	rng := sig.NewRand(seed)
	x := sig.Samples(&sig.WGN{Sigma: 0.45, Real: true, Rng: rng}, p.SamplesNeeded())
	spectra, err := scf.FixedSpectra(fixed.FromFloatSlice(x), p)
	if err != nil {
		t.Fatal(err)
	}
	return spectra
}

func TestUnfoldedMatchesReference(t *testing.T) {
	// E5: the Figure 7 systolic array computes exactly the reference DSCF.
	p := scf.Params{K: 64, M: 16, Blocks: 3}
	spectra := makeSpectra(t, 42, p)
	want, err := scf.AccumulateFixed(spectra, p)
	if err != nil {
		t.Fatal(err)
	}
	ar, err := NewFixedArray(p.M)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range spectra {
		if err := ar.ProcessBlock(spec); err != nil {
			t.Fatal(err)
		}
	}
	if ok, diag := ar.Surface().Equal(want); !ok {
		t.Fatalf("systolic array deviates from reference: %s", diag)
	}
}

func TestUnfoldedPaperGeometry(t *testing.T) {
	ar, err := NewFixedArray(64)
	if err != nil {
		t.Fatal(err)
	}
	if ar.P() != 127 {
		t.Fatalf("P = %d, want 127", ar.P())
	}
	p := scf.Params{K: 256, M: 64, Blocks: 1}
	spectra := makeSpectra(t, 7, p)
	if err := ar.ProcessBlock(spectra[0]); err != nil {
		t.Fatal(err)
	}
	macs, shifts, loads := ar.Ops()
	if macs != 127*127 {
		t.Fatalf("MACs = %d, want 16129 (P·F)", macs)
	}
	if shifts != 126 {
		t.Fatalf("shifts = %d, want F-1 = 126", shifts)
	}
	if loads != 127 {
		t.Fatalf("initial loads = %d, want P = 127 (Table 1 'initialisation')", loads)
	}
}

func TestUnfoldedOperandLocality(t *testing.T) {
	// The PE may only touch its own taps. Feed a spectrum with a marker in
	// exactly one bin and verify only the cells whose operands address that
	// bin are non-zero — which proves taps delivered the right bins.
	const k, m = 32, 4
	spec := make([]fixed.Complex, k)
	marker := fixed.Complex{Re: 16384, Im: 0}
	spec[3] = marker // bin +3 only
	ar, err := NewFixedArray(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := ar.ProcessBlock(spec); err != nil {
		t.Fatal(err)
	}
	surf := ar.Surface()
	for a := -(m - 1); a <= m-1; a++ {
		for f := -(m - 1); f <= m-1; f++ {
			got := surf.At(f, a)
			wantNonZero := f+a == 3 && f-a == 3 // both operands must hit bin 3
			if wantNonZero && got.IsZero() {
				t.Fatalf("cell (f=%d,a=%d) should be non-zero", f, a)
			}
			if !wantNonZero && !got.IsZero() {
				t.Fatalf("cell (f=%d,a=%d) = %+v, want zero", f, a, got)
			}
		}
	}
}

func TestUnfoldedErrors(t *testing.T) {
	if _, err := NewFixedArray(0); err == nil {
		t.Error("m=0 should fail")
	}
	ar, _ := NewFixedArray(8)
	if err := ar.ProcessBlock(make([]fixed.Complex, 20)); err == nil {
		t.Error("non-pow2 spectrum should fail")
	}
	if err := ar.ProcessBlock(make([]fixed.Complex, 16)); err == nil {
		t.Error("too-short spectrum should fail")
	}
}

// Property: unfolded array equals reference for random signals and sizes.
func TestQuickUnfoldedEquivalence(t *testing.T) {
	f := func(seed uint64, m8 uint8, blocks8 uint8) bool {
		m := int(m8%7) + 2 // 2..8
		blocks := int(blocks8%3) + 1
		p := scf.Params{K: 64, M: m, Blocks: blocks}
		spectra := makeSpectra(t, seed, p)
		want, err := scf.AccumulateFixed(spectra, p)
		if err != nil {
			return false
		}
		ar, err := NewFixedArray(m)
		if err != nil {
			return false
		}
		for _, spec := range spectra {
			if ar.ProcessBlock(spec) != nil {
				return false
			}
		}
		ok, _ := ar.Surface().Equal(want)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
