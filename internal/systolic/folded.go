package systolic

import (
	"fmt"

	"tiledcfd/internal/fft"
	"tiledcfd/internal/fixed"
	"tiledcfd/internal/mapping"
	"tiledcfd/internal/scf"
)

// CoreStats reports what one physical core of the folded array did.
type CoreStats struct {
	// Core is the core index q.
	Core int
	// Tasks is the number of logical tasks (taps) the core owns.
	Tasks int
	// MACs is the number of multiply-accumulates executed.
	MACs int64
	// Sent and Received count boundary chain values exchanged with
	// neighbouring cores (the inter-core traffic of the paper's section 4).
	Sent, Received int64
}

// foldedCore is the private state of one core: its contiguous tap
// segments of both chains (the paper maps these onto Montium memories
// M09 and M10) and its traffic counters.
type foldedCore struct {
	q        int
	loA, hiA int // owned offsets, inclusive; loA > hiA means idle
	xTaps    []fixed.Complex
	cTaps    []fixed.Complex
	macs     int64
	sent     int64
	received int64
}

func (c *foldedCore) tasks() int {
	if c.loA > c.hiA {
		return 0
	}
	return c.hiA - c.loA + 1
}

// FoldedArray is the folded architecture of Figures 8/9: the P-tap line
// array distributed over Q cores via the expression 8/9 folding, with
// switches walking each core's T taps within a time step and a single
// chain shift (including inter-core boundary exchange) between steps.
type FoldedArray struct {
	m     int
	fold  mapping.Folding
	cores []*foldedCore
	surf  *scf.FixedSurface
	steps int64
}

// NewFoldedArray builds a folded array for half-extent m on q cores.
func NewFoldedArray(m, q int) (*FoldedArray, error) {
	if m < 1 {
		return nil, fmt.Errorf("systolic: NewFoldedArray m=%d must be >= 1", m)
	}
	fold, err := mapping.NewFolding(2*m-1, q)
	if err != nil {
		return nil, err
	}
	if err := fold.Validate(); err != nil {
		return nil, err
	}
	fa := &FoldedArray{m: m, fold: fold, surf: scf.NewFixedSurface(m)}
	for c := 0; c < q; c++ {
		lo, hi := fold.TasksOf(c)
		core := &foldedCore{
			q:   c,
			loA: mapping.AOf(lo, m),
			hiA: mapping.AOf(hi-1, m),
		}
		if lo >= hi { // idle core
			core.loA, core.hiA = 1, 0
		} else {
			core.xTaps = make([]fixed.Complex, hi-lo)
			core.cTaps = make([]fixed.Complex, hi-lo)
		}
		fa.cores = append(fa.cores, core)
	}
	return fa, nil
}

// Folding returns the task-distribution parameters in use.
func (fa *FoldedArray) Folding() mapping.Folding { return fa.fold }

// ProcessBlock runs one integration step through the folded array. The
// semantics (and the resulting bits) are identical to FixedArray; only the
// ownership of taps and the explicit boundary exchange differ.
func (fa *FoldedArray) ProcessBlock(spec []fixed.Complex) error {
	k := len(spec)
	if !fft.IsPow2(k) {
		return fmt.Errorf("systolic: spectrum length %d not a power of two", k)
	}
	if 4*(fa.m-1)+1 > k {
		return fmt.Errorf("systolic: spectrum length %d too short for m=%d", k, fa.m)
	}
	ext := fa.m - 1
	t0 := -ext
	// Initialisation: each core preloads its own tap segments.
	for _, c := range fa.cores {
		for i := 0; i < c.tasks(); i++ {
			a := c.loA + i
			c.xTaps[i] = spec[fft.BinIndex(k, t0+a)]
			c.cTaps[i] = spec[fft.BinIndex(k, t0-a)]
		}
	}
	for t := -ext; t <= ext; t++ {
		// Each core executes its up-to-T tasks with the switch walking the
		// taps; core order q=0..Q-1 with ascending taps gives the same
		// global MAC order as the unfolded array.
		for _, c := range fa.cores {
			for i := 0; i < c.tasks(); i++ {
				a := c.loA + i
				fa.surf.MAC(t, a, c.xTaps[i], c.cTaps[i])
				c.macs++
			}
		}
		if t < ext {
			fa.shiftWithExchange(spec, k, t)
		}
	}
	fa.steps++
	return nil
}

// shiftWithExchange advances both chains one position. Values crossing a
// core boundary are counted as inter-core traffic on both sides; the array
// ends inject the fresh bin t+m, exactly as in the unfolded array.
func (fa *FoldedArray) shiftWithExchange(spec []fixed.Complex, k, t int) {
	active := fa.activeCores()
	n := len(active)
	// X chain flows towards -a: tap a receives from a+1, so each core
	// receives its neighbour-with-higher-a's lowest tap; the highest core
	// injects.
	xIn := make([]fixed.Complex, n)
	for i, c := range active {
		if i+1 < n {
			xIn[i] = active[i+1].xTaps[0]
			active[i+1].sent++
			c.received++
		} else {
			xIn[i] = spec[fft.BinIndex(k, t+fa.m)]
		}
	}
	// Conjugate-operand chain flows towards +a: tap a receives from a-1.
	cIn := make([]fixed.Complex, n)
	for i, c := range active {
		if i > 0 {
			prev := active[i-1]
			cIn[i] = prev.cTaps[len(prev.cTaps)-1]
			prev.sent++
			c.received++
		} else {
			cIn[i] = spec[fft.BinIndex(k, t+fa.m)]
		}
	}
	for i, c := range active {
		nt := c.tasks()
		copy(c.xTaps[0:], c.xTaps[1:nt])
		c.xTaps[nt-1] = xIn[i]
		copy(c.cTaps[1:nt], c.cTaps[0:nt-1])
		c.cTaps[0] = cIn[i]
	}
}

// activeCores returns the cores that own at least one task, in ascending
// a order.
func (fa *FoldedArray) activeCores() []*foldedCore {
	var out []*foldedCore
	for _, c := range fa.cores {
		if c.tasks() > 0 {
			out = append(out, c)
		}
	}
	return out
}

// Surface returns the accumulated DSCF (shared, not copied).
func (fa *FoldedArray) Surface() *scf.FixedSurface { return fa.surf }

// Stats returns per-core execution statistics.
func (fa *FoldedArray) Stats() []CoreStats {
	out := make([]CoreStats, len(fa.cores))
	for i, c := range fa.cores {
		out[i] = CoreStats{
			Core: c.q, Tasks: c.tasks(), MACs: c.macs,
			Sent: c.sent, Received: c.received,
		}
	}
	return out
}

// CommComputeRatio returns total MACs divided by total boundary values
// exchanged, the measured counterpart of the paper's claim that inter-core
// data exchange runs a factor T slower than computation. Zero traffic
// (single active core) returns +Inf semantics as (macs, 0).
func (fa *FoldedArray) CommComputeRatio() (macs, transfers int64) {
	for _, c := range fa.cores {
		macs += c.macs
		transfers += c.sent
	}
	return macs, transfers
}
