package systolic

import (
	"testing"

	"tiledcfd/internal/fixed"
	"tiledcfd/internal/scf"
	"tiledcfd/internal/sig"
)

func benchSpectrum(b *testing.B) []fixed.Complex {
	b.Helper()
	rng := sig.NewRand(3)
	x := fixed.FromFloatSlice(sig.Samples(&sig.WGN{Sigma: 0.4, Real: true, Rng: rng}, 256))
	spectra, err := scf.FixedSpectra(x, scf.Params{K: 256, M: 64})
	if err != nil {
		b.Fatal(err)
	}
	return spectra[0]
}

func BenchmarkUnfoldedBlock(b *testing.B) {
	spec := benchSpectrum(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ar, err := NewFixedArray(64)
		if err != nil {
			b.Fatal(err)
		}
		if err := ar.ProcessBlock(spec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFoldedBlockQ4(b *testing.B) {
	spec := benchSpectrum(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fa, err := NewFoldedArray(64, 4)
		if err != nil {
			b.Fatal(err)
		}
		if err := fa.ProcessBlock(spec); err != nil {
			b.Fatal(err)
		}
	}
}
