// Package systolic simulates, cycle-step by cycle-step, the two array
// architectures step 1 of the paper derives:
//
//   - FixedArray: the unfolded systolic line of Figure 7 — P = 2M-1
//     multiply-accumulate PEs, two counter-flowing shift-register chains
//     (the X values travelling towards decreasing a, the conjugate
//     operands towards increasing a), time-multiplexed over F = 2M-1
//     frequency steps with fresh spectral values injected at the array
//     ends every step.
//   - FoldedArray: the folded architecture of Figures 8/9 — Q cores, each
//     owning T = ⌈P/Q⌉ consecutive taps of both chains (the paper maps
//     them onto Montium memories M09/M10), switches walking the T taps
//     within a time step, and the chains shifting one position per time
//     step with boundary values crossing between neighbouring cores.
//
// Both simulators operate on Q15 spectra and perform exactly one
// saturating multiply-accumulate per grid cell per block, in a definite
// order, so their outputs are bit-identical to the scf.ComputeFixed
// reference — the equivalence the E5 and E6 experiments assert. The PE
// applies the conjugation inside its multiplier (x·conj(y)); the second
// chain carries the operand values in the reshuffled order the paper's
// Figure 1 calls "the flow of the complex conjugate".
//
// This package is purely functional/synchronous; the goroutine-per-tile
// concurrent execution with explicit inter-core links lives in
// internal/soc on top of the same per-core arithmetic.
package systolic
