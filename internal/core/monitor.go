package core

import (
	"fmt"

	"tiledcfd/internal/detect"
)

// WindowDecision is the verdict for one sensing window of a monitored
// stream.
type WindowDecision struct {
	// Window is the 0-based window index; the window covers samples
	// [Window·N, (Window+1)·N) for N = window samples.
	Window int
	// Decision is the detector verdict for the window.
	Decision detect.Decision
	// FeatureA is the strongest cyclic feature's offset in the window.
	FeatureA int
}

// Monitor senses a continuous sample stream window by window, the
// operational mode of the paper's Cognitive-Radio application: the
// platform repeatedly analyses blocks of fresh samples and the decision
// layer tracks per-window occupancy.
type Monitor struct {
	cfg Config
}

// NewMonitor validates the configuration once and returns a reusable
// monitor.
func NewMonitor(cfg Config) (*Monitor, error) {
	cfg = cfg.withDefaults()
	if err := cfg.SoC.Validate(); err != nil {
		return nil, err
	}
	return &Monitor{cfg: cfg}, nil
}

// WindowSamples returns the samples consumed per sensing window:
// K·Blocks.
func (m *Monitor) WindowSamples() int { return m.cfg.SoC.K * m.cfg.SoC.Blocks }

// Process senses every complete window in the stream (a trailing partial
// window is ignored) and returns the per-window decisions in order.
func (m *Monitor) Process(stream []complex128) ([]WindowDecision, error) {
	w := m.WindowSamples()
	if len(stream) < w {
		return nil, fmt.Errorf("core: stream of %d samples shorter than one window (%d)", len(stream), w)
	}
	var out []WindowDecision
	for i := 0; (i+1)*w <= len(stream); i++ {
		res, err := Run(stream[i*w:(i+1)*w], m.cfg)
		if err != nil {
			return nil, fmt.Errorf("core: window %d: %w", i, err)
		}
		_, a, _ := res.Surface.MaxFeature(true)
		out = append(out, WindowDecision{Window: i, Decision: res.Decision, FeatureA: a})
	}
	return out, nil
}

// OccupancyRatio returns the fraction of windows declared occupied.
func OccupancyRatio(decisions []WindowDecision) float64 {
	if len(decisions) == 0 {
		return 0
	}
	n := 0
	for _, d := range decisions {
		if d.Decision.Detected {
			n++
		}
	}
	return float64(n) / float64(len(decisions))
}
