// Package core ties the reproduction together into the application the
// paper targets: spectrum sensing for Cognitive Radio on the tiled SoC.
//
// One Run executes the full chain exactly as the platform would:
// condition and quantise the sampled band to the Montium's Q15 datapath,
// run the 4-tile platform simulation (FFT → reshuffle → init → folded MAC
// loop per block, tiles exchanging chain values over the NoC), read the
// DSCF out of the tiles' accumulator memories, apply the cyclostationary
// detection statistic to that hardware-produced surface, and convert the
// measured cycle counts into the paper's evaluation figures (time per
// integration step, analysed bandwidth, area, power).
//
// Config.Estimator swaps the platform for a software reference
// estimator (scf.Direct, fam.FAM, fam.SSCA): the decision layer is
// unchanged, but the surface comes from the estimator in float64 and
// the run reports estimator work counts instead of hardware cycles.
package core
