package core

import (
	"fmt"

	"tiledcfd/internal/detect"
	"tiledcfd/internal/fixed"
	"tiledcfd/internal/perf"
	"tiledcfd/internal/scf"
	"tiledcfd/internal/soc"
)

// Config configures a spectrum-sensing run.
type Config struct {
	// SoC is the platform configuration; zero fields take the paper's
	// values (K=256, M=64, Q=4, 100 MHz).
	SoC soc.Config
	// MinAbsA is the smallest |a| the blind detector searches (default 2,
	// keeping clear of PSD leakage around a=0).
	MinAbsA int
	// Threshold is the detection threshold on the CFD statistic; calibrate
	// with detect.CalibrateThreshold for a target false-alarm rate.
	// Ignored when Decider is set.
	Threshold float64
	// Decider, when set, replaces the fixed-threshold CFD decision with a
	// registry decider (detect.NewDecider): surface detectors (cfar,
	// fixed) evaluate the computed surface, sample-based asymptotic tests
	// (dg, urriza) evaluate the raw input window.
	Decider detect.Decider
	// InputScale is the peak amplitude the input is conditioned to before
	// Q15 quantisation (default 0.5, leaving 6 dB of headroom).
	InputScale float64
	// Perf supplies the technology constants; zero takes the paper's.
	Perf perf.Model
	// Estimator selects a software reference estimator (scf.Direct,
	// fam.FAM, fam.SSCA) for the decision surface instead of the
	// bit-true fixed-point platform simulation. nil keeps the paper's
	// hardware path. On the estimator path Result.Fixed and
	// Result.Report are nil, Result.Stats carries the estimator's work
	// counts, and the evaluation figures are zero (no hardware cycles
	// are measured).
	Estimator scf.Estimator
}

// withDefaults fills the zero fields.
func (c Config) withDefaults() Config {
	c.SoC = c.SoC.WithDefaults()
	if c.MinAbsA == 0 {
		c.MinAbsA = 2
	}
	if c.InputScale == 0 {
		c.InputScale = 0.5
	}
	if c.Perf == (perf.Model{}) {
		c.Perf = perf.Paper()
	}
	return c
}

// Result is the outcome of one spectrum-sensing run.
type Result struct {
	// Fixed is the raw Q15 DSCF read from the tiles' memories (nil on
	// the software-estimator path).
	Fixed *scf.FixedSurface
	// Surface is the decision surface: the float view of Fixed on the
	// platform path, or the estimator's output on the software path.
	Surface *scf.Surface
	// Report is the platform execution report (per-tile Table 1, cycles,
	// NoC traffic); nil on the software-estimator path.
	Report *soc.Report
	// Stats carries the software estimator's work counts; nil on the
	// platform path, which reports cycles instead.
	Stats *scf.Stats
	// Decision is the detector verdict on the hardware surface.
	Decision detect.Decision
	// Evaluation figures derived from the measured cycles (section 5).
	BlockTimeMicros      float64
	AnalysedBandwidthkHz float64
	AreaMM2              float64
	PowerMW              float64
}

// Run executes spectrum sensing over the sampled band x.
func Run(x []complex128, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.SoC.Validate(); err != nil {
		return nil, err
	}
	if cfg.InputScale <= 0 || cfg.InputScale > 1 {
		return nil, fmt.Errorf("core: InputScale %v outside (0,1]", cfg.InputScale)
	}
	if cfg.Estimator != nil {
		return runEstimator(x, cfg)
	}
	need := cfg.SoC.K * cfg.SoC.Blocks
	if len(x) < need {
		return nil, fmt.Errorf("core: need %d samples, have %d", need, len(x))
	}
	// Condition to Q15: scale a copy so the peak component sits at
	// InputScale. The CFD statistic is self-normalising, so the gain does
	// not bias the decision.
	cond := make([]complex128, need)
	copy(cond, x[:need])
	fixed.ScaleSliceFloat(cond, cfg.InputScale)
	qx := fixed.FromFloatSlice(cond)

	platform, err := soc.New(cfg.SoC)
	if err != nil {
		return nil, err
	}
	fx, report, err := platform.Run(qx)
	if err != nil {
		return nil, err
	}
	surface := fx.Float(cfg.SoC.Blocks)
	decision, err := cfg.decide(surface, x[:need], "cfd")
	if err != nil {
		return nil, err
	}
	bt := cfg.Perf.BlockTimeMicros(report.CyclesPerBlock)
	return &Result{
		Fixed:                fx,
		Surface:              surface,
		Report:               report,
		Decision:             decision,
		BlockTimeMicros:      bt,
		AnalysedBandwidthkHz: cfg.Perf.AnalysedBandwidthkHz(cfg.SoC.K, bt),
		AreaMM2:              cfg.Perf.AreaMM2(cfg.SoC.Q),
		PowerMW:              cfg.Perf.PowerMW(cfg.SoC.Q),
	}, nil
}

// runEstimator is the software reference path: the decision surface comes
// from the configured scf.Estimator in float64, skipping quantisation and
// the platform simulation. The detection layer is identical to the
// hardware path — the CFD statistic is self-normalising, so verdicts are
// directly comparable across paths.
func runEstimator(x []complex128, cfg Config) (*Result, error) {
	surface, stats, err := cfg.Estimator.Estimate(x)
	if err != nil {
		return nil, fmt.Errorf("core: %s estimator: %w", cfg.Estimator.Name(), err)
	}
	decision, err := cfg.decide(surface, x, "cfd-"+cfg.Estimator.Name())
	if err != nil {
		return nil, err
	}
	return &Result{
		Surface:  surface,
		Stats:    stats,
		Decision: decision,
	}, nil
}

// decide applies the decision layer shared by both paths: the
// configured Decider when one is set (its Decision carries the registry
// detector name), otherwise the legacy fixed-threshold CFD statistic
// under the path's historical detector label.
func (c Config) decide(surface *scf.Surface, x []complex128, legacyName string) (detect.Decision, error) {
	if c.Decider != nil {
		d, err := c.Decider.Decide(surface, x)
		if err != nil {
			return detect.Decision{}, err
		}
		d.Detector = c.Decider.Name()
		return d, nil
	}
	stat, err := detect.CFDStatistic(surface, c.MinAbsA)
	if err != nil {
		return detect.Decision{}, err
	}
	return detect.Decision{
		Detector:  legacyName,
		Statistic: stat,
		Threshold: c.Threshold,
		Detected:  stat > c.Threshold,
	}, nil
}
