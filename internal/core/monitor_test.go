package core

import (
	"math"
	"testing"

	"tiledcfd/internal/sig"
	"tiledcfd/internal/soc"
)

func monitorConfig() Config {
	return Config{
		SoC:       soc.Config{K: 64, M: 16, Q: 2, Blocks: 16},
		MinAbsA:   2,
		Threshold: 0.4,
	}
}

func TestMonitorTracksAppearingUser(t *testing.T) {
	// Stream: 2 idle windows, then 2 windows with a licensed user.
	m, err := NewMonitor(monitorConfig())
	if err != nil {
		t.Fatal(err)
	}
	w := m.WindowSamples()
	if w != 64*16 {
		t.Fatalf("window samples %d", w)
	}
	rng := sig.NewRand(81)
	stream := sig.Samples(&sig.WGN{Sigma: 0.3, Real: true, Rng: rng}, 2*w)
	b := &sig.BPSK{Amp: 1, Carrier: 8.0 / 64, SymbolLen: 8, Rng: rng}
	user := sig.Samples(b, 2*w)
	noise2 := sig.Samples(&sig.WGN{Sigma: 0.3, Real: true, Rng: rng}, 2*w)
	for i := range user {
		user[i] += noise2[i]
	}
	stream = append(stream, user...)

	decisions, err := m.Process(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(decisions) != 4 {
		t.Fatalf("windows %d, want 4", len(decisions))
	}
	for i := 0; i < 2; i++ {
		if decisions[i].Decision.Detected {
			t.Fatalf("false alarm in idle window %d (stat %v)", i, decisions[i].Decision.Statistic)
		}
	}
	for i := 2; i < 4; i++ {
		if !decisions[i].Decision.Detected {
			t.Fatalf("missed user in window %d (stat %v)", i, decisions[i].Decision.Statistic)
		}
	}
	if got := OccupancyRatio(decisions); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("occupancy %v, want 0.5", got)
	}
}

func TestMonitorDropsPartialWindow(t *testing.T) {
	m, err := NewMonitor(monitorConfig())
	if err != nil {
		t.Fatal(err)
	}
	w := m.WindowSamples()
	rng := sig.NewRand(82)
	stream := sig.Samples(&sig.WGN{Sigma: 0.3, Real: true, Rng: rng}, w+w/2)
	decisions, err := m.Process(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(decisions) != 1 {
		t.Fatalf("windows %d, want 1 (partial dropped)", len(decisions))
	}
}

func TestMonitorErrors(t *testing.T) {
	if _, err := NewMonitor(Config{SoC: soc.Config{K: 256, M: 64, Q: 1}}); err == nil {
		t.Error("infeasible config should fail")
	}
	m, err := NewMonitor(monitorConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Process(make([]complex128, 10)); err == nil {
		t.Error("short stream should fail")
	}
	// A window of pure zeros makes quantisation produce a zero surface;
	// the statistic step must surface the error with the window index.
	if _, err := m.Process(make([]complex128, m.WindowSamples())); err == nil {
		t.Error("all-zero window should fail with a window-indexed error")
	}
}

func TestOccupancyRatioEmpty(t *testing.T) {
	if OccupancyRatio(nil) != 0 {
		t.Fatal("empty occupancy should be 0")
	}
}
