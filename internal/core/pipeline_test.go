package core

import (
	"math"
	"testing"

	"tiledcfd/internal/fam"
	"tiledcfd/internal/scf"
	"tiledcfd/internal/sig"
	"tiledcfd/internal/soc"
)

// sense builds a band with or without a BPSK licensed user and runs the
// pipeline on a small platform (fast test geometry).
func sense(t *testing.T, present bool, seed uint64) *Result {
	t.Helper()
	const k, m, blocks = 64, 16, 16
	rng := sig.NewRand(seed)
	n := k * blocks
	var x []complex128
	noise := sig.Samples(&sig.WGN{Sigma: 0.3, Real: true, Rng: rng}, n)
	if present {
		b := &sig.BPSK{Amp: 1, Carrier: 8.0 / k, SymbolLen: 8, Rng: rng}
		x = sig.Samples(b, n)
		for i := range x {
			x[i] += noise[i]
		}
	} else {
		x = noise
	}
	res, err := Run(x, Config{
		SoC:       soc.Config{K: k, M: m, Q: 4, Blocks: blocks},
		MinAbsA:   2,
		Threshold: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPipelineDetectsLicensedUser(t *testing.T) {
	res := sense(t, true, 71)
	if !res.Decision.Detected {
		t.Fatalf("BPSK user not detected: statistic %v", res.Decision.Statistic)
	}
}

func TestPipelineRejectsNoise(t *testing.T) {
	res := sense(t, false, 72)
	if res.Decision.Detected {
		t.Fatalf("false alarm on noise: statistic %v", res.Decision.Statistic)
	}
}

func TestPipelineSeparation(t *testing.T) {
	// The statistic gap between H1 and H0 should be decisive.
	h1 := sense(t, true, 73).Decision.Statistic
	h0 := sense(t, false, 74).Decision.Statistic
	if h1 < 1.7*h0 {
		t.Fatalf("poor separation: H1 %v vs H0 %v", h1, h0)
	}
}

func TestPipelinePaperEvaluationNumbers(t *testing.T) {
	// E9/E10 via the full pipeline at the paper's geometry.
	const k, blocks = 256, 2
	rng := sig.NewRand(75)
	b := &sig.BPSK{Amp: 1, Carrier: 32.0 / k, SymbolLen: 8, Rng: rng}
	x, _, err := sig.AddAWGN(sig.Samples(b, k*blocks), 10, true, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(x, Config{SoC: soc.Config{Blocks: blocks}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.CyclesPerBlock != 13996 {
		t.Fatalf("cycles per block %d, want 13996", res.Report.CyclesPerBlock)
	}
	if math.Abs(res.BlockTimeMicros-139.96) > 1e-9 {
		t.Fatalf("block time %v µs", res.BlockTimeMicros)
	}
	if res.AnalysedBandwidthkHz < 910 || res.AnalysedBandwidthkHz > 920 {
		t.Fatalf("bandwidth %v kHz", res.AnalysedBandwidthkHz)
	}
	if res.AreaMM2 != 8 || res.PowerMW != 200 {
		t.Fatalf("area/power %v/%v", res.AreaMM2, res.PowerMW)
	}
	if res.Surface == nil || res.Fixed == nil {
		t.Fatal("surfaces missing")
	}
}

func TestPipelineInputValidation(t *testing.T) {
	if _, err := Run(make([]complex128, 10), Config{SoC: soc.Config{K: 64, M: 16, Q: 2}}); err == nil {
		t.Error("short input should fail")
	}
	x := make([]complex128, 256)
	if _, err := Run(x, Config{SoC: soc.Config{K: 256, M: 64, Q: 1}}); err == nil {
		t.Error("memory-overflow config should fail")
	}
	if _, err := Run(x, Config{SoC: soc.Config{K: 64, M: 16, Q: 2}, InputScale: 2}); err == nil {
		t.Error("InputScale > 1 should fail")
	}
	if _, err := Run(x, Config{SoC: soc.Config{K: 64, M: 16, Q: 2}, InputScale: -0.5}); err == nil {
		t.Error("negative InputScale should fail")
	}
}

func TestPipelineGainInvariance(t *testing.T) {
	// The input conditioning must make the decision independent of the
	// absolute input level (the statistic is self-normalising).
	const k, m, blocks = 64, 16, 4
	rng := sig.NewRand(76)
	b := &sig.BPSK{Amp: 1, Carrier: 8.0 / k, SymbolLen: 8, Rng: rng}
	x, _, err := sig.AddAWGN(sig.Samples(b, k*blocks), 8, true, rng)
	if err != nil {
		t.Fatal(err)
	}
	loud := make([]complex128, len(x))
	for i := range x {
		loud[i] = x[i] * 37
	}
	cfg := Config{SoC: soc.Config{K: k, M: m, Q: 2, Blocks: blocks}}
	a, err := Run(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bres, err := Run(loud, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Decision.Statistic-bres.Decision.Statistic) > 0.02*(1+a.Decision.Statistic) {
		t.Fatalf("gain changed statistic: %v vs %v", a.Decision.Statistic, bres.Decision.Statistic)
	}
}

// senseWith runs the pipeline with a software estimator on the same band
// geometry as sense.
func senseWith(t *testing.T, est scf.Estimator, present bool, seed uint64) *Result {
	t.Helper()
	const k, m, blocks = 64, 16, 16
	rng := sig.NewRand(seed)
	n := k * blocks
	noise := sig.Samples(&sig.WGN{Sigma: 0.3, Real: true, Rng: rng}, n)
	x := noise
	if present {
		b := &sig.BPSK{Amp: 1, Carrier: 8.0 / k, SymbolLen: 8, Rng: rng}
		x = sig.Samples(b, n)
		for i := range x {
			x[i] += noise[i]
		}
	}
	res, err := Run(x, Config{
		SoC:       soc.Config{K: k, M: m, Q: 4, Blocks: blocks},
		MinAbsA:   2,
		Threshold: 0.4,
		Estimator: est,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPipelineEstimatorPath(t *testing.T) {
	for _, est := range []scf.Estimator{
		scf.Direct{Params: scf.Params{K: 64, M: 16, Blocks: 16}},
		fam.FAM{Params: scf.Params{K: 64, M: 16}},
		fam.SSCA{Params: scf.Params{K: 64, M: 16}},
	} {
		res := senseWith(t, est, true, 71)
		if !res.Decision.Detected {
			t.Errorf("%s: BPSK user not detected: statistic %v", est.Name(), res.Decision.Statistic)
		}
		if res.Decision.Detector != "cfd-"+est.Name() {
			t.Errorf("%s: decision names %q", est.Name(), res.Decision.Detector)
		}
		if res.Report != nil || res.Fixed != nil {
			t.Errorf("%s: hardware artefacts on the software path", est.Name())
		}
		if res.Stats == nil || res.Stats.TotalMults() <= 0 {
			t.Errorf("%s: missing estimator stats", est.Name())
		}
		if res.Surface == nil {
			t.Fatalf("%s: no surface", est.Name())
		}
		idle := senseWith(t, est, false, 72)
		if idle.Decision.Detected {
			t.Errorf("%s: false alarm on noise: statistic %v", est.Name(), idle.Decision.Statistic)
		}
	}
}

func TestPipelineEstimatorErrorsSurface(t *testing.T) {
	short := make([]complex128, 16)
	_, err := Run(short, Config{
		SoC:       soc.Config{K: 64, M: 16, Q: 4, Blocks: 4},
		Estimator: fam.FAM{Params: scf.Params{K: 64, M: 16}},
	})
	if err == nil {
		t.Fatal("short input should fail through the estimator path")
	}
}
