package soc

import (
	"testing"
)

func TestSweepCoresPaperGeometry(t *testing.T) {
	x := socSamples(63, 256)
	points, err := SweepCores(256, 64, []int{1, 2, 4, 8, 16}, x)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 5 {
		t.Fatalf("points %d", len(points))
	}
	// Q=1 and Q=2 are memory-infeasible at M=64 (E7).
	if points[0].Feasible || points[1].Feasible {
		t.Fatalf("Q=1/2 should be infeasible: %+v %+v", points[0], points[1])
	}
	// Q=4 is the paper's configuration.
	if !points[2].Feasible || points[2].CyclesPerBlock != 13996 {
		t.Fatalf("Q=4 point: %+v", points[2])
	}
	if points[2].T != 32 {
		t.Fatalf("Q=4 busiest tile tasks %d", points[2].T)
	}
	// MAC fraction at Q=4 is 12192/13996 ≈ 87%.
	if points[2].MACFraction < 0.85 || points[2].MACFraction > 0.9 {
		t.Fatalf("Q=4 MAC fraction %v", points[2].MACFraction)
	}
	// More cores shrink the block, but never below the serial floor.
	floor := SerialCycles(256, 64)
	if points[3].CyclesPerBlock >= points[2].CyclesPerBlock {
		t.Fatalf("Q=8 (%d) not faster than Q=4 (%d)", points[3].CyclesPerBlock, points[2].CyclesPerBlock)
	}
	if points[4].CyclesPerBlock >= points[3].CyclesPerBlock {
		t.Fatalf("Q=16 (%d) not faster than Q=8 (%d)", points[4].CyclesPerBlock, points[3].CyclesPerBlock)
	}
	for _, p := range points[2:] {
		if p.CyclesPerBlock <= floor {
			t.Fatalf("Q=%d cycles %d below serial floor %d", p.Q, p.CyclesPerBlock, floor)
		}
	}
}

func TestSerialCyclesPaper(t *testing.T) {
	// FFT 1040 + reshuffle 256 + init 127 + read data 381 = 1804: the
	// Q-independent floor of the paper's configuration.
	if got := SerialCycles(256, 64); got != 1804 {
		t.Fatalf("SerialCycles = %d, want 1804", got)
	}
}

func TestSweepCoresConsistentWithSchedule(t *testing.T) {
	// Measured block cycles at each feasible Q equal serial floor plus
	// busiest-tile MAC cycles.
	x := socSamples(64, 64)
	points, err := SweepCores(64, 16, []int{1, 2, 3, 4}, x)
	if err != nil {
		t.Fatal(err)
	}
	floor := SerialCycles(64, 16)
	for _, p := range points {
		if !p.Feasible {
			t.Fatalf("Q=%d unexpectedly infeasible", p.Q)
		}
		want := floor + int64(3*p.T*(2*16-1))
		if p.CyclesPerBlock != want {
			t.Fatalf("Q=%d cycles %d, want %d", p.Q, p.CyclesPerBlock, want)
		}
	}
}

func TestSweepCoresErrors(t *testing.T) {
	if _, err := SweepCores(64, 16, nil, nil); err == nil {
		t.Error("empty sweep should fail")
	}
	if _, err := SweepCores(64, 16, []int{0}, socSamples(1, 64)); err == nil {
		t.Error("zero core count should fail")
	}
	if _, err := SweepCores(64, 16, []int{2}, socSamples(1, 16)); err == nil {
		t.Error("short samples should fail")
	}
}
