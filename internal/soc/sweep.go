package soc

import (
	"fmt"

	"tiledcfd/internal/fixed"
)

// SweepPoint is one measured platform configuration of a core-count sweep.
type SweepPoint struct {
	Q              int
	T              int
	CyclesPerBlock int64
	// MACFraction is the share of the critical path spent in the MAC
	// loop; the remainder (FFT, reshuffle, init, read data) does not
	// shrink with Q and bounds the intra-platform speed-up.
	MACFraction float64
	// Feasible is false when the configuration exceeds the Montium
	// memory budget (the sweep records it instead of failing).
	Feasible bool
}

// SweepCores measures the per-block critical path for each core count by
// running one integration block per configuration on the given samples.
// Infeasible configurations (accumulators exceeding the 8K-word budget)
// are reported with Feasible=false and zero cycles.
//
// This is the ablation complementing the paper's section 5: *within* one
// platform, only the MAC loop scales with Q — the paper's linear-scaling
// claim is about replicating whole platforms, which the Bank type models.
func SweepCores(k, m int, qs []int, x []fixed.Complex) ([]SweepPoint, error) {
	if len(qs) == 0 {
		return nil, fmt.Errorf("soc: empty core-count sweep")
	}
	var out []SweepPoint
	for _, q := range qs {
		if q < 1 {
			return nil, fmt.Errorf("soc: core count %d must be >= 1", q)
		}
		cfg := Config{K: k, M: m, Q: q, Blocks: 1}.WithDefaults()
		if err := cfg.Validate(); err != nil {
			out = append(out, SweepPoint{Q: q, Feasible: false})
			continue
		}
		p, err := New(cfg)
		if err != nil {
			return nil, err
		}
		_, report, err := p.Run(x)
		if err != nil {
			return nil, err
		}
		point := SweepPoint{
			Q:              q,
			CyclesPerBlock: report.CyclesPerBlock,
			Feasible:       true,
		}
		// The busiest tile defines the critical path; take its breakdown.
		for _, tr := range report.Tiles {
			if tr.Table1.Total() == report.CyclesPerBlock {
				point.T = tr.Tasks
				point.MACFraction = float64(tr.Table1.MultiplyAccumulate) / float64(tr.Table1.Total())
				break
			}
		}
		out = append(out, point)
	}
	return out, nil
}

// SerialCycles returns the Q-independent part of the block critical path
// for the given geometry under the paper's cycle model: FFT + reshuffle +
// init + read data. As Q grows the block time approaches this floor.
func SerialCycles(k, m int) int64 {
	stages := 0
	for v := k; v > 1; v >>= 1 {
		stages++
	}
	fft := int64(k/2*stages + 2*stages)
	reshuffle := int64(k)
	init := int64(2*m - 1)
	readData := int64(3 * (2*m - 1))
	return fft + reshuffle + init + readData
}
