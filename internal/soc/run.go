package soc

import (
	"fmt"
	"sync"

	"tiledcfd/internal/fixed"
	"tiledcfd/internal/montium"
	"tiledcfd/internal/scf"
)

// lastActive returns the highest tile index that owns tasks; the folded
// line array ends there, and that tile injects X-chain values from its own
// spectrum.
func (p *Platform) lastActive() int {
	last := 0
	for q, c := range p.cores {
		if c.Config().OwnT() > 0 {
			last = q
		}
	}
	return last
}

// blockPrefix runs the per-block kernel sequence that precedes the MAC
// loop on one tile: sample load (uncounted DMA), FFT (complex or
// real-input per configuration), reshuffle, chain initialisation.
func blockPrefix(c *montium.Core, block []fixed.Complex, realFFT bool) error {
	if err := c.LoadSamples(block); err != nil {
		return err
	}
	if realFFT {
		if err := c.RunFFTRealInput(); err != nil {
			return err
		}
	} else if err := c.RunFFT(); err != nil {
		return err
	}
	if err := c.RunReshuffle(); err != nil {
		return err
	}
	return c.RunInit()
}

// sendBoundaries transmits tile q's outgoing pre-shift chain values.
func (p *Platform) sendBoundaries(q, last int) error {
	c := p.cores[q]
	if c.Config().OwnT() == 0 {
		return nil
	}
	xLow, cHigh, err := c.PeekBoundary()
	if err != nil {
		return err
	}
	if q > 0 {
		if err := p.fabric.XDown(q - 1).Send(xLow); err != nil {
			return err
		}
	}
	if q < last {
		if err := p.fabric.CUp(q + 1).Send(cHigh); err != nil {
			return err
		}
	}
	return nil
}

// recvBoundaries obtains tile q's incoming chain values for the shift of
// the given step: from neighbours over the NoC, or from the tile's own
// spectrum buffer at the array ends (injected bin index = step).
func (p *Platform) recvBoundaries(q, last, step int) (xIn, cIn fixed.Complex, err error) {
	c := p.cores[q]
	if q < last {
		if xIn, err = p.fabric.XDown(q).Recv(); err != nil {
			return
		}
	} else if xIn, err = c.SpectrumValue(step); err != nil {
		return
	}
	if q > 0 {
		cIn, err = p.fabric.CUp(q).Recv()
	} else {
		cIn, err = c.SpectrumValue(step)
	}
	return
}

// Run executes the platform with one goroutine per tile, tiles
// self-synchronising through the NoC links (the Go twin of the systolic
// pipeline). It returns the accumulated DSCF and the execution report.
func (p *Platform) Run(x []fixed.Complex) (*scf.FixedSurface, *Report, error) {
	if len(x) < p.samplesNeeded() {
		return nil, nil, fmt.Errorf("soc: need %d samples, have %d", p.samplesNeeded(), len(x))
	}
	last := p.lastActive()
	f := 2*p.cfg.M - 1
	perBlock := make([]montium.Table1, p.cfg.Q)
	errs := make([]error, p.cfg.Q)
	var wg sync.WaitGroup
	for q := range p.cores {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			c := p.cores[q]
			if c.Config().OwnT() == 0 {
				return // idle tile (Q > P): no tasks, no traffic
			}
			for n := 0; n < p.cfg.Blocks; n++ {
				block := x[n*p.cfg.K : (n+1)*p.cfg.K]
				if err := blockPrefix(c, block, p.cfg.RealInputFFT); err != nil {
					errs[q] = err
					p.fabric.Abort()
					return
				}
				for step := 0; step < f; step++ {
					var xIn, cIn fixed.Complex
					if step > 0 {
						if err := p.sendBoundaries(q, last); err != nil {
							errs[q] = err
							p.fabric.Abort()
							return
						}
						var err error
						if xIn, cIn, err = p.recvBoundaries(q, last, step); err != nil {
							errs[q] = err
							p.fabric.Abort()
							return
						}
					}
					if err := c.MACStep(step, xIn, cIn); err != nil {
						errs[q] = err
						p.fabric.Abort()
						return
					}
				}
				if n == 0 {
					perBlock[q] = c.Table1()
				}
			}
		}(q)
	}
	wg.Wait()
	p.flushTraces()
	for q, err := range errs {
		if err != nil {
			return nil, nil, fmt.Errorf("soc: tile %d failed: %w", q, err)
		}
	}
	surf, err := p.collectSurface()
	if err != nil {
		return nil, nil, err
	}
	return surf, p.report(perBlock), nil
}

// RunSync executes the platform as a deterministic lockstep interpreter:
// per time step, first every tile transmits its boundary values, then
// every tile receives and executes. It uses the same links and kernels as
// Run and produces bit-identical results; it exists as the reference
// engine and for environments where goroutine scheduling is unwanted.
func (p *Platform) RunSync(x []fixed.Complex) (*scf.FixedSurface, *Report, error) {
	if len(x) < p.samplesNeeded() {
		return nil, nil, fmt.Errorf("soc: need %d samples, have %d", p.samplesNeeded(), len(x))
	}
	last := p.lastActive()
	f := 2*p.cfg.M - 1
	perBlock := make([]montium.Table1, p.cfg.Q)
	active := make([]int, 0, p.cfg.Q)
	for q, c := range p.cores {
		if c.Config().OwnT() > 0 {
			active = append(active, q)
		}
	}
	for n := 0; n < p.cfg.Blocks; n++ {
		block := x[n*p.cfg.K : (n+1)*p.cfg.K]
		for _, q := range active {
			if err := blockPrefix(p.cores[q], block, p.cfg.RealInputFFT); err != nil {
				return nil, nil, fmt.Errorf("soc: tile %d failed: %w", q, err)
			}
		}
		for step := 0; step < f; step++ {
			if step > 0 {
				for _, q := range active {
					if err := p.sendBoundaries(q, last); err != nil {
						return nil, nil, fmt.Errorf("soc: tile %d failed: %w", q, err)
					}
				}
			}
			for _, q := range active {
				var xIn, cIn fixed.Complex
				if step > 0 {
					var err error
					if xIn, cIn, err = p.recvBoundaries(q, last, step); err != nil {
						return nil, nil, fmt.Errorf("soc: tile %d failed: %w", q, err)
					}
				}
				if err := p.cores[q].MACStep(step, xIn, cIn); err != nil {
					return nil, nil, fmt.Errorf("soc: tile %d failed: %w", q, err)
				}
			}
		}
		if n == 0 {
			for _, q := range active {
				perBlock[q] = p.cores[q].Table1()
			}
		}
	}
	p.flushTraces()
	surf, err := p.collectSurface()
	if err != nil {
		return nil, nil, err
	}
	return surf, p.report(perBlock), nil
}
