package soc

import (
	"testing"

	"tiledcfd/internal/fixed"
)

func benchBand(b *testing.B, blocks int) []fixed.Complex {
	b.Helper()
	return socSamples(9, 256*blocks)
}

// BenchmarkPlatformRunBlock times one integration step on the paper's
// 4-tile platform with the concurrent (goroutine-per-tile) engine.
func BenchmarkPlatformRunBlock(b *testing.B) {
	x := benchBand(b, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := New(Config{K: 256, M: 64, Q: 4, Blocks: 1})
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := p.Run(x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlatformRunSyncBlock times the lockstep reference engine on
// the same workload.
func BenchmarkPlatformRunSyncBlock(b *testing.B) {
	x := benchBand(b, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := New(Config{K: 256, M: 64, Q: 4, Blocks: 1})
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := p.RunSync(x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBankScaling times a 4-instance bank (16 cores) sensing four
// bands concurrently — the executed form of the section 5 scaling unit.
func BenchmarkBankScaling(b *testing.B) {
	bands := make([][]fixed.Complex, 4)
	for i := range bands {
		bands[i] = socSamples(uint64(20+i), 256)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bank, err := NewBank(Config{K: 256, M: 64, Q: 4, Blocks: 1}, 4)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := bank.Run(bands); err != nil {
			b.Fatal(err)
		}
	}
}
