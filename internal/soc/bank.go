package soc

import (
	"fmt"
	"sync"

	"tiledcfd/internal/fixed"
	"tiledcfd/internal/scf"
)

// Bank is a set of independent platform instances, each sensing its own
// band — the scaling unit of the paper's section 5 ("the analysed
// bandwidth, chip area and power consumption scale linearly with the
// number of Montium processors"). Instances run concurrently and share
// nothing.
type Bank struct {
	cfg       Config
	platforms []*Platform
}

// BandResult is the outcome of one instance's run.
type BandResult struct {
	Band    int
	Surface *scf.FixedSurface
	Report  *Report
}

// NewBank builds n independent platforms with the same configuration.
func NewBank(cfg Config, n int) (*Bank, error) {
	if n < 1 {
		return nil, fmt.Errorf("soc: bank needs at least 1 instance, got %d", n)
	}
	b := &Bank{cfg: cfg.WithDefaults()}
	for i := 0; i < n; i++ {
		p, err := New(cfg)
		if err != nil {
			return nil, err
		}
		b.platforms = append(b.platforms, p)
	}
	return b, nil
}

// Instances returns the number of platforms in the bank.
func (b *Bank) Instances() int { return len(b.platforms) }

// Run senses all bands concurrently; bands[i] feeds instance i. Each band
// needs K·Blocks samples. The aggregate consumed sample count (and hence
// analysed bandwidth) scales linearly with the instance count while the
// per-band latency stays that of a single platform — the measured form of
// the linear-scaling claim.
func (b *Bank) Run(bands [][]fixed.Complex) ([]BandResult, error) {
	if len(bands) != len(b.platforms) {
		return nil, fmt.Errorf("soc: bank has %d instances, got %d bands", len(b.platforms), len(bands))
	}
	results := make([]BandResult, len(bands))
	errs := make([]error, len(bands))
	var wg sync.WaitGroup
	for i := range bands {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			surf, report, err := b.platforms[i].Run(bands[i])
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = BandResult{Band: i, Surface: surf, Report: report}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("soc: band %d failed: %w", i, err)
		}
	}
	return results, nil
}

// AggregateSamples returns the total input samples one bank run consumes:
// instances × K × Blocks. Divided by the per-block critical path it gives
// the bank's aggregate sample rate.
func (b *Bank) AggregateSamples() int {
	return len(b.platforms) * b.cfg.K * b.cfg.Blocks
}
