package soc

import (
	"math/cmplx"
	"testing"

	"tiledcfd/internal/scf"
)

func TestPlatformRealInputFFT(t *testing.T) {
	// The executed real-FFT ablation at platform level: the block total
	// drops from 13996 to 13546 cycles and the DSCF stays within
	// fixed-point rounding of the complex-kernel platform.
	x := socSamples(71, 256) // real samples
	ref, err := New(Config{K: 256, M: 64, Q: 4, Blocks: 1})
	if err != nil {
		t.Fatal(err)
	}
	sref, rref, err := ref.Run(x)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := New(Config{K: 256, M: 64, Q: 4, Blocks: 1, RealInputFFT: true})
	if err != nil {
		t.Fatal(err)
	}
	sopt, ropt, err := opt.Run(x)
	if err != nil {
		t.Fatal(err)
	}
	if rref.CyclesPerBlock != 13996 {
		t.Fatalf("complex platform cycles %d", rref.CyclesPerBlock)
	}
	if ropt.CyclesPerBlock != 13546 {
		t.Fatalf("real-FFT platform cycles %d, want 13546", ropt.CyclesPerBlock)
	}
	if ropt.Tiles[0].Table1.FFT != 590 {
		t.Fatalf("real-FFT row %d, want 590", ropt.Tiles[0].Table1.FFT)
	}
	// Surfaces agree within a few LSB per cell (different rounding paths).
	worst := 0.0
	for ai := range sref.Data {
		for fi := range sref.Data[ai] {
			d := cmplx.Abs(sref.Data[ai][fi].Complex128() - sopt.Data[ai][fi].Complex128())
			if d > worst {
				worst = d
			}
		}
	}
	if worst > 5e-3 {
		t.Fatalf("real-FFT surface deviates by %g", worst)
	}
}

func TestPlatformRealInputFFTRejectsComplexSamples(t *testing.T) {
	p, err := New(Config{K: 64, M: 16, Q: 2, Blocks: 1, RealInputFFT: true})
	if err != nil {
		t.Fatal(err)
	}
	// Complex (non-real) input must fail cleanly through the tile error path.
	x := socSamples(73, 64)
	for i := range x {
		x[i].Im = 7 // force non-real
	}
	if _, _, err := p.Run(x); err == nil {
		t.Fatal("complex samples with RealInputFFT should fail")
	}
}

func TestPlatformRealInputFFTStillDetects(t *testing.T) {
	// End-to-end sanity: the optimised platform produces a usable DSCF.
	x := socSamples(75, 64*4)
	p, err := New(Config{K: 64, M: 16, Q: 2, Blocks: 4, RealInputFFT: true})
	if err != nil {
		t.Fatal(err)
	}
	surf, _, err := p.Run(x)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := scf.ComputeFixed(x, scf.Params{K: 64, M: 16, Blocks: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Close to the complex-kernel reference (not bit-exact).
	worst := 0.0
	for ai := range surf.Data {
		for fi := range surf.Data[ai] {
			d := cmplx.Abs(surf.Data[ai][fi].Complex128() - ref.Data[ai][fi].Complex128())
			if d > worst {
				worst = d
			}
		}
	}
	if worst > 5e-3 {
		t.Fatalf("optimised platform deviates from reference by %g", worst)
	}
}
