package soc

import (
	"testing"

	"tiledcfd/internal/fixed"
	"tiledcfd/internal/scf"
	"tiledcfd/internal/trace"
)

func TestBankRunsIndependentBands(t *testing.T) {
	cfg := Config{K: 64, M: 16, Q: 2, Blocks: 2}
	const n = 3
	bank, err := NewBank(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	if bank.Instances() != n {
		t.Fatalf("instances %d", bank.Instances())
	}
	bands := make([][]fixed.Complex, n)
	for i := range bands {
		bands[i] = socSamples(uint64(100+i), 64*2)
	}
	results, err := bank.Run(bands)
	if err != nil {
		t.Fatal(err)
	}
	// Every band must be bit-exact against its own reference, and the
	// per-band critical path must equal the single-platform one (latency
	// does not degrade with scale).
	single, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, soloReport, err := single.Run(bands[0])
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		want, err := scf.ComputeFixed(bands[i], scf.Params{K: 64, M: 16, Blocks: 2})
		if err != nil {
			t.Fatal(err)
		}
		if ok, diag := res.Surface.Equal(want); !ok {
			t.Fatalf("band %d deviates: %s", i, diag)
		}
		if res.Report.CyclesPerBlock != soloReport.CyclesPerBlock {
			t.Fatalf("band %d cycles %d != solo %d", i, res.Report.CyclesPerBlock, soloReport.CyclesPerBlock)
		}
	}
	// Aggregate throughput scales linearly: n × the single-platform
	// sample count for the same wall-clock (cycle) budget.
	if bank.AggregateSamples() != n*64*2 {
		t.Fatalf("aggregate samples %d", bank.AggregateSamples())
	}
}

func TestBankErrors(t *testing.T) {
	if _, err := NewBank(Config{K: 64, M: 16, Q: 2}, 0); err == nil {
		t.Error("zero instances should fail")
	}
	if _, err := NewBank(Config{K: 256, M: 64, Q: 1}, 2); err == nil {
		t.Error("infeasible config should fail")
	}
	bank, err := NewBank(Config{K: 64, M: 16, Q: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bank.Run(make([][]fixed.Complex, 1)); err == nil {
		t.Error("band count mismatch should fail")
	}
	if _, err := bank.Run([][]fixed.Complex{make([]fixed.Complex, 4), make([]fixed.Complex, 4)}); err == nil {
		t.Error("short bands should fail")
	}
}

func TestPlatformTrace(t *testing.T) {
	p, err := New(Config{K: 64, M: 16, Q: 2, Blocks: 1})
	if err != nil {
		t.Fatal(err)
	}
	var rec trace.Recorder
	p.EnableTrace(&rec)
	_, report, err := p.Run(socSamples(61, 64))
	if err != nil {
		t.Fatal(err)
	}
	// Trace totals match the report per tile.
	for q, tr := range report.Tiles {
		name := "tile" + string(rune('0'+q))
		if got := rec.TotalIn(name, ""); got != tr.Cycles {
			t.Errorf("%s trace total %d, report %d", name, got, tr.Cycles)
		}
	}
	if rec.Len() == 0 {
		t.Fatal("no spans recorded")
	}
}
