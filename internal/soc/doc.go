// Package soc assembles the full AAF platform of the paper's step 2: Q
// Montium tiles (internal/montium) connected by the line-topology NoC
// (internal/noc), executing the folded CFD mapping end to end.
//
// Per integration block every tile runs the same kernel sequence the
// paper's Table 1 accounts for — FFT (1040 cycles at K=256), reshuffle
// (256), chain initialisation (127), then F = 127 time steps of up to
// T = 32 multiply-accumulates (3 cycles each) preceded by a 3-cycle
// read-data phase in which the chains shift one position and boundary
// values cross the NoC.
//
// Two execution engines produce bit-identical results:
//
//   - RunSync: a deterministic lockstep interpreter, the reference;
//   - Run: one goroutine per tile with channel links, the natural Go
//     realisation of the systolic pipeline — tiles self-synchronise
//     through the flow-controlled links exactly like the hardware, and no
//     global barrier exists.
//
// The Report captures, per tile, the measured Table 1, total cycles, ALU
// operation counts, and NoC traffic; platform-level figures (cycles per
// block, the 139.96 µs integration step, the communication/compute ratio
// of experiment E12) derive from it via internal/perf.
package soc
