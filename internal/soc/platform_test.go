package soc

import (
	"strings"
	"testing"

	"tiledcfd/internal/fixed"
	"tiledcfd/internal/montium"
	"tiledcfd/internal/scf"
	"tiledcfd/internal/sig"
)

func socSamples(seed uint64, n int) []fixed.Complex {
	rng := sig.NewRand(seed)
	x := sig.Samples(&sig.WGN{Sigma: 0.4, Real: true, Rng: rng}, n)
	return fixed.FromFloatSlice(x)
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.K != 256 || c.M != 64 || c.Q != 4 || c.Blocks != 1 || c.ClockMHz != 100 || c.LinkDepth != 1 {
		t.Fatalf("defaults: %+v", c)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("paper defaults invalid: %v", err)
	}
}

func TestConfigValidationRejectsOversized(t *testing.T) {
	// Q=1 at the paper grid exceeds the Montium memory budget (E7).
	c := Config{K: 256, M: 64, Q: 1}.WithDefaults()
	if err := c.Validate(); err == nil {
		t.Fatal("Q=1 at M=64 should fail validation")
	}
	if _, err := New(Config{K: 256, M: 64, Q: 1}); err == nil {
		t.Fatal("New should propagate budget failure")
	}
	if err := (Config{K: 64, M: 16, Q: 2, Blocks: -1, ClockMHz: 100, LinkDepth: 1}).Validate(); err == nil {
		t.Fatal("negative blocks should fail")
	}
	if err := (Config{K: 64, M: 16, Q: 2, Blocks: 1, ClockMHz: -5, LinkDepth: 1}).Validate(); err == nil {
		t.Fatal("negative clock should fail")
	}
}

func TestRunMatchesReferencePaperConfig(t *testing.T) {
	// E8/E9 data path: the concurrent 4-tile platform must produce the
	// bit-exact reference DSCF.
	cfg := Config{K: 256, M: 64, Q: 4, Blocks: 2}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := socSamples(51, 256*2)
	got, report, err := p.Run(x)
	if err != nil {
		t.Fatal(err)
	}
	want, err := scf.ComputeFixed(x, scf.Params{K: 256, M: 64, Blocks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ok, diag := got.Equal(want); !ok {
		t.Fatalf("platform deviates from reference: %s", diag)
	}
	if report.CyclesPerBlock != 13996 {
		t.Fatalf("cycles per block %d, want 13996", report.CyclesPerBlock)
	}
}

func TestRunDeterministicAcrossSchedules(t *testing.T) {
	// The concurrent engine's result must not depend on goroutine
	// scheduling: repeated runs are bit-identical in data and counters.
	cfg := Config{K: 64, M: 16, Q: 4, Blocks: 2}
	x := socSamples(50, 64*2)
	var ref *scf.FixedSurface
	var refNoC int64
	for i := 0; i < 5; i++ {
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s, r, err := p.Run(x)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref, refNoC = s, r.NoCSent
			continue
		}
		if ok, diag := s.Equal(ref); !ok {
			t.Fatalf("run %d differs: %s", i, diag)
		}
		if r.NoCSent != refNoC {
			t.Fatalf("run %d NoC count %d != %d", i, r.NoCSent, refNoC)
		}
	}
}

func TestRunSyncMatchesRun(t *testing.T) {
	cfg := Config{K: 64, M: 16, Q: 3, Blocks: 3}
	x := socSamples(52, 64*3)
	pa, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sa, ra, err := pa.Run(x)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sb, rb, err := pb.RunSync(x)
	if err != nil {
		t.Fatal(err)
	}
	if ok, diag := sa.Equal(sb); !ok {
		t.Fatalf("concurrent and sync engines disagree: %s", diag)
	}
	if ra.CyclesPerBlock != rb.CyclesPerBlock {
		t.Fatalf("cycle accounting differs: %d vs %d", ra.CyclesPerBlock, rb.CyclesPerBlock)
	}
	if ra.NoCSent != rb.NoCSent {
		t.Fatalf("NoC accounting differs: %d vs %d", ra.NoCSent, rb.NoCSent)
	}
}

func TestTable1FromPlatform(t *testing.T) {
	// E8: the platform-measured per-block Table 1 equals the paper's.
	p, err := New(Config{K: 256, M: 64, Q: 4, Blocks: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, report, err := p.Run(socSamples(53, 256))
	if err != nil {
		t.Fatal(err)
	}
	want := montium.PaperTable1()
	if report.Tiles[0].Table1 != want {
		t.Fatalf("tile 0 Table 1:\n%s\nwant:\n%s", report.Tiles[0].Table1, want)
	}
	// All fully loaded tiles identical; last tile lighter in MAC row only.
	for q := 1; q < 3; q++ {
		if report.Tiles[q].Table1 != want {
			t.Fatalf("tile %d Table 1 differs", q)
		}
	}
	if report.Tiles[3].Table1.MultiplyAccumulate != 127*31*3 {
		t.Fatalf("tile 3 MAC cycles %d", report.Tiles[3].Table1.MultiplyAccumulate)
	}
}

func TestCommComputeRatio(t *testing.T) {
	// E12: data exchange rate is a factor >= T lower than the compute
	// rate. Per block: each interior link carries 126 values; each fully
	// loaded tile executes 4064 MACs.
	p, err := New(Config{K: 256, M: 64, Q: 4, Blocks: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, report, err := p.Run(socSamples(54, 256))
	if err != nil {
		t.Fatal(err)
	}
	// 6 links x 126 shifts.
	if report.NoCSent != 756 {
		t.Fatalf("NoC sent %d, want 756", report.NoCSent)
	}
	if report.NoCSent != report.NoCReceived {
		t.Fatalf("sent %d != received %d", report.NoCSent, report.NoCReceived)
	}
	if report.TotalMACs != 127*127 {
		t.Fatalf("total MACs %d", report.TotalMACs)
	}
	// Per tile per step: <= 2 values sent vs T MACs executed.
	perTileSent := float64(report.NoCSent) / 4
	perTileMACs := float64(report.TotalMACs) / 4
	if perTileMACs/perTileSent < 16 { // T/2 = 16 with 2 values per shift
		t.Fatalf("comm/compute ratio too low: %v", perTileMACs/perTileSent)
	}
}

func TestRunShortInput(t *testing.T) {
	p, err := New(Config{K: 64, M: 16, Q: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Run(make([]fixed.Complex, 10)); err == nil {
		t.Fatal("short input should fail")
	}
	if _, _, err := p.RunSync(make([]fixed.Complex, 10)); err == nil {
		t.Fatal("short input should fail in sync mode")
	}
}

func TestBrokenLinkPropagates(t *testing.T) {
	p, err := New(Config{K: 64, M: 16, Q: 2, Blocks: 1})
	if err != nil {
		t.Fatal(err)
	}
	p.Fabric().Links()[0].Break()
	_, _, err = p.Run(socSamples(55, 64))
	if err == nil {
		t.Fatal("broken link must fail the run")
	}
	if !strings.Contains(err.Error(), "tile") {
		t.Fatalf("error should name the failing tile: %v", err)
	}
}

func TestIdleTilesWithManyCores(t *testing.T) {
	// Q=8 on a small grid: trailing tiles idle, result still exact.
	cfg := Config{K: 64, M: 4, Q: 8, Blocks: 1} // P=7, T=1, 7 active
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := socSamples(56, 64)
	got, report, err := p.Run(x)
	if err != nil {
		t.Fatal(err)
	}
	want, err := scf.ComputeFixed(x, scf.Params{K: 64, M: 4, Blocks: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ok, diag := got.Equal(want); !ok {
		t.Fatalf("idle-tile platform deviates: %s", diag)
	}
	if report.Tiles[7].MACs != 0 {
		t.Fatal("idle tile executed MACs")
	}
}

func TestSingleTilePlatform(t *testing.T) {
	cfg := Config{K: 64, M: 16, Q: 1, Blocks: 2}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := socSamples(57, 128)
	got, report, err := p.Run(x)
	if err != nil {
		t.Fatal(err)
	}
	want, err := scf.ComputeFixed(x, scf.Params{K: 64, M: 16, Blocks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ok, diag := got.Equal(want); !ok {
		t.Fatalf("single tile deviates: %s", diag)
	}
	if report.NoCSent != 0 {
		t.Fatalf("single tile sent %d NoC values", report.NoCSent)
	}
}

func TestReportContents(t *testing.T) {
	p, err := New(Config{K: 64, M: 16, Q: 2, Blocks: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, report, err := p.Run(socSamples(58, 128))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Tiles) != 2 {
		t.Fatalf("tile reports: %d", len(report.Tiles))
	}
	tr := report.Tiles[0]
	if tr.Tasks != 16 { // P=31, T=16
		t.Fatalf("tile 0 tasks %d, want 16", tr.Tasks)
	}
	if tr.Cycles <= 0 || tr.MACs <= 0 || tr.Butterflies <= 0 || tr.Moves <= 0 {
		t.Fatalf("counters not populated: %+v", tr)
	}
	if tr.MemReads == 0 || tr.MemWrites == 0 {
		t.Fatal("memory traffic not populated")
	}
	// Two blocks: total cycles = 2x the per-block total.
	if tr.Cycles != 2*tr.Table1.Total() {
		t.Fatalf("cycles %d != 2x block total %d", tr.Cycles, tr.Table1.Total())
	}
}
