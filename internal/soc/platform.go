package soc

import (
	"fmt"

	"tiledcfd/internal/montium"
	"tiledcfd/internal/noc"
	"tiledcfd/internal/scf"
	"tiledcfd/internal/trace"
)

// Config describes a platform run.
type Config struct {
	// K is the FFT size (256 in the paper).
	K int
	// M is the DSCF grid half-extent (64 in the paper).
	M int
	// Q is the number of Montium tiles (4 in the paper).
	Q int
	// Blocks is the number of integration steps to accumulate.
	Blocks int
	// ClockMHz is the tile clock (100 MHz in the paper); used only for
	// reporting, never for simulation timing.
	ClockMHz float64
	// LinkDepth is the NoC link buffer depth (default 1).
	LinkDepth int
	// RealInputFFT selects the real-input FFT kernel (590 instead of
	// 1040 cycles at K=256). Only valid when the input samples are real;
	// an extension ablation, not the paper's configuration.
	RealInputFFT bool
}

// WithDefaults fills zero fields with the paper's configuration.
func (c Config) WithDefaults() Config {
	if c.K == 0 {
		c.K = 256
	}
	if c.M == 0 {
		c.M = c.K / 4
	}
	if c.Q == 0 {
		c.Q = 4
	}
	if c.Blocks == 0 {
		c.Blocks = 1
	}
	if c.ClockMHz == 0 {
		c.ClockMHz = 100
	}
	if c.LinkDepth == 0 {
		c.LinkDepth = 1
	}
	return c
}

// Validate checks the configuration by constructing the per-tile CFD
// configurations (which enforce the memory budgets).
func (c Config) Validate() error {
	if c.Blocks < 1 {
		return fmt.Errorf("soc: Blocks=%d must be >= 1", c.Blocks)
	}
	if c.ClockMHz <= 0 {
		return fmt.Errorf("soc: ClockMHz=%v must be positive", c.ClockMHz)
	}
	for q := 0; q < c.Q; q++ {
		if _, err := montium.NewCFDConfig(c.K, c.M, c.Q, q); err != nil {
			return err
		}
	}
	return nil
}

// TileReport captures one tile's measured execution.
type TileReport struct {
	// Tile is the core index q.
	Tile int
	// Tasks is the number of logical tasks the tile owns.
	Tasks int
	// Table1 is the per-integration-step cycle breakdown (first block).
	Table1 montium.Table1
	// Cycles is the total cycle count over all blocks.
	Cycles int64
	// MACs, Butterflies and Moves are ALU operation totals.
	MACs, Butterflies, Moves int64
	// MemReads/MemWrites sum the tile's memory port activity.
	MemReads, MemWrites int64
}

// Report captures a full platform run.
type Report struct {
	Config Config
	Tiles  []TileReport
	// CyclesPerBlock is the per-integration-step critical path: the
	// busiest tile's Table 1 total (13996 for the paper's configuration).
	CyclesPerBlock int64
	// NoCSent/NoCReceived are total boundary values crossing the fabric.
	NoCSent, NoCReceived int64
	// TotalMACs sums MACs over tiles and blocks.
	TotalMACs int64
}

// Platform is a configured tiled SoC.
type Platform struct {
	cfg    Config
	cores  []*montium.Core
	fabric *noc.Fabric
}

// New builds a platform: Q Montium tiles with CFD configurations and the
// line-topology NoC.
func New(cfg Config) (*Platform, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	fabric, err := noc.NewFabric(cfg.Q, cfg.LinkDepth)
	if err != nil {
		return nil, err
	}
	p := &Platform{cfg: cfg, fabric: fabric}
	for q := 0; q < cfg.Q; q++ {
		mc, err := montium.NewCFDConfig(cfg.K, cfg.M, cfg.Q, q)
		if err != nil {
			return nil, err
		}
		core := montium.NewCore(q)
		if err := core.ConfigureCFD(mc); err != nil {
			return nil, err
		}
		p.cores = append(p.cores, core)
	}
	return p, nil
}

// Config returns the effective (defaulted) configuration.
func (p *Platform) Config() Config { return p.cfg }

// Fabric exposes the NoC (for traffic inspection and fault injection).
func (p *Platform) Fabric() *noc.Fabric { return p.fabric }

// Cores exposes the tiles (read-only use intended).
func (p *Platform) Cores() []*montium.Core { return p.cores }

// EnableTrace attaches a span recorder to every tile (sources "tile0",
// "tile1", ...). Call before Run/RunSync; spans are flushed when the run
// completes.
func (p *Platform) EnableTrace(r *trace.Recorder) {
	for q, c := range p.cores {
		c.SetTracer(r, fmt.Sprintf("tile%d", q))
	}
}

// flushTraces closes any open spans on all tiles.
func (p *Platform) flushTraces() {
	for _, c := range p.cores {
		c.FlushTrace()
	}
}

// samplesNeeded returns the required input length.
func (p *Platform) samplesNeeded() int { return p.cfg.K * p.cfg.Blocks }

// collectSurface assembles the DSCF from the tiles' accumulator memories.
func (p *Platform) collectSurface() (*scf.FixedSurface, error) {
	m := p.cfg.M
	f := 2*m - 1
	surf := scf.NewFixedSurface(m)
	for _, c := range p.cores {
		cfg := c.Config()
		for i := 0; i < cfg.OwnT(); i++ {
			a := cfg.LoA + i
			for fi := 0; fi < f; fi++ {
				v, err := c.AccumulatorAt(i, fi)
				if err != nil {
					return nil, err
				}
				surf.Data[a+m-1][fi] = v
			}
		}
	}
	return surf, nil
}

// report assembles the run report after execution.
func (p *Platform) report(perBlock []montium.Table1) *Report {
	r := &Report{Config: p.cfg}
	for q, c := range p.cores {
		reads, writes := c.MemoryTraffic()
		tr := TileReport{
			Tile:        q,
			Tasks:       c.Config().OwnT(),
			Table1:      perBlock[q],
			Cycles:      c.Cycles(),
			MACs:        c.MACs,
			Butterflies: c.Butterflies,
			Moves:       c.Moves,
			MemReads:    reads,
			MemWrites:   writes,
		}
		r.Tiles = append(r.Tiles, tr)
		if t := perBlock[q].Total(); t > r.CyclesPerBlock {
			r.CyclesPerBlock = t
		}
		r.TotalMACs += c.MACs
	}
	r.NoCSent, r.NoCReceived = p.fabric.Totals()
	return r
}
