package fft

import (
	"math"
	"math/cmplx"
)

// DFT computes the forward discrete Fourier transform of x by direct
// O(n²) evaluation. It accepts any length and serves as the ground truth
// for FFT tests.
func DFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for v := 0; v < n; v++ {
		var sum complex128
		for k := 0; k < n; k++ {
			sum += x[k] * cmplx.Exp(complex(0, -2*math.Pi*float64(k)*float64(v)/float64(n)))
		}
		out[v] = sum
	}
	return out
}

// IDFT computes the inverse discrete Fourier transform (1/n normalised) of
// x by direct evaluation.
func IDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for v := 0; v < n; v++ {
			sum += x[v] * cmplx.Exp(complex(0, 2*math.Pi*float64(k)*float64(v)/float64(n)))
		}
		out[k] = sum / complex(float64(n), 0)
	}
	return out
}

// Bin returns the spectrum entry for a possibly negative bin index v,
// interpreting the length-n spectrum X as periodic: Bin(X, -1) is X[n-1].
// The DSCF addresses bins f±a with f,a spanning negative values; this
// helper centralises the wrap-around.
func Bin(x []complex128, v int) complex128 {
	n := len(x)
	v %= n
	if v < 0 {
		v += n
	}
	return x[v]
}

// BinIndex maps a possibly negative bin index to its position in a
// length-n spectrum slice.
func BinIndex(n, v int) int {
	v %= n
	if v < 0 {
		v += n
	}
	return v
}
