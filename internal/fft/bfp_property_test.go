package fft

import (
	"math"
	"math/rand"
	"testing"

	"tiledcfd/internal/fixed"
)

// bfpPropertyInputs builds the structured blocks the scaled-FFT property
// tests sweep: degenerate shapes that historically stress fixed-point
// FFTs (zero, impulse, rail constants, alternating rails, a quantised
// tone) plus seeded random fills.
func bfpPropertyInputs(n int) map[string][]fixed.Complex {
	mk := func(f func(i int) fixed.Complex) []fixed.Complex {
		v := make([]fixed.Complex, n)
		for i := range v {
			v[i] = f(i)
		}
		return v
	}
	rng := rand.New(rand.NewSource(int64(n)))
	return map[string][]fixed.Complex{
		"zero": mk(func(int) fixed.Complex { return fixed.Complex{} }),
		"impulse": mk(func(i int) fixed.Complex {
			if i == 0 {
				return fixed.Complex{Re: fixed.MaxQ15}
			}
			return fixed.Complex{}
		}),
		"rail": mk(func(int) fixed.Complex { return fixed.Complex{Re: fixed.MaxQ15, Im: fixed.MinQ15} }),
		"altRail": mk(func(i int) fixed.Complex {
			if i%2 == 0 {
				return fixed.Complex{Re: fixed.MaxQ15, Im: fixed.MaxQ15}
			}
			return fixed.Complex{Re: fixed.MinQ15, Im: fixed.MinQ15}
		}),
		"tone": mk(func(i int) fixed.Complex {
			ph := 2 * math.Pi * 3 * float64(i) / float64(n)
			return fixed.CFromFloat(complex(0.7*math.Cos(ph), 0.7*math.Sin(ph)))
		}),
		"weak": mk(func(i int) fixed.Complex {
			return fixed.Complex{Re: fixed.Q15(rng.Intn(17) - 8), Im: fixed.Q15(rng.Intn(17) - 8)}
		}),
		"random": mk(func(int) fixed.Complex {
			return fixed.Complex{Re: fixed.Q15(rng.Intn(1<<16) - 1<<15), Im: fixed.Q15(rng.Intn(1<<16) - 1<<15)}
		}),
	}
}

// TestForwardScaledKernelInvariant is the deterministic counterpart of
// FuzzForwardScaledKernels: across sizes, structured inputs and both
// scaling policies, every fixed.Kernels implementation must produce the
// same output words and the same exponent, and ScaleUniform must stay
// bit-identical to the Montium-style Forward with exponent log2(n).
func TestForwardScaledKernelInvariant(t *testing.T) {
	for _, n := range []int{4, 16, 64, 256} {
		p, err := NewFixedPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		for name, src := range bfpPropertyInputs(n) {
			for _, policy := range []ScalingPolicy{ScaleBFP, ScaleUniform} {
				a := make([]fixed.Complex, n)
				b := make([]fixed.Complex, n)
				ea, err := p.ForwardScaledWith(fixed.ScalarKernels{}, a, src, policy)
				if err != nil {
					t.Fatal(err)
				}
				eb, err := p.ForwardScaledWith(fixed.SWARKernels{}, b, src, policy)
				if err != nil {
					t.Fatal(err)
				}
				if ea != eb {
					t.Fatalf("n=%d %s %v: exponent %d (scalar) != %d (swar)", n, name, policy, ea, eb)
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("n=%d %s %v: element %d: %+v (scalar) != %+v (swar)",
							n, name, policy, i, a[i], b[i])
					}
				}
				if policy == ScaleUniform {
					c := make([]fixed.Complex, n)
					if err := p.Forward(c, src); err != nil {
						t.Fatal(err)
					}
					if ea != p.Stages() {
						t.Fatalf("n=%d %s: uniform exponent %d != stages %d", n, name, ea, p.Stages())
					}
					for i := range a {
						if a[i] != c[i] {
							t.Fatalf("n=%d %s: uniform element %d: %+v != Forward %+v", n, name, i, a[i], c[i])
						}
					}
				}
			}
		}
	}
}

// TestForwardScaledBFPExponentBounds pins the dynamic-range property BFP
// exists for: the tracked exponent stays within two bits of the uniform
// policy's log2(n) even for rail-valued inputs (the initial peak can
// demand a two-bit pre-shift before the first stage), and a weak block —
// too small for any stage's worst-case growth to reach the overflow
// guard — comes through with exponent 0, every significant bit intact.
func TestForwardScaledBFPExponentBounds(t *testing.T) {
	for _, n := range []int{4, 16, 64, 256} {
		p, err := NewFixedPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		for name, src := range bfpPropertyInputs(n) {
			dst := make([]fixed.Complex, n)
			exp, err := p.ForwardScaled(dst, src, ScaleBFP)
			if err != nil {
				t.Fatal(err)
			}
			if exp < 0 || exp > p.Stages()+2 {
				t.Errorf("n=%d %s: BFP exponent %d outside [0, %d]", n, name, exp, p.Stages()+2)
			}
			if name == "weak" && exp != 0 {
				t.Errorf("n=%d: weak block scaled by 2^%d; want no shift", n, exp)
			}
		}
	}
}

// TestForwardScaledBatchMatchesSingle checks the batched entry point the
// Q15 estimators feed whole snapshots through is nothing but the
// per-block transform: identical words and exponents, in order.
func TestForwardScaledBatchMatchesSingle(t *testing.T) {
	const n = 64
	p, err := NewFixedPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	inputs := bfpPropertyInputs(n)
	for _, policy := range []ScalingPolicy{ScaleBFP, ScaleUniform} {
		var batch [][]fixed.Complex
		var single [][]fixed.Complex
		var names []string
		for name, src := range inputs {
			batch = append(batch, append([]fixed.Complex(nil), src...))
			single = append(single, append([]fixed.Complex(nil), src...))
			names = append(names, name)
		}
		exps, err := p.ForwardScaledBatch(batch, policy)
		if err != nil {
			t.Fatal(err)
		}
		for bi := range single {
			e, err := p.ForwardScaled(single[bi], single[bi], policy)
			if err != nil {
				t.Fatal(err)
			}
			if e != exps[bi] {
				t.Fatalf("%v %s: batch exponent %d != single %d", policy, names[bi], exps[bi], e)
			}
			for i := range single[bi] {
				if batch[bi][i] != single[bi][i] {
					t.Fatalf("%v %s: batch element %d differs from single transform", policy, names[bi], i)
				}
			}
		}
	}
}

// TestForwardScaledAllocs guards the batched strip path's allocation
// behaviour: the per-block transform is allocation-free and the batch
// wrapper allocates only its exponent slice, independent of the batch
// size — the property that lets the estimators push every channelizer
// hop of a snapshot through one invocation without per-hop garbage.
func TestForwardScaledAllocs(t *testing.T) {
	const n, blocks = 256, 64
	p, err := NewFixedPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	kern := fixed.Active()
	rng := rand.New(rand.NewSource(9))
	fill := func(v []fixed.Complex) {
		for i := range v {
			v[i] = fixed.Complex{Re: fixed.Q15(rng.Intn(1<<16) - 1<<15), Im: fixed.Q15(rng.Intn(1<<16) - 1<<15)}
		}
	}
	buf := make([]fixed.Complex, n)
	fill(buf)
	if a := testing.AllocsPerRun(20, func() {
		if _, err := p.ForwardScaledWith(kern, buf, buf, ScaleBFP); err != nil {
			t.Fatal(err)
		}
	}); a != 0 {
		t.Errorf("ForwardScaledWith allocates %v times per call, want 0", a)
	}
	batch := make([][]fixed.Complex, blocks)
	for i := range batch {
		batch[i] = make([]fixed.Complex, n)
		fill(batch[i])
	}
	if a := testing.AllocsPerRun(20, func() {
		if _, err := p.ForwardScaledBatchWith(kern, batch, ScaleBFP); err != nil {
			t.Fatal(err)
		}
	}); a > 1 {
		t.Errorf("ForwardScaledBatchWith(%d blocks) allocates %v times per call, want <= 1", blocks, a)
	}
}
