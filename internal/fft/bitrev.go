package fft

import "fmt"

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// Pow2Floor returns the largest power of two not exceeding n, or 0 when
// n < 1 — the smoothing-length rule the time-smoothing estimators and
// the tile pipeline models share.
func Pow2Floor(n int) int {
	p := 0
	for c := 1; c <= n && c > 0; c *= 2 {
		p = c
	}
	return p
}

// Log2 returns log2(n) for a positive power of two n, or an error.
func Log2(n int) (int, error) {
	if !IsPow2(n) {
		return 0, fmt.Errorf("fft: size %d is not a positive power of two", n)
	}
	b := 0
	for v := n; v > 1; v >>= 1 {
		b++
	}
	return b, nil
}

// bitrevTable returns the bit-reversal permutation for size n (a power of
// two): table[i] is i with its log2(n) low bits reversed.
func bitrevTable(n int) []int {
	bits, _ := Log2(n)
	t := make([]int, n)
	for i := range t {
		r := 0
		for b := 0; b < bits; b++ {
			r = (r << 1) | ((i >> b) & 1)
		}
		t[i] = r
	}
	return t
}

// permuteInPlace applies the bit-reversal permutation to x in place by
// swapping each pair (i, rev[i]) once.
func permuteInPlace[T any](x []T, rev []int) {
	for i, r := range rev {
		if i < r {
			x[i], x[r] = x[r], x[i]
		}
	}
}
