package fft

import (
	"fmt"
	"math"
	"math/cmplx"
)

// RealForward computes the DFT of a real-valued sequence of length n
// using one complex FFT of length n/2 plus an O(n) untangling pass — the
// classic real-input optimisation. The paper's antenna samples are real
// (expression 1), so a Montium FFT kernel specialised this way would
// halve the 1040-cycle FFT row; the ablation benchmarks quantify that.
//
// The returned spectrum has the full n bins (the upper half is the
// conjugate mirror, included for drop-in compatibility with Plan.Forward).
func RealForward(x []float64) ([]complex128, error) {
	n := len(x)
	if n < 4 || !IsPow2(n) {
		return nil, fmt.Errorf("fft: real size %d must be a power of two >= 4", n)
	}
	h := n / 2
	// Pack even/odd samples into a complex sequence.
	z := make([]complex128, h)
	for i := 0; i < h; i++ {
		z[i] = complex(x[2*i], x[2*i+1])
	}
	plan, err := NewPlan(h)
	if err != nil {
		return nil, err
	}
	zf := make([]complex128, h)
	if err := plan.Forward(zf, z); err != nil {
		return nil, err
	}
	// Untangle: X[k] = E[k] + e^{-j2πk/n}·O[k], where
	// E[k] = (Z[k]+conj(Z[h-k]))/2 and O[k] = -j(Z[k]-conj(Z[h-k]))/2.
	out := make([]complex128, n)
	for k := 0; k <= h/2; k++ {
		km := (h - k) % h
		e := (zf[k] + cmplx.Conj(zf[km])) / 2
		o := (zf[k] - cmplx.Conj(zf[km])) / complex(0, 2)
		w := cmplx.Exp(complex(0, -2*math.Pi*float64(k)/float64(n)))
		out[k] = e + w*o
		// Mirror partner within the lower half: X[h-k] relates to the
		// conjugate-reversed combination.
		if k != 0 {
			wm := cmplx.Exp(complex(0, -2*math.Pi*float64(h-k)/float64(n)))
			em := (zf[km] + cmplx.Conj(zf[k])) / 2
			om := (zf[km] - cmplx.Conj(zf[k])) / complex(0, 2)
			out[h-k] = em + wm*om
		}
	}
	// Nyquist bin: X[h] = E[0] - O[0].
	e0 := real(zf[0])
	o0 := imag(zf[0])
	out[h] = complex(e0-o0, 0)
	// Upper half by conjugate symmetry of real input.
	for k := 1; k < h; k++ {
		out[n-k] = cmplx.Conj(out[k])
	}
	return out, nil
}

// RealComplexMults returns the complex-multiplication count of the
// real-input transform: a half-size FFT plus the n/2 twiddle products of
// the untangling pass.
func RealComplexMults(n int) int {
	if !IsPow2(n) || n < 4 {
		return 0
	}
	return ComplexMults(n/2) + n/2
}
