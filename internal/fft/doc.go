// Package fft provides the discrete Fourier transforms used throughout the
// reproduction: a float64 radix-2 FFT for reference computations, a slow
// reference DFT for testing, and a Q15 fixed-point FFT that is
// bit-identical to the FFT kernel executed by the Montium core model.
//
// # Conventions
//
// The forward transform uses the engineering sign convention
//
//	X[v] = Σ_{k=0}^{K-1} x[k] · e^{-j2πkv/K}
//
// and applies no normalisation; the inverse applies 1/K. The paper's
// expression 2 uses e^{+j…}, which is the global complex conjugate of this
// convention; the Discrete Spectral Correlation Function magnitudes are
// unaffected (see docs/PAPER_MAPPING.md).
//
// # Caching
//
// All float64 transform state is cached process-wide and shared:
//
//   - Roots(n) returns the e^{-j2πi/n} roots-of-unity table for size n,
//     computed once. It doubles as the derotation/downconversion table the
//     estimator hot paths index (Roots(n)[p mod n] = e^{-j2πp/n} for any
//     integer p, reduced exactly in integer arithmetic) instead of calling
//     cmplx.Exp per sample. RootIdx reduces negative exponents.
//   - PlanFor(n) returns the shared immutable Plan for size n; FFT and
//     IFFT route through it. Plans are safe for concurrent use.
//   - GetScratch/PutScratch pool length-n work buffers, keeping repeated
//     estimator calls at zero steady-state scratch allocation.
//
// NewPlan remains available for callers that want a private plan.
//
// The fixed-point transform (FixedPlan) scales by 1/2 after every
// butterfly stage, so its output is DFT(x)/K. This is the unconditional
// block-scaling policy used by 16-bit DSP FFT kernels to make overflow
// impossible, and it is the policy assumed by the paper's 1040-cycle
// 256-point Montium FFT. The same fixed.BFly primitive is used here and in
// internal/montium so the two implementations agree bit for bit.
package fft
