package fft

import (
	"fmt"
	"math"
)

// WindowKind selects an analysis window shape.
type WindowKind int

// Supported window shapes.
const (
	// Rectangular is the implicit window of the paper's expression 2.
	Rectangular WindowKind = iota
	// Hann is the raised-cosine window.
	Hann
	// Hamming is the 25/46 raised-cosine window.
	Hamming
	// Blackman is the three-term Blackman window.
	Blackman
)

// String returns the window's conventional name.
func (w WindowKind) String() string {
	switch w {
	case Rectangular:
		return "rectangular"
	case Hann:
		return "hann"
	case Hamming:
		return "hamming"
	case Blackman:
		return "blackman"
	default:
		return fmt.Sprintf("WindowKind(%d)", int(w))
	}
}

// Window returns the n coefficients of the requested window. The
// rectangular window is all ones. Periodic (DFT-even) forms are used, as
// appropriate for spectral estimation.
func Window(kind WindowKind, n int) ([]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("fft: window size %d must be positive", n)
	}
	w := make([]float64, n)
	switch kind {
	case Rectangular:
		for i := range w {
			w[i] = 1
		}
	case Hann:
		for i := range w {
			w[i] = 0.5 - 0.5*math.Cos(2*math.Pi*float64(i)/float64(n))
		}
	case Hamming:
		for i := range w {
			w[i] = 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(n))
		}
	case Blackman:
		for i := range w {
			c := 2 * math.Pi * float64(i) / float64(n)
			w[i] = 0.42 - 0.5*math.Cos(c) + 0.08*math.Cos(2*c)
		}
	default:
		return nil, fmt.Errorf("fft: unknown window kind %d", int(kind))
	}
	return w, nil
}

// ApplyWindow multiplies x elementwise by the window coefficients,
// returning a new slice. Lengths must match.
func ApplyWindow(x []complex128, w []float64) ([]complex128, error) {
	if len(x) != len(w) {
		return nil, fmt.Errorf("fft: window length %d != signal length %d", len(w), len(x))
	}
	out := make([]complex128, len(x))
	if err := ApplyWindowInto(out, x, w); err != nil {
		return nil, err
	}
	return out, nil
}

// ApplyWindowInto multiplies x elementwise by the window coefficients into
// dst (which may alias x), allocating nothing. All lengths must match.
// This is the hot-path form: estimators call it per block with a pooled
// dst.
func ApplyWindowInto(dst, x []complex128, w []float64) error {
	if len(x) != len(w) || len(dst) != len(x) {
		return fmt.Errorf("fft: window length %d != signal length %d/%d", len(w), len(x), len(dst))
	}
	for i := range x {
		dst[i] = x[i] * complex(w[i], 0)
	}
	return nil
}
