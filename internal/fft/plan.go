package fft

import (
	"fmt"
	"math/cmplx"
)

// Plan holds precomputed tables for float64 transforms of one size.
// A Plan is safe for concurrent use once created (its tables are never
// mutated after NewPlan).
type Plan struct {
	n   int
	rev []int
	// tw[s] holds the twiddles of stage s (span 2<<s): e^{-j2πi/(2<<s)}.
	tw [][]complex128
}

// NewPlan creates transform tables for size n, which must be a power of
// two not smaller than 2.
func NewPlan(n int) (*Plan, error) {
	if n < 2 {
		return nil, fmt.Errorf("fft: size %d too small (need >= 2)", n)
	}
	stages, err := Log2(n)
	if err != nil {
		return nil, err
	}
	// Every stage's twiddles are a stride through the size-n roots table:
	// stage s, index i needs e^{-j2πi/span} = Roots(n)[i·(n/span)].
	roots, err := Roots(n)
	if err != nil {
		return nil, err
	}
	p := &Plan{n: n, rev: bitrevTable(n), tw: make([][]complex128, stages)}
	for s := 0; s < stages; s++ {
		span := 2 << s
		half := span / 2
		stride := n / span
		w := make([]complex128, half)
		for i := 0; i < half; i++ {
			w[i] = roots[i*stride]
		}
		p.tw[s] = w
	}
	return p, nil
}

// Size returns the transform length of the plan.
func (p *Plan) Size() int { return p.n }

// Forward computes the unnormalised forward DFT of src into dst. dst and
// src must both have length Size(); they may alias each other.
func (p *Plan) Forward(dst, src []complex128) error {
	if len(src) != p.n || len(dst) != p.n {
		return fmt.Errorf("fft: Forward length %d/%d, plan size %d", len(dst), len(src), p.n)
	}
	if &dst[0] != &src[0] {
		copy(dst, src)
	}
	permuteInPlace(dst, p.rev)
	for s := range p.tw {
		span := 2 << s
		half := span / 2
		w := p.tw[s]
		for base := 0; base < p.n; base += span {
			for i := 0; i < half; i++ {
				a := dst[base+i]
				b := dst[base+i+half] * w[i]
				dst[base+i] = a + b
				dst[base+i+half] = a - b
			}
		}
	}
	return nil
}

// Inverse computes the inverse DFT (with 1/N normalisation) of src into
// dst. dst and src may alias. It allocates nothing: the conjugation
// happens directly in dst, which then doubles as the Forward workspace.
func (p *Plan) Inverse(dst, src []complex128) error {
	if len(src) != p.n || len(dst) != p.n {
		return fmt.Errorf("fft: Inverse length %d/%d, plan size %d", len(dst), len(src), p.n)
	}
	// IDFT(x) = conj(DFT(conj(x)))/N.
	for i, v := range src {
		dst[i] = cmplx.Conj(v)
	}
	if err := p.Forward(dst, dst); err != nil {
		return err
	}
	inv := complex(1/float64(p.n), 0)
	for i, v := range dst {
		dst[i] = cmplx.Conj(v) * inv
	}
	return nil
}

// FFT is a convenience wrapper computing the forward transform of x into a
// new slice through the shared plan cache. The length of x must be a power
// of two.
func FFT(x []complex128) ([]complex128, error) {
	p, err := PlanFor(len(x))
	if err != nil {
		return nil, err
	}
	out := make([]complex128, len(x))
	if err := p.Forward(out, x); err != nil {
		return nil, err
	}
	return out, nil
}

// IFFT is a convenience wrapper computing the inverse transform of x into
// a new slice through the shared plan cache.
func IFFT(x []complex128) ([]complex128, error) {
	p, err := PlanFor(len(x))
	if err != nil {
		return nil, err
	}
	out := make([]complex128, len(x))
	if err := p.Inverse(out, x); err != nil {
		return nil, err
	}
	return out, nil
}

// ComplexMults returns the number of complex multiplications of a radix-2
// FFT of size n: (n/2)·log2(n). This is the operation count the paper uses
// in its section 2 complexity comparison.
func ComplexMults(n int) int {
	bits, err := Log2(n)
	if err != nil {
		return 0
	}
	return n / 2 * bits
}
