package fft

import (
	"fmt"
	"math/cmplx"
)

// Plan holds precomputed tables for float64 transforms of one size.
// A Plan is safe for concurrent use once created (its tables are never
// mutated after NewPlan).
type Plan struct {
	n   int
	rev []int
	// tw[s] holds the twiddles of stage s (span 2<<s): e^{-j2πi/(2<<s)}.
	tw [][]complex128
}

// NewPlan creates transform tables for size n, which must be a power of
// two not smaller than 2.
func NewPlan(n int) (*Plan, error) {
	if n < 2 {
		return nil, fmt.Errorf("fft: size %d too small (need >= 2)", n)
	}
	stages, err := Log2(n)
	if err != nil {
		return nil, err
	}
	// Every stage's twiddles are a stride through the size-n roots table:
	// stage s, index i needs e^{-j2πi/span} = Roots(n)[i·(n/span)].
	roots, err := Roots(n)
	if err != nil {
		return nil, err
	}
	p := &Plan{n: n, rev: bitrevTable(n), tw: make([][]complex128, stages)}
	for s := 0; s < stages; s++ {
		span := 2 << s
		half := span / 2
		stride := n / span
		w := make([]complex128, half)
		for i := 0; i < half; i++ {
			w[i] = roots[i*stride]
		}
		p.tw[s] = w
	}
	return p, nil
}

// Size returns the transform length of the plan.
func (p *Plan) Size() int { return p.n }

// Forward computes the unnormalised forward DFT of src into dst. dst and
// src must both have length Size(); they may alias each other.
//
// The decimation-in-time pass is restructured for speed without changing
// the arithmetic: the bit-reversal is fused into the input gather when
// dst does not alias src, the first two stages (twiddles exactly 1 and
// -j, held exactly in the roots table) run multiply-free, every later
// stage replaces its w=1 and w=-j butterflies with plain moves, and the
// remaining butterflies work through capped sub-slices so they compile
// without bounds checks. Each output is produced by the same multiplies
// and adds in the same order as the textbook triple loop, so results
// match it exactly (trivial rotations can flip the sign of a zero, which
// compares equal).
func (p *Plan) Forward(dst, src []complex128) error {
	if len(src) != p.n || len(dst) != p.n {
		return fmt.Errorf("fft: Forward length %d/%d, plan size %d", len(dst), len(src), p.n)
	}
	// Stages 0 and 1 (spans 2 and 4) only ever rotate by 1 and -j (held
	// exactly in the roots table), so both run multiply-free — a -j
	// rotation is (im, -re) — and fused into one pass over each quad.
	// When dst does not alias src the input reordering folds in too:
	// bit-reversal is an involution, so the in-place swap pass and a
	// permuted gather produce the same ordering, and the gather feeds
	// each quad straight into its butterflies.
	if &dst[0] != &src[0] {
		rev := p.rev
		if p.n >= 4 {
			for i := 0; i < p.n; i += 4 {
				a, b := src[rev[i]], src[rev[i+1]]
				c, d := src[rev[i+2]], src[rev[i+3]]
				e0, e1 := a+b, a-b
				f0, f1 := c+d, c-d
				t := complex(imag(f1), -real(f1))
				dst[i], dst[i+2] = e0+f0, e0-f0
				dst[i+1], dst[i+3] = e1+t, e1-t
			}
		} else {
			a, b := src[rev[0]], src[rev[1]]
			dst[0], dst[1] = a+b, a-b
		}
	} else {
		permuteInPlace(dst, p.rev)
		if p.n >= 4 {
			for base := 0; base+4 <= p.n; base += 4 {
				q := dst[base : base+4 : base+4]
				a, b, c, d := q[0], q[1], q[2], q[3]
				e0, e1 := a+b, a-b
				f0, f1 := c+d, c-d
				t := complex(imag(f1), -real(f1))
				q[0], q[2] = e0+f0, e0-f0
				q[1], q[3] = e1+t, e1-t
			}
		} else {
			a, b := dst[0], dst[1]
			dst[0], dst[1] = a+b, a-b
		}
	}
	// Remaining stages run in fused pairs: stage s and s+1 handled in one
	// pass over each 4·h block (h = stage-s half-span), halving the trips
	// through memory. Within the pass every value is produced by exactly
	// the butterflies the two separate stages would apply, in the same
	// per-value order, so the fusion changes nothing numerically.
	s := 2
	for ; s+1 < len(p.tw); s += 2 {
		w1, w2 := p.tw[s], p.tw[s+1]
		h := len(w1)
		for base := 0; base < p.n; base += 4 * h {
			q0 := dst[base : base+h : base+h]
			q1 := dst[base+h : base+2*h : base+2*h]
			q2 := dst[base+2*h : base+3*h : base+3*h]
			q3 := dst[base+3*h : base+4*h : base+4*h]
			// i = 0: w1[0] = 1, w2[0] = 1, w2[h] = -j — all trivial.
			a, b := q0[0], q1[0]
			u0, u1 := a+b, a-b
			a, b = q2[0], q3[0]
			v0, v1 := a+b, a-b
			q0[0], q2[0] = u0+v0, u0-v0
			t := complex(imag(v1), -real(v1))
			q1[0], q3[0] = u1+t, u1-t
			for i := 1; i < h; i++ {
				var b1, b3 complex128
				if i == h/2 {
					// w1[h/2] = -j exactly.
					c1, c3 := q1[i], q3[i]
					b1 = complex(imag(c1), -real(c1))
					b3 = complex(imag(c3), -real(c3))
				} else {
					b1 = q1[i] * w1[i]
					b3 = q3[i] * w1[i]
				}
				a1, a3 := q0[i], q2[i]
				u0, u1 := a1+b1, a1-b1
				v0, v1 := a3+b3, a3-b3
				t0 := v0 * w2[i]
				t1 := v1 * w2[i+h]
				q0[i], q2[i] = u0+t0, u0-t0
				q1[i], q3[i] = u1+t1, u1-t1
			}
		}
	}
	// Odd stage count: one classic pass finishes the transform.
	for ; s < len(p.tw); s++ {
		w := p.tw[s]
		half := len(w)
		quarter := half / 2
		for base := 0; base < p.n; base += 2 * half {
			lo := dst[base : base+half : base+half]
			hi := dst[base+half : base+2*half : base+2*half]
			// i = 0: w[0] = 1, no multiply needed.
			a, b := lo[0], hi[0]
			lo[0], hi[0] = a+b, a-b
			// Butterflies within a stage touch disjoint cells, so the
			// two-at-a-time unroll changes no value — it only gives the
			// core independent work to overlap.
			for i := 1; i+1 < quarter; i += 2 {
				a0, a1 := lo[i], lo[i+1]
				b0 := hi[i] * w[i]
				b1 := hi[i+1] * w[i+1]
				lo[i], lo[i+1] = a0+b0, a1+b1
				hi[i], hi[i+1] = a0-b0, a1-b1
			}
			if quarter&1 == 0 && quarter > 1 {
				i := quarter - 1
				a := lo[i]
				b := hi[i] * w[i]
				lo[i] = a + b
				hi[i] = a - b
			}
			// i = half/2: w = -j exactly, another multiply-free rotation.
			a, c := lo[quarter], hi[quarter]
			b = complex(imag(c), -real(c))
			lo[quarter], hi[quarter] = a+b, a-b
			for i := quarter + 1; i+1 < half; i += 2 {
				a0, a1 := lo[i], lo[i+1]
				b0 := hi[i] * w[i]
				b1 := hi[i+1] * w[i+1]
				lo[i], lo[i+1] = a0+b0, a1+b1
				hi[i], hi[i+1] = a0-b0, a1-b1
			}
			if half&1 == 0 && half > quarter+1 {
				i := half - 1
				a := lo[i]
				b := hi[i] * w[i]
				lo[i] = a + b
				hi[i] = a - b
			}
		}
	}
	return nil
}

// Inverse computes the inverse DFT (with 1/N normalisation) of src into
// dst. dst and src may alias. It allocates nothing: the conjugation
// happens directly in dst, which then doubles as the Forward workspace.
func (p *Plan) Inverse(dst, src []complex128) error {
	if len(src) != p.n || len(dst) != p.n {
		return fmt.Errorf("fft: Inverse length %d/%d, plan size %d", len(dst), len(src), p.n)
	}
	// IDFT(x) = conj(DFT(conj(x)))/N.
	for i, v := range src {
		dst[i] = cmplx.Conj(v)
	}
	if err := p.Forward(dst, dst); err != nil {
		return err
	}
	inv := complex(1/float64(p.n), 0)
	for i, v := range dst {
		dst[i] = cmplx.Conj(v) * inv
	}
	return nil
}

// FFT is a convenience wrapper computing the forward transform of x into a
// new slice through the shared plan cache. The length of x must be a power
// of two.
func FFT(x []complex128) ([]complex128, error) {
	p, err := PlanFor(len(x))
	if err != nil {
		return nil, err
	}
	out := make([]complex128, len(x))
	if err := p.Forward(out, x); err != nil {
		return nil, err
	}
	return out, nil
}

// IFFT is a convenience wrapper computing the inverse transform of x into
// a new slice through the shared plan cache.
func IFFT(x []complex128) ([]complex128, error) {
	p, err := PlanFor(len(x))
	if err != nil {
		return nil, err
	}
	out := make([]complex128, len(x))
	if err := p.Inverse(out, x); err != nil {
		return nil, err
	}
	return out, nil
}

// ComplexMults returns the number of complex multiplications of a radix-2
// FFT of size n: (n/2)·log2(n). This is the operation count the paper uses
// in its section 2 complexity comparison.
func ComplexMults(n int) int {
	bits, err := Log2(n)
	if err != nil {
		return 0
	}
	return n / 2 * bits
}
