package fft

import (
	"testing"

	"tiledcfd/internal/fixed"
)

// FuzzForwardScaledKernels decodes raw bytes into a power-of-two Q15
// block and runs ForwardScaledWith through the scalar reference and
// SWAR kernels under both scaling policies, requiring identical output
// words and exponents. Under ScaleUniform it additionally checks the
// result is bit-identical to the scalar Forward pass (the Montium
// software twin), so kernel vectorization can never drift from the
// Table-1 reference datapath.
func FuzzForwardScaledKernels(f *testing.F) {
	rail := make([]byte, 64)
	for i := 0; i < len(rail); i += 2 {
		rail[i], rail[i+1] = 0x00, 0x80 // MinQ15 everywhere: worst-case growth
	}
	f.Add(rail)
	tie := make([]byte, 64)
	for i := 0; i < len(tie); i += 4 {
		tie[i], tie[i+1], tie[i+2], tie[i+3] = 0x01, 0x00, 0xff, 0xff // +1, -1: rounding-tie territory
	}
	f.Add(tie)
	f.Add([]byte{0xff, 0x7f, 0x00, 0x80, 0x00, 0x00, 0x01, 0x00})
	f.Fuzz(func(t *testing.T, raw []byte) {
		n := 2
		for n*2 <= len(raw)/4 && n < 256 {
			n *= 2
		}
		if len(raw) < 4*n {
			return
		}
		src := make([]fixed.Complex, n)
		for i := range src {
			src[i] = fixed.Complex{
				Re: fixed.Q15(int16(uint16(raw[4*i]) | uint16(raw[4*i+1])<<8)),
				Im: fixed.Q15(int16(uint16(raw[4*i+2]) | uint16(raw[4*i+3])<<8)),
			}
		}
		p, err := NewFixedPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		for _, policy := range []ScalingPolicy{ScaleBFP, ScaleUniform} {
			a := make([]fixed.Complex, n)
			b := make([]fixed.Complex, n)
			ea, err := p.ForwardScaledWith(fixed.ScalarKernels{}, a, src, policy)
			if err != nil {
				t.Fatal(err)
			}
			eb, err := p.ForwardScaledWith(fixed.SWARKernels{}, b, src, policy)
			if err != nil {
				t.Fatal(err)
			}
			if ea != eb {
				t.Fatalf("%v: exponent %d != %d", policy, ea, eb)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%v: element %d: %v != %v", policy, i, a[i], b[i])
				}
			}
			if policy == ScaleUniform {
				ref := make([]fixed.Complex, n)
				if err := p.Forward(ref, src); err != nil {
					t.Fatal(err)
				}
				for i := range ref {
					if a[i] != ref[i] {
						t.Fatalf("uniform element %d: %v != Forward's %v", i, a[i], ref[i])
					}
				}
			}
		}
	})
}
