package fft

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func TestRealForwardMatchesDFT(t *testing.T) {
	for _, n := range []int{4, 8, 16, 64, 256} {
		x := make([]float64, n)
		cx := make([]complex128, n)
		for i := range x {
			x[i] = math.Sin(0.37*float64(i)) + 0.5*math.Cos(1.1*float64(i)+0.2)
			cx[i] = complex(x[i], 0)
		}
		got, err := RealForward(x)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := DFT(cx)
		for v := range want {
			if cmplx.Abs(got[v]-want[v]) > 1e-9*float64(n) {
				t.Fatalf("n=%d bin %d: %v vs %v", n, v, got[v], want[v])
			}
		}
	}
}

func TestRealForwardConjugateSymmetry(t *testing.T) {
	const n = 64
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(i) * 0.7)
	}
	X, err := RealForward(x)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k < n/2; k++ {
		if cmplx.Abs(X[n-k]-cmplx.Conj(X[k])) > 1e-10 {
			t.Fatalf("symmetry broken at %d", k)
		}
	}
	if math.Abs(imag(X[0])) > 1e-12 || math.Abs(imag(X[n/2])) > 1e-12 {
		t.Fatal("DC / Nyquist bins must be real")
	}
}

func TestRealForwardErrors(t *testing.T) {
	if _, err := RealForward(make([]float64, 3)); err == nil {
		t.Error("non-pow2 should fail")
	}
	if _, err := RealForward(make([]float64, 2)); err == nil {
		t.Error("too small should fail")
	}
}

func TestRealComplexMultsHalvesWork(t *testing.T) {
	// E-ablation: real-input optimisation nearly halves the FFT work.
	full := ComplexMults(256)   // 1024
	re := RealComplexMults(256) // (128/2)·log2(128) + 128 = 448 + 128 = 576
	if re != 576 {
		t.Fatalf("RealComplexMults(256) = %d, want 576", re)
	}
	if float64(re) > 0.7*float64(full) {
		t.Fatalf("real transform not cheaper: %d vs %d", re, full)
	}
	if RealComplexMults(3) != 0 {
		t.Fatal("invalid size should count 0")
	}
}

// Property: RealForward equals the complex FFT of the same data for
// random real inputs.
func TestQuickRealForwardMatchesComplex(t *testing.T) {
	const n = 32
	f := func(vals [n]int8) bool {
		x := make([]float64, n)
		cx := make([]complex128, n)
		for i := range x {
			x[i] = float64(vals[i]) / 64
			cx[i] = complex(x[i], 0)
		}
		got, err := RealForward(x)
		if err != nil {
			return false
		}
		want, err := FFT(cx)
		if err != nil {
			return false
		}
		for v := range want {
			if cmplx.Abs(got[v]-want[v]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
