package fft

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func approxEqualSlices(t *testing.T, got, want []complex128, tol float64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", label, len(got), len(want))
	}
	for i := range got {
		if cmplx.Abs(got[i]-want[i]) > tol {
			t.Fatalf("%s: bin %d: got %v, want %v", label, i, got[i], want[i])
		}
	}
}

func TestIsPow2AndLog2(t *testing.T) {
	for _, c := range []struct {
		n    int
		pow2 bool
		log2 int
	}{
		{1, true, 0}, {2, true, 1}, {256, true, 8}, {1024, true, 10},
		{0, false, 0}, {-4, false, 0}, {3, false, 0}, {255, false, 0},
	} {
		if got := IsPow2(c.n); got != c.pow2 {
			t.Errorf("IsPow2(%d) = %v", c.n, got)
		}
		if c.pow2 {
			l, err := Log2(c.n)
			if err != nil || l != c.log2 {
				t.Errorf("Log2(%d) = %d, %v", c.n, l, err)
			}
		} else if _, err := Log2(c.n); err == nil {
			t.Errorf("Log2(%d) should fail", c.n)
		}
	}
}

func TestNewPlanRejectsBadSizes(t *testing.T) {
	for _, n := range []int{0, 1, 3, 6, 100} {
		if _, err := NewPlan(n); err == nil {
			t.Errorf("NewPlan(%d) should fail", n)
		}
	}
}

func TestForwardMatchesDFT(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16, 64, 256} {
		x := make([]complex128, n)
		for i := range x {
			// Deterministic but non-trivial test data.
			x[i] = complex(math.Sin(float64(3*i+1)), math.Cos(float64(7*i+2)))
		}
		got, err := FFT(x)
		if err != nil {
			t.Fatalf("FFT(%d): %v", n, err)
		}
		want := DFT(x)
		approxEqualSlices(t, got, want, 1e-9*float64(n), "fft vs dft")
	}
}

func TestImpulseHasFlatSpectrum(t *testing.T) {
	x := make([]complex128, 32)
	x[0] = 1
	X, err := FFT(x)
	if err != nil {
		t.Fatal(err)
	}
	for v, b := range X {
		if cmplx.Abs(b-1) > 1e-12 {
			t.Fatalf("impulse spectrum bin %d = %v, want 1", v, b)
		}
	}
}

func TestToneLandsInSingleBin(t *testing.T) {
	const n, bin = 64, 5
	x := make([]complex128, n)
	for k := range x {
		x[k] = cmplx.Exp(complex(0, 2*math.Pi*bin*float64(k)/n))
	}
	X, err := FFT(x)
	if err != nil {
		t.Fatal(err)
	}
	for v := range X {
		want := 0.0
		if v == bin {
			want = n
		}
		if math.Abs(cmplx.Abs(X[v])-want) > 1e-9 {
			t.Fatalf("tone bin %d magnitude %v, want %v", v, cmplx.Abs(X[v]), want)
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	const n = 128
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(math.Sin(float64(i)*0.7), math.Cos(float64(i)*1.3))
	}
	X, err := FFT(x)
	if err != nil {
		t.Fatal(err)
	}
	back, err := IFFT(X)
	if err != nil {
		t.Fatal(err)
	}
	approxEqualSlices(t, back, x, 1e-10, "ifft(fft(x))")
}

func TestForwardInPlaceAliasing(t *testing.T) {
	const n = 16
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(float64(i), -float64(i))
	}
	want := DFT(x)
	p, err := NewPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Forward(x, x); err != nil { // in place
		t.Fatal(err)
	}
	approxEqualSlices(t, x, want, 1e-10, "in-place fft")
}

func TestForwardLengthValidation(t *testing.T) {
	p, err := NewPlan(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Forward(make([]complex128, 4), make([]complex128, 8)); err == nil {
		t.Error("short dst should fail")
	}
	if err := p.Forward(make([]complex128, 8), make([]complex128, 4)); err == nil {
		t.Error("short src should fail")
	}
	if err := p.Inverse(make([]complex128, 8), make([]complex128, 4)); err == nil {
		t.Error("short inverse src should fail")
	}
}

func TestParseval(t *testing.T) {
	// Σ|x|² == (1/N)·Σ|X|².
	const n = 256
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(math.Sin(0.1*float64(i)), math.Sin(0.37*float64(i)+1))
	}
	X, err := FFT(x)
	if err != nil {
		t.Fatal(err)
	}
	var et, ef float64
	for i := range x {
		et += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		ef += real(X[i])*real(X[i]) + imag(X[i])*imag(X[i])
	}
	ef /= n
	if math.Abs(et-ef) > 1e-8*et {
		t.Fatalf("Parseval: time %v vs freq %v", et, ef)
	}
}

func TestComplexMults(t *testing.T) {
	// The paper: an FFT of N=2^n points needs (1/2)N·log2(N) complex mults.
	if got := ComplexMults(256); got != 1024 {
		t.Fatalf("ComplexMults(256) = %d, want 1024", got)
	}
	if got := ComplexMults(1024); got != 5120 {
		t.Fatalf("ComplexMults(1024) = %d, want 5120", got)
	}
	if got := ComplexMults(100); got != 0 {
		t.Fatalf("ComplexMults(non-pow2) = %d, want 0", got)
	}
}

func TestBinWraparound(t *testing.T) {
	x := []complex128{0, 1, 2, 3}
	if Bin(x, -1) != 3 {
		t.Errorf("Bin(-1) = %v", Bin(x, -1))
	}
	if Bin(x, 4) != 0 {
		t.Errorf("Bin(4) = %v", Bin(x, 4))
	}
	if Bin(x, -5) != 3 {
		t.Errorf("Bin(-5) = %v", Bin(x, -5))
	}
	if BinIndex(4, -1) != 3 || BinIndex(4, 5) != 1 || BinIndex(4, 0) != 0 {
		t.Error("BinIndex wraparound broken")
	}
}

// Property: linearity — FFT(a·x + b·y) == a·FFT(x) + b·FFT(y).
func TestQuickLinearity(t *testing.T) {
	const n = 32
	p, err := NewPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	f := func(xs, ys [n]float64, ar, br float64) bool {
		if math.IsNaN(ar) || math.IsInf(ar, 0) || math.IsNaN(br) || math.IsInf(br, 0) {
			return true
		}
		ar = math.Mod(ar, 8)
		br = math.Mod(br, 8)
		x := make([]complex128, n)
		y := make([]complex128, n)
		mix := make([]complex128, n)
		for i := 0; i < n; i++ {
			xv := math.Mod(xs[i], 4)
			yv := math.Mod(ys[i], 4)
			if math.IsNaN(xv) || math.IsNaN(yv) {
				return true
			}
			x[i] = complex(xv, -yv)
			y[i] = complex(yv, xv)
			mix[i] = complex(ar, 0)*x[i] + complex(br, 0)*y[i]
		}
		X := make([]complex128, n)
		Y := make([]complex128, n)
		M := make([]complex128, n)
		if p.Forward(X, x) != nil || p.Forward(Y, y) != nil || p.Forward(M, mix) != nil {
			return false
		}
		for i := 0; i < n; i++ {
			want := complex(ar, 0)*X[i] + complex(br, 0)*Y[i]
			if cmplx.Abs(M[i]-want) > 1e-7*(1+cmplx.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: a circular shift in time multiplies the spectrum by a phase
// ramp: FFT(shift(x, s))[v] == FFT(x)[v] · e^{-j2πsv/N}.
func TestQuickShiftTheorem(t *testing.T) {
	const n = 16
	p, err := NewPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	f := func(vals [n]int8, shift uint8) bool {
		s := int(shift) % n
		x := make([]complex128, n)
		sh := make([]complex128, n)
		for i := 0; i < n; i++ {
			x[i] = complex(float64(vals[i])/16, float64(vals[(i+3)%n])/16)
		}
		for i := 0; i < n; i++ {
			sh[i] = x[(i-s+n)%n]
		}
		X := make([]complex128, n)
		S := make([]complex128, n)
		if p.Forward(X, x) != nil || p.Forward(S, sh) != nil {
			return false
		}
		for v := 0; v < n; v++ {
			phase := cmplx.Exp(complex(0, -2*math.Pi*float64(s)*float64(v)/n))
			if cmplx.Abs(S[v]-X[v]*phase) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
