package fft

import (
	"fmt"
	"math"
	"sync"
)

// This file is the process-wide transform cache: roots-of-unity tables,
// shared plans, and pooled scratch buffers. Together they remove the two
// steady-state costs the estimator hot paths used to pay per call — table
// construction (NewPlan) and per-sample cmplx.Exp evaluation — leaving
// only table lookups and butterflies on the hot paths.

var (
	rootsCache   sync.Map // int -> []complex128
	planCache    sync.Map // int -> *Plan
	scratchPools sync.Map // int -> *sync.Pool of *[]complex128
)

// Roots returns the cached roots-of-unity table for size n:
// Roots(n)[i] = e^{-j2πi/n} for i in [0, n). The table serves both as the
// twiddle source for plans and as the derotation/downconversion table the
// estimators index instead of calling cmplx.Exp per sample — a rotation by
// e^{-j2π·p/n} for any integer p is Roots(n)[p mod n], exact for
// arbitrarily large p because the reduction happens in integers.
//
// The table is computed once per size, shared process-wide, and must be
// treated as read-only. n need not be a power of two.
func Roots(n int) ([]complex128, error) {
	if n < 1 {
		return nil, fmt.Errorf("fft: roots table size %d must be >= 1", n)
	}
	if v, ok := rootsCache.Load(n); ok {
		return v.([]complex128), nil
	}
	r := make([]complex128, n)
	for i := range r {
		ang := -2 * math.Pi * float64(i) / float64(n)
		r[i] = complex(math.Cos(ang), math.Sin(ang))
	}
	// Snap the axis roots to their exact values: cos/sin of the rounded
	// angles leave ~1e-16 dirt in the components that are mathematically
	// zero (and a -0 imaginary part at i=0). Exact axis entries let the
	// transform kernels turn multiplies by 1 and -j into plain moves.
	r[0] = 1
	if n%2 == 0 {
		r[n/2] = -1
	}
	if n%4 == 0 {
		r[n/4] = complex(0, -1)
		r[3*n/4] = complex(0, 1)
	}
	v, _ := rootsCache.LoadOrStore(n, r)
	return v.([]complex128), nil
}

// RootIdx reduces an arbitrary integer exponent to its table index:
// Roots(n)[RootIdx(p, n)] = e^{-j2πp/n} for any p, including negative.
func RootIdx(p, n int) int {
	p %= n
	if p < 0 {
		p += n
	}
	return p
}

// PlanFor returns the shared plan for size n, building it on first use.
// Plans are immutable after construction, so the returned plan is safe for
// concurrent use by any number of goroutines.
func PlanFor(n int) (*Plan, error) {
	if v, ok := planCache.Load(n); ok {
		return v.(*Plan), nil
	}
	p, err := NewPlan(n)
	if err != nil {
		return nil, err
	}
	v, _ := planCache.LoadOrStore(n, p)
	return v.(*Plan), nil
}

func poolFor(n int) *sync.Pool {
	if v, ok := scratchPools.Load(n); ok {
		return v.(*sync.Pool)
	}
	p := &sync.Pool{New: func() any {
		s := make([]complex128, n)
		return &s
	}}
	v, _ := scratchPools.LoadOrStore(n, p)
	return v.(*sync.Pool)
}

// GetScratch returns a length-n scratch buffer (dirty: callers must not
// assume any particular contents) from the process-wide pool, to be
// returned with PutScratch when done. The pointer form lets the same
// header cell round-trip through the pool, so a steady-state Get/Put
// cycle allocates nothing.
func GetScratch(n int) *[]complex128 {
	return poolFor(n).Get().(*[]complex128)
}

// PutScratch returns a buffer obtained from GetScratch to its pool.
// A nil or empty buffer is ignored.
func PutScratch(buf *[]complex128) {
	if buf == nil || len(*buf) == 0 {
		return
	}
	poolFor(len(*buf)).Put(buf)
}
