package fft

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestRootsValues(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 60, 256} {
		r, err := Roots(n)
		if err != nil {
			t.Fatal(err)
		}
		if len(r) != n {
			t.Fatalf("Roots(%d) length %d", n, len(r))
		}
		for i := range r {
			want := cmplx.Exp(complex(0, -2*math.Pi*float64(i)/float64(n)))
			if cmplx.Abs(r[i]-want) > 1e-15 {
				t.Fatalf("Roots(%d)[%d] = %v, want %v", n, i, r[i], want)
			}
		}
	}
	if _, err := Roots(0); err == nil {
		t.Error("Roots(0) should fail")
	}
}

func TestRootsCached(t *testing.T) {
	a, err := Roots(64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Roots(64)
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Error("Roots(64) returned distinct tables on repeat call")
	}
}

func TestRootIdx(t *testing.T) {
	r, err := Roots(16)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{-33, -16, -1, 0, 1, 15, 16, 17, 1000003} {
		idx := RootIdx(p, 16)
		if idx < 0 || idx >= 16 {
			t.Fatalf("RootIdx(%d, 16) = %d out of range", p, idx)
		}
		want := cmplx.Exp(complex(0, -2*math.Pi*float64(p)/16))
		if cmplx.Abs(r[idx]-want) > 1e-9 {
			t.Fatalf("Roots(16)[RootIdx(%d)] = %v, want %v", p, r[idx], want)
		}
	}
}

func TestPlanForCachedAndEquivalent(t *testing.T) {
	p1, err := PlanFor(32)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := PlanFor(32)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("PlanFor(32) returned distinct plans on repeat call")
	}
	if _, err := PlanFor(12); err == nil {
		t.Error("PlanFor(12) should fail (not a power of two)")
	}
	// A cached plan must transform identically to a private one.
	priv, err := NewPlan(32)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]complex128, 32)
	for i := range x {
		x[i] = complex(math.Sin(0.3*float64(i)), math.Cos(0.1*float64(i)))
	}
	a := make([]complex128, 32)
	b := make([]complex128, 32)
	if err := p1.Forward(a, x); err != nil {
		t.Fatal(err)
	}
	if err := priv.Forward(b, x); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cached and private plans disagree at bin %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestScratchPoolRoundTrip(t *testing.T) {
	s := GetScratch(128)
	if len(*s) != 128 {
		t.Fatalf("GetScratch(128) length %d", len(*s))
	}
	PutScratch(s)
	PutScratch(nil) // harmless
	s2 := GetScratch(128)
	if len(*s2) != 128 {
		t.Fatalf("recycled scratch length %d", len(*s2))
	}
	PutScratch(s2)
}

func TestForwardZeroAllocs(t *testing.T) {
	p, err := PlanFor(256)
	if err != nil {
		t.Fatal(err)
	}
	src := make([]complex128, 256)
	dst := make([]complex128, 256)
	for i := range src {
		src[i] = complex(float64(i%7), float64(i%5))
	}
	if a := testing.AllocsPerRun(20, func() {
		if err := p.Forward(dst, src); err != nil {
			t.Fatal(err)
		}
	}); a != 0 {
		t.Errorf("Plan.Forward allocates %v times per call, want 0", a)
	}
}

func TestInverseZeroAllocs(t *testing.T) {
	p, err := PlanFor(256)
	if err != nil {
		t.Fatal(err)
	}
	src := make([]complex128, 256)
	dst := make([]complex128, 256)
	for i := range src {
		src[i] = complex(float64(i%7), float64(i%5))
	}
	if a := testing.AllocsPerRun(20, func() {
		if err := p.Inverse(dst, src); err != nil {
			t.Fatal(err)
		}
	}); a != 0 {
		t.Errorf("Plan.Inverse allocates %v times per call, want 0", a)
	}
}

func TestInverseAliasedRoundTrip(t *testing.T) {
	p, err := PlanFor(64)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]complex128, 64)
	for i := range x {
		x[i] = complex(math.Cos(0.2*float64(i)), math.Sin(0.7*float64(i)))
	}
	orig := make([]complex128, 64)
	copy(orig, x)
	// Forward then inverse fully in place must return the input.
	if err := p.Forward(x, x); err != nil {
		t.Fatal(err)
	}
	if err := p.Inverse(x, x); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if cmplx.Abs(x[i]-orig[i]) > 1e-12 {
			t.Fatalf("in-place round trip diverges at %d: %v vs %v", i, x[i], orig[i])
		}
	}
}
