package fft

import (
	"math"
	"testing"

	"tiledcfd/internal/fixed"
)

func benchInput(n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(0.4*math.Sin(0.31*float64(i)), 0.4*math.Cos(0.17*float64(i)))
	}
	return x
}

func BenchmarkPlanForward256(b *testing.B) {
	p, err := NewPlan(256)
	if err != nil {
		b.Fatal(err)
	}
	x := benchInput(256)
	dst := make([]complex128, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Forward(dst, x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanForward1024(b *testing.B) {
	p, err := NewPlan(1024)
	if err != nil {
		b.Fatal(err)
	}
	x := benchInput(1024)
	dst := make([]complex128, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Forward(dst, x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFixedForward256(b *testing.B) {
	p, err := NewFixedPlan(256)
	if err != nil {
		b.Fatal(err)
	}
	x := fixed.FromFloatSlice(benchInput(256))
	dst := make([]fixed.Complex, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Forward(dst, x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDFT64(b *testing.B) {
	x := benchInput(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DFT(x)
	}
}
