package fft

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"tiledcfd/internal/fixed"
)

func TestNewFixedPlanRejectsBadSizes(t *testing.T) {
	for _, n := range []int{0, 1, 3, 100} {
		if _, err := NewFixedPlan(n); err == nil {
			t.Errorf("NewFixedPlan(%d) should fail", n)
		}
	}
}

func TestFixedForwardMatchesScaledDFT(t *testing.T) {
	for _, n := range []int{4, 16, 64, 256} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(0.4*math.Sin(0.31*float64(i)), 0.4*math.Cos(0.17*float64(i)))
		}
		fx := fixed.FromFloatSlice(x)
		p, err := NewFixedPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]fixed.Complex, n)
		if err := p.Forward(out, fx); err != nil {
			t.Fatal(err)
		}
		want := DFT(x)
		// Output is DFT/n; quantisation noise grows ~ sqrt(stages).
		tol := 6e-4
		for v := range out {
			got := out[v].Complex128()
			ref := want[v] / complex(float64(n), 0)
			if cmplx.Abs(got-ref) > tol {
				t.Fatalf("n=%d bin %d: fixed %v, want %v (|d|=%g)", n, v, got, ref, cmplx.Abs(got-ref))
			}
		}
	}
}

func TestFixedForwardImpulse(t *testing.T) {
	const n = 16
	x := make([]fixed.Complex, n)
	x[0] = fixed.Complex{Re: fixed.MaxQ15, Im: 0}
	p, err := NewFixedPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]fixed.Complex, n)
	if err := p.Forward(out, x); err != nil {
		t.Fatal(err)
	}
	// DFT of impulse is flat at amplitude 1; scaled by 1/n -> 1/16.
	want := fixed.MaxQ15.Float() / n
	for v := range out {
		if math.Abs(out[v].Re.Float()-want) > 3e-4 || math.Abs(out[v].Im.Float()) > 3e-4 {
			t.Fatalf("bin %d = %v, want ~(%v, 0)", v, out[v].Complex128(), want)
		}
	}
}

func TestFixedForwardNeverOverflows(t *testing.T) {
	// Full-scale alternating input is the classic FFT overflow stressor;
	// with per-stage scaling every intermediate stays in range and the
	// energy lands in the Nyquist bin.
	const n = 64
	x := make([]fixed.Complex, n)
	for i := range x {
		v := fixed.MaxQ15
		if i%2 == 1 {
			v = fixed.MinQ15
		}
		x[i] = fixed.Complex{Re: v, Im: v}
	}
	p, err := NewFixedPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]fixed.Complex, n)
	if err := p.Forward(out, x); err != nil {
		t.Fatal(err)
	}
	// All bins except n/2 must be ~0; bin n/2 must be ~full scale.
	for v := range out {
		mag := out[v].Abs()
		if v == n/2 {
			if mag < 1.3 { // |(1+1j)| = 1.41 scaled slightly by quantisation
				t.Fatalf("Nyquist bin magnitude %v too small", mag)
			}
		} else if mag > 0.01 {
			t.Fatalf("bin %d magnitude %v, want ~0", v, mag)
		}
	}
}

func TestFixedPlanAccessors(t *testing.T) {
	p, err := NewFixedPlan(256)
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 256 || p.Stages() != 8 {
		t.Fatalf("size/stages = %d/%d", p.Size(), p.Stages())
	}
	if got := p.ForwardButterflies(); got != 1024 {
		t.Fatalf("ForwardButterflies = %d, want 1024 (128 per stage x 8)", got)
	}
	if len(p.StageTwiddles(0)) != 1 || len(p.StageTwiddles(7)) != 128 {
		t.Fatal("stage twiddle table sizes wrong")
	}
	if len(p.BitrevTable()) != 256 {
		t.Fatal("bitrev table size wrong")
	}
}

func TestFixedTwiddlesUnitMagnitude(t *testing.T) {
	for _, span := range []int{2, 8, 256} {
		tw := FixedTwiddles(span)
		for i, w := range tw {
			mag := w.Abs()
			if mag > 1.0001 || mag < 0.9995 {
				t.Fatalf("span %d twiddle %d magnitude %v", span, i, mag)
			}
		}
		// First twiddle is exactly ~1+0j.
		if tw[0].Re != fixed.MaxQ15 || tw[0].Im != 0 {
			t.Fatalf("span %d twiddle 0 = %+v", span, tw[0])
		}
	}
}

// Property: the fixed FFT tracks the scaled float FFT within quantisation
// tolerance for random half-scale inputs.
func TestQuickFixedMatchesFloat(t *testing.T) {
	const n = 32
	p, err := NewFixedPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := NewPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	f := func(vals [2 * n]int16) bool {
		x := make([]complex128, n)
		fx := make([]fixed.Complex, n)
		for i := 0; i < n; i++ {
			// Half scale to stay well inside the representable range.
			re := fixed.Q15(vals[2*i] / 2)
			im := fixed.Q15(vals[2*i+1] / 2)
			fx[i] = fixed.Complex{Re: re, Im: im}
			x[i] = fx[i].Complex128()
		}
		out := make([]fixed.Complex, n)
		if p.Forward(out, fx) != nil {
			return false
		}
		X := make([]complex128, n)
		if fp.Forward(X, x) != nil {
			return false
		}
		for v := 0; v < n; v++ {
			if cmplx.Abs(out[v].Complex128()-X[v]/n) > 1.5e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestWindowShapes(t *testing.T) {
	for _, kind := range []WindowKind{Rectangular, Hann, Hamming, Blackman} {
		w, err := Window(kind, 64)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if len(w) != 64 {
			t.Fatalf("%v: length %d", kind, len(w))
		}
		for i, v := range w {
			if v < -1e-12 || v > 1+1e-12 {
				t.Fatalf("%v[%d] = %v out of [0,1]", kind, i, v)
			}
		}
	}
	// Rectangular is all ones; Hann starts at 0.
	r, _ := Window(Rectangular, 8)
	if r[0] != 1 || r[7] != 1 {
		t.Error("rectangular window should be all ones")
	}
	h, _ := Window(Hann, 8)
	if h[0] != 0 {
		t.Error("hann window should start at 0")
	}
	if _, err := Window(WindowKind(99), 8); err == nil {
		t.Error("unknown window should fail")
	}
	if _, err := Window(Hann, 0); err == nil {
		t.Error("zero-size window should fail")
	}
}

func TestWindowNames(t *testing.T) {
	if Rectangular.String() != "rectangular" || Hann.String() != "hann" ||
		Hamming.String() != "hamming" || Blackman.String() != "blackman" {
		t.Error("window names wrong")
	}
	if WindowKind(42).String() == "" {
		t.Error("unknown window name empty")
	}
}

func TestApplyWindow(t *testing.T) {
	x := []complex128{1, 1, 1, 1}
	w := []float64{0, 0.5, 1, 0.5}
	out, err := ApplyWindow(x, w)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 0 || out[1] != 0.5 || out[2] != 1 {
		t.Fatalf("ApplyWindow: %v", out)
	}
	if _, err := ApplyWindow(x, w[:2]); err == nil {
		t.Error("length mismatch should fail")
	}
}
