package fft

import (
	"fmt"
	"sync"

	"tiledcfd/internal/fixed"
)

// ScalingPolicy selects how a fixed-point FFT keeps its Q15 datapath from
// overflowing across stages. Both policies are fully deterministic: the
// same input always produces the same output words and exponent.
type ScalingPolicy int

const (
	// ScaleBFP is block-floating-point scaling: before each butterfly
	// stage the block's peak component is measured and the whole block is
	// pre-shifted right only as far as that stage's worst-case growth
	// demands, with the total shift returned as a tracked exponent. Small
	// signals keep their significant bits instead of losing one per stage.
	ScaleBFP ScalingPolicy = iota
	// ScaleUniform is the Montium FFT kernel's policy: an unconditional
	// 1/2 per stage (output = DFT/n, exponent = log2 n), bit-identical to
	// FixedPlan.Forward. It can never overflow but costs log2(n) bits of
	// small-signal resolution.
	ScaleUniform
)

// String implements fmt.Stringer.
func (p ScalingPolicy) String() string {
	switch p {
	case ScaleBFP:
		return "bfp"
	case ScaleUniform:
		return "uniform"
	}
	return fmt.Sprintf("ScalingPolicy(%d)", int(p))
}

// bfpSafeMax is the largest per-component block magnitude a radix-2 stage
// may see without its output overflowing Q15. One butterfly grows a
// component by at most the factor 1+sqrt(2) (|a ± w·b| with |w| <= 1), so
// the exact bound is 32767/(1+sqrt 2) ~= 13573; 13000 leaves margin for
// the rounding adders of the pre-shift and of the butterfly itself.
const bfpSafeMax = 13000

// ForwardScaled computes the forward transform of src into dst under the
// given scaling policy and returns the tracked exponent:
//
//	DFT(src) = dst · 2^exp  (elementwise)
//
// With ScaleUniform the pass is bit-identical to Forward and exp is
// log2(n). With ScaleBFP each stage is preceded by a conditional
// round-half-up pre-shift of the whole block, sized so the stage cannot
// overflow; exp sums the shifts, so weak blocks come out with small
// exponents and their precision intact — the dynamic-range behaviour the
// paper's section 4.1 argues 16-bit words need. dst and src may alias.
func (p *FixedPlan) ForwardScaled(dst, src []fixed.Complex, policy ScalingPolicy) (int, error) {
	if len(src) != p.n || len(dst) != p.n {
		return 0, fmt.Errorf("fft: fixed ForwardScaled length %d/%d, plan size %d", len(dst), len(src), p.n)
	}
	if policy == ScaleUniform {
		if err := p.Forward(dst, src); err != nil {
			return 0, err
		}
		return p.Stages(), nil
	}
	if policy != ScaleBFP {
		return 0, fmt.Errorf("fft: unknown scaling policy %d", int(policy))
	}
	if &dst[0] != &src[0] {
		copy(dst, src)
	}
	permuteInPlace(dst, p.rev)
	exp := 0
	for s := range p.tw {
		// Pre-shift the block so this stage's worst-case growth fits Q15.
		mx := int32(0)
		for _, c := range dst {
			if v := int32(c.Re); v > mx {
				mx = v
			} else if -v > mx {
				mx = -v
			}
			if v := int32(c.Im); v > mx {
				mx = v
			} else if -v > mx {
				mx = -v
			}
		}
		sh := uint(0)
		for m := mx; m > bfpSafeMax; m >>= 1 {
			sh++
		}
		if sh > 0 {
			for i := range dst {
				dst[i] = fixed.CRShiftRound(dst[i], sh)
			}
			exp += int(sh)
		}
		span := 2 << s
		half := span / 2
		w := p.tw[s]
		for base := 0; base < p.n; base += span {
			for i := 0; i < half; i++ {
				lo, hi := fixed.BFlyNoScale(dst[base+i], dst[base+i+half], w[i])
				dst[base+i] = lo
				dst[base+i+half] = hi
			}
		}
	}
	return exp, nil
}

// fixedRootsCache memoises FixedRoots tables per size, mirroring the
// float Roots cache.
var fixedRootsCache sync.Map // int -> []fixed.Complex

// FixedRoots returns the Q15-quantised roots-of-unity table of size n:
// entry i is e^{-j2πi/n} rounded to Q15. The fixed-point channelizer
// downconversion and SSCA derotation index it exactly like the float
// paths index Roots. The returned slice is shared and must not be
// modified.
func FixedRoots(n int) ([]fixed.Complex, error) {
	if n < 1 {
		return nil, fmt.Errorf("fft: FixedRoots size %d too small", n)
	}
	if v, ok := fixedRootsCache.Load(n); ok {
		return v.([]fixed.Complex), nil
	}
	roots, err := Roots(n)
	if err != nil {
		return nil, err
	}
	w := make([]fixed.Complex, n)
	for i, r := range roots {
		w[i] = fixed.CFromFloat(r)
	}
	actual, _ := fixedRootsCache.LoadOrStore(n, w)
	return actual.([]fixed.Complex), nil
}

// FixedWindow returns the analysis window of the given kind quantised to
// Q15 (window coefficients lie in [0, 1], so the quantisation is exact at
// the rails). Rectangular returns nil: no multiply is needed.
func FixedWindow(kind WindowKind, n int) ([]fixed.Q15, error) {
	if kind == Rectangular {
		return nil, nil
	}
	w, err := Window(kind, n)
	if err != nil {
		return nil, err
	}
	q := make([]fixed.Q15, n)
	for i, v := range w {
		q[i] = fixed.FromFloat(v)
	}
	return q, nil
}
