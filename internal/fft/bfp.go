package fft

import (
	"fmt"
	"sync"

	"tiledcfd/internal/fixed"
)

// ScalingPolicy selects how a fixed-point FFT keeps its Q15 datapath from
// overflowing across stages. Both policies are fully deterministic: the
// same input always produces the same output words and exponent.
type ScalingPolicy int

const (
	// ScaleBFP is block-floating-point scaling: before each butterfly
	// stage the block's peak component is measured and the whole block is
	// pre-shifted right only as far as that stage's worst-case growth
	// demands, with the total shift returned as a tracked exponent. Small
	// signals keep their significant bits instead of losing one per stage.
	ScaleBFP ScalingPolicy = iota
	// ScaleUniform is the Montium FFT kernel's policy: an unconditional
	// 1/2 per stage (output = DFT/n, exponent = log2 n), bit-identical to
	// FixedPlan.Forward. It can never overflow but costs log2(n) bits of
	// small-signal resolution.
	ScaleUniform
)

// String implements fmt.Stringer.
func (p ScalingPolicy) String() string {
	switch p {
	case ScaleBFP:
		return "bfp"
	case ScaleUniform:
		return "uniform"
	}
	return fmt.Sprintf("ScalingPolicy(%d)", int(p))
}

// bfpSafeMax is the largest per-component block magnitude a radix-2 stage
// may see without its output overflowing Q15. One butterfly grows a
// component by at most the factor 1+sqrt(2) (|a ± w·b| with |w| <= 1), so
// the exact bound is 32767/(1+sqrt 2) ~= 13573; 13000 leaves margin for
// the rounding adders of the pre-shift and of the butterfly itself.
const bfpSafeMax = 13000

// ForwardScaled computes the forward transform of src into dst under the
// given scaling policy and returns the tracked exponent:
//
//	DFT(src) = dst · 2^exp  (elementwise)
//
// With ScaleUniform the pass is bit-identical to Forward and exp is
// log2(n). With ScaleBFP each stage is preceded by a conditional
// round-half-up pre-shift of the whole block, sized so the stage cannot
// overflow; exp sums the shifts, so weak blocks come out with small
// exponents and their precision intact — the dynamic-range behaviour the
// paper's section 4.1 argues 16-bit words need. dst and src may alias.
//
// The butterfly stages run on the process-wide fixed.Active() kernels;
// every Kernels implementation produces identical output words and
// exponent (see ForwardScaledWith).
func (p *FixedPlan) ForwardScaled(dst, src []fixed.Complex, policy ScalingPolicy) (int, error) {
	return p.ForwardScaledWith(fixed.Active(), dst, src, policy)
}

// ForwardScaledWith is ForwardScaled on an explicit kernel
// implementation instead of the process-wide selection. The output
// words and exponent are identical for every fixed.Kernels
// implementation — the differential tests in this package run scalar
// and SWAR side by side through this entry point.
//
// Both policies drive the same per-stage kernel loop: ScaleUniform runs
// scaled butterflies (fixed.BFly semantics, bit-identical to Forward),
// ScaleBFP runs unscaled butterflies with the conditional pre-shift.
// The per-stage overflow scan is fused into the butterfly pass: each
// Kernels.Stage call returns the block peak that decides the next
// stage's shift, so BFP costs no separate scan passes after the first.
func (p *FixedPlan) ForwardScaledWith(kern fixed.Kernels, dst, src []fixed.Complex, policy ScalingPolicy) (int, error) {
	if len(src) != p.n || len(dst) != p.n {
		return 0, fmt.Errorf("fft: fixed ForwardScaled length %d/%d, plan size %d", len(dst), len(src), p.n)
	}
	if policy != ScaleBFP && policy != ScaleUniform {
		return 0, fmt.Errorf("fft: unknown scaling policy %d", int(policy))
	}
	if &dst[0] != &src[0] {
		copy(dst, src)
	}
	permuteInPlace(dst, p.rev)
	if policy == ScaleUniform {
		for s := range p.tw {
			kern.Stage(dst, p.tw[s], 2<<s, true)
		}
		return p.Stages(), nil
	}
	exp := 0
	mx := kern.AbsMax(dst)
	for s := range p.tw {
		// Pre-shift the block so this stage's worst-case growth fits Q15.
		sh := uint(0)
		for m := mx; m > bfpSafeMax; m >>= 1 {
			sh++
		}
		if sh > 0 {
			kern.ShiftRound(dst, sh)
			exp += int(sh)
		}
		mx = kern.Stage(dst, p.tw[s], 2<<s, false)
	}
	return exp, nil
}

// ForwardScaledBatch transforms every block in place under one policy
// and returns the per-block exponents. It resolves the kernel selection
// and reuses the plan tables across the whole batch — the entry point
// the Q15 estimators use to push all channelizer hops (FAM) or all
// demodulate strips (SSCA) of a snapshot through one plan invocation.
func (p *FixedPlan) ForwardScaledBatch(blocks [][]fixed.Complex, policy ScalingPolicy) ([]int, error) {
	return p.ForwardScaledBatchWith(fixed.Active(), blocks, policy)
}

// ForwardScaledBatchWith is ForwardScaledBatch on an explicit kernel
// implementation. Each block is transformed in place; block i's tracked
// exponent lands in element i of the returned slice.
func (p *FixedPlan) ForwardScaledBatchWith(kern fixed.Kernels, blocks [][]fixed.Complex, policy ScalingPolicy) ([]int, error) {
	exps := make([]int, len(blocks))
	for i, b := range blocks {
		e, err := p.ForwardScaledWith(kern, b, b, policy)
		if err != nil {
			return nil, fmt.Errorf("fft: batch block %d: %w", i, err)
		}
		exps[i] = e
	}
	return exps, nil
}

// fixedRootsCache memoises FixedRoots tables per size, mirroring the
// float Roots cache.
var fixedRootsCache sync.Map // int -> []fixed.Complex

// FixedRoots returns the Q15-quantised roots-of-unity table of size n:
// entry i is e^{-j2πi/n} rounded to Q15. The fixed-point channelizer
// downconversion and SSCA derotation index it exactly like the float
// paths index Roots. The returned slice is shared and must not be
// modified.
func FixedRoots(n int) ([]fixed.Complex, error) {
	if n < 1 {
		return nil, fmt.Errorf("fft: FixedRoots size %d too small", n)
	}
	if v, ok := fixedRootsCache.Load(n); ok {
		return v.([]fixed.Complex), nil
	}
	roots, err := Roots(n)
	if err != nil {
		return nil, err
	}
	w := make([]fixed.Complex, n)
	for i, r := range roots {
		w[i] = fixed.CFromFloat(r)
	}
	actual, _ := fixedRootsCache.LoadOrStore(n, w)
	return actual.([]fixed.Complex), nil
}

// FixedWindow returns the analysis window of the given kind quantised to
// Q15 (window coefficients lie in [0, 1], so the quantisation is exact at
// the rails). Rectangular returns nil: no multiply is needed.
func FixedWindow(kind WindowKind, n int) ([]fixed.Q15, error) {
	if kind == Rectangular {
		return nil, nil
	}
	w, err := Window(kind, n)
	if err != nil {
		return nil, err
	}
	q := make([]fixed.Q15, n)
	for i, v := range w {
		q[i] = fixed.FromFloat(v)
	}
	return q, nil
}
