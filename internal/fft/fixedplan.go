package fft

import (
	"fmt"
	"math"

	"tiledcfd/internal/fixed"
)

// FixedPlan holds precomputed Q15 tables for the fixed-point transform.
// Its Forward pass is the bit-exact software twin of the Montium FFT
// kernel in internal/montium: same butterfly primitive (fixed.BFly), same
// stage order, same twiddle quantisation.
type FixedPlan struct {
	n   int
	rev []int
	tw  [][]fixed.Complex
}

// NewFixedPlan creates fixed-point transform tables for size n (a power of
// two, >= 2).
func NewFixedPlan(n int) (*FixedPlan, error) {
	if n < 2 {
		return nil, fmt.Errorf("fft: fixed size %d too small (need >= 2)", n)
	}
	stages, err := Log2(n)
	if err != nil {
		return nil, err
	}
	p := &FixedPlan{n: n, rev: bitrevTable(n), tw: make([][]fixed.Complex, stages)}
	for s := 0; s < stages; s++ {
		p.tw[s] = FixedTwiddles(2 << s)
	}
	return p, nil
}

// FixedTwiddles returns the Q15-quantised twiddle factors e^{-j2πi/span}
// for i in [0, span/2). Exposed so the Montium FFT kernel loads the exact
// same tables into its coefficient memory.
func FixedTwiddles(span int) []fixed.Complex {
	half := span / 2
	w := make([]fixed.Complex, half)
	for i := 0; i < half; i++ {
		ang := -2 * math.Pi * float64(i) / float64(span)
		w[i] = fixed.Complex{
			Re: fixed.FromFloat(math.Cos(ang)),
			Im: fixed.FromFloat(math.Sin(ang)),
		}
	}
	return w
}

// Size returns the transform length of the plan.
func (p *FixedPlan) Size() int { return p.n }

// Stages returns the number of butterfly stages, log2(Size()).
func (p *FixedPlan) Stages() int { return len(p.tw) }

// StageTwiddles returns the twiddle table of stage s (span 2<<s). The
// returned slice must not be modified.
func (p *FixedPlan) StageTwiddles(s int) []fixed.Complex { return p.tw[s] }

// BitrevTable returns the bit-reversal permutation table. The returned
// slice must not be modified.
func (p *FixedPlan) BitrevTable() []int { return p.rev }

// Forward computes the scaled forward transform of src into dst:
// dst = DFT(src)/n, elementwise in saturating Q15 with one 1/2 scaling per
// stage. dst and src may alias.
func (p *FixedPlan) Forward(dst, src []fixed.Complex) error {
	if len(src) != p.n || len(dst) != p.n {
		return fmt.Errorf("fft: fixed Forward length %d/%d, plan size %d", len(dst), len(src), p.n)
	}
	if &dst[0] != &src[0] {
		copy(dst, src)
	}
	permuteInPlace(dst, p.rev)
	for s := range p.tw {
		span := 2 << s
		half := span / 2
		w := p.tw[s]
		for base := 0; base < p.n; base += span {
			for i := 0; i < half; i++ {
				lo, hi := fixed.BFly(dst[base+i], dst[base+i+half], w[i])
				dst[base+i] = lo
				dst[base+i+half] = hi
			}
		}
	}
	return nil
}

// ForwardButterflies returns the total number of butterfly operations the
// plan executes: (n/2)·log2(n). The Montium executes one butterfly per
// clock cycle, which together with per-stage setup yields the paper's
// 1040-cycle count for n = 256.
func (p *FixedPlan) ForwardButterflies() int { return p.n / 2 * len(p.tw) }
