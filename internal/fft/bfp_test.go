package fft

import (
	"math"
	"math/cmplx"
	"testing"

	"tiledcfd/internal/fixed"
)

// bfpInput builds a deterministic multi-tone Q15 test block.
func bfpInput(n int, amp float64) []fixed.Complex {
	out := make([]fixed.Complex, n)
	for i := range out {
		v := amp * (0.5*math.Sin(2*math.Pi*3*float64(i)/float64(n)) +
			0.3*math.Cos(2*math.Pi*17*float64(i)/float64(n)+0.4))
		out[i] = fixed.CFromFloat(complex(v, 0.25*v))
	}
	return out
}

// TestForwardScaledUniformMatchesForward: the uniform policy must be
// bit-identical to the Montium-kernel path FixedPlan.Forward, with
// exponent log2(n).
func TestForwardScaledUniformMatchesForward(t *testing.T) {
	const n = 256
	p, err := NewFixedPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	x := bfpInput(n, 0.9)
	want := make([]fixed.Complex, n)
	if err := p.Forward(want, x); err != nil {
		t.Fatal(err)
	}
	got := make([]fixed.Complex, n)
	exp, err := p.ForwardScaled(got, x, ScaleUniform)
	if err != nil {
		t.Fatal(err)
	}
	if exp != 8 {
		t.Errorf("uniform exponent = %d, want log2(256) = 8", exp)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("bin %d: uniform %+v != Forward %+v", i, got[i], want[i])
		}
	}
}

// TestForwardScaledBFPTracksDFT: dst·2^exp must approximate the exact
// DFT of the quantised input, and for a weak input the BFP path must be
// markedly more accurate than the uniform path (that is the whole point
// of the tracked exponent).
func TestForwardScaledBFPTracksDFT(t *testing.T) {
	const n = 256
	p, err := NewFixedPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	for _, amp := range []float64{0.9, 0.01} {
		x := bfpInput(n, amp)
		// Exact DFT of the quantised input.
		xf := make([]complex128, n)
		for i, c := range x {
			xf[i] = c.Complex128()
		}
		ref := DFT(xf)
		refEnergy := 0.0
		for _, v := range ref {
			refEnergy += real(v)*real(v) + imag(v)*imag(v)
		}
		errEnergy := func(got []fixed.Complex, exp int) float64 {
			scale := math.Ldexp(1, exp)
			e := 0.0
			for i, c := range got {
				d := c.Complex128()*complex(scale, 0) - ref[i]
				e += real(d)*real(d) + imag(d)*imag(d)
			}
			return e
		}
		bfp := make([]fixed.Complex, n)
		expB, err := p.ForwardScaled(bfp, x, ScaleBFP)
		if err != nil {
			t.Fatal(err)
		}
		uni := make([]fixed.Complex, n)
		expU, err := p.ForwardScaled(uni, x, ScaleUniform)
		if err != nil {
			t.Fatal(err)
		}
		sqnrB := 10 * math.Log10(refEnergy/errEnergy(bfp, expB))
		sqnrU := 10 * math.Log10(refEnergy/errEnergy(uni, expU))
		if sqnrB < 55 {
			t.Errorf("amp=%v: BFP transform SQNR = %.1f dB, want >= 55", amp, sqnrB)
		}
		if amp < 0.1 && sqnrB < sqnrU+20 {
			t.Errorf("amp=%v: BFP SQNR %.1f dB not >> uniform %.1f dB", amp, sqnrB, sqnrU)
		}
		if expB > expU {
			t.Errorf("amp=%v: BFP exponent %d exceeds uniform %d", amp, expB, expU)
		}
	}
}

// TestForwardScaledBFPNoOverflow feeds the worst coherent-growth input
// (constant full-scale: DFT bin 0 = n) and checks nothing saturates to
// garbage: bin 0 must dominate and carry the right value within
// quantisation error.
func TestForwardScaledBFPNoOverflow(t *testing.T) {
	const n = 256
	p, err := NewFixedPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]fixed.Complex, n)
	for i := range x {
		x[i] = fixed.Complex{Re: fixed.MaxQ15, Im: fixed.MinQ15}
	}
	got := make([]fixed.Complex, n)
	exp, err := p.ForwardScaled(got, x, ScaleBFP)
	if err != nil {
		t.Fatal(err)
	}
	scale := math.Ldexp(1, exp)
	b0 := got[0].Complex128() * complex(scale, 0)
	want := complex(float64(n)*fixed.MaxQ15.Float(), float64(n)*fixed.MinQ15.Float())
	if cmplx.Abs(b0-want)/cmplx.Abs(want) > 1e-3 {
		t.Errorf("bin 0 = %v, want %v (exp %d)", b0, want, exp)
	}
	for i := 1; i < n; i++ {
		if cmplx.Abs(got[i].Complex128()) > 0.01*cmplx.Abs(got[0].Complex128()) {
			t.Errorf("bin %d = %v: leakage beyond quantisation floor", i, got[i])
		}
	}
}

// TestForwardScaledDeterminism: same input, same words and exponent.
func TestForwardScaledDeterminism(t *testing.T) {
	const n = 128
	p, err := NewFixedPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	x := bfpInput(n, 0.7)
	a := make([]fixed.Complex, n)
	b := make([]fixed.Complex, n)
	expA, err := p.ForwardScaled(a, x, ScaleBFP)
	if err != nil {
		t.Fatal(err)
	}
	expB, err := p.ForwardScaled(b, x, ScaleBFP)
	if err != nil {
		t.Fatal(err)
	}
	if expA != expB {
		t.Fatalf("exponents differ: %d vs %d", expA, expB)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("bin %d differs across runs", i)
		}
	}
}

// TestFixedRootsAndWindow sanity-checks the cached Q15 tables.
func TestFixedRootsAndWindow(t *testing.T) {
	r, err := FixedRoots(8)
	if err != nil {
		t.Fatal(err)
	}
	if r[0].Re != fixed.MaxQ15 || r[0].Im != 0 {
		t.Errorf("root 0 = %+v, want (MaxQ15, 0)", r[0])
	}
	if r[2].Re != 0 || r[2].Im != fixed.MinQ15 {
		t.Errorf("root 2 = %+v, want (0, -1)", r[2])
	}
	r2, err := FixedRoots(8)
	if err != nil {
		t.Fatal(err)
	}
	if &r[0] != &r2[0] {
		t.Error("FixedRoots not cached")
	}
	if w, err := FixedWindow(Rectangular, 16); err != nil || w != nil {
		t.Errorf("rectangular fixed window = %v, %v; want nil, nil", w, err)
	}
	w, err := FixedWindow(Hamming, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 16 {
		t.Fatalf("Hamming fixed window length %d", len(w))
	}
	for i, q := range w {
		if q < 0 {
			t.Errorf("window coefficient %d negative: %v", i, q)
		}
	}
	if _, err := FixedRoots(0); err == nil {
		t.Error("FixedRoots(0) accepted")
	}
}
