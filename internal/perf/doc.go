// Package perf implements the evaluation model of the paper's section 5:
// converting measured cycle counts into time, analysed bandwidth, chip
// area and power, and the linear scalability argument.
//
// All constants come from the paper: 100 MHz Montium clock, ~2 mm² per
// core in the Philips 0.13 µm CMOS12 process, and a typical power of
// 500 µW/MHz per core. None of these are measured by the simulator; they
// are the published technology figures applied to measured cycle counts.
package perf
