package perf

import (
	"fmt"
	"math"
)

// Model holds the technology constants of the evaluation.
type Model struct {
	// ClockMHz is the core clock (paper: 100 MHz).
	ClockMHz float64
	// AreaPerCoreMM2 is the silicon area per Montium core (paper: ~2 mm²).
	AreaPerCoreMM2 float64
	// PowerPerCoreUWPerMHz is the typical power density (paper: 500 µW/MHz).
	PowerPerCoreUWPerMHz float64
}

// Paper returns the constants of the paper's section 5.
func Paper() Model {
	return Model{ClockMHz: 100, AreaPerCoreMM2: 2, PowerPerCoreUWPerMHz: 500}
}

// Validate checks the model for positive constants.
func (m Model) Validate() error {
	if m.ClockMHz <= 0 || m.AreaPerCoreMM2 <= 0 || m.PowerPerCoreUWPerMHz <= 0 {
		return fmt.Errorf("perf: non-positive model constants: %+v", m)
	}
	return nil
}

// BlockTimeMicros converts a per-integration-step cycle count into
// microseconds: cycles / f_clk. The paper's 13996 cycles at 100 MHz give
// 139.96 µs.
func (m Model) BlockTimeMicros(cycles int64) float64 {
	return float64(cycles) / m.ClockMHz
}

// SampleRateMHz returns the input sample rate sustainable when every
// K-sample block takes blockTimeMicros: K / t.
func (m Model) SampleRateMHz(k int, blockTimeMicros float64) float64 {
	return float64(k) / blockTimeMicros
}

// AnalysedBandwidthkHz returns the real-signal bandwidth analysed when
// blocks of K samples take blockTimeMicros each: half the sample rate
// (Nyquist). The paper's 256 samples per 139.96 µs give ≈ 915 kHz.
func (m Model) AnalysedBandwidthkHz(k int, blockTimeMicros float64) float64 {
	return m.SampleRateMHz(k, blockTimeMicros) / 2 * 1000
}

// AreaMM2 returns the platform area for q cores.
func (m Model) AreaMM2(q int) float64 { return float64(q) * m.AreaPerCoreMM2 }

// PowerMW returns the platform power for q cores at the model clock:
// q · density · f. The paper's 4 cores at 100 MHz give 200 mW.
func (m Model) PowerMW(q int) float64 {
	return float64(q) * m.PowerPerCoreUWPerMHz * m.ClockMHz / 1000
}

// EnergyPerBlockUJ returns the energy one integration step consumes on q
// cores, in microjoules.
func (m Model) EnergyPerBlockUJ(q int, cycles int64) float64 {
	return m.PowerMW(q) * m.BlockTimeMicros(cycles) / 1000
}

// ScalingRow is one platform configuration in the section 5 scalability
// table: n parallel 4-core platforms (the paper's scaling unit), or more
// generally n× the base configuration.
type ScalingRow struct {
	Platforms    int
	Cores        int
	BandwidthkHz float64
	AreaMM2      float64
	PowerMW      float64
}

// ScalingTable reproduces the paper's linear-scaling statement: analysed
// bandwidth, area and power all scale with the number of platform
// instances (each instance analysing its own band). baseCores is the
// cores per instance (4), baseCycles the per-block critical path (13996),
// k the block size (256).
func (m Model) ScalingTable(baseCores int, baseCycles int64, k int, instances []int) ([]ScalingRow, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if baseCores < 1 || baseCycles < 1 || k < 1 {
		return nil, fmt.Errorf("perf: invalid base configuration (%d cores, %d cycles, K=%d)",
			baseCores, baseCycles, k)
	}
	bw := m.AnalysedBandwidthkHz(k, m.BlockTimeMicros(baseCycles))
	var out []ScalingRow
	for _, n := range instances {
		if n < 1 {
			return nil, fmt.Errorf("perf: instance count %d must be >= 1", n)
		}
		out = append(out, ScalingRow{
			Platforms:    n,
			Cores:        n * baseCores,
			BandwidthkHz: float64(n) * bw,
			AreaMM2:      m.AreaMM2(n * baseCores),
			PowerMW:      m.PowerMW(n * baseCores),
		})
	}
	return out, nil
}

// IsLinear verifies that a scaling table is exactly proportional in all
// three columns, within floating-point tolerance — the testable content of
// the paper's linearity claim.
func IsLinear(rows []ScalingRow) bool {
	if len(rows) < 2 {
		return true
	}
	base := rows[0]
	for _, r := range rows[1:] {
		ratio := float64(r.Platforms) / float64(base.Platforms)
		if !close(r.BandwidthkHz, base.BandwidthkHz*ratio) ||
			!close(r.AreaMM2, base.AreaMM2*ratio) ||
			!close(r.PowerMW, base.PowerMW*ratio) {
			return false
		}
	}
	return true
}

func close(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}
