package stream

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tiledcfd/internal/detect"
	"tiledcfd/internal/fam"
	"tiledcfd/internal/scf"
	"tiledcfd/internal/sig"
)

// bpskBand synthesises a deterministic BPSK-in-noise band.
func bpskBand(t testing.TB, n int, carrier float64, snrDB float64, seed uint64) []complex128 {
	t.Helper()
	rng := sig.NewRand(seed)
	b := &sig.BPSK{Amp: 1, Carrier: carrier, SymbolLen: 8, Rng: rng}
	x := sig.Samples(b, n)
	noisy, _, err := sig.AddAWGN(x, snrDB, true, rng)
	if err != nil {
		t.Fatal(err)
	}
	return noisy
}

// noiseBand synthesises a deterministic noise-only band.
func noiseBand(t testing.TB, n int, seed uint64) []complex128 {
	t.Helper()
	return sig.Samples(&sig.WGN{Sigma: 0.3, Real: true, Rng: sig.NewRand(seed)}, n)
}

// TestEngineStreamingMatchesBatchConcurrent is the golden multi-channel
// equivalence test: 8 channels fed concurrently in ragged chunks, one
// decision each, and every decision's statistic must equal — exactly, in
// floating point — the batch-pipeline statistic over the same samples.
// Run under -race this is also the engine's central concurrency test.
func TestEngineStreamingMatchesBatchConcurrent(t *testing.T) {
	const window = 4096
	estimators := map[string]scf.StreamingEstimator{
		"direct": scf.Direct{Params: scf.Params{K: 64, M: 16, Blocks: window / 64}},
		"fam":    fam.FAM{Params: scf.Params{K: 64, M: 16}},
		"ssca":   fam.SSCA{Params: scf.Params{K: 64, M: 16}},
	}
	for name, est := range estimators {
		t.Run(name, func(t *testing.T) {
			e, err := New(Config{
				Estimator:       est,
				SnapshotSamples: window,
				Block:           true,
				Threshold:       0.25, // fixed-threshold mode: statistic is CFDStatistic
				MinAbsA:         2,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			const nch = 8
			bands := make(map[string][]complex128, nch)
			for i := 0; i < nch; i++ {
				id := fmt.Sprintf("ch%d", i)
				bands[id] = bpskBand(t, window, float64(i+4)/64, 6, uint64(100+i))
				if err := e.AddChannel(id); err != nil {
					t.Fatal(err)
				}
			}
			var wg sync.WaitGroup
			for id, band := range bands {
				wg.Add(1)
				go func(id string, band []complex128) {
					defer wg.Done()
					// Ragged chunk sizes exercise buffering paths.
					for i, c := 0, 0; i < len(band); c++ {
						n := []int{1, 63, 500, 64, 1024}[c%5]
						if i+n > len(band) {
							n = len(band) - i
						}
						if _, err := e.Push(id, band[i:i+n]); err != nil {
							t.Error(err)
							return
						}
						i += n
					}
				}(id, band)
			}
			wg.Wait()
			if err := e.Flush(10 * time.Second); err != nil {
				t.Fatal(err)
			}
			for id, band := range bands {
				cs, ok := e.ChannelStats(id)
				if !ok || cs.Last == nil {
					t.Fatalf("%s: no decision (stats %+v)", id, cs)
				}
				surface, _, err := est.Estimate(band)
				if err != nil {
					t.Fatal(err)
				}
				want, err := detect.CFDStatistic(surface, 2)
				if err != nil {
					t.Fatal(err)
				}
				if cs.Last.Statistic != want {
					t.Fatalf("%s: streaming statistic %v != batch %v (not bit-identical)",
						id, cs.Last.Statistic, want)
				}
				if cs.Last.WindowSamples != window {
					t.Fatalf("%s: window covered %d samples, want %d", id, cs.Last.WindowSamples, window)
				}
				if cs.SamplesDropped != 0 {
					t.Fatalf("%s: dropped %d samples in backpressure mode", id, cs.SamplesDropped)
				}
			}
		})
	}
}

// TestEngineWindowedDecisionsTrackOccupancy: a licensed user appearing
// mid-stream flips the CFAR verdict from idle to occupied and back — the
// monitoring loop the engine exists for.
func TestEngineWindowedDecisionsTrackOccupancy(t *testing.T) {
	const window = 2048
	e, err := New(Config{
		Estimator:       scf.Direct{Params: scf.Params{K: 64, M: 16}},
		SnapshotSamples: window,
		Block:           true,
		MinAbsA:         2,
		CFARScale:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddChannel("band0"); err != nil {
		t.Fatal(err)
	}
	// Timeline: 2 idle windows, 3 occupied (BPSK at 6 dB), 2 idle.
	truth := []bool{false, false, true, true, true, false, false}
	for w, busy := range truth {
		var seg []complex128
		if busy {
			seg = bpskBand(t, window, 8.0/64, 6, uint64(200+w))
		} else {
			seg = noiseBand(t, window, uint64(200+w))
		}
		if _, err := e.Push("band0", seg); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	var got []Decision
	for d := range e.Decisions() {
		got = append(got, d)
	}
	if len(got) != len(truth) {
		t.Fatalf("%d decisions, want %d: %+v", len(got), len(truth), got)
	}
	for i, d := range got {
		if d.Seq != int64(i) {
			t.Fatalf("decision %d has Seq %d", i, d.Seq)
		}
		if d.Detected != truth[i] {
			t.Fatalf("window %d: detected=%v (stat %.3f vs %.3f), want %v",
				i, d.Detected, d.Statistic, d.Threshold, truth[i])
		}
	}
	cs, _ := e.ChannelStats("band0")
	if cs.Snapshots != int64(len(truth)) || cs.Detections != 3 {
		t.Fatalf("channel stats %+v, want 7 snapshots / 3 detections", cs)
	}
}

// TestEngineDropAccounting: in drop mode a push larger than the ring
// discards the overflow and accounts for it exactly.
func TestEngineDropAccounting(t *testing.T) {
	e, err := New(Config{
		Estimator:       scf.Direct{Params: scf.Params{K: 64, M: 16}},
		SnapshotSamples: 1024,
		RingSamples:     1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.AddChannel("hot"); err != nil {
		t.Fatal(err)
	}
	big := noiseBand(t, 10*1024, 1)
	accepted, err := e.Push("hot", big)
	if err != nil {
		t.Fatal(err)
	}
	if accepted > 1024 {
		t.Fatalf("accepted %d > ring capacity 1024", accepted)
	}
	cs, _ := e.ChannelStats("hot")
	if cs.SamplesDropped != int64(len(big)-accepted) {
		t.Fatalf("dropped %d, want %d", cs.SamplesDropped, len(big)-accepted)
	}
	s := e.Stats()
	if s.SamplesIn != int64(accepted) || s.SamplesDropped != cs.SamplesDropped {
		t.Fatalf("engine stats %+v inconsistent with channel stats %+v", s, cs)
	}
}

// TestEngineBackpressureLosesNothing: with Block set, pushing far more
// than the ring holds processes every sample.
func TestEngineBackpressureLosesNothing(t *testing.T) {
	const window = 1024
	e, err := New(Config{
		Estimator:       scf.Direct{Params: scf.Params{K: 64, M: 16}},
		SnapshotSamples: window,
		RingSamples:     window,
		Block:           true,
		Workers:         2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.AddChannel("bp"); err != nil {
		t.Fatal(err)
	}
	const total = 16 * window
	band := noiseBand(t, total, 2)
	for i := 0; i < total; i += 700 {
		end := i + 700
		if end > total {
			end = total
		}
		if n, err := e.Push("bp", band[i:end]); err != nil || n != end-i {
			t.Fatalf("Push accepted %d of %d, err %v", n, end-i, err)
		}
	}
	if err := e.Flush(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	cs, _ := e.ChannelStats("bp")
	if cs.SamplesIn != total || cs.SamplesDropped != 0 {
		t.Fatalf("in=%d dropped=%d, want in=%d dropped=0", cs.SamplesIn, cs.SamplesDropped, total)
	}
	if cs.Snapshots != total/window {
		t.Fatalf("%d snapshots, want %d", cs.Snapshots, total/window)
	}
}

// TestEngineConcurrentDropAccountingExact hammers drop mode with many
// concurrent producers on undersized rings and checks the overflow
// accounting stays exact: what every Push reported accepted equals
// SamplesIn, the remainder equals SamplesDropped, per channel and
// engine-wide. Run under -race this is the overload-path concurrency
// test.
func TestEngineConcurrentDropAccountingExact(t *testing.T) {
	const (
		window    = 1024
		nch       = 8
		producers = 4 // per channel
		pushes    = 40
		chunk     = 700
	)
	e, err := New(Config{
		Estimator:       scf.Direct{Params: scf.Params{K: 64, M: 16}},
		SnapshotSamples: window,
		RingSamples:     window, // deliberately tight: overflow is the point
		Workers:         2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	band := noiseBand(t, chunk, 3)
	var accepted [nch]int64
	var wg sync.WaitGroup
	for c := 0; c < nch; c++ {
		id := fmt.Sprintf("ch%d", c)
		if err := e.AddChannel(id); err != nil {
			t.Fatal(err)
		}
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(c int, id string) {
				defer wg.Done()
				for i := 0; i < pushes; i++ {
					n, err := e.Push(id, band)
					if err != nil {
						t.Error(err)
						return
					}
					atomic.AddInt64(&accepted[c], int64(n))
				}
			}(c, id)
		}
	}
	wg.Wait()
	if err := e.Flush(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	const pushedPerChannel = int64(producers * pushes * chunk)
	var wantIn, wantDropped int64
	for c := 0; c < nch; c++ {
		id := fmt.Sprintf("ch%d", c)
		cs, ok := e.ChannelStats(id)
		if !ok {
			t.Fatalf("no stats for %s", id)
		}
		if cs.SamplesIn != accepted[c] {
			t.Fatalf("%s: SamplesIn %d != sum of Push returns %d", id, cs.SamplesIn, accepted[c])
		}
		if cs.SamplesIn+cs.SamplesDropped != pushedPerChannel {
			t.Fatalf("%s: in %d + dropped %d != pushed %d",
				id, cs.SamplesIn, cs.SamplesDropped, pushedPerChannel)
		}
		if cs.SamplesDropped == 0 {
			t.Fatalf("%s: nothing dropped — ring not actually overloaded", id)
		}
		wantIn += cs.SamplesIn
		wantDropped += cs.SamplesDropped
	}
	s := e.Stats()
	if s.SamplesIn != wantIn || s.SamplesDropped != wantDropped {
		t.Fatalf("engine totals in=%d dropped=%d != channel sums in=%d dropped=%d",
			s.SamplesIn, s.SamplesDropped, wantIn, wantDropped)
	}
	if s.SamplesIn+s.SamplesDropped != int64(nch)*pushedPerChannel {
		t.Fatalf("engine in+dropped = %d, want %d", s.SamplesIn+s.SamplesDropped, int64(nch)*pushedPerChannel)
	}
	if s.QueuedSamples != 0 {
		t.Fatalf("QueuedSamples %d after Flush, want 0", s.QueuedSamples)
	}
}

// TestEngineRemoveChannelFlushesPartialWindow: RemoveChannel quiesces,
// turns the partially integrated window into one final (shorter)
// decision, returns the final stats, and frees the id for fresh
// re-registration — the ownership-handoff contract sharding relies on.
func TestEngineRemoveChannelFlushesPartialWindow(t *testing.T) {
	const window = 2048
	e, err := New(Config{
		Estimator:       scf.Direct{Params: scf.Params{K: 64, M: 16}},
		SnapshotSamples: window,
		Block:           true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.AddChannel("mv"); err != nil {
		t.Fatal(err)
	}
	// 1.5 windows: one full decision plus a half-window residue.
	band := bpskBand(t, window+window/2, 8.0/64, 6, 9)
	if _, err := e.Push("mv", band); err != nil {
		t.Fatal(err)
	}
	cs, err := e.RemoveChannel("mv", 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if cs.SamplesIn != int64(len(band)) {
		t.Fatalf("final SamplesIn %d, want %d", cs.SamplesIn, len(band))
	}
	if cs.Snapshots != 2 {
		t.Fatalf("final Snapshots %d, want 2 (full + flushed partial)", cs.Snapshots)
	}
	if cs.Last == nil || cs.Last.WindowSamples != window/2 {
		t.Fatalf("last decision %+v, want partial window of %d samples", cs.Last, window/2)
	}
	if cs.Last.Seq != 1 {
		t.Fatalf("last Seq %d, want 1", cs.Last.Seq)
	}
	if _, err := e.Push("mv", band[:8]); err == nil {
		t.Fatal("Push to removed channel succeeded")
	}
	if _, err := e.RemoveChannel("mv", time.Second); err == nil {
		t.Fatal("second RemoveChannel succeeded")
	}
	// The id is reusable with fresh state.
	if err := e.AddChannel("mv"); err != nil {
		t.Fatalf("re-AddChannel after remove: %v", err)
	}
	if _, err := e.Push("mv", band[:window]); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	fresh, ok := e.ChannelStats("mv")
	if !ok || fresh.SamplesIn != window || fresh.Snapshots != 1 {
		t.Fatalf("re-registered channel stats %+v, want fresh state with 1 window", fresh)
	}
	if fresh.Last.Seq != 0 {
		t.Fatalf("re-registered channel Seq %d, want 0", fresh.Last.Seq)
	}
}

// TestEngineRemoveChannelShortResidue: a residue too short for the
// estimator to snapshot produces no final decision — dropped cleanly,
// never double-counted.
func TestEngineRemoveChannelShortResidue(t *testing.T) {
	e, err := New(Config{
		Estimator:       scf.Direct{Params: scf.Params{K: 64, M: 16}},
		SnapshotSamples: 2048,
		Block:           true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.AddChannel("stub"); err != nil {
		t.Fatal(err)
	}
	// 32 samples < one K=64 block: the accumulator never becomes Ready.
	if _, err := e.Push("stub", noiseBand(t, 32, 5)); err != nil {
		t.Fatal(err)
	}
	cs, err := e.RemoveChannel("stub", 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Snapshots != 0 || cs.Last != nil {
		t.Fatalf("stats %+v, want no decisions for a sub-block residue", cs)
	}
}

// TestEngineLifecycleErrors covers the administrative error paths.
func TestEngineLifecycleErrors(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without estimator succeeded")
	}
	if _, err := New(Config{
		Estimator:       scf.Direct{Params: scf.Params{K: 64, M: 16}},
		SnapshotSamples: 100,
		RingSamples:     50,
	}); err == nil {
		t.Fatal("New with ring smaller than window succeeded")
	}
	e, err := New(Config{Estimator: scf.Direct{Params: scf.Params{K: 64, M: 16}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddChannel("a"); err != nil {
		t.Fatal(err)
	}
	if err := e.AddChannel("a"); err == nil {
		t.Fatal("duplicate AddChannel succeeded")
	}
	if _, err := e.Push("nope", make([]complex128, 8)); err == nil {
		t.Fatal("Push to unknown channel succeeded")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := e.Push("a", make([]complex128, 8)); err != ErrClosed {
		t.Fatalf("Push after Close: %v, want ErrClosed", err)
	}
	if err := e.AddChannel("b"); err != ErrClosed {
		t.Fatalf("AddChannel after Close: %v, want ErrClosed", err)
	}
	if _, open := <-e.Decisions(); open {
		t.Fatal("Decisions channel still open after Close")
	}
}

// TestEngineCumulativeKeepsIntegrating: in cumulative mode each decision
// covers the whole stream so far, matching the batch estimate over the
// growing prefix.
func TestEngineCumulativeKeepsIntegrating(t *testing.T) {
	const window = 1024
	est := fam.FAM{Params: scf.Params{K: 64, M: 16}}
	e, err := New(Config{
		Estimator:       est,
		SnapshotSamples: window,
		Block:           true,
		Cumulative:      true,
		Threshold:       0.25,
		MinAbsA:         2,
	})
	if err != nil {
		t.Fatal(err)
	}
	band := bpskBand(t, 4*window, 8.0/64, 6, 77)
	if err := e.AddChannel("cum"); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 4; w++ {
		if _, err := e.Push("cum", band[w*window:(w+1)*window]); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	var decs []Decision
	for d := range e.Decisions() {
		decs = append(decs, d)
	}
	if len(decs) != 4 {
		t.Fatalf("%d decisions, want 4", len(decs))
	}
	for w, d := range decs {
		if d.WindowSamples != (w+1)*window {
			t.Fatalf("decision %d integrates %d samples, want %d", w, d.WindowSamples, (w+1)*window)
		}
		surface, _, err := est.Estimate(band[:(w+1)*window])
		if err != nil {
			t.Fatal(err)
		}
		want, err := detect.CFDStatistic(surface, 2)
		if err != nil {
			t.Fatal(err)
		}
		if d.Statistic != want {
			t.Fatalf("decision %d statistic %v != batch prefix %v", w, d.Statistic, want)
		}
	}
}
