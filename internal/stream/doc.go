// Package stream is the continuous sensing engine: it turns the
// one-shot estimators of internal/scf and internal/fam into a
// long-running, multi-channel monitoring service — the operational shape
// of the paper's Cognitive-Radio application, where an AAF node keeps
// watching many bands and reacts as occupancy changes.
//
// # Architecture
//
// An Engine owns a set of named channels. Each channel has
//
//   - a fixed-capacity ring buffer producers push sampled chunks into
//     (Push never allocates on the hot path; it copies into the ring),
//   - an scf.Accumulator holding that channel's incremental estimator
//     state (direct DSCF, FAM, or SSCA — anything implementing
//     scf.StreamingEstimator), and
//   - drop/decision accounting.
//
// A bounded worker pool drains the rings: a channel with pending samples
// is enqueued at most once on the work queue, a worker claims it, feeds
// the ring contents into the accumulator in arrival order, and — every
// Config.SnapshotSamples samples — takes a surface snapshot and applies
// the decision layer from internal/detect (self-calibrating CFAR by
// default, a fixed CFD threshold when Config.Threshold is set). Because
// one channel is drained by at most one worker at a time, accumulator
// access is serialised without per-sample locking, and because
// accumulator snapshots are bit-identical to the batch estimators
// (scf.Accumulator's contract), a streaming decision equals the batch
// decision over the same window.
//
// # Overload behaviour
//
// When producers outrun the pool, each ring fills. The default policy is
// to drop the excess newest samples and count them (Stats.SamplesDropped
// and per-channel ChannelStats.SamplesDropped) — sensing keeps degrading
// gracefully under overload instead of stalling the radio front end.
// With Config.Block set, Push instead applies backpressure: it blocks
// until the pool frees ring space (the mode batch jobs and benchmarks
// use, where every sample must be processed).
//
// # Windowed vs cumulative estimation
//
// By default every decision covers its own window: the accumulator is
// reset after each snapshot, so a licensed user appearing in the band
// shows up in the next window's decision, bounded memory for all
// estimators. With Config.Cumulative the accumulator keeps integrating
// across snapshots — the variance of the estimate keeps shrinking, the
// mode used for the streaming-equals-batch golden tests and for
// one-shot captures fed incrementally.
package stream
