package stream

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tiledcfd/internal/detect"
	"tiledcfd/internal/scf"
)

// ErrClosed is returned by Push and AddChannel after Close.
var ErrClosed = fmt.Errorf("stream: engine closed")

// drainChunk is the number of samples a worker moves from a ring to the
// accumulator per lock acquisition: large enough to amortise locking,
// small enough to keep decision latency and worker-local scratch modest.
const drainChunk = 4096

// maxDrainSpins bounds how many chunks one dispatch drains before the
// worker requeues the channel and moves on — fairness under a firehose
// producer, so one hot channel cannot starve the rest of the pool.
const maxDrainSpins = 16

// Config configures an Engine.
type Config struct {
	// Estimator produces each channel's incremental state. All three
	// estimators (scf.Direct, fam.FAM, fam.SSCA) qualify. Required.
	Estimator scf.StreamingEstimator
	// SnapshotSamples is the per-channel decision cadence: a surface is
	// snapshotted and a decision emitted every SnapshotSamples samples.
	// Default 8192.
	SnapshotSamples int
	// RingSamples is the per-channel ingestion ring capacity. Default
	// 4×SnapshotSamples.
	RingSamples int
	// Workers bounds the drain/decision worker pool. Default
	// runtime.GOMAXPROCS(0).
	Workers int
	// MaxChannels bounds the channel count (and sizes the work queue so
	// scheduling never blocks). Default 1024.
	MaxChannels int
	// Cumulative keeps accumulator state across snapshots (the estimate
	// keeps integrating). Default false: windowed — the accumulator is
	// reset after each decision, so every decision covers its own
	// SnapshotSamples window and memory stays bounded for all
	// estimators.
	Cumulative bool
	// Block selects backpressure over dropping: Push blocks until ring
	// space frees instead of discarding the overflow. Default false
	// (drop-newest, counted in the stats).
	Block bool
	// AlphaCandidates, when non-empty, restricts every channel's
	// estimation to the listed non-negative cycle-frequency offsets (plus
	// their mirrors and a=0) — the alpha-pruned mode, where snapshot cost
	// scales with the candidate count instead of M. The Estimator must
	// implement scf.CandidateEstimator. Individual channels can override
	// the set via AddChannelCandidates.
	AlphaCandidates []int
	// MinAbsA is the smallest |a| the decision layer searches (default
	// 2, clear of PSD leakage around a=0).
	MinAbsA int
	// Decider, when set, is the decision layer applied to every channel
	// (build one with detect.NewDecider; individual channels can
	// override it via AddChannelDecider). When nil, a legacy decider is
	// built from the scalar knobs below: Threshold > 0 selects "fixed",
	// otherwise "cfar" — the pre-registry behaviour, preserved
	// bit-for-bit.
	Decider detect.Decider
	// Threshold, when positive, selects fixed-threshold decisions on the
	// CFD statistic (the legacy "fixed" detector). Ignored when Decider
	// is set.
	Threshold float64
	// CFARScale is the legacy "cfar" peak-over-floor ratio (default 2);
	// ignored when Threshold or Decider is set.
	CFARScale float64
	// DecisionBuffer is the capacity of the Decisions channel. A slow
	// consumer never stalls sensing: overflowing decisions are dropped
	// and counted (the latest is always available via ChannelStats).
	// Default 256.
	DecisionBuffer int
}

// withDefaults fills the zero fields.
func (c Config) withDefaults() Config {
	if c.SnapshotSamples == 0 {
		c.SnapshotSamples = 8192
	}
	if c.RingSamples == 0 {
		c.RingSamples = 4 * c.SnapshotSamples
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxChannels == 0 {
		c.MaxChannels = 1024
	}
	if c.MinAbsA == 0 {
		c.MinAbsA = 2
	}
	if c.CFARScale == 0 {
		c.CFARScale = 2
	}
	if c.DecisionBuffer == 0 {
		c.DecisionBuffer = 256
	}
	return c
}

// Decision is one periodic verdict for one channel.
type Decision struct {
	// Channel names the channel the decision belongs to.
	Channel string
	// Seq is the 0-based decision index within the channel.
	Seq int64
	// WindowSamples is the number of samples the underlying surface
	// integrates (one window in windowed mode, the whole stream so far
	// in cumulative mode).
	WindowSamples int
	// TotalSamples is the cumulative sample count the channel has
	// processed when the decision was made.
	TotalSamples int64
	// Detected carries the verdict of the channel's decider — e.g. the
	// CFAR peak-over-floor ratio against its scale, or an asymptotic
	// chi-square statistic against its closed-form threshold.
	Detected bool
	// Statistic and Threshold are the compared decision inputs.
	Statistic, Threshold float64
	// Detector is the registry name of the decider that produced the
	// verdict (cfar, fixed, dg, urriza).
	Detector string
	// TargetPfa is the configured false-alarm target of an
	// asymptotic-threshold detector (dg, urriza); 0 for detectors
	// thresholded by other means.
	TargetPfa float64
	// FeatureF/FeatureA locate the strongest cyclic feature (a != 0).
	FeatureF, FeatureA int
	// Estimator names the estimator that produced the surface.
	Estimator string
	// At is the wall-clock decision time.
	At time.Time
}

// Stats is an engine-wide accounting snapshot.
type Stats struct {
	// Channels is the number of registered channels.
	Channels int
	// SamplesIn counts samples accepted into rings; SamplesDropped
	// counts samples discarded because a ring was full (drop mode).
	SamplesIn, SamplesDropped int64
	// Surfaces counts estimator snapshots taken; Detections the subset
	// of decisions that declared the band occupied; DecisionsDropped the
	// decisions discarded because the Decisions channel was full.
	Surfaces, Detections, DecisionsDropped int64
	// QueuedSamples is the momentary ingestion queue depth: samples
	// accepted into rings but not yet fed to an accumulator, summed over
	// all channels.
	QueuedSamples int64
	// PrunedCellsSkipped counts surface cells never computed because of
	// alpha-candidate pruning, summed over all snapshots: each pruned
	// snapshot contributes (extent - heldRows) × extent cells. Zero when
	// no channel prunes.
	PrunedCellsSkipped int64
	// Elapsed is the time since the engine started.
	Elapsed time.Duration
	// SamplesPerSec is the lifetime average SamplesIn/Elapsed.
	SamplesPerSec float64
	// SurfacesPerSec is the lifetime average Surfaces/Elapsed.
	SurfacesPerSec float64
}

// ChannelStats is per-channel accounting.
type ChannelStats struct {
	// ID names the channel.
	ID string
	// SamplesIn counts samples accepted; SamplesDropped those discarded
	// because the channel's ring was full.
	SamplesIn, SamplesDropped int64
	// Snapshots counts the channel's decisions; Detections the subset
	// declaring the band occupied.
	Snapshots, Detections int64
	// Last is the most recent decision, nil before the first. The
	// pointee is immutable.
	Last *Decision
	// Err is the non-empty failure message of a dead channel (an
	// accumulator push error; these indicate configuration bugs).
	Err string
}

// Engine is the multi-channel streaming sensing engine. See the package
// documentation for the architecture.
type Engine struct {
	cfg Config
	dec detect.Decider // engine-wide default decision layer

	mu       sync.RWMutex
	channels map[string]*channel
	order    []string
	closed   bool

	work chan *channel
	done chan struct{}
	out  chan Decision
	wg   sync.WaitGroup

	start time.Time

	samplesIn, samplesDropped atomic.Int64
	surfaces, detections      atomic.Int64
	decisionsDropped          atomic.Int64
	prunedCellsSkipped        atomic.Int64
}

// channel is one monitored stream inside the engine.
type channel struct {
	id string

	mu     sync.Mutex
	cond   *sync.Cond // signalled when ring space frees (backpressure)
	ring   []complex128
	head   int // index of the oldest unread sample
	count  int // unread samples in the ring
	queued bool

	// Fields below the ring are touched only by the worker currently
	// draining the channel; the queued-flag protocol guarantees there is
	// at most one at a time, with ch.mu handoffs ordering memory.
	acc       scf.Accumulator
	dec       detect.Decider // effective decider, never nil
	win       []complex128   // window samples, buffered only when dec.NeedsSamples()
	sinceSnap int
	processed int64
	seq       int64
	dead      bool

	samplesIn, dropped    atomic.Int64
	snapshots, detections atomic.Int64
	last                  atomic.Pointer[Decision]
	err                   atomic.Pointer[string]
}

// New validates the configuration, starts the worker pool, and returns
// an empty engine. Callers must Close it to stop the workers.
func New(cfg Config) (*Engine, error) {
	if cfg.Estimator == nil {
		return nil, fmt.Errorf("stream: Config.Estimator is required")
	}
	cfg = cfg.withDefaults()
	if cfg.SnapshotSamples < 1 {
		return nil, fmt.Errorf("stream: SnapshotSamples=%d must be >= 1", cfg.SnapshotSamples)
	}
	if cfg.RingSamples < cfg.SnapshotSamples {
		return nil, fmt.Errorf("stream: RingSamples=%d smaller than SnapshotSamples=%d",
			cfg.RingSamples, cfg.SnapshotSamples)
	}
	// Surface estimator misconfiguration now rather than at AddChannel.
	if _, err := accumulatorFor(cfg.Estimator, cfg.AlphaCandidates); err != nil {
		return nil, err
	}
	dec, err := deciderFor(cfg)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		dec:      dec,
		cfg:      cfg,
		channels: make(map[string]*channel),
		work:     make(chan *channel, cfg.MaxChannels),
		done:     make(chan struct{}),
		out:      make(chan Decision, cfg.DecisionBuffer),
		start:    time.Now(),
	}
	for w := 0; w < cfg.Workers; w++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e, nil
}

// accumulatorFor builds a fresh accumulator, restricted to the given
// alpha-candidate set when one is supplied. Estimators that cannot prune
// (no scf.CandidateEstimator implementation) are rejected rather than
// silently computing the full plane.
func accumulatorFor(est scf.StreamingEstimator, alphas []int) (scf.Accumulator, error) {
	if len(alphas) > 0 {
		ce, ok := est.(scf.CandidateEstimator)
		if !ok {
			return nil, fmt.Errorf("stream: estimator %q does not support alpha candidates", est.Name())
		}
		pruned, err := ce.WithAlphaCandidates(alphas)
		if err != nil {
			return nil, err
		}
		est = pruned
	}
	return est.NewAccumulator()
}

// deciderFor resolves the engine's default decision layer: the
// explicitly configured Decider, or the legacy scalar-knob selection
// (Threshold > 0 means fixed, otherwise CFAR).
func deciderFor(cfg Config) (detect.Decider, error) {
	if cfg.Decider != nil {
		return cfg.Decider, nil
	}
	name := "cfar"
	if cfg.Threshold > 0 {
		name = "fixed"
	}
	return detect.NewDecider(name, detect.DeciderParams{
		MinAbsA:   cfg.MinAbsA,
		Threshold: cfg.Threshold,
		CFARScale: cfg.CFARScale,
	})
}

// AddChannel registers a new monitored channel with fresh accumulator
// state, pruned to Config.AlphaCandidates when that is set.
func (e *Engine) AddChannel(id string) error {
	return e.AddChannelCandidates(id, nil)
}

// AddChannelCandidates registers a new monitored channel whose estimation
// is restricted to the given non-negative alpha-candidate offsets (plus
// mirrors and a=0). A nil set falls back to Config.AlphaCandidates; an
// explicit non-empty set overrides it. The engine's estimator must
// implement scf.CandidateEstimator whenever the effective set is
// non-empty.
func (e *Engine) AddChannelCandidates(id string, alphas []int) error {
	return e.AddChannelDecider(id, alphas, nil)
}

// AddChannelDecider registers a new monitored channel with its own
// decision layer, overriding the engine-wide decider for this channel
// only — how remote shard workers run the exact detector the router's
// open frame names. A nil decider falls back to the engine default; the
// alpha-candidate semantics match AddChannelCandidates.
func (e *Engine) AddChannelDecider(id string, alphas []int, dec detect.Decider) error {
	if id == "" {
		return fmt.Errorf("stream: empty channel id")
	}
	if alphas == nil {
		alphas = e.cfg.AlphaCandidates
	}
	acc, err := accumulatorFor(e.cfg.Estimator, alphas)
	if err != nil {
		return err
	}
	if dec == nil {
		dec = e.dec
	}
	ch := &channel{id: id, ring: make([]complex128, e.cfg.RingSamples), acc: acc, dec: dec}
	ch.cond = sync.NewCond(&ch.mu)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	if _, dup := e.channels[id]; dup {
		return fmt.Errorf("stream: channel %q already exists", id)
	}
	if len(e.channels) >= e.cfg.MaxChannels {
		return fmt.Errorf("stream: channel limit %d reached", e.cfg.MaxChannels)
	}
	e.channels[id] = ch
	e.order = append(e.order, id)
	return nil
}

// RemoveChannel unregisters a channel: it waits for already-pushed
// samples to finish processing (quiesce), emits one final decision for a
// partially integrated window if the accumulator has enough data to be
// Ready, and returns the channel's final accounting. After it returns,
// the id is free for re-registration with fresh state.
//
// RemoveChannel is the ownership-handoff primitive for shard
// rebalancing: every sample pushed before the call ends up in exactly
// one emitted decision window (or, when the residue is too short for
// the estimator, in no window at all — never in two). Callers must stop
// pushing to the channel before calling; a Push racing RemoveChannel
// fails with an unknown-channel error once removal begins.
func (e *Engine) RemoveChannel(id string, timeout time.Duration) (ChannelStats, error) {
	e.mu.Lock()
	ch := e.channels[id]
	if ch == nil {
		e.mu.Unlock()
		return ChannelStats{}, fmt.Errorf("stream: unknown channel %q", id)
	}
	// Unregister first so concurrent Push can no longer reach the ring;
	// a worker still draining holds its own *channel pointer and
	// finishes normally.
	delete(e.channels, id)
	for i, o := range e.order {
		if o == id {
			e.order = append(e.order[:i], e.order[i+1:]...)
			break
		}
	}
	e.mu.Unlock()
	// Quiesce: wait until the ring is empty and no worker owns the
	// channel (queued clears under ch.mu when the drain completes).
	deadline := time.Now().Add(timeout)
	for {
		ch.mu.Lock()
		idle := ch.count == 0 && !ch.queued
		ch.mu.Unlock()
		if idle {
			break
		}
		if time.Now().After(deadline) {
			return ChannelStats{}, fmt.Errorf("stream: remove %q: quiesce timed out after %v", id, timeout)
		}
		time.Sleep(100 * time.Microsecond)
	}
	// Flush the in-flight window: a partial accumulation with enough
	// data for a snapshot becomes the channel's last (shorter) decision
	// window, so its samples are not silently lost at handoff.
	if !ch.dead && ch.sinceSnap > 0 && ch.acc.Ready() {
		e.decide(ch)
		ch.sinceSnap = 0
	}
	cs := ChannelStats{
		ID:             ch.id,
		SamplesIn:      ch.samplesIn.Load(),
		SamplesDropped: ch.dropped.Load(),
		Snapshots:      ch.snapshots.Load(),
		Detections:     ch.detections.Load(),
		Last:           ch.last.Load(),
	}
	if msg := ch.err.Load(); msg != nil {
		cs.Err = *msg
	}
	return cs, nil
}

// Push appends samples to a channel's ring in arrival order and returns
// how many were accepted. In drop mode (the default) overflow beyond the
// ring capacity is discarded and counted; with Config.Block it blocks
// until the pool frees space. Push is safe for concurrent use across
// channels; pushes to the same channel must come from one producer (or
// be externally ordered) for the stream order to be meaningful.
func (e *Engine) Push(id string, samples []complex128) (int, error) {
	e.mu.RLock()
	ch := e.channels[id]
	closed := e.closed
	e.mu.RUnlock()
	if ch == nil {
		return 0, fmt.Errorf("stream: unknown channel %q", id)
	}
	if closed {
		return 0, ErrClosed
	}
	if msg := ch.err.Load(); msg != nil {
		return 0, fmt.Errorf("stream: channel %q failed: %s", id, *msg)
	}
	accepted := 0
	ch.mu.Lock()
	for {
		n := ch.put(samples)
		accepted += n
		samples = samples[n:]
		if len(samples) == 0 {
			break
		}
		if !e.cfg.Block {
			ch.dropped.Add(int64(len(samples)))
			e.samplesDropped.Add(int64(len(samples)))
			break
		}
		// Backpressure: enqueue what we have so the pool works on it,
		// then wait for room.
		e.enqueueLocked(ch)
		for ch.count == len(ch.ring) && !e.isClosed() {
			ch.cond.Wait()
		}
		if e.isClosed() {
			ch.mu.Unlock()
			e.account(ch, accepted)
			return accepted, ErrClosed
		}
	}
	e.enqueueLocked(ch)
	ch.mu.Unlock()
	e.account(ch, accepted)
	return accepted, nil
}

// account books accepted samples into the counters.
func (e *Engine) account(ch *channel, accepted int) {
	if accepted > 0 {
		ch.samplesIn.Add(int64(accepted))
		e.samplesIn.Add(int64(accepted))
	}
}

// enqueueLocked schedules the channel for draining if it has pending
// samples and is not already queued. ch.mu must be held. The work queue
// holds MaxChannels slots and the queued flag admits one entry per
// channel, so the send cannot block (the done case only fires during
// shutdown).
func (e *Engine) enqueueLocked(ch *channel) {
	if ch.queued || ch.count == 0 {
		return
	}
	ch.queued = true
	select {
	case e.work <- ch:
	case <-e.done:
	}
}

// put copies as much of src as fits into the ring. ch.mu must be held.
func (ch *channel) put(src []complex128) int {
	n := len(ch.ring) - ch.count
	if n > len(src) {
		n = len(src)
	}
	if n == 0 {
		return 0
	}
	w := (ch.head + ch.count) % len(ch.ring)
	first := len(ch.ring) - w
	if first > n {
		first = n
	}
	copy(ch.ring[w:w+first], src[:first])
	copy(ch.ring[:n-first], src[first:n])
	ch.count += n
	return n
}

// take moves up to len(dst) samples out of the ring. ch.mu must be held.
func (ch *channel) take(dst []complex128) int {
	n := ch.count
	if n > len(dst) {
		n = len(dst)
	}
	if n == 0 {
		return 0
	}
	first := len(ch.ring) - ch.head
	if first > n {
		first = n
	}
	copy(dst[:first], ch.ring[ch.head:ch.head+first])
	copy(dst[first:n], ch.ring[:n-first])
	ch.head = (ch.head + n) % len(ch.ring)
	ch.count -= n
	return n
}

// worker is one member of the bounded drain/decision pool.
func (e *Engine) worker() {
	defer e.wg.Done()
	chunk := make([]complex128, drainChunk)
	for {
		select {
		case <-e.done:
			return
		case ch := <-e.work:
			e.drain(ch, chunk)
		}
	}
}

// drain feeds a claimed channel's ring contents into its accumulator
// until the ring empties (clearing the queued flag) or the fairness
// budget runs out (requeueing the channel).
func (e *Engine) drain(ch *channel, chunk []complex128) {
	for spins := 0; ; spins++ {
		ch.mu.Lock()
		n := ch.take(chunk)
		if n == 0 {
			ch.queued = false
			ch.mu.Unlock()
			return
		}
		if e.cfg.Block {
			ch.cond.Broadcast()
		}
		ch.mu.Unlock()
		if !ch.dead {
			e.feed(ch, chunk[:n])
		}
		if e.isClosed() {
			return
		}
		if spins >= maxDrainSpins {
			// Yield the worker; the channel stays queued.
			select {
			case e.work <- ch:
			case <-e.done:
			}
			return
		}
	}
}

// feed pushes one drained chunk into the accumulator, splitting it at
// decision-window boundaries so every window covers exactly
// SnapshotSamples samples.
func (e *Engine) feed(ch *channel, chunk []complex128) {
	for len(chunk) > 0 {
		n := e.cfg.SnapshotSamples - ch.sinceSnap
		if n > len(chunk) {
			n = len(chunk)
		}
		if err := ch.acc.Push(chunk[:n]); err != nil {
			// Accumulator push errors indicate configuration bugs; the
			// channel is dead from here on (Push reports the error).
			msg := err.Error()
			ch.err.Store(&msg)
			ch.dead = true
			return
		}
		if ch.dec.NeedsSamples() {
			// Sample-based deciders (dg, urriza) see the raw samples of
			// the span since the last decision; the buffer is released
			// once a decision is made, so in cumulative mode the decider
			// still evaluates only the newest window while the surface
			// keeps integrating.
			ch.win = append(ch.win, chunk[:n]...)
		}
		ch.sinceSnap += n
		ch.processed += int64(n)
		chunk = chunk[n:]
		if ch.sinceSnap >= e.cfg.SnapshotSamples {
			ch.sinceSnap = 0
			// A window whose estimator needs more smoothing than
			// SnapshotSamples provides simply keeps accumulating; the
			// decision comes at the next boundary.
			if ch.acc.Ready() {
				e.decide(ch)
				ch.win = ch.win[:0]
				if !e.cfg.Cumulative {
					ch.acc.Reset()
				}
			}
		}
	}
}

// decide snapshots the channel's surface and applies the decision layer.
func (e *Engine) decide(ch *channel) {
	s, _, err := ch.acc.Snapshot()
	if err != nil {
		// Ready() gated this; failure here is data-dependent and rare —
		// skip the window rather than killing the channel.
		return
	}
	d := Decision{
		Channel:       ch.id,
		WindowSamples: ch.acc.Samples(),
		TotalSamples:  ch.processed,
		Estimator:     ch.acc.Name(),
		Detector:      ch.dec.Name(),
		TargetPfa:     ch.dec.TargetPfa(),
		At:            time.Now(),
	}
	res, err := ch.dec.Decide(s, ch.win)
	if err != nil {
		// Data-dependent decider failures (e.g. a partial flush window
		// too short for an asymptotic test) skip the window rather than
		// killing the channel, like snapshot failures above.
		return
	}
	d.Statistic, d.Threshold, d.Detected = res.Statistic, res.Threshold, res.Detected
	// The reported feature is the strongest cell in the offsets the
	// decision layer actually searched (|a| >= MinAbsA), so its
	// coordinates always describe the peak behind the statistic.
	d.FeatureF, d.FeatureA = maxFeatureMinA(s, e.cfg.MinAbsA)
	// Counters only move once the decision is definitely emitted, so
	// Seq stays gapless and Surfaces == decisions made.
	d.Seq = ch.seq
	ch.seq++
	e.surfaces.Add(1)
	ch.snapshots.Add(1)
	if s.Pruned() {
		extent := int64(s.Extent())
		e.prunedCellsSkipped.Add((extent - int64(len(s.Data))) * extent)
	}
	if d.Detected {
		ch.detections.Add(1)
		e.detections.Add(1)
	}
	ch.last.Store(&d)
	select {
	case e.out <- d:
	default:
		e.decisionsDropped.Add(1)
	}
}

// maxFeatureMinA locates the largest-magnitude cell over the held rows
// with |a| >= minAbsA — the same search region the CFD statistic and the
// CFAR profile use, unlike Surface.MaxFeature which only excludes a=0.
// On an alpha-pruned surface only the candidate rows are searched.
func maxFeatureMinA(s *scf.Surface, minAbsA int) (f, a int) {
	best := -1.0
	m := s.M - 1
	alphas := s.AlphaValues()
	for i, row := range s.Data {
		av := alphas[i]
		if av > -minAbsA && av < minAbsA {
			continue
		}
		for fi, v := range row {
			if mag := real(v)*real(v) + imag(v)*imag(v); mag > best {
				best, f, a = mag, fi-m, av
			}
		}
	}
	return f, a
}

// Decisions returns the stream of periodic verdicts. The channel is
// closed by Close. Slow consumers never stall sensing: overflow
// decisions are dropped and counted, and the latest decision per channel
// is always available via ChannelStats.
func (e *Engine) Decisions() <-chan Decision { return e.out }

// isClosed reports whether Close has begun.
func (e *Engine) isClosed() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// Flush blocks until every ring is drained and every due decision made,
// or the timeout elapses. It is the quiesce point for batch feeds and
// benchmarks; a continuously fed engine never goes idle.
func (e *Engine) Flush(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if e.idle() {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("stream: flush timed out after %v", timeout)
		}
		time.Sleep(time.Millisecond)
	}
}

// idle reports whether no channel has pending or in-flight samples.
func (e *Engine) idle() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	for _, ch := range e.channels {
		ch.mu.Lock()
		busy := ch.count > 0 || ch.queued
		ch.mu.Unlock()
		if busy {
			return false
		}
	}
	return true
}

// Close stops the engine: pushes begin returning ErrClosed, blocked
// pushes wake, workers exit, and the Decisions channel is closed.
// Samples still sitting in rings are discarded (Flush first to avoid
// that). Close is idempotent.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	close(e.done)
	e.mu.RLock()
	for _, ch := range e.channels {
		ch.mu.Lock()
		ch.cond.Broadcast()
		ch.mu.Unlock()
	}
	e.mu.RUnlock()
	e.wg.Wait()
	close(e.out)
	return nil
}

// Channels returns the channel ids in registration order.
func (e *Engine) Channels() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, len(e.order))
	copy(out, e.order)
	return out
}

// Stats returns engine-wide accounting.
func (e *Engine) Stats() Stats {
	e.mu.RLock()
	n := len(e.channels)
	var queued int64
	for _, ch := range e.channels {
		ch.mu.Lock()
		queued += int64(ch.count)
		ch.mu.Unlock()
	}
	e.mu.RUnlock()
	elapsed := time.Since(e.start)
	s := Stats{
		Channels:           n,
		SamplesIn:          e.samplesIn.Load(),
		SamplesDropped:     e.samplesDropped.Load(),
		Surfaces:           e.surfaces.Load(),
		Detections:         e.detections.Load(),
		DecisionsDropped:   e.decisionsDropped.Load(),
		QueuedSamples:      queued,
		PrunedCellsSkipped: e.prunedCellsSkipped.Load(),
		Elapsed:            elapsed,
	}
	if sec := elapsed.Seconds(); sec > 0 {
		s.SamplesPerSec = float64(s.SamplesIn) / sec
		s.SurfacesPerSec = float64(s.Surfaces) / sec
	}
	return s
}

// ChannelStats returns one channel's accounting; ok is false for an
// unknown id.
func (e *Engine) ChannelStats(id string) (ChannelStats, bool) {
	e.mu.RLock()
	ch := e.channels[id]
	e.mu.RUnlock()
	if ch == nil {
		return ChannelStats{}, false
	}
	cs := ChannelStats{
		ID:             ch.id,
		SamplesIn:      ch.samplesIn.Load(),
		SamplesDropped: ch.dropped.Load(),
		Snapshots:      ch.snapshots.Load(),
		Detections:     ch.detections.Load(),
		Last:           ch.last.Load(),
	}
	if msg := ch.err.Load(); msg != nil {
		cs.Err = *msg
	}
	return cs, true
}
