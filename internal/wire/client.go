package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultAckTimeout bounds how long Open waits for the server's ack.
const DefaultAckTimeout = 10 * time.Second

// Client is one wire-protocol connection to an ingestion server. It is
// safe for concurrent use: sends on different channels interleave frame
// by frame.
type Client struct {
	conn net.Conn

	// wmu serialises frame writes from concurrent channel senders.
	wmu sync.Mutex
	bw  *bufio.Writer
	buf []byte // frame scratch, under wmu

	// mu guards the pending-ack table and ref allocation.
	mu      sync.Mutex
	pending map[uint16]chan ackResult
	nextRef uint16

	ackTimeout time.Duration
	shed       atomic.Int64
	err        atomic.Pointer[error]
	done       chan struct{}
	closeOnce  sync.Once
}

// ackResult is one open acknowledgement delivered to a waiting Open.
type ackResult struct {
	status byte
	msg    string
}

// ChannelStream is one opened channel on a client connection.
type ChannelStream struct {
	c      *Client
	ref    uint16
	format Format
	id     string
}

// Dial connects to a wire server and completes the preamble.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn)
}

// NewClient runs the wire protocol over an established connection
// (the caller keeps ownership of dialing/TLS concerns).
func NewClient(conn net.Conn) (*Client, error) {
	c := &Client{
		conn:       conn,
		bw:         bufio.NewWriter(conn),
		pending:    make(map[uint16]chan ackResult),
		ackTimeout: DefaultAckTimeout,
		done:       make(chan struct{}),
	}
	if err := writePreamble(c.bw); err != nil {
		conn.Close()
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		conn.Close()
		return nil, err
	}
	go c.readLoop()
	return c, nil
}

// fail records the first fatal error and tears the connection down.
func (c *Client) fail(err error) {
	c.err.CompareAndSwap(nil, &err)
	c.closeOnce.Do(func() {
		close(c.done)
		c.conn.Close()
	})
	// Wake every waiting Open.
	c.mu.Lock()
	for ref, ch := range c.pending {
		close(ch)
		delete(c.pending, ref)
	}
	c.mu.Unlock()
}

// readLoop dispatches server→client frames: acks to waiting opens, shed
// notices to the counter, errors to the terminal state.
func (c *Client) readLoop() {
	br := bufio.NewReader(c.conn)
	var buf []byte
	for {
		typ, p, next, err := readFrame(br, buf, DefaultMaxFrameBytes)
		if err != nil {
			c.fail(fmt.Errorf("wire: connection lost: %w", err))
			return
		}
		buf = next
		switch typ {
		case frameAck:
			if len(p) < 5 {
				c.fail(fmt.Errorf("wire: short ack frame (%d bytes)", len(p)))
				return
			}
			ref := binary.BigEndian.Uint16(p)
			msgLen := int(binary.BigEndian.Uint16(p[3:]))
			if len(p) != 5+msgLen {
				c.fail(fmt.Errorf("wire: ack frame length mismatch"))
				return
			}
			res := ackResult{status: p[2], msg: string(p[5:])}
			c.mu.Lock()
			ch := c.pending[ref]
			delete(c.pending, ref)
			c.mu.Unlock()
			if ch != nil {
				ch <- res
			}
		case frameShed:
			if len(p) != 10 {
				c.fail(fmt.Errorf("wire: short shed frame (%d bytes)", len(p)))
				return
			}
			c.shed.Add(int64(binary.BigEndian.Uint64(p[2:])))
		case frameError:
			msg := "server error"
			if len(p) >= 2 {
				msg = string(p[2:])
			}
			c.fail(fmt.Errorf("wire: server: %s", msg))
			return
		default:
			c.fail(fmt.Errorf("wire: unexpected server frame type %d", typ))
			return
		}
	}
}

// sendFrame serialises one frame onto the connection.
func (c *Client) sendFrame(typ byte, build func(dst []byte) []byte) error {
	if ep := c.err.Load(); ep != nil {
		return *ep
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.buf = build(c.buf[:0])
	if err := writeFrame(c.bw, typ, c.buf); err != nil {
		c.fail(err)
		return err
	}
	return nil
}

// Open registers a channel with the server and waits for the ack. The
// returned stream encodes every Send in meta.Format.
func (c *Client) Open(meta Meta) (*ChannelStream, error) {
	if err := meta.validate(); err != nil {
		return nil, err
	}
	ack := make(chan ackResult, 1)
	c.mu.Lock()
	ref := c.nextRef
	c.nextRef++
	c.pending[ref] = ack
	c.mu.Unlock()
	if err := c.sendFrame(frameOpen, func(dst []byte) []byte {
		return appendMeta(dst, ref, meta)
	}); err != nil {
		return nil, err
	}
	select {
	case res, ok := <-ack:
		if !ok {
			if ep := c.err.Load(); ep != nil {
				return nil, *ep
			}
			return nil, fmt.Errorf("wire: connection closed during open")
		}
		if res.status != ackOK {
			return nil, fmt.Errorf("wire: open %q rejected: %s", meta.ID, res.msg)
		}
		return &ChannelStream{c: c, ref: ref, format: meta.Format, id: meta.ID}, nil
	case <-time.After(c.ackTimeout):
		c.mu.Lock()
		delete(c.pending, ref)
		c.mu.Unlock()
		return nil, fmt.Errorf("wire: open %q: no ack within %v", meta.ID, c.ackTimeout)
	}
}

// ID returns the channel id the stream was opened with.
func (cs *ChannelStream) ID() string { return cs.id }

// Send streams one block of samples. It blocks under TCP backpressure
// when the server's engine is saturated — the flow-control path that
// lets a feeder run exactly at the service rate.
func (cs *ChannelStream) Send(samples []complex128) error {
	for len(samples) > 0 {
		n := len(samples)
		if limit := (DefaultMaxFrameBytes - 16) / cs.format.SampleBytes(); n > limit {
			n = limit
		}
		block := samples[:n]
		samples = samples[n:]
		err := cs.c.sendFrame(frameData, func(dst []byte) []byte {
			dst = binary.BigEndian.AppendUint16(dst, cs.ref)
			dst = binary.BigEndian.AppendUint32(dst, uint32(len(block)))
			return appendSamples(dst, cs.format, block)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// Close announces the end of the channel's stream. The connection stays
// usable for other channels.
func (cs *ChannelStream) Close() error {
	return cs.c.sendFrame(frameClose, func(dst []byte) []byte {
		return binary.BigEndian.AppendUint16(dst, cs.ref)
	})
}

// ShedSamples returns the cumulative number of samples the server
// reported shedding from this connection under its quota.
func (c *Client) ShedSamples() int64 { return c.shed.Load() }

// Err returns the connection's terminal error, nil while healthy.
func (c *Client) Err() error {
	if ep := c.err.Load(); ep != nil {
		return *ep
	}
	return nil
}

// Close tears the connection down. Always returns nil after the first
// call.
func (c *Client) Close() error {
	err := fmt.Errorf("wire: client closed")
	c.err.CompareAndSwap(nil, &err)
	c.closeOnce.Do(func() {
		close(c.done)
		c.conn.Close()
	})
	return nil
}
