package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tiledcfd/internal/stream"
)

// DefaultAckTimeout bounds how long Open waits for the server's ack.
const DefaultAckTimeout = 10 * time.Second

// DefaultCallTimeout bounds one control round-trip (ping, remove,
// flush, stats) when the caller passes no timeout.
const DefaultCallTimeout = 10 * time.Second

// Client is one wire-protocol connection to an ingestion server. It is
// safe for concurrent use: sends on different channels interleave frame
// by frame.
type Client struct {
	conn net.Conn

	// wmu serialises frame writes from concurrent channel senders.
	wmu sync.Mutex
	bw  *bufio.Writer
	buf []byte // frame scratch, under wmu

	// mu guards the pending-ack and call tables and ref allocation.
	mu      sync.Mutex
	pending map[uint16]chan ackResult
	calls   map[uint16]chan callResult
	nextRef uint16
	nextReq uint16

	ackTimeout   time.Duration
	writeTimeout atomic.Int64 // nanoseconds; 0 = no deadline
	shed         atomic.Int64
	dec          chan stream.Decision
	decDropped   atomic.Int64
	err          atomic.Pointer[error]
	done         chan struct{}
	closeOnce    sync.Once
}

// ackResult is one open acknowledgement delivered to a waiting Open.
type ackResult struct {
	status byte
	msg    string
}

// callResult is one control response delivered to a waiting round-trip.
type callResult struct {
	status  byte
	msg     string
	payload []byte // copied out of the frame scratch
}

// ChannelStream is one opened channel on a client connection.
type ChannelStream struct {
	c      *Client
	ref    uint16
	format Format
	id     string
}

// Dial connects to a wire server and completes the preamble.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn)
}

// NewClient runs the wire protocol over an established connection
// (the caller keeps ownership of dialing/TLS concerns).
func NewClient(conn net.Conn) (*Client, error) {
	c := &Client{
		conn:       conn,
		bw:         bufio.NewWriter(conn),
		pending:    make(map[uint16]chan ackResult),
		calls:      make(map[uint16]chan callResult),
		ackTimeout: DefaultAckTimeout,
		dec:        make(chan stream.Decision, 256),
		done:       make(chan struct{}),
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetKeepAlive(true)                         //nolint:errcheck // best-effort hardening
		tc.SetKeepAlivePeriod(DefaultKeepAlivePeriod) //nolint:errcheck // best-effort hardening
	}
	if err := writePreamble(c.bw); err != nil {
		conn.Close()
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		conn.Close()
		return nil, err
	}
	go c.readLoop()
	return c, nil
}

// SetWriteTimeout bounds every subsequent frame write (0 = no
// deadline). A write exceeding it fails the connection with
// os.ErrDeadlineExceeded in the chain — the per-push deadline the shard
// router's robustness layer keys on.
func (c *Client) SetWriteTimeout(d time.Duration) { c.writeTimeout.Store(int64(d)) }

// SetAckTimeout bounds how long subsequent Opens wait for the server's
// ack (0 restores the default). A robustness layer managing the link
// sets this to its per-push deadline so a wedged server cannot stall a
// reconnect for the full default.
func (c *Client) SetAckTimeout(d time.Duration) {
	if d <= 0 {
		d = DefaultAckTimeout
	}
	c.mu.Lock()
	c.ackTimeout = d
	c.mu.Unlock()
}

// fail records the first fatal error and tears the connection down.
func (c *Client) fail(err error) {
	c.err.CompareAndSwap(nil, &err)
	c.closeOnce.Do(func() {
		close(c.done)
		c.conn.Close()
	})
	// Wake every waiting Open and control call.
	c.mu.Lock()
	for ref, ch := range c.pending {
		close(ch)
		delete(c.pending, ref)
	}
	for req, ch := range c.calls {
		close(ch)
		delete(c.calls, req)
	}
	c.mu.Unlock()
}

// readLoop dispatches server→client frames: acks to waiting opens,
// control results to waiting calls, decisions to the subscription
// stream, shed notices to the counter, errors to the terminal state.
func (c *Client) readLoop() {
	defer close(c.dec) // single sender: decisions end exactly when the loop does
	br := bufio.NewReader(c.conn)
	var buf []byte
	for {
		typ, p, next, err := readFrame(br, buf, DefaultMaxFrameBytes)
		if err != nil {
			c.fail(fmt.Errorf("wire: connection lost: %w", err))
			return
		}
		buf = next
		switch typ {
		case frameAck:
			if len(p) < 5 {
				c.fail(fmt.Errorf("wire: short ack frame (%d bytes)", len(p)))
				return
			}
			ref := binary.BigEndian.Uint16(p)
			msgLen := int(binary.BigEndian.Uint16(p[3:]))
			if len(p) != 5+msgLen {
				c.fail(fmt.Errorf("wire: ack frame length mismatch"))
				return
			}
			res := ackResult{status: p[2], msg: string(p[5:])}
			c.mu.Lock()
			ch := c.pending[ref]
			delete(c.pending, ref)
			c.mu.Unlock()
			if ch != nil {
				ch <- res
			}
		case frameResult:
			if len(p) < 3 {
				c.fail(fmt.Errorf("wire: short result frame (%d bytes)", len(p)))
				return
			}
			req := binary.BigEndian.Uint16(p)
			res := callResult{status: p[2]}
			if res.status == resultOK {
				res.payload = append([]byte(nil), p[3:]...)
			} else {
				res.msg = string(p[3:])
			}
			c.mu.Lock()
			ch := c.calls[req]
			delete(c.calls, req)
			c.mu.Unlock()
			if ch != nil {
				ch <- res
			}
		case frameDecision:
			r := &byteReader{p: p}
			d := readDecision(r)
			if r.err != nil {
				c.fail(fmt.Errorf("wire: malformed decision frame: %w", r.err))
				return
			}
			select {
			case c.dec <- d:
			default:
				c.decDropped.Add(1)
			}
		case frameShed:
			if len(p) != 10 {
				c.fail(fmt.Errorf("wire: short shed frame (%d bytes)", len(p)))
				return
			}
			c.shed.Add(int64(binary.BigEndian.Uint64(p[2:])))
		case frameError:
			msg := "server error"
			if len(p) >= 2 {
				msg = string(p[2:])
			}
			c.fail(fmt.Errorf("wire: server: %s", msg))
			return
		default:
			c.fail(fmt.Errorf("wire: unexpected server frame type %d", typ))
			return
		}
	}
}

// sendFrame serialises one frame onto the connection, bounded by the
// write timeout when one is set.
func (c *Client) sendFrame(typ byte, build func(dst []byte) []byte) error {
	if ep := c.err.Load(); ep != nil {
		return *ep
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if d := time.Duration(c.writeTimeout.Load()); d > 0 {
		c.conn.SetWriteDeadline(time.Now().Add(d)) //nolint:errcheck // write below surfaces the failure
	}
	c.buf = build(c.buf[:0])
	if err := writeFrame(c.bw, typ, c.buf); err != nil {
		c.fail(err)
		return err
	}
	return nil
}

// roundTrip runs one control request and waits for its result frame.
func (c *Client) roundTrip(typ byte, timeout time.Duration, build func(dst []byte) []byte) ([]byte, error) {
	if timeout <= 0 {
		timeout = DefaultCallTimeout
	}
	res := make(chan callResult, 1)
	c.mu.Lock()
	req := c.nextReq
	c.nextReq++
	c.calls[req] = res
	c.mu.Unlock()
	if err := c.sendFrame(typ, func(dst []byte) []byte {
		dst = binary.BigEndian.AppendUint16(dst, req)
		if build != nil {
			dst = build(dst)
		}
		return dst
	}); err != nil {
		c.mu.Lock()
		delete(c.calls, req)
		c.mu.Unlock()
		return nil, err
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case r, ok := <-res:
		if !ok {
			if ep := c.err.Load(); ep != nil {
				return nil, *ep
			}
			return nil, fmt.Errorf("wire: connection closed during control call")
		}
		if r.status != resultOK {
			return nil, fmt.Errorf("wire: remote: %s", r.msg)
		}
		return r.payload, nil
	case <-t.C:
		c.mu.Lock()
		delete(c.calls, req)
		c.mu.Unlock()
		return nil, fmt.Errorf("wire: control frame %d: no result within %v", typ, timeout)
	}
}

// Ping probes the server's liveness: a heartbeat round-trip through the
// server's frame loop, bounded by timeout (0 = DefaultCallTimeout).
func (c *Client) Ping(timeout time.Duration) error {
	_, err := c.roundTrip(framePing, timeout, nil)
	return err
}

// Subscribe registers this connection for the worker engine's decision
// stream; decisions arrive on Decisions until the connection dies.
func (c *Client) Subscribe(timeout time.Duration) error {
	_, err := c.roundTrip(frameSubscribe, timeout, nil)
	return err
}

// Decisions returns the subscribed decision stream. It is closed when
// the connection dies, so a consumer ranges over it and then inspects
// Err. Decisions overflowing the subscriber's buffer are dropped and
// counted (DecisionsDropped).
func (c *Client) Decisions() <-chan stream.Decision { return c.dec }

// DecisionsDropped counts subscribed decisions dropped because the
// Decisions buffer was full.
func (c *Client) DecisionsDropped() int64 { return c.decDropped.Load() }

// RemoveChannel removes a channel from the remote worker engine,
// quiescing it (bounded by timeout server-side) and returning its final
// accounting.
func (c *Client) RemoveChannel(id string, timeout time.Duration) (stream.ChannelStats, error) {
	p, err := c.roundTrip(frameRemove, timeout+DefaultCallTimeout, func(dst []byte) []byte {
		dst = binary.BigEndian.AppendUint32(dst, uint32(timeout/time.Millisecond))
		return appendStr(dst, id)
	})
	if err != nil {
		return stream.ChannelStats{}, err
	}
	r := &byteReader{p: p}
	cs := readChannelStats(r)
	return cs, r.err
}

// Flush asks the remote worker engine to drain its rings and make due
// decisions, bounded by timeout server-side.
func (c *Client) Flush(timeout time.Duration) error {
	_, err := c.roundTrip(frameFlush, timeout+DefaultCallTimeout, func(dst []byte) []byte {
		return binary.BigEndian.AppendUint32(dst, uint32(timeout/time.Millisecond))
	})
	return err
}

// EngineStats returns the remote worker engine's accounting.
func (c *Client) EngineStats(timeout time.Duration) (stream.Stats, error) {
	p, err := c.roundTrip(frameStats, timeout, nil)
	if err != nil {
		return stream.Stats{}, err
	}
	r := &byteReader{p: p}
	st := readStats(r)
	return st, r.err
}

// EngineChannelStats returns one channel's accounting on the remote
// worker engine; ok is false for an unknown id.
func (c *Client) EngineChannelStats(id string, timeout time.Duration) (stream.ChannelStats, bool, error) {
	p, err := c.roundTrip(frameChanStats, timeout, func(dst []byte) []byte {
		return appendStr(dst, id)
	})
	if err != nil {
		return stream.ChannelStats{}, false, err
	}
	r := &byteReader{p: p}
	if r.u8() != 1 {
		return stream.ChannelStats{}, false, r.err
	}
	cs := readChannelStats(r)
	return cs, true, r.err
}

// Open registers a channel with the server and waits for the ack. The
// returned stream encodes every Send in meta.Format.
func (c *Client) Open(meta Meta) (*ChannelStream, error) {
	if err := meta.validate(); err != nil {
		return nil, err
	}
	ack := make(chan ackResult, 1)
	c.mu.Lock()
	ref := c.nextRef
	c.nextRef++
	c.pending[ref] = ack
	ackTimeout := c.ackTimeout
	c.mu.Unlock()
	if err := c.sendFrame(frameOpen, func(dst []byte) []byte {
		return appendMeta(dst, ref, meta)
	}); err != nil {
		return nil, err
	}
	select {
	case res, ok := <-ack:
		if !ok {
			if ep := c.err.Load(); ep != nil {
				return nil, *ep
			}
			return nil, fmt.Errorf("wire: connection closed during open")
		}
		if res.status != ackOK {
			return nil, fmt.Errorf("wire: open %q rejected: %s", meta.ID, res.msg)
		}
		return &ChannelStream{c: c, ref: ref, format: meta.Format, id: meta.ID}, nil
	case <-time.After(ackTimeout):
		c.mu.Lock()
		delete(c.pending, ref)
		c.mu.Unlock()
		return nil, fmt.Errorf("wire: open %q: no ack within %v", meta.ID, ackTimeout)
	}
}

// ID returns the channel id the stream was opened with.
func (cs *ChannelStream) ID() string { return cs.id }

// Send streams one block of samples. It blocks under TCP backpressure
// when the server's engine is saturated — the flow-control path that
// lets a feeder run exactly at the service rate.
func (cs *ChannelStream) Send(samples []complex128) error {
	for len(samples) > 0 {
		n := len(samples)
		if limit := (DefaultMaxFrameBytes - 16) / cs.format.SampleBytes(); n > limit {
			n = limit
		}
		block := samples[:n]
		samples = samples[n:]
		err := cs.c.sendFrame(frameData, func(dst []byte) []byte {
			dst = binary.BigEndian.AppendUint16(dst, cs.ref)
			dst = binary.BigEndian.AppendUint32(dst, uint32(len(block)))
			return appendSamples(dst, cs.format, block)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// Close announces the end of the channel's stream. The connection stays
// usable for other channels.
func (cs *ChannelStream) Close() error {
	return cs.c.sendFrame(frameClose, func(dst []byte) []byte {
		return binary.BigEndian.AppendUint16(dst, cs.ref)
	})
}

// ShedSamples returns the cumulative number of samples the server
// reported shedding from this connection under its quota.
func (c *Client) ShedSamples() int64 { return c.shed.Load() }

// Err returns the connection's terminal error, nil while healthy.
func (c *Client) Err() error {
	if ep := c.err.Load(); ep != nil {
		return *ep
	}
	return nil
}

// Close tears the connection down. Always returns nil after the first
// call.
func (c *Client) Close() error {
	err := fmt.Errorf("wire: client closed")
	c.err.CompareAndSwap(nil, &err)
	c.closeOnce.Do(func() {
		close(c.done)
		c.conn.Close()
	})
	return nil
}
