package wire

import (
	"reflect"
	"strings"
	"testing"
)

// TestMetaRoundTrip drives appendMeta → parseMeta across every layout
// generation: the original frame, the alpha-candidate extension, and
// the detector extension (which forces the candidate extension, even
// empty, because extensions are positional).
func TestMetaRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		m    Meta
	}{
		{"original", Meta{ID: "ch-1", Format: FormatCF32, SampleRateHz: 1e6, CenterFreqHz: 433e6}},
		{"candidates", Meta{ID: "ch-2", Format: FormatCI16, AlphaCandidates: []int{8, 4, 65535}}},
		{"detector-only", Meta{ID: "ch-3", Format: FormatCF64, Detector: "dg", TargetPfa: 0.05}},
		{"candidates+detector", Meta{ID: "ch-4", Format: FormatCF32,
			AlphaCandidates: []int{16, 32}, Detector: "urriza", TargetPfa: 0.01}},
		{"detector-default-pfa", Meta{ID: "ch-5", Format: FormatCF32, Detector: "dg"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			buf := appendMeta(nil, 42, c.m)
			ref, got, err := parseMeta(buf)
			if err != nil {
				t.Fatal(err)
			}
			if ref != 42 {
				t.Errorf("ref = %d, want 42", ref)
			}
			if !reflect.DeepEqual(got, c.m) {
				t.Errorf("round trip:\n got %+v\nwant %+v", got, c.m)
			}
		})
	}
}

// A frame with no extensions must encode to the pre-extension layout
// byte for byte: 2 ref + 1 format + 8 rate + 8 freq + 2 idlen + id.
func TestMetaOriginalLayoutUnchanged(t *testing.T) {
	m := Meta{ID: "legacy", Format: FormatCF32}
	buf := appendMeta(nil, 1, m)
	if want := 2 + 1 + 8 + 8 + 2 + len(m.ID); len(buf) != want {
		t.Fatalf("legacy frame %d bytes, want %d — extension emitted without candidates or detector",
			len(buf), want)
	}
}

// Naming a detector with no candidates must still emit the candidate
// extension (count 0) so the positional detector extension parses.
func TestMetaDetectorForcesCandidateExtension(t *testing.T) {
	m := Meta{ID: "d", Format: FormatCF32, Detector: "dg", TargetPfa: 0.05}
	buf := appendMeta(nil, 1, m)
	base := 2 + 1 + 8 + 8 + 2 + len(m.ID)
	want := base + 2 /* count=0 */ + 1 + len(m.Detector) + 8
	if len(buf) != want {
		t.Fatalf("frame %d bytes, want %d", len(buf), want)
	}
	if buf[base] != 0 || buf[base+1] != 0 {
		t.Fatalf("candidate count bytes = %v, want zero", buf[base:base+2])
	}
}

func TestMetaDetectorValidation(t *testing.T) {
	for _, c := range []struct {
		name string
		m    Meta
		want string
	}{
		{"long-name", Meta{ID: "x", Format: FormatCF32,
			Detector: strings.Repeat("d", 256)}, "detector name"},
		{"pfa-high", Meta{ID: "x", Format: FormatCF32, Detector: "dg", TargetPfa: 1}, "target pfa"},
		{"pfa-negative", Meta{ID: "x", Format: FormatCF32, Detector: "dg", TargetPfa: -0.1}, "target pfa"},
		{"pfa-without-detector", Meta{ID: "x", Format: FormatCF32, TargetPfa: 0.05}, "without a detector"},
	} {
		t.Run(c.name, func(t *testing.T) {
			err := c.m.validate()
			if err == nil {
				t.Fatalf("meta %+v validated", c.m)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

// Truncating the detector extension must be rejected, not misparsed.
func TestMetaTruncatedDetectorExtension(t *testing.T) {
	m := Meta{ID: "x", Format: FormatCF32, Detector: "urriza", TargetPfa: 0.05}
	buf := appendMeta(nil, 1, m)
	for cut := 1; cut <= 8; cut++ {
		if _, _, err := parseMeta(buf[:len(buf)-cut]); err == nil {
			t.Fatalf("frame truncated by %d bytes parsed", cut)
		}
	}
}
