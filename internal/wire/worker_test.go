package wire

import (
	"strings"
	"testing"
	"time"

	"tiledcfd/internal/scf"
	"tiledcfd/internal/stream"
)

const workerWindow = 2048

// newWorkerEngine builds the small engine the worker-mode tests host.
func newWorkerEngine(t *testing.T) *stream.Engine {
	t.Helper()
	eng, err := stream.New(stream.Config{
		Estimator:       scf.Direct{Params: scf.Params{K: 64, M: 16}},
		SnapshotSamples: workerWindow,
		Block:           true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng
}

// engineSink adapts the engine to the wire data plane.
type engineSink struct{ eng *stream.Engine }

func (s engineSink) OpenChannel(meta Meta) error { return s.eng.AddChannel(meta.ID) }
func (s engineSink) Push(id string, samples []complex128) (int, error) {
	return s.eng.Push(id, samples)
}

// TestWorkerControlPlane drives the full worker-mode surface over
// loopback — ping, subscribe, engine and channel stats, flush, remove —
// and checks a subscribed decision is bit-identical to a local engine
// fed the same samples (cf64 on the wire is lossless).
func TestWorkerControlPlane(t *testing.T) {
	eng := newWorkerEngine(t)
	_, addr := startServer(t, ServerConfig{Sink: engineSink{eng}, Engine: eng})
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	if err := cli.Ping(time.Second); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if err := cli.Subscribe(time.Second); err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	cs, err := cli.Open(Meta{ID: "ch", Format: FormatCF64})
	if err != nil {
		t.Fatal(err)
	}
	samples := band(workerWindow, 7)
	if err := cs.Send(samples); err != nil {
		t.Fatal(err)
	}
	if err := cli.Flush(5 * time.Second); err != nil {
		t.Fatalf("flush: %v", err)
	}

	var remote stream.Decision
	select {
	case remote = <-cli.Decisions():
	case <-time.After(5 * time.Second):
		t.Fatal("no subscribed decision within 5s")
	}
	// A local engine fed the identical samples must decide identically:
	// the worker protocol adds no numerical noise.
	local := newWorkerEngine(t)
	if err := local.AddChannel("ch"); err != nil {
		t.Fatal(err)
	}
	if _, err := local.Push("ch", samples); err != nil {
		t.Fatal(err)
	}
	if err := local.Flush(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	want := <-local.Decisions()
	if remote.Channel != want.Channel || remote.Seq != want.Seq ||
		remote.WindowSamples != want.WindowSamples || remote.Detected != want.Detected ||
		remote.Statistic != want.Statistic || remote.Threshold != want.Threshold ||
		remote.FeatureF != want.FeatureF || remote.FeatureA != want.FeatureA {
		t.Fatalf("remote decision %+v != local %+v", remote, want)
	}

	st, err := cli.EngineStats(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.Channels != 1 || st.SamplesIn != workerWindow || st.Surfaces != 1 {
		t.Fatalf("engine stats %+v, want 1 channel / %d samples / 1 surface", st, workerWindow)
	}
	chs, found, err := cli.EngineChannelStats("ch", time.Second)
	if err != nil || !found {
		t.Fatalf("channel stats: found=%v err=%v", found, err)
	}
	if chs.SamplesIn != workerWindow || chs.Snapshots != 1 || chs.Last == nil {
		t.Fatalf("channel stats %+v, want the pushed window accounted with its decision", chs)
	}
	if _, found, err := cli.EngineChannelStats("nope", time.Second); err != nil || found {
		t.Fatalf("unknown channel: found=%v err=%v, want a clean not-found", found, err)
	}

	final, err := cli.RemoveChannel("ch", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if final.SamplesIn != workerWindow || final.Snapshots != 1 {
		t.Fatalf("final stats %+v, want the full window carried out", final)
	}
	if _, found, err := cli.EngineChannelStats("ch", time.Second); err != nil || found {
		t.Fatalf("channel survived removal: found=%v err=%v", found, err)
	}
}

// TestControlFramesRejectedOnNonWorkerServer: a plain ingest server
// answers pings but refuses engine control frames.
func TestControlFramesRejectedOnNonWorkerServer(t *testing.T) {
	_, addr := startServer(t, ServerConfig{Sink: newMemSink()})
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Ping(time.Second); err != nil {
		t.Fatalf("ping on a non-worker server: %v", err)
	}
	if err := cli.Flush(time.Second); err == nil || !strings.Contains(err.Error(), "non-worker") {
		t.Fatalf("flush on a non-worker server = %v, want a non-worker rejection", err)
	}
}

// TestWorkerRemoveOnCloseSweepsChannels: when a worker-mode connection
// dies its channels leave the engine, so a reconnect re-opens fresh
// state instead of colliding with stale registrations.
func TestWorkerRemoveOnCloseSweepsChannels(t *testing.T) {
	eng := newWorkerEngine(t)
	_, addr := startServer(t, ServerConfig{Sink: engineSink{eng}, Engine: eng, RemoveOnClose: true})
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := cli.Open(Meta{ID: "ch", Format: FormatCF64})
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.Send(band(workerWindow/2, 3)); err != nil {
		t.Fatal(err)
	}
	cli.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := eng.ChannelStats("ch"); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("channel not swept out of the engine after its connection died")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Fresh connection, same id: starts clean.
	cli2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli2.Close()
	if _, err := cli2.Open(Meta{ID: "ch", Format: FormatCF64}); err != nil {
		t.Fatalf("re-open after sweep: %v", err)
	}
	st, found, err := cli2.EngineChannelStats("ch", time.Second)
	if err != nil || !found {
		t.Fatalf("re-opened channel stats: found=%v err=%v", found, err)
	}
	if st.SamplesIn != 0 {
		t.Fatalf("re-opened channel carries %d stale samples, want fresh state", st.SamplesIn)
	}
}

// TestIdleTimeoutClosesSilentConnection: a connection that goes quiet
// past the idle deadline is reaped server-side, and the client surfaces
// the failure — the fix for the idle-connection hang.
func TestIdleTimeoutClosesSilentConnection(t *testing.T) {
	srv, addr := startServer(t, ServerConfig{Sink: newMemSink(), IdleTimeout: 50 * time.Millisecond})
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	deadline := time.Now().Add(5 * time.Second)
	for cli.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("idle connection never reaped; client hung")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if srv.ActiveConns() != 0 {
		t.Fatalf("%d connections still active after idle reap", srv.ActiveConns())
	}
}
