package wire

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// Exposition accumulates Prometheus text-format (version 0.0.4) output
// with no external dependencies. Metric emits one sample; the # HELP
// and # TYPE headers appear once per family, on first use. Families
// must be emitted contiguously (all samples of one name together), as
// the format requires.
type Exposition struct {
	b     strings.Builder
	typed map[string]bool
}

// Metric appends one sample. typ is "counter" or "gauge"; labels
// alternate name, value. Label values are escaped per the exposition
// format.
func (e *Exposition) Metric(name, typ, help string, value float64, labels ...string) {
	if e.typed == nil {
		e.typed = make(map[string]bool)
	}
	if !e.typed[name] {
		e.typed[name] = true
		fmt.Fprintf(&e.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}
	e.b.WriteString(name)
	if len(labels) > 0 {
		e.b.WriteByte('{')
		for i := 0; i+1 < len(labels); i += 2 {
			if i > 0 {
				e.b.WriteByte(',')
			}
			fmt.Fprintf(&e.b, "%s=%q", labels[i], escapeLabel(labels[i+1]))
		}
		e.b.WriteByte('}')
	}
	e.b.WriteByte(' ')
	e.b.WriteString(strconv.FormatFloat(value, 'g', -1, 64))
	e.b.WriteByte('\n')
}

// escapeLabel applies the exposition-format label escapes the %q verb
// does not cover identically (newline, backslash, quote are shared with
// Go escaping, so %q suffices after normalising newlines).
func escapeLabel(v string) string {
	return strings.ReplaceAll(v, "\n", `\n`)
}

// String returns the accumulated exposition body.
func (e *Exposition) String() string { return e.b.String() }

// Handler serves a /metrics endpoint: collect is invoked per scrape to
// fill a fresh Exposition.
func Handler(collect func(*Exposition)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		var e Exposition
		collect(&e)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, e.String()) //nolint:errcheck // best-effort scrape
	})
}

// Collect contributes the server's ingest counters to an exposition,
// prefixed cfd_wire_.
func (s *Server) Collect(e *Exposition) {
	m := &s.Metrics
	e.Metric("cfd_wire_connections_total", "counter",
		"Wire-protocol connections accepted.", float64(m.ConnectionsTotal.Load()))
	e.Metric("cfd_wire_connections_active", "gauge",
		"Wire-protocol connections currently served.", float64(m.ConnectionsActive.Load()))
	e.Metric("cfd_wire_channels_opened_total", "counter",
		"Channel opens accepted.", float64(m.ChannelsOpened.Load()))
	e.Metric("cfd_wire_opens_rejected_total", "counter",
		"Channel opens rejected (duplicate, draining, limits).", float64(m.OpensRejected.Load()))
	e.Metric("cfd_wire_frames_in_total", "counter",
		"Frames read from clients.", float64(m.FramesIn.Load()))
	e.Metric("cfd_wire_bytes_in_total", "counter",
		"Bytes read from clients (frame payloads and headers).", float64(m.BytesIn.Load()))
	e.Metric("cfd_wire_samples_in_total", "counter",
		"IQ samples delivered to the engine.", float64(m.SamplesIn.Load()))
	e.Metric("cfd_wire_quota_shed_samples_total", "counter",
		"IQ samples shed by per-client ingest quotas.", float64(m.SamplesShed.Load()))
	e.Metric("cfd_wire_quota_shed_frames_total", "counter",
		"Data frames shed by per-client ingest quotas.", float64(m.ShedFrames.Load()))
	e.Metric("cfd_wire_protocol_errors_total", "counter",
		"Connections dropped for malformed input.", float64(m.ProtocolErrors.Load()))
}
