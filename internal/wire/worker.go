package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"tiledcfd/internal/stream"
)

// RemoteEngine is the control surface a worker-mode server exposes on
// top of the data plane: the remaining stream.Engine methods a shard
// router needs to treat the worker as one of its sinks. *stream.Engine
// satisfies it directly. Pushes and opens still travel through the
// ServerConfig.Sink; RemoteEngine answers the control frames
// (remove/flush/stats/chanstats) and feeds subscribed connections the
// decision stream.
type RemoteEngine interface {
	// RemoveChannel quiesces and unregisters a channel, flushing a
	// partially integrated window into one final decision, and returns
	// the channel's final accounting.
	RemoveChannel(id string, timeout time.Duration) (stream.ChannelStats, error)
	// ChannelStats returns one channel's accounting; ok is false for an
	// unknown id.
	ChannelStats(id string) (stream.ChannelStats, bool)
	// Stats returns engine-wide accounting.
	Stats() stream.Stats
	// Flush blocks until pushed samples are processed and due decisions
	// made, or the timeout elapses.
	Flush(timeout time.Duration) error
	// Decisions is the engine's decision stream, forwarded to subscribed
	// connections. Closed when the engine closes.
	Decisions() <-chan stream.Decision
}

// resultOK is the frameResult status byte for a successful request.
const resultOK = 0

// maxRemoveTimeout and maxFlushTimeout clamp client-supplied control
// timeouts so a hostile peer cannot park the connection's read loop
// arbitrarily long in a quiesce.
const (
	maxRemoveTimeout = time.Minute
	maxFlushTimeout  = 5 * time.Minute
)

// byteReader is a bounds-checked cursor over one frame payload; the
// first out-of-range read latches err and zero-values every read after
// it, so parsers can decode straight-line and check once.
type byteReader struct {
	p   []byte
	err error
}

// fail latches the first error.
func (r *byteReader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("wire: truncated control payload")
	}
	r.p = nil
}

// u8 reads one byte.
func (r *byteReader) u8() byte {
	if len(r.p) < 1 {
		r.fail()
		return 0
	}
	v := r.p[0]
	r.p = r.p[1:]
	return v
}

// u16 reads a big-endian uint16.
func (r *byteReader) u16() uint16 {
	if len(r.p) < 2 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint16(r.p)
	r.p = r.p[2:]
	return v
}

// u32 reads a big-endian uint32.
func (r *byteReader) u32() uint32 {
	if len(r.p) < 4 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.p)
	r.p = r.p[4:]
	return v
}

// i64 reads a big-endian int64.
func (r *byteReader) i64() int64 {
	if len(r.p) < 8 {
		r.fail()
		return 0
	}
	v := int64(binary.BigEndian.Uint64(r.p))
	r.p = r.p[8:]
	return v
}

// f64 reads a big-endian float64.
func (r *byteReader) f64() float64 {
	if len(r.p) < 8 {
		r.fail()
		return 0
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(r.p))
	r.p = r.p[8:]
	return v
}

// str reads a uint16-length-prefixed string.
func (r *byteReader) str() string {
	n := int(r.u16())
	if len(r.p) < n {
		r.fail()
		return ""
	}
	v := string(r.p[:n])
	r.p = r.p[n:]
	return v
}

// appendStr emits a uint16-length-prefixed string.
func appendStr(dst []byte, s string) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

// appendDecision encodes one engine decision for a decision frame or a
// channel-stats result.
func appendDecision(dst []byte, d stream.Decision) []byte {
	dst = appendStr(dst, d.Channel)
	dst = binary.BigEndian.AppendUint64(dst, uint64(d.Seq))
	dst = binary.BigEndian.AppendUint64(dst, uint64(int64(d.WindowSamples)))
	dst = binary.BigEndian.AppendUint64(dst, uint64(d.TotalSamples))
	if d.Detected {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(d.Statistic))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(d.Threshold))
	dst = binary.BigEndian.AppendUint64(dst, uint64(int64(d.FeatureF)))
	dst = binary.BigEndian.AppendUint64(dst, uint64(int64(d.FeatureA)))
	dst = appendStr(dst, d.Estimator)
	return binary.BigEndian.AppendUint64(dst, uint64(d.At.UnixNano()))
}

// readDecision decodes one encoded decision.
func readDecision(r *byteReader) stream.Decision {
	var d stream.Decision
	d.Channel = r.str()
	d.Seq = r.i64()
	d.WindowSamples = int(r.i64())
	d.TotalSamples = r.i64()
	d.Detected = r.u8() == 1
	d.Statistic = r.f64()
	d.Threshold = r.f64()
	d.FeatureF = int(r.i64())
	d.FeatureA = int(r.i64())
	d.Estimator = r.str()
	d.At = time.Unix(0, r.i64())
	return d
}

// appendChannelStats encodes one channel's accounting, including the
// optional last decision.
func appendChannelStats(dst []byte, cs stream.ChannelStats) []byte {
	dst = appendStr(dst, cs.ID)
	dst = binary.BigEndian.AppendUint64(dst, uint64(cs.SamplesIn))
	dst = binary.BigEndian.AppendUint64(dst, uint64(cs.SamplesDropped))
	dst = binary.BigEndian.AppendUint64(dst, uint64(cs.Snapshots))
	dst = binary.BigEndian.AppendUint64(dst, uint64(cs.Detections))
	if cs.Last != nil {
		dst = append(dst, 1)
		dst = appendDecision(dst, *cs.Last)
	} else {
		dst = append(dst, 0)
	}
	return appendStr(dst, cs.Err)
}

// readChannelStats decodes one channel's accounting.
func readChannelStats(r *byteReader) stream.ChannelStats {
	var cs stream.ChannelStats
	cs.ID = r.str()
	cs.SamplesIn = r.i64()
	cs.SamplesDropped = r.i64()
	cs.Snapshots = r.i64()
	cs.Detections = r.i64()
	if r.u8() == 1 {
		d := readDecision(r)
		cs.Last = &d
	}
	cs.Err = r.str()
	return cs
}

// appendStats encodes engine-wide accounting.
func appendStats(dst []byte, st stream.Stats) []byte {
	dst = binary.BigEndian.AppendUint64(dst, uint64(int64(st.Channels)))
	dst = binary.BigEndian.AppendUint64(dst, uint64(st.SamplesIn))
	dst = binary.BigEndian.AppendUint64(dst, uint64(st.SamplesDropped))
	dst = binary.BigEndian.AppendUint64(dst, uint64(st.Surfaces))
	dst = binary.BigEndian.AppendUint64(dst, uint64(st.Detections))
	dst = binary.BigEndian.AppendUint64(dst, uint64(st.DecisionsDropped))
	dst = binary.BigEndian.AppendUint64(dst, uint64(st.QueuedSamples))
	dst = binary.BigEndian.AppendUint64(dst, uint64(st.PrunedCellsSkipped))
	dst = binary.BigEndian.AppendUint64(dst, uint64(st.Elapsed.Nanoseconds()))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(st.SamplesPerSec))
	return binary.BigEndian.AppendUint64(dst, math.Float64bits(st.SurfacesPerSec))
}

// readStats decodes engine-wide accounting.
func readStats(r *byteReader) stream.Stats {
	var st stream.Stats
	st.Channels = int(r.i64())
	st.SamplesIn = r.i64()
	st.SamplesDropped = r.i64()
	st.Surfaces = r.i64()
	st.Detections = r.i64()
	st.DecisionsDropped = r.i64()
	st.QueuedSamples = r.i64()
	st.PrunedCellsSkipped = r.i64()
	st.Elapsed = time.Duration(r.i64())
	st.SamplesPerSec = r.f64()
	st.SurfacesPerSec = r.f64()
	return st
}
