package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Sink is where the server delivers ingested streams — implemented by
// the shard router (and by the public ShardedMonitor facade).
type Sink interface {
	// OpenChannel registers a channel before its first samples; an error
	// rejects the client's open frame (duplicate id, channel limit, …).
	OpenChannel(meta Meta) error
	// Push appends decoded samples to the channel's stream in arrival
	// order. It may block (engine backpressure) — the server stops
	// reading that connection while it does, which is the protocol's
	// flow control.
	Push(id string, samples []complex128) (int, error)
}

// ServerConfig configures a Server.
type ServerConfig struct {
	// Sink receives every opened channel and ingested block. Required.
	Sink Sink
	// QuotaSamplesPerSec, when positive, enforces a per-connection
	// token-bucket ingest quota: data frames beyond the rate are shed
	// whole before reaching the Sink and counted in the metrics.
	QuotaSamplesPerSec float64
	// QuotaBurst is the bucket depth in samples (default one second of
	// quota): how far a client may exceed the rate transiently.
	QuotaBurst float64
	// MaxFrameBytes bounds one frame's length field (default
	// DefaultMaxFrameBytes).
	MaxFrameBytes int
	// MaxChannelsPerConn bounds opens per connection (default 1024).
	MaxChannelsPerConn int
	// Logf, when set, receives connection-level diagnostics.
	Logf func(format string, args ...any)
}

// withDefaults fills the zero fields.
func (c ServerConfig) withDefaults() ServerConfig {
	if c.MaxFrameBytes == 0 {
		c.MaxFrameBytes = DefaultMaxFrameBytes
	}
	if c.MaxChannelsPerConn == 0 {
		c.MaxChannelsPerConn = 1024
	}
	if c.QuotaBurst == 0 {
		c.QuotaBurst = c.QuotaSamplesPerSec
	}
	return c
}

// ServerMetrics is the server's ingest accounting, all fields safe for
// concurrent reads while serving.
type ServerMetrics struct {
	// ConnectionsTotal counts accepted connections; ConnectionsActive
	// the momentarily open subset.
	ConnectionsTotal, ConnectionsActive atomic.Int64
	// ChannelsOpened counts accepted open frames; OpensRejected the
	// refused ones (duplicate id, draining, limits).
	ChannelsOpened, OpensRejected atomic.Int64
	// FramesIn and BytesIn count everything successfully read.
	FramesIn, BytesIn atomic.Int64
	// SamplesIn counts samples delivered to the sink; SamplesShed the
	// samples discarded by the quota; ShedFrames the data frames those
	// sheds came from.
	SamplesIn, SamplesShed, ShedFrames atomic.Int64
	// ProtocolErrors counts connections dropped for malformed input.
	ProtocolErrors atomic.Int64
}

// Server accepts wire-protocol connections and feeds a Sink.
type Server struct {
	cfg ServerConfig

	ln       net.Listener
	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	draining atomic.Bool
	closed   bool
	wg       sync.WaitGroup

	// Metrics is the server's ingest accounting.
	Metrics ServerMetrics
}

// NewServer validates the configuration and returns an idle server;
// Listen or Serve starts it.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Sink == nil {
		return nil, fmt.Errorf("wire: ServerConfig.Sink is required")
	}
	return &Server{cfg: cfg.withDefaults(), conns: make(map[net.Conn]struct{})}, nil
}

// Listen binds addr and serves in the background until Close.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.acceptLoop(ln)
	}()
	return ln.Addr(), nil
}

// acceptLoop admits connections until the listener closes.
func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed (Drain/Close)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.Metrics.ConnectionsTotal.Add(1)
		s.Metrics.ConnectionsActive.Add(1)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
			s.Metrics.ConnectionsActive.Add(-1)
		}()
	}
}

// logf forwards to the configured logger, if any.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// connState is the per-connection protocol state.
type connState struct {
	channels map[uint16]Meta
	bucket   *bucket
	scratch  []complex128
}

// serveConn runs one connection's read-decode-route loop. All writes to
// the client happen from this goroutine, so frames serialise naturally.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriter(conn)
	if err := readPreamble(br); err != nil {
		s.Metrics.ProtocolErrors.Add(1)
		s.logf("wire: %s: %v", conn.RemoteAddr(), err)
		return
	}
	st := &connState{channels: make(map[uint16]Meta)}
	if s.cfg.QuotaSamplesPerSec > 0 {
		st.bucket = newBucket(s.cfg.QuotaSamplesPerSec, s.cfg.QuotaBurst)
	}
	var buf []byte
	for {
		typ, p, next, err := readFrame(br, buf, s.cfg.MaxFrameBytes)
		if err != nil {
			if !errors.Is(err, net.ErrClosed) && !errors.Is(err, io.EOF) {
				s.logf("wire: %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		buf = next
		s.Metrics.FramesIn.Add(1)
		s.Metrics.BytesIn.Add(int64(len(p) + 5))
		if err := s.handleFrame(bw, st, typ, p); err != nil {
			s.Metrics.ProtocolErrors.Add(1)
			s.logf("wire: %s: %v", conn.RemoteAddr(), err)
			s.writeError(bw, err)
			return
		}
	}
}

// writeError best-effort sends a fatal error frame before the
// connection closes.
func (s *Server) writeError(bw *bufio.Writer, err error) {
	msg := err.Error()
	if len(msg) > 1024 {
		msg = msg[:1024]
	}
	p := binary.BigEndian.AppendUint16(nil, uint16(len(msg)))
	p = append(p, msg...)
	_ = writeFrame(bw, frameError, p) //nolint:errcheck // connection is going away
}

// handleFrame routes one client frame; a non-nil error is fatal to the
// connection.
func (s *Server) handleFrame(bw *bufio.Writer, st *connState, typ byte, p []byte) error {
	switch typ {
	case frameOpen:
		ref, meta, err := parseMeta(p)
		if err != nil {
			return err
		}
		if _, dup := st.channels[ref]; dup {
			return fmt.Errorf("wire: ref %d already open on this connection", ref)
		}
		status, msg := byte(ackOK), ""
		switch {
		case s.draining.Load():
			status, msg = 1, "server draining: not accepting new channels"
		case len(st.channels) >= s.cfg.MaxChannelsPerConn:
			status, msg = 1, fmt.Sprintf("channel limit %d per connection", s.cfg.MaxChannelsPerConn)
		default:
			if err := s.cfg.Sink.OpenChannel(meta); err != nil {
				status, msg = 1, err.Error()
			}
		}
		if status == ackOK {
			st.channels[ref] = meta
			s.Metrics.ChannelsOpened.Add(1)
		} else {
			s.Metrics.OpensRejected.Add(1)
		}
		ack := binary.BigEndian.AppendUint16(nil, ref)
		ack = append(ack, status)
		ack = binary.BigEndian.AppendUint16(ack, uint16(len(msg)))
		ack = append(ack, msg...)
		return writeFrame(bw, frameAck, ack)

	case frameData:
		if len(p) < 6 {
			return fmt.Errorf("wire: short data frame (%d bytes)", len(p))
		}
		ref := binary.BigEndian.Uint16(p)
		count := int(binary.BigEndian.Uint32(p[2:]))
		meta, ok := st.channels[ref]
		if !ok {
			return fmt.Errorf("wire: data for unopened ref %d", ref)
		}
		if st.bucket != nil && !st.bucket.take(float64(count), time.Now()) {
			// Load shed: over-quota frames are discarded whole before
			// decode, counted, and reported so the client can adapt.
			s.Metrics.SamplesShed.Add(int64(count))
			s.Metrics.ShedFrames.Add(1)
			shed := binary.BigEndian.AppendUint16(nil, ref)
			shed = binary.BigEndian.AppendUint64(shed, uint64(count))
			return writeFrame(bw, frameShed, shed)
		}
		var err error
		st.scratch, err = decodeSamples(st.scratch[:0], meta.Format, p[6:], count)
		if err != nil {
			return err
		}
		if _, err := s.cfg.Sink.Push(meta.ID, st.scratch); err != nil {
			return fmt.Errorf("wire: push %q: %w", meta.ID, err)
		}
		s.Metrics.SamplesIn.Add(int64(count))
		return nil

	case frameClose:
		if len(p) != 2 {
			return fmt.Errorf("wire: short close frame (%d bytes)", len(p))
		}
		ref := binary.BigEndian.Uint16(p)
		if _, ok := st.channels[ref]; !ok {
			return fmt.Errorf("wire: close for unopened ref %d", ref)
		}
		delete(st.channels, ref)
		return nil

	default:
		return fmt.Errorf("wire: unknown frame type %d", typ)
	}
}

// Drain stops accepting new connections and rejects new channel opens
// on existing ones; established streams keep flowing. It is the first
// phase of a graceful shutdown.
func (s *Server) Drain() {
	s.draining.Store(true)
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
}

// ActiveConns returns the number of currently served connections.
func (s *Server) ActiveConns() int { return int(s.Metrics.ConnectionsActive.Load()) }

// WaitIdle blocks until every connection has finished or the timeout
// elapses, reporting whether the server went idle. Meaningful after
// Drain.
func (s *Server) WaitIdle(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for s.ActiveConns() > 0 {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
	return true
}

// Close force-closes the listener and every connection and waits for
// the handlers to exit. Close is idempotent.
func (s *Server) Close() error {
	s.draining.Store(true)
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

// bucket is a token bucket in sample units.
type bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // bucket depth
	tokens float64
	last   time.Time
}

// newBucket starts full, so a client may burst immediately.
func newBucket(rate, burst float64) *bucket {
	return &bucket{rate: rate, burst: burst, tokens: burst}
}

// take refills by elapsed time and withdraws n tokens atomically; a
// frame is admitted whole or not at all, keeping shed accounting exact.
func (b *bucket) take(n float64, now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens < n {
		return false
	}
	b.tokens -= n
	return true
}
