package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Sink is where the server delivers ingested streams — implemented by
// the shard router (and by the public ShardedMonitor facade).
type Sink interface {
	// OpenChannel registers a channel before its first samples; an error
	// rejects the client's open frame (duplicate id, channel limit, …).
	OpenChannel(meta Meta) error
	// Push appends decoded samples to the channel's stream in arrival
	// order. It may block (engine backpressure) — the server stops
	// reading that connection while it does, which is the protocol's
	// flow control.
	Push(id string, samples []complex128) (int, error)
}

// DefaultIdleTimeout is how long an accepted connection may go without
// delivering a complete frame before the server drops it. Combined with
// TCP keepalive it keeps a half-open or silent peer from pinning a
// serve goroutine forever.
const DefaultIdleTimeout = 5 * time.Minute

// DefaultWriteTimeout bounds one outgoing frame write on an accepted
// connection.
const DefaultWriteTimeout = 30 * time.Second

// DefaultKeepAlivePeriod is the TCP keepalive probe interval set on
// accepted connections.
const DefaultKeepAlivePeriod = 30 * time.Second

// ServerConfig configures a Server.
type ServerConfig struct {
	// Sink receives every opened channel and ingested block. Required.
	Sink Sink
	// Engine, when set, runs the server in worker mode: control frames
	// (remove/flush/stats/chanstats) are answered against it and
	// subscribed connections receive its decision stream — the surface a
	// shard router's RemoteSink drives. Nil servers reject control
	// frames.
	Engine RemoteEngine
	// RemoveOnClose, in worker mode, unregisters a connection's channels
	// from the Engine (flushing partial windows) when the connection
	// closes — so a router reconnecting after a link failure re-opens
	// its channels into fresh state instead of colliding with stale
	// registrations. Requires Engine.
	RemoveOnClose bool
	// QuotaSamplesPerSec, when positive, enforces a per-connection
	// token-bucket ingest quota: data frames beyond the rate are shed
	// whole before reaching the Sink and counted in the metrics.
	QuotaSamplesPerSec float64
	// QuotaBurst is the bucket depth in samples (default one second of
	// quota): how far a client may exceed the rate transiently.
	QuotaBurst float64
	// MaxFrameBytes bounds one frame's length field (default
	// DefaultMaxFrameBytes).
	MaxFrameBytes int
	// MaxChannelsPerConn bounds opens per connection (default 1024).
	MaxChannelsPerConn int
	// IdleTimeout is the per-frame read deadline on accepted
	// connections (default DefaultIdleTimeout; negative disables). A
	// peer that goes silent longer than this is dropped.
	IdleTimeout time.Duration
	// WriteTimeout bounds one outgoing frame write (default
	// DefaultWriteTimeout; negative disables), so a peer that stops
	// reading cannot wedge the server's responses.
	WriteTimeout time.Duration
	// KeepAlivePeriod is the TCP keepalive probe interval on accepted
	// connections (default DefaultKeepAlivePeriod; negative disables),
	// detecting dead peers below the protocol.
	KeepAlivePeriod time.Duration
	// Logf, when set, receives connection-level diagnostics.
	Logf func(format string, args ...any)
}

// withDefaults fills the zero fields.
func (c ServerConfig) withDefaults() ServerConfig {
	if c.MaxFrameBytes == 0 {
		c.MaxFrameBytes = DefaultMaxFrameBytes
	}
	if c.MaxChannelsPerConn == 0 {
		c.MaxChannelsPerConn = 1024
	}
	if c.QuotaBurst == 0 {
		c.QuotaBurst = c.QuotaSamplesPerSec
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = DefaultIdleTimeout
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = DefaultWriteTimeout
	}
	if c.KeepAlivePeriod == 0 {
		c.KeepAlivePeriod = DefaultKeepAlivePeriod
	}
	return c
}

// ServerMetrics is the server's ingest accounting, all fields safe for
// concurrent reads while serving.
type ServerMetrics struct {
	// ConnectionsTotal counts accepted connections; ConnectionsActive
	// the momentarily open subset.
	ConnectionsTotal, ConnectionsActive atomic.Int64
	// ChannelsOpened counts accepted open frames; OpensRejected the
	// refused ones (duplicate id, draining, limits).
	ChannelsOpened, OpensRejected atomic.Int64
	// FramesIn and BytesIn count everything successfully read.
	FramesIn, BytesIn atomic.Int64
	// SamplesIn counts samples delivered to the sink; SamplesShed the
	// samples discarded by the quota; ShedFrames the data frames those
	// sheds came from.
	SamplesIn, SamplesShed, ShedFrames atomic.Int64
	// ProtocolErrors counts connections dropped for malformed input.
	ProtocolErrors atomic.Int64
}

// Server accepts wire-protocol connections and feeds a Sink.
type Server struct {
	cfg ServerConfig

	ln       net.Listener
	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	subs     map[*connWriter]struct{}
	draining atomic.Bool
	closed   bool
	done     chan struct{}
	wg       sync.WaitGroup

	// Metrics is the server's ingest accounting.
	Metrics ServerMetrics
}

// NewServer validates the configuration and returns an idle server;
// Listen or Serve starts it. In worker mode (cfg.Engine set) the
// decision forwarder starts immediately and runs until the engine's
// decision stream closes or the server is closed.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Sink == nil {
		return nil, fmt.Errorf("wire: ServerConfig.Sink is required")
	}
	if cfg.RemoveOnClose && cfg.Engine == nil {
		return nil, fmt.Errorf("wire: ServerConfig.RemoveOnClose requires Engine")
	}
	s := &Server{
		cfg:   cfg.withDefaults(),
		conns: make(map[net.Conn]struct{}),
		subs:  make(map[*connWriter]struct{}),
		done:  make(chan struct{}),
	}
	if s.cfg.Engine != nil {
		go s.forwardDecisions()
	}
	return s, nil
}

// forwardDecisions drains the worker engine's decision stream and
// broadcasts each decision to every subscribed connection. It is not on
// the server WaitGroup: it exits when the engine's stream closes or the
// server shuts down, whichever comes first — the engine's lifetime is
// the caller's, not the server's.
func (s *Server) forwardDecisions() {
	var buf []byte
	for {
		select {
		case d, ok := <-s.cfg.Engine.Decisions():
			if !ok {
				return
			}
			buf = appendDecision(buf[:0], d)
			s.mu.Lock()
			subs := make([]*connWriter, 0, len(s.subs))
			for cw := range s.subs {
				subs = append(subs, cw)
			}
			s.mu.Unlock()
			for _, cw := range subs {
				if err := cw.write(frameDecision, buf); err != nil {
					// The connection is dying; its serve loop will clean
					// up. Stop wasting writes on it now.
					s.unsubscribe(cw)
				}
			}
		case <-s.done:
			return
		}
	}
}

// unsubscribe removes a connection from the decision broadcast set.
func (s *Server) unsubscribe(cw *connWriter) {
	s.mu.Lock()
	delete(s.subs, cw)
	s.mu.Unlock()
}

// Listen binds addr and serves in the background until Close.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.Serve(ln)
	return ln.Addr(), nil
}

// Serve adopts an already-bound listener — e.g. one wrapped by a
// fault-injection layer — and serves it in the background until Close.
func (s *Server) Serve(ln net.Listener) {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.acceptLoop(ln)
	}()
}

// acceptLoop admits connections until the listener closes.
func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed (Drain/Close)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.Metrics.ConnectionsTotal.Add(1)
		s.Metrics.ConnectionsActive.Add(1)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
			s.Metrics.ConnectionsActive.Add(-1)
		}()
	}
}

// logf forwards to the configured logger, if any.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// connState is the per-connection protocol state.
type connState struct {
	channels map[uint16]Meta
	bucket   *bucket
	scratch  []complex128
}

// connWriter serialises outgoing frames on one connection under a write
// deadline. The serve loop's responses and the decision forwarder share
// it, so their frames interleave whole.
type connWriter struct {
	mu      sync.Mutex
	conn    net.Conn
	bw      *bufio.Writer
	timeout time.Duration
}

// write emits one frame, bounded by the write timeout.
func (cw *connWriter) write(typ byte, payload []byte) error {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if cw.timeout > 0 {
		cw.conn.SetWriteDeadline(time.Now().Add(cw.timeout)) //nolint:errcheck // write below surfaces the failure
	}
	return writeFrame(cw.bw, typ, payload)
}

// configureConn applies the keepalive policy to an accepted TCP
// connection, detecting dead peers below the protocol.
func (s *Server) configureConn(conn net.Conn) {
	tc, ok := conn.(*net.TCPConn)
	if !ok || s.cfg.KeepAlivePeriod < 0 {
		return
	}
	tc.SetKeepAlive(true)                        //nolint:errcheck // best-effort hardening
	tc.SetKeepAlivePeriod(s.cfg.KeepAlivePeriod) //nolint:errcheck // best-effort hardening
}

// serveConn runs one connection's read-decode-route loop. Responses go
// through a shared connWriter so the decision forwarder can interleave.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	s.configureConn(conn)
	br := bufio.NewReaderSize(conn, 64<<10)
	cw := &connWriter{conn: conn, bw: bufio.NewWriter(conn), timeout: s.cfg.WriteTimeout}
	defer s.unsubscribe(cw)
	st := &connState{channels: make(map[uint16]Meta)}
	if s.cfg.Engine != nil && s.cfg.RemoveOnClose {
		// Worker-mode hygiene: when the router's connection dies its
		// channels leave the engine too (flushing partial windows), so a
		// reconnect — or a failover to another shard — starts from fresh
		// state instead of colliding with stale registrations.
		defer func() {
			for _, meta := range st.channels {
				if _, err := s.cfg.Engine.RemoveChannel(meta.ID, maxRemoveTimeout); err != nil {
					s.logf("wire: %s: remove-on-close %q: %v", conn.RemoteAddr(), meta.ID, err)
				}
			}
		}()
	}
	if s.cfg.IdleTimeout > 0 {
		conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout)) //nolint:errcheck // read below surfaces the failure
	}
	if err := readPreamble(br); err != nil {
		s.Metrics.ProtocolErrors.Add(1)
		s.logf("wire: %s: %v", conn.RemoteAddr(), err)
		return
	}
	if s.cfg.QuotaSamplesPerSec > 0 {
		st.bucket = newBucket(s.cfg.QuotaSamplesPerSec, s.cfg.QuotaBurst)
	}
	var buf []byte
	for {
		if s.cfg.IdleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout)) //nolint:errcheck // read below surfaces the failure
		}
		typ, p, next, err := readFrame(br, buf, s.cfg.MaxFrameBytes)
		if err != nil {
			if !errors.Is(err, net.ErrClosed) && !errors.Is(err, io.EOF) {
				s.logf("wire: %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		buf = next
		s.Metrics.FramesIn.Add(1)
		s.Metrics.BytesIn.Add(int64(len(p) + 5))
		if err := s.handleFrame(cw, st, typ, p); err != nil {
			s.Metrics.ProtocolErrors.Add(1)
			s.logf("wire: %s: %v", conn.RemoteAddr(), err)
			s.writeError(cw, err)
			return
		}
	}
}

// writeError best-effort sends a fatal error frame before the
// connection closes.
func (s *Server) writeError(cw *connWriter, err error) {
	msg := err.Error()
	if len(msg) > 1024 {
		msg = msg[:1024]
	}
	p := binary.BigEndian.AppendUint16(nil, uint16(len(msg)))
	p = append(p, msg...)
	_ = cw.write(frameError, p) //nolint:errcheck // connection is going away
}

// writeResult sends one control-frame response: ok with a
// request-specific payload, or an error message.
func (cw *connWriter) writeResult(req uint16, err error, payload func(dst []byte) []byte) error {
	p := binary.BigEndian.AppendUint16(nil, req)
	if err != nil {
		p = append(p, 1)
		msg := err.Error()
		if len(msg) > 1024 {
			msg = msg[:1024]
		}
		p = append(p, msg...)
	} else {
		p = append(p, resultOK)
		if payload != nil {
			p = payload(p)
		}
	}
	return cw.write(frameResult, p)
}

// handleFrame routes one client frame; a non-nil error is fatal to the
// connection.
func (s *Server) handleFrame(cw *connWriter, st *connState, typ byte, p []byte) error {
	switch typ {
	case frameRemove, frameFlush, frameStats, frameChanStats, frameSubscribe:
		if s.cfg.Engine == nil {
			return fmt.Errorf("wire: control frame %d on a non-worker server", typ)
		}
		return s.handleControl(cw, st, typ, p)

	case framePing:
		if len(p) != 2 {
			return fmt.Errorf("wire: short ping frame (%d bytes)", len(p))
		}
		return cw.writeResult(binary.BigEndian.Uint16(p), nil, nil)

	case frameOpen:
		ref, meta, err := parseMeta(p)
		if err != nil {
			return err
		}
		if _, dup := st.channels[ref]; dup {
			return fmt.Errorf("wire: ref %d already open on this connection", ref)
		}
		status, msg := byte(ackOK), ""
		switch {
		case s.draining.Load():
			status, msg = 1, "server draining: not accepting new channels"
		case len(st.channels) >= s.cfg.MaxChannelsPerConn:
			status, msg = 1, fmt.Sprintf("channel limit %d per connection", s.cfg.MaxChannelsPerConn)
		default:
			if err := s.cfg.Sink.OpenChannel(meta); err != nil {
				status, msg = 1, err.Error()
			}
		}
		if status == ackOK {
			st.channels[ref] = meta
			s.Metrics.ChannelsOpened.Add(1)
		} else {
			s.Metrics.OpensRejected.Add(1)
		}
		ack := binary.BigEndian.AppendUint16(nil, ref)
		ack = append(ack, status)
		ack = binary.BigEndian.AppendUint16(ack, uint16(len(msg)))
		ack = append(ack, msg...)
		return cw.write(frameAck, ack)

	case frameData:
		if len(p) < 6 {
			return fmt.Errorf("wire: short data frame (%d bytes)", len(p))
		}
		ref := binary.BigEndian.Uint16(p)
		count := int(binary.BigEndian.Uint32(p[2:]))
		meta, ok := st.channels[ref]
		if !ok {
			return fmt.Errorf("wire: data for unopened ref %d", ref)
		}
		if st.bucket != nil && !st.bucket.take(float64(count), time.Now()) {
			// Load shed: over-quota frames are discarded whole before
			// decode, counted, and reported so the client can adapt.
			s.Metrics.SamplesShed.Add(int64(count))
			s.Metrics.ShedFrames.Add(1)
			shed := binary.BigEndian.AppendUint16(nil, ref)
			shed = binary.BigEndian.AppendUint64(shed, uint64(count))
			return cw.write(frameShed, shed)
		}
		var err error
		st.scratch, err = decodeSamples(st.scratch[:0], meta.Format, p[6:], count)
		if err != nil {
			return err
		}
		if _, err := s.cfg.Sink.Push(meta.ID, st.scratch); err != nil {
			return fmt.Errorf("wire: push %q: %w", meta.ID, err)
		}
		s.Metrics.SamplesIn.Add(int64(count))
		return nil

	case frameClose:
		if len(p) != 2 {
			return fmt.Errorf("wire: short close frame (%d bytes)", len(p))
		}
		ref := binary.BigEndian.Uint16(p)
		if _, ok := st.channels[ref]; !ok {
			return fmt.Errorf("wire: close for unopened ref %d", ref)
		}
		delete(st.channels, ref)
		return nil

	default:
		return fmt.Errorf("wire: unknown frame type %d", typ)
	}
}

// handleControl answers one worker-mode control request. Request
// failures are reported in the result frame, not fatal to the
// connection; only malformed payloads are.
func (s *Server) handleControl(cw *connWriter, st *connState, typ byte, p []byte) error {
	r := &byteReader{p: p}
	req := r.u16()
	switch typ {
	case frameRemove:
		timeout := time.Duration(r.u32()) * time.Millisecond
		id := r.str()
		if r.err != nil {
			return fmt.Errorf("wire: malformed remove frame: %w", r.err)
		}
		if timeout <= 0 || timeout > maxRemoveTimeout {
			timeout = maxRemoveTimeout
		}
		cs, err := s.cfg.Engine.RemoveChannel(id, timeout)
		if err == nil {
			// Drop the connection-local refs pointing at the channel so a
			// remove-on-close sweep does not remove it twice.
			for ref, meta := range st.channels {
				if meta.ID == id {
					delete(st.channels, ref)
				}
			}
		}
		return cw.writeResult(req, err, func(dst []byte) []byte {
			return appendChannelStats(dst, cs)
		})

	case frameFlush:
		timeout := time.Duration(r.u32()) * time.Millisecond
		if r.err != nil {
			return fmt.Errorf("wire: malformed flush frame: %w", r.err)
		}
		if timeout <= 0 || timeout > maxFlushTimeout {
			timeout = maxFlushTimeout
		}
		return cw.writeResult(req, s.cfg.Engine.Flush(timeout), nil)

	case frameStats:
		if r.err != nil {
			return fmt.Errorf("wire: malformed stats frame: %w", r.err)
		}
		st := s.cfg.Engine.Stats()
		return cw.writeResult(req, nil, func(dst []byte) []byte {
			return appendStats(dst, st)
		})

	case frameChanStats:
		id := r.str()
		if r.err != nil {
			return fmt.Errorf("wire: malformed chanstats frame: %w", r.err)
		}
		cs, ok := s.cfg.Engine.ChannelStats(id)
		return cw.writeResult(req, nil, func(dst []byte) []byte {
			if !ok {
				return append(dst, 0)
			}
			dst = append(dst, 1)
			return appendChannelStats(dst, cs)
		})

	case frameSubscribe:
		if r.err != nil {
			return fmt.Errorf("wire: malformed subscribe frame: %w", r.err)
		}
		s.mu.Lock()
		s.subs[cw] = struct{}{}
		s.mu.Unlock()
		return cw.writeResult(req, nil, nil)
	}
	return fmt.Errorf("wire: unknown control frame type %d", typ)
}

// Drain stops accepting new connections and rejects new channel opens
// on existing ones; established streams keep flowing. It is the first
// phase of a graceful shutdown.
func (s *Server) Drain() {
	s.draining.Store(true)
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
}

// ActiveConns returns the number of currently served connections.
func (s *Server) ActiveConns() int { return int(s.Metrics.ConnectionsActive.Load()) }

// WaitIdle blocks until every connection has finished or the timeout
// elapses, reporting whether the server went idle. Meaningful after
// Drain.
func (s *Server) WaitIdle(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for s.ActiveConns() > 0 {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
	return true
}

// Close force-closes the listener and every connection and waits for
// the handlers to exit. Close is idempotent.
func (s *Server) Close() error {
	s.draining.Store(true)
	s.mu.Lock()
	if !s.closed {
		close(s.done)
	}
	s.closed = true
	ln := s.ln
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

// bucket is a token bucket in sample units.
type bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // bucket depth
	tokens float64
	last   time.Time
}

// newBucket starts full, so a client may burst immediately.
func newBucket(rate, burst float64) *bucket {
	return &bucket{rate: rate, burst: burst, tokens: burst}
}

// take refills by elapsed time and withdraws n tokens atomically; a
// frame is admitted whole or not at all, keeping shed accounting exact.
func (b *bucket) take(n float64, now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens < n {
		return false
	}
	b.tokens -= n
	return true
}
