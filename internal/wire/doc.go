// Package wire is the network ingestion layer of the sensing service: a
// length-prefixed binary streaming protocol carrying IQ sample blocks
// from radio front ends (or recorded captures) into the streaming
// engine, plus the serving-side niceties a real daemon needs — per-client
// ingest quotas with load shedding, and a dependency-free Prometheus
// text-exposition /metrics endpoint.
//
// # Protocol
//
// A connection opens with a 5-byte preamble (magic "CFDW", version 1)
// and then carries frames in both directions. Every frame is
//
//	uint32  length   big-endian, bytes after this field (type + payload)
//	uint8   type
//	payload
//
// Client→server frames:
//
//	open      (1): ref uint16, format uint8, sample_rate float64,
//	               center_freq float64, id_len uint16, id bytes
//	data      (2): ref uint16, count uint32, count × sample bytes
//	close     (3): ref uint16
//	remove    (4): req uint16, timeout_ms uint32, id_len uint16, id
//	flush     (5): req uint16, timeout_ms uint32
//	stats     (6): req uint16
//	chanstats (7): req uint16, id_len uint16, id
//	ping      (8): req uint16
//	subscribe (9): req uint16
//
// Server→client frames:
//
//	ack      (16): ref uint16, status uint8 (0 = ok), msg_len uint16, msg
//	shed     (17): ref uint16, samples uint64 — quota load-shed notice
//	error    (18): msg_len uint16, msg — fatal; the server closes the
//	               connection after sending it
//	result   (19): req uint16, status uint8 (0 = ok), then the request's
//	               result payload on success or the error message
//	decision (20): one encoded engine decision (after subscribe)
//
// Frames 4–9 and 19–20 are the worker-mode control plane. A server
// configured with a RemoteEngine (worker mode, e.g. `cfdserve
// -shard-of`) exposes the rest of the stream.Engine surface over the
// same connection as the data plane, so a shard router can drive the
// remote engine as one of its sinks: remove/flush/stats/chanstats map
// onto the engine methods, ping is the router's heartbeat, and
// subscribe routes the engine's decision stream back as decision
// frames. Ping also works on non-worker servers; the other control
// frames are rejected there.
//
// The open frame carries SigMF-style per-channel metadata: the channel
// id (SigMF capture label), the sample rate in Hz (core:sample_rate),
// the centre frequency in Hz (core:frequency), and the sample format
// (core:datatype) — cf32_le (two little-endian float32 per sample),
// ci16_le (two little-endian int16, Q15), or cf64_le (two little-endian
// float64 — lossless for the engine's complex128, used for
// router→worker shard traffic). Integer headers are big-endian; sample
// payloads are little-endian per the SigMF _le datatypes.
//
// A client opens any number of channels over one connection, each under
// a connection-local uint16 ref, then streams data frames. Flow control
// is TCP's own: when the engine applies backpressure the server stops
// reading and the client's writes block, so a saturating client runs
// exactly at the service rate without dropping anything.
//
// # Deadlines and keepalive
//
// Both ends arm TCP keepalive, the server bounds each read by an idle
// timeout and each write by a write timeout (ServerConfig knobs), and
// the client applies an optional per-frame write deadline
// (SetWriteTimeout) — so a half-open or wedged peer fails the
// connection instead of pinning a goroutine forever. A push that
// overruns the client deadline surfaces os.ErrDeadlineExceeded in its
// error chain, which the shard router's robustness layer counts as a
// deadline breach.
//
// # Quotas and load shedding
//
// The server optionally enforces a per-connection token-bucket ingest
// quota (samples/sec with a burst allowance). Data frames that exceed
// the bucket are shed whole: the samples are discarded before they
// reach the engine, counted in the server metrics, and reported to the
// client with a shed frame — so one over-rate client degrades only its
// own stream while in-quota clients keep their throughput. This extends
// the drop/backpressure accounting of internal/stream one layer out:
// ring overflow is counted per channel by the engine, quota shedding
// per client by the wire server.
//
// # Metrics
//
// Exposition builds Prometheus text-format (version 0.0.4) output with
// no external dependencies, and Handler serves it over HTTP. The server
// contributes its connection/frame/sample/shed counters via Collect;
// callers compose further sources (engine and shard-router gauges) into
// the same endpoint.
package wire
