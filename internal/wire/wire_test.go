package wire

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// memSink collects everything the server delivers, for assertions.
type memSink struct {
	mu       sync.Mutex
	channels map[string]Meta
	samples  map[string][]complex128
	openErr  error
	block    chan struct{} // when set, Push blocks until closed
}

func newMemSink() *memSink {
	return &memSink{channels: make(map[string]Meta), samples: make(map[string][]complex128)}
}

// OpenChannel implements Sink.
func (m *memSink) OpenChannel(meta Meta) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.openErr != nil {
		return m.openErr
	}
	if _, dup := m.channels[meta.ID]; dup {
		return fmt.Errorf("channel %q already exists", meta.ID)
	}
	m.channels[meta.ID] = meta
	return nil
}

// Push implements Sink.
func (m *memSink) Push(id string, samples []complex128) (int, error) {
	if m.block != nil {
		<-m.block
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.samples[id] = append(m.samples[id], samples...)
	return len(samples), nil
}

// got returns a copy of one channel's delivered samples.
func (m *memSink) got(id string) []complex128 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]complex128(nil), m.samples[id]...)
}

// startServer spins up a loopback server; the cleanup closes it.
func startServer(t *testing.T, cfg ServerConfig) (*Server, string) {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, addr.String()
}

// band synthesises a deterministic test block.
func band(n int, seed int) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		ph := float64(seed) + 0.1*float64(i)
		out[i] = complex(math.Cos(ph), math.Sin(ph))
	}
	return out
}

// TestRoundTripBothFormats streams both sample formats over loopback
// and checks the sink receives the samples in order within the format's
// precision.
func TestRoundTripBothFormats(t *testing.T) {
	sink := newMemSink()
	_, addr := startServer(t, ServerConfig{Sink: sink})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for _, tc := range []struct {
		format Format
		tol    float64
	}{
		{FormatCF32, 1e-6},
		{FormatCI16, 1.0 / 32767},
	} {
		id := "ch-" + tc.format.String()
		cs, err := c.Open(Meta{ID: id, Format: tc.format, SampleRateHz: 1e6, CenterFreqHz: 100e6})
		if err != nil {
			t.Fatal(err)
		}
		want := band(3000, 7)
		// Two sends exercise streaming continuity.
		if err := cs.Send(want[:1234]); err != nil {
			t.Fatal(err)
		}
		if err := cs.Send(want[1234:]); err != nil {
			t.Fatal(err)
		}
		if err := cs.Close(); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(5 * time.Second)
		for len(sink.got(id)) < len(want) && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		got := sink.got(id)
		if len(got) != len(want) {
			t.Fatalf("%s: delivered %d samples, want %d", tc.format, len(got), len(want))
		}
		for i := range got {
			if math.Abs(real(got[i])-real(want[i])) > tc.tol ||
				math.Abs(imag(got[i])-imag(want[i])) > tc.tol {
				t.Fatalf("%s: sample %d = %v, want %v ± %g", tc.format, i, got[i], want[i], tc.tol)
			}
		}
		meta := func() Meta {
			sink.mu.Lock()
			defer sink.mu.Unlock()
			return sink.channels[id]
		}()
		if meta.SampleRateHz != 1e6 || meta.CenterFreqHz != 100e6 || meta.Format != tc.format {
			t.Fatalf("%s: metadata %+v did not survive the wire", tc.format, meta)
		}
	}
}

// TestOpenRejected: a sink refusal (duplicate id) surfaces as an Open
// error on the client without killing the connection.
func TestOpenRejected(t *testing.T) {
	sink := newMemSink()
	srv, addr := startServer(t, ServerConfig{Sink: sink})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	meta := Meta{ID: "dup", Format: FormatCF32}
	if _, err := c.Open(meta); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Open(meta); err == nil || !strings.Contains(err.Error(), "already exists") {
		t.Fatalf("duplicate open error = %v, want sink rejection", err)
	}
	// Connection still works for a fresh id.
	cs, err := c.Open(Meta{ID: "fresh", Format: FormatCF32})
	if err != nil {
		t.Fatalf("open after rejection: %v", err)
	}
	if err := cs.Send(band(10, 1)); err != nil {
		t.Fatal(err)
	}
	if srv.Metrics.OpensRejected.Load() != 1 {
		t.Fatalf("OpensRejected = %d, want 1", srv.Metrics.OpensRejected.Load())
	}
}

// TestQuotaShedsOverRateClientOnly is the load-shedding acceptance
// test: with a per-connection quota, an over-rate client's excess is
// shed (counted, reported via shed frames) while an in-quota client on
// its own connection loses nothing.
func TestQuotaShedsOverRateClientOnly(t *testing.T) {
	sink := newMemSink()
	// Burst of 10k samples, trickle refill: the hog's second frame must
	// shed, the polite client's small sends never do.
	srv, addr := startServer(t, ServerConfig{
		Sink:               sink,
		QuotaSamplesPerSec: 1000,
		QuotaBurst:         10_000,
	})

	hog, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer hog.Close()
	polite, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer polite.Close()

	hogCh, err := hog.Open(Meta{ID: "hog", Format: FormatCF32})
	if err != nil {
		t.Fatal(err)
	}
	politeCh, err := polite.Open(Meta{ID: "polite", Format: FormatCF32})
	if err != nil {
		t.Fatal(err)
	}

	// The hog fires 5 × 8k-sample frames back to back: the first fits
	// the 10k burst, later ones exceed the remaining tokens and shed.
	for i := 0; i < 5; i++ {
		if err := hogCh.Send(band(8000, i)); err != nil {
			t.Fatal(err)
		}
	}
	// The polite client stays tiny and within burst.
	for i := 0; i < 4; i++ {
		if err := politeCh.Send(band(100, i)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(sink.got("polite")) < 400 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := len(sink.got("polite")); got != 400 {
		t.Fatalf("polite client delivered %d samples, want all 400", got)
	}
	if got := len(sink.got("hog")); got >= 5*8000 || got < 8000 {
		t.Fatalf("hog delivered %d samples, want sheds between 8000 and <40000", got)
	}
	shed := srv.Metrics.SamplesShed.Load()
	if shed == 0 {
		t.Fatal("no samples shed")
	}
	if got := int64(len(sink.got("hog"))); got+shed != 5*8000 {
		t.Fatalf("delivered %d + shed %d != pushed %d", got, shed, 5*8000)
	}
	// The hog was told: shed notices carry the same count.
	for deadline := time.Now().Add(5 * time.Second); hog.ShedSamples() < shed && time.Now().Before(deadline); {
		time.Sleep(time.Millisecond)
	}
	if hog.ShedSamples() != shed {
		t.Fatalf("client saw %d shed samples, server counted %d", hog.ShedSamples(), shed)
	}
	if polite.ShedSamples() != 0 {
		t.Fatalf("polite client saw %d shed samples, want 0", polite.ShedSamples())
	}
}

// TestServerDrainRejectsNewChannels: after Drain, existing streams keep
// flowing but new opens are refused — the graceful-shutdown contract.
func TestServerDrainRejectsNewChannels(t *testing.T) {
	sink := newMemSink()
	srv, addr := startServer(t, ServerConfig{Sink: sink})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cs, err := c.Open(Meta{ID: "live", Format: FormatCF32})
	if err != nil {
		t.Fatal(err)
	}
	srv.Drain()
	if _, err := c.Open(Meta{ID: "late", Format: FormatCF32}); err == nil ||
		!strings.Contains(err.Error(), "draining") {
		t.Fatalf("open during drain = %v, want draining rejection", err)
	}
	if err := cs.Send(band(500, 3)); err != nil {
		t.Fatalf("established stream broken by drain: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(sink.got("live")) < 500 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := len(sink.got("live")); got != 500 {
		t.Fatalf("delivered %d samples during drain, want 500", got)
	}
	// New connections are refused outright (listener closed).
	if _, err := Dial(addr); err == nil {
		t.Fatal("dial after drain succeeded")
	}
}

// TestProtocolErrors: malformed input kills the connection with an
// error frame and is counted.
func TestProtocolErrors(t *testing.T) {
	sink := newMemSink()
	srv, addr := startServer(t, ServerConfig{Sink: sink})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Data for a ref that was never opened.
	err = c.sendFrame(frameData, func(dst []byte) []byte {
		return append(dst, 0, 99, 0, 0, 0, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.Err() == nil && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if c.Err() == nil || !strings.Contains(c.Err().Error(), "unopened ref") {
		t.Fatalf("client error = %v, want server error about unopened ref", c.Err())
	}
	if srv.Metrics.ProtocolErrors.Load() != 1 {
		t.Fatalf("ProtocolErrors = %d, want 1", srv.Metrics.ProtocolErrors.Load())
	}
}

// TestMetaValidation covers the open-frame bounds.
func TestMetaValidation(t *testing.T) {
	for _, m := range []Meta{
		{ID: "", Format: FormatCF32},
		{ID: strings.Repeat("x", 300), Format: FormatCF32},
		{ID: "ok", Format: Format(9)},
	} {
		if err := m.validate(); err == nil {
			t.Fatalf("meta %+v validated", m)
		}
	}
	if err := (Meta{ID: "ok", Format: FormatCI16}).validate(); err != nil {
		t.Fatal(err)
	}
}

// TestExpositionFormat checks the Prometheus text output shape: one
// HELP/TYPE header per family, labelled samples, escapes.
func TestExpositionFormat(t *testing.T) {
	var e Exposition
	e.Metric("cfd_test_total", "counter", "A test counter.", 41)
	e.Metric("cfd_depth", "gauge", "Depth.", 2.5, "shard", "s0")
	e.Metric("cfd_depth", "gauge", "Depth.", 3, "shard", "s1")
	out := e.String()
	want := `# HELP cfd_test_total A test counter.
# TYPE cfd_test_total counter
cfd_test_total 41
# HELP cfd_depth Depth.
# TYPE cfd_depth gauge
cfd_depth{shard="s0"} 2.5
cfd_depth{shard="s1"} 3
`
	if out != want {
		t.Fatalf("exposition:\n%s\nwant:\n%s", out, want)
	}
}

// TestMetricsHandler scrapes a composed endpoint over HTTP.
func TestMetricsHandler(t *testing.T) {
	sink := newMemSink()
	srv, addr := startServer(t, ServerConfig{Sink: sink})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cs, err := c.Open(Meta{ID: "m", Format: FormatCI16})
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.Send(band(256, 1)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Metrics.SamplesIn.Load() < 256 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	ts := httptest.NewServer(Handler(func(e *Exposition) {
		srv.Collect(e)
		e.Metric("cfd_shard_queue_depth", "gauge", "Queued samples per shard.", 7, "shard", "shard0")
	}))
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"cfd_wire_samples_in_total 256",
		"cfd_wire_connections_active 1",
		`cfd_shard_queue_depth{shard="shard0"} 7`,
		"# TYPE cfd_wire_samples_in_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics body missing %q:\n%s", want, body)
		}
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
}

// TestBucket covers the token-bucket refill arithmetic.
func TestBucket(t *testing.T) {
	b := newBucket(1000, 500)
	now := time.Now()
	if !b.take(500, now) {
		t.Fatal("full bucket refused its burst")
	}
	if b.take(1, now) {
		t.Fatal("empty bucket granted tokens")
	}
	// 100 ms refills 100 tokens at 1000/s.
	if !b.take(90, now.Add(100*time.Millisecond)) {
		t.Fatal("refilled bucket refused 90 of ~100 tokens")
	}
	// Refill caps at burst.
	if b.take(501, now.Add(time.Hour)) {
		t.Fatal("bucket exceeded burst after long idle")
	}
	if !b.take(500, now.Add(time.Hour)) {
		t.Fatal("bucket did not cap at burst")
	}
}
