package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Magic is the 4-byte connection preamble identifying the protocol.
var Magic = [4]byte{'C', 'F', 'D', 'W'}

// Version is the protocol version carried in the preamble.
const Version = 1

// Frame types. Client→server types are low, server→client types start
// at 16. Types 4–9 and 19–20 are the worker-mode control plane: a shard
// router driving a remote engine (see RemoteEngine) speaks them over the
// same connection as the data plane.
const (
	frameOpen      = 1
	frameData      = 2
	frameClose     = 3
	frameRemove    = 4 // remove a channel from the remote engine, returning its final stats
	frameFlush     = 5 // flush the remote engine's rings and due decisions
	frameStats     = 6 // query remote engine-wide stats
	frameChanStats = 7 // query one channel's stats on the remote engine
	framePing      = 8 // liveness probe (heartbeat)
	frameSubscribe = 9 // subscribe this connection to the remote decision stream
	frameAck       = 16
	frameShed      = 17
	frameError     = 18
	frameResult    = 19 // response to one control request (remove/flush/stats/chanstats/ping/subscribe)
	frameDecision  = 20 // one pushed engine decision (after subscribe)
)

// ackOK is the ack status byte for an accepted open.
const ackOK = 0

// maxIDLen bounds channel id length on the wire.
const maxIDLen = 256

// DefaultMaxFrameBytes is the default bound on one frame's length field:
// generous for IQ blocks (half a million cf32 samples) while keeping a
// garbage length prefix from allocating gigabytes.
const DefaultMaxFrameBytes = 4 << 20

// Format identifies the on-wire sample encoding of one channel —
// the SigMF core:datatype of the stream.
type Format uint8

// Sample formats. Samples are interleaved I,Q pairs, little-endian per
// the SigMF _le datatypes.
const (
	// FormatCF32 is cf32_le: two little-endian float32 per sample.
	FormatCF32 Format = 0
	// FormatCI16 is ci16_le: two little-endian int16 per sample, Q15
	// (±32767 maps to ±1.0).
	FormatCI16 Format = 1
	// FormatCF64 is cf64_le: two little-endian float64 per sample —
	// lossless for the engine's complex128 samples, used by the shard
	// router's remote sinks so a channel's numbers do not change when
	// its shard moves out of process.
	FormatCF64 Format = 2
)

// String returns the SigMF datatype name of the format.
func (f Format) String() string {
	switch f {
	case FormatCF32:
		return "cf32_le"
	case FormatCI16:
		return "ci16_le"
	case FormatCF64:
		return "cf64_le"
	}
	return fmt.Sprintf("format(%d)", uint8(f))
}

// SampleBytes is the encoded size of one sample in the format.
func (f Format) SampleBytes() int {
	switch f {
	case FormatCF32:
		return 8
	case FormatCI16:
		return 4
	case FormatCF64:
		return 16
	}
	return 0
}

// valid reports whether the format is one the codec understands.
func (f Format) valid() bool { return f == FormatCF32 || f == FormatCI16 || f == FormatCF64 }

// Meta is the SigMF-style per-channel metadata carried by an open
// frame.
type Meta struct {
	// ID names the channel; unique across the whole service (the shard
	// router keys ownership on it). Required, at most 256 bytes.
	ID string
	// Format is the on-wire sample encoding (core:datatype).
	Format Format
	// SampleRateHz is the stream's sample rate (core:sample_rate);
	// informational for the detector, which works in normalised
	// frequency.
	SampleRateHz float64
	// CenterFreqHz is the tuned centre frequency (core:frequency);
	// informational.
	CenterFreqHz float64
	// AlphaCandidates, when non-empty, restricts the channel's estimation
	// to the listed non-negative cycle-frequency bin offsets (alpha
	// pruning) — shipped in the open frame so a remote shard worker prunes
	// exactly as a local engine would. Empty means the receiver's default
	// (its configured candidate set, or the full plane). Encoded as a
	// trailing extension, so peers that never set it interoperate with
	// ones that do.
	AlphaCandidates []int
	// Detector, when non-empty, names the decision layer the channel
	// should run (a detect registry name) — shipped in the open frame so
	// a remote shard worker decides exactly as the local engine would.
	// Empty means the receiver's configured default. Encoded as a second
	// trailing extension after the candidate list, so peers that never
	// set it keep the earlier layouts byte for byte.
	Detector string
	// TargetPfa rides with Detector: the false-alarm probability the
	// asymptotic detectors are calibrated to (0 means the receiver's
	// default). Ignored when Detector is empty.
	TargetPfa float64
}

// maxAlphaCandidates bounds the candidate list length on the wire; each
// candidate is a u16 bin offset.
const maxAlphaCandidates = 1024

// maxDetectorLen bounds the detector name length on the wire (u8 length
// prefix).
const maxDetectorLen = 255

// validate checks the metadata bounds shared by client and server.
func (m Meta) validate() error {
	if m.ID == "" {
		return fmt.Errorf("wire: empty channel id")
	}
	if len(m.ID) > maxIDLen {
		return fmt.Errorf("wire: channel id %d bytes long, max %d", len(m.ID), maxIDLen)
	}
	if !m.Format.valid() {
		return fmt.Errorf("wire: unknown sample format %d", m.Format)
	}
	if len(m.AlphaCandidates) > maxAlphaCandidates {
		return fmt.Errorf("wire: %d alpha candidates, max %d", len(m.AlphaCandidates), maxAlphaCandidates)
	}
	for _, a := range m.AlphaCandidates {
		if a < 0 || a > math.MaxUint16 {
			return fmt.Errorf("wire: alpha candidate %d outside [0, %d]", a, math.MaxUint16)
		}
	}
	if len(m.Detector) > maxDetectorLen {
		return fmt.Errorf("wire: detector name %d bytes long, max %d", len(m.Detector), maxDetectorLen)
	}
	if m.TargetPfa < 0 || m.TargetPfa >= 1 || math.IsNaN(m.TargetPfa) {
		return fmt.Errorf("wire: target pfa %v outside [0, 1)", m.TargetPfa)
	}
	if m.Detector == "" && m.TargetPfa != 0 {
		return fmt.Errorf("wire: target pfa %v without a detector name", m.TargetPfa)
	}
	return nil
}

// writePreamble sends the magic and version.
func writePreamble(w io.Writer) error {
	var p [5]byte
	copy(p[:4], Magic[:])
	p[4] = Version
	_, err := w.Write(p[:])
	return err
}

// readPreamble validates the magic and version.
func readPreamble(r io.Reader) error {
	var p [5]byte
	if _, err := io.ReadFull(r, p[:]); err != nil {
		return fmt.Errorf("wire: reading preamble: %w", err)
	}
	if [4]byte(p[:4]) != Magic {
		return fmt.Errorf("wire: bad magic %q", p[:4])
	}
	if p[4] != Version {
		return fmt.Errorf("wire: protocol version %d, want %d", p[4], Version)
	}
	return nil
}

// writeFrame emits one length-prefixed frame: payload must already hold
// everything after the type byte.
func writeFrame(w *bufio.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(1+len(payload)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	return w.Flush()
}

// readFrame reads one frame, enforcing the length bound. The returned
// payload is only valid until the next call when buf is reused.
func readFrame(r *bufio.Reader, buf []byte, maxBytes int) (typ byte, payload, nextBuf []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, buf, err
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n < 1 {
		return 0, nil, buf, fmt.Errorf("wire: zero-length frame")
	}
	if n > maxBytes {
		return 0, nil, buf, fmt.Errorf("wire: frame of %d bytes exceeds limit %d", n, maxBytes)
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, buf, fmt.Errorf("wire: truncated frame: %w", err)
	}
	return buf[0], buf[1:], buf, nil
}

// appendMeta encodes an open-frame payload. The alpha-candidate list is
// a trailing extension (u16 count, then one u16 per candidate) emitted
// only when non-empty, so frames from peers that never prune keep the
// original layout byte for byte. The detector selection is a second
// trailing extension (u8 name length, name bytes, f64 target Pfa)
// emitted only when a detector is named; because extensions are
// positional, naming a detector forces the candidate extension too
// (possibly with count zero).
func appendMeta(dst []byte, ref uint16, m Meta) []byte {
	dst = binary.BigEndian.AppendUint16(dst, ref)
	dst = append(dst, byte(m.Format))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(m.SampleRateHz))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(m.CenterFreqHz))
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(m.ID)))
	dst = append(dst, m.ID...)
	if len(m.AlphaCandidates) > 0 || m.Detector != "" {
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(m.AlphaCandidates)))
		for _, a := range m.AlphaCandidates {
			dst = binary.BigEndian.AppendUint16(dst, uint16(a))
		}
	}
	if m.Detector != "" {
		dst = append(dst, byte(len(m.Detector)))
		dst = append(dst, m.Detector...)
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(m.TargetPfa))
	}
	return dst
}

// parseMeta decodes an open-frame payload, accepting both the original
// layout and the alpha-candidate trailing extension.
func parseMeta(p []byte) (ref uint16, m Meta, err error) {
	if len(p) < 2+1+8+8+2 {
		return 0, m, fmt.Errorf("wire: open frame %d bytes, too short", len(p))
	}
	ref = binary.BigEndian.Uint16(p)
	m.Format = Format(p[2])
	m.SampleRateHz = math.Float64frombits(binary.BigEndian.Uint64(p[3:]))
	m.CenterFreqHz = math.Float64frombits(binary.BigEndian.Uint64(p[11:]))
	idLen := int(binary.BigEndian.Uint16(p[19:]))
	if len(p) < 21+idLen {
		return 0, m, fmt.Errorf("wire: open frame %d bytes, want %d for id of %d", len(p), 21+idLen, idLen)
	}
	m.ID = string(p[21 : 21+idLen])
	ext := p[21+idLen:]
	if len(ext) > 0 {
		if len(ext) < 2 {
			return 0, m, fmt.Errorf("wire: open frame candidate extension %d bytes, too short", len(ext))
		}
		count := int(binary.BigEndian.Uint16(ext))
		if len(ext) < 2+2*count {
			return 0, m, fmt.Errorf("wire: open frame candidate extension %d bytes, want %d for %d candidates",
				len(ext), 2+2*count, count)
		}
		if count > 0 {
			m.AlphaCandidates = make([]int, count)
			for i := range m.AlphaCandidates {
				m.AlphaCandidates[i] = int(binary.BigEndian.Uint16(ext[2+2*i:]))
			}
		}
		ext = ext[2+2*count:]
	}
	if len(ext) > 0 {
		nameLen := int(ext[0])
		if len(ext) != 1+nameLen+8 {
			return 0, m, fmt.Errorf("wire: open frame detector extension %d bytes, want %d for name of %d",
				len(ext), 1+nameLen+8, nameLen)
		}
		m.Detector = string(ext[1 : 1+nameLen])
		m.TargetPfa = math.Float64frombits(binary.BigEndian.Uint64(ext[1+nameLen:]))
	}
	return ref, m, m.validate()
}

// appendSamples encodes samples in the format.
func appendSamples(dst []byte, f Format, samples []complex128) []byte {
	switch f {
	case FormatCF32:
		for _, s := range samples {
			dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(float32(real(s))))
			dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(float32(imag(s))))
		}
	case FormatCI16:
		for _, s := range samples {
			dst = binary.LittleEndian.AppendUint16(dst, uint16(q15(real(s))))
			dst = binary.LittleEndian.AppendUint16(dst, uint16(q15(imag(s))))
		}
	case FormatCF64:
		for _, s := range samples {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(real(s)))
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(imag(s)))
		}
	}
	return dst
}

// q15 clamps v to ±1 and scales to the int16 Q15 grid.
func q15(v float64) int16 {
	v = math.Round(v * 32767)
	if v > 32767 {
		return 32767
	}
	if v < -32768 {
		return -32768
	}
	return int16(v)
}

// decodeSamples converts an on-wire sample payload into complex128 for
// the engine, appending to dst.
func decodeSamples(dst []complex128, f Format, p []byte, count int) ([]complex128, error) {
	if want := count * f.SampleBytes(); len(p) != want {
		return dst, fmt.Errorf("wire: data frame carries %d payload bytes for %d %s samples, want %d",
			len(p), count, f, want)
	}
	switch f {
	case FormatCF32:
		for i := 0; i < count; i++ {
			re := math.Float32frombits(binary.LittleEndian.Uint32(p[8*i:]))
			im := math.Float32frombits(binary.LittleEndian.Uint32(p[8*i+4:]))
			dst = append(dst, complex(float64(re), float64(im)))
		}
	case FormatCI16:
		for i := 0; i < count; i++ {
			re := int16(binary.LittleEndian.Uint16(p[4*i:]))
			im := int16(binary.LittleEndian.Uint16(p[4*i+2:]))
			dst = append(dst, complex(float64(re)/32767, float64(im)/32767))
		}
	case FormatCF64:
		for i := 0; i < count; i++ {
			re := math.Float64frombits(binary.LittleEndian.Uint64(p[16*i:]))
			im := math.Float64frombits(binary.LittleEndian.Uint64(p[16*i+8:]))
			dst = append(dst, complex(re, im))
		}
	default:
		return dst, fmt.Errorf("wire: undecodable format %d", f)
	}
	return dst, nil
}
