package detect

import (
	"testing"

	"tiledcfd/internal/scf"
	"tiledcfd/internal/sig"
)

// TestBPSKvsQPSKDoubledCarrier verifies the classic modulation signature
// CFD exploits (Enserink & Cochran, the paper's reference [2]): real BPSK
// has a strong cyclic feature at the doubled carrier α = 2·f_c, while
// QPSK's quadrature component cancels it. A known-cycle detector at
// a = f_c bin therefore separates the two modulations even at equal power
// — something an energy detector cannot do in principle.
func TestBPSKvsQPSKDoubledCarrier(t *testing.T) {
	const k, m, blocks = 64, 16, 32
	// Carrier bin 9 keeps the doubled-carrier feature (a = 9) clear of the
	// symbol-rate harmonics (symbol length 8 -> features at a = 4, 8, 12
	// for both modulations).
	const carrierBin = 9
	n := k * blocks
	params := scf.Params{K: k, M: m, Blocks: blocks}

	gen := func(seed uint64, qpsk bool) []complex128 {
		rng := sig.NewRand(seed)
		var src sig.Source
		if qpsk {
			src = &sig.QPSK{Amp: 1, Carrier: float64(carrierBin) / k, SymbolLen: 8, Rng: rng}
		} else {
			src = &sig.BPSK{Amp: 1, Carrier: float64(carrierBin) / k, SymbolLen: 8, Rng: rng}
		}
		x := sig.Samples(src, n)
		y, _, err := sig.AddAWGN(x, 10, true, rng)
		if err != nil {
			t.Fatal(err)
		}
		return y
	}

	// The doubled-carrier feature at α = 2f_c corresponds to offset
	// a = carrierBin in the DSCF grid.
	stat := func(x []complex128) float64 {
		s, _, err := scf.Compute(x, params)
		if err != nil {
			t.Fatal(err)
		}
		v, err := KnownCycleStatistic(s, carrierBin)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}

	bpskStat := stat(gen(1, false))
	qpskStat := stat(gen(2, true))
	if bpskStat < 4*qpskStat {
		t.Fatalf("doubled-carrier statistic: BPSK %v vs QPSK %v — expected >=4x separation",
			bpskStat, qpskStat)
	}

	// Both modulations keep symbol-rate cyclostationarity, so the blind
	// detector still sees each of them against noise.
	blind := func(x []complex128) float64 {
		s, _, err := scf.Compute(x, params)
		if err != nil {
			t.Fatal(err)
		}
		v, err := CFDStatistic(s, 2)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	rng := sig.NewRand(3)
	noise := sig.Samples(&sig.WGN{Sigma: 0.5, Real: true, Rng: rng}, n)
	noiseStat := blind(noise)
	if b := blind(gen(4, false)); b < 1.3*noiseStat {
		t.Fatalf("blind statistic on BPSK %v vs noise %v", b, noiseStat)
	}
	if q := blind(gen(5, true)); q < 1.3*noiseStat {
		t.Fatalf("blind statistic on QPSK %v vs noise %v", q, noiseStat)
	}
}

// TestShapedBPSKStillDetectable verifies that raised-cosine pulse shaping
// (absent from the paper, present in any real transmitter) weakens but
// does not destroy the features the detector needs.
func TestShapedBPSKStillDetectable(t *testing.T) {
	const k, m, blocks = 64, 16, 16
	n := k * blocks
	params := scf.Params{K: k, M: m, Blocks: blocks}
	rng := sig.NewRand(6)
	shaped := sig.Samples(&sig.ShapedBPSK{
		Amp: 1, Carrier: 8.0 / k, SymbolLen: 8, Beta: 0.35, Rng: rng,
	}, n)
	x, _, err := sig.AddAWGN(shaped, 8, true, rng)
	if err != nil {
		t.Fatal(err)
	}
	s, _, err := scf.Compute(x, params)
	if err != nil {
		t.Fatal(err)
	}
	got, err := CFDStatistic(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	noise := sig.Samples(&sig.WGN{Sigma: 0.4, Real: true, Rng: sig.NewRand(7)}, n)
	sn, _, err := scf.Compute(noise, params)
	if err != nil {
		t.Fatal(err)
	}
	floor, err := CFDStatistic(sn, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got < 1.5*floor {
		t.Fatalf("shaped BPSK statistic %v vs noise floor %v", got, floor)
	}
}

// TestOFDMDetectedBlind verifies the blind detector also catches
// cyclic-prefix OFDM — the modern licensed-user waveform — whose
// cyclostationarity comes from the CP repetition rather than a doubled
// carrier.
func TestOFDMDetectedBlind(t *testing.T) {
	const k, m, blocks = 64, 16, 32
	n := k * blocks
	params := scf.Params{K: k, M: m, Blocks: blocks}
	// T_sym = 24+8 = 32 divides K = 64, so the CP features land exactly on
	// grid offsets a = k·64/(2·32) = k·1; MinAbsA=2 still sees the
	// harmonics at a = 2, 3, ...
	o := &sig.OFDM{Amp: 1, NFFT: 24, CP: 8, ActiveLow: 1, ActiveHigh: 18, Rng: sig.NewRand(61)}
	x := sig.Samples(o, n)
	y, _, err := sig.AddAWGN(x, 8, false, sig.NewRand(62))
	if err != nil {
		t.Fatal(err)
	}
	s, _, err := scf.Compute(y, params)
	if err != nil {
		t.Fatal(err)
	}
	got, err := CFDStatistic(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	noise := sig.Samples(&sig.WGN{Sigma: 0.5, Rng: sig.NewRand(63)}, n)
	sn, _, err := scf.Compute(noise, params)
	if err != nil {
		t.Fatal(err)
	}
	floor, err := CFDStatistic(sn, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got < 1.4*floor {
		t.Fatalf("OFDM statistic %v vs noise floor %v", got, floor)
	}
}

// TestCFOShiftsFeatureLocation verifies that a carrier frequency offset
// moves the doubled-carrier feature to the offset carrier's position —
// the property that lets CFD estimate unknown carriers, which the paper's
// introduction notes is the Cognitive-Radio situation ("the periodicity
// of the signal to be detected is [not] known").
func TestCFOShiftsFeatureLocation(t *testing.T) {
	const k, m, blocks = 64, 16, 16
	n := k * blocks
	rng := sig.NewRand(8)
	clean := sig.Samples(&sig.BPSK{Amp: 1, Carrier: 8.0 / k, SymbolLen: 8, Rng: rng}, n)
	// A CFO of exactly 2 bins moves the carrier from bin 8 to bin 10.
	shifted, err := sig.Impairments{CFO: 2.0 / k}.Apply(clean)
	if err != nil {
		t.Fatal(err)
	}
	s, _, err := scf.Compute(shifted, scf.Params{K: k, M: m, Blocks: blocks})
	if err != nil {
		t.Fatal(err)
	}
	_, a, _ := s.MaxFeature(true)
	// The complex rotation moves the +f_c line to bin 10 but the -f_c
	// line to bin -6: the conjugate feature lands at a = ±(10+6)/2 = ±8,
	// while the PSD centre shifts. The doubled-carrier feature of the
	// rotated real signal appears at a = ±(f_c + CFO) = ±10 for the
	// co-rotating product pair. Accept either symmetric location.
	if a != 10 && a != -10 && a != 8 && a != -8 {
		t.Fatalf("feature at a=%d after CFO, want ±8 or ±10", a)
	}
}
