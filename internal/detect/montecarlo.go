package detect

import (
	"fmt"
	"sort"

	"tiledcfd/internal/sig"
)

// Scenario generates one Monte-Carlo trial input: a sampled block with
// (present=true) or without (present=false) the target signal, using the
// provided generator for all randomness.
type Scenario func(rng *sig.Rand, present bool) []complex128

// PdAtThreshold estimates detection and false-alarm probabilities of a
// detector at a fixed threshold over the given number of trials per
// hypothesis.
func PdAtThreshold(d Detector, sc Scenario, trials int, threshold float64, seed uint64) (pd, pfa float64, err error) {
	if trials < 1 {
		return 0, 0, fmt.Errorf("detect: trials=%d must be >= 1", trials)
	}
	rng := sig.NewRand(seed)
	var detH1, detH0 int
	for i := 0; i < trials; i++ {
		s1, err := d.Statistic(sc(rng, true))
		if err != nil {
			return 0, 0, err
		}
		if s1 > threshold {
			detH1++
		}
		s0, err := d.Statistic(sc(rng, false))
		if err != nil {
			return 0, 0, err
		}
		if s0 > threshold {
			detH0++
		}
	}
	return float64(detH1) / float64(trials), float64(detH0) / float64(trials), nil
}

// CalibrateThreshold estimates the threshold achieving the requested
// false-alarm probability empirically: it runs noise-only trials and
// returns the (1-pfa) quantile of the statistic. This is how a detector
// without a closed-form H0 distribution (the CFD statistics) is fielded.
func CalibrateThreshold(d Detector, sc Scenario, trials int, pfa float64, seed uint64) (float64, error) {
	if trials < 4 {
		return 0, fmt.Errorf("detect: calibration needs >= 4 trials, got %d", trials)
	}
	if pfa <= 0 || pfa >= 1 {
		return 0, fmt.Errorf("detect: pfa=%v outside (0,1)", pfa)
	}
	rng := sig.NewRand(seed)
	stats := make([]float64, trials)
	for i := range stats {
		s, err := d.Statistic(sc(rng, false))
		if err != nil {
			return 0, err
		}
		stats[i] = s
	}
	sort.Float64s(stats)
	idx := int(float64(trials) * (1 - pfa))
	if idx >= trials {
		idx = trials - 1
	}
	return stats[idx], nil
}

// ROCPoint is one operating point of a receiver operating characteristic.
type ROCPoint struct {
	Threshold float64 // decision threshold this point was scored at
	Pfa, Pd   float64 // measured false-alarm and detection fractions
}

// ROC estimates the full receiver operating characteristic by scoring
// `trials` trials of each hypothesis and sweeping the threshold through
// every observed H0 statistic.
func ROC(d Detector, sc Scenario, trials int, seed uint64) ([]ROCPoint, error) {
	if trials < 2 {
		return nil, fmt.Errorf("detect: ROC needs >= 2 trials, got %d", trials)
	}
	rng := sig.NewRand(seed)
	h0 := make([]float64, trials)
	h1 := make([]float64, trials)
	for i := 0; i < trials; i++ {
		s0, err := d.Statistic(sc(rng, false))
		if err != nil {
			return nil, err
		}
		s1, err := d.Statistic(sc(rng, true))
		if err != nil {
			return nil, err
		}
		h0[i] = s0
		h1[i] = s1
	}
	sort.Float64s(h0)
	var out []ROCPoint
	for i, th := range h0 {
		pfa := float64(trials-i-1) / float64(trials) // strictly above th
		pd := 0.0
		for _, s := range h1 {
			if s > th {
				pd++
			}
		}
		out = append(out, ROCPoint{Threshold: th, Pfa: pfa, Pd: pd / float64(trials)})
	}
	return out, nil
}

// SweepPoint is one row of a Pd-vs-SNR sweep.
type SweepPoint struct {
	SNRdB float64 // operating signal-to-noise ratio
	Pd    float64 // measured detection probability at that SNR
	Pfa   float64 // measured false-alarm probability at the calibrated threshold
}

// PdVsSNR runs, for each SNR, a threshold calibration at the requested
// false-alarm rate followed by a Pd estimate — the experiment E13 sweep.
// makeScenario builds the scenario for one SNR.
func PdVsSNR(d Detector, makeScenario func(snrDB float64) Scenario, snrs []float64,
	trials int, pfa float64, seed uint64) ([]SweepPoint, error) {
	var out []SweepPoint
	for i, snr := range snrs {
		sc := makeScenario(snr)
		th, err := CalibrateThreshold(d, sc, trials, pfa, seed+uint64(i))
		if err != nil {
			return nil, err
		}
		pd, pfaHat, err := PdAtThreshold(d, sc, trials, th, seed+uint64(i)+1000)
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{SNRdB: snr, Pd: pd, Pfa: pfaHat})
	}
	return out, nil
}
