package detect

import (
	"testing"

	"tiledcfd/internal/sig"
)

// measurePfa scores `trials` noise-only windows of n samples against the
// detector's closed-form threshold and returns the false-alarm fraction.
func measurePfa(t *testing.T, stat func([]complex128) (float64, error),
	threshold float64, trials, n int, seed uint64) float64 {
	t.Helper()
	rng := sig.NewRand(seed)
	src := sig.WGN{Sigma: 1, Rng: rng}
	false_ := 0
	for i := 0; i < trials; i++ {
		s, err := stat(sig.Samples(&src, n))
		if err != nil {
			t.Fatal(err)
		}
		if s > threshold {
			false_++
		}
	}
	return float64(false_) / float64(trials)
}

// The headline property of the asymptotic detectors: the closed-form
// chi-square threshold hits the configured false-alarm probability with
// no Monte-Carlo calibration. Measured Pfa over 2000 noise-only windows
// must land inside the 95% binomial confidence interval of the target.
func TestDGPfaMatchesClosedFormThreshold(t *testing.T) {
	const trials, n = 2000, 4096
	dg := DG{Cycles: []float64{0.25, 0.125}, Pfa: 0.05}
	th, err := dg.Threshold()
	if err != nil {
		t.Fatal(err)
	}
	pfa := measurePfa(t, dg.Statistic, th, trials, n, 2)
	lo, hi, err := BinomialCI(dg.Pfa, trials, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if pfa < lo || pfa > hi {
		t.Errorf("DG measured Pfa %.4f outside 95%% CI [%.4f, %.4f] of target %.2f",
			pfa, lo, hi, dg.Pfa)
	}
}

func TestUrrizaPfaMatchesClosedFormThreshold(t *testing.T) {
	const trials, n = 2000, 4096
	ur := Urriza{Cycles: []float64{0.25, 0.125}, Pfa: 0.05}
	th, err := ur.Threshold()
	if err != nil {
		t.Fatal(err)
	}
	pfa := measurePfa(t, ur.Statistic, th, trials, n, 2)
	lo, hi, err := BinomialCI(ur.Pfa, trials, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if pfa < lo || pfa > hi {
		t.Errorf("Urriza measured Pfa %.4f outside 95%% CI [%.4f, %.4f] of target %.2f",
			pfa, lo, hi, ur.Pfa)
	}
}

// Pfa tracking must hold across targets, not just at the default: a
// stricter target must produce a proportionally rarer false alarm.
func TestDGPfaTracksTarget(t *testing.T) {
	const trials, n = 1000, 2048
	for _, target := range []float64{0.01, 0.1} {
		dg := DG{Cycles: []float64{0.25}, Pfa: target}
		th, err := dg.Threshold()
		if err != nil {
			t.Fatal(err)
		}
		pfa := measurePfa(t, dg.Statistic, th, trials, n, 7)
		lo, hi, err := BinomialCI(target, trials, 0.99)
		if err != nil {
			t.Fatal(err)
		}
		if pfa < lo || pfa > hi {
			t.Errorf("DG at target %v measured %.4f outside 99%% CI [%.4f, %.4f]",
				target, pfa, lo, hi)
		}
	}
}

// measurePd returns the detection fraction at the given SNR for a
// modulated source buried in calibrated AWGN.
func measurePd(t *testing.T, d DG, mk func(*sig.Rand) sig.Source,
	snrDB float64, trials, n int, seed uint64) float64 {
	t.Helper()
	th, err := d.Threshold()
	if err != nil {
		t.Fatal(err)
	}
	rng := sig.NewRand(seed)
	hits := 0
	for i := 0; i < trials; i++ {
		clean := sig.Samples(mk(rng), n)
		x, _, err := sig.AddAWGN(clean, snrDB, false, rng)
		if err != nil {
			t.Fatal(err)
		}
		s, err := d.Statistic(x)
		if err != nil {
			t.Fatal(err)
		}
		if s > th {
			hits++
		}
	}
	return float64(hits) / float64(trials)
}

// Pd must be monotone in SNR for the new modulations (within binomial
// noise), and reach near-certain detection at the top of the sweep —
// the sanity half of the ROC harness, asserted per modulation in CI.
func TestDGPdMonotonicInSNR(t *testing.T) {
	const trials, n = 100, 4096
	const slack = 0.08 // binomial noise allowance at 100 trials
	cases := []struct {
		name string
		d    DG
		mk   func(*sig.Rand) sig.Source
		snrs []float64
	}{
		{
			name: "msk",
			d:    DG{Cycles: []float64{2.0 * 10 / 64, 2.0 * 6 / 64}, Pfa: 0.05},
			mk: func(rng *sig.Rand) sig.Source {
				return &sig.MSK{Amp: 1, Carrier: 0.125, SymbolLen: 8, Rng: rng}
			},
			snrs: []float64{-16, -10, -4, 2},
		},
		{
			name: "scfdma",
			d:    DG{Cycles: []float64{2.0 * 2 / 64, 2.0 * 4 / 64}, Lags: []int{12}, Pfa: 0.05},
			mk: func(rng *sig.Rand) sig.Source {
				return &sig.SCFDMA{Amp: 1, NFFT: 12, CP: 4, Spread: 8, Start: 1, Rng: rng}
			},
			snrs: []float64{-10, -4, 2, 8},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			prev := -1.0
			var pds []float64
			for i, snr := range c.snrs {
				pd := measurePd(t, c.d, c.mk, snr, trials, n, uint64(31+i))
				pds = append(pds, pd)
				if pd < prev-slack {
					t.Errorf("Pd not monotone in SNR: %v at %v dB after %v", pd, snr, prev)
				}
				if pd > prev {
					prev = pd
				}
			}
			if final := pds[len(pds)-1]; final < 0.95 {
				t.Errorf("Pd %.2f at %v dB, want >= 0.95 (sweep %v)",
					final, c.snrs[len(c.snrs)-1], pds)
			}
		})
	}
}
