package detect

import (
	"fmt"
	"strings"

	"tiledcfd/internal/scf"
)

// Decider is the pluggable decision layer of the serving stack: given a
// freshly estimated surface and (optionally) the raw samples of the
// window that produced it, it declares whether a signal is present.
// Surface detectors (cfar, fixed) consume only the surface the engine
// already computed; sample-based asymptotic tests (dg, urriza) consume
// the window samples and ignore the surface. Implementations must be
// safe for concurrent use — one Decider instance serves every channel
// of an engine.
type Decider interface {
	// Name is the registry name the decider was built under, reported in
	// decisions.
	Name() string
	// NeedsSamples reports whether Decide requires the raw window
	// samples. The stream engine buffers a window's samples per channel
	// only when its decider asks for them.
	NeedsSamples() bool
	// TargetPfa is the configured false-alarm probability of an
	// asymptotic-threshold decider, 0 for detectors thresholded by other
	// means (cfar, fixed).
	TargetPfa() float64
	// Decide evaluates one window. Surface detectors may receive nil
	// samples; sample-based detectors may receive a nil surface.
	Decide(s *scf.Surface, samples []complex128) (Decision, error)
}

// DeciderParams carries everything a registry entry may need to build a
// Decider. Unused fields are ignored by detectors that don't consume
// them (CFARScale by dg, Lags by cfar, ...).
type DeciderParams struct {
	// Scf is the estimation geometry; dg/urriza derive their cycle
	// frequencies from its AlphaCandidates (via CyclesForBins) and error
	// without them.
	Scf scf.Params
	// MinAbsA excludes rows nearest the PSD row for the surface
	// detectors (cfar default 2, fixed default 1 — the historical
	// defaults of each path).
	MinAbsA int
	// Threshold is the fixed detector's calibrated decision threshold.
	Threshold float64
	// CFARScale is the cfar detector's peak-over-floor ratio (default 2).
	CFARScale float64
	// TargetPfa is the asymptotic detectors' false-alarm target
	// (default 0.05).
	TargetPfa float64
	// Lags overrides the dg lag set (default 1,2,3,4).
	Lags []int
	// Branches overrides the urriza polyphase order (default 2).
	Branches int
}

// deciderRegistry is the single source of truth for selectable
// deciders, mirroring the estimator registry in the public package: the
// name list in error messages, DeciderNames, and the CLI -detector
// flags all derive from it.
var deciderRegistry = []struct {
	name  string
	build func(DeciderParams) (Decider, error)
}{
	{"cfar", newCFARDecider},
	{"fixed", newFixedDecider},
	{"dg", newDGDecider},
	{"urriza", newUrrizaDecider},
}

// DeciderNames returns the registered decider names in registry order.
func DeciderNames() []string {
	names := make([]string, len(deciderRegistry))
	for i, e := range deciderRegistry {
		names[i] = e.name
	}
	return names
}

// NewDecider builds the named decider from the registry. The "unknown
// detector" error enumerates the registry so it never drifts from the
// actual selection set.
func NewDecider(name string, p DeciderParams) (Decider, error) {
	for _, e := range deciderRegistry {
		if e.name == name {
			return e.build(p)
		}
	}
	return nil, fmt.Errorf("detect: unknown detector %q (want %s)",
		name, strings.Join(DeciderNames(), ", "))
}

// cfarDecider adapts CFAR to the Decider seam.
type cfarDecider struct {
	cfar CFAR
}

func newCFARDecider(p DeciderParams) (Decider, error) {
	if p.CFARScale < 0 {
		return nil, fmt.Errorf("detect: cfar scale %v negative", p.CFARScale)
	}
	return cfarDecider{cfar: CFAR{MinAbsA: p.MinAbsA, Scale: p.CFARScale}}, nil
}

func (cfarDecider) Name() string       { return "cfar" }
func (cfarDecider) NeedsSamples() bool { return false }
func (cfarDecider) TargetPfa() float64 { return 0 }
func (d cfarDecider) Decide(s *scf.Surface, _ []complex128) (Decision, error) {
	cd, err := d.cfar.Examine(s)
	if err != nil {
		return Decision{}, err
	}
	dec := cd.Decision
	dec.Detector = d.Name()
	return dec, nil
}

// fixedDecider thresholds the normalized CFD statistic at an externally
// calibrated level — the legacy Threshold>0 decision path.
type fixedDecider struct {
	minAbsA   int
	threshold float64
}

func newFixedDecider(p DeciderParams) (Decider, error) {
	if p.Threshold <= 0 {
		return nil, fmt.Errorf("detect: fixed detector needs a positive threshold, got %v", p.Threshold)
	}
	minA := p.MinAbsA
	if minA == 0 {
		minA = 1
	}
	return fixedDecider{minAbsA: minA, threshold: p.Threshold}, nil
}

func (fixedDecider) Name() string       { return "fixed" }
func (fixedDecider) NeedsSamples() bool { return false }
func (fixedDecider) TargetPfa() float64 { return 0 }
func (d fixedDecider) Decide(s *scf.Surface, _ []complex128) (Decision, error) {
	stat, err := CFDStatistic(s, d.minAbsA)
	if err != nil {
		return Decision{}, err
	}
	return Decision{
		Detector:  d.Name(),
		Statistic: stat,
		Threshold: d.threshold,
		Detected:  stat > d.threshold,
	}, nil
}

// asymptoticCycles derives the cycle set of the sample-based tests from
// the estimation geometry's alpha candidates.
func asymptoticCycles(p DeciderParams, detector string) ([]float64, error) {
	geom := p.Scf.WithDefaults()
	if len(geom.AlphaCandidates) == 0 {
		return nil, fmt.Errorf("detect: %s detector needs alpha candidates (the cycle set) in the estimation geometry", detector)
	}
	return CyclesForBins(geom.AlphaCandidates, geom.K)
}

// dgDecider adapts DG to the Decider seam.
type dgDecider struct {
	dg DG
}

func newDGDecider(p DeciderParams) (Decider, error) {
	cycles, err := asymptoticCycles(p, "dg")
	if err != nil {
		return nil, err
	}
	dg := DG{Cycles: cycles, Lags: p.Lags, Pfa: p.TargetPfa}.withDefaults()
	if err := dg.validate(); err != nil {
		return nil, err
	}
	if _, err := dg.Threshold(); err != nil {
		return nil, err
	}
	return dgDecider{dg: dg}, nil
}

func (dgDecider) Name() string         { return "dg" }
func (dgDecider) NeedsSamples() bool   { return true }
func (d dgDecider) TargetPfa() float64 { return d.dg.Pfa }
func (d dgDecider) Decide(_ *scf.Surface, samples []complex128) (Decision, error) {
	return d.dg.Decide(samples)
}

// urrizaDecider adapts Urriza to the Decider seam.
type urrizaDecider struct {
	ur Urriza
}

func newUrrizaDecider(p DeciderParams) (Decider, error) {
	cycles, err := asymptoticCycles(p, "urriza")
	if err != nil {
		return nil, err
	}
	ur := Urriza{Cycles: cycles, Branches: p.Branches, Pfa: p.TargetPfa}.withDefaults()
	if err := ur.validate(); err != nil {
		return nil, err
	}
	if _, err := ur.Threshold(); err != nil {
		return nil, err
	}
	return urrizaDecider{ur: ur}, nil
}

func (urrizaDecider) Name() string         { return "urriza" }
func (urrizaDecider) NeedsSamples() bool   { return true }
func (d urrizaDecider) TargetPfa() float64 { return d.ur.Pfa }
func (d urrizaDecider) Decide(_ *scf.Surface, samples []complex128) (Decision, error) {
	return d.ur.Decide(samples)
}
