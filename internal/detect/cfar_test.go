package detect

import (
	"math"
	"testing"

	"tiledcfd/internal/scf"
	"tiledcfd/internal/sig"
)

func TestCFARDetectsUserRejectsNoise(t *testing.T) {
	const k, m, blocks = 64, 16, 32
	params := scf.Params{K: k, M: m, Blocks: blocks}
	cfar := CFAR{MinAbsA: 2, Scale: 2}

	rng := sig.NewRand(91)
	noise := sig.Samples(&sig.WGN{Sigma: 0.3, Real: true, Rng: rng}, k*blocks)
	dec, err := cfar.ExamineSamples(noise, params)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Detected {
		t.Fatalf("false alarm on noise: %+v", dec)
	}

	b := &sig.BPSK{Amp: 1, Carrier: 8.0 / k, SymbolLen: 8, Rng: rng}
	x := sig.Samples(b, k*blocks)
	y, _, err := sig.AddAWGN(x, 3, true, rng)
	if err != nil {
		t.Fatal(err)
	}
	dec, err = cfar.ExamineSamples(y, params)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Detected {
		t.Fatalf("missed user: %+v", dec)
	}
	if dec.FeatureA != 8 && dec.FeatureA != -8 {
		t.Fatalf("feature at a=%d, want ±8", dec.FeatureA)
	}
	if dec.Floor <= 0 {
		t.Fatal("floor not populated")
	}
}

func TestCFARNoiseLevelInvariance(t *testing.T) {
	// The CFAR statistic must be (nearly) unchanged when the noise floor
	// moves by 20 dB — the property plain energy detection lacks.
	const k, m, blocks = 64, 16, 16
	params := scf.Params{K: k, M: m, Blocks: blocks}
	cfar := CFAR{MinAbsA: 2, Scale: 2}
	stats := make([]float64, 0, 2)
	for _, sigma := range []float64{0.05, 0.5} {
		rng := sig.NewRand(92) // same seed: same shaped noise, scaled
		noise := sig.Samples(&sig.WGN{Sigma: sigma, Real: true, Rng: rng}, k*blocks)
		dec, err := cfar.ExamineSamples(noise, params)
		if err != nil {
			t.Fatal(err)
		}
		stats = append(stats, dec.Statistic)
	}
	if math.Abs(stats[0]-stats[1]) > 1e-9*(1+stats[0]) {
		t.Fatalf("CFAR statistic moved with noise level: %v vs %v", stats[0], stats[1])
	}
}

func TestCFARDefaults(t *testing.T) {
	const k, m, blocks = 64, 16, 8
	rng := sig.NewRand(93)
	noise := sig.Samples(&sig.WGN{Sigma: 0.3, Real: true, Rng: rng}, k*blocks)
	dec, err := (CFAR{}).ExamineSamples(noise, scf.Params{K: k, M: m, Blocks: blocks})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Threshold != 2 {
		t.Fatalf("default scale %v", dec.Threshold)
	}
	if dec.Detector != "cfd-cfar" {
		t.Fatalf("detector name %q", dec.Detector)
	}
}

func TestCFARErrors(t *testing.T) {
	s := scf.NewSurface(4)
	if _, err := (CFAR{MinAbsA: 9}).Examine(s); err == nil {
		t.Error("MinAbsA beyond grid should fail")
	}
	if _, err := (CFAR{MinAbsA: 1}).Examine(s); err == nil {
		t.Error("all-zero surface should fail (zero floor)")
	}
	tiny := scf.NewSurface(2)
	if _, err := (CFAR{MinAbsA: 1}).Examine(tiny); err == nil {
		t.Error("too few off-peak rows should fail")
	}
	if _, err := (CFAR{}).ExamineSamples(make([]complex128, 4), scf.Params{K: 64, M: 16}); err == nil {
		t.Error("short samples should fail")
	}
}
