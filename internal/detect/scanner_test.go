package detect

import (
	"strings"
	"testing"

	"tiledcfd/internal/fam"
	"tiledcfd/internal/sig"
)

func scanChannels(t *testing.T) [][]complex128 {
	t.Helper()
	const k, blocks = 64, 16
	n := k * blocks
	mk := func(seed uint64, occupied bool, snr float64, carrier float64) []complex128 {
		rng := sig.NewRand(seed)
		noise := sig.Samples(&sig.WGN{Sigma: 0.3, Real: true, Rng: rng}, n)
		if !occupied {
			return noise
		}
		b := &sig.BPSK{Amp: 1, Carrier: carrier, SymbolLen: 8, Rng: rng}
		x := sig.Samples(b, n)
		y, _, err := sig.AddAWGN(x, snr, true, rng)
		if err != nil {
			t.Fatal(err)
		}
		return y
	}
	return [][]complex128{
		mk(1, true, 8, 8.0/64),  // occupied
		mk(2, false, 0, 0),      // idle
		mk(3, true, 5, 12.0/64), // occupied
		mk(4, false, 0, 0),      // idle
	}
}

func TestScannerFindsFreeChannels(t *testing.T) {
	channels := scanChannels(t)
	sc := Scanner{
		Detector:  CFDDetector{Params: cfdParams(16), MinAbsA: 2},
		Threshold: 0.4,
	}
	decisions, err := sc.Scan(channels)
	if err != nil {
		t.Fatal(err)
	}
	if len(decisions) != 4 {
		t.Fatalf("decisions %d", len(decisions))
	}
	if !decisions[0].Detected || !decisions[2].Detected {
		t.Fatalf("occupied channels missed: %+v", decisions)
	}
	if decisions[1].Detected || decisions[3].Detected {
		t.Fatalf("false alarms on idle channels: %+v", decisions)
	}
	free := FreeChannels(decisions)
	if len(free) != 2 || free[0] != 1 || free[1] != 3 {
		t.Fatalf("free channels %v", free)
	}
	best := BestFreeChannel(decisions)
	if best != 1 && best != 3 {
		t.Fatalf("best free channel %d", best)
	}
}

func TestScannerErrors(t *testing.T) {
	if _, err := (Scanner{}).Scan(nil); err == nil {
		t.Error("nil detector should fail")
	}
	sc := Scanner{Detector: EnergyDetector{AssumedNoisePower: 0}, Threshold: 1}
	if _, err := sc.Scan([][]complex128{{1, 2}}); err == nil {
		t.Error("detector error should propagate with channel index")
	}
}

func TestBestFreeChannelAllOccupied(t *testing.T) {
	decisions := []ChannelDecision{
		{Channel: 0, Decision: Decision{Detected: true, Statistic: 2}},
		{Channel: 1, Decision: Decision{Detected: true, Statistic: 3}},
	}
	if got := BestFreeChannel(decisions); got != -1 {
		t.Fatalf("BestFreeChannel = %d, want -1", got)
	}
	if free := FreeChannels(decisions); len(free) != 0 {
		t.Fatalf("FreeChannels = %v", free)
	}
}

func TestBestFreeChannelPicksQuietest(t *testing.T) {
	decisions := []ChannelDecision{
		{Channel: 0, Decision: Decision{Detected: false, Statistic: 0.3}},
		{Channel: 1, Decision: Decision{Detected: false, Statistic: 0.1}},
		{Channel: 2, Decision: Decision{Detected: true, Statistic: 0.9}},
	}
	if got := BestFreeChannel(decisions); got != 1 {
		t.Fatalf("BestFreeChannel = %d, want 1", got)
	}
}

func TestScannerConcurrentMatchesSerial(t *testing.T) {
	channels := scanChannels(t)
	serial := Scanner{
		Detector:  CFDDetector{Params: cfdParams(16), MinAbsA: 2},
		Threshold: 0.4,
	}
	want, err := serial.Scan(channels)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{-1, 2, 3, 16} {
		sc := serial
		sc.Workers = workers
		got, err := sc.Scan(channels)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d decisions, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("workers=%d channel %d: %+v != serial %+v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestScannerConcurrentPropagatesError(t *testing.T) {
	// Channel 2 is too short for the CFD parameters: the scan must fail
	// with that channel's index regardless of worker count.
	channels := scanChannels(t)
	channels[2] = channels[2][:8]
	for _, workers := range []int{0, 4} {
		sc := Scanner{
			Detector:  CFDDetector{Params: cfdParams(16), MinAbsA: 2},
			Threshold: 0.4,
			Workers:   workers,
		}
		_, err := sc.Scan(channels)
		if err == nil {
			t.Fatalf("workers=%d: short channel should fail", workers)
		}
		if !strings.Contains(err.Error(), "channel 2") {
			t.Errorf("workers=%d: error %q does not name channel 2", workers, err)
		}
	}
}

func TestScannerConcurrentEstimators(t *testing.T) {
	// The scan loop accepts any estimator-backed detector; FAM over the
	// same channels must mark the same channels free.
	channels := scanChannels(t)
	sc := Scanner{
		Detector:  CFDDetector{MinAbsA: 2, Estimator: fam.FAM{Params: cfdParams(16)}},
		Threshold: 0.4,
		Workers:   4,
	}
	decisions, err := sc.Scan(channels)
	if err != nil {
		t.Fatal(err)
	}
	free := FreeChannels(decisions)
	if len(free) != 2 || free[0] != 1 || free[1] != 3 {
		t.Fatalf("free channels with FAM estimator: %v", free)
	}
}
