// Package detect implements the spectrum-sensing decision layer the
// paper's introduction motivates: given sampled signal blocks, decide
// whether a licensed transmission is present.
//
// Three detectors are provided, matching the alternatives of the paper's
// references:
//
//   - EnergyDetector — the radiometer baseline of [7] (Cabric, Mishra,
//     Brodersen): thresholds the normalised received energy. Simple and
//     optimal for fully unknown signals under exactly known noise power,
//     but it collapses under noise-level uncertainty, which is the reason
//     the paper pursues CFD.
//   - CFDDetector — blind cyclostationary feature detection ([2],
//     Enserink & Cochran): computes the DSCF and thresholds the largest
//     cycle-frequency profile value away from a = 0, normalised by the
//     a = 0 (PSD) row. Noise is not cyclostationary, so the statistic is
//     self-normalising and robust to noise-level uncertainty.
//   - KnownCycleDetector — the single-correlator detector of [8] (Weber &
//     Faye, real-time cyclostationary RFI detection): like CFDDetector but
//     evaluated at one known cycle frequency, the situation the paper
//     notes is typical in radio astronomy but not in Cognitive Radio.
//
// Statistics can be computed from raw samples (the Detector interface) or
// directly from an existing scf.Surface — the latter is what the
// tiled-SoC pipeline uses, so the decision operates on the hardware's own
// DSCF output.
//
// Monte-Carlo helpers estimate detection probability at calibrated false
// alarm rates and produce the Pd-vs-SNR sweeps of experiment E13.
package detect
