package detect

import (
	"fmt"
	"math"

	"tiledcfd/internal/fft"
)

// DG is the Dandawate–Giannakis cyclostationarity test in Lundén's
// multi-cycle form: for each candidate cycle frequency it estimates the
// cyclic-autocorrelation vector r̂(α, τ) over a small lag set, estimates
// the vector's asymptotic covariance from frequency-smoothed cyclic
// cross-periodograms of the lag-product sequences, and forms the
// generalized chi-square statistic N·r̂ Σ̂⁻¹ r̂ᵀ, which is asymptotically
// chi-square with 2·len(Lags) degrees of freedom under H0 regardless of
// the noise level or spectrum. The reported statistic is the maximum
// over the candidate cycles.
//
// Because the H0 distribution is known in closed form, the detection
// threshold for a target false-alarm rate comes from the chi-square
// quantile (Threshold) — no Monte-Carlo calibration step, the property
// that distinguishes this detector from the calibrated CFD statistics.
type DG struct {
	// Cycles are the candidate cycle frequencies in cycles per sample
	// (non-zero, |α| < 1). At least one is required. Use CyclesForBins to
	// derive them from an scf.Params alpha-candidate set.
	Cycles []float64
	// Lags are the cyclic-autocorrelation lags tested jointly (default
	// 1,2,3,4). Lag 0 works but couples the statistic to the noise-power
	// line at frequency -α of the product sequence, costing sensitivity;
	// for cyclic-prefix OFDM set the symbol-body length as a lag.
	Lags []int
	// Pfa is the target false-alarm probability of the closed-form
	// threshold (default 0.05). With multiple cycles the per-cycle level
	// is Šidák-corrected, treating the per-cycle statistics as
	// asymptotically independent.
	Pfa float64
	// SmoothBins is the per-side frequency-smoothing width (in FFT bins
	// of the lag-product sequence) of the covariance estimate. Default
	// max(64, N/4) for an N-sample window, capped to the available
	// spectrum — wide smoothing keeps the estimate's own variance from
	// inflating the chi-square tail (a Hotelling-style degrees-of-freedom
	// correction absorbs the residual).
	SmoothBins int
	// GuardBins excludes the bins nearest the cycle frequency from the
	// covariance estimate (default 2): under H1 the feature line leaks
	// into them, which would inflate the covariance and cost detection
	// probability; under H0 their exclusion is harmless.
	GuardBins int
}

// dgMinWindow is the smallest sample count the asymptotic covariance
// estimate is accepted for.
const dgMinWindow = 256

// CyclesForBins converts non-negative DSCF alpha-candidate bin offsets
// (scf.Params.AlphaCandidates semantics for FFT size k) into the cycle
// frequencies the DG and Urriza tests consume: bin a correlates
// frequency bins f+a and f−a, a separation of α = 2a/k cycles per
// sample. Zero offsets (the PSD row, not a cyclic feature) are dropped.
func CyclesForBins(bins []int, k int) ([]float64, error) {
	if k < 2 {
		return nil, fmt.Errorf("detect: CyclesForBins k=%d must be >= 2", k)
	}
	var out []float64
	for _, a := range bins {
		if a < 0 {
			return nil, fmt.Errorf("detect: negative alpha candidate %d (mirrors are implied)", a)
		}
		if a == 0 {
			continue
		}
		out = append(out, 2*float64(a)/float64(k))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("detect: no non-zero alpha candidates to derive cycle frequencies from")
	}
	return out, nil
}

// Name implements Detector.
func (DG) Name() string { return "dg" }

// withDefaults fills the zero fields.
func (d DG) withDefaults() DG {
	if len(d.Lags) == 0 {
		d.Lags = []int{1, 2, 3, 4}
	}
	if d.Pfa == 0 {
		d.Pfa = 0.05
	}
	if d.GuardBins == 0 {
		d.GuardBins = 2
	}
	return d
}

// validate checks the configured fields.
func (d DG) validate() error {
	if len(d.Cycles) == 0 {
		return fmt.Errorf("detect: DG needs at least one cycle frequency")
	}
	for _, a := range d.Cycles {
		if a == 0 || a <= -1 || a >= 1 {
			return fmt.Errorf("detect: DG cycle frequency %v outside non-zero (-1,1)", a)
		}
	}
	seen := map[int]bool{}
	for _, l := range d.Lags {
		if l < 0 {
			return fmt.Errorf("detect: DG lag %d negative", l)
		}
		if seen[l] {
			return fmt.Errorf("detect: DG lag %d duplicated", l)
		}
		seen[l] = true
	}
	if d.Pfa <= 0 || d.Pfa >= 1 {
		return fmt.Errorf("detect: DG Pfa=%v outside (0,1)", d.Pfa)
	}
	return nil
}

// DoF returns the chi-square degrees of freedom of the per-cycle
// statistic: twice the lag count (real and imaginary parts).
func (d DG) DoF() int {
	d = d.withDefaults()
	return 2 * len(d.Lags)
}

// Threshold returns the closed-form detection threshold for the
// configured target Pfa: the chi-square quantile at the Šidák-corrected
// per-cycle level 1−(1−Pfa)^(1/len(Cycles)).
func (d DG) Threshold() (float64, error) {
	d = d.withDefaults()
	if err := d.validate(); err != nil {
		return 0, err
	}
	per := 1 - math.Pow(1-d.Pfa, 1/float64(len(d.Cycles)))
	return InvChiSquareCDF(1-per, d.DoF())
}

// Statistic implements Detector: the maximum generalized chi-square
// statistic over the candidate cycles.
func (d DG) Statistic(x []complex128) (float64, error) {
	d = d.withDefaults()
	if err := d.validate(); err != nil {
		return 0, err
	}
	best := math.Inf(-1)
	for _, alpha := range d.Cycles {
		t, err := d.statisticAt(x, alpha)
		if err != nil {
			return 0, err
		}
		if t > best {
			best = t
		}
	}
	return best, nil
}

// Decide evaluates the detector against its closed-form threshold.
func (d DG) Decide(x []complex128) (Decision, error) {
	th, err := d.Threshold()
	if err != nil {
		return Decision{}, err
	}
	stat, err := d.Statistic(x)
	if err != nil {
		return Decision{}, err
	}
	return Decision{Detector: d.Name(), Statistic: stat, Threshold: th, Detected: stat > th}, nil
}

// statisticAt computes the DG statistic for one cycle frequency.
func (d DG) statisticAt(x []complex128, alpha float64) (float64, error) {
	maxLag := 0
	for _, l := range d.Lags {
		if l > maxLag {
			maxLag = l
		}
	}
	n := len(x) - maxLag
	if n < dgMinWindow {
		return 0, fmt.Errorf("detect: DG needs >= %d samples beyond the largest lag, have %d",
			dgMinWindow, n)
	}
	// All lag-product sequences share the common support t ∈ [0, n) and
	// the same derotation e^{-j2παt}, computed once by recurrence.
	rot := derotation(alpha, n)
	size := nextPow2(n)
	plan, err := fft.PlanFor(size)
	if err != nil {
		return 0, err
	}
	p := len(d.Lags)
	spectra := make([][]complex128, p)
	c := make([]complex128, p) // c_τ = √n · r̂(α, τ)
	g := make([]complex128, size)
	for i, lag := range d.Lags {
		for t := 0; t < n; t++ {
			re, im := real(x[t+lag]), imag(x[t+lag])
			xr, xi := real(x[t]), imag(x[t])
			// x(t+τ)·conj(x(t)) · e^{-j2παt}
			g[t] = complex(re*xr+im*xi, im*xr-re*xi) * rot[t]
		}
		for t := n; t < size; t++ {
			g[t] = 0
		}
		var sum complex128
		for _, v := range g[:n] {
			sum += v
		}
		c[i] = sum / complex(math.Sqrt(float64(n)), 0)
		out := make([]complex128, size)
		if err := plan.Forward(out, g); err != nil {
			return 0, err
		}
		spectra[i] = out
	}
	// Frequency-smoothed covariance of the c vector: the spectral density
	// Q*(m,n) = S_{g_m g_n}(0) and the conjugate (pseudo) density
	// Q(m,n) = E[c_m c_n], both averaged over the bins around the cycle
	// frequency (bin 0 of the derotated product), excluding the guard
	// zone where the H1 feature line leaks.
	smooth := d.SmoothBins
	if smooth == 0 {
		smooth = n / 4
		if smooth < 64 {
			smooth = 64
		}
	}
	// Padding dilates bin spacing by size/n; scale the smoothing span so
	// it covers the intended fraction of the spectrum, and keep it inside
	// the half-spectrum.
	smooth = smooth * size / n
	guard := d.GuardBins * size / n
	if smooth > size/2-guard-1 {
		smooth = size/2 - guard - 1
	}
	if smooth < 8 {
		return 0, fmt.Errorf("detect: DG smoothing span %d too narrow (window too short?)", smooth)
	}
	norm := 1 / (float64(n) * float64(2*smooth))
	qc := make([][]complex128, p) // Q*: covariance block
	qp := make([][]complex128, p) // Q: pseudo-covariance block
	for m := 0; m < p; m++ {
		qc[m] = make([]complex128, p)
		qp[m] = make([]complex128, p)
		for j := 0; j < p; j++ {
			var cc, cp complex128
			gm, gj := spectra[m], spectra[j]
			for s := guard + 1; s <= guard+smooth; s++ {
				pos, neg := s, size-s
				cc += gm[pos]*conj(gj[pos]) + gm[neg]*conj(gj[neg])
				cp += gm[neg]*gj[pos] + gm[pos]*gj[neg]
			}
			qc[m][j] = cc * complex(norm, 0)
			qp[m][j] = cp * complex(norm, 0)
		}
	}
	// Real covariance of ξ = [Re c; Im c] from the complex blocks:
	// E[Re u Re v] = ½Re(Q+Q*), E[Re u Im v] = ½Im(Q−Q*),
	// E[Im u Re v] = ½Im(Q+Q*), E[Im u Im v] = ½Re(Q*−Q).
	dim := 2 * p
	sigma := make([][]float64, dim)
	for i := range sigma {
		sigma[i] = make([]float64, dim)
	}
	for m := 0; m < p; m++ {
		for j := 0; j < p; j++ {
			q, qs := qp[m][j], qc[m][j]
			sigma[m][j] = 0.5 * (real(q) + real(qs))
			sigma[m][j+p] = 0.5 * (imag(q) - imag(qs))
			sigma[m+p][j] = 0.5 * (imag(q) + imag(qs))
			sigma[m+p][j+p] = 0.5 * (real(qs) - real(q))
		}
	}
	xi := make([]float64, dim)
	for i, v := range c {
		xi[i] = real(v)
		xi[i+p] = imag(v)
	}
	y, err := solveSPD(sigma, xi)
	if err != nil {
		return 0, err
	}
	t := 0.0
	for i := range xi {
		t += xi[i] * y[i]
	}
	// Hotelling correction: with the covariance estimated from ν
	// effective independent bins (zero-padding correlates adjacent bins
	// by size/n, so ν counts natural-resolution bins), ξΣ̂⁻¹ξᵀ follows a
	// scaled F rather than a chi-square; scaling by (ν−dim+1)/ν brings
	// the tail back onto the chi-square quantiles.
	nu := 2 * float64(smooth) * float64(n) / float64(size)
	if f := (nu - float64(dim) + 1) / nu; f > 0 {
		t *= f
	}
	return t, nil
}

// derotation returns e^{-j2παt} for t in [0, n) by complex recurrence,
// renormalized periodically so drift stays far below the estimation
// noise.
func derotation(alpha float64, n int) []complex128 {
	rot := make([]complex128, n)
	s, c := math.Sincos(-2 * math.Pi * alpha)
	step := complex(c, s)
	w := complex(1, 0)
	for t := 0; t < n; t++ {
		rot[t] = w
		w *= step
		if t&255 == 255 {
			mag := math.Hypot(real(w), imag(w))
			w /= complex(mag, 0)
		}
	}
	return rot
}

// conj avoids pulling in math/cmplx for a one-liner.
func conj(v complex128) complex128 { return complex(real(v), -imag(v)) }

// nextPow2 returns the smallest power of two >= n.
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// solveSPD solves A·y = b for a symmetric positive (semi)definite A by
// Gaussian elimination with partial pivoting, ridging the diagonal by a
// tiny multiple of its mean so a near-singular covariance estimate
// degrades gracefully instead of failing.
func solveSPD(a [][]float64, b []float64) ([]float64, error) {
	dim := len(a)
	m := make([][]float64, dim)
	tr := 0.0
	for i := range a {
		tr += a[i][i]
	}
	ridge := 1e-12 * tr / float64(dim)
	if ridge <= 0 {
		ridge = 1e-300
	}
	for i := range a {
		m[i] = make([]float64, dim+1)
		copy(m[i], a[i])
		m[i][i] += ridge
		m[i][dim] = b[i]
	}
	for col := 0; col < dim; col++ {
		piv := col
		for r := col + 1; r < dim; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		m[col], m[piv] = m[piv], m[col]
		if m[col][col] == 0 {
			return nil, fmt.Errorf("detect: singular covariance estimate")
		}
		inv := 1 / m[col][col]
		for r := col + 1; r < dim; r++ {
			f := m[r][col] * inv
			if f == 0 {
				continue
			}
			for cc := col; cc <= dim; cc++ {
				m[r][cc] -= f * m[col][cc]
			}
		}
	}
	y := make([]float64, dim)
	for i := dim - 1; i >= 0; i-- {
		v := m[i][dim]
		for j := i + 1; j < dim; j++ {
			v -= m[i][j] * y[j]
		}
		y[i] = v / m[i][i]
	}
	return y, nil
}
