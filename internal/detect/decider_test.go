package detect

import (
	"reflect"
	"strings"
	"testing"

	"tiledcfd/internal/scf"
	"tiledcfd/internal/sig"
)

func TestDeciderNames(t *testing.T) {
	want := []string{"cfar", "fixed", "dg", "urriza"}
	if got := DeciderNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("DeciderNames() = %v, want %v", got, want)
	}
}

func TestNewDeciderUnknownErrorEnumeratesRegistry(t *testing.T) {
	_, err := NewDecider("nope", DeciderParams{})
	if err == nil {
		t.Fatal("unknown detector accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, `unknown detector "nope"`) {
		t.Errorf("error %q does not name the bad detector", msg)
	}
	for _, name := range DeciderNames() {
		if !strings.Contains(msg, name) {
			t.Errorf("error %q does not mention registered detector %q", msg, name)
		}
	}
}

func TestAsymptoticDecidersNeedAlphaCandidates(t *testing.T) {
	for _, name := range []string{"dg", "urriza"} {
		_, err := NewDecider(name, DeciderParams{Scf: scf.Params{K: 64}})
		if err == nil {
			t.Errorf("%s built without alpha candidates", name)
		} else if !strings.Contains(err.Error(), "alpha candidates") {
			t.Errorf("%s error %q does not explain the missing cycle set", name, err)
		}
	}
}

func TestDeciderContracts(t *testing.T) {
	p := DeciderParams{
		Scf:       scf.Params{K: 64, M: 16, Blocks: 8, AlphaCandidates: []int{8}}.WithDefaults(),
		Threshold: 0.3,
		TargetPfa: 0.02,
	}
	cases := []struct {
		name         string
		needsSamples bool
		targetPfa    float64
	}{
		{"cfar", false, 0},
		{"fixed", false, 0},
		{"dg", true, 0.02},
		{"urriza", true, 0.02},
	}
	for _, c := range cases {
		d, err := NewDecider(c.name, p)
		if err != nil {
			t.Fatalf("build %s: %v", c.name, err)
		}
		if d.Name() != c.name {
			t.Errorf("%s: Name() = %q", c.name, d.Name())
		}
		if d.NeedsSamples() != c.needsSamples {
			t.Errorf("%s: NeedsSamples() = %v, want %v", c.name, d.NeedsSamples(), c.needsSamples)
		}
		if d.TargetPfa() != c.targetPfa {
			t.Errorf("%s: TargetPfa() = %v, want %v", c.name, d.TargetPfa(), c.targetPfa)
		}
	}
}

func TestFixedDeciderRequiresPositiveThreshold(t *testing.T) {
	if _, err := NewDecider("fixed", DeciderParams{}); err == nil {
		t.Fatal("fixed decider built without a threshold")
	}
}

// A dg decider built from DSCF alpha-candidate bins must separate a BPSK
// user from noise on the samples alone, and stamp decisions with its
// registry name and closed-form threshold.
func TestDGDeciderDecides(t *testing.T) {
	const n = 4096
	p := DeciderParams{
		Scf:       scf.Params{K: 64, M: 16, Blocks: 8, AlphaCandidates: []int{8, 4}}.WithDefaults(),
		TargetPfa: 0.05,
	}
	d, err := NewDecider("dg", p)
	if err != nil {
		t.Fatal(err)
	}
	rng := sig.NewRand(3)
	sigSrc := &sig.BPSK{Amp: 1, Carrier: 0.125, SymbolLen: 8, Rng: rng}
	clean := sig.Samples(sigSrc, n)
	band, _, err := sig.AddAWGN(clean, 6, false, rng)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := d.Decide(nil, band)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Detected {
		t.Errorf("BPSK at 6 dB not detected: statistic %v threshold %v", dec.Statistic, dec.Threshold)
	}
	if dec.Detector != "dg" {
		t.Errorf("decision detector = %q, want dg", dec.Detector)
	}
	noise := sig.Samples(&sig.WGN{Sigma: 1, Rng: rng}, n)
	dec, err = d.Decide(nil, noise)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Detected {
		t.Errorf("noise flagged: statistic %v threshold %v", dec.Statistic, dec.Threshold)
	}
}
