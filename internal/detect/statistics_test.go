package detect

import (
	"math"
	"testing"

	"tiledcfd/internal/scf"
)

func TestEnergyStatisticValues(t *testing.T) {
	x := []complex128{complex(1, 0), complex(0, 1)} // mean |x|² = 1
	got, err := EnergyStatistic(x, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2) > 1e-12 {
		t.Fatalf("EnergyStatistic = %v, want 2", got)
	}
	if _, err := EnergyStatistic(nil, 1); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := EnergyStatistic(x, 0); err == nil {
		t.Error("zero noise power should fail")
	}
	if _, err := EnergyStatistic(x, -1); err == nil {
		t.Error("negative noise power should fail")
	}
}

func TestCFDStatisticOnSyntheticSurface(t *testing.T) {
	s := scf.NewSurface(4)
	// PSD row total 10; feature row a=2 total 5 -> statistic 0.5.
	s.Add(0, 0, complex(10, 0))
	s.Add(1, 2, complex(3, 4)) // |.| = 5
	got, err := CFDStatistic(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("CFDStatistic = %v, want 0.5", got)
	}
	// Excluding |a| < 3 hides the feature.
	got, err = CFDStatistic(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("CFDStatistic(minAbsA=3) = %v, want 0", got)
	}
}

func TestCFDStatisticErrors(t *testing.T) {
	s := scf.NewSurface(4)
	if _, err := CFDStatistic(s, 0); err == nil {
		t.Error("minAbsA=0 should fail")
	}
	if _, err := CFDStatistic(s, 4); err == nil {
		t.Error("minAbsA beyond grid should fail")
	}
	if _, err := CFDStatistic(s, 1); err == nil {
		t.Error("zero PSD row should fail")
	}
}

func TestKnownCycleStatistic(t *testing.T) {
	s := scf.NewSurface(4)
	s.Add(0, 0, complex(8, 0))
	s.Add(-1, -2, complex(0, 2))
	got, err := KnownCycleStatistic(s, -2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("KnownCycleStatistic = %v, want 0.25", got)
	}
	if _, err := KnownCycleStatistic(s, 0); err == nil {
		t.Error("a=0 should fail")
	}
	if _, err := KnownCycleStatistic(s, 5); err == nil {
		t.Error("a out of grid should fail")
	}
	empty := scf.NewSurface(4)
	if _, err := KnownCycleStatistic(empty, 1); err == nil {
		t.Error("zero PSD should fail")
	}
}

func TestInvQ(t *testing.T) {
	if got := InvQ(0.5); math.Abs(got) > 1e-12 {
		t.Fatalf("InvQ(0.5) = %v, want 0", got)
	}
	// Standard value: Q(1.6449) ~ 0.05.
	if got := InvQ(0.05); math.Abs(got-1.6449) > 1e-3 {
		t.Fatalf("InvQ(0.05) = %v, want ~1.6449", got)
	}
	if got := InvQ(0.001); math.Abs(got-3.0902) > 1e-3 {
		t.Fatalf("InvQ(0.001) = %v, want ~3.0902", got)
	}
}

func TestEnergyThresholdForPfa(t *testing.T) {
	th, err := EnergyThresholdForPfa(1024, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 + 1.6449/32
	if math.Abs(th-want) > 1e-3 {
		t.Fatalf("threshold %v, want ~%v", th, want)
	}
	if _, err := EnergyThresholdForPfa(0, 0.05); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := EnergyThresholdForPfa(16, 0); err == nil {
		t.Error("pfa=0 should fail")
	}
	if _, err := EnergyThresholdForPfa(16, 1); err == nil {
		t.Error("pfa=1 should fail")
	}
}
