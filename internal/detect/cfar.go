package detect

import (
	"fmt"
	"sort"

	"tiledcfd/internal/scf"
)

// CFARDecision is the outcome of the self-calibrating detector.
type CFARDecision struct {
	Decision
	// Floor is the estimated noise floor of the cycle-frequency profile.
	Floor float64
	// FeatureA is the offset of the winning feature.
	FeatureA int
}

// CFAR is a constant-false-alarm-rate variant of the blind CFD detector:
// instead of an externally calibrated threshold it estimates the noise
// floor of the cycle-frequency profile from the surface itself (the
// median of the |a| >= MinAbsA rows, excluding the peak row and its
// mirror — the cell under test carries the feature energy on both
// mirrored offsets, so leaving it in the reference set would poison the
// floor) and declares a detection when the peak exceeds Scale × floor.
// Because both peak and floor are computed from the same surface, the
// false-alarm rate is insensitive to the absolute noise level — the
// practical deployment mode for Cognitive Radio, where no calibration
// channel exists.
//
// On an alpha-pruned surface both the peak search and the floor median
// run over the held candidate rows only, so the decision costs
// O(|candidates|·F) instead of O(M·F); at least three held rows with
// |a| >= MinAbsA must remain after the peak pair is excluded, so a
// CFAR-decided channel needs at least three non-zero candidates —
// ideally including reference strips where no feature is expected, so
// the floor median stays at noise level even when every expected
// feature is present.
type CFAR struct {
	// MinAbsA excludes offsets nearest the PSD row (default 2).
	MinAbsA int
	// Scale is the peak-over-floor detection ratio (default 2).
	Scale float64
}

// Examine evaluates a DSCF surface and returns the decision.
func (c CFAR) Examine(s *scf.Surface) (CFARDecision, error) {
	minA := c.MinAbsA
	if minA == 0 {
		minA = 2
	}
	scale := c.Scale
	if scale == 0 {
		scale = 2
	}
	if minA < 1 || minA > s.M-1 {
		return CFARDecision{}, fmt.Errorf("detect: CFAR MinAbsA=%d outside [1,%d]", minA, s.M-1)
	}
	prof := s.AlphaProfile()
	alphas := s.AlphaValues()
	peak, peakA := 0.0, 0
	for i, v := range prof {
		a := alphas[i]
		if (a >= minA || a <= -minA) && v > peak {
			peak, peakA = v, a
		}
	}
	cells := make([]float64, 0, len(prof))
	for i, v := range prof {
		a := alphas[i]
		if (a >= minA || a <= -minA) && a != peakA && a != -peakA {
			cells = append(cells, v)
		}
	}
	if len(cells) < 3 {
		return CFARDecision{}, fmt.Errorf("detect: CFAR needs >= 3 off-peak rows, have %d", len(cells))
	}
	sort.Float64s(cells)
	floor := cells[len(cells)/2]
	if floor <= 0 {
		return CFARDecision{}, fmt.Errorf("detect: CFAR zero noise floor")
	}
	stat := peak / floor
	return CFARDecision{
		Decision: Decision{
			Detector:  "cfd-cfar",
			Statistic: stat,
			Threshold: scale,
			Detected:  stat > scale,
		},
		Floor:    floor,
		FeatureA: peakA,
	}, nil
}

// ExamineSamples computes the DSCF of x with the given parameters and
// applies the CFAR decision.
func (c CFAR) ExamineSamples(x []complex128, p scf.Params) (CFARDecision, error) {
	s, _, err := scf.Compute(x, p)
	if err != nil {
		return CFARDecision{}, err
	}
	return c.Examine(s)
}
