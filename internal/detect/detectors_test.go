package detect

import (
	"math"
	"testing"

	"tiledcfd/internal/scf"
	"tiledcfd/internal/sig"
)

// bpskScenario builds the E13 licensed-user scenario: real BPSK at carrier
// bin 8 of a 64-point spectrum (symbol length 8 samples), in real AWGN at
// the given SNR. noiseUncertaintyDB, when non-zero, perturbs the actual
// noise level by a uniform ±U dB per trial while detectors keep assuming
// the nominal level — the classic energy-detection killer.
func bpskScenario(blocks int, snrDB, noiseUncertaintyDB float64) Scenario {
	const k = 64
	n := k * blocks
	// Nominal noise power for BPSK power 0.5 at this SNR.
	nominal := 0.5 / math.Pow(10, snrDB/10)
	return func(rng *sig.Rand, present bool) []complex128 {
		actual := nominal
		if noiseUncertaintyDB > 0 {
			du := noiseUncertaintyDB * (2*rng.Float64() - 1)
			actual = nominal * math.Pow(10, du/10)
		}
		noise := sig.Samples(&sig.WGN{Sigma: math.Sqrt(actual), Real: true, Rng: rng}, n)
		if !present {
			return noise
		}
		b := &sig.BPSK{Amp: 1, Carrier: 8.0 / k, SymbolLen: 8, Rng: rng}
		x := sig.Samples(b, n)
		for i := range x {
			x[i] += noise[i]
		}
		return x
	}
}

func cfdParams(blocks int) scf.Params {
	return scf.Params{K: 64, M: 16, Blocks: blocks}
}

func TestEnergyDetectorPfaCalibration(t *testing.T) {
	// With exactly known noise power, the CLT threshold hits the target
	// false-alarm rate.
	const blocks, snr = 16, 0.0
	sc := bpskScenario(blocks, snr, 0)
	nominal := 0.5 / math.Pow(10, snr/10)
	d := EnergyDetector{AssumedNoisePower: nominal}
	th, err := EnergyThresholdForPfa(64*blocks, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	_, pfa, err := PdAtThreshold(d, sc, 300, th, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pfa < 0.03 || pfa > 0.2 {
		t.Fatalf("measured pfa %v, want ~0.1", pfa)
	}
}

func TestEnergyDetectorDetectsStrongSignal(t *testing.T) {
	const blocks = 16
	sc := bpskScenario(blocks, 5, 0) // +5 dB SNR
	nominal := 0.5 / math.Pow(10, 5.0/10)
	d := EnergyDetector{AssumedNoisePower: nominal}
	th, _ := EnergyThresholdForPfa(64*blocks, 0.05)
	pd, _, err := PdAtThreshold(d, sc, 100, th, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pd < 0.99 {
		t.Fatalf("energy Pd at +5 dB = %v, want ~1", pd)
	}
}

func TestCFDDetectorDetectsBPSK(t *testing.T) {
	const blocks = 16
	sc := bpskScenario(blocks, 3, 0)
	d := CFDDetector{Params: cfdParams(blocks), MinAbsA: 2}
	th, err := CalibrateThreshold(d, sc, 60, 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	pd, pfa, err := PdAtThreshold(d, sc, 60, th, 4)
	if err != nil {
		t.Fatal(err)
	}
	if pd < 0.9 {
		t.Fatalf("CFD Pd at +3 dB = %v (pfa %v), want > 0.9", pd, pfa)
	}
}

func TestKnownCycleDetectorUsesDoubledCarrier(t *testing.T) {
	// The BPSK doubled-carrier feature sits at a = carrier bin = 8.
	const blocks = 16
	sc := bpskScenario(blocks, 0, 0)
	d := KnownCycleDetector{Params: cfdParams(blocks), A: 8}
	th, err := CalibrateThreshold(d, sc, 60, 0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	pd, _, err := PdAtThreshold(d, sc, 60, th, 6)
	if err != nil {
		t.Fatal(err)
	}
	if pd < 0.9 {
		t.Fatalf("known-cycle Pd at 0 dB = %v, want > 0.9", pd)
	}
}

func TestCFDBeatsEnergyUnderNoiseUncertainty(t *testing.T) {
	// E13: with ±2 dB noise-level uncertainty at -2 dB SNR, the energy
	// detector collapses towards its false-alarm rate while CFD keeps
	// detecting — the premise of the paper's introduction (refs [2], [7]).
	const blocks, trials = 16, 60
	const snr, unc, pfa = -2.0, 2.0, 0.1
	sc := bpskScenario(blocks, snr, unc)

	nominal := 0.5 / math.Pow(10, snr/10)
	energy := EnergyDetector{AssumedNoisePower: nominal}
	cfd := CFDDetector{Params: cfdParams(blocks), MinAbsA: 2}

	thE, err := CalibrateThreshold(energy, sc, trials, pfa, 7)
	if err != nil {
		t.Fatal(err)
	}
	pdE, _, err := PdAtThreshold(energy, sc, trials, thE, 8)
	if err != nil {
		t.Fatal(err)
	}
	thC, err := CalibrateThreshold(cfd, sc, trials, pfa, 9)
	if err != nil {
		t.Fatal(err)
	}
	pdC, _, err := PdAtThreshold(cfd, sc, trials, thC, 10)
	if err != nil {
		t.Fatal(err)
	}
	if pdC < pdE+0.2 {
		t.Fatalf("CFD Pd %v vs energy Pd %v: expected clear CFD advantage", pdC, pdE)
	}
	if pdC < 0.75 {
		t.Fatalf("CFD Pd %v too low", pdC)
	}
}

func TestApply(t *testing.T) {
	x := []complex128{complex(2, 0), complex(2, 0)}
	d := EnergyDetector{AssumedNoisePower: 1}
	dec, err := Apply(d, x, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Detected || dec.Detector != "energy" || dec.Statistic != 4 {
		t.Fatalf("decision %+v", dec)
	}
	dec, err = Apply(d, x, 5)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Detected {
		t.Fatal("should not detect below threshold")
	}
	if _, err := Apply(d, nil, 1); err == nil {
		t.Error("empty input error should propagate")
	}
}

func TestDetectorNames(t *testing.T) {
	if (EnergyDetector{}).Name() != "energy" ||
		(CFDDetector{}).Name() != "cfd" ||
		(KnownCycleDetector{}).Name() != "known-cycle" {
		t.Error("detector names wrong")
	}
}

func TestCFDDetectorDefaultsMinAbsA(t *testing.T) {
	const blocks = 2
	sc := bpskScenario(blocks, 10, 0)
	d := CFDDetector{Params: cfdParams(blocks)} // MinAbsA defaulted to 1
	if _, err := d.Statistic(sc(sig.NewRand(1), true)); err != nil {
		t.Fatalf("default MinAbsA failed: %v", err)
	}
}

func TestROCMonotoneEndpoints(t *testing.T) {
	const blocks = 8
	sc := bpskScenario(blocks, 3, 0)
	d := CFDDetector{Params: cfdParams(blocks), MinAbsA: 2}
	roc, err := ROC(d, sc, 30, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(roc) != 30 {
		t.Fatalf("ROC points %d", len(roc))
	}
	// Pfa must be non-increasing along the sweep and Pd must not be
	// smaller than Pfa on average (better than chance).
	var pdSum, pfaSum float64
	for i := 1; i < len(roc); i++ {
		if roc[i].Pfa > roc[i-1].Pfa {
			t.Fatalf("Pfa not monotone at %d", i)
		}
	}
	for _, pt := range roc {
		pdSum += pt.Pd
		pfaSum += pt.Pfa
	}
	if pdSum <= pfaSum {
		t.Fatalf("ROC not better than chance: Pd sum %v vs Pfa sum %v", pdSum, pfaSum)
	}
}

func TestMonteCarloErrors(t *testing.T) {
	sc := bpskScenario(2, 0, 0)
	d := EnergyDetector{AssumedNoisePower: 1}
	if _, _, err := PdAtThreshold(d, sc, 0, 1, 1); err == nil {
		t.Error("zero trials should fail")
	}
	if _, err := CalibrateThreshold(d, sc, 2, 0.1, 1); err == nil {
		t.Error("too few calibration trials should fail")
	}
	if _, err := CalibrateThreshold(d, sc, 10, 0, 1); err == nil {
		t.Error("pfa=0 should fail")
	}
	if _, err := ROC(d, sc, 1, 1); err == nil {
		t.Error("ROC with 1 trial should fail")
	}
	bad := EnergyDetector{AssumedNoisePower: 0}
	if _, _, err := PdAtThreshold(bad, sc, 2, 1, 1); err == nil {
		t.Error("detector error should propagate")
	}
	if _, err := CalibrateThreshold(bad, sc, 4, 0.1, 1); err == nil {
		t.Error("detector error should propagate in calibration")
	}
	if _, err := ROC(bad, sc, 2, 1); err == nil {
		t.Error("detector error should propagate in ROC")
	}
}

func TestPdVsSNRSweep(t *testing.T) {
	const blocks = 8
	d := CFDDetector{Params: cfdParams(blocks), MinAbsA: 2}
	mk := func(snr float64) Scenario { return bpskScenario(blocks, snr, 0) }
	pts, err := PdVsSNR(d, mk, []float64{-6, 6}, 30, 0.1, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("sweep points %d", len(pts))
	}
	if pts[1].Pd < pts[0].Pd {
		t.Fatalf("Pd should improve with SNR: %v -> %v", pts[0].Pd, pts[1].Pd)
	}
	if pts[1].Pd < 0.9 {
		t.Fatalf("Pd at +6 dB = %v, want high", pts[1].Pd)
	}
}
