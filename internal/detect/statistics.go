package detect

import (
	"fmt"
	"math"

	"tiledcfd/internal/scf"
)

// EnergyStatistic returns the normalised energy of x: mean |x|² divided by
// the assumed noise power. Under noise-only input the expectation is 1;
// a present signal shifts it to 1+SNR.
func EnergyStatistic(x []complex128, noisePower float64) (float64, error) {
	if len(x) == 0 {
		return 0, fmt.Errorf("detect: empty input")
	}
	if noisePower <= 0 {
		return 0, fmt.Errorf("detect: noise power %v must be positive", noisePower)
	}
	var e float64
	for _, v := range x {
		e += real(v)*real(v) + imag(v)*imag(v)
	}
	return e / (float64(len(x)) * noisePower), nil
}

// CFDStatistic returns the blind cyclostationary feature statistic of a
// DSCF surface: the largest cycle-frequency profile value over |a| >=
// minAbsA, normalised by the a=0 (PSD) profile value. Noise-only input
// concentrates all correlation at a=0, so the statistic is small and,
// crucially, independent of the absolute noise level. On an alpha-pruned
// surface the search runs over the held candidate rows only.
func CFDStatistic(s *scf.Surface, minAbsA int) (float64, error) {
	if minAbsA < 1 || minAbsA > s.M-1 {
		return 0, fmt.Errorf("detect: minAbsA=%d outside [1,%d]", minAbsA, s.M-1)
	}
	prof := s.AlphaProfile()
	alphas := s.AlphaValues()
	base := 0.0
	for i, a := range alphas {
		if a == 0 {
			base = prof[i]
		}
	}
	if base <= 0 {
		return 0, fmt.Errorf("detect: zero PSD row, cannot normalise")
	}
	best := 0.0
	for i, v := range prof {
		a := alphas[i]
		if a >= minAbsA || a <= -minAbsA {
			if r := v / base; r > best {
				best = r
			}
		}
	}
	return best, nil
}

// KnownCycleStatistic returns the single-correlator statistic at the known
// cycle offset a: the profile at a normalised by the a=0 profile. An
// alpha-pruned surface must hold row a (and row 0, which pruning always
// keeps).
func KnownCycleStatistic(s *scf.Surface, a int) (float64, error) {
	if a == 0 || a > s.M-1 || a < -(s.M-1) {
		return 0, fmt.Errorf("detect: cycle offset %d invalid (non-zero, |a| <= %d)", a, s.M-1)
	}
	if !s.HasRow(a) {
		return 0, fmt.Errorf("detect: cycle offset %d pruned away (surface holds %v)", a, s.AlphaValues())
	}
	prof := s.AlphaProfile()
	alphas := s.AlphaValues()
	base, val := 0.0, 0.0
	for i, av := range alphas {
		switch av {
		case 0:
			base = prof[i]
		case a:
			val = prof[i]
		}
	}
	if base <= 0 {
		return 0, fmt.Errorf("detect: zero PSD row, cannot normalise")
	}
	return val / base, nil
}

// InvQ returns the inverse of the Gaussian tail function
// Q(x) = 0.5·erfc(x/√2): the threshold multiplier for a desired tail
// probability p in (0, 1).
func InvQ(p float64) float64 {
	return math.Sqrt2 * math.Erfcinv(2*p)
}

// EnergyThresholdForPfa returns the energy-statistic threshold achieving
// (approximately, by the central limit theorem) the desired false-alarm
// probability with n complex samples of exactly known noise power:
// τ = 1 + Q⁻¹(pfa)·√(1/n) for complex noise (the statistic's standard
// deviation under H0 is 1/√n).
func EnergyThresholdForPfa(n int, pfa float64) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("detect: n=%d must be >= 1", n)
	}
	if pfa <= 0 || pfa >= 1 {
		return 0, fmt.Errorf("detect: pfa=%v outside (0,1)", pfa)
	}
	return 1 + InvQ(pfa)/math.Sqrt(float64(n)), nil
}
