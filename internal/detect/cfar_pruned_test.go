package detect

import (
	"testing"

	"tiledcfd/internal/scf"
	"tiledcfd/internal/sig"
)

// prunedTestBand synthesises the BPSK-in-noise band the pruned CFAR
// cases examine: symbol-rate feature at a=8 on the K=64 grid.
func prunedTestBand(t *testing.T, n int) []complex128 {
	t.Helper()
	rng := sig.NewRand(94)
	b := &sig.BPSK{Amp: 1, Carrier: 8.0 / 64, SymbolLen: 8, Rng: rng}
	x := sig.Samples(b, n)
	y, _, err := sig.AddAWGN(x, 3, true, rng)
	if err != nil {
		t.Fatal(err)
	}
	return y
}

// TestCFARPrunedSurface: CFAR decides directly on an alpha-pruned
// surface — detecting the feature when the candidate set covers it plus
// enough reference strips, and agreeing with the full-plane examination
// on the winning offset.
func TestCFARPrunedSurface(t *testing.T) {
	const k, m, blocks = 64, 16, 32
	full := scf.Params{K: k, M: m, Blocks: blocks}
	x := prunedTestBand(t, k*blocks)
	cfar := CFAR{MinAbsA: 2, Scale: 2}
	fullDec, err := cfar.ExamineSamples(x, full)
	if err != nil {
		t.Fatal(err)
	}
	if !fullDec.Detected {
		t.Fatalf("full plane missed the user: %+v", fullDec)
	}
	pruned := full
	// Feature row 8 plus reference strips where no feature lives, so
	// the floor median stays at noise level.
	pruned.AlphaCandidates = []int{8, 5, 11, 14}
	dec, err := cfar.ExamineSamples(x, pruned)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Detected {
		t.Fatalf("pruned CFAR missed the user: %+v", dec)
	}
	if dec.FeatureA != fullDec.FeatureA && dec.FeatureA != -fullDec.FeatureA {
		t.Fatalf("pruned feature at a=%d, full plane at a=%d", dec.FeatureA, fullDec.FeatureA)
	}
	if dec.Floor <= 0 {
		t.Fatal("pruned floor not populated")
	}
}

// TestCFARPrunedTooFewRows: a candidate set that leaves fewer than
// three off-peak reference rows is rejected rather than silently
// producing a meaningless floor.
func TestCFARPrunedTooFewRows(t *testing.T) {
	const k, m, blocks = 64, 16, 8
	p := scf.Params{K: k, M: m, Blocks: blocks, AlphaCandidates: []int{8, 5}}
	x := prunedTestBand(t, k*blocks)
	cfar := CFAR{MinAbsA: 2, Scale: 2}
	if _, err := cfar.ExamineSamples(x, p); err == nil {
		t.Fatal("CFAR accepted a candidate set with too few reference rows")
	}
}
