package detect

import (
	"fmt"
	"math"
)

// Urriza is the multiple-sequence cyclic-correlation significance test
// of Urriza, Rebeiz and Cabric, adapted from antenna arrays to a single
// stream by polyphase decomposition: the input is split into M
// decimated branches y_m(t) = x(Mt+m), which are mutually independent
// white sequences under H0, exactly the model the test assumes. The
// statistic is the generalized likelihood ratio
//
//	T = −2(N′−M−1)·ln Re det(I − R̂_xx⁻¹ R̂_α R̂_xx⁻¹ R̂_αᴴ)
//
// over the branch cross-correlation matrix R̂_xx and the cyclic
// cross-correlation matrix R̂_α at the decimated cycle frequency; under
// H0 it is asymptotically chi-square with 2M² degrees of freedom, so —
// like DG — the detection threshold is closed-form for a target Pfa
// with no Monte-Carlo calibration.
type Urriza struct {
	// Cycles are candidate cycle frequencies of the undecimated input in
	// cycles per sample (CyclesForBins semantics). Decimation maps each
	// to α′ = frac(M·α).
	Cycles []float64
	// Branches is the polyphase order M (default 2). The chi-square
	// degrees of freedom grow as 2M², so small orders keep the test
	// sharp.
	Branches int
	// Lag is the branch-domain correlation lag τ of R̂_α (default 1).
	// The antenna-array reference uses lag 0, but in the single-stream
	// polyphase adaptation lag 0 is degenerate: the diagonal entries
	// become frequency-shifted power sequences, which are improper when
	// α′ lands on 0 or ½ (exactly where BPSK-style cycles fall for
	// M=2), breaking the chi-square null. At any lag ≥ 1 every entry is
	// a product of independent proper variates, so the null holds for
	// all cycles; the implementation therefore requires Lag >= 1.
	Lag int
	// Pfa is the target false-alarm probability (default 0.05),
	// Šidák-corrected per cycle like DG.
	Pfa float64
}

// urrizaMinBranchLen is the minimum decimated branch length accepted.
const urrizaMinBranchLen = 128

// Name implements Detector.
func (Urriza) Name() string { return "urriza" }

// withDefaults fills the zero fields.
func (u Urriza) withDefaults() Urriza {
	if u.Branches == 0 {
		u.Branches = 2
	}
	if u.Lag == 0 {
		u.Lag = 1
	}
	if u.Pfa == 0 {
		u.Pfa = 0.05
	}
	return u
}

// validate checks the configured fields.
func (u Urriza) validate() error {
	if len(u.Cycles) == 0 {
		return fmt.Errorf("detect: Urriza needs at least one cycle frequency")
	}
	if u.Branches < 2 || u.Branches > 16 {
		return fmt.Errorf("detect: Urriza branches=%d outside [2,16]", u.Branches)
	}
	if u.Lag < 1 {
		return fmt.Errorf("detect: Urriza lag=%d must be >= 1 (lag 0 breaks the single-stream null)", u.Lag)
	}
	if u.Pfa <= 0 || u.Pfa >= 1 {
		return fmt.Errorf("detect: Urriza Pfa=%v outside (0,1)", u.Pfa)
	}
	for _, a := range u.Cycles {
		if a == 0 || a <= -1 || a >= 1 {
			return fmt.Errorf("detect: Urriza cycle frequency %v outside non-zero (-1,1)", a)
		}
	}
	return nil
}

// decimatedCycle maps an input-rate cycle frequency to the branch-rate
// cycle frequency frac(M·α), in [0, 1).
func (u Urriza) decimatedCycle(alpha float64) float64 {
	a := float64(u.Branches) * alpha
	a -= math.Floor(a)
	if math.Abs(a) < 1e-12 || math.Abs(a-1) < 1e-12 {
		return 0
	}
	return a
}

// DoF returns the chi-square degrees of freedom: 2·Branches².
func (u Urriza) DoF() int {
	u = u.withDefaults()
	return 2 * u.Branches * u.Branches
}

// Threshold returns the closed-form detection threshold for the
// configured target Pfa (chi-square quantile at the Šidák-corrected
// per-cycle level).
func (u Urriza) Threshold() (float64, error) {
	u = u.withDefaults()
	if err := u.validate(); err != nil {
		return 0, err
	}
	per := 1 - math.Pow(1-u.Pfa, 1/float64(len(u.Cycles)))
	return InvChiSquareCDF(1-per, u.DoF())
}

// Statistic implements Detector: the maximum GLR statistic over the
// candidate cycles.
func (u Urriza) Statistic(x []complex128) (float64, error) {
	u = u.withDefaults()
	if err := u.validate(); err != nil {
		return 0, err
	}
	m := u.Branches
	n := len(x)/m - u.Lag
	if n < urrizaMinBranchLen {
		return 0, fmt.Errorf("detect: Urriza needs >= %d samples per branch beyond the lag, have %d",
			urrizaMinBranchLen, n)
	}
	// Polyphase branches at the decimated rate.
	branches := make([][]complex128, m)
	for b := 0; b < m; b++ {
		row := make([]complex128, len(x)/m)
		for t := range row {
			row[t] = x[m*t+b]
		}
		branches[b] = row
	}
	// R̂_xx over the common support; it is cycle-independent.
	rxx := make([][]complex128, m)
	for i := 0; i < m; i++ {
		rxx[i] = make([]complex128, m)
		for j := 0; j <= i; j++ {
			var s complex128
			for t := 0; t < n; t++ {
				s += branches[i][t] * conj(branches[j][t])
			}
			s /= complex(float64(n), 0)
			rxx[i][j] = s
			rxx[j][i] = conj(s)
		}
	}
	best := math.Inf(-1)
	for _, alpha := range u.Cycles {
		t, err := u.statisticAt(branches, rxx, n, u.decimatedCycle(alpha))
		if err != nil {
			return 0, err
		}
		if t > best {
			best = t
		}
	}
	return best, nil
}

// Decide evaluates the detector against its closed-form threshold.
func (u Urriza) Decide(x []complex128) (Decision, error) {
	th, err := u.Threshold()
	if err != nil {
		return Decision{}, err
	}
	stat, err := u.Statistic(x)
	if err != nil {
		return Decision{}, err
	}
	return Decision{Detector: u.Name(), Statistic: stat, Threshold: th, Detected: stat > th}, nil
}

// statisticAt computes the GLR statistic for one decimated cycle.
func (u Urriza) statisticAt(branches [][]complex128, rxx [][]complex128, n int, alphaPrime float64) (float64, error) {
	m := u.Branches
	rot := derotation(alphaPrime, n)
	// R̂_α(i,j) = (1/N′) Σ_t y_i(t+τ)·conj(y_j(t))·e^{-j2πα′t}.
	ra := make([][]complex128, m)
	for i := 0; i < m; i++ {
		ra[i] = make([]complex128, m)
		for j := 0; j < m; j++ {
			var s complex128
			for t := 0; t < n; t++ {
				s += branches[i][t+u.Lag] * conj(branches[j][t]) * rot[t]
			}
			ra[i][j] = s / complex(float64(n), 0)
		}
	}
	// R = R_xx⁻¹·R_α·R_xx⁻¹·R_αᴴ, then λ = Re det(I − R). R is similar
	// to a PSD product, so det(I−R) is real up to rounding; the GLR is
	// −2(N′−M−1)·ln λ.
	raH := make([][]complex128, m)
	for i := 0; i < m; i++ {
		raH[i] = make([]complex128, m)
		for j := 0; j < m; j++ {
			raH[i][j] = conj(ra[j][i])
		}
	}
	z, err := solveComplex(rxx, ra)
	if err != nil {
		return 0, err
	}
	w, err := solveComplex(rxx, raH)
	if err != nil {
		return 0, err
	}
	r := matmulComplex(z, w)
	iminus := make([][]complex128, m)
	for i := 0; i < m; i++ {
		iminus[i] = make([]complex128, m)
		for j := 0; j < m; j++ {
			iminus[i][j] = -r[i][j]
		}
		iminus[i][i] += 1
	}
	lambda := real(detComplex(iminus))
	if lambda < 1e-300 {
		lambda = 1e-300 // fully explained correlation: statistic saturates
	}
	if lambda > 1 {
		lambda = 1 // rounding above 1 would yield a negative statistic
	}
	return -2 * float64(n-m-1) * math.Log(lambda), nil
}

// solveComplex solves A·X = B column-wise by Gaussian elimination with
// partial pivoting, for small square complex systems.
func solveComplex(a, b [][]complex128) ([][]complex128, error) {
	n := len(a)
	aug := make([][]complex128, n)
	for i := 0; i < n; i++ {
		aug[i] = make([]complex128, 2*n)
		copy(aug[i], a[i])
		copy(aug[i][n:], b[i])
	}
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if cAbs(aug[r][col]) > cAbs(aug[piv][col]) {
				piv = r
			}
		}
		aug[col], aug[piv] = aug[piv], aug[col]
		if cAbs(aug[col][col]) == 0 {
			return nil, fmt.Errorf("detect: singular branch correlation matrix")
		}
		inv := 1 / aug[col][col]
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := aug[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < 2*n; c++ {
				aug[r][c] -= f * aug[col][c]
			}
		}
	}
	x := make([][]complex128, n)
	for i := 0; i < n; i++ {
		x[i] = make([]complex128, n)
		inv := 1 / aug[i][i]
		for j := 0; j < n; j++ {
			x[i][j] = aug[i][n+j] * inv
		}
	}
	return x, nil
}

// matmulComplex multiplies two small square complex matrices.
func matmulComplex(a, b [][]complex128) [][]complex128 {
	n := len(a)
	out := make([][]complex128, n)
	for i := 0; i < n; i++ {
		out[i] = make([]complex128, n)
		for k := 0; k < n; k++ {
			aik := a[i][k]
			if aik == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				out[i][j] += aik * b[k][j]
			}
		}
	}
	return out
}

// detComplex computes the determinant of a small square complex matrix
// by LU with partial pivoting. The input is clobbered.
func detComplex(a [][]complex128) complex128 {
	n := len(a)
	det := complex(1, 0)
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if cAbs(a[r][col]) > cAbs(a[piv][col]) {
				piv = r
			}
		}
		if piv != col {
			a[col], a[piv] = a[piv], a[col]
			det = -det
		}
		if cAbs(a[col][col]) == 0 {
			return 0
		}
		det *= a[col][col]
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	return det
}

// cAbs is a cheap complex magnitude for pivot comparisons.
func cAbs(v complex128) float64 { return math.Hypot(real(v), imag(v)) }
