package detect

import (
	"fmt"
	"math"
)

// ChiSquareCDF returns P(X <= x) for a chi-square random variable with
// dof degrees of freedom: the regularized lower incomplete gamma
// function P(dof/2, x/2). It is the H0 distribution of the asymptotic
// cyclostationarity statistics (DG, Urriza), whose closed-form
// thresholds come from inverting it.
func ChiSquareCDF(x float64, dof int) (float64, error) {
	if dof < 1 {
		return 0, fmt.Errorf("detect: chi-square dof=%d must be >= 1", dof)
	}
	if x <= 0 {
		return 0, nil
	}
	return regIncGammaP(float64(dof)/2, x/2)
}

// InvChiSquareCDF returns the chi-square quantile: the threshold t with
// P(X <= t) = p for dof degrees of freedom. Inversion is by bisection on
// the monotone CDF, accurate to ~1e-12 relative — exact enough that the
// asymptotic detectors need no Monte-Carlo calibration step.
func InvChiSquareCDF(p float64, dof int) (float64, error) {
	if dof < 1 {
		return 0, fmt.Errorf("detect: chi-square dof=%d must be >= 1", dof)
	}
	if p <= 0 || p >= 1 {
		return 0, fmt.Errorf("detect: chi-square quantile p=%v outside (0,1)", p)
	}
	// Bracket: the mean is dof, the tail decays exponentially; grow the
	// upper edge until the CDF passes p.
	lo, hi := 0.0, float64(dof)+10
	for {
		c, err := ChiSquareCDF(hi, dof)
		if err != nil {
			return 0, err
		}
		if c >= p {
			break
		}
		hi *= 2
		if hi > 1e9 {
			return 0, fmt.Errorf("detect: chi-square quantile p=%v unreachable", p)
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		c, err := ChiSquareCDF(mid, dof)
		if err != nil {
			return 0, err
		}
		if c < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo <= 1e-12*(1+hi) {
			break
		}
	}
	return (lo + hi) / 2, nil
}

// regIncGammaP computes the regularized lower incomplete gamma function
// P(a, x) via the standard series (x < a+1) / continued-fraction
// (x >= a+1) split (Numerical Recipes §6.2), stable over the full range
// the detectors use.
func regIncGammaP(a, x float64) (float64, error) {
	if x < 0 || a <= 0 {
		return 0, fmt.Errorf("detect: incomplete gamma P(%v, %v) out of domain", a, x)
	}
	if x == 0 {
		return 0, nil
	}
	lg, _ := math.Lgamma(a)
	if x < a+1 {
		// Series: P(a,x) = x^a e^{-x} / Γ(a) · Σ x^n / (a(a+1)...(a+n)).
		ap := a
		sum := 1 / a
		del := sum
		for n := 0; n < 500; n++ {
			ap++
			del *= x / ap
			sum += del
			if math.Abs(del) < math.Abs(sum)*1e-16 {
				break
			}
		}
		return sum * math.Exp(-x+a*math.Log(x)-lg), nil
	}
	// Continued fraction for Q(a,x) = 1 - P(a,x), modified Lentz method.
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-16 {
			break
		}
	}
	q := math.Exp(-x+a*math.Log(x)-lg) * h
	return 1 - q, nil
}

// BinomialCI returns the conf-level (e.g. 0.95) normal-approximation
// confidence interval for an observed proportion when the true success
// probability is p over n trials: p ± z·sqrt(p(1-p)/n), clamped to
// [0, 1]. It is the acceptance band the Pfa-accuracy checks use: a
// detector whose closed-form threshold is correct lands its measured
// false-alarm rate inside the interval around the configured target.
func BinomialCI(p float64, n int, conf float64) (lo, hi float64, err error) {
	if n < 1 {
		return 0, 0, fmt.Errorf("detect: binomial CI needs n >= 1, got %d", n)
	}
	if p <= 0 || p >= 1 {
		return 0, 0, fmt.Errorf("detect: binomial CI p=%v outside (0,1)", p)
	}
	if conf <= 0 || conf >= 1 {
		return 0, 0, fmt.Errorf("detect: binomial CI conf=%v outside (0,1)", conf)
	}
	z := InvQ((1 - conf) / 2)
	w := z * math.Sqrt(p*(1-p)/float64(n))
	lo, hi = p-w, p+w
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi, nil
}
