package detect

import (
	"testing"

	"tiledcfd/internal/scf"
	"tiledcfd/internal/sig"
)

func TestEstimateSignalRecoversCarrier(t *testing.T) {
	// BPSK at carrier bin 9, symbol length 8 (rate 8 bins at K=64).
	const k, m, blocks = 64, 16, 32
	const carrierBin, symLen = 9, 8
	rng := sig.NewRand(51)
	b := &sig.BPSK{Amp: 1, Carrier: float64(carrierBin) / k, SymbolLen: symLen, Rng: rng}
	x, _, err := sig.AddAWGN(sig.Samples(b, k*blocks), 8, true, rng)
	if err != nil {
		t.Fatal(err)
	}
	s, _, err := scf.Compute(x, scf.Params{K: k, M: m, Blocks: blocks})
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateSignal(s, 2, 0.35)
	if err != nil {
		t.Fatal(err)
	}
	if est.CarrierBin != carrierBin {
		t.Fatalf("carrier estimate %d, want %d", est.CarrierBin, carrierBin)
	}
	if est.CarrierStrength < 0.35 {
		t.Fatalf("carrier strength %v", est.CarrierStrength)
	}
}

func TestEstimateSignalSymbolRate(t *testing.T) {
	// With a lower threshold the symbol-rate harmonics at a = 4, 8, 12
	// (R/2 spacing of 4 for R = 8 bins) join the feature set; the smallest
	// spacing among features then recovers the rate. The carrier at a=9
	// sits 1 bin from the a=8 harmonic, so the minimal spacing can be 1;
	// use a clean design where carrier avoids that: carrier bin 10 with
	// symbol length 16 (R = 4 bins, harmonics at a = 2, 4, 6, ...).
	const k, m, blocks = 64, 16, 32
	rng := sig.NewRand(52)
	b := &sig.BPSK{Amp: 1, Carrier: 10.0 / k, SymbolLen: 16, Rng: rng}
	x, _, err := sig.AddAWGN(sig.Samples(b, k*blocks), 10, true, rng)
	if err != nil {
		t.Fatal(err)
	}
	s, _, err := scf.Compute(x, scf.Params{K: k, M: m, Blocks: blocks})
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateSignal(s, 2, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if est.CarrierBin != 10 {
		t.Fatalf("carrier estimate %d, want 10", est.CarrierBin)
	}
	if est.SymbolRateBins == 0 {
		t.Fatal("no symbol rate estimated")
	}
	// Smallest spacing is min(harmonic spacing 2, |carrier-harmonic|);
	// harmonics at 2,4,6,8,12 and carrier 10: spacing 2 → rate 4 bins.
	if est.SymbolRateBins != 4 {
		t.Fatalf("symbol rate estimate %d bins, want 4", est.SymbolRateBins)
	}
}

func TestEstimateSignalErrors(t *testing.T) {
	s := scf.NewSurface(8)
	if _, err := EstimateSignal(s, 0, 0.3); err == nil {
		t.Error("minAbsA=0 should fail")
	}
	if _, err := EstimateSignal(s, 1, 0); err == nil {
		t.Error("zero threshold should fail")
	}
	if _, err := EstimateSignal(s, 1, 0.3); err == nil {
		t.Error("zero PSD should fail")
	}
	// Pure noise: typically no features above a high threshold.
	rng := sig.NewRand(53)
	noise := sig.Samples(&sig.WGN{Sigma: 0.3, Real: true, Rng: rng}, 64*32)
	sn, _, err := scf.Compute(noise, scf.Params{K: 64, M: 16, Blocks: 32})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EstimateSignal(sn, 2, 0.5); err == nil {
		t.Error("noise should yield no features at threshold 0.5")
	}
}
