package detect

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// ChannelDecision is the per-channel outcome of a scan.
type ChannelDecision struct {
	Channel int // index into the scanned channel set
	Decision
}

// Scanner applies one detector with one threshold across a set of
// channels — the Cognitive-Radio scan loop of the paper's introduction
// (find under-utilised spectrum for the AAF ad-hoc network).
type Scanner struct {
	Detector  Detector // statistic to apply per channel
	Threshold float64  // shared decision threshold
	// Workers bounds how many channels are evaluated concurrently.
	// 0 or 1 scans serially; a negative value uses one worker per CPU.
	// The detector must be safe for concurrent use (all detectors in
	// this package and all scf.Estimator implementations are — they are
	// value types holding only configuration).
	Workers int
}

// Scan evaluates every channel and returns the per-channel decisions in
// channel order. With Workers set, channels are distributed over a
// bounded worker pool; the output order is channel order regardless.
// On failure the remaining channels are abandoned and the
// lowest-numbered recorded error is returned.
func (s Scanner) Scan(channels [][]complex128) ([]ChannelDecision, error) {
	if s.Detector == nil {
		return nil, fmt.Errorf("detect: scanner has no detector")
	}
	workers := s.Workers
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(channels) {
		workers = len(channels)
	}
	out := make([]ChannelDecision, len(channels))
	if workers <= 1 {
		for i, x := range channels {
			dec, err := Apply(s.Detector, x, s.Threshold)
			if err != nil {
				return nil, fmt.Errorf("detect: channel %d: %w", i, err)
			}
			out[i] = ChannelDecision{Channel: i, Decision: dec}
		}
		return out, nil
	}
	errs := make([]error, len(channels))
	var failed atomic.Bool
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if failed.Load() {
					continue // drain: a channel already failed
				}
				dec, err := Apply(s.Detector, channels[i], s.Threshold)
				if err != nil {
					errs[i] = fmt.Errorf("detect: channel %d: %w", i, err)
					failed.Store(true)
					continue
				}
				out[i] = ChannelDecision{Channel: i, Decision: dec}
			}
		}()
	}
	for i := range channels {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// FreeChannels returns the indices of channels a scan declared idle, in
// ascending order.
func FreeChannels(decisions []ChannelDecision) []int {
	var out []int
	for _, d := range decisions {
		if !d.Detected {
			out = append(out, d.Channel)
		}
	}
	sort.Ints(out)
	return out
}

// BestFreeChannel returns the idle channel with the lowest statistic (the
// quietest), or -1 if every channel is occupied.
func BestFreeChannel(decisions []ChannelDecision) int {
	best := -1
	bestStat := 0.0
	for _, d := range decisions {
		if d.Detected {
			continue
		}
		if best == -1 || d.Statistic < bestStat {
			best = d.Channel
			bestStat = d.Statistic
		}
	}
	return best
}
