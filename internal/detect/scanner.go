package detect

import (
	"fmt"
	"sort"
)

// ChannelDecision is the per-channel outcome of a scan.
type ChannelDecision struct {
	Channel int
	Decision
}

// Scanner applies one detector with one threshold across a set of
// channels — the Cognitive-Radio scan loop of the paper's introduction
// (find under-utilised spectrum for the AAF ad-hoc network).
type Scanner struct {
	Detector  Detector
	Threshold float64
}

// Scan evaluates every channel and returns the per-channel decisions in
// channel order.
func (s Scanner) Scan(channels [][]complex128) ([]ChannelDecision, error) {
	if s.Detector == nil {
		return nil, fmt.Errorf("detect: scanner has no detector")
	}
	out := make([]ChannelDecision, len(channels))
	for i, x := range channels {
		dec, err := Apply(s.Detector, x, s.Threshold)
		if err != nil {
			return nil, fmt.Errorf("detect: channel %d: %w", i, err)
		}
		out[i] = ChannelDecision{Channel: i, Decision: dec}
	}
	return out, nil
}

// FreeChannels returns the indices of channels a scan declared idle, in
// ascending order.
func FreeChannels(decisions []ChannelDecision) []int {
	var out []int
	for _, d := range decisions {
		if !d.Detected {
			out = append(out, d.Channel)
		}
	}
	sort.Ints(out)
	return out
}

// BestFreeChannel returns the idle channel with the lowest statistic (the
// quietest), or -1 if every channel is occupied.
func BestFreeChannel(decisions []ChannelDecision) int {
	best := -1
	bestStat := 0.0
	for _, d := range decisions {
		if d.Detected {
			continue
		}
		if best == -1 || d.Statistic < bestStat {
			best = d.Channel
			bestStat = d.Statistic
		}
	}
	return best
}
