package detect

import (
	"fmt"

	"tiledcfd/internal/scf"
)

// Decision is the outcome of applying a detector with a threshold.
type Decision struct {
	Detector  string
	Statistic float64
	Threshold float64
	Detected  bool
}

// Detector computes a scalar decision statistic from sampled input.
// Larger statistics indicate stronger evidence of a present signal.
type Detector interface {
	// Name identifies the detector in reports.
	Name() string
	// Statistic evaluates the input.
	Statistic(x []complex128) (float64, error)
}

// EnergyDetector is the radiometer baseline (the paper's reference [7]).
// AssumedNoisePower is what the detector believes the noise floor is; the
// gap between belief and truth is exactly the noise-uncertainty problem
// that motivates CFD.
type EnergyDetector struct {
	AssumedNoisePower float64
}

// Name implements Detector.
func (EnergyDetector) Name() string { return "energy" }

// Statistic implements Detector.
func (d EnergyDetector) Statistic(x []complex128) (float64, error) {
	return EnergyStatistic(x, d.AssumedNoisePower)
}

// CFDDetector is the blind cyclostationary feature detector: it computes
// the DSCF with the given parameters and searches all cycle offsets
// |a| >= MinAbsA.
type CFDDetector struct {
	Params scf.Params
	// MinAbsA excludes the offsets nearest a=0, where spectral leakage of
	// the PSD row lives; 1 searches everything off the PSD row.
	MinAbsA int
}

// Name implements Detector.
func (CFDDetector) Name() string { return "cfd" }

// Statistic implements Detector.
func (d CFDDetector) Statistic(x []complex128) (float64, error) {
	s, _, err := scf.Compute(x, d.Params)
	if err != nil {
		return 0, err
	}
	minA := d.MinAbsA
	if minA == 0 {
		minA = 1
	}
	return CFDStatistic(s, minA)
}

// KnownCycleDetector is the single-correlator detector of the paper's
// reference [8]: the cycle offset A of the target signal is known a
// priori (e.g. its doubled carrier), and only that offset is evaluated.
type KnownCycleDetector struct {
	Params scf.Params
	A      int
}

// Name implements Detector.
func (KnownCycleDetector) Name() string { return "known-cycle" }

// Statistic implements Detector.
func (d KnownCycleDetector) Statistic(x []complex128) (float64, error) {
	s, _, err := scf.Compute(x, d.Params)
	if err != nil {
		return 0, err
	}
	return KnownCycleStatistic(s, d.A)
}

// Apply evaluates a detector against a threshold.
func Apply(d Detector, x []complex128, threshold float64) (Decision, error) {
	stat, err := d.Statistic(x)
	if err != nil {
		return Decision{}, fmt.Errorf("detect: %s: %w", d.Name(), err)
	}
	return Decision{
		Detector:  d.Name(),
		Statistic: stat,
		Threshold: threshold,
		Detected:  stat > threshold,
	}, nil
}
